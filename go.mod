module distiq

go 1.22
