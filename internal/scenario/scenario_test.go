package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"distiq/internal/engine"
)

func TestParseSpecStrict(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown axis", `{"schemes": [{"scheme": "MB_distr"}], "robz": [128]}`, "robz"},
		{"unknown scheme", `{"schemes": [{"scheme": "SuperQ"}]}`, "unknown scheme"},
		{"unknown benchmark", `{"schemes": [{"scheme": "MB_distr"}], "benchmarks": ["nonesuch"]}`, "nonesuch"},
		{"unknown suite", `{"schemes": [{"scheme": "MB_distr"}], "suites": ["vector"]}`, "unknown suite"},
		{"no schemes", `{"rob": [128]}`, "no schemes"},
		{"negative rob", `{"schemes": [{"scheme": "MB_distr"}], "rob": [-1]}`, "not positive"},
		{"duplicate rob", `{"schemes": [{"scheme": "MB_distr"}], "rob": [128, 128]}`, "repeats"},
		{"duplicate pdis", `{"schemes": [{"scheme": "MB_distr"}], "perfect_disambiguation": [true, true]}`, "repeats"},
		{"shape on named", `{"schemes": [{"scheme": "MB_distr", "queues": [8]}]}`, "no queue shape"},
		{"chains on fifo", `{"schemes": [{"scheme": "IssueFIFO", "chains": [4]}]}`, "only to MixBUFF"},
		{"bad intq", `{"schemes": [{"scheme": "MixBUFF", "intq": "8by8"}]}`, "queue shape"},
		{"trailing data", `{"schemes": [{"scheme": "MB_distr"}]} {"x": 1}`, "trailing"},
		{"not json", `schemes: [MB_distr]`, "parse spec"},
	}
	for _, c := range cases {
		_, err := ParseSpec([]byte(c.src))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"name": "demo",
		"suites": ["fp"],
		"benchmarks": ["gzip"],
		"schemes": [
			{"scheme": "MB_distr"},
			{"scheme": "MixBUFF", "intq": "8x8", "queues": [8, 12], "entries": [16], "chains": [8], "distr": true}
		],
		"rob": [128, 256],
		"perfect_disambiguation": [false, true],
		"warmup": 1000,
		"instructions": 2000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// (1 named + 2 parametric) scheme points x 2 rob x 2 pdis x (14 fp + gzip).
	if want := 3 * 2 * 2 * 15; grid.Size() != want {
		t.Fatalf("grid size = %d, want %d", grid.Size(), want)
	}
	wantAxes := []string{"scheme", "queues", "entries", "chains", "rob", "perfect_disambig"}
	if !reflect.DeepEqual(grid.Axes, wantAxes) {
		t.Fatalf("axes = %v", grid.Axes)
	}
	// Every point carries a machine override here (rob always set).
	for _, p := range grid.Points {
		if p.Machine == nil || p.Machine.ROBSize == 0 {
			t.Fatalf("point missing machine override: %+v", p)
		}
		if len(p.Values) != len(grid.Axes) {
			t.Fatalf("point values misaligned: %v vs %v", p.Values, grid.Axes)
		}
	}
	// Benchmarks are innermost: first two points differ only by bench.
	if grid.Points[0].Bench == grid.Points[1].Bench {
		t.Fatal("benchmark is not the innermost axis")
	}
	if !reflect.DeepEqual(grid.Points[0].Values, grid.Points[1].Values) {
		t.Fatal("adjacent benchmark points should share axis values")
	}
}

func TestExpandRejectsInvalidMachine(t *testing.T) {
	s := New("bad-rob").WithNamed("MB_distr").WithROB(100) // not a power of two
	if _, err := s.Expand(); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("err = %v, want power-of-two rejection", err)
	}
	s2 := New("bad-width").WithNamed("MB_distr")
	s2.FetchWidth = []int{-2}
	if _, err := s2.Expand(); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestBuilderMatchesJSON(t *testing.T) {
	b := New("demo").
		WithSuites("fp").
		WithNamed("MB_distr", "IQ_64_64").
		WithROB(128, 256).
		WithPerfectDisambiguation(false, true).
		WithLengths(1000, 2000)
	data, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("builder spec does not round-trip: %v\n%s", err, data)
	}
	g1, err := b.Expand()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := parsed.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if g1.Size() != g2.Size() || !reflect.DeepEqual(g1.Axes, g2.Axes) {
		t.Fatalf("builder and JSON grids differ: %d/%v vs %d/%v",
			g1.Size(), g1.Axes, g2.Size(), g2.Axes)
	}
}

// stubEngine returns an engine whose simulator fabricates deterministic
// results from the job identity, so emitter tests need no real runs.
func stubEngine(workers int) *engine.Engine {
	return engine.New(engine.Config{
		Workers: workers,
		Simulate: func(j engine.Job) (engine.Result, error) {
			var r engine.Result
			r.Benchmark = j.Bench
			r.Config = j.Config.Name
			r.Insts = j.Opt.Instructions
			r.Cycles = j.Opt.Instructions/2 + uint64(len(j.Key())%7)
			r.IQEnergy = float64(len(j.Key()))
			return r, nil
		},
	})
}

func testGrid(t *testing.T) *Grid {
	t.Helper()
	s := New("emit").
		WithBenchmarks("swim", "gzip").
		WithNamed("IQ_64_64").
		WithScheme(SchemeAxis{Scheme: "MixBUFF", Queues: []int{8}, Entries: []int{16}, Chains: []int{8}}).
		WithROB(128, 256).
		WithLengths(100, 200)
	g, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmitters(t *testing.T) {
	g := testGrid(t)
	rs, err := g.RunOn(stubEngine(4))
	if err != nil {
		t.Fatal(err)
	}
	csv := rs.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "scheme,queues,entries,chains,rob,benchmark,ipc,iq_energy_pj,cycles" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 1+g.Size() {
		t.Fatalf("csv rows = %d, want %d", len(lines)-1, g.Size())
	}
	if !strings.HasPrefix(lines[1], "IQ_64_64,1,64,0,128,swim,") {
		t.Fatalf("first row = %q", lines[1])
	}

	md := rs.Markdown()
	if !strings.HasPrefix(md, "### emit\n") || !strings.Contains(md, "| scheme |") {
		t.Fatalf("markdown = %q", md)
	}

	js, err := rs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "emit"`, `"benchmark": "swim"`, `"rob": "128"`} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("json missing %s:\n%s", want, js)
		}
	}
	// Run-varying engine counters must stay out of the document so warm
	// reruns emit byte-identical JSON.
	if strings.Contains(string(js), "simulated") {
		t.Fatalf("json leaks engine counters:\n%s", js)
	}
}

// TestLengthSemantics pins the unset-vs-zero contract: missing lengths
// take the defaults, an explicit zero warmup is honored, and zero
// measured instructions are rejected.
func TestLengthSemantics(t *testing.T) {
	s, err := ParseSpec([]byte(`{"schemes": [{"scheme": "MB_distr"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if opt := s.Opt(); opt.Warmup != DefaultWarmup || opt.Instructions != DefaultInstructions {
		t.Fatalf("unset lengths = %+v", opt)
	}
	s, err = ParseSpec([]byte(`{"schemes": [{"scheme": "MB_distr"}], "warmup": 0, "instructions": 500}`))
	if err != nil {
		t.Fatal(err)
	}
	if opt := s.Opt(); opt.Warmup != 0 || opt.Instructions != 500 {
		t.Fatalf("explicit zero warmup not honored: %+v", opt)
	}
	if opt := New("b").WithLengths(0, 500).Opt(); opt.Warmup != 0 || opt.Instructions != 500 {
		t.Fatalf("builder zero warmup not honored: %+v", opt)
	}
	if _, err := ParseSpec([]byte(`{"schemes": [{"scheme": "MB_distr"}], "instructions": 0}`)); err == nil ||
		!strings.Contains(err.Error(), "instructions must be positive") {
		t.Fatalf("zero instructions accepted: %v", err)
	}
}

// TestRunDeterministicAcrossParallelism asserts the acceptance property
// the engine guarantees: grid output bytes are identical at any worker
// count, and identical points dedup to one simulation.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	g := testGrid(t)
	serial, err := g.RunOn(stubEngine(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := g.RunOn(stubEngine(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != parallel.CSV() {
		t.Fatal("grid CSV differs between serial and parallel runs")
	}
	if parallel.Stats.Simulated != int64(g.Size()) {
		t.Fatalf("stub engine simulated %d, want %d", parallel.Stats.Simulated, g.Size())
	}
}

// TestGridJobsShareMachinePointers documents that points of one machine
// combination share a single Machine value, so a 10k-point grid does not
// allocate 10k override structs.
func TestGridJobsShareMachinePointers(t *testing.T) {
	g := testGrid(t)
	if g.Points[0].Machine != g.Points[1].Machine {
		t.Fatal("adjacent benchmark points should share the machine override")
	}
}

func ExampleSpec() {
	spec := New("rob-ablation").
		WithBenchmarks("swim").
		WithNamed("MB_distr").
		WithROB(128, 256).
		WithLengths(100, 200)
	grid, err := spec.Expand()
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Join(grid.Axes, ","))
	fmt.Println(grid.Size())
	// Output:
	// scheme,queues,entries,chains,rob
	// 2
}

// TestEmitWriterParity pins the io.Writer emitter — the single code path
// cmd/iqsweep and the distiqd service share — to the string emitters,
// including the JSON trailing newline and the format/MIME taxonomy.
func TestEmitWriterParity(t *testing.T) {
	g := testGrid(t)
	rs, err := g.RunOn(stubEngine(4))
	if err != nil {
		t.Fatal(err)
	}

	js, err := rs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"csv":      rs.CSV(),
		"json":     string(js) + "\n",
		"md":       rs.Markdown(),
		"markdown": rs.Markdown(),
	}
	for format, body := range want {
		var b strings.Builder
		if err := rs.Emit(&b, format); err != nil {
			t.Fatalf("Emit(%s): %v", format, err)
		}
		if b.String() != body {
			t.Errorf("Emit(%s) differs from the string emitter:\n%s\nvs\n%s", format, b.String(), body)
		}
	}

	var b strings.Builder
	if err := rs.Emit(&b, "yaml"); err == nil || !strings.Contains(err.Error(), `unknown format "yaml"`) {
		t.Fatalf("unknown format accepted: %v", err)
	}

	for _, format := range Formats {
		if _, ok := ContentType(format); !ok {
			t.Errorf("Formats entry %q has no content type", format)
		}
	}
	if ct, ok := ContentType("md"); !ok || !strings.HasPrefix(ct, "text/markdown") {
		t.Errorf("ContentType(md) = %q, %v", ct, ok)
	}
	if _, ok := ContentType("yaml"); ok {
		t.Error("ContentType accepted yaml")
	}
}

// TestRunOnProgressPerGrid: grid-scoped progress counts exactly this
// grid's points (Total = grid size, Done reaches it) with per-job
// sources, even when the engine has served other work before.
func TestRunOnProgressPerGrid(t *testing.T) {
	e := stubEngine(4)
	g := testGrid(t)
	if _, err := g.RunOn(e); err != nil { // warm the engine first
		t.Fatal(err)
	}

	var events []engine.Progress
	var mu sync.Mutex
	rs, err := g.RunOnProgress(e, func(p engine.Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != g.Size() {
		t.Fatalf("progress fired %d times, want %d", len(events), g.Size())
	}
	for i, p := range events {
		if p.Total != g.Size() || p.Done != i+1 {
			t.Fatalf("event %d = %d/%d, want %d/%d", i, p.Done, p.Total, i+1, g.Size())
		}
		if p.Source != engine.SourceMemory {
			t.Fatalf("warm grid event source = %s", p.Source)
		}
	}
	if rs.CSV() == "" {
		t.Fatal("empty result set")
	}
}
