package scenario

import (
	"strings"
	"testing"
)

// TestSeedsAxisExpansion checks the replication axis crosses the grid,
// renders its own column after perfect_disambig, and lands on Job.Seed.
func TestSeedsAxisExpansion(t *testing.T) {
	spec := New("rep").
		WithBenchmarks("swim", "gzip").
		WithNamed("IQ_64_64").
		WithSeeds(0, 1, 2).
		WithLengths(100, 1000)
	grid, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := grid.Size(), 2*3; got != want {
		t.Fatalf("grid size %d, want %d", got, want)
	}
	if grid.Axes[len(grid.Axes)-1] != "seed" {
		t.Fatalf("last axis %q, want seed", grid.Axes[len(grid.Axes)-1])
	}
	// Seed is outside benchmarks: points group by seed then bench.
	wantSeeds := []uint64{0, 0, 1, 1, 2, 2}
	for i, p := range grid.Points {
		if p.Seed != wantSeeds[i] {
			t.Fatalf("point %d seed %d, want %d", i, p.Seed, wantSeeds[i])
		}
		if got := p.Values[len(p.Values)-1]; got != map[uint64]string{0: "0", 1: "1", 2: "2"}[p.Seed] {
			t.Fatalf("point %d seed column %q for seed %d", i, got, p.Seed)
		}
		if j := p.Job(spec.Opt()); j.Seed != p.Seed {
			t.Fatalf("point %d job seed %d, want %d", i, j.Seed, p.Seed)
		}
	}
}

// TestSeedsAxisAbsent pins the legacy shape: no seeds axis means no seed
// column and seed-zero jobs.
func TestSeedsAxisAbsent(t *testing.T) {
	spec := New("plain").WithBenchmarks("swim").WithNamed("IQ_64_64").WithLengths(100, 1000)
	grid, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, ax := range grid.Axes {
		if ax == "seed" {
			t.Fatal("seed column present without a seeds axis")
		}
	}
	if grid.Points[0].Seed != 0 {
		t.Fatal("default seed not zero")
	}
}

// TestSeedsValidation rejects repeated seeds and round-trips the axis
// through JSON.
func TestSeedsValidation(t *testing.T) {
	spec := New("dup").WithNamed("IQ_64_64").WithSeeds(1, 1)
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "seeds repeats") {
		t.Fatalf("duplicate seeds not rejected: %v", err)
	}

	spec = New("rt").WithBenchmarks("swim").WithNamed("IQ_64_64").WithSeeds(0, 5)
	data, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Seeds) != 2 || back.Seeds[0] != 0 || back.Seeds[1] != 5 {
		t.Fatalf("seeds did not round-trip: %v", back.Seeds)
	}
}
