package scenario

import (
	"context"
	"fmt"
	"strconv"

	"distiq/internal/core"
	"distiq/internal/engine"
)

// machineAxis describes one sweepable full-machine parameter: its output
// column name, where its values live in a Spec and how a value lands in
// an engine.Machine override.
type machineAxis struct {
	name string
	vals func(*Spec) []int
	set  func(*engine.Machine, int)
}

// machineAxes fixes the expansion and column order of the machine axes.
// FetchWidth intentionally drives dispatch too: the front end is one
// pipe, and sweeping fetch without dispatch just moves the bottleneck
// one stage down.
var machineAxes = []machineAxis{
	{"rob", func(s *Spec) []int { return s.ROB },
		func(m *engine.Machine, v int) { m.ROBSize = v }},
	{"fetch_width", func(s *Spec) []int { return s.FetchWidth },
		func(m *engine.Machine, v int) { m.FetchWidth, m.DispatchWidth = v, v }},
	{"issue_width", func(s *Spec) []int { return s.IssueWidth },
		func(m *engine.Machine, v int) { m.IssueWidthInt, m.IssueWidthFP = v, v }},
	{"commit_width", func(s *Spec) []int { return s.CommitWidth },
		func(m *engine.Machine, v int) { m.CommitWidth = v }},
	{"int_alus", func(s *Spec) []int { return s.IntALUs },
		func(m *engine.Machine, v int) { m.IntALUs = v }},
	{"int_muls", func(s *Spec) []int { return s.IntMuls },
		func(m *engine.Machine, v int) { m.IntMuls = v }},
	{"fp_adders", func(s *Spec) []int { return s.FPAdders },
		func(m *engine.Machine, v int) { m.FPAdders = v }},
	{"fp_muls", func(s *Spec) []int { return s.FPMuls },
		func(m *engine.Machine, v int) { m.FPMuls = v }},
	{"l1d_latency", func(s *Spec) []int { return s.L1DLatency },
		func(m *engine.Machine, v int) { m.L1DLatency = v }},
	{"l2_latency", func(s *Spec) []int { return s.L2Latency },
		func(m *engine.Machine, v int) { m.L2Latency = v }},
	{"mem_latency", func(s *Spec) []int { return s.MemLatency },
		func(m *engine.Machine, v int) { m.MemLatency = v }},
}

// Point is one expanded grid cell: a benchmark under a fully specified
// machine. Values holds the rendered axis values aligned with Grid.Axes.
type Point struct {
	Bench   string
	Config  core.Config
	Machine *engine.Machine
	// Seed is the point's replication seed (0 = canonical stream).
	Seed   uint64
	Values []string
}

// Job returns the engine job the point resolves to.
func (p Point) Job(opt engine.Options) engine.Job {
	return engine.Job{Bench: p.Bench, Config: p.Config, Opt: opt, Machine: p.Machine, Seed: p.Seed}
}

// Grid is the expanded cross-product of a Spec's axes, in deterministic
// order: scheme points outermost, machine axes in declaration order, the
// perfect-disambiguation ablation, then benchmarks innermost — so output
// rows group naturally by configuration.
type Grid struct {
	Spec *Spec
	// Axes names the varying-axis columns of every point, in order:
	// the four scheme-shape columns, then each machine axis present in
	// the spec.
	Axes   []string
	Points []Point
}

// schemePoint is one fully resolved issue-queue configuration.
type schemePoint struct {
	cfg             core.Config
	scheme          string
	queues, entries int
	chains          int
}

// expandSchemes resolves every scheme axis into concrete configurations.
func expandSchemes(axes []SchemeAxis) ([]schemePoint, error) {
	var out []schemePoint
	for _, ax := range axes {
		if mk, named := namedConfigs[ax.Scheme]; named {
			cfg := mk()
			out = append(out, schemePoint{
				cfg: cfg, scheme: cfg.Name,
				queues: cfg.FP.Queues, entries: cfg.FP.Entries, chains: cfg.FP.Chains,
			})
			continue
		}
		a, b := 8, 8
		if ax.IntQ != "" {
			var err error
			if a, b, err = parseQ(ax.IntQ); err != nil {
				return nil, err
			}
		}
		queues, entries, chains := ax.Queues, ax.Entries, ax.Chains
		if len(queues) == 0 {
			queues = []int{8}
		}
		if len(entries) == 0 {
			entries = []int{16}
		}
		if ax.Scheme != "MixBUFF" || len(chains) == 0 {
			chains = []int{0}
		}
		for _, q := range queues {
			for _, e := range entries {
				for _, ch := range chains {
					var cfg core.Config
					switch ax.Scheme {
					case "IssueFIFO":
						cfg = core.IssueFIFOCfg(a, b, q, e)
					case "LatFIFO":
						cfg = core.LatFIFOCfg(a, b, q, e)
					case "MixBUFF":
						cfg = core.MixBUFFCfg(a, b, q, e, ch)
					default:
						return nil, fmt.Errorf("scenario: unknown scheme %q", ax.Scheme)
					}
					cfg.DistributedFU = ax.Distr
					if ax.Distr {
						cfg.Name += "_distr"
					}
					out = append(out, schemePoint{
						cfg: cfg, scheme: ax.Scheme,
						queues: q, entries: e, chains: ch,
					})
				}
			}
		}
	}
	return out, nil
}

// Expand validates the spec and crosses its axes into a Grid. Every
// distinct machine of the grid is validated against the pipeline's
// invariants (e.g. power-of-two ROB sizes) before any simulation runs.
func (s *Spec) Expand() (*Grid, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	benches, err := s.benchList()
	if err != nil {
		return nil, err
	}
	schemes, err := expandSchemes(s.Schemes)
	if err != nil {
		return nil, err
	}

	axes := []string{"scheme", "queues", "entries", "chains"}
	var active []machineAxis
	for _, ax := range machineAxes {
		if len(ax.vals(s)) > 0 {
			active = append(active, ax)
			axes = append(axes, ax.name)
		}
	}
	pdis := s.PerfectDisambiguation
	if len(pdis) > 0 {
		axes = append(axes, "perfect_disambig")
	}
	seeds := s.Seeds
	if len(seeds) > 0 {
		axes = append(axes, "seed")
	} else {
		seeds = []uint64{0}
	}

	// machines enumerates the cross-product of the active machine axes
	// (and the ablation switch) as override structs plus rendered
	// values. A grid with no machine axes yields one nil machine.
	type machinePoint struct {
		m      *engine.Machine
		values []string
	}
	points := []machinePoint{{nil, nil}}
	for _, ax := range active {
		var next []machinePoint
		for _, mp := range points {
			for _, v := range ax.vals(s) {
				var m engine.Machine
				if mp.m != nil {
					m = *mp.m
				}
				ax.set(&m, v)
				vals := append(append([]string(nil), mp.values...), strconv.Itoa(v))
				next = append(next, machinePoint{&m, vals})
			}
		}
		points = next
	}
	if len(pdis) > 0 {
		var next []machinePoint
		for _, mp := range points {
			for _, v := range pdis {
				var m engine.Machine
				if mp.m != nil {
					m = *mp.m
				}
				m.PerfectDisambiguation = v
				vals := append(append([]string(nil), mp.values...), strconv.FormatBool(v))
				next = append(next, machinePoint{&m, vals})
			}
		}
		points = next
	}

	g := &Grid{Spec: s, Axes: axes}
	opt := s.Opt()
	for _, sp := range schemes {
		if err := sp.cfg.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		for _, mp := range points {
			// Validate the full machine once per configuration point
			// (validity is benchmark-independent).
			probe := engine.Job{Bench: benches[0], Config: sp.cfg, Opt: opt, Machine: mp.m}
			if err := probe.PipelineConfig().Validate(); err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			base := []string{
				sp.scheme, strconv.Itoa(sp.queues),
				strconv.Itoa(sp.entries), strconv.Itoa(sp.chains),
			}
			base = append(base, mp.values...)
			for _, seed := range seeds {
				vals := base
				if len(s.Seeds) > 0 {
					vals = append(append([]string(nil), base...), strconv.FormatUint(seed, 10))
				}
				for _, bench := range benches {
					g.Points = append(g.Points, Point{
						Bench: bench, Config: sp.cfg, Machine: mp.m, Seed: seed, Values: vals,
					})
				}
			}
		}
	}
	return g, nil
}

// Jobs returns the grid's engine jobs in point order.
func (g *Grid) Jobs() []engine.Job {
	opt := g.Spec.Opt()
	jobs := make([]engine.Job, len(g.Points))
	for i, p := range g.Points {
		jobs[i] = p.Job(opt)
	}
	return jobs
}

// Size returns the number of grid points (simulation jobs before
// deduplication).
func (g *Grid) Size() int { return len(g.Points) }

// RunConfig configures grid execution; the zero value runs with a
// GOMAXPROCS-wide worker pool, no persistent store and no progress.
//
// Deprecated: new code should run grids through the context-aware Client
// layer (distiq.NewLocalClient / distiq.NewRemoteClient with functional
// options), which adds cancellation and per-point streaming. RunConfig
// remains as a thin shim over the same engine.
type RunConfig struct {
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS, 1 = serial).
	Parallel int
	// CacheDir persists results to an on-disk store shared across runs.
	CacheDir string
	// Progress receives one callback per resolved job.
	Progress func(engine.Progress)
}

// Run shards the grid across a fresh engine's worker pool and collects
// the results. Identical points (and warm on-disk entries) simulate zero
// times; rows come back in grid order regardless of parallelism.
//
// Deprecated: use the Client layer — distiq.NewLocalClient(...).Sweep —
// which streams per-point results and honors context cancellation. Run
// remains as a thin shim and behaves identically.
func (g *Grid) Run(rc RunConfig) (*ResultSet, error) {
	e := engine.New(engine.Config{
		Workers:  rc.Parallel,
		CacheDir: rc.CacheDir,
		Progress: rc.Progress,
	})
	return g.RunOn(e)
}

// RunStream runs the grid's jobs on an existing engine, delivering each
// point's result through emit as it resolves — in completion order, not
// grid order; i is the point's index in g.Points. Emit invocations are
// serialized. Cancellation follows the engine's contract: once ctx is
// cancelled, unscheduled points emit promptly with ctx.Err() and
// engine.SourceCanceled while in-flight points finish and persist. The
// Client layer and the distiqd streaming endpoint are built on this.
func (g *Grid) RunStream(ctx context.Context, e *engine.Engine, emit func(i int, r engine.Result, err error, src engine.Source)) {
	e.ResultStream(ctx, g.Jobs(), emit)
}

// RunOn runs the grid on an existing engine, sharing its caches.
func (g *Grid) RunOn(e *engine.Engine) (*ResultSet, error) {
	return g.RunOnProgress(e, nil)
}

// RunOnProgress runs the grid on an existing engine, additionally
// invoking progress once per resolved job with Done/Total scoped to this
// grid — independent of the engine-wide progress callback, so several
// grids sharing one engine (e.g. concurrent service sweeps) each observe
// their own completion.
func (g *Grid) RunOnProgress(e *engine.Engine, progress func(engine.Progress)) (*ResultSet, error) {
	results, err := e.ResultAllProgress(g.Jobs(), progress)
	if err != nil {
		return nil, err
	}
	return &ResultSet{Grid: g, Results: results, Stats: e.Stats()}, nil
}
