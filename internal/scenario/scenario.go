// Package scenario provides declarative experiment grids over the full
// machine. A Spec — parsed from JSON or assembled with the builder API —
// names axes over benchmarks/suites, issue-queue schemes and shapes, and
// whole-processor parameters (ROB size, widths, functional-unit counts,
// memory latencies, the perfect-disambiguation ablation). Expand crosses
// every axis into a Grid of engine jobs; Run shards the grid across the
// concurrent engine's worker pool (reusing its in-memory and on-disk
// caches) and returns a ResultSet with CSV, JSON and markdown emitters.
//
// The paper fixes the Table 1 machine and varies only the issue-queue
// organization; scenario grids open the rest of the machine to the same
// cached, deterministic sweep infrastructure.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"distiq/internal/core"
	"distiq/internal/engine"
	"distiq/internal/trace"
)

// SchemeAxis describes one issue-queue organization axis of a grid. A
// named entry (Scheme one of IQ_unbounded, IQ_64_64, IF_distr, MB_distr)
// contributes exactly that configuration. A parametric entry (IssueFIFO,
// LatFIFO or MixBUFF) expands over Queues × Entries (× Chains for
// MixBUFF) on the FP side, with the integer side fixed by IntQ.
type SchemeAxis struct {
	// Scheme is a named configuration or a parametric scheme kind.
	Scheme string `json:"scheme"`
	// IntQ fixes the integer queues as "AxB" (default "8x8").
	IntQ string `json:"intq,omitempty"`
	// Queues and Entries are the FP queue-count and entries-per-queue
	// values to sweep (defaults: 8 and 16).
	Queues  []int `json:"queues,omitempty"`
	Entries []int `json:"entries,omitempty"`
	// Chains bounds dependence chains per FP queue (MixBUFF only;
	// 0 = unbounded).
	Chains []int `json:"chains,omitempty"`
	// Distr distributes functional units across queues.
	Distr bool `json:"distr,omitempty"`
}

// Spec is a declarative experiment grid: the cross-product of every
// populated axis. Empty machine axes keep the paper's Table 1 value and
// contribute no output column.
type Spec struct {
	// Name labels the grid in reports.
	Name string `json:"name,omitempty"`
	// Suites selects whole benchmark suites: "int", "fp" or "all".
	Suites []string `json:"suites,omitempty"`
	// Benchmarks selects individual benchmarks (unioned with Suites;
	// both empty = all 26).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Schemes lists the issue-queue organizations to sweep.
	Schemes []SchemeAxis `json:"schemes"`

	// Machine axes (cross-multiplied; zero-length = Table 1 default).
	ROB         []int `json:"rob,omitempty"`          // reorder-buffer entries (power of two)
	FetchWidth  []int `json:"fetch_width,omitempty"`  // fetch and dispatch width
	IssueWidth  []int `json:"issue_width,omitempty"`  // issue width, both domains
	CommitWidth []int `json:"commit_width,omitempty"` // commit width
	IntALUs     []int `json:"int_alus,omitempty"`
	IntMuls     []int `json:"int_muls,omitempty"`
	FPAdders    []int `json:"fp_adders,omitempty"`
	FPMuls      []int `json:"fp_muls,omitempty"`
	L1DLatency  []int `json:"l1d_latency,omitempty"` // cycles
	L2Latency   []int `json:"l2_latency,omitempty"`  // cycles
	MemLatency  []int `json:"mem_latency,omitempty"` // first-chunk cycles
	// PerfectDisambiguation sweeps the Section 5 ablation.
	PerfectDisambiguation []bool `json:"perfect_disambiguation,omitempty"`

	// Seeds is the replication axis: each value reruns the whole grid
	// with the benchmark models' RNG seeds perturbed by that value, so a
	// point is measured over statistically independent instruction
	// streams of the same workload. Seed 0 is the canonical stream (the
	// one an empty axis runs); values must be unique.
	Seeds []uint64 `json:"seeds,omitempty"`

	// Warmup and Instructions size every simulation of the grid.
	// Unset means the defaults (10000 and 60000); an explicit 0 warmup
	// is honored, while 0 instructions is rejected.
	Warmup       *uint64 `json:"warmup,omitempty"`
	Instructions *uint64 `json:"instructions,omitempty"`
}

// DefaultWarmup and DefaultInstructions size grid simulations when the
// spec leaves Warmup/Instructions zero.
const (
	DefaultWarmup       = 10_000
	DefaultInstructions = 60_000
)

// New returns an empty named Spec for builder-style assembly:
//
//	spec := scenario.New("rob-ablation").
//		WithSuites("fp").
//		WithNamed("MB_distr", "IQ_64_64").
//		WithROB(128, 256).
//		WithPerfectDisambiguation(false, true).
//		WithLengths(10_000, 60_000)
func New(name string) *Spec { return &Spec{Name: name} }

// WithSuites appends benchmark suites ("int", "fp" or "all").
func (s *Spec) WithSuites(suites ...string) *Spec {
	s.Suites = append(s.Suites, suites...)
	return s
}

// WithBenchmarks appends individual benchmarks.
func (s *Spec) WithBenchmarks(benches ...string) *Spec {
	s.Benchmarks = append(s.Benchmarks, benches...)
	return s
}

// WithNamed appends named configurations (IQ_unbounded, IQ_64_64,
// IF_distr, MB_distr) as scheme axes.
func (s *Spec) WithNamed(configs ...string) *Spec {
	for _, c := range configs {
		s.Schemes = append(s.Schemes, SchemeAxis{Scheme: c})
	}
	return s
}

// WithScheme appends one scheme axis.
func (s *Spec) WithScheme(ax SchemeAxis) *Spec {
	s.Schemes = append(s.Schemes, ax)
	return s
}

// WithROB sweeps reorder-buffer sizes (powers of two).
func (s *Spec) WithROB(sizes ...int) *Spec { s.ROB = append(s.ROB, sizes...); return s }

// WithFetchWidth sweeps the front-end (fetch + dispatch) width.
func (s *Spec) WithFetchWidth(w ...int) *Spec { s.FetchWidth = append(s.FetchWidth, w...); return s }

// WithIssueWidth sweeps the per-domain issue width.
func (s *Spec) WithIssueWidth(w ...int) *Spec { s.IssueWidth = append(s.IssueWidth, w...); return s }

// WithCommitWidth sweeps the commit width.
func (s *Spec) WithCommitWidth(w ...int) *Spec { s.CommitWidth = append(s.CommitWidth, w...); return s }

// WithIntALUs, WithIntMuls, WithFPAdders and WithFPMuls sweep
// functional-unit provisioning one kind at a time.
func (s *Spec) WithIntALUs(n ...int) *Spec  { s.IntALUs = append(s.IntALUs, n...); return s }
func (s *Spec) WithIntMuls(n ...int) *Spec  { s.IntMuls = append(s.IntMuls, n...); return s }
func (s *Spec) WithFPAdders(n ...int) *Spec { s.FPAdders = append(s.FPAdders, n...); return s }
func (s *Spec) WithFPMuls(n ...int) *Spec   { s.FPMuls = append(s.FPMuls, n...); return s }

// WithL1DLatency, WithL2Latency and WithMemLatency sweep memory-system
// latencies in cycles (MemLatency is the first-chunk latency).
func (s *Spec) WithL1DLatency(c ...int) *Spec { s.L1DLatency = append(s.L1DLatency, c...); return s }
func (s *Spec) WithL2Latency(c ...int) *Spec  { s.L2Latency = append(s.L2Latency, c...); return s }
func (s *Spec) WithMemLatency(c ...int) *Spec { s.MemLatency = append(s.MemLatency, c...); return s }

// WithPerfectDisambiguation sweeps the oracle memory-disambiguation
// ablation.
func (s *Spec) WithPerfectDisambiguation(v ...bool) *Spec {
	s.PerfectDisambiguation = append(s.PerfectDisambiguation, v...)
	return s
}

// WithSeeds appends replication seeds: every grid point reruns once per
// seed over a seed-perturbed instruction stream (0 = the canonical
// stream).
func (s *Spec) WithSeeds(seeds ...uint64) *Spec {
	s.Seeds = append(s.Seeds, seeds...)
	return s
}

// WithLengths sets warmup and measured instruction counts.
func (s *Spec) WithLengths(warmup, instructions uint64) *Spec {
	s.Warmup, s.Instructions = &warmup, &instructions
	return s
}

// ParseSpec decodes a JSON grid specification strictly: unknown fields
// (misspelled axes) are errors, as are all structural problems Validate
// detects.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("scenario: parse spec: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a JSON grid specification file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read spec: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: spec %s: %w", path, err)
	}
	return s, nil
}

// JSON renders the spec as indented JSON (the format LoadSpec accepts).
func (s *Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Opt returns the simulation sizing of the grid. Unset fields take the
// defaults; an explicit zero warmup is preserved.
func (s *Spec) Opt() engine.Options {
	opt := engine.Options{Warmup: DefaultWarmup, Instructions: DefaultInstructions}
	if s.Warmup != nil {
		opt.Warmup = *s.Warmup
	}
	if s.Instructions != nil {
		opt.Instructions = *s.Instructions
	}
	return opt
}

// namedConfigs maps named-configuration spellings to constructors.
var namedConfigs = map[string]func() core.Config{
	"IQ_unbounded": core.Unbounded,
	"unbounded":    core.Unbounded,
	"IQ_64_64":     core.Baseline64,
	"baseline":     core.Baseline64,
	"IF_distr":     core.IFDistr,
	"MB_distr":     core.MBDistr,
}

// parametricSchemes are the scheme kinds that expand over queue shapes.
var parametricSchemes = map[string]bool{
	"IssueFIFO": true, "LatFIFO": true, "MixBUFF": true,
}

// benchList resolves the spec's suite and benchmark selections into a
// deduplicated list (suites first), defaulting to all benchmarks.
func (s *Spec) benchList() ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(names []string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	for _, suite := range s.Suites {
		switch strings.ToLower(suite) {
		case "int":
			add(trace.Benchmarks(trace.SuiteInt))
		case "fp":
			add(trace.Benchmarks(trace.SuiteFP))
		case "all":
			add(trace.AllBenchmarks())
		default:
			return nil, fmt.Errorf("scenario: unknown suite %q (int, fp or all)", suite)
		}
	}
	for _, b := range s.Benchmarks {
		if _, err := trace.ByName(b); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	add(s.Benchmarks)
	if len(out) == 0 {
		out = trace.AllBenchmarks()
	}
	return out, nil
}

// Validate checks the spec's axes without expanding them: schemes and
// benchmarks must exist, every machine-axis value must be positive and no
// axis may repeat a value (duplicate grid rows would collide in output).
func (s *Spec) Validate() error {
	if len(s.Schemes) == 0 {
		return fmt.Errorf("scenario: spec has no schemes axis")
	}
	if _, err := s.benchList(); err != nil {
		return err
	}
	for i, ax := range s.Schemes {
		if err := validateSchemeAxis(ax); err != nil {
			return fmt.Errorf("scenario: schemes[%d]: %w", i, err)
		}
	}
	for _, ax := range machineAxes {
		vals := ax.vals(s)
		if err := uniquePositive(ax.name, vals); err != nil {
			return err
		}
	}
	if len(s.PerfectDisambiguation) > 2 {
		return fmt.Errorf("scenario: axis perfect_disambiguation repeats a value")
	}
	if len(s.PerfectDisambiguation) == 2 &&
		s.PerfectDisambiguation[0] == s.PerfectDisambiguation[1] {
		return fmt.Errorf("scenario: axis perfect_disambiguation repeats a value")
	}
	seen := map[uint64]bool{}
	for _, v := range s.Seeds {
		if seen[v] {
			return fmt.Errorf("scenario: axis seeds repeats value %d", v)
		}
		seen[v] = true
	}
	if s.Instructions != nil && *s.Instructions == 0 {
		return fmt.Errorf("scenario: instructions must be positive (a zero-length run measures nothing)")
	}
	return nil
}

func validateSchemeAxis(ax SchemeAxis) error {
	if _, named := namedConfigs[ax.Scheme]; named {
		if len(ax.Queues) > 0 || len(ax.Entries) > 0 || len(ax.Chains) > 0 || ax.IntQ != "" {
			return fmt.Errorf("named configuration %q takes no queue shape", ax.Scheme)
		}
		return nil
	}
	if !parametricSchemes[ax.Scheme] {
		return fmt.Errorf("unknown scheme %q", ax.Scheme)
	}
	if ax.IntQ != "" {
		if _, _, err := parseQ(ax.IntQ); err != nil {
			return err
		}
	}
	for _, set := range []struct {
		name string
		vals []int
	}{{"queues", ax.Queues}, {"entries", ax.Entries}} {
		if err := uniquePositive(set.name, set.vals); err != nil {
			return err
		}
	}
	if len(ax.Chains) > 0 {
		seen := map[int]bool{}
		for _, c := range ax.Chains {
			if c < 0 {
				return fmt.Errorf("axis chains value %d is negative", c)
			}
			if seen[c] {
				return fmt.Errorf("axis chains repeats value %d", c)
			}
			seen[c] = true
		}
		if ax.Scheme != "MixBUFF" && (len(ax.Chains) > 1 || ax.Chains[0] != 0) {
			return fmt.Errorf("chains apply only to MixBUFF")
		}
	}
	return nil
}

// uniquePositive rejects non-positive or repeated axis values.
func uniquePositive(axis string, vals []int) error {
	seen := map[int]bool{}
	for _, v := range vals {
		if v <= 0 {
			return fmt.Errorf("scenario: axis %s value %d is not positive", axis, v)
		}
		if seen[v] {
			return fmt.Errorf("scenario: axis %s repeats value %d", axis, v)
		}
		seen[v] = true
	}
	return nil
}

// parseQ parses an "AxB" queue shape.
func parseQ(s string) (a, b int, err error) {
	if _, err := fmt.Sscanf(s, "%dx%d", &a, &b); err != nil {
		return 0, 0, fmt.Errorf("bad queue shape %q (want AxB): %v", s, err)
	}
	if a <= 0 || b <= 0 {
		return 0, 0, fmt.Errorf("bad queue shape %q: non-positive", s)
	}
	return a, b, nil
}
