package scenario

import (
	"strings"
	"testing"
)

// FuzzParseSpec drives the strict JSON spec parser with arbitrary
// bytes: it must never panic, must reject unknown axes, and any spec it
// accepts must expand (or fail) cleanly without panicking.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		`{"schemes": [{"scheme": "MB_distr"}]}`,
		`{"name": "g", "suites": ["fp"], "schemes": [
			{"scheme": "MixBUFF", "intq": "8x8", "queues": [8, 12], "entries": [16], "chains": [0, 8], "distr": true}],
			"rob": [128, 256], "perfect_disambiguation": [false, true],
			"warmup": 1000, "instructions": 2000}`,
		`{"schemes": [{"scheme": "IssueFIFO"}], "mem_latency": [50, 100, 200]}`,
		`{"schemes": [{"scheme": "SuperQ"}]}`,
		`{"robz": [128]}`,
		`{"schemes": [{"scheme": "MB_distr"}], "benchmarks": ["nonesuch"]}`,
		`[1, 2, 3]`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			if s != nil {
				t.Fatal("ParseSpec returned both a spec and an error")
			}
			return
		}
		// Unknown axes must never survive parsing: every key the
		// decoder accepted is a real field, so re-encoding and
		// re-parsing must succeed too.
		out, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		if _, err := ParseSpec(out); err != nil {
			t.Fatalf("accepted spec does not re-parse: %v\n%s", err, out)
		}
		// Expansion may reject the spec (e.g. non-power-of-two ROB)
		// but must not panic, and errors must be prefixed.
		if _, err := s.Expand(); err != nil &&
			!strings.Contains(err.Error(), "scenario:") &&
			!strings.Contains(err.Error(), "pipeline:") {
			t.Fatalf("unlabeled expand error: %v", err)
		}
	})
}
