package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"distiq/internal/engine"
)

// metricColumns are the measured columns appended after the axis and
// benchmark columns of every emitted row.
var metricColumns = []string{"ipc", "iq_energy_pj", "cycles"}

// ResultSet pairs a grid with its results (in point order) and the
// engine counters of the run that produced them.
type ResultSet struct {
	Grid    *Grid
	Results []engine.Result
	Stats   engine.Stats
}

// Header returns the column names of the tabular emitters: the grid's
// varying axes, the benchmark, then the metrics.
func (rs *ResultSet) Header() []string {
	h := append([]string(nil), rs.Grid.Axes...)
	h = append(h, "benchmark")
	return append(h, metricColumns...)
}

// row renders one result row as strings aligned with Header.
func (rs *ResultSet) row(i int) []string {
	p, r := rs.Grid.Points[i], rs.Results[i]
	out := append([]string(nil), p.Values...)
	out = append(out, p.Bench,
		fmt.Sprintf("%.4f", r.IPC()),
		fmt.Sprintf("%.1f", r.IQEnergy),
		fmt.Sprintf("%d", r.Cycles))
	return out
}

// CSV renders the result set as comma-separated values with a header
// row. Rows follow grid order, so reruns at any parallelism (or from a
// warm cache) emit byte-identical output.
func (rs *ResultSet) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(rs.Header(), ","))
	b.WriteByte('\n')
	for i := range rs.Results {
		b.WriteString(strings.Join(rs.row(i), ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the result set as a GitHub-flavored markdown table.
func (rs *ResultSet) Markdown() string {
	var b strings.Builder
	if name := rs.Grid.Spec.Name; name != "" {
		fmt.Fprintf(&b, "### %s\n\n", name)
	}
	header := rs.Header()
	b.WriteString("| " + strings.Join(header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(header)) + "\n")
	for i := range rs.Results {
		b.WriteString("| " + strings.Join(rs.row(i), " | ") + " |\n")
	}
	return b.String()
}

// JSON renders the result set as an indented JSON document: the spec
// name and one object per row keyed by column name (metrics as numbers,
// axis values as strings). Run-varying engine counters are deliberately
// excluded — a warm-cache rerun must emit byte-identical documents;
// read Stats (or the CLI's stderr summary) for resolution counts.
func (rs *ResultSet) JSON() ([]byte, error) {
	type doc struct {
		Name string           `json:"name,omitempty"`
		Rows []map[string]any `json:"rows"`
	}
	d := doc{Name: rs.Grid.Spec.Name}
	for i := range rs.Results {
		p, r := rs.Grid.Points[i], rs.Results[i]
		row := make(map[string]any, len(rs.Grid.Axes)+4)
		for k, axis := range rs.Grid.Axes {
			row[axis] = p.Values[k]
		}
		row["benchmark"] = p.Bench
		row["ipc"] = r.IPC()
		row["iq_energy_pj"] = r.IQEnergy
		row["cycles"] = r.Cycles
		d.Rows = append(d.Rows, row)
	}
	return json.MarshalIndent(d, "", "  ")
}

// Formats lists the emitter names Emit accepts ("markdown" is an alias
// of "md").
var Formats = []string{"csv", "json", "md"}

// ContentType returns the MIME type of an Emit format, or false for an
// unknown format name.
func ContentType(format string) (string, bool) {
	switch format {
	case "csv":
		return "text/csv; charset=utf-8", true
	case "json":
		return "application/json", true
	case "md", "markdown":
		return "text/markdown; charset=utf-8", true
	}
	return "", false
}

// Emit writes the result set to w in the named format. Every front end
// (cmd/iqsweep, the distiqd HTTP service) funnels through this one
// function, so a given grid emits byte-identical documents whichever way
// it is requested. The JSON document gains a trailing newline, matching
// the historical CLI output.
func (rs *ResultSet) Emit(w io.Writer, format string) error {
	switch format {
	case "csv":
		_, err := io.WriteString(w, rs.CSV())
		return err
	case "json":
		data, err := rs.JSON()
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	case "md", "markdown":
		_, err := io.WriteString(w, rs.Markdown())
		return err
	}
	return fmt.Errorf("scenario: unknown format %q (csv, json or md)", format)
}
