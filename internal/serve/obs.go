package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"distiq/internal/obs"
)

// ctxKey keys the values the instrumentation middleware stores on the
// request context.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request ID the middleware assigned (or accepted
// from the caller's X-Request-Id header); empty outside a request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// validRequestID accepts caller-supplied request IDs that are safe to
// echo into headers and logs: 1–64 characters of [A-Za-z0-9._-].
func validRequestID(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// newRequestID honors a well-formed inbound X-Request-Id (so a caller's
// trace ID threads through distiqd's logs) or mints a random 8-byte hex
// ID.
func newRequestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); validRequestID(id) {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter records the response status and the matched route for
// the middleware. It forwards Flush, so the NDJSON streaming handler
// keeps its incremental delivery through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	route  string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route registers pattern on the mux, stamping the route label (the
// pattern minus its method) onto the statusWriter so the middleware can
// attribute duration and count samples without Go 1.23's Request.Pattern.
func (s *Server) route(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	label := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		label = pattern[i+1:]
	}
	mux.Handle(pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sw, ok := w.(*statusWriter); ok {
			sw.route = label
		}
		h(w, r)
	}))
}

// quietRoutes log at debug level: probes and scrapes arrive every few
// seconds and would drown the sweep lifecycle lines at info.
var quietRoutes = map[string]bool{
	"/metrics": true,
	"/healthz": true,
	"/livez":   true,
}

// ServeHTTP dispatches to the service's routes through the
// instrumentation middleware: every request gets an X-Request-Id
// (honored from the caller or generated), an in-flight gauge window, a
// per-route duration observation and request counter, and one
// structured log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := newRequestID(r)
	sw := &statusWriter{ResponseWriter: w}
	sw.Header().Set("X-Request-Id", id)
	s.httpInFlight.Inc()
	s.mux.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	s.httpInFlight.Dec()

	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	route := sw.route
	if route == "" {
		// The mux matched no registered pattern (404/405); one bucket
		// keeps unmatched paths from minting unbounded label values.
		route = "other"
	}
	dur := time.Since(start)
	s.obs.Counter("distiq_http_requests_total",
		"HTTP requests by matched route and status code.",
		obs.L("route", route), obs.L("code", strconv.Itoa(status))).Inc()
	s.obs.Histogram("distiq_http_request_duration_seconds",
		"HTTP request duration by matched route.",
		httpDurBuckets, obs.L("route", route)).Observe(dur.Seconds())

	lvl := slog.LevelInfo
	if quietRoutes[route] {
		lvl = slog.LevelDebug
	}
	s.log.Log(r.Context(), lvl, "request",
		"method", r.Method,
		"route", route,
		"path", r.URL.Path,
		"status", status,
		"duration_ms", float64(dur.Microseconds())/1e3,
		"request_id", id,
		"remote", r.RemoteAddr)
}

// httpDurBuckets spans 1ms–16s exponentially: cache-hit introspection
// answers in microseconds-to-milliseconds, cold sweep streams in
// seconds.
var httpDurBuckets = obs.ExpBuckets(0.001, 4, 8)

// instrument registers the server-level metrics (the engine registers
// its own on the same registry in New).
func (s *Server) instrument() {
	reg := s.obs
	s.httpInFlight = reg.Gauge("distiq_http_in_flight_requests",
		"HTTP requests currently being served.")
	reg.GaugeFunc("distiq_sweeps_active",
		"Sweeps admitted but not yet finished.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.active)
		})
	s.sweepsAccepted = reg.Counter("distiq_sweeps_total",
		"Sweep lifecycle transitions by state.", obs.L("state", "accepted"))
	s.sweepsDone = reg.Counter("distiq_sweeps_total",
		"Sweep lifecycle transitions by state.", obs.L("state", "done"))
	s.sweepsFailed = reg.Counter("distiq_sweeps_total",
		"Sweep lifecycle transitions by state.", obs.L("state", "failed"))
	s.instsPerSec = reg.Gauge("distiq_sweep_insts_per_second",
		"Committed instructions per wall second of the most recently finished sweep (cache hits included).")
	reg.GaugeFunc("distiq_study_active",
		"Studies admitted but not yet finished.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.activeStudies)
		})
	s.studiesAccepted = reg.Counter("distiq_study_runs_total",
		"Study lifecycle transitions by state.", obs.L("state", "accepted"))
	s.studiesDone = reg.Counter("distiq_study_runs_total",
		"Study lifecycle transitions by state.", obs.L("state", "done"))
	s.studiesFailed = reg.Counter("distiq_study_runs_total",
		"Study lifecycle transitions by state.", obs.L("state", "failed"))
	s.studyPoints = reg.Counter("distiq_study_points_total",
		"Simulation points resolved on behalf of studies.")
	s.studyFrontierRounds = reg.Counter("distiq_study_frontier_rounds_total",
		"Frontier search rounds completed across finished studies.")
	version, goVersion := VersionInfo()
	reg.Gauge("distiq_build_info",
		"Build metadata; the value is always 1.",
		obs.L("version", version), obs.L("goversion", goVersion)).Set(1)
	reg.Gauge("distiq_process_start_time_seconds",
		"Unix time the server was constructed.").Set(float64(s.start.Unix()))
	reg.GaugeFunc("distiq_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
}

// VersionInfo reports the module version (as recorded by the build) and
// the Go toolchain version — the fields served at /v1/version and logged
// once at distiqd startup.
func VersionInfo() (version, goVersion string) {
	version = "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return version, runtime.Version()
}

// handleMetrics serves the Prometheus text exposition of every
// registered metric (server, engine and process families).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.WritePrometheus(w) //nolint:errcheck // the response is already committed
}

// versionDoc is the JSON body of GET /v1/version.
type versionDoc struct {
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	StartTime     string  `json:"start_time"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// handleVersion serves build and process identity: module version, Go
// version, start time and uptime — the same fields distiqd logs once at
// startup.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	version, goVersion := VersionInfo()
	writeJSON(w, http.StatusOK, versionDoc{
		Version:       version,
		GoVersion:     goVersion,
		StartTime:     s.start.UTC().Format(time.RFC3339),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

// handleLive is the liveness probe: it answers 200 for as long as the
// process serves requests, draining included (readiness is /healthz).
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}
