package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// clientSpec builds one of three overlapping 2-point specs: every spec
// shares the rob=128 point and contributes one more from a 3-value pool,
// so concurrent submissions contend on the same jobs.
func clientSpec(i int) string {
	robs := []int{256, 512, 1024}
	return fmt.Sprintf(`{
	  "name": "client-%d",
	  "benchmarks": ["swim"],
	  "schemes": [{"scheme": "MB_distr"}],
	  "rob": [128, %d],
	  "warmup": 500,
	  "instructions": 1000
	}`, i%3, robs[i%3])
}

// TestConcurrentClientsSingleFlight hammers one server with N goroutine
// clients submitting overlapping specs and asserts, via the engine's
// stats surface, that no job was simulated twice: the 16 submitted
// points cover only 4 unique jobs, and everything beyond those 4 must
// come from the in-memory cache or single-flight sharing. Run under
// -race (CI does) this also proves the submission path, the per-sweep
// progress trackers and the shared engine are data-race free.
func TestConcurrentClientsSingleFlight(t *testing.T) {
	const clients = 8
	srv := New(Config{Parallel: 4, MaxQueued: clients})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ids := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Plain http.Post here: test helpers must not Fatal off
			// the test goroutine.
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
				strings.NewReader(clientSpec(i)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var st Status
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	var perSweep int64
	for _, id := range ids {
		st := waitDone(t, ts, id)
		if st.State != "done" {
			t.Fatalf("sweep %s: %+v", id, st)
		}
		if st.Done != 2 || st.Simulated+st.MemoryHits+st.DiskHits+st.Shared != 2 {
			t.Fatalf("sweep %s counts inconsistent: %+v", id, st)
		}
		perSweep += st.Simulated
	}

	// 4 unique jobs across all clients: rob 128 (shared by every spec)
	// plus rob 256, 512, 1024.
	stats := srv.Stats()
	if stats.Simulated != 4 {
		t.Fatalf("engine simulated %d jobs, want 4 (single-flight dedup broken): %+v",
			stats.Simulated, stats)
	}
	if perSweep != 4 {
		t.Fatalf("per-sweep simulated counts sum to %d, want 4", perSweep)
	}
	if stats.Requested != 2*clients {
		t.Fatalf("engine requested %d jobs, want %d", stats.Requested, 2*clients)
	}
	if stats.MemoryHits+stats.Shared != 2*clients-4 {
		t.Fatalf("cache/share counts don't cover the rest: %+v", stats)
	}
}
