package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"distiq/internal/engine"
	"distiq/internal/obs"

	clientpkg "distiq/internal/client"
)

// scrape GETs /metrics, validates the exposition syntax and content
// type, and returns the body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	return string(body)
}

// sampleValue returns the value of the exposition line whose series part
// (name plus label block) is exactly series, or -1 if absent.
func sampleValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: bad value in %q: %v", series, line, err)
		}
		return v
	}
	return -1
}

// TestMetricsAfterSweep is the acceptance scrape: after one cold sweep
// the exposition parses, the engine counters agree with /v1/stats, the
// HTTP duration histograms have non-zero buckets and the gauges are
// coherent.
func TestMetricsAfterSweep(t *testing.T) {
	srv := New(Config{Parallel: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, testSpec)
	waitDone(t, ts, st.ID)

	var stats struct {
		Requested int64 `json:"requested"`
		Simulated int64 `json:"simulated"`
	}
	getJSON(t, ts, "/v1/stats", &stats)

	body := scrape(t, ts)

	// Engine counters are read from the same Stats snapshot /v1/stats
	// serves, so the two views must agree exactly.
	if v := sampleValue(t, body, `distiq_engine_requests_total`); v != float64(stats.Requested) {
		t.Errorf("distiq_engine_requests_total = %v, /v1/stats requested = %d", v, stats.Requested)
	}
	if v := sampleValue(t, body, `distiq_engine_jobs_total{source="simulated"}`); v != float64(stats.Simulated) {
		t.Errorf(`distiq_engine_jobs_total{source="simulated"} = %v, /v1/stats simulated = %d`, v, stats.Simulated)
	}

	// The four co-batchable points (one benchmark, one run length) ran as
	// a single lockstep group, which counts as one simulator run for the
	// latency histogram and one shared trace pass for the batch counters.
	if v := sampleValue(t, body, `distiq_engine_simulate_duration_seconds_count`); v != 1 {
		t.Errorf("distiq_engine_simulate_duration_seconds_count = %v, want 1 (one lockstep group)", v)
	}
	if !regexp.MustCompile(`distiq_engine_simulate_duration_seconds_bucket\{le="\+Inf"\} [1-9]`).MatchString(body) {
		t.Error("simulate duration histogram has no non-zero bucket")
	}
	if v := sampleValue(t, body, `distiq_engine_batch_jobs_total`); v != 4 {
		t.Errorf("distiq_engine_batch_jobs_total = %v, want 4 (every point batched)", v)
	}
	if v := sampleValue(t, body, `distiq_engine_batch_groups_total`); v != 1 {
		t.Errorf("distiq_engine_batch_groups_total = %v, want 1", v)
	}

	// The submit and the status polls landed in the per-route request
	// counters and duration histograms.
	if v := sampleValue(t, body, `distiq_http_requests_total{code="202",route="/v1/sweeps"}`); v < 1 {
		t.Errorf("submit not counted: %v", v)
	}
	if v := sampleValue(t, body, `distiq_http_request_duration_seconds_count{route="/v1/sweeps/{id}/status"}`); v < 1 {
		t.Errorf("status polls not observed: %v", v)
	}
	if !regexp.MustCompile(`distiq_http_request_duration_seconds_bucket\{le="\+Inf",route="/v1/sweeps/\{id\}/status"\} [1-9]`).MatchString(body) {
		t.Error("http duration histogram has no non-zero bucket")
	}

	// Gauges: the scrape itself is the one in-flight request; the sweep
	// is finished, so nothing is queued or running.
	if v := sampleValue(t, body, `distiq_http_in_flight_requests`); v != 1 {
		t.Errorf("distiq_http_in_flight_requests = %v, want 1 (the scrape)", v)
	}
	if v := sampleValue(t, body, `distiq_engine_queue_depth`); v != 0 {
		t.Errorf("distiq_engine_queue_depth = %v, want 0", v)
	}
	if v := sampleValue(t, body, `distiq_engine_workers_busy`); v != 0 {
		t.Errorf("distiq_engine_workers_busy = %v, want 0", v)
	}
	if v := sampleValue(t, body, `distiq_sweeps_total{state="accepted"}`); v != 1 {
		t.Errorf(`distiq_sweeps_total{state="accepted"} = %v, want 1`, v)
	}
	if v := sampleValue(t, body, `distiq_sweeps_total{state="done"}`); v != 1 {
		t.Errorf(`distiq_sweeps_total{state="done"} = %v, want 1`, v)
	}
	if v := sampleValue(t, body, `distiq_sweep_insts_per_second`); v <= 0 {
		t.Errorf("distiq_sweep_insts_per_second = %v, want > 0", v)
	}
}

// TestMetricsNamesMatchDocs is the CI observability gate: every metric
// name the architecture document lists must appear in a live scrape, so
// the docs cannot drift from the exposition.
func TestMetricsNamesMatchDocs(t *testing.T) {
	doc, err := os.ReadFile("../../docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	names := regexp.MustCompile(`distiq_[a-z0-9_]+`).FindAllString(string(doc), -1)
	seen := map[string]bool{}
	var docNames []string
	for _, n := range names {
		// Sample suffixes in prose resolve to their histogram family.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(n, suf); ok && base != "distiq_engine_workers" {
				n = base
			}
		}
		if !seen[n] {
			seen[n] = true
			docNames = append(docNames, n)
		}
	}
	if len(docNames) < 10 {
		t.Fatalf("only %d metric names found in docs/ARCHITECTURE.md — is the table gone?", len(docNames))
	}

	// A batched tier over memory and disk registers the store metric
	// families too, so the scrape covers the whole documented inventory.
	store := engine.NewBatcher(
		engine.NewTiered(engine.NewMemStore(), engine.NewStore(t.TempDir())),
		engine.BatcherConfig{})
	srv := New(Config{Parallel: 1, Store: store})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// A fleet client instrumented on the server registry covers the
	// distiq_fleet_* families the same way cmd/distiqd operators would
	// see them when fronting a fleet.
	clientpkg.NewFleet([]string{ts.URL}).Instrument(srv.Metrics())
	st := submit(t, ts, testSpec)
	waitDone(t, ts, st.ID)
	body := scrape(t, ts)

	for _, n := range docNames {
		if !strings.Contains(body, "# TYPE "+n+" ") {
			t.Errorf("documented metric %s missing from /metrics", n)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestVersionEndpoint pins the /v1/version document shape.
func TestVersionEndpoint(t *testing.T) {
	srv := New(Config{Parallel: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var doc struct {
		Version       string  `json:"version"`
		GoVersion     string  `json:"go_version"`
		StartTime     string  `json:"start_time"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	getJSON(t, ts, "/v1/version", &doc)
	if doc.Version == "" {
		t.Error("empty version")
	}
	if !strings.HasPrefix(doc.GoVersion, "go") {
		t.Errorf("go_version = %q", doc.GoVersion)
	}
	if _, err := time.Parse(time.RFC3339, doc.StartTime); err != nil {
		t.Errorf("start_time %q: %v", doc.StartTime, err)
	}
	if doc.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %v", doc.UptimeSeconds)
	}
}

// TestRequestIDHeader: well-formed caller IDs thread through, absent or
// malformed ones are replaced by a generated 16-hex-digit ID.
func TestRequestIDHeader(t *testing.T) {
	srv := New(Config{Parallel: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(inbound string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/machine", nil)
		if err != nil {
			t.Fatal(err)
		}
		if inbound != "" {
			req.Header.Set("X-Request-Id", inbound)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.Header.Get("X-Request-Id")
	}

	genRE := regexp.MustCompile(`^[0-9a-f]{16}$`)
	if id := get(""); !genRE.MatchString(id) {
		t.Errorf("generated id = %q, want 16 hex digits", id)
	}
	if id := get("trace-41.B_7"); id != "trace-41.B_7" {
		t.Errorf("well-formed inbound id not echoed: %q", id)
	}
	for _, bad := range []string{"has space", "semi;colon", strings.Repeat("x", 65)} {
		if id := get(bad); id == bad || !genRE.MatchString(id) {
			t.Errorf("malformed inbound %q: echoed %q, want generated", bad, id)
		}
	}
}

// logBuffer is a goroutine-safe sink for the server's structured log.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestStructuredRequestLog: every API request produces one JSON record
// carrying the route, status and X-Request-Id; probe and scrape routes
// stay below the info level.
func TestStructuredRequestLog(t *testing.T) {
	var buf logBuffer
	srv := New(Config{
		Parallel: 1,
		Logger:   slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo})),
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/machine", nil)
	req.Header.Set("X-Request-Id", "log-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	// The middleware logs after the handler writes the body, so the
	// record can land an instant after the client sees the response.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), `"route":"/v1/machine"`) {
		if time.Now().After(deadline) {
			t.Fatalf("no request record; log: %s", buf.String())
		}
		time.Sleep(time.Millisecond)
	}

	var rec struct {
		Msg       string  `json:"msg"`
		Method    string  `json:"method"`
		Route     string  `json:"route"`
		Status    int     `json:"status"`
		RequestID string  `json:"request_id"`
		Duration  float64 `json:"duration_ms"`
	}
	found := false
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "/healthz") || strings.Contains(line, "/metrics") {
			t.Errorf("probe route logged at info: %s", line)
		}
		if !strings.Contains(line, `"route":"/v1/machine"`) {
			continue
		}
		found = true
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %s: %v", line, err)
		}
		if rec.Msg != "request" || rec.Method != "GET" || rec.Status != 200 ||
			rec.RequestID != "log-test-1" || rec.Duration < 0 {
			t.Errorf("record = %+v", rec)
		}
	}
	if !found {
		t.Fatal("no /v1/machine record")
	}
}

// TestManifestEndpointAndStream: the manifest endpoint answers 202 while
// the sweep runs and, once done, serves a manifest that verifies and is
// byte-identical to the one the NDJSON done event carries. A failed
// sweep has no manifest.
func TestManifestEndpointAndStream(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	srv := New(Config{
		Parallel: 1,
		Simulate: func(j engine.Job) (engine.Result, error) {
			started <- struct{}{}
			<-release
			return engine.Result{}, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, testSpec)
	<-started

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("running manifest status = %d, want 202", resp.StatusCode)
	}

	close(release)
	if got := waitDone(t, ts, st.ID); got.State != "done" {
		t.Fatalf("sweep = %+v", got)
	}

	var m engine.Manifest
	getJSON(t, ts, "/v1/sweeps/"+st.ID+"/manifest", &m)
	if err := m.Check(); err != nil {
		t.Fatalf("manifest does not verify: %v", err)
	}
	if m.Points != 4 || m.Name != "e2e" || len(m.Leaves) != 4 {
		t.Fatalf("manifest = %d points, name %q, %d leaves", m.Points, m.Name, len(m.Leaves))
	}

	// The NDJSON done event carries the same manifest.
	sresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var last clientpkg.StreamEvent
	points := 0
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream event %s: %v", sc.Bytes(), err)
		}
		if !last.Done {
			points++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !last.Done || points != 4 {
		t.Fatalf("stream ended with %+v after %d points", last, points)
	}
	if last.Manifest == nil {
		t.Fatal("done event carries no manifest")
	}
	if last.Manifest.Root != m.Root {
		t.Fatalf("stream manifest root %s != endpoint root %s", last.Manifest.Root, m.Root)
	}

	// A failed sweep serves its error instead of a manifest.
	fsrv := New(Config{
		Parallel: 1,
		Simulate: func(j engine.Job) (engine.Result, error) {
			return engine.Result{}, fmt.Errorf("injected failure")
		},
	})
	fts := httptest.NewServer(fsrv)
	defer fts.Close()
	fst := submit(t, fts, testSpec)
	if got := waitDone(t, fts, fst.ID); got.State != "failed" {
		t.Fatalf("sweep = %+v", got)
	}
	fresp, err := http.Get(fts.URL + "/v1/sweeps/" + fst.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	fbody, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(fbody), "sweep_failed") {
		t.Fatalf("failed-sweep manifest: status %d, body %s", fresp.StatusCode, fbody)
	}
}
