// Package serve exposes the concurrent experiment engine as a long-lived
// HTTP service, so many clients amortize one warm in-memory cache and one
// shared on-disk store instead of each paying cold simulations.
//
// The API accepts the strict-JSON scenario Spec of internal/scenario and
// funnels results through the same emitters as cmd/iqsweep, so a sweep
// fetched over HTTP is byte-identical to `iqsweep -spec` on the same
// spec:
//
//	POST /v1/sweeps               submit a spec; 202 + sweep id, 400 on a
//	                              malformed/invalid spec, 429 over quota,
//	                              503 while draining
//	GET  /v1/sweeps               status of every known sweep
//	GET  /v1/sweeps/{id}          results (?format=csv|json|md; 202 while
//	                              the sweep is still running)
//	GET  /v1/sweeps/{id}/stream   per-point results as NDJSON, streamed in
//	                              grid order as they resolve (the Client
//	                              layer's RemoteClient consumes this)
//	GET  /v1/sweeps/{id}/status   per-sweep progress and resolution counts
//	GET  /v1/sweeps/{id}/manifest the sweep's tamper-evident Merkle
//	                              manifest (202 while running)
//	GET  /v1/machine              the paper's Table 1 machine
//	GET  /v1/benchmarks           workload names per suite
//	GET  /v1/stats                engine-wide resolution counters
//	GET  /v1/version              build and process identity
//	GET  /metrics                 Prometheus text exposition
//	GET  /healthz                 readiness (503 while draining)
//	GET  /livez                   liveness
//
// Every error body has one stable shape: {"code": ..., "error": ...},
// and every response carries an X-Request-Id header (honored from the
// request or generated) that also tags the server's structured logs.
// Specs are expanded and validated before admission (invalid grids never
// occupy a queue slot), admitted sweeps run asynchronously on the shared
// engine's worker pool, and Drain provides graceful shutdown: new
// submissions are refused while every in-flight sweep runs to completion.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"distiq/internal/client"
	"distiq/internal/core"
	"distiq/internal/engine"
	"distiq/internal/isa"
	"distiq/internal/obs"
	"distiq/internal/pipeline"
	"distiq/internal/scenario"
	"distiq/internal/trace"
)

// DefaultMaxQueued bounds admitted-but-unfinished sweeps when Config
// leaves MaxQueued zero.
const DefaultMaxQueued = 64

// DefaultMaxHistory bounds retained finished sweeps when Config leaves
// MaxHistory zero.
const DefaultMaxHistory = 256

// maxSpecBytes bounds a submitted spec document; real specs are a few
// hundred bytes, so a megabyte is generous.
const maxSpecBytes = 1 << 20

// Config configures a Server.
type Config struct {
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS, 1 = serial).
	Parallel int
	// CacheDir, when non-empty, backs the engine with the persistent
	// distiq-v2 content-addressed store, shared with the iq* CLIs and
	// other distiqd processes.
	CacheDir string
	// Store, when non-nil, is the engine's persistent result backend —
	// any engine.ResultStore (engine.OpenStore builds one from a -store
	// spec: filesystem, memory, HTTP blob, read-through tiers, write-
	// behind batching). It takes precedence over CacheDir. The Server
	// adopts the store: Close flushes and closes it.
	Store engine.ResultStore
	// MaxQueued bounds sweeps admitted but not yet finished; further
	// submissions answer 429. Zero selects DefaultMaxQueued.
	MaxQueued int
	// MaxHistory bounds finished sweeps retained for result fetches;
	// beyond it the oldest finished sweeps (and their result sets) are
	// evicted and their ids answer 404. Zero selects DefaultMaxHistory.
	MaxHistory int
	// Simulate overrides the simulation function (tests inject stubs);
	// nil selects the real simulator.
	Simulate func(engine.Job) (engine.Result, error)
	// Logger, when non-nil, receives one structured record per HTTP
	// request and per sweep lifecycle event, each carrying the
	// request_id echoed in the X-Request-Id response header. Nil
	// discards logs.
	Logger *slog.Logger
}

// sweepState is the lifecycle of one admitted sweep.
type sweepState string

const (
	stateQueued  sweepState = "queued"
	stateRunning sweepState = "running"
	stateDone    sweepState = "done"
	stateFailed  sweepState = "failed"
)

// sweep is one admitted grid and its progress. The progress counters are
// per-sweep (fed by the engine's per-point streaming hook), so a warm
// resubmission reports 0 simulated even while other sweeps simulate.
// Per-point results are retained in grid order as they resolve, so the
// NDJSON streaming endpoint can deliver each point the moment the
// in-order prefix reaches it; cond (on mu) is broadcast at every point
// completion and state change.
type sweep struct {
	id   string
	name string
	grid *scenario.Grid
	// reqID is the submitting request's ID, threaded through every
	// lifecycle log line so a sweep's records correlate with the
	// submission.
	reqID string

	mu    sync.Mutex
	cond  *sync.Cond
	state sweepState
	total int
	done  int
	// Per-sweep resolution counts by source.
	counts client.Counts
	// Per-point outcomes, indexed by grid position; ready[i] flips once
	// results[i]/sources[i] are valid.
	results []engine.Result
	sources []engine.Source
	ready   []bool
	res     *scenario.ResultSet
	err     error
	// manifest is the sweep's tamper-evident Merkle manifest, built once
	// when the sweep completes successfully.
	manifest *engine.Manifest
}

// Status is the JSON progress document of one sweep.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	// Points is the grid size; Done counts points resolved so far.
	Points int `json:"points"`
	Done   int `json:"done"`
	// Resolution counts, per-sweep: Simulated ran the simulator;
	// MemoryHits, DiskHits and Shared were served from the shared
	// engine's caches or an identical in-flight job.
	Simulated  int64  `json:"simulated"`
	MemoryHits int64  `json:"memory_hits"`
	DiskHits   int64  `json:"disk_hits"`
	Shared     int64  `json:"shared"`
	Error      string `json:"error,omitempty"`
}

// status snapshots the sweep under its lock.
func (sw *sweep) status() Status {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.statusLocked()
}

// statusLocked snapshots the sweep; the caller holds sw.mu.
func (sw *sweep) statusLocked() Status {
	st := Status{
		ID: sw.id, Name: sw.name, State: string(sw.state),
		Points: sw.total, Done: sw.done,
		Simulated: sw.counts.Simulated, MemoryHits: sw.counts.MemoryHits,
		DiskHits: sw.counts.DiskHits, Shared: sw.counts.Shared,
	}
	if sw.err != nil {
		st.Error = sw.err.Error()
	}
	return st
}

// Server is the HTTP experiment service: one shared engine, a bounded
// admission queue of sweeps, and handlers for submission, progress,
// results and introspection. It implements http.Handler.
type Server struct {
	eng        *engine.Engine
	store      engine.ResultStore
	maxQueued  int
	maxHistory int
	log        *slog.Logger
	mux        *http.ServeMux
	obs        *obs.Registry
	start      time.Time

	// Server-level metric instruments (the engine's live on the same
	// registry).
	httpInFlight        *obs.Gauge
	sweepsAccepted      *obs.Counter
	sweepsDone          *obs.Counter
	sweepsFailed        *obs.Counter
	instsPerSec         *obs.Gauge
	studiesAccepted     *obs.Counter
	studiesDone         *obs.Counter
	studiesFailed       *obs.Counter
	studyPoints         *obs.Counter
	studyFrontierRounds *obs.Counter

	mu       sync.Mutex
	sweeps   map[string]*sweep
	order    []string // sweep ids in admission order
	active   int      // admitted but unfinished sweeps
	nextID   int
	draining bool

	// Study registry, bounded and evicted independently of sweeps (a
	// study occupying a queue slot must not starve sweep admission).
	studies       map[string]*studyRec
	studyOrder    []string
	activeStudies int
	nextStudyID   int

	wg sync.WaitGroup // one per in-flight sweep, for Drain
}

// New returns a Server around a fresh engine.
func New(cfg Config) *Server {
	maxQueued := cfg.MaxQueued
	if maxQueued <= 0 {
		maxQueued = DefaultMaxQueued
	}
	maxHistory := cfg.MaxHistory
	if maxHistory <= 0 {
		maxHistory = DefaultMaxHistory
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	reg := obs.NewRegistry()
	s := &Server{
		store: cfg.Store,
		eng: engine.New(engine.Config{
			Workers:  cfg.Parallel,
			CacheDir: cfg.CacheDir,
			Store:    cfg.Store,
			Simulate: cfg.Simulate,
			Obs:      reg,
		}),
		maxQueued:  maxQueued,
		maxHistory: maxHistory,
		log:        logger,
		obs:        reg,
		start:      time.Now(),
		sweeps:     make(map[string]*sweep),
		studies:    make(map[string]*studyRec),
	}
	s.instrument()
	mux := http.NewServeMux()
	s.route(mux, "POST /v1/sweeps", s.handleSubmit)
	s.route(mux, "GET /v1/sweeps", s.handleList)
	s.route(mux, "GET /v1/sweeps/{id}", s.handleResult)
	s.route(mux, "GET /v1/sweeps/{id}/stream", s.handleStream)
	s.route(mux, "GET /v1/sweeps/{id}/status", s.handleStatus)
	s.route(mux, "GET /v1/sweeps/{id}/manifest", s.handleManifest)
	s.route(mux, "POST /v1/studies", s.handleStudySubmit)
	s.route(mux, "GET /v1/studies", s.handleStudyList)
	s.route(mux, "GET /v1/studies/{id}", s.handleStudyResult)
	s.route(mux, "GET /v1/studies/{id}/stream", s.handleStudyStream)
	s.route(mux, "GET /v1/studies/{id}/status", s.handleStudyStatus)
	s.route(mux, "GET /v1/studies/{id}/manifest", s.handleStudyManifest)
	s.route(mux, "GET /v1/machine", s.handleMachine)
	s.route(mux, "GET /v1/benchmarks", s.handleBenchmarks)
	s.route(mux, "GET /v1/stats", s.handleStats)
	s.route(mux, "GET /v1/version", s.handleVersion)
	s.route(mux, "GET /metrics", s.handleMetrics)
	s.route(mux, "GET /healthz", s.handleHealth)
	s.route(mux, "GET /livez", s.handleLive)
	s.mux = mux
	return s
}

// discardHandler drops every record (slog.DiscardHandler arrived in Go
// 1.24; the module supports 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// DiscardHandler returns a slog.Handler that drops every record — the
// logger a front end uses under -quiet.
func DiscardHandler() slog.Handler { return discardHandler{} }

// Stats returns the shared engine's resolution counters.
func (s *Server) Stats() engine.Stats { return s.eng.Stats() }

// Metrics returns the server's metric registry — the families served at
// /metrics — for embedders that add their own instruments.
func (s *Server) Metrics() *obs.Registry { return s.obs }

// apiError is the one error-body shape of the whole API.
type apiError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, apiError{Code: code, Error: msg})
}

// writeSpecError surfaces a spec parse/expand failure. Those errors are
// always caller mistakes — the cliutil taxonomy's bad-input class, which
// the CLIs surface as exit 2 and this service as 400.
func writeSpecError(w http.ResponseWriter, err error) {
	writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
}

// handleSubmit parses, validates and expands a spec, then admits it onto
// the bounded queue and starts it on the shared engine.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("spec exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("reading request body: %v", err))
		return
	}
	spec, err := scenario.ParseSpec(body)
	if err != nil {
		writeSpecError(w, err)
		return
	}
	grid, err := spec.Expand()
	if err != nil {
		writeSpecError(w, err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining",
			"server is draining; not accepting new sweeps")
		return
	}
	if s.active >= s.maxQueued {
		n := s.active
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("admission queue is full (%d sweeps queued or running)", n))
		return
	}
	s.nextID++
	sw := &sweep{
		id:      fmt.Sprintf("sw-%06d", s.nextID),
		name:    spec.Name,
		grid:    grid,
		reqID:   RequestID(r.Context()),
		state:   stateQueued,
		total:   grid.Size(),
		results: make([]engine.Result, grid.Size()),
		sources: make([]engine.Source, grid.Size()),
		ready:   make([]bool, grid.Size()),
	}
	sw.cond = sync.NewCond(&sw.mu)
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	s.active++
	s.wg.Add(1)
	s.mu.Unlock()

	s.sweepsAccepted.Inc()
	s.log.Info("sweep accepted",
		"sweep", sw.id, "name", sw.name, "points", sw.total, "request_id", sw.reqID)
	// Snapshot the documented "queued" response before the sweep starts:
	// on a warm store a tiny grid could otherwise finish first and the
	// 202 body would surprise clients pinned to the documented shape.
	st := sw.status()
	go s.runSweep(sw, grid)

	w.Header().Set("Location", "/v1/sweeps/"+sw.id)
	writeJSON(w, http.StatusAccepted, st)
}

// runSweep executes one admitted grid on the shared engine through the
// per-point streaming primitive: every resolved point lands in the
// sweep's in-order result slots (waking any NDJSON streamers) and feeds
// the per-sweep resolution counters.
func (s *Server) runSweep(sw *sweep, grid *scenario.Grid) {
	defer s.wg.Done()
	started := time.Now()
	sw.mu.Lock()
	sw.state = stateRunning
	sw.cond.Broadcast()
	sw.mu.Unlock()

	errs := make([]error, grid.Size())
	grid.RunStream(context.Background(), s.eng, func(i int, r engine.Result, err error, src engine.Source) {
		sw.mu.Lock()
		sw.done++
		sw.counts.Add(src)
		if err != nil {
			errs[i] = err
		} else {
			sw.results[i], sw.sources[i], sw.ready[i] = r, src, true
		}
		sw.cond.Broadcast()
		sw.mu.Unlock()
	})
	var err error
	for _, e := range errs {
		if e != nil {
			err = e
			break
		}
	}

	elapsed := time.Since(started)
	var manifest *engine.Manifest
	var insts uint64
	if err == nil {
		for _, r := range sw.results {
			insts += r.Insts
		}
		// The manifest name is the spec name (as the Local client uses),
		// so a Remote sweep's manifest is identical to a Local sweep of
		// the same grid. Spec-expanded grids are always addressable; a
		// build failure is a server bug, surfaced at the endpoint.
		manifest, err = engine.BuildManifest(sw.name, grid.Jobs(), sw.results)
	}

	sw.mu.Lock()
	if err != nil {
		sw.state, sw.err = stateFailed, err
	} else {
		sw.state = stateDone
		sw.manifest = manifest
		sw.res = &scenario.ResultSet{Grid: grid, Results: sw.results, Stats: s.eng.Stats()}
	}
	sw.cond.Broadcast()
	sw.mu.Unlock()

	s.mu.Lock()
	s.active--
	s.evictLocked()
	s.mu.Unlock()

	if st := sw.status(); err != nil {
		s.sweepsFailed.Inc()
		s.log.Error("sweep failed",
			"sweep", sw.id, "error", err.Error(),
			"duration_s", elapsed.Seconds(), "request_id", sw.reqID)
	} else {
		ips := float64(insts) / elapsed.Seconds()
		s.instsPerSec.Set(ips)
		s.sweepsDone.Inc()
		s.log.Info("sweep done",
			"sweep", sw.id,
			"simulated", st.Simulated, "memory", st.MemoryHits,
			"disk", st.DiskHits, "shared", st.Shared,
			"duration_s", elapsed.Seconds(),
			"insts_per_second", ips,
			"merkle_root", manifest.Root,
			"request_id", sw.reqID)
	}
}

// evictLocked drops the oldest finished sweeps — and, with them, their
// retained result sets — once more than maxHistory have finished, so a
// long-lived service does not grow without bound. Unfinished sweeps are
// never evicted (the admission queue bounds those). Called with s.mu
// held.
func (s *Server) evictLocked() {
	finished := 0
	for _, id := range s.order {
		sw := s.sweeps[id]
		sw.mu.Lock()
		f := sw.state == stateDone || sw.state == stateFailed
		sw.mu.Unlock()
		if f {
			finished++
		}
	}
	for i := 0; finished > s.maxHistory && i < len(s.order); {
		sw := s.sweeps[s.order[i]]
		sw.mu.Lock()
		f := sw.state == stateDone || sw.state == stateFailed
		sw.mu.Unlock()
		if !f {
			i++
			continue
		}
		delete(s.sweeps, sw.id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		finished--
		s.log.Info("sweep evicted", "sweep", sw.id, "max_history", s.maxHistory)
	}
}

// lookup returns the sweep for the request's {id}, or writes 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *sweep {
	id := r.PathValue("id")
	s.mu.Lock()
	sw := s.sweeps[id]
	s.mu.Unlock()
	if sw == nil {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("unknown sweep %q", id))
	}
	return sw
}

// handleStatus serves per-sweep progress.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}

// handleList serves every known sweep's status in admission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sws := make([]*sweep, 0, len(s.order))
	for _, id := range s.order {
		sws = append(sws, s.sweeps[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(sws))
	for i, sw := range sws {
		out[i] = sw.status()
	}
	writeJSON(w, http.StatusOK, struct {
		Sweeps []Status `json:"sweeps"`
	}{out})
}

// handleResult serves a finished sweep's results through the scenario
// emitters — the same code path as `iqsweep -spec`, so the bodies are
// byte-identical. While the sweep is still queued or running it answers
// 202 with the status document.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "csv"
	}
	ctype, ok := scenario.ContentType(format)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_format",
			fmt.Sprintf("unknown format %q (csv, json or md)", format))
		return
	}

	// One snapshot under one lock: the 202 body below must agree with
	// the state we branched on, even if the sweep finishes meanwhile.
	sw.mu.Lock()
	st := sw.statusLocked()
	res, err := sw.res, sw.err
	sw.mu.Unlock()
	switch sweepState(st.State) {
	case stateQueued, stateRunning:
		writeJSON(w, http.StatusAccepted, st)
		return
	case stateFailed:
		writeError(w, http.StatusInternalServerError, "sweep_failed", err.Error())
		return
	}

	w.Header().Set("Content-Type", ctype)
	if err := res.Emit(w, format); err != nil {
		// The response may be partially written; nothing more to do
		// than log (Emit only fails on writer errors here, the format
		// was validated above).
		s.log.Warn("emit failed", "sweep", sw.id, "format", format, "error", err.Error())
	}
}

// handleStream serves a sweep's per-point results as NDJSON
// (client.StreamEvent per line) in grid order, each point flushed the
// moment the in-order prefix reaches it — so a consumer renders progress
// live while the sweep runs, and a finished sweep replays instantly. The
// stream terminates with {"done":true} on success or an {"error":...}
// event at the first failed point; a cancelled request unblocks promptly.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	ctx := r.Context()
	// Wake the cond waiters below when the client goes away, so an
	// abandoned stream never outlives its request.
	stop := context.AfterFunc(ctx, func() {
		sw.mu.Lock()
		sw.cond.Broadcast()
		sw.mu.Unlock()
	})
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the response header out before blocking on the first
		// point, so clients see the stream open immediately.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	for i := 0; i < sw.total; i++ {
		sw.mu.Lock()
		for !sw.ready[i] && sw.state != stateFailed && ctx.Err() == nil {
			sw.cond.Wait()
		}
		ok := sw.ready[i]
		res := sw.results[i]
		src := sw.sources[i]
		err := sw.err
		sw.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		if !ok {
			// The sweep failed and this is the first unresolved point in
			// grid order; terminate the stream with the sweep's error.
			msg := "sweep failed"
			if err != nil {
				msg = err.Error()
			}
			enc.Encode(client.StreamEvent{Index: i, Error: msg}) //nolint:errcheck // stream already committed
			return
		}
		if err := enc.Encode(client.StreamEvent{
			Index:     i,
			Benchmark: sw.grid.Points[i].Bench,
			Source:    src,
			Result:    &res,
		}); err != nil {
			return // client went away mid-write
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Every point is out; wait for the sweep's terminal transition so the
	// done event can carry the manifest (built right after the last point
	// resolves — the wait is momentary).
	sw.mu.Lock()
	for sw.state != stateDone && sw.state != stateFailed && ctx.Err() == nil {
		sw.cond.Wait()
	}
	manifest := sw.manifest
	sw.mu.Unlock()
	if ctx.Err() != nil {
		return
	}
	enc.Encode(client.StreamEvent{Done: true, Points: sw.total, Manifest: manifest}) //nolint:errcheck // stream already committed
	if flusher != nil {
		flusher.Flush()
	}
}

// handleManifest serves a finished sweep's tamper-evident Merkle
// manifest: 202 with the status document while the sweep is queued or
// running, the sweep's error while failed, the manifest JSON once done.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	sw := s.lookup(w, r)
	if sw == nil {
		return
	}
	sw.mu.Lock()
	st := sw.statusLocked()
	m := sw.manifest
	err := sw.err
	sw.mu.Unlock()
	switch sweepState(st.State) {
	case stateQueued, stateRunning:
		writeJSON(w, http.StatusAccepted, st)
		return
	case stateFailed:
		writeError(w, http.StatusInternalServerError, "sweep_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// machineDoc is the stable JSON rendering of the Table 1 machine. It is
// assembled field-by-field (pipeline.Config embeds scheme constructors
// that do not marshal) and mirrors the names scenario axes use.
type machineDoc struct {
	FetchWidth      int  `json:"fetch_width"`
	DispatchWidth   int  `json:"dispatch_width"`
	IssueWidthInt   int  `json:"issue_width_int"`
	IssueWidthFP    int  `json:"issue_width_fp"`
	CommitWidth     int  `json:"commit_width"`
	FetchQueue      int  `json:"fetch_queue"`
	ROBSize         int  `json:"rob_size"`
	DecodeDepth     int  `json:"decode_depth"`
	RedirectPenalty int  `json:"redirect_penalty"`
	IntALUs         int  `json:"int_alus"`
	IntMuls         int  `json:"int_muls"`
	FPAdders        int  `json:"fp_adders"`
	FPMuls          int  `json:"fp_muls"`
	L1DLatency      int  `json:"l1d_latency"`
	L2Latency       int  `json:"l2_latency"`
	MemLatency      int  `json:"mem_latency"`
	PerfectDisamb   bool `json:"perfect_disambiguation"`
}

// handleMachine serves the default (Table 1) machine, the baseline every
// scenario Machine axis overrides.
func (s *Server) handleMachine(w http.ResponseWriter, r *http.Request) {
	c := pipeline.DefaultConfig(core.Baseline64())
	doc := machineDoc{
		FetchWidth:      c.FetchWidth,
		DispatchWidth:   c.DispatchWidth,
		IssueWidthInt:   c.IssueWidthInt,
		IssueWidthFP:    c.IssueWidthFP,
		CommitWidth:     c.CommitWidth,
		FetchQueue:      c.FetchQueue,
		ROBSize:         c.ROBSize,
		DecodeDepth:     c.DecodeDepth,
		RedirectPenalty: c.RedirectPenalty,
		IntALUs:         c.FUCounts[isa.IntALUUnit],
		IntMuls:         c.FUCounts[isa.IntMulUnit],
		FPAdders:        c.FUCounts[isa.FPAddUnit],
		FPMuls:          c.FUCounts[isa.FPMulUnit],
		L1DLatency:      c.Hier.L1D.Latency,
		L2Latency:       c.Hier.L2.Latency,
		MemLatency:      c.Hier.Mem.FirstChunk,
		PerfectDisamb:   c.PerfectDisambiguation,
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleBenchmarks serves the workload names per suite.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Int []string `json:"int"`
		FP  []string `json:"fp"`
	}{trace.Benchmarks(trace.SuiteInt), trace.Benchmarks(trace.SuiteFP)})
}

// statsDoc renders engine.Stats with the API's snake_case keys (the raw
// struct has no JSON tags and would leak Go identifiers).
type statsDoc struct {
	Requested  int64 `json:"requested"`
	Simulated  int64 `json:"simulated"`
	MemoryHits int64 `json:"memory_hits"`
	DiskHits   int64 `json:"disk_hits"`
	Shared     int64 `json:"shared"`
	Batched    int64 `json:"batched"`
	Canceled   int64 `json:"canceled"`
	DiskErrors int64 `json:"disk_errors"`
}

// handleStats serves the engine-wide resolution counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, statsDoc{
		Requested:  st.Requested,
		Simulated:  st.Simulated,
		MemoryHits: st.MemoryHits,
		DiskHits:   st.DiskHits,
		Shared:     st.Shared,
		Batched:    st.Batched,
		Canceled:   st.Canceled,
		DiskErrors: st.DiskErrors,
	})
}

// healthDoc is the readiness body: ok flips false (with HTTP 503) once
// the server is draining, so load balancers stop routing new work while
// in-flight sweeps finish. Liveness stays separate at /livez.
type healthDoc struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
}

// handleHealth is the readiness probe.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, healthDoc{OK: false, Draining: true})
		return
	}
	writeJSON(w, http.StatusOK, healthDoc{OK: true})
}

// Drain stops admitting new sweeps (submissions answer 503) and blocks
// until every in-flight sweep has finished or ctx expires, in which case
// it reports how many sweeps were abandoned mid-flight.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.log.Info("draining: refusing new sweeps, waiting for in-flight")
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		n := s.active
		s.mu.Unlock()
		return fmt.Errorf("serve: drain interrupted with %d sweeps in flight: %w", n, ctx.Err())
	}
}

// Close flushes and closes the result store adopted through
// Config.Store (for a write-behind Batcher this commits the final
// group, so warm reruns of other processes see every result). Call it
// after Drain, once no sweep can write anymore.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// SweepIDs returns every known sweep id in admission order (a stable,
// test-friendly view of the registry).
func (s *Server) SweepIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}
