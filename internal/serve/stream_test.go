package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distiq/internal/client"
	"distiq/internal/engine"
)

// streamLines opens a sweep's NDJSON stream and forwards decoded events
// on the returned channel (closed at EOF).
func streamLines(t *testing.T, ts *httptest.Server, id string) (<-chan client.StreamEvent, *http.Response) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	ch := make(chan client.StreamEvent, 64)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
		for sc.Scan() {
			var ev client.StreamEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Errorf("malformed stream line %q: %v", sc.Text(), err)
				return
			}
			ch <- ev
		}
	}()
	return ch, resp
}

// TestStreamDeliversInGridOrderWhileRunning gates the simulator, opens
// the stream mid-sweep, and asserts per-point events arrive in strict
// grid order with valid sources, terminated by the done event — then
// replays the finished sweep's stream instantly.
func TestStreamDeliversInGridOrderWhileRunning(t *testing.T) {
	gate := make(chan struct{})
	srv := New(Config{
		Parallel: 2,
		Simulate: func(j engine.Job) (engine.Result, error) {
			<-gate
			var r engine.Result
			r.Benchmark = j.Bench
			r.Config = j.Config.Name
			r.Insts = j.Opt.Instructions
			r.Cycles = 7
			return r, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, testSpec) // 4 points
	ch, resp := streamLines(t, ts, st.ID)
	defer resp.Body.Close()

	// Nothing can stream before the first point resolves.
	select {
	case ev := <-ch:
		t.Fatalf("premature stream event %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)

	var events []client.StreamEvent
	deadline := time.After(30 * time.Second)
	for ev := range ch {
		events = append(events, ev)
		select {
		case <-deadline:
			t.Fatal("stream did not finish in 30s")
		default:
		}
	}
	if len(events) != st.Points+1 {
		t.Fatalf("got %d events, want %d points + done", len(events), st.Points)
	}
	for i, ev := range events[:st.Points] {
		if ev.Index != i || ev.Result == nil || ev.Error != "" || ev.Done {
			t.Fatalf("event %d out of order or malformed: %+v", i, ev)
		}
		if ev.Benchmark != "swim" || ev.Result.Cycles != 7 {
			t.Fatalf("event %d payload: %+v", i, ev)
		}
		if ev.Source != engine.SourceSimulated && ev.Source != engine.SourceMemory &&
			ev.Source != engine.SourceDisk && ev.Source != engine.SourceShared {
			t.Fatalf("event %d source = %q", i, ev.Source)
		}
	}
	last := events[st.Points]
	if !last.Done || last.Points != st.Points {
		t.Fatalf("terminal event = %+v", last)
	}

	// A finished sweep replays its whole stream immediately.
	replay, resp2 := streamLines(t, ts, st.ID)
	defer resp2.Body.Close()
	n := 0
	for ev := range replay {
		if !ev.Done {
			if ev.Index != n {
				t.Fatalf("replay event %d has index %d", n, ev.Index)
			}
			n++
		}
	}
	if n != st.Points {
		t.Fatalf("replay delivered %d points, want %d", n, st.Points)
	}
}

// TestStreamUnknownSweep404s.
func TestStreamUnknownSweep404s(t *testing.T) {
	srv := New(Config{Parallel: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/sweeps/sw-999999/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestStreamFailedSweepTerminatesWithError: the stream of a failed sweep
// ends with an error event at the first unresolved point.
func TestStreamFailedSweepTerminatesWithError(t *testing.T) {
	srv := New(Config{
		Parallel: 1,
		Simulate: func(j engine.Job) (engine.Result, error) {
			return engine.Result{}, fmt.Errorf("injected stream failure")
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, `{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}],
		"warmup": 100, "instructions": 200}`)
	waitDone(t, ts, st.ID)
	ch, resp := streamLines(t, ts, st.ID)
	defer resp.Body.Close()
	var events []client.StreamEvent
	for ev := range ch {
		events = append(events, ev)
	}
	if len(events) != 1 {
		t.Fatalf("failed sweep streamed %d events: %+v", len(events), events)
	}
	if events[0].Error == "" || !strings.Contains(events[0].Error, "injected stream failure") {
		t.Fatalf("terminal event = %+v", events[0])
	}
}
