package serve

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distiq/internal/engine"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/*.txt from the current API")

// stubSpec is a minimal valid spec for the error tests that need an
// admitted or finished sweep.
const stubSpec = `{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}],
	"warmup": 100, "instructions": 200}`

// checkGolden renders "HTTP <status>" plus the response body and diffs it
// against testdata/golden/<name>.txt, pinning both the status code and
// the error-body shape. -update-golden rewrites the fixture.
func checkGolden(t *testing.T, name string, resp *http.Response) {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("HTTP %d\n%s", resp.StatusCode, body)
	path := filepath.Join("testdata", "golden", name+".txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/serve -run TestAPIErrors -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("API error drifted from %s:\n--- golden ---\n%s\n--- current ---\n%s", path, want, got)
	}
}

// TestAPIErrors pins every client-visible error of the API — status code
// and body — as goldens, so the error contract can't drift silently.
func TestAPIErrors(t *testing.T) {
	srv := New(Config{
		Parallel: 1,
		Simulate: func(j engine.Job) (engine.Result, error) { return engine.Result{}, nil },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One finished sweep for the result-endpoint cases.
	done := submit(t, ts, stubSpec)
	if st := waitDone(t, ts, done.ID); st.State != "done" {
		t.Fatalf("stub sweep: %+v", st)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"malformed-json", "POST", "/v1/sweeps", `{not json`},
		{"body-too-large", "POST", "/v1/sweeps", `{"pad": "` + strings.Repeat("x", 1<<20) + `"}`},
		{"trailing-data", "POST", "/v1/sweeps",
			`{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}]} extra`},
		{"unknown-axis", "POST", "/v1/sweeps",
			`{"schemes": [{"scheme": "MB_distr"}], "robz": [128]}`},
		{"unknown-scheme", "POST", "/v1/sweeps",
			`{"schemes": [{"scheme": "QuantumQueue"}]}`},
		{"unknown-benchmark", "POST", "/v1/sweeps",
			`{"benchmarks": ["nonesuch"], "schemes": [{"scheme": "MB_distr"}]}`},
		{"no-schemes", "POST", "/v1/sweeps", `{"benchmarks": ["swim"]}`},
		{"rob-not-power-of-two", "POST", "/v1/sweeps",
			`{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}], "rob": [100]}`},
		{"zero-instructions", "POST", "/v1/sweeps",
			`{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}], "instructions": 0}`},
		{"unknown-format", "GET", "/v1/sweeps/" + done.ID + "?format=yaml", ""},
		{"unknown-sweep", "GET", "/v1/sweeps/sw-999999", ""},
		{"unknown-sweep-status", "GET", "/v1/sweeps/sw-999999/status", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, resp)
		})
	}
}

// TestAPIErrorQueueFull pins the 429 over-quota answer: a MaxQueued-1
// server with its only slot occupied by a blocked sweep.
func TestAPIErrorQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := New(Config{
		Parallel:  1,
		MaxQueued: 1,
		Simulate: func(j engine.Job) (engine.Result, error) {
			started <- struct{}{}
			<-release
			return engine.Result{}, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	first := submit(t, ts, stubSpec)
	<-started
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(stubSpec))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "queue-full", resp)
	close(release)
	waitDone(t, ts, first.ID)
}

// TestAPIErrorDraining pins the 503 refused-while-draining answer.
func TestAPIErrorDraining(t *testing.T) {
	srv := New(Config{
		Parallel: 1,
		Simulate: func(j engine.Job) (engine.Result, error) { return engine.Result{}, nil },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(stubSpec))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "draining", resp)
}
