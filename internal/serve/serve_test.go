package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distiq/internal/engine"
	"distiq/internal/scenario"
)

// testSpec is the canonical 3-axis grid (scheme × ROB × perfect
// disambiguation) every end-to-end test submits; tiny so the suite stays
// fast. It matches the spec cmd/iqsweep's own e2e test uses.
const testSpec = `{
  "name": "e2e",
  "benchmarks": ["swim"],
  "schemes": [{"scheme": "MB_distr"}],
  "rob": [128, 256],
  "perfect_disambiguation": [false, true],
  "warmup": 1000,
  "instructions": 2000
}`

// submit POSTs a spec and decodes the 202 status document.
func submit(t *testing.T, ts *httptest.Server, spec string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit: bad status body %s: %v", body, err)
	}
	if resp.Header.Get("Location") != "/v1/sweeps/"+st.ID {
		t.Fatalf("submit: Location = %q for id %s", resp.Header.Get("Location"), st.ID)
	}
	return st
}

// waitDone polls a sweep's status until it leaves the queued/running
// states, then returns the final status.
func waitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == string(stateDone) || st.State == string(stateFailed) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetch GETs a finished sweep's body in one format.
func fetch(t *testing.T, ts *httptest.Server, id, format string) (string, string) {
	t.Helper()
	url := ts.URL + "/v1/sweeps/" + id
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s format %q: status %d, body %s", id, format, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestEndToEndColdWarm submits the 3-axis spec cold, re-submits it warm,
// and asserts the warm sweep performs zero simulations while every
// emitted body stays byte-identical — the service analogue of the
// `iqsweep -spec` warm-store regression test.
func TestEndToEndColdWarm(t *testing.T) {
	cacheDir := t.TempDir()
	srv := New(Config{Parallel: 2, CacheDir: cacheDir})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cold := submit(t, ts, testSpec)
	if cold.Points != 4 {
		t.Fatalf("cold sweep points = %d, want 4", cold.Points)
	}
	coldDone := waitDone(t, ts, cold.ID)
	if coldDone.State != "done" {
		t.Fatalf("cold sweep state = %q (%s)", coldDone.State, coldDone.Error)
	}
	if coldDone.Simulated != 4 {
		t.Fatalf("cold sweep simulated %d jobs, want 4", coldDone.Simulated)
	}
	if coldDone.Done != 4 {
		t.Fatalf("cold sweep done = %d, want 4", coldDone.Done)
	}

	warm := submit(t, ts, testSpec)
	warmDone := waitDone(t, ts, warm.ID)
	if warmDone.Simulated != 0 {
		t.Fatalf("warm sweep simulated %d jobs, want 0", warmDone.Simulated)
	}
	if warmDone.MemoryHits+warmDone.DiskHits+warmDone.Shared != 4 {
		t.Fatalf("warm sweep not fully served from caches: %+v", warmDone)
	}

	for _, format := range []string{"csv", "json", "md"} {
		cb, _ := fetch(t, ts, cold.ID, format)
		wb, _ := fetch(t, ts, warm.ID, format)
		if cb != wb {
			t.Errorf("%s body differs between cold and warm sweep:\ncold:\n%s\nwarm:\n%s", format, cb, wb)
		}
	}

	// A fresh server on the same store: everything resolves from disk.
	srv2 := New(Config{Parallel: 2, CacheDir: cacheDir})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	cross := submit(t, ts2, testSpec)
	crossDone := waitDone(t, ts2, cross.ID)
	if crossDone.Simulated != 0 || crossDone.DiskHits != 4 {
		t.Fatalf("cross-process sweep not served from the store: %+v", crossDone)
	}
	cb, _ := fetch(t, ts, cold.ID, "csv")
	xb, _ := fetch(t, ts2, cross.ID, "csv")
	if cb != xb {
		t.Fatalf("cross-process CSV differs:\n%s\nvs\n%s", cb, xb)
	}
}

// TestResultMatchesScenarioEmitters pins the HTTP bodies to the scenario
// emitters (the code path `iqsweep -spec` uses), including content types
// and the default csv format.
func TestResultMatchesScenarioEmitters(t *testing.T) {
	srv := New(Config{Parallel: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, testSpec)
	if got := waitDone(t, ts, st.ID); got.State != "done" {
		t.Fatalf("sweep state = %q (%s)", got.State, got.Error)
	}

	spec, err := scenario.ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	res, err := grid.Run(scenario.RunConfig{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"csv", "json", "md"} {
		var want strings.Builder
		if err := res.Emit(&want, format); err != nil {
			t.Fatal(err)
		}
		got, ctype := fetch(t, ts, st.ID, format)
		if got != want.String() {
			t.Errorf("%s body drifted from the scenario emitter:\n--- emitter ---\n%s--- http ---\n%s",
				format, want.String(), got)
		}
		wantType, _ := scenario.ContentType(format)
		if ctype != wantType {
			t.Errorf("%s content type = %q, want %q", format, ctype, wantType)
		}
	}

	// The default format is csv.
	def, _ := fetch(t, ts, st.ID, "")
	csv, _ := fetch(t, ts, st.ID, "csv")
	if def != csv {
		t.Error("default format is not csv")
	}
}

// TestResultWhileRunning answers 202 with the status document until the
// sweep finishes.
func TestResultWhileRunning(t *testing.T) {
	release := make(chan struct{})
	srv := New(Config{
		Parallel: 1,
		Simulate: func(j engine.Job) (engine.Result, error) {
			<-release
			return engine.Result{}, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, `{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}],
		"warmup": 100, "instructions": 200}`)
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("in-flight result fetch: status %d, body %s", resp.StatusCode, body)
	}
	var got Status
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("in-flight result body %s: %v", body, err)
	}
	if got.State != "queued" && got.State != "running" {
		t.Fatalf("in-flight state = %q", got.State)
	}
	close(release)
	waitDone(t, ts, st.ID)
}

// TestIntrospectionEndpoints pins /v1/machine, /v1/benchmarks, /v1/stats,
// /v1/sweeps and /healthz.
func TestIntrospectionEndpoints(t *testing.T) {
	srv := New(Config{Parallel: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var machine map[string]any
	getJSON(t, ts, "/v1/machine", &machine)
	if machine["rob_size"] != float64(256) || machine["fetch_width"] != float64(8) {
		t.Fatalf("machine doc = %v", machine)
	}

	var benches struct {
		Int []string `json:"int"`
		FP  []string `json:"fp"`
	}
	getJSON(t, ts, "/v1/benchmarks", &benches)
	if len(benches.Int) != 12 || len(benches.FP) != 14 {
		t.Fatalf("benchmarks = %d int, %d fp", len(benches.Int), len(benches.FP))
	}

	st := submit(t, ts, testSpec)
	waitDone(t, ts, st.ID)

	// The stats document uses the API's snake_case keys, like every
	// other endpoint.
	var stats struct {
		Requested  int64 `json:"requested"`
		Simulated  int64 `json:"simulated"`
		MemoryHits int64 `json:"memory_hits"`
		DiskHits   int64 `json:"disk_hits"`
		Shared     int64 `json:"shared"`
		Batched    int64 `json:"batched"`
		DiskErrors int64 `json:"disk_errors"`
	}
	getJSON(t, ts, "/v1/stats", &stats)
	if stats.Requested != 4 || stats.Simulated != 4 {
		t.Fatalf("engine stats = %+v", stats)
	}
	want := srv.Stats()
	got := engine.Stats{Requested: stats.Requested, Simulated: stats.Simulated,
		MemoryHits: stats.MemoryHits, DiskHits: stats.DiskHits,
		Shared: stats.Shared, Batched: stats.Batched, DiskErrors: stats.DiskErrors}
	if got != want {
		t.Fatalf("Stats() = %+v, /v1/stats = %+v", want, got)
	}

	var list struct {
		Sweeps []Status `json:"sweeps"`
	}
	getJSON(t, ts, "/v1/sweeps", &list)
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != st.ID {
		t.Fatalf("sweep list = %+v", list)
	}
	if ids := srv.SweepIDs(); len(ids) != 1 || ids[0] != st.ID {
		t.Fatalf("SweepIDs = %v", ids)
	}

	var health struct {
		OK bool `json:"ok"`
	}
	getJSON(t, ts, "/healthz", &health)
	if !health.OK {
		t.Fatal("health not ok")
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: %v in %s", path, err, body)
	}
}

// TestDrainRefusesAndWaits: during drain, new submissions answer 503 and
// Drain returns only after in-flight sweeps finish.
func TestDrainRefusesAndWaits(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	srv := New(Config{
		Parallel: 1,
		Simulate: func(j engine.Job) (engine.Result, error) {
			started <- struct{}{}
			<-release
			return engine.Result{}, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, `{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}],
		"warmup": 100, "instructions": 200}`)
	<-started // the sweep is inside the simulator

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Drain must refuse new work...
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(testSpec))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if !strings.Contains(string(body), "draining") {
				t.Fatalf("503 body = %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never engaged; last status %d", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}
	// ...and the readiness probe must flip: 503 with the draining flag,
	// so load balancers stop routing while /livez still answers 200.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status = %d, body %s", hresp.StatusCode, hbody)
	}
	var health struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatalf("draining /healthz body %s: %v", hbody, err)
	}
	if health.OK || !health.Draining {
		t.Fatalf("draining /healthz = %+v, want ok=false draining=true", health)
	}
	var live struct {
		OK bool `json:"ok"`
	}
	getJSON(t, ts, "/livez", &live) // getJSON fails unless 200
	if !live.OK {
		t.Fatal("draining /livez not ok")
	}
	// ...while the in-flight sweep is still running.
	select {
	case err := <-drained:
		t.Fatalf("drain returned before the sweep finished: %v", err)
	default:
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := waitDone(t, ts, st.ID); got.State != "done" {
		t.Fatalf("sweep abandoned by drain: %+v", got)
	}
}

// TestFailedSweep surfaces simulator failures as state "failed" and a
// 500 on the result endpoint.
func TestFailedSweep(t *testing.T) {
	srv := New(Config{
		Parallel: 1,
		Simulate: func(j engine.Job) (engine.Result, error) {
			return engine.Result{}, fmt.Errorf("injected failure")
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, `{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}],
		"warmup": 100, "instructions": 200}`)
	got := waitDone(t, ts, st.ID)
	if got.State != "failed" || !strings.Contains(got.Error, "injected failure") {
		t.Fatalf("status = %+v", got)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError ||
		!strings.Contains(string(body), "sweep_failed") {
		t.Fatalf("failed sweep fetch: status %d, body %s", resp.StatusCode, body)
	}
}

// TestHistoryEviction: finished sweeps beyond MaxHistory are evicted
// oldest-first (their ids answer 404), so a long-lived service does not
// retain every result set ever computed; unfinished sweeps are exempt.
func TestHistoryEviction(t *testing.T) {
	srv := New(Config{
		Parallel:   1,
		MaxHistory: 2,
		Simulate:   func(j engine.Job) (engine.Result, error) { return engine.Result{}, nil },
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := `{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}],
		"warmup": 100, "instructions": 200}`
	var ids []string
	for i := 0; i < 5; i++ {
		st := submit(t, ts, spec)
		waitDone(t, ts, st.ID)
		ids = append(ids, st.ID)
	}

	if got := srv.SweepIDs(); len(got) != 2 {
		t.Fatalf("retained sweeps = %v, want the newest 2 of %v", got, ids)
	}
	for _, id := range ids[:3] {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/status")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted sweep %s: status %d, want 404", id, resp.StatusCode)
		}
	}
	for _, id := range ids[3:] {
		if _, ct := fetch(t, ts, id, "csv"); ct == "" {
			t.Errorf("retained sweep %s lost its results", id)
		}
	}
}
