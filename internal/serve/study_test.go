package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distiq/internal/client"
	"distiq/internal/study"
)

// testStudySpec is the canonical ablation every study e2e test submits:
// baseline vs a smaller ROB vs the distributed MixBUFF scheme, two
// benchmarks, tiny lengths.
const testStudySpec = `{
  "name": "e2e-ablation",
  "mode": "ablation",
  "benchmarks": ["swim", "gzip"],
  "variants": [
    {"name": "small-rob", "rob": 128},
    {"name": "mb-distr", "scheme": "MB_distr"}
  ],
  "warmup": 1000,
  "instructions": 2000
}`

// submitStudy POSTs a study spec and decodes the 202 status document.
func submitStudy(t *testing.T, ts *httptest.Server, spec string) StudyStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit study: status %d, body %s", resp.StatusCode, body)
	}
	var st StudyStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit study: bad status body %s: %v", body, err)
	}
	if resp.Header.Get("Location") != "/v1/studies/"+st.ID {
		t.Fatalf("submit study: Location = %q for id %s", resp.Header.Get("Location"), st.ID)
	}
	return st
}

// waitStudyDone polls a study's status until it reaches a terminal
// state.
func waitStudyDone(t *testing.T, ts *httptest.Server, id string) StudyStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/studies/" + id + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var st StudyStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == string(stateDone) || st.State == string(stateFailed) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("study %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchStudy GETs a finished study's body in one format, returning body
// and content type.
func fetchStudy(t *testing.T, ts *httptest.Server, id, format string) (string, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/studies/" + id + "?format=" + format)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch study %s (%s): status %d, body %s", id, format, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestStudyEndToEnd submits an ablation study, waits for completion and
// checks every contract at once: the emitted table matches a Local
// study.Run of the same spec byte-for-byte, a warm resubmission
// simulates nothing and emits the same bytes, the stream replays every
// point and closes with the manifest, and the manifest endpoint agrees
// with it.
func TestStudyEndToEnd(t *testing.T) {
	srv := New(Config{Parallel: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submitStudy(t, ts, testStudySpec)
	cold := waitStudyDone(t, ts, st.ID)
	if cold.State != string(stateDone) {
		t.Fatalf("cold study: %+v", cold)
	}
	if cold.Simulated == 0 {
		t.Fatal("cold study simulated nothing")
	}
	if cold.Points != 6 || cold.Done != 6 {
		t.Fatalf("cold study points=%d done=%d, want 6/6 (3 variants x 2 benchmarks)", cold.Points, cold.Done)
	}

	// The HTTP body must match the in-process study runner exactly.
	spec, err := study.ParseSpec([]byte(testStudySpec))
	if err != nil {
		t.Fatal(err)
	}
	local, err := study.Run(context.Background(), client.NewLocal(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range study.Formats {
		body, ctype := fetchStudy(t, ts, st.ID, format)
		wantCType, _ := study.ContentType(format)
		if ctype != wantCType {
			t.Errorf("format %s: content type %q, want %q", format, ctype, wantCType)
		}
		var buf bytes.Buffer
		if err := local.Emit(&buf, format); err != nil {
			t.Fatal(err)
		}
		if body != buf.String() {
			t.Errorf("format %s differs between HTTP and local:\n--- http ---\n%s--- local ---\n%s", format, body, buf.String())
		}
	}

	// Warm resubmission: zero simulations, byte-identical table.
	coldCSV, _ := fetchStudy(t, ts, st.ID, "csv")
	st2 := submitStudy(t, ts, testStudySpec)
	warm := waitStudyDone(t, ts, st2.ID)
	if warm.State != string(stateDone) || warm.Simulated != 0 {
		t.Fatalf("warm study: %+v", warm)
	}
	warmCSV, _ := fetchStudy(t, ts, st2.ID, "csv")
	if coldCSV != warmCSV {
		t.Fatalf("warm study CSV differs:\n%s\nvs\n%s", coldCSV, warmCSV)
	}

	// The stream replays every point in plan order and closes with the
	// manifest.
	resp, err := http.Get(ts.URL + "/v1/studies/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var events []StudyEvent
	for sc.Scan() {
		var ev StudyEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 7 {
		t.Fatalf("stream delivered %d events, want 6 points + done", len(events))
	}
	last := events[len(events)-1]
	if !last.Done || last.Points != 6 || last.Manifest == nil {
		t.Fatalf("terminal event: %+v", last)
	}
	stages := map[string]int{}
	for i, ev := range events[:6] {
		if ev.Seq != i {
			t.Fatalf("event %d carries seq %d", i, ev.Seq)
		}
		if ev.Result == nil {
			t.Fatalf("event %d has no result", i)
		}
		stages[ev.Stage]++
	}
	for _, want := range []string{"baseline", "small-rob", "mb-distr"} {
		if stages[want] != 2 {
			t.Fatalf("stage %q delivered %d points, want 2 (stages: %v)", want, stages[want], stages)
		}
	}

	// The manifest endpoint serves the same document the stream carried.
	mresp, err := http.Get(ts.URL + "/v1/studies/" + st.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("manifest: status %d, body %s", mresp.StatusCode, mbody)
	}
	var m struct {
		Root   string `json:"root"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal(mbody, &m); err != nil {
		t.Fatal(err)
	}
	if m.Root != last.Manifest.Root || m.Points != 6 {
		t.Fatalf("manifest endpoint root=%s points=%d, stream carried root=%s", m.Root, m.Points, last.Manifest.Root)
	}

	// The study registry is visible in the list endpoint.
	lresp, err := http.Get(ts.URL + "/v1/studies")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Studies []StudyStatus `json:"studies"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Studies) != 2 {
		t.Fatalf("list has %d studies, want 2", len(list.Studies))
	}
}

// TestStudyFrontierOverHTTP runs an adaptive frontier search through the
// service: the table must match a Local run byte-for-byte and the status
// document's point count must follow the search (planned is unknown up
// front).
func TestStudyFrontierOverHTTP(t *testing.T) {
	const frontierSpec = `{
  "name": "e2e-frontier",
  "mode": "frontier",
  "benchmarks": ["swim"],
  "space": {"scheme": "LatFIFO", "queues": [2, 4], "entries": [8, 16]},
  "budget": 4,
  "batch": 2,
  "warmup": 1000,
  "instructions": 2000
}`
	srv := New(Config{Parallel: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submitStudy(t, ts, frontierSpec)
	fin := waitStudyDone(t, ts, st.ID)
	if fin.State != string(stateDone) {
		t.Fatalf("frontier study: %+v", fin)
	}
	if fin.Done == 0 || fin.Points != fin.Done {
		t.Fatalf("frontier status points=%d done=%d, want equal and positive", fin.Points, fin.Done)
	}

	spec, err := study.ParseSpec([]byte(frontierSpec))
	if err != nil {
		t.Fatal(err)
	}
	local, err := study.Run(context.Background(), client.NewLocal(), spec)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := fetchStudy(t, ts, st.ID, "json")
	var buf bytes.Buffer
	if err := local.Emit(&buf, "json"); err != nil {
		t.Fatal(err)
	}
	if body != buf.String() {
		t.Fatalf("frontier JSON differs between HTTP and local:\n%s\nvs\n%s", body, buf.String())
	}
	if !strings.Contains(body, `"trajectory"`) {
		t.Fatalf("frontier JSON carries no trajectory:\n%s", body)
	}
}

// TestStudyBadSpec pins the admission error contract: malformed and
// invalid specs answer 400 with the bad_spec code and never occupy a
// queue slot.
func TestStudyBadSpec(t *testing.T) {
	srv := New(Config{Parallel: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, spec := range []string{
		`not json`,
		`{"mode":"nope"}`,
		`{"mode":"ablation"}`,
		`{"mode":"ablation","variants":[{"name":"v","rob":100}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %d, body %s", spec, resp.StatusCode, body)
		}
		var ae apiError
		if err := json.Unmarshal(body, &ae); err != nil || ae.Code != "bad_spec" {
			t.Fatalf("spec %q: body %s (%v)", spec, body, err)
		}
	}
	if ids := srv.StudyIDs(); len(ids) != 0 {
		t.Fatalf("rejected specs occupied the registry: %v", ids)
	}
}

// TestStudyMetrics checks the distiq_study_* families appear in the
// scrape (at zero before any study, moving after one).
func TestStudyMetrics(t *testing.T) {
	srv := New(Config{Parallel: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	before := scrape()
	for _, fam := range []string{
		"distiq_study_runs_total", "distiq_study_active",
		"distiq_study_points_total", "distiq_study_frontier_rounds_total",
	} {
		if !strings.Contains(before, "# TYPE "+fam) {
			t.Errorf("family %s missing from scrape before any study", fam)
		}
	}
	st := submitStudy(t, ts, testStudySpec)
	if fin := waitStudyDone(t, ts, st.ID); fin.State != string(stateDone) {
		t.Fatalf("study: %+v", fin)
	}
	after := scrape()
	for _, want := range []string{
		`distiq_study_runs_total{state="accepted"} 1`,
		`distiq_study_runs_total{state="done"} 1`,
		`distiq_study_points_total 6`,
	} {
		if !strings.Contains(after, want) {
			t.Errorf("scrape missing %q after one study", want)
		}
	}
}
