package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"distiq/internal/client"
	"distiq/internal/engine"
	"distiq/internal/study"
)

// studyState reuses the sweep lifecycle vocabulary for studies.
type studyState = sweepState

// studyRec is one admitted study and its progress. Per-point updates
// are retained in plan order as they resolve, so the NDJSON streaming
// endpoint can replay a running or finished study; cond (on mu) is
// broadcast at every point and state change.
type studyRec struct {
	id   string
	spec *study.Spec
	// reqID threads the submitting request's ID through lifecycle logs.
	reqID string
	// planned is the up-front point count (0 for the adaptive frontier
	// mode, whose total emerges as the search runs).
	planned int

	mu     sync.Mutex
	cond   *sync.Cond
	state  studyState
	events []study.PointUpdate
	res    *study.Result
	err    error
	// manifest covers every evaluated point, built once on success.
	manifest *engine.Manifest
}

// StudyStatus is the JSON progress document of one study.
type StudyStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Mode string `json:"mode"`
	// State is queued, running, done or failed.
	State string `json:"state"`
	// Points is the planned point count; for the adaptive frontier mode
	// it grows with Done as the search proposes work.
	Points int `json:"points"`
	Done   int `json:"done"`
	// Per-study resolution counts (a warm resubmission shows 0
	// simulated even while other work simulates).
	Simulated  int64  `json:"simulated"`
	MemoryHits int64  `json:"memory_hits"`
	DiskHits   int64  `json:"disk_hits"`
	Shared     int64  `json:"shared"`
	Error      string `json:"error,omitempty"`
}

// StudyEvent is one NDJSON line of GET /v1/studies/{id}/stream: a
// resolved point, or the terminal done/error event.
type StudyEvent struct {
	Seq       int            `json:"seq"`
	Stage     string         `json:"stage,omitempty"`
	Benchmark string         `json:"benchmark,omitempty"`
	Source    engine.Source  `json:"source,omitempty"`
	Result    *engine.Result `json:"result,omitempty"`
	// Terminal markers: exactly one closing event per stream.
	Done     bool             `json:"done,omitempty"`
	Points   int              `json:"points,omitempty"`
	Manifest *engine.Manifest `json:"manifest,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// status snapshots the study under its lock.
func (st *studyRec) status() StudyStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.statusLocked()
}

// statusLocked snapshots the study; the caller holds st.mu.
func (st *studyRec) statusLocked() StudyStatus {
	var counts client.Counts
	for _, ev := range st.events {
		counts.Add(ev.Source)
	}
	points := st.planned
	if points == 0 {
		points = len(st.events)
	}
	doc := StudyStatus{
		ID: st.id, Name: st.spec.Name, Mode: st.spec.Mode,
		State: string(st.state), Points: points, Done: len(st.events),
		Simulated: counts.Simulated, MemoryHits: counts.MemoryHits,
		DiskHits: counts.DiskHits, Shared: counts.Shared,
	}
	if st.err != nil {
		doc.Error = st.err.Error()
	}
	return doc
}

// handleStudySubmit parses and validates a study spec, then admits it
// onto the study queue (bounded separately from sweeps) and starts it on
// the shared engine through the in-process Client.
func (s *Server) handleStudySubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("spec exceeds %d bytes", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("reading request body: %v", err))
		return
	}
	spec, err := study.ParseSpec(body)
	if err != nil {
		writeSpecError(w, err)
		return
	}
	planned, err := spec.PlannedPoints()
	if err != nil {
		writeSpecError(w, err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining",
			"server is draining; not accepting new studies")
		return
	}
	if s.activeStudies >= s.maxQueued {
		n := s.activeStudies
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("study queue is full (%d studies queued or running)", n))
		return
	}
	s.nextStudyID++
	st := &studyRec{
		id:      fmt.Sprintf("st-%06d", s.nextStudyID),
		spec:    spec,
		reqID:   RequestID(r.Context()),
		planned: planned,
		state:   stateQueued,
	}
	st.cond = sync.NewCond(&st.mu)
	s.studies[st.id] = st
	s.studyOrder = append(s.studyOrder, st.id)
	s.activeStudies++
	s.wg.Add(1)
	s.mu.Unlock()

	s.studiesAccepted.Inc()
	s.log.Info("study accepted",
		"study", st.id, "name", spec.Name, "mode", spec.Mode,
		"planned", planned, "request_id", st.reqID)
	// Snapshot the documented "queued" response before the study starts
	// (a warm study could otherwise finish before the 202 renders).
	doc := st.status()
	go s.runStudy(st)

	w.Header().Set("Location", "/v1/studies/"+st.id)
	writeJSON(w, http.StatusAccepted, doc)
}

// runStudy executes one admitted study on the shared engine through the
// in-process Client, recording every resolved point in plan order (the
// streaming endpoint replays them) and the study's table on completion.
func (s *Server) runStudy(st *studyRec) {
	defer s.wg.Done()
	started := time.Now()
	st.mu.Lock()
	st.state = stateRunning
	st.cond.Broadcast()
	st.mu.Unlock()

	res, err := study.RunOpts(context.Background(), client.NewLocalOn(s.eng), st.spec,
		study.Options{OnPoint: func(u study.PointUpdate) {
			s.studyPoints.Inc()
			st.mu.Lock()
			st.events = append(st.events, u)
			st.cond.Broadcast()
			st.mu.Unlock()
		}})
	var manifest *engine.Manifest
	if err == nil {
		manifest, err = res.Manifest()
	}

	st.mu.Lock()
	if err != nil {
		st.state, st.err = stateFailed, err
	} else {
		st.state = stateDone
		st.res = res
		st.manifest = manifest
	}
	st.cond.Broadcast()
	st.mu.Unlock()

	s.mu.Lock()
	s.activeStudies--
	s.evictStudiesLocked()
	s.mu.Unlock()

	elapsed := time.Since(started)
	if err != nil {
		s.studiesFailed.Inc()
		s.log.Error("study failed",
			"study", st.id, "error", err.Error(),
			"duration_s", elapsed.Seconds(), "request_id", st.reqID)
		return
	}
	s.studyFrontierRounds.Add(float64(len(res.Trajectory)))
	s.studiesDone.Inc()
	s.log.Info("study done",
		"study", st.id, "mode", res.Mode,
		"points", len(res.Results), "rows", len(res.Rows),
		"simulated", res.Counts.Simulated, "memory", res.Counts.MemoryHits,
		"disk", res.Counts.DiskHits, "shared", res.Counts.Shared,
		"duration_s", elapsed.Seconds(),
		"merkle_root", manifest.Root,
		"request_id", st.reqID)
}

// evictStudiesLocked drops the oldest finished studies beyond
// maxHistory, mirroring the sweep registry's bound. Called with s.mu
// held.
func (s *Server) evictStudiesLocked() {
	finished := 0
	for _, id := range s.studyOrder {
		st := s.studies[id]
		st.mu.Lock()
		f := st.state == stateDone || st.state == stateFailed
		st.mu.Unlock()
		if f {
			finished++
		}
	}
	for i := 0; finished > s.maxHistory && i < len(s.studyOrder); {
		st := s.studies[s.studyOrder[i]]
		st.mu.Lock()
		f := st.state == stateDone || st.state == stateFailed
		st.mu.Unlock()
		if !f {
			i++
			continue
		}
		delete(s.studies, st.id)
		s.studyOrder = append(s.studyOrder[:i], s.studyOrder[i+1:]...)
		finished--
		s.log.Info("study evicted", "study", st.id, "max_history", s.maxHistory)
	}
}

// lookupStudy returns the study for the request's {id}, or writes 404.
func (s *Server) lookupStudy(w http.ResponseWriter, r *http.Request) *studyRec {
	id := r.PathValue("id")
	s.mu.Lock()
	st := s.studies[id]
	s.mu.Unlock()
	if st == nil {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("unknown study %q", id))
	}
	return st
}

// handleStudyList serves every known study's status in admission order.
func (s *Server) handleStudyList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sts := make([]*studyRec, 0, len(s.studyOrder))
	for _, id := range s.studyOrder {
		sts = append(sts, s.studies[id])
	}
	s.mu.Unlock()
	out := make([]StudyStatus, len(sts))
	for i, st := range sts {
		out[i] = st.status()
	}
	writeJSON(w, http.StatusOK, struct {
		Studies []StudyStatus `json:"studies"`
	}{out})
}

// handleStudyStatus serves per-study progress.
func (s *Server) handleStudyStatus(w http.ResponseWriter, r *http.Request) {
	st := s.lookupStudy(w, r)
	if st == nil {
		return
	}
	writeJSON(w, http.StatusOK, st.status())
}

// handleStudyResult serves a finished study's table through the study
// emitters — the same code path as cmd/iqstudy, so the bodies are
// byte-identical. While the study is queued or running it answers 202
// with the status document.
func (s *Server) handleStudyResult(w http.ResponseWriter, r *http.Request) {
	st := s.lookupStudy(w, r)
	if st == nil {
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "csv"
	}
	ctype, ok := study.ContentType(format)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_format",
			fmt.Sprintf("unknown format %q (csv, json or md)", format))
		return
	}

	st.mu.Lock()
	doc := st.statusLocked()
	res, err := st.res, st.err
	st.mu.Unlock()
	switch studyState(doc.State) {
	case stateQueued, stateRunning:
		writeJSON(w, http.StatusAccepted, doc)
		return
	case stateFailed:
		writeError(w, http.StatusInternalServerError, "study_failed", err.Error())
		return
	}

	w.Header().Set("Content-Type", ctype)
	if err := res.Emit(w, format); err != nil {
		s.log.Warn("emit failed", "study", st.id, "format", format, "error", err.Error())
	}
}

// handleStudyStream serves a study's per-point updates as NDJSON
// (StudyEvent per line) in plan order, each flushed as it resolves; the
// stream terminates with {"done":true} carrying the manifest, or an
// {"error":...} event if the study fails.
func (s *Server) handleStudyStream(w http.ResponseWriter, r *http.Request) {
	st := s.lookupStudy(w, r)
	if st == nil {
		return
	}
	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		st.mu.Lock()
		st.cond.Broadcast()
		st.mu.Unlock()
	})
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	// The frontier's total is unknown up front, so the stream follows
	// len(events) until the study reaches a terminal state.
	for i := 0; ; i++ {
		st.mu.Lock()
		for i >= len(st.events) && st.state != stateDone && st.state != stateFailed && ctx.Err() == nil {
			st.cond.Wait()
		}
		var ev *study.PointUpdate
		if i < len(st.events) {
			u := st.events[i]
			ev = &u
		}
		state := st.state
		err := st.err
		manifest := st.manifest
		total := len(st.events)
		st.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		if ev == nil {
			if state == stateFailed {
				msg := "study failed"
				if err != nil {
					msg = err.Error()
				}
				enc.Encode(StudyEvent{Seq: i, Error: msg}) //nolint:errcheck // stream already committed
				return
			}
			enc.Encode(StudyEvent{Done: true, Points: total, Manifest: manifest}) //nolint:errcheck // stream already committed
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		res := ev.Result
		if err := enc.Encode(StudyEvent{
			Seq: ev.Seq, Stage: ev.Stage, Benchmark: ev.Benchmark,
			Source: ev.Source, Result: &res,
		}); err != nil {
			return // client went away mid-write
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleStudyManifest serves a finished study's tamper-evident Merkle
// manifest over every evaluated point: 202 while queued or running, the
// study's error while failed, the manifest JSON once done.
func (s *Server) handleStudyManifest(w http.ResponseWriter, r *http.Request) {
	st := s.lookupStudy(w, r)
	if st == nil {
		return
	}
	st.mu.Lock()
	doc := st.statusLocked()
	m := st.manifest
	err := st.err
	st.mu.Unlock()
	switch studyState(doc.State) {
	case stateQueued, stateRunning:
		writeJSON(w, http.StatusAccepted, doc)
		return
	case stateFailed:
		writeError(w, http.StatusInternalServerError, "study_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// StudyIDs returns every known study id in admission order.
func (s *Server) StudyIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.studyOrder...)
}
