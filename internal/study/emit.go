package study

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"distiq/internal/client"
	"distiq/internal/engine"
)

// Round summarizes one frontier search round for the trajectory record:
// how many configurations were proposed and evaluated, and the frontier
// size after folding the round's results in. Round 0 is the coarse seed
// grid.
type Round struct {
	Round     int `json:"round"`
	Proposed  int `json:"proposed"`
	Evaluated int `json:"evaluated"`
	Frontier  int `json:"frontier"`
}

// Result is a finished study: a deterministic table (pre-formatted
// fixed-point cells, so documents are byte-identical across substrates
// and reruns) plus the evaluated jobs/results for manifest building and
// the resolution counts of the run.
type Result struct {
	// Name and Mode echo the spec.
	Name string
	Mode string
	// Columns names the table columns; Rows holds one pre-formatted cell
	// per column, in deterministic order.
	Columns []string
	Rows    [][]string
	// numeric marks columns whose cells are fixed-point numbers (emitted
	// as JSON numbers rather than strings).
	numeric []bool
	// Trajectory records frontier search rounds (frontier mode only).
	Trajectory []Round
	// Counts aggregates how the study's points were resolved; a warm
	// rerun shows Simulated == 0.
	Counts client.Counts
	// Jobs and Results list every evaluated point in plan order, the
	// input to a tamper-evident manifest.
	Jobs    []engine.Job
	Results []engine.Result
}

// Formats lists the emitter names Emit accepts ("markdown" is an alias
// of "md"), matching the scenario emit funnel.
var Formats = []string{"csv", "json", "md"}

// CSV renders the study table as comma-separated values with a header
// row.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the study table as a GitHub-flavored markdown table,
// with the frontier trajectory appended as a second table when present.
func (r *Result) Markdown() string {
	var b strings.Builder
	if r.Name != "" {
		fmt.Fprintf(&b, "### %s\n\n", r.Name)
	}
	writeTable := func(header []string, rows [][]string) {
		b.WriteString("| " + strings.Join(header, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat(" --- |", len(header)) + "\n")
		for _, row := range rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
	}
	writeTable(r.Columns, r.Rows)
	if len(r.Trajectory) > 0 {
		b.WriteString("\nSearch trajectory:\n\n")
		rows := make([][]string, len(r.Trajectory))
		for i, t := range r.Trajectory {
			rows[i] = []string{
				fmt.Sprintf("%d", t.Round), fmt.Sprintf("%d", t.Proposed),
				fmt.Sprintf("%d", t.Evaluated), fmt.Sprintf("%d", t.Frontier),
			}
		}
		writeTable([]string{"round", "proposed", "evaluated", "frontier"}, rows)
	}
	return b.String()
}

// JSON renders the study as an indented JSON document: name, mode, one
// object per row keyed by column name, and the trajectory for frontier
// studies. Numeric cells are emitted as json.Number wrapping the exact
// fixed-point bytes of the table, so the JSON document is as
// byte-deterministic as the CSV one. Run-varying counters are excluded;
// read Counts (or the CLI's stderr summary) for resolution counts.
func (r *Result) JSON() ([]byte, error) {
	type doc struct {
		Name       string           `json:"name,omitempty"`
		Mode       string           `json:"mode"`
		Rows       []map[string]any `json:"rows"`
		Trajectory []Round          `json:"trajectory,omitempty"`
	}
	d := doc{Name: r.Name, Mode: r.Mode, Trajectory: r.Trajectory}
	for _, row := range r.Rows {
		m := make(map[string]any, len(r.Columns))
		for i, col := range r.Columns {
			if i < len(r.numeric) && r.numeric[i] {
				m[col] = json.Number(row[i])
			} else {
				m[col] = row[i]
			}
		}
		d.Rows = append(d.Rows, m)
	}
	return json.MarshalIndent(d, "", "  ")
}

// ContentType returns the MIME type of an Emit format, or false for an
// unknown format name.
func ContentType(format string) (string, bool) {
	switch format {
	case "csv":
		return "text/csv; charset=utf-8", true
	case "json":
		return "application/json", true
	case "md", "markdown":
		return "text/markdown; charset=utf-8", true
	}
	return "", false
}

// Emit writes the study to w in the named format. Every front end
// (cmd/iqstudy, the distiqd HTTP service) funnels through this one
// function, so a given study emits byte-identical documents whichever
// way it is requested. The JSON document gains a trailing newline,
// matching the sweep emitters.
func (r *Result) Emit(w io.Writer, format string) error {
	switch format {
	case "csv":
		_, err := io.WriteString(w, r.CSV())
		return err
	case "json":
		data, err := r.JSON()
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	case "md", "markdown":
		_, err := io.WriteString(w, r.Markdown())
		return err
	}
	return fmt.Errorf("study: unknown format %q (csv, json or md)", format)
}

// Manifest builds the study's tamper-evident Merkle manifest over every
// evaluated point, in plan order.
func (r *Result) Manifest() (*engine.Manifest, error) {
	return engine.BuildManifest(r.Name, r.Jobs, r.Results)
}
