package study

import (
	"strings"
	"testing"
)

// TestParseSpecStrict rejects structural problems at parse time: unknown
// fields, trailing data and every per-mode constraint.
func TestParseSpecStrict(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"unknown field", `{"mode":"ablation","varaints":[]}`, "unknown field"},
		{"trailing data", `{"mode":"ablation","variants":[{"name":"v","rob":128}]} {}`, "trailing data"},
		{"no mode", `{}`, "no mode"},
		{"bad mode", `{"mode":"sweep"}`, `unknown mode "sweep"`},
		{"ablation no variants", `{"mode":"ablation"}`, "at least one variant"},
		{"ablation with seeds", `{"mode":"ablation","seeds":[0,1],"variants":[{"name":"v","rob":128}]}`, "replication mode only"},
		{"ablation with space", `{"mode":"ablation","variants":[{"name":"v","rob":128}],"budget":4}`, "frontier mode only"},
		{"unnamed variant", `{"mode":"ablation","variants":[{"rob":128}]}`, "needs a name"},
		{"duplicate variant", `{"mode":"ablation","variants":[{"name":"v","rob":128},{"name":"v","rob":256}]}`, `name "v" repeats`},
		{"baseline name collision", `{"mode":"ablation","variants":[{"name":"baseline","rob":128}]}`, `name "baseline" repeats`},
		{"bad variant machine", `{"mode":"ablation","variants":[{"name":"v","rob":100}]}`, `variant "v"`},
		{"bad variant scheme", `{"mode":"ablation","variants":[{"name":"v","scheme":"Nope"}]}`, `unknown scheme`},
		{"seeds and replicates", `{"mode":"replication","replicates":3,"seeds":[1,2],"variants":[{"name":"v","rob":128}]}`, "mutually exclusive"},
		{"one replicate", `{"mode":"replication","replicates":1,"variants":[{"name":"v","rob":128}]}`, "at least 2"},
		{"one seed", `{"mode":"replication","seeds":[7],"variants":[{"name":"v","rob":128}]}`, "at least 2 seeds"},
		{"frontier no space", `{"mode":"frontier"}`, "needs a space"},
		{"frontier with variants", `{"mode":"frontier","variants":[{"name":"v"}],"space":{"scheme":"LatFIFO","queues":[4,8]}}`, "ablation and replication modes only"},
		{"frontier bad scheme", `{"mode":"frontier","space":{"scheme":"IQ_64_64","queues":[4,8]}}`, "space"},
		{"frontier unsearchable", `{"mode":"frontier","space":{"scheme":"LatFIFO","queues":[8]}}`, "no searchable axis"},
		{"frontier chains non-mixbuff", `{"mode":"frontier","space":{"scheme":"LatFIFO","chains":[2,4]}}`, "chains"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.spec))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestParseSpecRoundTrip pins that builder-assembled specs survive a
// JSON round trip byte-identically.
func TestParseSpecRoundTrip(t *testing.T) {
	pd := true
	specs := []*Spec{
		New("ab").Ablation().WithBenchmarks("swim", "gzip").
			WithVariants(
				Variant{Name: "small-rob", ROB: 128},
				Variant{Name: "mb", Scheme: "MB_distr"},
				Variant{Name: "oracle", PerfectDisambiguation: &pd},
			).WithLengths(100, 1000),
		New("rep").Replication().WithBenchmarks("swim").
			WithVariants(Variant{Name: "if", Scheme: "IF_distr"}).
			WithReplicates(3).WithLengths(100, 1000),
		New("fr").Frontier().WithBenchmarks("swim").
			WithSpace(Space{Scheme: "LatFIFO", Queues: []int{4, 8}, Entries: []int{8, 16}}).
			WithBudget(6).WithBatch(2).WithLengths(100, 1000),
	}
	for _, s := range specs {
		data, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		again, err := back.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(again) {
			t.Fatalf("%s did not round-trip:\n%s\nvs\n%s", s.Name, data, again)
		}
	}
}

// TestOverlaySemantics pins the variant overlay: zero fields inherit,
// a new scheme replaces the whole queue shape, pointers override.
func TestOverlaySemantics(t *testing.T) {
	pdOn := true
	base := Variant{Name: "baseline", Scheme: "MixBUFF", Queues: 8, Entries: 16, Chains: 4, ROB: 256}
	v := overlay(base, Variant{Name: "wide", FetchWidth: 8})
	if v.Scheme != "MixBUFF" || v.Queues != 8 || v.Chains != 4 || v.ROB != 256 || v.FetchWidth != 8 {
		t.Fatalf("machine overlay broke inheritance: %+v", v)
	}
	v = overlay(base, Variant{Name: "named", Scheme: "IQ_64_64"})
	if v.Queues != 0 || v.Entries != 0 || v.Chains != 0 {
		t.Fatalf("scheme replacement leaked baseline shape: %+v", v)
	}
	if v.ROB != 256 {
		t.Fatalf("scheme replacement clobbered machine fields: %+v", v)
	}
	v = overlay(base, Variant{Name: "oracle", PerfectDisambiguation: &pdOn})
	if v.PerfectDisambiguation == nil || !*v.PerfectDisambiguation {
		t.Fatalf("pointer overlay missed: %+v", v)
	}
}

// TestPlannedPoints counts up-front work: variants × benchmarks
// (× seeds for replication), 0 for the adaptive frontier.
func TestPlannedPoints(t *testing.T) {
	ab := New("ab").Ablation().WithBenchmarks("swim", "gzip").
		WithVariants(Variant{Name: "v", ROB: 128}).WithLengths(100, 1000)
	if n, err := ab.PlannedPoints(); err != nil || n != 2*2 {
		t.Fatalf("ablation planned %d (%v), want 4", n, err)
	}
	rep := New("rep").Replication().WithBenchmarks("swim").
		WithVariants(Variant{Name: "v", ROB: 128}).WithReplicates(3).WithLengths(100, 1000)
	if n, err := rep.PlannedPoints(); err != nil || n != 2*1*3 {
		t.Fatalf("replication planned %d (%v), want 6", n, err)
	}
	fr := New("fr").Frontier().WithBenchmarks("swim").
		WithSpace(Space{Scheme: "LatFIFO", Queues: []int{4, 8}}).WithLengths(100, 1000)
	if n, err := fr.PlannedPoints(); err != nil || n != 0 {
		t.Fatalf("frontier planned %d (%v), want 0", n, err)
	}
}

// FuzzParseStudySpec throws arbitrary bytes at the strict parser: it
// must never panic, and anything it accepts must re-validate and render
// back to JSON.
func FuzzParseStudySpec(f *testing.F) {
	f.Add([]byte(`{"mode":"ablation","variants":[{"name":"v","rob":128}]}`))
	f.Add([]byte(`{"mode":"replication","replicates":3,"benchmarks":["swim"],"variants":[{"name":"mb","scheme":"MB_distr"}]}`))
	f.Add([]byte(`{"mode":"frontier","space":{"scheme":"LatFIFO","queues":[4,8],"entries":[8,16]},"budget":6}`))
	f.Add([]byte(`{"mode":"frontier","space":{"scheme":"MixBUFF","chains":[2,4]},"batch":2}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v", err)
		}
		if _, err := s.JSON(); err != nil {
			t.Fatalf("accepted spec fails to render: %v", err)
		}
	})
}
