package study

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distiq/internal/client"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/*.txt from the current simulator")

// quickLengths mirror sim.QuickOptions: enough cycles for schemes to
// diverge, fast enough for the golden gate.
const (
	quickWarmup = 5_000
	quickInsts  = 20_000
)

func ablationSpec() *Spec {
	pd := true
	return New("scheme-ablation").Ablation().
		WithBenchmarks("swim", "gzip").
		WithVariants(
			Variant{Name: "small-rob", ROB: 128},
			Variant{Name: "mb-distr", Scheme: "MB_distr"},
			Variant{Name: "oracle-disambig", PerfectDisambiguation: &pd},
		).
		WithLengths(quickWarmup, quickInsts)
}

func frontierSpec() *Spec {
	return New("latfifo-frontier").Frontier().
		WithBenchmarks("swim").
		WithSpace(Space{Scheme: "LatFIFO", Queues: []int{2, 4, 8}, Entries: []int{4, 8, 16, 32, 64}}).
		WithBudget(14).WithBatch(4).
		WithLengths(quickWarmup, quickInsts)
}

// checkGolden diffs got against the named fixture, rewriting it under
// -update-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/study -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- golden ---\n%s--- current ---\n%s", path, want, got)
	}
}

// TestGoldenAblationTable pins the ablation variant × metric table
// byte-for-byte in every emit format.
func TestGoldenAblationTable(t *testing.T) {
	res, err := Run(context.Background(), client.NewLocal(), ablationSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range Formats {
		var buf bytes.Buffer
		if err := res.Emit(&buf, format); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "ablation."+format+".txt", buf.String())
	}
}

// TestGoldenFrontierTrajectory pins the adaptive search end to end: the
// frontier table, the round-by-round trajectory and the total number of
// evaluated configurations must not drift.
func TestGoldenFrontierTrajectory(t *testing.T) {
	res, err := Run(context.Background(), client.NewLocal(), frontierSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) == 0 {
		t.Fatal("frontier study recorded no trajectory")
	}
	var buf bytes.Buffer
	if err := res.Emit(&buf, "md"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "frontier.md.txt", buf.String())
}

// TestAblationWarmRerun reruns the same study on one warm client: the
// second pass must simulate nothing and emit byte-identical tables.
func TestAblationWarmRerun(t *testing.T) {
	cl := client.NewLocal()
	cold, err := Run(context.Background(), cl, ablationSpec())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Counts.Simulated == 0 {
		t.Fatal("cold run simulated nothing")
	}
	warm, err := Run(context.Background(), cl, ablationSpec())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Counts.Simulated != 0 {
		t.Fatalf("warm rerun simulated %d points, want 0", warm.Counts.Simulated)
	}
	for _, format := range Formats {
		var a, b bytes.Buffer
		if err := cold.Emit(&a, format); err != nil {
			t.Fatal(err)
		}
		if err := warm.Emit(&b, format); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s output differs between cold and warm runs", format)
		}
	}
}

// TestReplicationStableAcrossParallelism runs the same replication study
// serially and wide: mean/sd/CI columns must match byte-for-byte, and
// distinct seeds must actually spread the observations (nonzero sd).
func TestReplicationStableAcrossParallelism(t *testing.T) {
	spec := New("rep").Replication().
		WithBenchmarks("swim").
		WithVariants(Variant{Name: "mb-distr", Scheme: "MB_distr"}).
		WithReplicates(3).
		WithLengths(quickWarmup, quickInsts)
	serial, err := Run(context.Background(), client.NewLocal(client.WithParallel(1)), spec)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(context.Background(), client.NewLocal(client.WithParallel(8)), spec)
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != wide.CSV() {
		t.Fatalf("replication table depends on parallelism:\n%s\nvs\n%s", serial.CSV(), wide.CSV())
	}
	sawSpread := false
	sd := colIndex(t, serial.Columns, "ipc_sd")
	for _, row := range serial.Rows {
		if row[sd] != "0.0000" {
			sawSpread = true
		}
	}
	if !sawSpread {
		t.Fatalf("replication seeds produced identical IPC everywhere:\n%s", serial.CSV())
	}
	n := colIndex(t, serial.Columns, "n")
	for _, row := range serial.Rows {
		if row[n] != "3" {
			t.Fatalf("row n = %s, want 3", row[n])
		}
	}
}

// TestFrontierRevisitsResolveFromCache reruns a frontier search on a
// warm client: every configuration the second search proposes is already
// in the content-addressed cache, so the engine's Simulated counter must
// not move while Requested grows.
func TestFrontierRevisitsResolveFromCache(t *testing.T) {
	cl := client.NewLocal()
	if _, err := Run(context.Background(), cl, frontierSpec()); err != nil {
		t.Fatal(err)
	}
	coldStats := cl.Stats()
	if coldStats.Simulated == 0 {
		t.Fatal("cold frontier search simulated nothing")
	}
	res, err := Run(context.Background(), cl, frontierSpec())
	if err != nil {
		t.Fatal(err)
	}
	warmStats := cl.Stats()
	if warmStats.Simulated != coldStats.Simulated {
		t.Fatalf("warm frontier search re-simulated %d points",
			warmStats.Simulated-coldStats.Simulated)
	}
	if warmStats.Requested <= coldStats.Requested {
		t.Fatal("warm frontier search requested nothing")
	}
	if res.Counts.Simulated != 0 {
		t.Fatalf("warm frontier search counted %d simulations", res.Counts.Simulated)
	}
}

// TestOnPointOrder checks the streaming hook: plan-ordered sequence
// numbers, stage labels naming variants, and one update per planned
// point.
func TestOnPointOrder(t *testing.T) {
	spec := ablationSpec()
	planned, err := spec.PlannedPoints()
	if err != nil {
		t.Fatal(err)
	}
	var ups []PointUpdate
	_, err = RunOpts(context.Background(), client.NewLocal(), spec, Options{
		OnPoint: func(u PointUpdate) { ups = append(ups, u) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != planned {
		t.Fatalf("saw %d updates, want %d", len(ups), planned)
	}
	stages := map[string]bool{}
	for i, u := range ups {
		if u.Seq != i {
			t.Fatalf("update %d carries seq %d", i, u.Seq)
		}
		stages[u.Stage] = true
	}
	for _, want := range []string{"baseline", "small-rob", "mb-distr", "oracle-disambig"} {
		if !stages[want] {
			t.Fatalf("no update for stage %q (saw %v)", want, stages)
		}
	}
}

// TestEmitFormats pins the emit funnel's error path and content types.
func TestEmitFormats(t *testing.T) {
	res := &Result{Name: "x", Mode: ModeAblation, Columns: []string{"a"}, Rows: [][]string{{"1"}}, numeric: []bool{true}}
	if err := res.Emit(&bytes.Buffer{}, "xml"); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("unknown format not rejected: %v", err)
	}
	for _, f := range Formats {
		if _, ok := ContentType(f); !ok {
			t.Fatalf("no content type for %q", f)
		}
		if err := res.Emit(&bytes.Buffer{}, f); err != nil {
			t.Fatalf("emit %s: %v", f, err)
		}
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"a": 1`)) {
		t.Fatalf("numeric cell not emitted as JSON number:\n%s", data)
	}
}

func colIndex(t *testing.T, cols []string, name string) int {
	t.Helper()
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, cols)
	return -1
}
