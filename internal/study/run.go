package study

import (
	"context"
	"fmt"

	"distiq/internal/client"
	"distiq/internal/engine"
	"distiq/internal/metrics"
	"distiq/internal/scenario"
)

// PointUpdate is one resolved simulation point of a running study,
// delivered to Options.OnPoint in deterministic plan order.
type PointUpdate struct {
	// Seq is the point's position in the study's overall plan order
	// (strictly increasing from 0).
	Seq int
	// Stage names the study stage that owns the point: the variant name
	// for ablation/replication, "round-N" for frontier rounds (round 0
	// is the coarse seed grid).
	Stage string
	// Benchmark and Values locate the point within its stage's grid.
	Benchmark string
	Values    []string
	// Result and Source are the point's outcome and how it resolved.
	Result engine.Result
	Source engine.Source
}

// Options tunes a study run.
type Options struct {
	// OnPoint, when set, receives every resolved point in plan order —
	// the hook the service's streaming endpoint and CLI progress are
	// built on.
	OnPoint func(PointUpdate)
}

// Run executes the study against any Client — the in-process engine, a
// remote distiqd, or a fleet — and returns its deterministic table.
func Run(ctx context.Context, cl client.Client, spec *Spec) (*Result, error) {
	return RunOpts(ctx, cl, spec, Options{})
}

// RunOpts is Run with explicit options.
func RunOpts(ctx context.Context, cl client.Client, spec *Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Name: spec.Name, Mode: spec.Mode}
	r := &runner{ctx: ctx, cl: cl, opts: opts, res: res}
	var err error
	switch spec.Mode {
	case ModeAblation:
		err = r.runAblation(spec)
	case ModeReplication:
		err = r.runReplication(spec)
	case ModeFrontier:
		err = r.runFrontier(spec)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runner threads the shared run state — the client, the point sequence
// counter and the accumulating result — through a study's stages.
type runner struct {
	ctx  context.Context
	cl   client.Client
	opts Options
	res  *Result
	seq  int
}

// sweep resolves one stage's scenario spec through the client, folding
// every point into the study's job/result/counts accumulators and the
// OnPoint hook. Results come back in grid order.
func (r *runner) sweep(stage string, sp *scenario.Spec) ([]engine.Result, error) {
	grid, err := sp.Expand()
	if err != nil {
		return nil, fmt.Errorf("study: stage %q: %w", stage, err)
	}
	st := r.cl.Sweep(r.ctx, grid)
	results := make([]engine.Result, 0, grid.Size())
	for st.Next() {
		u := st.Update()
		results = append(results, u.Result)
		if r.opts.OnPoint != nil {
			r.opts.OnPoint(PointUpdate{
				Seq: r.seq, Stage: stage,
				Benchmark: u.Point.Bench, Values: u.Point.Values,
				Result: u.Result, Source: u.Source,
			})
		}
		r.seq++
	}
	if err := st.Err(); err != nil {
		return nil, fmt.Errorf("study: stage %q: %w", stage, err)
	}
	r.res.Counts.Simulated += st.Counts().Simulated
	r.res.Counts.MemoryHits += st.Counts().MemoryHits
	r.res.Counts.DiskHits += st.Counts().DiskHits
	r.res.Counts.Shared += st.Counts().Shared
	r.res.Jobs = append(r.res.Jobs, grid.Jobs()...)
	r.res.Results = append(r.res.Results, results...)
	return results, nil
}

// variantSummary is one variant's aggregate metrics: harmonic-mean IPC
// across its benchmarks and arithmetic-mean issue-queue energy per
// benchmark.
type variantSummary struct {
	config string
	ipc    float64
	energy float64
}

// summarize aggregates one variant's per-benchmark results.
func summarize(results []engine.Result) variantSummary {
	runs := make([]metrics.Run, len(results))
	energies := make([]float64, len(results))
	for i, res := range results {
		runs[i] = res.Run
		energies[i] = res.IQEnergy
	}
	s := variantSummary{
		ipc:    metrics.HarmonicMeanIPC(runs),
		energy: mean(energies),
	}
	if len(results) > 0 {
		s.config = results[0].Config
	}
	return s
}

// runAblation sweeps the baseline and every variant (each a
// single-configuration grid over the study's benchmarks) and renders the
// variant × metric table with per-variant deltas against the baseline.
func (r *runner) runAblation(spec *Spec) error {
	names, specs, err := spec.variantSpecs(nil)
	if err != nil {
		return err
	}
	summaries := make([]variantSummary, len(names))
	for i, sp := range specs {
		results, err := r.sweep(names[i], sp)
		if err != nil {
			return err
		}
		summaries[i] = summarize(results)
	}
	base := summaries[0]
	r.res.Columns = []string{"variant", "config", "ipc_hmean", "iq_energy_pj", "d_ipc_pct", "d_energy_pct"}
	r.res.numeric = []bool{false, false, true, true, true, true}
	for i, s := range summaries {
		r.res.Rows = append(r.res.Rows, []string{
			names[i], s.config,
			fixed(s.ipc, 4), fixed(s.energy, 1),
			fixed(deltaPct(s.ipc, base.ipc), 2),
			fixed(deltaPct(s.energy, base.energy), 2),
		})
	}
	return nil
}

// runReplication fans the baseline and every variant across the
// replication seeds and renders per-benchmark mean / stddev / 95% CI
// columns, so scheme comparisons carry statistical weight.
func (r *runner) runReplication(spec *Spec) error {
	seeds := spec.seedList()
	names, specs, err := spec.variantSpecs(seeds)
	if err != nil {
		return err
	}
	r.res.Columns = []string{
		"variant", "config", "benchmark", "n",
		"ipc_mean", "ipc_sd", "ipc_ci95",
		"energy_mean", "energy_sd", "energy_ci95",
	}
	r.res.numeric = []bool{false, false, false, true, true, true, true, true, true, true}
	for i, sp := range specs {
		results, err := r.sweep(names[i], sp)
		if err != nil {
			return err
		}
		grid, err := sp.Expand()
		if err != nil {
			return err
		}
		// Grid order is seed-outer, benchmark-inner: results[s*B + b] is
		// benchmark b under seed s. Regroup per benchmark across seeds.
		nb := len(grid.Points) / len(seeds)
		for b := 0; b < nb; b++ {
			ipcs := make([]float64, len(seeds))
			energies := make([]float64, len(seeds))
			for s := range seeds {
				res := results[s*nb+b]
				ipcs[s] = res.IPC()
				energies[s] = res.IQEnergy
			}
			r.res.Rows = append(r.res.Rows, []string{
				names[i], results[b].Config, grid.Points[b].Bench,
				fmt.Sprintf("%d", len(seeds)),
				fixed(mean(ipcs), 4), fixed(sampleSD(ipcs), 4), fixed(ci95(ipcs), 4),
				fixed(mean(energies), 1), fixed(sampleSD(energies), 1), fixed(ci95(energies), 1),
			})
		}
	}
	return nil
}
