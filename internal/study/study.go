// Package study orchestrates comparative experiment studies on top of
// the Client layer, so the same study runs unchanged against the
// in-process engine, a remote distiqd service, or a sharded fleet.
//
// A strict-JSON Spec (or the New builder) describes one of three modes:
//
//   - ablation: a baseline machine plus named variants, each toggling a
//     feature set (scheme, ROB, widths, latencies, perfect
//     disambiguation) off the baseline, emitted as a deterministic
//     variant × metric table with per-variant deltas vs the baseline;
//   - replication: the same variants fanned out across R RNG seeds (the
//     scenario/engine Seed axis), reported as mean / stddev / 95% CI
//     columns, so scheme comparisons are statistical rather than
//     single-sample;
//   - frontier: an adaptive energy-vs-IPC Pareto search over a discrete
//     configuration space, seeding from a coarse grid and proposing
//     batches of neighbors of the current non-dominated set until a
//     fixed budget or a no-improvement round stops it.
//
// Every number in an emitted table goes through a fixed-point formatter,
// so documents are byte-identical across parallelism, substrate and
// warm-cache reruns; the content-addressed engine makes a warm rerun of
// any study — and a frontier re-proposing a visited point — cost zero
// new simulations.
package study

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"distiq/internal/scenario"
)

// Variant is one named configuration of an ablation or replication
// study: a set of feature toggles applied over the study's baseline.
// Zero-valued fields keep the baseline's (and ultimately Table 1's)
// value; setting Scheme replaces the whole issue-queue organization
// (named configuration, or a parametric kind shaped by IntQ / Queues /
// Entries / Chains / Distr).
type Variant struct {
	Name string `json:"name"`

	// Scheme is a named configuration (IQ_unbounded, IQ_64_64, IF_distr,
	// MB_distr, ...) or a parametric kind (IssueFIFO, LatFIFO, MixBUFF).
	Scheme string `json:"scheme,omitempty"`
	// IntQ, Queues, Entries, Chains and Distr shape a parametric Scheme;
	// they are rejected alongside a named one.
	IntQ    string `json:"intq,omitempty"`
	Queues  int    `json:"queues,omitempty"`
	Entries int    `json:"entries,omitempty"`
	Chains  int    `json:"chains,omitempty"`
	Distr   bool   `json:"distr,omitempty"`

	// Whole-machine toggles (0 = inherit).
	ROB         int `json:"rob,omitempty"`
	FetchWidth  int `json:"fetch_width,omitempty"`
	IssueWidth  int `json:"issue_width,omitempty"`
	CommitWidth int `json:"commit_width,omitempty"`
	IntALUs     int `json:"int_alus,omitempty"`
	IntMuls     int `json:"int_muls,omitempty"`
	FPAdders    int `json:"fp_adders,omitempty"`
	FPMuls      int `json:"fp_muls,omitempty"`
	L1DLatency  int `json:"l1d_latency,omitempty"`
	L2Latency   int `json:"l2_latency,omitempty"`
	MemLatency  int `json:"mem_latency,omitempty"`
	// PerfectDisambiguation toggles the Section 5 oracle ablation
	// (nil = inherit).
	PerfectDisambiguation *bool `json:"perfect_disambiguation,omitempty"`
}

// Space is the discrete configuration space a frontier search explores:
// a parametric scheme kind with ordered value lists for the searchable
// axes. A single-valued (or empty) list fixes that parameter; lists of
// two or more are searchable — neighbors differ by one step along one
// axis's list.
type Space struct {
	// Scheme is the parametric kind (IssueFIFO, LatFIFO or MixBUFF).
	Scheme string `json:"scheme"`
	IntQ   string `json:"intq,omitempty"`
	Distr  bool   `json:"distr,omitempty"`
	// Axes, in search order (empty = the scenario defaults: queues 8,
	// entries 16, chains unbounded, ROB per Table 1).
	Queues  []int `json:"queues,omitempty"`
	Entries []int `json:"entries,omitempty"`
	Chains  []int `json:"chains,omitempty"` // MixBUFF only
	ROB     []int `json:"rob,omitempty"`
}

// Spec is a strict-JSON study description. Mode selects which fields
// apply: ablation and replication use Baseline + Variants (replication
// additionally Seeds or Replicates); frontier uses Space + Budget +
// Batch. Suites/Benchmarks and Warmup/Instructions size every mode.
type Spec struct {
	// Name labels the study in reports.
	Name string `json:"name,omitempty"`
	// Mode is "ablation", "replication" or "frontier".
	Mode string `json:"mode"`

	// Suites and Benchmarks select workloads, as in a scenario spec
	// (both empty = all 26).
	Suites     []string `json:"suites,omitempty"`
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Baseline anchors ablation and replication studies; nil selects the
	// paper's IQ_64_64 evaluation baseline.
	Baseline *Variant `json:"baseline,omitempty"`
	// Variants are the named toggle sets compared against the baseline.
	Variants []Variant `json:"variants,omitempty"`

	// Seeds (explicit) or Replicates (seeds 0..R-1) define the
	// replication axis; replication mode requires at least two.
	Seeds      []uint64 `json:"seeds,omitempty"`
	Replicates int      `json:"replicates,omitempty"`

	// Space, Budget and Batch configure a frontier search: Budget bounds
	// evaluated configurations (default 32), Batch bounds proposals per
	// round (default 8).
	Space  *Space `json:"space,omitempty"`
	Budget int    `json:"budget,omitempty"`
	Batch  int    `json:"batch,omitempty"`

	// Warmup and Instructions size every simulation (defaults as in
	// scenario: 10000 and 60000).
	Warmup       *uint64 `json:"warmup,omitempty"`
	Instructions *uint64 `json:"instructions,omitempty"`
}

// Study modes.
const (
	ModeAblation    = "ablation"
	ModeReplication = "replication"
	ModeFrontier    = "frontier"
)

// Defaults for unset spec fields.
const (
	DefaultReplicates = 3
	DefaultBudget     = 32
	DefaultBatch      = 8
)

// New returns an empty named Spec for builder-style assembly:
//
//	spec := study.New("scheme-ablation").
//		Ablation().
//		WithSuites("fp").
//		WithBaseline(study.Variant{Scheme: "IQ_64_64"}).
//		WithVariants(
//			study.Variant{Name: "proposed", Scheme: "MB_distr"},
//			study.Variant{Name: "small-rob", ROB: 128},
//		).
//		WithLengths(10_000, 60_000)
func New(name string) *Spec { return &Spec{Name: name} }

// Ablation, Replication and Frontier select the study mode.
func (s *Spec) Ablation() *Spec    { s.Mode = ModeAblation; return s }
func (s *Spec) Replication() *Spec { s.Mode = ModeReplication; return s }
func (s *Spec) Frontier() *Spec    { s.Mode = ModeFrontier; return s }

// WithSuites appends benchmark suites ("int", "fp" or "all").
func (s *Spec) WithSuites(suites ...string) *Spec {
	s.Suites = append(s.Suites, suites...)
	return s
}

// WithBenchmarks appends individual benchmarks.
func (s *Spec) WithBenchmarks(benches ...string) *Spec {
	s.Benchmarks = append(s.Benchmarks, benches...)
	return s
}

// WithBaseline sets the baseline variant (its Name defaults to
// "baseline").
func (s *Spec) WithBaseline(v Variant) *Spec { s.Baseline = &v; return s }

// WithVariants appends named variants.
func (s *Spec) WithVariants(vs ...Variant) *Spec {
	s.Variants = append(s.Variants, vs...)
	return s
}

// WithSeeds appends explicit replication seeds.
func (s *Spec) WithSeeds(seeds ...uint64) *Spec {
	s.Seeds = append(s.Seeds, seeds...)
	return s
}

// WithReplicates selects R replication seeds (0..R-1).
func (s *Spec) WithReplicates(r int) *Spec { s.Replicates = r; return s }

// WithSpace sets the frontier search space.
func (s *Spec) WithSpace(sp Space) *Spec { s.Space = &sp; return s }

// WithBudget bounds the number of configurations a frontier search
// evaluates.
func (s *Spec) WithBudget(n int) *Spec { s.Budget = n; return s }

// WithBatch bounds proposals per frontier round.
func (s *Spec) WithBatch(n int) *Spec { s.Batch = n; return s }

// WithLengths sets warmup and measured instruction counts.
func (s *Spec) WithLengths(warmup, instructions uint64) *Spec {
	s.Warmup, s.Instructions = &warmup, &instructions
	return s
}

// ParseSpec decodes a JSON study specification strictly: unknown fields
// are errors, as are all structural problems Validate detects.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("study: parse spec: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return nil, fmt.Errorf("study: parse spec: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a JSON study specification file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("study: read spec: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("study: spec %s: %w", path, err)
	}
	return s, nil
}

// JSON renders the spec as indented JSON (the format LoadSpec accepts).
func (s *Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// defaultBaseline is the paper's evaluation baseline: the conventional
// 64+64-entry CAM/RAM issue queue.
func defaultBaseline() Variant { return Variant{Name: "baseline", Scheme: "IQ_64_64"} }

// baseline returns the study's baseline variant, defaulting name and
// configuration.
func (s *Spec) baseline() Variant {
	b := defaultBaseline()
	if s.Baseline != nil {
		b = *s.Baseline
		if b.Name == "" {
			b.Name = "baseline"
		}
		if b.Scheme == "" {
			b.Scheme = "IQ_64_64"
		}
	}
	return b
}

// seedList resolves the replication seeds: explicit Seeds win, else
// Replicates (default DefaultReplicates) counts 0..R-1.
func (s *Spec) seedList() []uint64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	r := s.Replicates
	if r == 0 {
		r = DefaultReplicates
	}
	seeds := make([]uint64, r)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	return seeds
}

// budget and batch return the frontier bounds with defaults applied.
func (s *Spec) budget() int {
	if s.Budget > 0 {
		return s.Budget
	}
	return DefaultBudget
}

func (s *Spec) batch() int {
	if s.Batch > 0 {
		return s.Batch
	}
	return DefaultBatch
}

// overlay applies a variant's non-zero toggles over the baseline,
// producing the variant's effective configuration. Setting Scheme
// replaces the whole scheme shape (IntQ/Queues/Entries/Chains/Distr
// come along, even when zero — a parametric override must not inherit
// the baseline's shape fields).
func overlay(base, v Variant) Variant {
	eff := base
	eff.Name = v.Name
	if v.Scheme != "" {
		eff.Scheme, eff.IntQ = v.Scheme, v.IntQ
		eff.Queues, eff.Entries, eff.Chains = v.Queues, v.Entries, v.Chains
		eff.Distr = v.Distr
	}
	for _, f := range []struct {
		dst *int
		src int
	}{
		{&eff.ROB, v.ROB}, {&eff.FetchWidth, v.FetchWidth},
		{&eff.IssueWidth, v.IssueWidth}, {&eff.CommitWidth, v.CommitWidth},
		{&eff.IntALUs, v.IntALUs}, {&eff.IntMuls, v.IntMuls},
		{&eff.FPAdders, v.FPAdders}, {&eff.FPMuls, v.FPMuls},
		{&eff.L1DLatency, v.L1DLatency}, {&eff.L2Latency, v.L2Latency},
		{&eff.MemLatency, v.MemLatency},
	} {
		if f.src != 0 {
			*f.dst = f.src
		}
	}
	if v.PerfectDisambiguation != nil {
		eff.PerfectDisambiguation = v.PerfectDisambiguation
	}
	return eff
}

// variantSpec renders one effective variant as a single-configuration
// scenario spec over the study's benchmarks (and seeds, when given) —
// the unit a Client can sweep on any substrate.
func (s *Spec) variantSpec(eff Variant, seeds []uint64) *scenario.Spec {
	sp := scenario.New(eff.Name)
	sp.Suites = append([]string(nil), s.Suites...)
	sp.Benchmarks = append([]string(nil), s.Benchmarks...)
	ax := scenario.SchemeAxis{Scheme: eff.Scheme}
	if eff.Queues != 0 || eff.Entries != 0 || eff.Chains != 0 || eff.IntQ != "" || eff.Distr {
		ax.IntQ, ax.Distr = eff.IntQ, eff.Distr
		if eff.Queues != 0 {
			ax.Queues = []int{eff.Queues}
		}
		if eff.Entries != 0 {
			ax.Entries = []int{eff.Entries}
		}
		if eff.Chains != 0 {
			ax.Chains = []int{eff.Chains}
		}
	}
	sp.WithScheme(ax)
	for _, f := range []struct {
		v   int
		add func(...int) *scenario.Spec
	}{
		{eff.ROB, sp.WithROB}, {eff.FetchWidth, sp.WithFetchWidth},
		{eff.IssueWidth, sp.WithIssueWidth}, {eff.CommitWidth, sp.WithCommitWidth},
		{eff.IntALUs, sp.WithIntALUs}, {eff.IntMuls, sp.WithIntMuls},
		{eff.FPAdders, sp.WithFPAdders}, {eff.FPMuls, sp.WithFPMuls},
		{eff.L1DLatency, sp.WithL1DLatency}, {eff.L2Latency, sp.WithL2Latency},
		{eff.MemLatency, sp.WithMemLatency},
	} {
		if f.v != 0 {
			f.add(f.v)
		}
	}
	if eff.PerfectDisambiguation != nil && *eff.PerfectDisambiguation {
		sp.WithPerfectDisambiguation(true)
	}
	if len(seeds) > 0 {
		sp.WithSeeds(seeds...)
	}
	sp.Warmup, sp.Instructions = s.Warmup, s.Instructions
	return sp
}

// variantSpecs resolves the study's baseline-first variant list into
// effective variants and their scenario specs, validating each by
// expansion.
func (s *Spec) variantSpecs(seeds []uint64) (names []string, specs []*scenario.Spec, err error) {
	base := s.baseline()
	all := append([]Variant{base}, s.Variants...)
	for i, v := range all {
		eff := base
		if i > 0 {
			eff = overlay(base, v)
		}
		sp := s.variantSpec(eff, seeds)
		if _, err := sp.Expand(); err != nil {
			return nil, nil, fmt.Errorf("study: variant %q: %w", eff.Name, err)
		}
		names = append(names, eff.Name)
		specs = append(specs, sp)
	}
	return names, specs, nil
}

// Validate checks the spec's structure without running anything: the
// mode must be known, variant names unique and expandable, replication
// must have at least two seeds, and a frontier space must expand to a
// valid candidate grid.
func (s *Spec) Validate() error {
	switch s.Mode {
	case ModeAblation, ModeReplication:
		if s.Mode == ModeAblation {
			if len(s.Variants) == 0 {
				return fmt.Errorf("study: ablation needs at least one variant")
			}
			if len(s.Seeds) > 0 || s.Replicates != 0 {
				return fmt.Errorf("study: seeds/replicates apply to replication mode only")
			}
		}
		if s.Space != nil || s.Budget != 0 || s.Batch != 0 {
			return fmt.Errorf("study: space/budget/batch apply to frontier mode only")
		}
		if len(s.Seeds) > 0 && s.Replicates != 0 {
			return fmt.Errorf("study: seeds and replicates are mutually exclusive")
		}
		if s.Replicates < 0 || (s.Replicates != 0 && s.Replicates < 2) {
			return fmt.Errorf("study: replicates must be at least 2")
		}
		names := map[string]bool{}
		base := s.baseline()
		if base.Name == "" {
			return fmt.Errorf("study: baseline needs a name")
		}
		names[base.Name] = true
		for i, v := range s.Variants {
			if v.Name == "" {
				return fmt.Errorf("study: variants[%d] needs a name", i)
			}
			if names[v.Name] {
				return fmt.Errorf("study: variant name %q repeats", v.Name)
			}
			names[v.Name] = true
		}
		var seeds []uint64
		if s.Mode == ModeReplication {
			seeds = s.seedList()
			if len(seeds) < 2 {
				return fmt.Errorf("study: replication needs at least 2 seeds")
			}
		}
		_, _, err := s.variantSpecs(seeds)
		return err
	case ModeFrontier:
		if len(s.Variants) > 0 || s.Baseline != nil {
			return fmt.Errorf("study: baseline/variants apply to ablation and replication modes only")
		}
		if len(s.Seeds) > 0 || s.Replicates != 0 {
			return fmt.Errorf("study: seeds/replicates apply to replication mode only")
		}
		if s.Space == nil {
			return fmt.Errorf("study: frontier needs a space")
		}
		if s.Budget < 0 || s.Batch < 0 {
			return fmt.Errorf("study: budget and batch must be positive")
		}
		return s.validateSpace()
	case "":
		return fmt.Errorf("study: spec has no mode (ablation, replication or frontier)")
	default:
		return fmt.Errorf("study: unknown mode %q (ablation, replication or frontier)", s.Mode)
	}
}

// validateSpace expands the space's full cross-product as a scenario
// grid, which checks the scheme kind, the axis values and every
// reachable machine before any search runs.
func (s *Spec) validateSpace() error {
	sp := scenario.New(s.Name)
	sp.Suites = append([]string(nil), s.Suites...)
	sp.Benchmarks = append([]string(nil), s.Benchmarks...)
	sp.WithScheme(scenario.SchemeAxis{
		Scheme: s.Space.Scheme, IntQ: s.Space.IntQ, Distr: s.Space.Distr,
		Queues: s.Space.Queues, Entries: s.Space.Entries, Chains: s.Space.Chains,
	})
	if len(s.Space.ROB) > 0 {
		sp.WithROB(s.Space.ROB...)
	}
	sp.Warmup, sp.Instructions = s.Warmup, s.Instructions
	if _, err := sp.Expand(); err != nil {
		return fmt.Errorf("study: space: %w", err)
	}
	searchable := false
	for _, ax := range s.spaceAxes() {
		if len(ax.vals) > 1 {
			searchable = true
		}
	}
	if !searchable {
		return fmt.Errorf("study: space has no searchable axis (every axis has at most one value)")
	}
	return nil
}

// PlannedPoints returns the number of simulation points the study will
// request up front, or 0 for the adaptive frontier mode (whose total
// emerges as the search runs).
func (s *Spec) PlannedPoints() (int, error) {
	switch s.Mode {
	case ModeAblation, ModeReplication:
		var seeds []uint64
		if s.Mode == ModeReplication {
			seeds = s.seedList()
		}
		_, specs, err := s.variantSpecs(seeds)
		if err != nil {
			return 0, err
		}
		total := 0
		for _, sp := range specs {
			g, err := sp.Expand()
			if err != nil {
				return 0, err
			}
			total += g.Size()
		}
		return total, nil
	}
	return 0, nil
}
