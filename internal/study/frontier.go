package study

import (
	"fmt"
	"sort"
	"strconv"

	"distiq/internal/scenario"
)

// spaceAxis is one searchable dimension of a frontier space: a named,
// ordered value list. A candidate is an index vector into these lists;
// its neighbors differ by one step along one axis.
type spaceAxis struct {
	name string
	vals []int
}

// spaceAxes returns the space's populated axes in canonical order
// (queues, entries, chains, rob). Empty lists contribute no axis — the
// scenario defaults apply and no output column appears.
func (s *Spec) spaceAxes() []spaceAxis {
	var out []spaceAxis
	add := func(name string, vals []int) {
		if len(vals) > 0 {
			out = append(out, spaceAxis{name, vals})
		}
	}
	add("queues", s.Space.Queues)
	add("entries", s.Space.Entries)
	add("chains", s.Space.Chains)
	add("rob", s.Space.ROB)
	return out
}

// candidate is one point of the search space: an index per axis.
type candidate []int

// key renders the candidate as a map key.
func (c candidate) key() string {
	s := ""
	for _, i := range c {
		s += strconv.Itoa(i) + ","
	}
	return s
}

// less orders candidates lexicographically — the canonical order every
// deterministic traversal of the search uses.
func (c candidate) less(o candidate) bool {
	for i := range c {
		if c[i] != o[i] {
			return c[i] < o[i]
		}
	}
	return false
}

// evaluated is a measured candidate.
type evaluated struct {
	cand   candidate
	config string
	ipc    float64
	energy float64
}

// dominates reports Pareto dominance: at least as good on both
// objectives (maximize IPC, minimize energy) and strictly better on one.
func (a evaluated) dominates(b evaluated) bool {
	return a.ipc >= b.ipc && a.energy <= b.energy &&
		(a.ipc > b.ipc || a.energy < b.energy)
}

// paretoFront filters the evaluated set down to its non-dominated
// members, in canonical candidate order.
func paretoFront(all []evaluated) []evaluated {
	var front []evaluated
	for i, a := range all {
		dominated := false
		for j, b := range all {
			if i != j && b.dominates(a) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, a)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].cand.less(front[j].cand) })
	return front
}

// candidateSpec renders one candidate as a single-configuration scenario
// spec over the study's benchmarks.
func (s *Spec) candidateSpec(axes []spaceAxis, c candidate) *scenario.Spec {
	ax := scenario.SchemeAxis{Scheme: s.Space.Scheme, IntQ: s.Space.IntQ, Distr: s.Space.Distr}
	rob := 0
	for i, a := range axes {
		v := a.vals[c[i]]
		switch a.name {
		case "queues":
			ax.Queues = []int{v}
		case "entries":
			ax.Entries = []int{v}
		case "chains":
			ax.Chains = []int{v}
		case "rob":
			rob = v
		}
	}
	sp := scenario.New("")
	sp.Suites = append([]string(nil), s.Suites...)
	sp.Benchmarks = append([]string(nil), s.Benchmarks...)
	sp.WithScheme(ax)
	if rob != 0 {
		sp.WithROB(rob)
	}
	sp.Warmup, sp.Instructions = s.Warmup, s.Instructions
	return sp
}

// seedCandidates returns the coarse starting grid: the cross-product of
// each axis's {first, middle, last} indices (deduplicated), in canonical
// order, truncated to the budget.
func seedCandidates(axes []spaceAxis, budget int) []candidate {
	picks := make([][]int, len(axes))
	for i, a := range axes {
		n := len(a.vals)
		set := []int{0}
		if mid := (n - 1) / 2; mid != 0 {
			set = append(set, mid)
		}
		if n-1 != 0 && n-1 != (n-1)/2 {
			set = append(set, n-1)
		}
		picks[i] = set
	}
	out := []candidate{{}}
	for _, set := range picks {
		var next []candidate
		for _, c := range out {
			for _, idx := range set {
				next = append(next, append(append(candidate(nil), c...), idx))
			}
		}
		out = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	if len(out) > budget {
		out = out[:budget]
	}
	return out
}

// neighbors proposes the next batch: unvisited one-step moves from the
// current frontier, walking frontier members in canonical order and axes
// in declaration order (-1 before +1), capped at batch proposals.
func neighbors(front []evaluated, axes []spaceAxis, visited map[string]bool, batch int) []candidate {
	var out []candidate
	proposed := map[string]bool{}
	for _, f := range front {
		for i, a := range axes {
			for _, step := range []int{-1, +1} {
				idx := f.cand[i] + step
				if idx < 0 || idx >= len(a.vals) {
					continue
				}
				n := append(candidate(nil), f.cand...)
				n[i] = idx
				k := n.key()
				if visited[k] || proposed[k] {
					continue
				}
				proposed[k] = true
				out = append(out, n)
				if len(out) == batch {
					return out
				}
			}
		}
	}
	return out
}

// runFrontier performs the adaptive Pareto search: a coarse seed grid,
// then rounds of one-step neighbors of the current non-dominated set,
// stopping on budget exhaustion, an empty proposal set, or a round that
// improves nothing. Every step is deterministic: candidates evaluate in
// canonical order and a re-proposed configuration resolves from the
// engine's content-addressed cache rather than re-simulating.
func (r *runner) runFrontier(spec *Spec) error {
	axes := spec.spaceAxes()
	budget := spec.budget()
	batch := spec.batch()

	visited := map[string]bool{}
	var all []evaluated

	evalBatch := func(stage string, cands []candidate) error {
		for _, c := range cands {
			visited[c.key()] = true
			sp := spec.candidateSpec(axes, c)
			results, err := r.sweep(stage, sp)
			if err != nil {
				return err
			}
			s := summarize(results)
			all = append(all, evaluated{cand: c, config: s.config, ipc: s.ipc, energy: s.energy})
		}
		return nil
	}

	seeds := seedCandidates(axes, budget)
	if err := evalBatch("round-0", seeds); err != nil {
		return err
	}
	front := paretoFront(all)
	r.res.Trajectory = append(r.res.Trajectory, Round{
		Round: 0, Proposed: len(seeds), Evaluated: len(seeds), Frontier: len(front),
	})

	frontKeys := func(f []evaluated) map[string]bool {
		keys := make(map[string]bool, len(f))
		for _, e := range f {
			keys[e.cand.key()] = true
		}
		return keys
	}

	for round := 1; len(all) < budget; round++ {
		limit := batch
		if remaining := budget - len(all); remaining < limit {
			limit = remaining
		}
		props := neighbors(front, axes, visited, limit)
		if len(props) == 0 {
			break
		}
		if err := evalBatch(fmt.Sprintf("round-%d", round), props); err != nil {
			return err
		}
		prev := frontKeys(front)
		front = paretoFront(all)
		r.res.Trajectory = append(r.res.Trajectory, Round{
			Round: round, Proposed: len(props), Evaluated: len(all), Frontier: len(front),
		})
		improved := false
		for _, e := range front {
			if !prev[e.cand.key()] {
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}

	// Emit the frontier sorted by energy ascending (ties: IPC
	// descending, then canonical candidate order): the natural reading
	// order of an energy–IPC trade-off curve.
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		if a.energy != b.energy {
			return a.energy < b.energy
		}
		if a.ipc != b.ipc {
			return a.ipc > b.ipc
		}
		return a.cand.less(b.cand)
	})
	// roundOf maps an evaluated candidate back to the round that first
	// measured it, via evaluation order and the trajectory.
	order := make(map[string]int, len(all))
	for i, e := range all {
		order[e.cand.key()] = i
	}
	roundOf := func(e evaluated) int {
		i := order[e.cand.key()]
		for _, t := range r.res.Trajectory {
			if i < t.Evaluated {
				return t.Round
			}
		}
		return r.res.Trajectory[len(r.res.Trajectory)-1].Round
	}

	cols := []string{}
	numeric := []bool{}
	for _, a := range axes {
		cols = append(cols, a.name)
		numeric = append(numeric, true)
	}
	cols = append(cols, "config", "ipc_hmean", "iq_energy_pj", "round")
	numeric = append(numeric, false, true, true, true)
	r.res.Columns, r.res.numeric = cols, numeric
	for _, e := range front {
		row := make([]string, 0, len(cols))
		for i, a := range axes {
			row = append(row, strconv.Itoa(a.vals[e.cand[i]]))
		}
		row = append(row, e.config, fixed(e.ipc, 4), fixed(e.energy, 1),
			strconv.Itoa(roundOf(e)))
		r.res.Rows = append(r.res.Rows, row)
	}
	return nil
}
