package study

import (
	"math"
	"strconv"
)

// fixed renders a float at a fixed precision, normalizing negative zero,
// so tables are byte-identical wherever they are produced.
func fixed(v float64, prec int) string {
	s := strconv.FormatFloat(v, 'f', prec, 64)
	// "-0.00" and "0.00" are the same number; pick one spelling.
	if len(s) > 1 && s[0] == '-' {
		allZero := true
		for _, c := range s[1:] {
			if c != '0' && c != '.' {
				allZero = false
				break
			}
		}
		if allZero {
			s = s[1:]
		}
	}
	return s
}

// mean returns the arithmetic mean (0 on empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// sampleSD returns the sample standard deviation (n-1 denominator; 0 for
// fewer than two observations).
func sampleSD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tCrit95 is the two-sided 95% Student's t critical value by degrees of
// freedom (1..30); larger samples use the normal approximation.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// ci95 returns the half-width of the two-sided 95% confidence interval
// of the mean of xs (0 for fewer than two observations).
func ci95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	t := 1.960
	if df := n - 1; df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return t * sampleSD(xs) / math.Sqrt(float64(n))
}

// deltaPct returns the percent change of v relative to base (0 when the
// base is zero, to keep tables finite).
func deltaPct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (v - base) / base * 100
}
