package rename

import (
	"testing"
	"testing/quick"

	"distiq/internal/isa"
)

func TestInitialState(t *testing.T) {
	rf := NewDefault(isa.IntDomain)
	if got := rf.FreeCount(); got != isa.NumPhysicalRegs-isa.NumLogicalRegs {
		t.Fatalf("free count = %d, want %d", got, isa.NumPhysicalRegs-isa.NumLogicalRegs)
	}
	for i := int16(0); i < isa.NumLogicalRegs; i++ {
		if rf.Lookup(i) != i {
			t.Fatalf("initial map[%d] = %d", i, rf.Lookup(i))
		}
		if !rf.Ready(rf.Lookup(i), 0) {
			t.Fatalf("initial register %d not ready", i)
		}
	}
}

func TestAllocateRemaps(t *testing.T) {
	rf := NewDefault(isa.FPDomain)
	pdest, pold := rf.Allocate(5)
	if pold != 5 {
		t.Fatalf("pold = %d, want 5", pold)
	}
	if rf.Lookup(5) != pdest {
		t.Fatalf("map[5] = %d, want %d", rf.Lookup(5), pdest)
	}
	if rf.Ready(pdest, 1000) {
		t.Fatal("freshly allocated register is ready")
	}
	rf.SetReadyAt(pdest, 7)
	if rf.Ready(pdest, 6) || !rf.Ready(pdest, 7) {
		t.Fatal("ReadyAt boundary wrong")
	}
}

func TestUndoRestores(t *testing.T) {
	rf := NewDefault(isa.IntDomain)
	before := rf.FreeCount()
	pdest, pold := rf.Allocate(3)
	rf.Undo(3, pdest, pold)
	if rf.Lookup(3) != pold {
		t.Fatal("Undo did not restore mapping")
	}
	if rf.FreeCount() != before {
		t.Fatal("Undo did not restore free list")
	}
	if rf.Allocs != 0 {
		t.Fatal("Undo did not revert alloc count")
	}
}

func TestUndoOutOfOrderPanics(t *testing.T) {
	rf := NewDefault(isa.IntDomain)
	p1, o1 := rf.Allocate(3)
	rf.Allocate(3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Undo did not panic")
		}
	}()
	rf.Undo(3, p1, o1)
}

func TestExhaustionAndFree(t *testing.T) {
	rf := New(isa.IntDomain, 4, 8)
	var olds []int16
	for i := 0; i < 4; i++ {
		if !rf.CanAllocate() {
			t.Fatalf("ran out after %d allocs, want 4", i)
		}
		_, pold := rf.Allocate(int16(i % 4))
		olds = append(olds, pold)
	}
	if rf.CanAllocate() {
		t.Fatal("free list should be empty")
	}
	rf.Free(olds[0])
	if !rf.CanAllocate() {
		t.Fatal("free did not replenish")
	}
}

func TestAllocatePanicsWhenEmpty(t *testing.T) {
	rf := New(isa.IntDomain, 2, 3)
	rf.Allocate(0)
	defer func() {
		if recover() == nil {
			t.Fatal("allocate on empty free list did not panic")
		}
	}()
	rf.Allocate(1)
}

func TestNewPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with physicals <= logicals did not panic")
		}
	}()
	New(isa.IntDomain, 32, 32)
}

func TestPropertyNoDoubleAllocation(t *testing.T) {
	// Property: a physical register is never handed out twice while live.
	rf := NewDefault(isa.IntDomain)
	live := map[int16]bool{}
	for i := int16(0); i < isa.NumLogicalRegs; i++ {
		live[i] = true
	}
	if err := quick.Check(func(regRaw uint8) bool {
		reg := int16(regRaw % isa.NumLogicalRegs)
		if !rf.CanAllocate() {
			return true
		}
		pdest, pold := rf.Allocate(reg)
		if live[pdest] {
			return false // double allocation
		}
		live[pdest] = true
		delete(live, pold)
		rf.Free(pold)
		return true
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRenameChainDependence(t *testing.T) {
	// Writing the same logical register twice gives distinct physical
	// registers, so readers of the first value are unaffected.
	rf := NewDefault(isa.IntDomain)
	p1, _ := rf.Allocate(7)
	rf.SetReadyAt(p1, 5)
	p2, pold2 := rf.Allocate(7)
	if p1 == p2 {
		t.Fatal("same physical register for two writes")
	}
	if pold2 != p1 {
		t.Fatalf("pold of second write = %d, want %d", pold2, p1)
	}
	if !rf.Ready(p1, 5) || rf.Ready(p2, 1000) {
		t.Fatal("readiness confused between versions")
	}
}
