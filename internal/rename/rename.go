// Package rename implements register renaming for one register-file
// domain: the logical-to-physical map table, the physical-register free
// list and the per-physical-register availability ("regs_ready") state
// consulted by the issue schemes.
//
// Readiness is tracked as the cycle at which the register's value becomes
// usable through the bypass network: a producer issuing at cycle c with
// latency L makes its destination usable at cycle c+L, so a dependent
// instruction may issue at c+L (back-to-back for single-cycle producers).
package rename

import (
	"fmt"

	"distiq/internal/isa"
)

// FarFuture marks a register whose producer has not issued yet; ReadyAt
// returns it for such registers.
const FarFuture = int64(1) << 62

// RegFile is the rename state of one domain (integer or floating point).
type RegFile struct {
	domain isa.Domain

	mapTable   []int16 // logical -> physical
	freeList   []int16 // stack of free physical registers
	readyCycle []int64 // per physical register

	// Allocs and Frees count lifetime events for sanity checks.
	Allocs, Frees uint64
}

// New returns a RegFile with logicals logical registers initially mapped to
// physical registers [0, logicals), all ready, and the rest free.
func New(domain isa.Domain, logicals, physicals int) *RegFile {
	if physicals <= logicals {
		panic("rename: need more physical than logical registers")
	}
	rf := &RegFile{
		domain:     domain,
		mapTable:   make([]int16, logicals),
		freeList:   make([]int16, 0, physicals-logicals),
		readyCycle: make([]int64, physicals),
	}
	for i := range rf.mapTable {
		rf.mapTable[i] = int16(i)
	}
	for p := physicals - 1; p >= logicals; p-- {
		rf.freeList = append(rf.freeList, int16(p))
	}
	return rf
}

// NewDefault returns the Table 1 register file for the domain: 32 logical,
// 160 physical registers.
func NewDefault(domain isa.Domain) *RegFile {
	return New(domain, isa.NumLogicalRegs, isa.NumPhysicalRegs)
}

// FreeCount returns the number of free physical registers.
func (rf *RegFile) FreeCount() int { return len(rf.freeList) }

// Lookup returns the physical register currently mapped to logical reg.
func (rf *RegFile) Lookup(reg int16) int16 { return rf.mapTable[reg] }

// CanAllocate reports whether a destination register can be renamed now.
func (rf *RegFile) CanAllocate() bool { return len(rf.freeList) > 0 }

// Allocate renames a destination: it maps logical reg to a fresh physical
// register (initially not ready) and returns the new physical register and
// the previous mapping (to be freed at commit). It panics if the free list
// is empty; call CanAllocate first.
func (rf *RegFile) Allocate(reg int16) (pdest, pold int16) {
	if len(rf.freeList) == 0 {
		panic(fmt.Sprintf("rename(%v): free list empty", rf.domain))
	}
	pdest = rf.freeList[len(rf.freeList)-1]
	rf.freeList = rf.freeList[:len(rf.freeList)-1]
	pold = rf.mapTable[reg]
	rf.mapTable[reg] = pdest
	rf.readyCycle[pdest] = FarFuture
	rf.Allocs++
	return pdest, pold
}

// Undo reverses an Allocate performed this cycle (used when a later
// in-order dispatch check fails): the map entry is restored and the
// physical register returned to the free list.
func (rf *RegFile) Undo(reg, pdest, pold int16) {
	if rf.mapTable[reg] != pdest {
		panic("rename: Undo out of order")
	}
	rf.mapTable[reg] = pold
	rf.freeList = append(rf.freeList, pdest)
	rf.readyCycle[pdest] = 0
	rf.Allocs--
}

// Free returns a physical register to the free list (called at commit with
// the instruction's previous mapping).
func (rf *RegFile) Free(p int16) {
	rf.freeList = append(rf.freeList, p)
	rf.readyCycle[p] = 0
	rf.Frees++
}

// SetReadyAt records that physical register p becomes usable at cycle c.
func (rf *RegFile) SetReadyAt(p int16, c int64) { rf.readyCycle[p] = c }

// ReadyAt returns the cycle physical register p becomes usable (a very
// large value if its producer has not issued).
func (rf *RegFile) ReadyAt(p int16) int64 { return rf.readyCycle[p] }

// Ready reports whether p is usable at cycle c.
func (rf *RegFile) Ready(p int16, c int64) bool { return rf.readyCycle[p] <= c }
