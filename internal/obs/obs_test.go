package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Total jobs.", L("source", "disk"))
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(7)
	g.Dec()

	got := render(t, r)
	want := "# HELP jobs_total Total jobs.\n" +
		"# TYPE jobs_total counter\n" +
		`jobs_total{source="disk"} 4` + "\n" +
		"# HELP queue_depth Jobs waiting.\n" +
		"# TYPE queue_depth gauge\n" +
		"queue_depth 6\n"
	if got != want {
		t.Errorf("rendered exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "h", L("route", "/x"))
	b := r.Counter("hits_total", "h", L("route", "/x"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	other := r.Counter("hits_total", "h", L("route", "/y"))
	if a == other {
		t.Error("different labels returned the same counter")
	}
}

func TestFuncMetricsReadLive(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	var mu sync.Mutex
	r.GaugeFunc("live", "", func() float64 { mu.Lock(); defer mu.Unlock(); return v })
	if !strings.Contains(render(t, r), "live 1\n") {
		t.Error("first scrape missing live 1")
	}
	mu.Lock()
	v = 2.5
	mu.Unlock()
	if !strings.Contains(render(t, r), "live 2.5\n") {
		t.Error("second scrape missing updated value 2.5")
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("Sum = %g, want 56.05", h.Sum())
	}
	got := render(t, r)
	for _, line := range []string{
		`dur_seconds_bucket{le="0.1"} 1`,
		`dur_seconds_bucket{le="1"} 3`,
		`dur_seconds_bucket{le="10"} 4`,
		`dur_seconds_bucket{le="+Inf"} 5`,
		`dur_seconds_sum 56.05`,
		`dur_seconds_count 5`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, got)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "", []float64{1, 2})
	h.Observe(1) // exactly on an upper bound: le="1" is inclusive
	if got := render(t, r); !strings.Contains(got, `b_bucket{le="1"} 1`+"\n") {
		t.Errorf("observation on bucket boundary not counted inclusively:\n%s", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid ExpBuckets did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestDeterministicOrdering(t *testing.T) {
	mk := func() string {
		r := NewRegistry()
		r.Gauge("zzz", "")
		r.Counter("aaa_total", "", L("b", "2"), L("a", "1")).Inc()
		r.Counter("aaa_total", "", L("a", "0"), L("b", "9")).Inc()
		r.Histogram("mid_seconds", "", []float64{1})
		return render(t, &Registry{fams: r.fams})
	}
	first := mk()
	for i := 0; i < 5; i++ {
		if got := mk(); got != first {
			t.Fatalf("non-deterministic rendering:\n%s\nvs\n%s", first, got)
		}
	}
	// Families sort by name, label keys sort within a block.
	if !strings.Contains(first, `aaa_total{a="0",b="9"}`) {
		t.Errorf("label keys not sorted:\n%s", first)
	}
	aaa, mid, zzz := strings.Index(first, "# TYPE aaa_total"), strings.Index(first, "# TYPE mid_seconds"), strings.Index(first, "# TYPE zzz")
	if !(aaa >= 0 && aaa < mid && mid < zzz) {
		t.Errorf("families not sorted by name:\n%s", first)
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line1\nline2 \\ backslash", L("path", "a\"b\\c\nd")).Inc()
	got := render(t, r)
	if !strings.Contains(got, `# HELP esc_total line1\nline2 \\ backslash`) {
		t.Errorf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", got)
	}
	if err := CheckExposition([]byte(got)); err != nil {
		t.Errorf("escaped exposition rejected: %v", err)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, f := range []func(){
		func() { r.Counter("0bad", "") },
		func() { r.Counter("has space", "") },
		func() { r.Gauge("ok", "", L("0key", "v")) },
		func() { r.Histogram("h", "", nil) },
		func() { r.Histogram("h2", "", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid registration did not panic")
				}
			}()
			f()
		}()
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering counter as gauge did not panic")
		}
	}()
	r.Gauge("thing_total", "")
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", "", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("re-registering histogram with different buckets did not panic")
		}
	}()
	r.Histogram("lat", "", []float64{1, 3})
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "", ExpBuckets(0.001, 10, 5))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("conc_total", "", L("w", string(rune('a'+w)))).Inc()
				r.Gauge("conc_gauge", "").Add(1)
				h.Observe(float64(i) / 100)
				if i%50 == 0 {
					render(t, r)
				}
			}
		}()
	}
	wg.Wait()
	got := render(t, r)
	if !strings.Contains(got, "conc_gauge 1600\n") {
		t.Errorf("gauge lost updates:\n%s", got)
	}
	if !strings.Contains(got, "conc_seconds_count 1600\n") {
		t.Errorf("histogram lost observations:\n%s", got)
	}
	if err := CheckExposition([]byte(got)); err != nil {
		t.Errorf("concurrent-use exposition invalid: %v", err)
	}
}

func TestCheckExpositionAccepts(t *testing.T) {
	ok := "# plain comment\n" +
		"# HELP up Is it up.\n" +
		"# TYPE up gauge\n" +
		"up 1\n" +
		"# TYPE lat_seconds histogram\n" +
		`lat_seconds_bucket{le="0.1"} 2` + "\n" +
		`lat_seconds_bucket{le="+Inf"} 3` + "\n" +
		"lat_seconds_sum 0.42\n" +
		"lat_seconds_count 3\n" +
		"# TYPE weird untyped\n" +
		"weird -1.5e3\n"
	if err := CheckExposition([]byte(ok)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no trailing newline":           "# TYPE a gauge\na 1",
		"sample without TYPE":           "a 1\n",
		"bad value":                     "# TYPE a gauge\na one\n",
		"bad metric name":               "# TYPE a gauge\na 1\n# TYPE 0b gauge\n",
		"unknown type":                  "# TYPE a widget\n",
		"duplicate TYPE":                "# TYPE a gauge\n# TYPE a gauge\n",
		"duplicate series":              "# TYPE a gauge\na 1\na 2\n",
		"unquoted label value":          "# TYPE a gauge\na{x=1} 1\n",
		"bad label key":                 "# TYPE a gauge\n" + `a{0x="1"} 1` + "\n",
		"unterminated value":            "# TYPE a gauge\n" + `a{x="1} 1` + "\n",
		"trailing timestamp":            "# TYPE a gauge\na 1 1234567\n",
		"histogram suffix without base": `lat_bucket{le="+Inf"} 1` + "\n",
	}
	for name, data := range cases {
		if err := CheckExposition([]byte(data)); err == nil {
			t.Errorf("%s: accepted invalid exposition %q", name, data)
		}
	}
}
