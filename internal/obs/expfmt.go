package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckExposition validates that data is syntactically well-formed
// Prometheus text exposition format (version 0.0.4): every line is a
// comment, a `# TYPE`/`# HELP` declaration or a sample; sample names and
// label keys are legal, label values are correctly quoted, values parse
// as floats, TYPE declarations precede their samples and name a known
// metric type, and no series line repeats. It is the scrape gate used by
// the CI observability test — a strict consumer, not a full parser.
func CheckExposition(data []byte) error {
	types := make(map[string]kind)  // family -> declared type
	seen := make(map[string]bool)   // exact series (name+labels) lines
	helped := make(map[string]bool) // families with a HELP line
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "" {
		return fmt.Errorf("obs: exposition must end with a newline")
	}
	lines = lines[:len(lines)-1]
	for n, line := range lines {
		lineNo := n + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line, types, helped); err != nil {
				return fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if !validName(name) {
			return fmt.Errorf("obs: line %d: invalid metric name %q", lineNo, name)
		}
		if err := checkLabels(labels); err != nil {
			return fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if err := checkValue(value); err != nil {
			return fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		fam, ok := sampleFamily(name, types)
		if !ok {
			return fmt.Errorf("obs: line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		series := fam + "|" + name + labels
		if seen[series] {
			return fmt.Errorf("obs: line %d: duplicate series %s%s", lineNo, name, labels)
		}
		seen[series] = true
	}
	return nil
}

// checkComment validates a `#`-prefixed line, recording TYPE and HELP
// declarations. Arbitrary comments (`# anything`) pass.
func checkComment(line string, types map[string]kind, helped map[string]bool) error {
	if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := parts[0], kind(parts[1])
		if !validName(name) {
			return fmt.Errorf("TYPE line names invalid metric %q", name)
		}
		switch typ {
		case counterKind, gaugeKind, histogramKind, "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE declaration for %s", name)
		}
		types[name] = typ
		return nil
	}
	if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
		parts := strings.SplitN(rest, " ", 2)
		if !validName(parts[0]) {
			return fmt.Errorf("HELP line names invalid metric %q", parts[0])
		}
		if helped[parts[0]] {
			return fmt.Errorf("duplicate HELP declaration for %s", parts[0])
		}
		helped[parts[0]] = true
		return nil
	}
	return nil // plain comment
}

// splitSample splits a sample line into name, raw label block ("" or
// "{...}") and value text. A trailing timestamp is rejected — the
// registry never emits one.
func splitSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labels, rest = rest[:i], rest[i:j+1], rest[j+1:]
		if !strings.HasPrefix(rest, " ") {
			return "", "", "", fmt.Errorf("missing space before value in %q", line)
		}
		value = strings.TrimPrefix(rest, " ")
	} else {
		fields := strings.Split(rest, " ")
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("expected `name value` in %q", line)
		}
		name, value = fields[0], fields[1]
	}
	if strings.ContainsAny(value, " \t") {
		return "", "", "", fmt.Errorf("unexpected timestamp or trailing data in %q", line)
	}
	return name, labels, value, nil
}

// checkLabels validates a raw `{k="v",...}` block.
func checkLabels(block string) error {
	if block == "" {
		return nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return fmt.Errorf("empty label block")
	}
	rest := inner
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", block)
		}
		key := rest[:eq]
		if !validLabelKey(key) {
			return fmt.Errorf("invalid label key %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("label %s: value not quoted", key)
		}
		rest = rest[1:]
		// Scan the quoted value honoring \\ \" \n escapes.
		end := -1
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				if i+1 >= len(rest) || !strings.ContainsRune(`\"n`, rune(rest[i+1])) {
					return fmt.Errorf("label %s: bad escape", key)
				}
				i++
			case '"':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("label %s: unterminated value", key)
		}
		rest = rest[end+1:]
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return fmt.Errorf("expected comma after label %s", key)
		}
		rest = rest[1:]
	}
	return nil
}

// checkValue validates a sample value: any float, or the exposition
// spellings of the special values (+Inf, -Inf, NaN).
func checkValue(v string) error {
	switch v {
	case "+Inf", "-Inf", "NaN":
		return nil
	}
	if _, err := strconv.ParseFloat(v, 64); err != nil {
		return fmt.Errorf("bad sample value %q", v)
	}
	return nil
}

// sampleFamily resolves a sample name to its declared family, accepting
// the histogram component suffixes (_bucket/_sum/_count) and summary
// quantile suffixes against their base declaration.
func sampleFamily(name string, types map[string]kind) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		switch types[base] {
		case histogramKind:
			return base, true
		case "summary":
			if suffix != "_bucket" {
				return base, true
			}
		}
	}
	return "", false
}
