// Package obs is a dependency-free observability layer: a small metrics
// registry — counters, gauges, function-backed metrics and histograms
// with fixed buckets — that renders the Prometheus text exposition
// format, so a long-lived service (distiqd) can be scraped by any
// standard monitoring stack without pulling a client library into the
// module.
//
// The registry is safe for concurrent use; registration is idempotent
// (asking for an existing name+labels returns the same instance) and
// rendering is deterministic: families sort by name, series by label
// signature, so two scrapes of the same state are byte-identical.
//
// Metric and label names are validated at registration and violations
// panic — metrics are wired at startup, and a misnamed metric is a
// programming error, not a runtime condition.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind is the Prometheus metric type of a family.
type kind string

const (
	counterKind   kind = "counter"
	gaugeKind     kind = "gauge"
	histogramKind kind = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored (counters
// are monotonic by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	upper []float64

	mu     sync.Mutex
	counts []uint64 // len(upper)+1; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, the sum and the total.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.total
}

// ExpBuckets returns n exponentially growing bucket upper bounds:
// start, start*factor, start*factor², … — the standard latency-histogram
// layout. It panics on non-positive start, factor <= 1 or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid exponential buckets (start %g, factor %g, n %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// series is one labeled instance within a family.
type series struct {
	labels []Label
	sig    string // rendered label block, e.g. {a="x",b="y"} or ""

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // function-backed counter/gauge
}

// family groups every series of one metric name.
type family struct {
	name, help string
	kind       kind
	buckets    []float64 // histogram families only
	series     map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	var c *Counter
	r.lookup(name, help, counterKind, nil, labels, func(s *series) {
		if s.counter == nil {
			s.counter = &Counter{}
		}
		c = s.counter
	})
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	var g *Gauge
	r.lookup(name, help, gaugeKind, nil, labels, func(s *series) {
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
		g = s.gauge
	})
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonic and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, counterKind, nil, labels, func(s *series) { s.fn = fn })
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(name, help, gaugeKind, nil, labels, func(s *series) { s.fn = fn })
}

// Histogram returns the histogram for name+labels, creating it on first
// use. buckets are ascending upper bounds (see ExpBuckets); every series
// of one family must use the same buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) || (i > 0 && b <= buckets[i-1]) {
			panic(fmt.Sprintf("obs: histogram %s: buckets must be finite and ascending", name))
		}
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s: no buckets", name))
	}
	var h *Histogram
	r.lookup(name, help, histogramKind, buckets, labels, func(s *series) {
		if s.hist == nil {
			s.hist = &Histogram{
				upper:  append([]float64(nil), buckets...),
				counts: make([]uint64, len(buckets)+1),
			}
		}
		h = s.hist
	})
	return h
}

// lookup finds or creates the series for name+labels and runs init on it
// under the registry lock (so instance creation never races a scrape).
// It panics on inconsistent re-registration.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []Label, init func(*series)) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: metric %s: invalid label key %q", name, l.Key))
		}
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, k))
	} else if k == histogramKind && !sameBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...), sig: sig}
		f.series[sig] = s
	}
	init(s)
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), deterministically ordered.
// Series registered concurrently with a scrape appear from the next
// scrape on; values are read live at render time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type renderSeries struct {
		sig    string
		labels []Label
		value  func() float64 // scalar series
		hist   *Histogram     // histogram series
	}
	type renderFamily struct {
		name, help string
		kind       kind
		series     []renderSeries
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]renderFamily, 0, len(names))
	for _, name := range names {
		f := r.fams[name]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		rf := renderFamily{name: f.name, help: f.help, kind: f.kind}
		for _, sig := range sigs {
			s := f.series[sig]
			rs := renderSeries{sig: s.sig, labels: s.labels, hist: s.hist}
			switch {
			case s.fn != nil:
				rs.value = s.fn
			case s.counter != nil:
				rs.value = s.counter.Value
			case s.gauge != nil:
				rs.value = s.gauge.Value
			default:
				rs.value = func() float64 { return 0 }
			}
			rf.series = append(rf.series, rs)
		}
		fams = append(fams, rf)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case histogramKind:
				writeHistogram(&b, f.name, s.labels, s.sig, s.hist)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.sig, formatValue(s.value()))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// (le-labeled), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, labels []Label, sig string, h *Histogram) {
	cum, sum, total := h.snapshot()
	for i, upper := range h.upper {
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(labels, formatValue(upper)), cum[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(labels, "+Inf"), cum[len(cum)-1])
	fmt.Fprintf(b, "%s_sum%s %s\n", name, sig, formatValue(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, sig, total)
}

// withLE renders a label block with the le label appended.
func withLE(labels []Label, le string) string {
	return labelSig(append(append([]Label(nil), labels...), Label{Key: "le", Value: le}))
}

// labelSig renders labels as a deterministic {k="v",...} block (sorted
// by key; empty for no labels).
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value; integral values render without an
// exponent or decimal point, so counters read naturally.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// validName reports whether s is a legal metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelKey reports whether s is a legal label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
