package isa

import (
	"strings"
	"testing"
)

func TestClassDomains(t *testing.T) {
	intClasses := []Class{IntALU, IntMult, IntDiv, Load, Store, Branch}
	for _, c := range intClasses {
		if c.Domain() != IntDomain {
			t.Errorf("%v domain = %v, want int", c, c.Domain())
		}
	}
	fpClasses := []Class{FPAdd, FPMult, FPDiv}
	for _, c := range fpClasses {
		if c.Domain() != FPDomain {
			t.Errorf("%v domain = %v, want fp", c, c.Domain())
		}
	}
}

func TestClassFU(t *testing.T) {
	cases := map[Class]FUKind{
		IntALU:  IntALUUnit,
		IntMult: IntMulUnit,
		IntDiv:  IntMulUnit,
		FPAdd:   FPAddUnit,
		FPMult:  FPMulUnit,
		FPDiv:   FPMulUnit,
		Load:    IntALUUnit,
		Store:   IntALUUnit,
		Branch:  IntALUUnit,
	}
	for c, want := range cases {
		if got := c.FU(); got != want {
			t.Errorf("%v FU = %v, want %v", c, got, want)
		}
	}
}

func TestDefaultLatenciesMatchTable1(t *testing.T) {
	l := DefaultLatencies()
	want := map[Class]int{
		IntALU: 1, IntMult: 3, IntDiv: 20,
		FPAdd: 2, FPMult: 4, FPDiv: 12,
		Load: 1, Store: 1, Branch: 1,
	}
	for c, w := range want {
		if l[c] != w {
			t.Errorf("latency[%v] = %d, want %d", c, l[c], w)
		}
	}
}

func TestIsMem(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		want := c == Load || c == Store
		if c.IsMem() != want {
			t.Errorf("%v IsMem = %v, want %v", c, c.IsMem(), want)
		}
	}
}

func TestStringNames(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "Class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	for k := FUKind(0); k < NumFUKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "FUKind(") {
			t.Errorf("fu kind %d has no name", k)
		}
	}
	if IntDomain.String() != "int" || FPDomain.String() != "fp" {
		t.Error("domain names wrong")
	}
	if !strings.HasPrefix(Class(200).String(), "Class(") {
		t.Error("out-of-range class should format as Class(n)")
	}
	if !strings.HasPrefix(FUKind(200).String(), "FUKind(") {
		t.Error("out-of-range FU kind should format as FUKind(n)")
	}
	if !strings.HasPrefix(Domain(9).String(), "Domain(") {
		t.Error("out-of-range domain should format as Domain(n)")
	}
}

func TestInstSourceCounting(t *testing.T) {
	in := &Inst{Src1: 3, Src2: NoReg, Dest: 7}
	if in.NumSources() != 1 {
		t.Errorf("NumSources = %d, want 1", in.NumSources())
	}
	if !in.HasDest() {
		t.Error("HasDest = false, want true")
	}
	in.Src2 = 4
	if in.NumSources() != 2 {
		t.Errorf("NumSources = %d, want 2", in.NumSources())
	}
	in.Dest = NoReg
	if in.HasDest() {
		t.Error("HasDest = true, want false")
	}
}

func TestResetMicro(t *testing.T) {
	in := &Inst{
		Class: Load, Src1: 1, Dest: 2,
		PSrc1: 5, PDest: 9, Mispredicted: true, Issued: true,
		Completed: true, IssueCycle: 10, QueueID: 3, ChainID: 2,
		Delayed: true, AgeID: 77,
	}
	in.ResetMicro()
	if in.PSrc1 != NoReg || in.PDest != NoReg || in.POld != NoReg {
		t.Error("physical registers not reset")
	}
	if in.Mispredicted || in.Issued || in.Completed || in.Delayed {
		t.Error("status flags not reset")
	}
	if in.IssueCycle != 0 || in.QueueID != -1 || in.ChainID != -1 || in.AgeID != 0 {
		t.Error("timing/placement not reset")
	}
	// Architectural fields must survive.
	if in.Class != Load || in.Src1 != 1 || in.Dest != 2 {
		t.Error("architectural fields were clobbered")
	}
}
