package isa

// Inst is one dynamic instruction flowing through the simulator. A trace
// generator fills in the architectural fields (class, logical registers,
// address, branch behaviour); the pipeline fills in the microarchitectural
// fields (physical registers, timing) as the instruction advances.
//
// Logical and physical register numbers are domain-local: integer register
// 3 and floating-point register 3 are distinct, and the domain of each
// operand is carried alongside its index.
type Inst struct {
	// Seq is the dynamic sequence number (fetch order), used as the age
	// identifier basis.
	Seq uint64
	// PC is the instruction address, used by the branch predictor and
	// instruction cache.
	PC uint64
	// Class is the operation class.
	Class Class

	// Src1/Src2 are logical source register indices, or NoReg. SrcFP
	// flags give each source's register-file domain (an FP load's
	// address source is integer; an FP store's data source is FP).
	Src1, Src2     int16
	Src1FP, Src2FP bool
	// Dest is the logical destination register index, or NoReg.
	Dest   int16
	DestFP bool

	// Addr is the effective address of a load or store.
	Addr uint64
	// Taken is the architectural outcome of a branch.
	Taken bool
	// Target is the branch target address.
	Target uint64

	// ---- Fields below are owned by the pipeline. ----

	// PSrc1, PSrc2, PDest are renamed physical registers (NoReg if the
	// corresponding logical operand is absent). POld is the physical
	// register previously mapped to Dest, freed at commit.
	PSrc1, PSrc2, PDest, POld int16

	// Mispredicted is set at fetch when the branch predictor disagrees
	// with the architectural outcome.
	Mispredicted bool

	// ROBIdx is the reorder-buffer slot, used to derive the age
	// identifier of the selection logic.
	ROBIdx int
	// AgeID is the wrap-bit-extended ROB position used for ordering by
	// the selection logic (smaller = older).
	AgeID uint32

	// QueueID and ChainID record where the dispatch logic placed the
	// instruction (scheme-specific; -1 when unused).
	QueueID, ChainID int

	// EstIssue is the LatFIFO/MixBUFF estimated issue cycle computed at
	// dispatch.
	EstIssue int64

	// Delayed marks an instruction that was selected (or became head)
	// when it was first expected to be ready but could not issue; such
	// instructions lose first-time priority in MixBUFF selection.
	Delayed bool

	// Timing: cycle numbers of each pipeline event. Zero means "not yet".
	FetchCycle, DispatchCycle, IssueCycle, CompleteCycle, CommitCycle int64

	// MemLatency is the data-cache access latency observed by a load
	// (filled at execute).
	MemLatency int

	// Issued and Completed track execution status inside the window.
	Issued, Completed bool

	// StoreAddrReadyCycle is the cycle a store's address becomes known
	// (issue + AddressLatency), consulted by younger loads.
	StoreAddrReadyCycle int64

	// NextEvent links instructions completing in the same cycle into the
	// pipeline's intrusive completion-event list (an instruction is in at
	// most one such list at a time), so scheduling a completion never
	// allocates.
	NextEvent *Inst
}

// HasDest reports whether the instruction writes a register.
func (in *Inst) HasDest() bool { return in.Dest != NoReg }

// NumSources returns how many register source operands the instruction has.
func (in *Inst) NumSources() int {
	n := 0
	if in.Src1 != NoReg {
		n++
	}
	if in.Src2 != NoReg {
		n++
	}
	return n
}

// Domain returns the dispatch domain of the instruction.
func (in *Inst) Domain() Domain { return in.Class.Domain() }

// ResetMicro clears all pipeline-owned fields, allowing an Inst produced by
// a trace generator to be re-simulated under a different configuration.
func (in *Inst) ResetMicro() {
	in.PSrc1, in.PSrc2, in.PDest, in.POld = NoReg, NoReg, NoReg, NoReg
	in.Mispredicted = false
	in.ROBIdx = 0
	in.AgeID = 0
	in.QueueID, in.ChainID = -1, -1
	in.EstIssue = 0
	in.Delayed = false
	in.FetchCycle, in.DispatchCycle, in.IssueCycle = 0, 0, 0
	in.CompleteCycle, in.CommitCycle = 0, 0
	in.MemLatency = 0
	in.Issued, in.Completed = false, false
	in.StoreAddrReadyCycle = 0
	in.NextEvent = nil
}
