// Package isa defines the instruction-set abstraction used by the
// simulator: instruction classes, execution domains (integer vs floating
// point issue queues), functional-unit kinds and the operation latencies of
// the HPCA 2004 paper's Table 1 configuration.
//
// The reproduced paper simulates an Alpha-like ISA through SimpleScalar; the
// timing behaviour that matters to the issue-queue study is fully captured
// by the instruction class, its source/destination registers and its
// latency, which is what this package models.
package isa

import "fmt"

// Domain identifies which side of the split issue logic an instruction is
// dispatched to. Loads, stores and branches execute on the integer side
// (address computation and condition evaluation use integer ALUs), matching
// the Alpha pipeline modeled by the paper, even when a load's destination is
// a floating-point register.
type Domain uint8

const (
	// IntDomain instructions dispatch to the integer issue queues.
	IntDomain Domain = iota
	// FPDomain instructions dispatch to the floating-point issue queues.
	FPDomain

	// NumDomains is the number of dispatch domains.
	NumDomains
)

// String returns "int" or "fp".
func (d Domain) String() string {
	switch d {
	case IntDomain:
		return "int"
	case FPDomain:
		return "fp"
	}
	return fmt.Sprintf("Domain(%d)", uint8(d))
}

// Class is the operation class of an instruction. It determines the
// functional unit kind, the execution latency and the dispatch domain.
type Class uint8

const (
	// IntALU is a single-cycle integer ALU operation.
	IntALU Class = iota
	// IntMult is a 3-cycle integer multiply.
	IntMult
	// IntDiv is a 20-cycle integer divide.
	IntDiv
	// FPAdd is a 2-cycle floating-point ALU operation (add/sub/cmp/cvt).
	FPAdd
	// FPMult is a 4-cycle floating-point multiply.
	FPMult
	// FPDiv is a 12-cycle floating-point divide.
	FPDiv
	// Load reads memory: one cycle of address computation on an integer
	// ALU followed by a data-cache access.
	Load
	// Store computes its address in one cycle; the memory write happens
	// at commit and is off the critical path.
	Store
	// Branch is a single-cycle control instruction evaluated on an
	// integer ALU.
	Branch

	// NumClasses is the number of instruction classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"IntALU", "IntMult", "IntDiv", "FPAdd", "FPMult", "FPDiv",
	"Load", "Store", "Branch",
}

// String returns the class mnemonic.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Domain returns the dispatch domain of the class.
func (c Class) Domain() Domain {
	switch c {
	case FPAdd, FPMult, FPDiv:
		return FPDomain
	default:
		return IntDomain
	}
}

// IsMem reports whether the class accesses memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// FUKind is a functional-unit type. Table 1 provisions four kinds; loads,
// stores and branches use integer ALUs for address computation and
// condition evaluation.
type FUKind uint8

const (
	// IntALUUnit executes IntALU, Load/Store address computation and
	// Branch.
	IntALUUnit FUKind = iota
	// IntMulUnit executes IntMult and IntDiv.
	IntMulUnit
	// FPAddUnit executes FPAdd.
	FPAddUnit
	// FPMulUnit executes FPMult and FPDiv.
	FPMulUnit

	// NumFUKinds is the number of functional-unit kinds.
	NumFUKinds
)

var fuNames = [NumFUKinds]string{"IntALU", "IntMul", "FPAdd", "FPMul"}

// String returns the functional-unit mnemonic.
func (k FUKind) String() string {
	if k < NumFUKinds {
		return fuNames[k]
	}
	return fmt.Sprintf("FUKind(%d)", uint8(k))
}

// FU returns the functional-unit kind that executes the class.
func (c Class) FU() FUKind {
	switch c {
	case IntMult, IntDiv:
		return IntMulUnit
	case FPAdd:
		return FPAddUnit
	case FPMult, FPDiv:
		return FPMulUnit
	default:
		return IntALUUnit
	}
}

// Latencies holds the execution latency, in cycles, of each class. For
// loads the value is the address-computation latency only; the data-cache
// access time is added by the memory system at execution time.
type Latencies [NumClasses]int

// DefaultLatencies returns the Table 1 latencies: 1-cycle integer ALU,
// 3-cycle integer multiply, 20-cycle integer divide, 2-cycle FP ALU,
// 4-cycle FP multiply, 12-cycle FP divide, 1-cycle address computation for
// loads and stores and 1-cycle branches.
func DefaultLatencies() Latencies {
	return Latencies{
		IntALU:  1,
		IntMult: 3,
		IntDiv:  20,
		FPAdd:   2,
		FPMult:  4,
		FPDiv:   12,
		Load:    1, // address computation; cache latency added at execute
		Store:   1, // address computation; write happens at commit
		Branch:  1,
	}
}

// AddressLatency is the number of cycles needed to compute a load or store
// address, used by the LatFIFO issue-time estimator exactly as in the paper.
const AddressLatency = 1

// Register file geometry of the Table 1 configuration.
const (
	// NumLogicalRegs is the number of architectural registers per domain
	// (Alpha has 32 integer and 32 floating-point registers).
	NumLogicalRegs = 32
	// NumPhysicalRegs is the number of physical registers per domain.
	NumPhysicalRegs = 160
)

// NoReg marks an absent register operand.
const NoReg int16 = -1
