// Package bpred implements the branch prediction hardware of the Table 1
// configuration: a hybrid predictor combining a 2K-entry gshare and a
// 2K-entry bimodal predictor through a 1K-entry selector, plus a 2048-entry
// 4-way set-associative branch target buffer.
//
// The simulator is trace-driven: the predictor is consulted at fetch with
// the branch PC and then trained with the architectural outcome carried by
// the trace. A misprediction stalls fetch until the branch resolves.
package bpred

// counter2 is a 2-bit saturating counter. Values 0-1 predict not taken,
// 2-3 predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predictor is the interface implemented by all direction predictors.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the architectural outcome.
	Update(pc uint64, taken bool)
}

// Bimodal is a table of 2-bit counters indexed by low PC bits.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal returns a bimodal predictor with the given number of entries,
// which must be a power of two. Counters initialize to weakly taken (2),
// the SimpleScalar convention.
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: entries must be a positive power of two")
	}
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Gshare XORs a global history register with the PC to index a table of
// 2-bit counters.
type Gshare struct {
	table   []counter2
	mask    uint64
	history uint64
	histLen uint
}

// NewGshare returns a gshare predictor with the given number of entries
// (a power of two); the history length is log2(entries).
func NewGshare(entries int) *Gshare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: entries must be a positive power of two")
	}
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 2
	}
	bits := uint(0)
	for 1<<bits < entries {
		bits++
	}
	return &Gshare{table: t, mask: uint64(entries - 1), histLen: bits}
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. It updates the indexed counter with the
// pre-update history (as the hardware would, since prediction and update
// use the same index) and then shifts the outcome into the history.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Hybrid combines two component predictors through a selector table of
// 2-bit counters: high counter values choose the first component (gshare),
// low values the second (bimodal), as in the Alpha 21264 chooser.
type Hybrid struct {
	gshare   *Gshare
	bimodal  *Bimodal
	selector []counter2
	mask     uint64

	// Mispredicts and Lookups count predictor performance for reports.
	Mispredicts, Lookups uint64
}

// NewHybrid returns the Table 1 predictor: gshareEntries-entry gshare,
// bimodalEntries-entry bimodal and selectorEntries-entry chooser.
func NewHybrid(gshareEntries, bimodalEntries, selectorEntries int) *Hybrid {
	if selectorEntries <= 0 || selectorEntries&(selectorEntries-1) != 0 {
		panic("bpred: entries must be a positive power of two")
	}
	sel := make([]counter2, selectorEntries)
	for i := range sel {
		sel[i] = 2
	}
	return &Hybrid{
		gshare:   NewGshare(gshareEntries),
		bimodal:  NewBimodal(bimodalEntries),
		selector: sel,
		mask:     uint64(selectorEntries - 1),
	}
}

// NewDefaultHybrid returns the paper's 2K gshare + 2K bimodal + 1K selector.
func NewDefaultHybrid() *Hybrid { return NewHybrid(2048, 2048, 1024) }

func (h *Hybrid) selIndex(pc uint64) uint64 { return (pc >> 2) & h.mask }

// Predict implements Predictor.
func (h *Hybrid) Predict(pc uint64) bool {
	if h.selector[h.selIndex(pc)].taken() {
		return h.gshare.Predict(pc)
	}
	return h.bimodal.Predict(pc)
}

// Update trains both components and steers the selector toward whichever
// component was correct (no change when both agree).
func (h *Hybrid) Update(pc uint64, taken bool) {
	g := h.gshare.Predict(pc)
	b := h.bimodal.Predict(pc)
	i := h.selIndex(pc)
	if g != b {
		h.selector[i] = h.selector[i].update(g == taken)
	}
	h.gshare.Update(pc, taken)
	h.bimodal.Update(pc, taken)
}

// PredictAndTrain performs a combined lookup and update, returning whether
// the prediction matched the outcome, and maintains accuracy counters.
// This is the entry point used by the fetch stage.
func (h *Hybrid) PredictAndTrain(pc uint64, taken bool) (correct bool) {
	pred := h.Predict(pc)
	h.Update(pc, taken)
	h.Lookups++
	if pred != taken {
		h.Mispredicts++
		return false
	}
	return true
}

// Accuracy returns the fraction of correct predictions so far (1.0 when no
// lookups have happened).
func (h *Hybrid) Accuracy() float64 {
	if h.Lookups == 0 {
		return 1.0
	}
	return 1.0 - float64(h.Mispredicts)/float64(h.Lookups)
}
