package bpred

import (
	"testing"

	"distiq/internal/rng"
)

func TestCounterSaturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Fatalf("counter under-saturated to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Fatalf("counter over-saturated to %d", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(64)
	pc := uint64(0x1000)
	for i := 0; i < 8; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Fatal("bimodal failed to learn always-taken")
	}
	for i := 0; i < 8; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatal("bimodal failed to learn always-not-taken")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating T/NT is invisible to bimodal but trivial for gshare.
	g := NewGshare(2048)
	pc := uint64(0x2000)
	taken := false
	correct := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	// After warmup it should be near-perfect.
	if correct < n*9/10 {
		t.Fatalf("gshare only got %d/%d on alternating pattern", correct, n)
	}
}

func TestHybridBeatsWorstComponent(t *testing.T) {
	// Branch A alternates (good for gshare), branch B is heavily biased
	// (good for bimodal). The hybrid should do well on both.
	h := NewDefaultHybrid()
	r := rng.New(5)
	takenA := false
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		if h.PredictAndTrain(0x4000, takenA) {
			correct++
		}
		takenA = !takenA
		outB := r.Float64() < 0.95
		if h.PredictAndTrain(0x8000, outB) {
			correct++
		}
		total += 2
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Fatalf("hybrid accuracy %.3f, want > 0.85", acc)
	}
	if got := h.Accuracy(); got < 0.85 {
		t.Fatalf("Accuracy() = %.3f disagrees", got)
	}
}

func TestHybridAccuracyNoLookups(t *testing.T) {
	if acc := NewDefaultHybrid().Accuracy(); acc != 1.0 {
		t.Fatalf("accuracy with no lookups = %v, want 1.0", acc)
	}
}

func TestHybridRandomBranchNearChance(t *testing.T) {
	h := NewDefaultHybrid()
	r := rng.New(17)
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if h.PredictAndTrain(0xc000, r.Bool(0.5)) {
			correct++
		}
	}
	acc := float64(correct) / n
	if acc < 0.40 || acc > 0.60 {
		t.Fatalf("accuracy on random outcomes = %.3f, want ~0.5", acc)
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	for _, f := range []func(){
		func() { NewBimodal(0) },
		func() { NewBimodal(100) },
		func() { NewGshare(-2) },
		func() { NewHybrid(2048, 2048, 1000) },
		func() { NewBTB(0, 4) },
		func() { NewBTB(2048, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestBTBHitAfterInsert(t *testing.T) {
	b := NewDefaultBTB()
	b.Insert(0x1000, 0x2000)
	tgt, hit := b.Lookup(0x1000)
	if !hit || tgt != 0x2000 {
		t.Fatalf("Lookup = (%#x, %v), want (0x2000, true)", tgt, hit)
	}
	if _, hit := b.Lookup(0x3000); hit {
		t.Fatal("lookup of never-inserted PC hit")
	}
	if b.Hits != 1 || b.Misses != 1 {
		t.Fatalf("counters = %d hits %d misses, want 1/1", b.Hits, b.Misses)
	}
}

func TestBTBUpdateExisting(t *testing.T) {
	b := NewDefaultBTB()
	b.Insert(0x1000, 0x2000)
	b.Insert(0x1000, 0x9000)
	tgt, hit := b.Lookup(0x1000)
	if !hit || tgt != 0x9000 {
		t.Fatalf("Lookup after update = (%#x, %v)", tgt, hit)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	// 4 ways per set: insert 5 conflicting branches; the first (LRU)
	// must be evicted, the other four retained.
	b := NewBTB(16, 4) // 4 sets
	setStride := uint64(4 * 4)
	pcs := make([]uint64, 5)
	for i := range pcs {
		pcs[i] = 0x1000 + uint64(i)*setStride // same set index
		b.Insert(pcs[i], uint64(0x100+i))
	}
	if _, hit := b.Lookup(pcs[0]); hit {
		t.Fatal("LRU entry was not evicted")
	}
	for i := 1; i < 5; i++ {
		if _, hit := b.Lookup(pcs[i]); !hit {
			t.Fatalf("entry %d wrongly evicted", i)
		}
	}
}

func TestBTBLRUTouchOnLookup(t *testing.T) {
	b := NewBTB(16, 4)
	setStride := uint64(4 * 4)
	pcs := make([]uint64, 5)
	for i := range pcs {
		pcs[i] = 0x1000 + uint64(i)*setStride
	}
	for i := 0; i < 4; i++ {
		b.Insert(pcs[i], 1)
	}
	b.Lookup(pcs[0]) // make pc0 MRU; pc1 becomes LRU
	b.Insert(pcs[4], 1)
	if _, hit := b.Lookup(pcs[0]); !hit {
		t.Fatal("recently touched entry evicted")
	}
	if _, hit := b.Lookup(pcs[1]); hit {
		t.Fatal("expected pc1 to be the LRU victim")
	}
}

func BenchmarkHybridPredictAndTrain(b *testing.B) {
	h := NewDefaultHybrid()
	r := rng.New(1)
	pcs := make([]uint64, 64)
	outs := make([]bool, 64)
	for i := range pcs {
		pcs[i] = uint64(0x1000 + i*4)
		outs[i] = r.Bool(0.7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PredictAndTrain(pcs[i%64], outs[i%64])
	}
}
