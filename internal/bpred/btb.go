package bpred

// BTB is a set-associative branch target buffer with true-LRU replacement.
// Table 1 specifies 2048 entries, 4-way. A BTB miss on a taken branch is a
// misfetch: the target is unknown at fetch, so the front end redirects
// after decode, modeled as a misprediction by the fetch stage.
type BTB struct {
	sets   int
	assoc  int
	tags   []uint64 // sets*assoc, 0 = invalid (PCs are never 0)
	targs  []uint64
	lru    []uint8 // per-way LRU rank within the set, 0 = MRU
	Hits   uint64
	Misses uint64
}

// NewBTB returns a BTB with the given total entries and associativity;
// entries must be divisible by assoc and entries/assoc a power of two.
func NewBTB(entries, assoc int) *BTB {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic("bpred: bad BTB geometry")
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		panic("bpred: BTB set count must be a power of two")
	}
	b := &BTB{
		sets:  sets,
		assoc: assoc,
		tags:  make([]uint64, entries),
		targs: make([]uint64, entries),
		lru:   make([]uint8, entries),
	}
	for i := range b.lru {
		b.lru[i] = uint8(i % assoc)
	}
	return b
}

// NewDefaultBTB returns the paper's 2048-entry 4-way BTB.
func NewDefaultBTB() *BTB { return NewBTB(2048, 4) }

func (b *BTB) set(pc uint64) int { return int((pc >> 2) & uint64(b.sets-1)) }

// Lookup returns the stored target for pc and whether it was present.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	base := b.set(pc) * b.assoc
	for w := 0; w < b.assoc; w++ {
		if b.tags[base+w] == pc {
			b.touch(base, w)
			b.Hits++
			return b.targs[base+w], true
		}
	}
	b.Misses++
	return 0, false
}

// Insert records the target for pc, evicting the LRU way on conflict.
func (b *BTB) Insert(pc, target uint64) {
	base := b.set(pc) * b.assoc
	victim := 0
	for w := 0; w < b.assoc; w++ {
		if b.tags[base+w] == pc {
			b.targs[base+w] = target
			b.touch(base, w)
			return
		}
		if b.lru[base+w] > b.lru[base+victim] {
			victim = w
		}
	}
	b.tags[base+victim] = pc
	b.targs[base+victim] = target
	b.touch(base, victim)
}

// touch marks way w as most recently used within its set.
func (b *BTB) touch(base, w int) {
	old := b.lru[base+w]
	for i := 0; i < b.assoc; i++ {
		if b.lru[base+i] < old {
			b.lru[base+i]++
		}
	}
	b.lru[base+w] = 0
}
