// Package cliutil validates command-line inputs shared by the iq*
// commands and the distiqd service, so every front end rejects bad
// engine knobs with the same clear error instead of a panic or a silent
// zero-value run.
//
// The package also carries the shared error taxonomy: BadInput marks an
// error as caused by the caller's input (bad flags, malformed or invalid
// specs) rather than by the system, and every front end agrees on how to
// surface that distinction — CLIs exit with status 2 (via ExitCode), the
// HTTP service answers 400 instead of 500. Interruption is part of the
// same taxonomy: an error chain carrying context.Canceled (a Ctrl-C
// propagated through a context-aware sweep) exits 130, the shell
// convention for SIGINT.
package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"distiq/internal/engine"
)

// badInput wraps an error to mark it as caused by invalid user input.
type badInput struct{ err error }

func (b badInput) Error() string { return b.err.Error() }
func (b badInput) Unwrap() error { return b.err }

// BadInput marks err as caused by invalid user input; nil stays nil.
func BadInput(err error) error {
	if err == nil {
		return nil
	}
	return badInput{err}
}

// IsBadInput reports whether any error in the chain is marked BadInput.
func IsBadInput(err error) bool {
	var b badInput
	return errors.As(err, &b)
}

// ExitInterrupted is the conventional exit status of a process stopped
// by SIGINT (128 + signal 2).
const ExitInterrupted = 130

// ExitCode maps an error to the conventional process exit status: 0 for
// nil, 130 for cancellation (Ctrl-C through a context-aware run), 2 for
// user-input errors, 1 for everything else.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled):
		return ExitInterrupted
	case IsBadInput(err):
		return 2
	}
	return 1
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM — the
// base context of every context-aware CLI, so Ctrl-C stops scheduling new
// simulations while in-flight ones finish and persist. Default signal
// behaviour is restored as soon as the first signal lands (not only when
// the CancelFunc runs), so a second Ctrl-C kills the process outright
// instead of being swallowed while the graceful wind-down drains.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, stop)
	return ctx, stop
}

// ValidateParallel rejects negative worker-pool bounds. Zero is valid
// (it selects GOMAXPROCS).
func ValidateParallel(n int) error {
	if n < 0 {
		return BadInput(fmt.Errorf("-parallel %d: must be >= 0 (0 = GOMAXPROCS, 1 = serial)", n))
	}
	return nil
}

// ValidateMaxQueued rejects non-positive admission-queue bounds: a
// service that can never admit a sweep is a misconfiguration, not a
// policy.
func ValidateMaxQueued(n int) error {
	if n <= 0 {
		return BadInput(fmt.Errorf("-max-queued %d: must be >= 1", n))
	}
	return nil
}

// ValidateCacheDir rejects cache directories that could never be
// created: the directory itself may not exist yet (the store creates it
// lazily), but its parent must already be a directory. Empty means "no
// persistent store" and is valid.
func ValidateCacheDir(dir string) error {
	if dir == "" {
		return nil
	}
	if fi, err := os.Stat(dir); err == nil {
		if !fi.IsDir() {
			return BadInput(fmt.Errorf("-cache-dir %s: exists and is not a directory", dir))
		}
		return nil
	}
	parent := filepath.Dir(filepath.Clean(dir))
	fi, err := os.Stat(parent)
	if err != nil {
		return BadInput(fmt.Errorf("-cache-dir %s: parent directory %s does not exist", dir, parent))
	}
	if !fi.IsDir() {
		return BadInput(fmt.Errorf("-cache-dir %s: parent %s is not a directory", dir, parent))
	}
	return nil
}

// ValidateEngineFlags bundles the engine knob checks every command
// shares.
func ValidateEngineFlags(parallel int, cacheDir string) error {
	if err := ValidateParallel(parallel); err != nil {
		return err
	}
	return ValidateCacheDir(cacheDir)
}

// ResolveStoreFlags folds the -store and -cache-dir flags into one
// effective store spec: -cache-dir DIR is the legacy alias for the
// filesystem backend (fs:DIR), so passing both flags is ambiguous and
// rejected. The spec's syntax is validated (engine.ParseStoreSpec) and
// every fs: directory it names runs through the same parent-directory
// checks -cache-dir always had. An empty result means "no persistent
// store".
func ResolveStoreFlags(storeSpec, cacheDir string) (string, error) {
	if storeSpec != "" && cacheDir != "" {
		return "", BadInput(fmt.Errorf("-store and -cache-dir are mutually exclusive (-cache-dir %s is shorthand for -store fs:%s)", cacheDir, cacheDir))
	}
	if storeSpec == "" {
		if cacheDir == "" {
			return "", nil
		}
		if err := ValidateCacheDir(cacheDir); err != nil {
			return "", err
		}
		return "fs:" + cacheDir, nil
	}
	dirs, err := engine.ParseStoreSpec(storeSpec)
	if err != nil {
		return "", BadInput(err)
	}
	for _, dir := range dirs {
		if err := ValidateCacheDir(dir); err != nil {
			return "", err
		}
	}
	return storeSpec, nil
}
