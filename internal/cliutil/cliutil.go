// Package cliutil validates command-line inputs shared by the iq*
// commands, so every binary rejects bad engine knobs with the same clear
// error instead of a panic or a silent zero-value run.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// ValidateParallel rejects negative worker-pool bounds. Zero is valid
// (it selects GOMAXPROCS).
func ValidateParallel(n int) error {
	if n < 0 {
		return fmt.Errorf("-parallel %d: must be >= 0 (0 = GOMAXPROCS, 1 = serial)", n)
	}
	return nil
}

// ValidateCacheDir rejects cache directories that could never be
// created: the directory itself may not exist yet (the store creates it
// lazily), but its parent must already be a directory. Empty means "no
// persistent store" and is valid.
func ValidateCacheDir(dir string) error {
	if dir == "" {
		return nil
	}
	if fi, err := os.Stat(dir); err == nil {
		if !fi.IsDir() {
			return fmt.Errorf("-cache-dir %s: exists and is not a directory", dir)
		}
		return nil
	}
	parent := filepath.Dir(filepath.Clean(dir))
	fi, err := os.Stat(parent)
	if err != nil {
		return fmt.Errorf("-cache-dir %s: parent directory %s does not exist", dir, parent)
	}
	if !fi.IsDir() {
		return fmt.Errorf("-cache-dir %s: parent %s is not a directory", dir, parent)
	}
	return nil
}

// ValidateEngineFlags bundles the engine knob checks every command
// shares.
func ValidateEngineFlags(parallel int, cacheDir string) error {
	if err := ValidateParallel(parallel); err != nil {
		return err
	}
	return ValidateCacheDir(cacheDir)
}
