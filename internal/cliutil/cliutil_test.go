package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestValidateParallel(t *testing.T) {
	for _, n := range []int{0, 1, 64} {
		if err := ValidateParallel(n); err != nil {
			t.Errorf("parallel %d rejected: %v", n, err)
		}
	}
	if err := ValidateParallel(-1); err == nil {
		t.Error("parallel -1 accepted")
	}
}

func TestValidateCacheDir(t *testing.T) {
	if err := ValidateCacheDir(""); err != nil {
		t.Errorf("empty cache dir rejected: %v", err)
	}
	dir := t.TempDir()
	if err := ValidateCacheDir(dir); err != nil {
		t.Errorf("existing dir rejected: %v", err)
	}
	if err := ValidateCacheDir(filepath.Join(dir, "new-cache")); err != nil {
		t.Errorf("creatable dir rejected: %v", err)
	}
	if err := ValidateCacheDir(filepath.Join(dir, "missing", "cache")); err == nil {
		t.Error("cache dir under missing parent accepted")
	}
	file := filepath.Join(dir, "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateCacheDir(file); err == nil {
		t.Error("cache dir pointing at a file accepted")
	}
	if err := ValidateCacheDir(filepath.Join(file, "cache")); err == nil {
		t.Error("cache dir under a file accepted")
	}
}

func TestValidateEngineFlags(t *testing.T) {
	if err := ValidateEngineFlags(0, ""); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	if err := ValidateEngineFlags(-2, ""); err == nil {
		t.Error("negative parallel accepted")
	}
	if err := ValidateEngineFlags(0, "/no/such/parent/cache"); err == nil {
		t.Error("bad cache dir accepted")
	}
}
