package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestValidateParallel(t *testing.T) {
	for _, n := range []int{0, 1, 64} {
		if err := ValidateParallel(n); err != nil {
			t.Errorf("parallel %d rejected: %v", n, err)
		}
	}
	if err := ValidateParallel(-1); err == nil {
		t.Error("parallel -1 accepted")
	}
}

func TestValidateCacheDir(t *testing.T) {
	if err := ValidateCacheDir(""); err != nil {
		t.Errorf("empty cache dir rejected: %v", err)
	}
	dir := t.TempDir()
	if err := ValidateCacheDir(dir); err != nil {
		t.Errorf("existing dir rejected: %v", err)
	}
	if err := ValidateCacheDir(filepath.Join(dir, "new-cache")); err != nil {
		t.Errorf("creatable dir rejected: %v", err)
	}
	if err := ValidateCacheDir(filepath.Join(dir, "missing", "cache")); err == nil {
		t.Error("cache dir under missing parent accepted")
	}
	file := filepath.Join(dir, "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateCacheDir(file); err == nil {
		t.Error("cache dir pointing at a file accepted")
	}
	if err := ValidateCacheDir(filepath.Join(file, "cache")); err == nil {
		t.Error("cache dir under a file accepted")
	}
}

func TestValidateEngineFlags(t *testing.T) {
	if err := ValidateEngineFlags(0, ""); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	if err := ValidateEngineFlags(-2, ""); err == nil {
		t.Error("negative parallel accepted")
	}
	if err := ValidateEngineFlags(0, "/no/such/parent/cache"); err == nil {
		t.Error("bad cache dir accepted")
	}
}

func TestBadInputTaxonomy(t *testing.T) {
	if BadInput(nil) != nil {
		t.Error("BadInput(nil) != nil")
	}
	plain := errors.New("disk on fire")
	if IsBadInput(plain) {
		t.Error("plain error classified as bad input")
	}
	marked := BadInput(plain)
	if !IsBadInput(marked) {
		t.Error("marked error not classified")
	}
	if marked.Error() != plain.Error() {
		t.Errorf("marking changed the message: %q", marked.Error())
	}
	if !errors.Is(marked, plain) {
		t.Error("marking broke errors.Is")
	}
	// The mark survives further wrapping, as CLI mains and HTTP handlers
	// wrap errors with context before classifying.
	wrapped := fmt.Errorf("iqsweep: %w", marked)
	if !IsBadInput(wrapped) {
		t.Error("wrapping lost the classification")
	}

	if got := ExitCode(nil); got != 0 {
		t.Errorf("ExitCode(nil) = %d", got)
	}
	if got := ExitCode(plain); got != 1 {
		t.Errorf("ExitCode(system error) = %d", got)
	}
	if got := ExitCode(wrapped); got != 2 {
		t.Errorf("ExitCode(bad input) = %d", got)
	}
}

func TestValidatorsAreBadInput(t *testing.T) {
	for name, err := range map[string]error{
		"parallel":   ValidateParallel(-1),
		"cache-dir":  ValidateCacheDir("/no/such/parent/cache"),
		"max-queued": ValidateMaxQueued(0),
	} {
		if err == nil {
			t.Errorf("%s: invalid value accepted", name)
			continue
		}
		if !IsBadInput(err) {
			t.Errorf("%s: validator error not classified as bad input: %v", name, err)
		}
	}
}

func TestValidateMaxQueued(t *testing.T) {
	for _, n := range []int{1, 64, 1 << 20} {
		if err := ValidateMaxQueued(n); err != nil {
			t.Errorf("max-queued %d rejected: %v", n, err)
		}
	}
	for _, n := range []int{0, -1} {
		if err := ValidateMaxQueued(n); err == nil {
			t.Errorf("max-queued %d accepted", n)
		}
	}
}

func TestExitCodeTaxonomy(t *testing.T) {
	wrapped := fmt.Errorf("client: sweep point 3 (swim under MB_distr): %w", context.Canceled)
	for _, tc := range []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"system", errors.New("boom"), 1},
		{"bad input", BadInput(errors.New("bad spec")), 2},
		{"canceled", context.Canceled, ExitInterrupted},
		{"wrapped canceled", wrapped, ExitInterrupted},
		{"canceled beats bad-input marking", BadInput(wrapped), ExitInterrupted},
	} {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestSignalContextCancels(t *testing.T) {
	ctx, stop := SignalContext()
	if ctx.Err() != nil {
		t.Fatalf("fresh signal context already cancelled: %v", ctx.Err())
	}
	stop()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("stopped signal context err = %v", ctx.Err())
	}
}

func TestResolveStoreFlags(t *testing.T) {
	dir := t.TempDir()

	t.Run("neither", func(t *testing.T) {
		spec, err := ResolveStoreFlags("", "")
		if err != nil || spec != "" {
			t.Fatalf("ResolveStoreFlags(\"\", \"\") = %q, %v", spec, err)
		}
	})
	t.Run("cache-dir alias", func(t *testing.T) {
		spec, err := ResolveStoreFlags("", dir)
		if err != nil || spec != "fs:"+dir {
			t.Fatalf("alias = %q, %v; want fs:%s", spec, err, dir)
		}
	})
	t.Run("mutually exclusive", func(t *testing.T) {
		_, err := ResolveStoreFlags("mem", dir)
		if err == nil || !IsBadInput(err) {
			t.Fatalf("both flags accepted (err=%v)", err)
		}
	})
	t.Run("valid specs pass through", func(t *testing.T) {
		for _, spec := range []string{
			"mem",
			"fs:" + dir,
			"http://cache.internal:9000/distiq",
			"https://cache.internal/bucket",
			"tier:mem,fs:" + dir,
			"batch:fs:" + dir,
			"batch:tier:mem,fs:" + dir + ",http://cache.internal/",
		} {
			got, err := ResolveStoreFlags(spec, "")
			if err != nil || got != spec {
				t.Errorf("spec %q = %q, %v", spec, got, err)
			}
		}
	})
	t.Run("bad syntax is bad input", func(t *testing.T) {
		for _, spec := range []string{
			"s3://bucket",        // unknown scheme
			"fs:",                // missing directory
			"batch:",             // nothing to wrap
			"tier:mem,tier:mem",  // tiers do not nest
			"tier:mem,batch:mem", // batch only outermost
			"http://",            // no host
		} {
			_, err := ResolveStoreFlags(spec, "")
			if err == nil {
				t.Errorf("spec %q accepted", spec)
				continue
			}
			if !IsBadInput(err) {
				t.Errorf("spec %q error not bad input: %v", spec, err)
			}
		}
	})
	t.Run("fs dirs validated like cache-dir", func(t *testing.T) {
		bad := "tier:mem,fs:/no/such/parent/cache"
		_, err := ResolveStoreFlags(bad, "")
		if err == nil || !IsBadInput(err) {
			t.Fatalf("uncreatable fs dir inside a tier accepted (err=%v)", err)
		}
		_, err = ResolveStoreFlags("", "/no/such/parent/cache")
		if err == nil || !IsBadInput(err) {
			t.Fatalf("uncreatable -cache-dir accepted (err=%v)", err)
		}
	})
}
