// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by the synthetic workload generators.
//
// The simulator's experiments must be bit-reproducible across runs, Go
// versions and platforms, so we implement SplitMix64 (Steele, Lea, Flood,
// OOPSLA 2014) ourselves instead of depending on math/rand, whose default
// source and shuffling behaviour have changed between Go releases.
package rng

// Source is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator to the given seed.
func (s *Source) Seed(seed uint64) { s.state = seed }

// Clone returns an independent copy of the generator: the clone and the
// original produce identical streams from the current position onward.
func (s *Source) Clone() *Source {
	c := *s
	return &c
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p, i.e. the number of failures before the first success.
// Values are capped at max to keep tails bounded; p must be in (0, 1].
func (s *Source) Geometric(p float64, max int) int {
	if p >= 1 {
		return 0
	}
	n := 0
	for n < max && s.Float64() >= p {
		n++
	}
	return n
}

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. It panics if weights is empty or sums to a
// non-positive value.
func (s *Source) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: Pick needs positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
