package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after reseed, value %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	if err := quick.Check(func(seed uint64) bool {
		s.Seed(seed)
		v := s.Float64()
		return v >= 0 && v < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestGeometricBounds(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		v := s.Geometric(0.5, 8)
		if v < 0 || v > 8 {
			t.Fatalf("Geometric out of bounds: %d", v)
		}
	}
	if v := s.Geometric(1.0, 8); v != 0 {
		t.Fatalf("Geometric(1.0) = %d, want 0", v)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(19)
	sum := 0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Geometric(0.5, 64)
	}
	mean := float64(sum) / n
	// Mean of geometric(0.5) counting failures is (1-p)/p = 1.
	if mean < 0.95 || mean > 1.05 {
		t.Fatalf("Geometric(0.5) mean = %v, want ~1", mean)
	}
}

func TestPickWeights(t *testing.T) {
	s := New(23)
	counts := make([]int, 3)
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Pick([]float64{1, 2, 3})]++
	}
	// Expect roughly 1/6, 2/6, 3/6.
	want := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < want[i]-0.02 || frac > want[i]+0.02 {
			t.Fatalf("Pick weight %d frequency = %v, want ~%v", i, frac, want[i])
		}
	}
}

func TestPickZeroWeightNeverChosen(t *testing.T) {
	s := New(29)
	for i := 0; i < 10000; i++ {
		if s.Pick([]float64{0, 1, 0}) != 1 {
			t.Fatal("Pick chose a zero-weight index")
		}
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick(nil) did not panic")
		}
	}()
	New(1).Pick(nil)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}
