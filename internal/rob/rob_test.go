package rob

import (
	"testing"
	"testing/quick"

	"distiq/internal/isa"
)

func TestFIFOOrder(t *testing.T) {
	r := New(8)
	for i := 0; i < 8; i++ {
		in := &isa.Inst{Seq: uint64(i)}
		if !r.Alloc(in) {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if !r.Full() {
		t.Fatal("not full after cap allocs")
	}
	if r.Alloc(&isa.Inst{}) {
		t.Fatal("alloc succeeded on full ROB")
	}
	for i := 0; i < 8; i++ {
		in := r.Pop()
		if in == nil || in.Seq != uint64(i) {
			t.Fatalf("pop %d returned %+v", i, in)
		}
	}
	if r.Pop() != nil {
		t.Fatal("pop on empty returned non-nil")
	}
}

func TestHeadPeeks(t *testing.T) {
	r := New(4)
	if r.Head() != nil {
		t.Fatal("head of empty not nil")
	}
	in := &isa.Inst{Seq: 42}
	r.Alloc(in)
	if r.Head() != in {
		t.Fatal("head mismatch")
	}
	if r.Len() != 1 {
		t.Fatal("head popped the entry")
	}
}

func TestAgeOrderingAcrossWrap(t *testing.T) {
	// Push/pop more than 2*cap entries so the age counter wraps, and
	// verify modular ordering stays correct for co-resident entries.
	r := New(16)
	var prev *isa.Inst
	for i := 0; i < 200; i++ {
		in := &isa.Inst{Seq: uint64(i)}
		if !r.Alloc(in) {
			t.Fatal("alloc failed")
		}
		if prev != nil {
			if !r.Older(prev.AgeID, in.AgeID) {
				t.Fatalf("step %d: prev not older (ages %d, %d)", i, prev.AgeID, in.AgeID)
			}
			if r.Older(in.AgeID, prev.AgeID) {
				t.Fatalf("step %d: ordering not antisymmetric", i)
			}
		}
		if r.Older(in.AgeID, in.AgeID) {
			t.Fatal("Older not irreflexive")
		}
		prev = in
		if r.Len() > 8 {
			r.Pop()
		}
	}
}

func TestAgeOrderingFullWindow(t *testing.T) {
	// With a full window, the head must be older than every other entry.
	r := New(8)
	var ins []*isa.Inst
	// Advance the allocation counter to just before the wrap point.
	for i := 0; i < 13; i++ {
		in := &isa.Inst{}
		r.Alloc(in)
		r.Pop()
	}
	for i := 0; i < 8; i++ {
		in := &isa.Inst{Seq: uint64(i)}
		r.Alloc(in)
		ins = append(ins, in)
	}
	for i := 1; i < len(ins); i++ {
		if !r.Older(ins[0].AgeID, ins[i].AgeID) {
			t.Fatalf("head not older than entry %d (ages %d vs %d)",
				i, ins[0].AgeID, ins[i].AgeID)
		}
	}
}

func TestPanicsOnBadCap(t *testing.T) {
	for _, c := range []int{0, -1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestPropertyLenMatchesAllocsMinusPops(t *testing.T) {
	r := New(32)
	allocs, pops := 0, 0
	if err := quick.Check(func(doAlloc bool) bool {
		if doAlloc {
			if r.Alloc(&isa.Inst{}) {
				allocs++
			}
		} else {
			if r.Pop() != nil {
				pops++
			}
		}
		return r.Len() == allocs-pops
	}, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}
