// Package rob implements the reorder buffer and the wrap-extended age
// identifiers used by the paper's selection logic.
//
// The paper encodes instruction age as the reorder-buffer position with one
// extra wrap bit concatenated on the left, reset each time the first ROB
// position is allocated; concatenating this identifier to the right of the
// compressed latency code lets a plain minimum-select circuit pick the
// oldest instruction of the highest-priority class. We reproduce the same
// encoding: AgeID = allocation counter modulo 2*capacity, compared
// modularly (valid because at most `capacity` instructions are in flight).
package rob

import "distiq/internal/isa"

// ROB is a circular reorder buffer of instructions.
type ROB struct {
	entries []*isa.Inst
	head    int
	count   int
	alloc   uint32 // running allocation counter (mod 2*cap gives AgeID)
	ageMask uint32
	ageHalf uint32
}

// New returns a reorder buffer with the given capacity (a power of two).
func New(capacity int) *ROB {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		panic("rob: capacity must be a positive power of two")
	}
	return &ROB{
		entries: make([]*isa.Inst, capacity),
		ageMask: uint32(2*capacity - 1),
		ageHalf: uint32(capacity),
	}
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return len(r.entries) }

// Len returns the number of instructions in flight.
func (r *ROB) Len() int { return r.count }

// Full reports whether no entry is free.
func (r *ROB) Full() bool { return r.count == len(r.entries) }

// Empty reports whether the buffer is empty.
func (r *ROB) Empty() bool { return r.count == 0 }

// Alloc appends in at the tail, filling in.ROBIdx and in.AgeID, and
// reports success (false when full).
func (r *ROB) Alloc(in *isa.Inst) bool {
	if r.Full() {
		return false
	}
	idx := (r.head + r.count) % len(r.entries)
	r.entries[idx] = in
	in.ROBIdx = idx
	in.AgeID = r.alloc & r.ageMask
	r.alloc++
	r.count++
	return true
}

// Head returns the oldest instruction, or nil when empty.
func (r *ROB) Head() *isa.Inst {
	if r.count == 0 {
		return nil
	}
	return r.entries[r.head]
}

// Pop removes and returns the oldest instruction; nil when empty.
func (r *ROB) Pop() *isa.Inst {
	if r.count == 0 {
		return nil
	}
	in := r.entries[r.head]
	r.entries[r.head] = nil
	r.head = (r.head + 1) % len(r.entries)
	r.count--
	return in
}

// Older reports whether age identifier a is strictly older than b under
// the modular wrap-bit encoding. Valid while both instructions are in
// flight simultaneously (their allocation distance is below capacity).
func (r *ROB) Older(a, b uint32) bool {
	if a == b {
		return false
	}
	return (b-a)&r.ageMask < r.ageHalf
}
