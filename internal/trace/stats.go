package trace

import (
	"fmt"
	"strings"

	"distiq/internal/isa"
)

// Stats summarizes a generated instruction stream. It is used by the
// iqtrace tool and by tests validating that models have the DDG and mix
// properties the paper's study depends on.
type Stats struct {
	Total      uint64
	ByClass    [isa.NumClasses]uint64
	Branches   uint64
	Taken      uint64
	MemOps     uint64
	FPDestRegs uint64

	// WindowChainWidth is the average number of distinct FP-domain
	// dependence chains alive in a sliding window of WindowSize
	// instructions — the paper's "DDG width" proxy. A chain here is
	// approximated by the destination logical FP register of the
	// window's producers.
	WindowChainWidth float64
	WindowSize       int
}

// CollectStats runs the generator for n instructions and summarizes them.
func CollectStats(g *Generator, n int) Stats {
	const window = 256 // matches the ROB size of Table 1
	st := Stats{WindowSize: window}
	var in isa.Inst

	// Ring buffer of FP destination registers in the current window.
	ring := make([]int16, window)
	for i := range ring {
		ring[i] = -1
	}
	live := make(map[int16]int) // fp reg -> count in window
	widthSum := 0.0

	for i := 0; i < n; i++ {
		g.Next(&in)
		st.Total++
		st.ByClass[in.Class]++
		if in.Class == isa.Branch {
			st.Branches++
			if in.Taken {
				st.Taken++
			}
		}
		if in.Class.IsMem() {
			st.MemOps++
		}
		if in.HasDest() && in.DestFP {
			st.FPDestRegs++
		}

		// Maintain the sliding chain-width window.
		slot := i % window
		if old := ring[slot]; old >= 0 {
			live[old]--
			if live[old] == 0 {
				delete(live, old)
			}
		}
		if in.HasDest() && in.DestFP {
			ring[slot] = in.Dest
			live[in.Dest]++
		} else {
			ring[slot] = -1
		}
		widthSum += float64(len(live))
	}
	if n > 0 {
		st.WindowChainWidth = widthSum / float64(n)
	}
	return st
}

// Frac returns the fraction of instructions in class c.
func (s Stats) Frac(c isa.Class) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.ByClass[c]) / float64(s.Total)
}

// BranchFrac returns the dynamic branch fraction.
func (s Stats) BranchFrac() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Branches) / float64(s.Total)
}

// TakenRate returns the fraction of branches that were taken.
func (s Stats) TakenRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Branches)
}

// FPFrac returns the fraction of FP-domain compute instructions.
func (s Stats) FPFrac() float64 {
	if s.Total == 0 {
		return 0
	}
	fp := s.ByClass[isa.FPAdd] + s.ByClass[isa.FPMult] + s.ByClass[isa.FPDiv]
	return float64(fp) / float64(s.Total)
}

// String renders a one-benchmark report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instructions: %d\n", s.Total)
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		fmt.Fprintf(&b, "  %-8s %6.2f%%\n", c, 100*s.Frac(c))
	}
	fmt.Fprintf(&b, "  branches taken: %.1f%%\n", 100*s.TakenRate())
	fmt.Fprintf(&b, "  FP chain width (window %d): %.1f\n", s.WindowSize, s.WindowChainWidth)
	return b.String()
}
