package trace

import (
	"fmt"
	"sync"
	"sync/atomic"

	"distiq/internal/isa"
)

// The dynamic instruction stream of a model is a pure function of the
// model (the pipeline fetches in architectural order — mispredictions
// stall fetch, they never fetch down a wrong path), so every job that
// simulates the same benchmark consumes the same stream, whatever its
// machine configuration. A Cache materializes each stream once, on
// demand, as a compact immutable prefix that concurrent jobs replay
// instead of re-running the generator, and evicts whole streams
// least-recently-used when the total recorded instruction count exceeds
// its capacity.
//
// Replay is bit-exact: a Reader produces isa.Inst values identical to a
// fresh Generator's, field for field (TestReaderMatchesGenerator), so
// simulation results — and therefore figure bytes and distiq-v2 job
// fingerprints — are unchanged by caching.

// record is the compact encoding of one dynamic instruction: just the
// architectural fields the generator produces (the dynamic sequence number
// is the record's index). 32 bytes versus ~180 for a full isa.Inst.
type record struct {
	pc, addr, target uint64
	src1, src2, dest int16
	class            isa.Class
	flags            uint8
}

const (
	recSrc1FP = 1 << iota
	recSrc2FP
	recDestFP
	recTaken
)

// encode captures the architectural fields of a freshly generated inst.
func encode(in *isa.Inst) record {
	var f uint8
	if in.Src1FP {
		f |= recSrc1FP
	}
	if in.Src2FP {
		f |= recSrc2FP
	}
	if in.DestFP {
		f |= recDestFP
	}
	if in.Taken {
		f |= recTaken
	}
	return record{
		pc: in.PC, addr: in.Addr, target: in.Target,
		src1: in.Src1, src2: in.Src2, dest: in.Dest,
		class: in.Class, flags: f,
	}
}

// decode fills in with the record's architectural fields (seq is the
// record's stream position) and resets the microarchitectural fields,
// exactly as Generator.Next does.
func (r *record) decode(seq uint64, in *isa.Inst) {
	in.Seq = seq
	in.PC = r.pc
	in.Class = r.class
	in.Src1, in.Src1FP = r.src1, r.flags&recSrc1FP != 0
	in.Src2, in.Src2FP = r.src2, r.flags&recSrc2FP != 0
	in.Dest, in.DestFP = r.dest, r.flags&recDestFP != 0
	in.Addr = r.addr
	in.Taken = r.flags&recTaken != 0
	in.Target = r.target
	in.ResetMicro()
}

// growChunk is how many instructions a stream records per extension; it
// amortizes the stream lock to one acquisition per chunk.
const growChunk = 8192

// Stream is one model's materialized dynamic instruction stream: an
// immutable, lazily grown prefix of records plus the generator positioned
// at its end. Any number of Readers may replay it concurrently; the first
// reader to run off the recorded end extends it (bounded by the recording
// cap), and readers past the cap fork a private generator clone.
type Stream struct {
	model Model
	cap   int

	// recs holds the committed prefix. Extensions append under mu and
	// publish atomically; readers load a snapshot and never touch the
	// slice beyond its length, so replay is lock-free.
	recs atomic.Pointer[[]record]

	mu  sync.Mutex
	gen *Generator // positioned after the committed prefix

	forks atomic.Int64 // readers that outran the cap
}

// newStream builds an empty stream for m with the given recording cap.
func newStream(m Model, cap int) *Stream {
	s := &Stream{model: m, cap: cap, gen: NewGenerator(m)}
	empty := []record{}
	s.recs.Store(&empty)
	return s
}

// Model returns the benchmark model the stream records.
func (s *Stream) Model() Model { return s.model }

// Len returns the number of instructions recorded so far.
func (s *Stream) Len() int { return len(*s.recs.Load()) }

// Forks returns how many readers have outrun the recording cap and
// switched to a private generator.
func (s *Stream) Forks() int64 { return s.forks.Load() }

// NewReader returns a reader positioned at the start of the stream.
func (s *Stream) NewReader() *StreamReader {
	return &StreamReader{s: s, recs: *s.recs.Load()}
}

// extend makes the record at index pos available: it returns a snapshot
// containing it, or, when the stream's recording cap has been reached, a
// private generator clone positioned at pos for the caller to continue
// on (pos == recorded length in that case, since readers consume
// sequentially from zero).
func (s *Stream) extend(pos int) ([]record, *Generator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := *s.recs.Load()
	if pos < len(recs) {
		return recs, nil // another reader already extended past pos
	}
	if len(recs) >= s.cap {
		s.forks.Add(1)
		return recs, s.gen.Clone()
	}
	n := growChunk
	if rem := s.cap - len(recs); n > rem {
		n = rem
	}
	var in isa.Inst
	for i := 0; i < n; i++ {
		s.gen.Next(&in)
		recs = append(recs, encode(&in))
	}
	s.recs.Store(&recs)
	return recs, nil
}

// EnsureRecorded extends the recorded prefix to at least n instructions
// (clamped to the recording cap) in one pass under one lock acquisition.
// Warmup checkpointing uses it: once a batch has learned how much trace a
// (benchmark, warmup) group's warmup region consumes, later batches of
// the group bulk-materialize that prefix up front instead of re-reading
// it through incremental chunked extensions.
func (s *Stream) EnsureRecorded(n int) {
	if n > s.cap {
		n = s.cap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := *s.recs.Load()
	if len(recs) >= n {
		return
	}
	var in isa.Inst
	for len(recs) < n {
		s.gen.Next(&in)
		recs = append(recs, encode(&in))
	}
	s.recs.Store(&recs)
}

// Reader replays a stream from the beginning. It implements the
// pipeline's Fetcher interface and is not safe for concurrent use (use
// one Reader per pipeline); distinct Readers of one Stream are safe
// concurrently.
type StreamReader struct {
	s    *Stream
	recs []record   // committed snapshot
	pos  int        // next stream index to deliver
	gen  *Generator // non-nil once the reader has outrun the cap
}

// Next fills in with the next dynamic instruction, exactly as the
// model's Generator would.
func (r *StreamReader) Next(in *isa.Inst) {
	if r.gen != nil {
		r.gen.Next(in)
		return
	}
	if r.pos >= len(r.recs) {
		r.recs, r.gen = r.s.extend(r.pos)
		if r.gen != nil {
			r.gen.Next(in)
			return
		}
	}
	r.recs[r.pos].decode(uint64(r.pos), in)
	r.pos++
}

// DefaultCacheCap is the default total recording capacity of a Cache, in
// instructions — about 128 MiB of records at 32 bytes each, enough to
// hold every benchmark of the paper's evaluation at the default
// experiment lengths simultaneously. The bound is soft: it is enforced
// at Stream() lookups, each stream admitted under it may individually
// grow to the full capacity before the next lookup trims the total, and
// evicted streams stay resident while active readers replay them.
const DefaultCacheCap = 4 << 20

// CacheStats is a snapshot of a Cache's behaviour counters. The JSON
// keys are part of cmd/iqbench's stable BENCH_*.json schema.
type CacheStats struct {
	// Hits and Misses count Stream lookups that found, respectively
	// created, a stream.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts streams dropped to respect the capacity.
	Evictions int64 `json:"evictions"`
	// Streams and RecordedInsts describe current residency.
	Streams       int `json:"streams"`
	RecordedInsts int `json:"recorded_insts"`
	// Forks counts readers (across all current streams) that outran the
	// per-stream recording cap and fell back to private generation.
	Forks int64 `json:"forks"`
}

// Cache materializes model streams on demand and bounds their total
// recorded size. All methods are safe for concurrent use. The zero value
// is not usable; use NewCache.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	tick    uint64

	hits, misses, evictions int64
}

type cacheEntry struct {
	s       *Stream
	lastUse uint64
}

// NewCache returns a Cache holding at most maxInsts recorded instructions
// across all streams (a soft bound: streams admitted while under the
// bound may still grow to it). maxInsts <= 0 selects DefaultCacheCap.
// Each stream's own recording cap is the cache capacity; a single run
// longer than that replays the recorded prefix and generates the rest.
func NewCache(maxInsts int) *Cache {
	if maxInsts <= 0 {
		maxInsts = DefaultCacheCap
	}
	return &Cache{cap: maxInsts, entries: make(map[string]*cacheEntry)}
}

// ModelKey is the structural identity of a model: two models with equal
// keys generate identical streams. Names alone would suffice for the
// built-in benchmark registry, but user-constructed models may reuse a
// name with different parameters, so stream caching — and anything else
// that attaches state to "the stream of this model", like the engine's
// warmup checkpoints — keys on the full structure.
func ModelKey(m Model) string {
	return fmt.Sprintf("%s|%d|%d|%v", m.Name, m.Suite, m.Seed, m.Loops)
}

// Stream returns the (possibly shared) stream for m, creating it on first
// use and evicting least-recently-used other streams while the total
// recorded size exceeds the capacity.
func (c *Cache) Stream(m Model) *Stream {
	key := ModelKey(m)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &cacheEntry{s: newStream(m, c.cap)}
		c.entries[key] = e
	}
	e.lastUse = c.tick
	c.evictLocked(key)
	return e.s
}

// Reader returns a new reader over m's shared stream.
func (c *Cache) Reader(m Model) *StreamReader { return c.Stream(m).NewReader() }

// evictLocked drops least-recently-used streams (never keep) until the
// total recorded size fits the capacity. Active readers of an evicted
// stream keep replaying it unharmed; the cache just stops handing it out.
func (c *Cache) evictLocked(keep string) {
	for {
		total := 0
		for _, e := range c.entries {
			total += e.s.Len()
		}
		if total <= c.cap {
			return
		}
		victim := ""
		var oldest uint64
		for k, e := range c.entries {
			if k == keep {
				continue
			}
			if victim == "" || e.lastUse < oldest {
				victim, oldest = k, e.lastUse
			}
		}
		if victim == "" {
			return // only keep remains; its own cap bounds it
		}
		delete(c.entries, victim)
		c.evictions++
	}
}

// Stats returns a snapshot of the cache's counters and residency.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Streams: len(c.entries),
	}
	for _, e := range c.entries {
		st.RecordedInsts += e.s.Len()
		st.Forks += e.s.Forks()
	}
	return st
}
