package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"distiq/internal/isa"
)

// Binary trace files let a workload be captured once and replayed exactly
// — the equivalent of SimpleScalar's EIO traces in the paper's framework.
// A file holds a header (magic, version, source benchmark name) followed
// by one variable-length record per instruction.
//
// Record layout (all varint unless noted):
//
//	class  (1 byte)
//	flags  (1 byte: bit0 src1, bit1 src2, bit2 dest, bit3 src1FP,
//	        bit4 src2FP, bit5 destFP, bit6 taken)
//	src1, src2, dest register indices (1 byte each, present per flags)
//	pc, addr, target (uvarint; addr only for memory ops, target only for
//	        branches)
//
// Sequence numbers are not stored; the reader assigns them in order, so a
// finite file can be replayed cyclically for arbitrarily long simulations.

const (
	traceMagic   = "DIQT"
	traceVersion = 1
)

// Flag bits of a trace record.
const (
	flagSrc1 = 1 << iota
	flagSrc2
	flagDest
	flagSrc1FP
	flagSrc2FP
	flagDestFP
	flagTaken
)

// Writer streams instructions into a trace file.
type Writer struct {
	w     *bufio.Writer
	count uint64
	buf   []byte
}

// NewWriter writes a header for the named benchmark and returns a Writer.
func NewWriter(w io.Writer, benchmark string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return nil, err
	}
	if len(benchmark) > 255 {
		return nil, fmt.Errorf("trace: benchmark name too long")
	}
	if err := bw.WriteByte(byte(len(benchmark))); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(benchmark); err != nil {
		return nil, err
	}
	return &Writer{w: bw, buf: make([]byte, binary.MaxVarintLen64)}, nil
}

func (t *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(t.buf, v)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Write appends one instruction record.
func (t *Writer) Write(in *isa.Inst) error {
	if err := t.w.WriteByte(byte(in.Class)); err != nil {
		return err
	}
	var flags byte
	if in.Src1 != isa.NoReg {
		flags |= flagSrc1
	}
	if in.Src2 != isa.NoReg {
		flags |= flagSrc2
	}
	if in.Dest != isa.NoReg {
		flags |= flagDest
	}
	if in.Src1FP {
		flags |= flagSrc1FP
	}
	if in.Src2FP {
		flags |= flagSrc2FP
	}
	if in.DestFP {
		flags |= flagDestFP
	}
	if in.Taken {
		flags |= flagTaken
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	for _, r := range []int16{in.Src1, in.Src2, in.Dest} {
		if r != isa.NoReg {
			if err := t.w.WriteByte(byte(r)); err != nil {
				return err
			}
		}
	}
	if err := t.uvarint(in.PC); err != nil {
		return err
	}
	if in.Class.IsMem() {
		if err := t.uvarint(in.Addr); err != nil {
			return err
		}
	}
	if in.Class == isa.Branch {
		if err := t.uvarint(in.Target); err != nil {
			return err
		}
	}
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush writes any buffered data to the underlying writer.
func (t *Writer) Flush() error { return t.w.Flush() }

// Capture generates n instructions from a model and writes them to w.
func Capture(w io.Writer, m Model, n int) error {
	tw, err := NewWriter(w, m.Name)
	if err != nil {
		return err
	}
	g := NewGenerator(m)
	var in isa.Inst
	for i := 0; i < n; i++ {
		g.Next(&in)
		if err := tw.Write(&in); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Reader replays a trace file. It implements the pipeline's Fetcher: when
// the file is exhausted it seeks back to the first record and continues,
// assigning monotonically increasing sequence numbers, so finite captures
// drive arbitrarily long simulations.
type Reader struct {
	src       io.ReadSeeker
	r         *bufio.Reader
	benchmark string
	dataStart int64
	seq       uint64
	records   uint64
	// Wraps counts how many times the reader cycled back to the start.
	Wraps uint64
}

// NewReader validates the header and positions the reader at the first
// record.
func NewReader(src io.ReadSeeker) (*Reader, error) {
	r := bufio.NewReader(src)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	return &Reader{
		src:       src,
		r:         r,
		benchmark: string(name),
		dataStart: int64(4 + 1 + 1 + int(nameLen)),
	}, nil
}

// Benchmark returns the benchmark name recorded in the header.
func (t *Reader) Benchmark() string { return t.benchmark }

// Records returns how many records have been read (across wraps).
func (t *Reader) Records() uint64 { return t.records }

// Next implements the pipeline Fetcher interface. It panics on a corrupt
// file (a trace-driven simulator cannot proceed meaningfully); use
// ReadInst for error-returning access.
func (t *Reader) Next(in *isa.Inst) {
	if err := t.ReadInst(in); err != nil {
		panic(fmt.Sprintf("trace: replay failed: %v", err))
	}
}

// ReadInst reads the next record, wrapping at end of file.
func (t *Reader) ReadInst(in *isa.Inst) error {
	classB, err := t.r.ReadByte()
	if errors.Is(err, io.EOF) {
		if t.records == 0 {
			return fmt.Errorf("trace: empty trace")
		}
		if _, err := t.src.Seek(t.dataStart, io.SeekStart); err != nil {
			return err
		}
		t.r.Reset(t.src)
		t.Wraps++
		classB, err = t.r.ReadByte()
		if err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	if isa.Class(classB) >= isa.NumClasses {
		return fmt.Errorf("trace: bad class %d", classB)
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}

	in.Seq = t.seq
	t.seq++
	in.Class = isa.Class(classB)
	in.Src1, in.Src2, in.Dest = isa.NoReg, isa.NoReg, isa.NoReg
	in.Src1FP = flags&flagSrc1FP != 0
	in.Src2FP = flags&flagSrc2FP != 0
	in.DestFP = flags&flagDestFP != 0
	in.Taken = flags&flagTaken != 0
	in.Addr, in.Target = 0, 0

	if flags&flagSrc1 != 0 {
		if in.Src1, err = t.reg(); err != nil {
			return err
		}
	}
	if flags&flagSrc2 != 0 {
		if in.Src2, err = t.reg(); err != nil {
			return err
		}
	}
	if flags&flagDest != 0 {
		if in.Dest, err = t.reg(); err != nil {
			return err
		}
	}
	if in.PC, err = binary.ReadUvarint(t.r); err != nil {
		return unexpectedEOF(err)
	}
	if in.Class.IsMem() {
		if in.Addr, err = binary.ReadUvarint(t.r); err != nil {
			return unexpectedEOF(err)
		}
	}
	if in.Class == isa.Branch {
		if in.Target, err = binary.ReadUvarint(t.r); err != nil {
			return unexpectedEOF(err)
		}
	}
	in.ResetMicro()
	t.records++
	return nil
}

func (t *Reader) reg() (int16, error) {
	b, err := t.r.ReadByte()
	if err != nil {
		return 0, unexpectedEOF(err)
	}
	if int(b) >= isa.NumLogicalRegs {
		return 0, fmt.Errorf("trace: bad register %d", b)
	}
	return int16(b), nil
}

func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return err
}
