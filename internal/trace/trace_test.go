package trace

import (
	"testing"

	"distiq/internal/isa"
)

func TestAllModelsValidate(t *testing.T) {
	for _, name := range AllBenchmarks() {
		m := MustByName(name)
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSuiteCounts(t *testing.T) {
	if n := len(Benchmarks(SuiteInt)); n != 12 {
		t.Errorf("SPECINT count = %d, want 12", n)
	}
	if n := len(Benchmarks(SuiteFP)); n != 14 {
		t.Errorf("SPECFP count = %d, want 14", n)
	}
	if n := len(AllBenchmarks()); n != 26 {
		t.Errorf("total count = %d, want 26", n)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName on unknown benchmark did not error")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{Name: "", Loops: []LoopSpec{{IntChains: 1, IntChainLen: 1, TripCount: 1}}},
		{Name: "x"},
		{Name: "x", Loops: []LoopSpec{{}}},
		{Name: "x", Loops: []LoopSpec{{IntChains: 1, TripCount: 1}}},
		{Name: "x", Loops: []LoopSpec{{IntChains: 1, IntChainLen: 1, TripCount: 0}}},
		{Name: "x", Loops: []LoopSpec{{IntChains: 40, IntChainLen: 1, TripCount: 1}}},
		{Name: "x", Loops: []LoopSpec{{IntChains: 1, IntChainLen: 1, TripCount: 1, LoadHead: 0.5}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d validated", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	m := MustByName("swim")
	a, b := NewGenerator(m), NewGenerator(m)
	var ia, ib isa.Inst
	for i := 0; i < 20000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("streams diverged at %d:\n%+v\n%+v", i, ia, ib)
		}
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	g := NewGenerator(MustByName("gzip"))
	var in isa.Inst
	for i := 0; i < 5000; i++ {
		g.Next(&in)
		if in.Seq != uint64(i) {
			t.Fatalf("seq = %d at instruction %d", in.Seq, i)
		}
	}
}

func TestOperandsWellFormed(t *testing.T) {
	for _, name := range AllBenchmarks() {
		g := NewGenerator(MustByName(name))
		var in isa.Inst
		for i := 0; i < 20000; i++ {
			g.Next(&in)
			for _, r := range []int16{in.Src1, in.Src2, in.Dest} {
				if r != isa.NoReg && (r < 0 || r >= isa.NumLogicalRegs) {
					t.Fatalf("%s: register %d out of range in %+v", name, r, in)
				}
			}
			switch in.Class {
			case isa.Load:
				if in.Dest == isa.NoReg || in.Addr == 0 {
					t.Fatalf("%s: malformed load %+v", name, in)
				}
			case isa.Store:
				if in.Dest != isa.NoReg || in.Addr == 0 || in.Src2 == isa.NoReg {
					t.Fatalf("%s: malformed store %+v", name, in)
				}
			case isa.Branch:
				if in.Dest != isa.NoReg {
					t.Fatalf("%s: branch writes a register %+v", name, in)
				}
				if in.Taken && in.Target == 0 {
					t.Fatalf("%s: taken branch without target %+v", name, in)
				}
			case isa.FPAdd, isa.FPMult, isa.FPDiv:
				if in.Dest == isa.NoReg || !in.DestFP {
					t.Fatalf("%s: FP op without FP dest %+v", name, in)
				}
			}
		}
	}
}

func TestBranchTargetsInProgram(t *testing.T) {
	g := NewGenerator(MustByName("gcc"))
	limit := codeBase + uint64(g.StaticSize())*4
	var in isa.Inst
	for i := 0; i < 50000; i++ {
		g.Next(&in)
		if in.PC < codeBase || in.PC >= limit {
			t.Fatalf("PC %#x outside program", in.PC)
		}
		if in.Class == isa.Branch && in.Taken {
			if in.Target < codeBase || in.Target >= limit {
				t.Fatalf("target %#x outside program", in.Target)
			}
		}
	}
}

func TestSuiteDDGContrast(t *testing.T) {
	// The paper's core observation: FP codes have much wider dependence
	// graphs than integer codes. Verify the generated traces exhibit it.
	width := func(name string) float64 {
		g := NewGenerator(MustByName(name))
		return CollectStats(g, 60000).WindowChainWidth
	}
	intMean, fpMean := 0.0, 0.0
	for _, n := range Benchmarks(SuiteInt) {
		intMean += width(n)
	}
	intMean /= float64(len(Benchmarks(SuiteInt)))
	for _, n := range Benchmarks(SuiteFP) {
		fpMean += width(n)
	}
	fpMean /= float64(len(Benchmarks(SuiteFP)))
	if fpMean < 3*intMean {
		t.Fatalf("FP chain width %.2f not >> int %.2f", fpMean, intMean)
	}
	if fpMean < 4 {
		t.Fatalf("FP suite mean chain width %.2f too narrow for the study", fpMean)
	}
}

func TestMixesPlausible(t *testing.T) {
	for _, name := range AllBenchmarks() {
		m := MustByName(name)
		st := CollectStats(NewGenerator(m), 50000)
		if st.BranchFrac() > 0.35 {
			t.Errorf("%s: branch fraction %.2f too high", name, st.BranchFrac())
		}
		memFrac := float64(st.MemOps) / float64(st.Total)
		if memFrac < 0.05 || memFrac > 0.7 {
			t.Errorf("%s: memory fraction %.2f implausible", name, memFrac)
		}
		if m.Suite == SuiteFP && st.FPFrac() < 0.25 {
			t.Errorf("%s: FP fraction %.2f too low for SPECFP", name, st.FPFrac())
		}
		if m.Suite == SuiteInt && name != "eon" && st.FPFrac() > 0.1 {
			t.Errorf("%s: FP fraction %.2f too high for SPECINT", name, st.FPFrac())
		}
	}
}

func TestBackEdgeTripCounts(t *testing.T) {
	// A single-loop model with TripCount k must take its back edge k-1
	// times out of every k executions.
	m := Model{Name: "t", Suite: SuiteInt, Seed: 7, Loops: []LoopSpec{{
		IntChains: 2, IntChainLen: 2, TripCount: 10,
	}}}
	g := NewGenerator(m)
	var in isa.Inst
	taken, total := 0, 0
	for i := 0; i < 30000; i++ {
		g.Next(&in)
		if in.Class == isa.Branch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	rate := float64(taken) / float64(total)
	if rate < 0.88 || rate > 0.92 {
		t.Fatalf("back-edge taken rate = %.3f, want ~0.9", rate)
	}
}

func TestStreamingAddressesStride(t *testing.T) {
	m := Model{Name: "t", Suite: SuiteFP, Seed: 9, Loops: []LoopSpec{{
		FPChains: 1, FPChainLen: 2, LoadHead: 1.0, TripCount: 1000,
		WorkingSetKB: 1024, StreamFrac: 1.0, StrideBytes: 16,
	}}}
	g := NewGenerator(m)
	var in isa.Inst
	var prev uint64
	seen := 0
	for i := 0; i < 2000 && seen < 100; i++ {
		g.Next(&in)
		if in.Class != isa.Load {
			continue
		}
		if seen > 0 && in.Addr != prev+16 {
			t.Fatalf("stride broken: %#x -> %#x", prev, in.Addr)
		}
		prev = in.Addr
		seen++
	}
	if seen < 100 {
		t.Fatal("did not observe enough loads")
	}
}

func TestStatsString(t *testing.T) {
	st := CollectStats(NewGenerator(MustByName("swim")), 10000)
	if s := st.String(); len(s) < 50 {
		t.Fatalf("stats report too short: %q", s)
	}
}

func BenchmarkGenerator(b *testing.B) {
	g := NewGenerator(MustByName("swim"))
	var in isa.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&in)
	}
}
