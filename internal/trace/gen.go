package trace

import (
	"distiq/internal/isa"
	"distiq/internal/rng"
)

// codeBase is the address of the first static instruction.
const codeBase = 0x0040_0000

// Generator walks a model's static program and produces the dynamic
// instruction stream. It is deterministic in the model seed: two
// generators built from the same model produce identical streams, so every
// scheme is evaluated on exactly the same trace.
type Generator struct {
	model Model
	prog  *program
	r     *rng.Source

	idx int    // current static instruction index
	seq uint64 // dynamic sequence number

	// Per back-edge-site iteration counters (trip-count bookkeeping).
	iters []int
	// Per memory-site stream positions.
	memCount []uint64
	// Per branch-site dynamic execution counts (drives periodic sites).
	brCount []uint64
	// Per branch-site period (0 = biased-random site). Derived once
	// from the site's entropy/bias at generator construction.
	period     []uint16
	periodHigh []uint16
}

// NewGenerator builds the static program for m and returns a generator
// positioned at its first instruction. It panics if the model is invalid;
// use m.Validate to check first.
func NewGenerator(m Model) *Generator {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	p := buildProgram(m)
	g := &Generator{
		model:      m,
		prog:       p,
		r:          rng.New(m.Seed ^ 0x9e37),
		iters:      make([]int, len(p.brSites)),
		memCount:   make([]uint64, len(p.memSites)),
		brCount:    make([]uint64, len(p.brSites)),
		period:     make([]uint16, len(p.brSites)),
		periodHigh: make([]uint16, len(p.brSites)),
	}
	// A minority of conditional sites follow a long, strongly biased
	// periodic pattern (e.g. the last element of a small inner
	// structure). Because outcomes at other sites are independent, a
	// global-history predictor cannot learn short balanced patterns, so
	// only patterns that are also learnable as a bias are used.
	pr := rng.New(m.Seed ^ 0x51be)
	for i, s := range p.brSites {
		if s.bias >= 1.0 { // back edge: driven by trip counts
			continue
		}
		if pr.Float64() < 0.2*(1-s.entropy) {
			g.period[i] = uint16(6 + pr.Intn(3))
			g.periodHigh[i] = g.period[i] - 1
		}
	}
	return g
}

// Model returns the benchmark model the generator was built from.
func (g *Generator) Model() Model { return g.model }

// Clone returns an independent generator positioned exactly where g is:
// both produce identical streams from the current position onward. The
// immutable static program is shared; only the per-site dynamic state is
// copied. Stream readers fork this way when they run past a stream's
// recording cap.
func (g *Generator) Clone() *Generator {
	c := &Generator{
		model:      g.model,
		prog:       g.prog, // immutable after construction
		r:          g.r.Clone(),
		idx:        g.idx,
		seq:        g.seq,
		iters:      append([]int(nil), g.iters...),
		memCount:   append([]uint64(nil), g.memCount...),
		brCount:    append([]uint64(nil), g.brCount...),
		period:     g.period,     // immutable after construction
		periodHigh: g.periodHigh, // immutable after construction
	}
	return c
}

// StaticSize returns the number of static instructions in the program.
func (g *Generator) StaticSize() int { return len(g.prog.insts) }

// Next fills in the architectural fields of in with the next dynamic
// instruction and resets its microarchitectural fields.
func (g *Generator) Next(in *isa.Inst) {
	si := &g.prog.insts[g.idx]

	in.Seq = g.seq
	g.seq++
	in.PC = codeBase + uint64(g.idx)*4
	in.Class = si.class
	in.Src1, in.Src1FP = si.src1, si.src1FP
	in.Src2, in.Src2FP = si.src2, si.src2FP
	in.Dest, in.DestFP = si.dest, si.destFP
	in.Addr, in.Taken, in.Target = 0, false, 0
	in.ResetMicro()

	next := g.idx + 1

	if si.memSite >= 0 {
		in.Addr = g.address(si.memSite)
	}
	if si.brSite >= 0 {
		taken := g.outcome(si)
		in.Taken = taken
		if taken {
			in.Target = codeBase + uint64(si.takenTarget)*4
			next = si.takenTarget
		} else {
			in.Target = codeBase + uint64(g.idx+1)*4
		}
	}

	if next >= len(g.prog.insts) {
		next = 0
	}
	g.idx = next
}

// address produces the next effective address for a memory site.
func (g *Generator) address(site int) uint64 {
	ms := &g.prog.memSites[site]
	n := g.memCount[site]
	g.memCount[site]++
	if ms.stream {
		return ms.base + (n*ms.stride)&ms.wsMask
	}
	// Non-streaming references: most fall in the site's hot region
	// (real pointer/table code hits L1 for the vast majority of
	// accesses), the rest anywhere in the working set.
	if g.r.Float64() < 0.92 {
		return ms.base + (g.r.Uint64()&ms.hotMask)&^7
	}
	return ms.base + (g.r.Uint64()&ms.wsMask)&^7
}

// outcome decides a branch's architectural direction.
func (g *Generator) outcome(si *staticInst) bool {
	s := &g.prog.brSites[si.brSite]
	n := g.brCount[si.brSite]
	g.brCount[si.brSite]++
	if si.backEdge {
		trip := g.model.Loops[s.loop].TripCount
		g.iters[si.brSite]++
		if g.iters[si.brSite] >= trip {
			g.iters[si.brSite] = 0
			return false // exit the loop
		}
		return true
	}
	if p := g.period[si.brSite]; p > 0 {
		base := n%uint64(p) < uint64(g.periodHigh[si.brSite])
		// Entropy occasionally flips even periodic sites.
		if s.entropy > 0 && g.r.Float64() < s.entropy/2 {
			return !base
		}
		return base
	}
	// The site keeps its strong bias; entropy flips individual outcomes,
	// so the best achievable prediction accuracy at the site is
	// bias*(1-entropy) + (1-bias)*entropy.
	pTaken := s.bias*(1-s.entropy) + (1-s.bias)*s.entropy
	return g.r.Float64() < pTaken
}
