package trace

import (
	"sync"
	"testing"

	"distiq/internal/isa"
)

// instEqual compares every field of two instructions.
func instEqual(a, b *isa.Inst) bool { return *a == *b }

// TestReaderMatchesGenerator pins the tentpole invariant: a StreamReader
// produces isa.Inst values identical, field for field, to a fresh
// Generator's — across chunk boundaries and for both suites.
func TestReaderMatchesGenerator(t *testing.T) {
	for _, name := range []string{"gcc", "swim", "mcf", "galgel"} {
		m := MustByName(name)
		s := newStream(m, DefaultCacheCap)
		r := s.NewReader()
		g := NewGenerator(m)
		var got, want isa.Inst
		n := growChunk*2 + 1234 // force at least two extensions
		for i := 0; i < n; i++ {
			r.Next(&got)
			g.Next(&want)
			if !instEqual(&got, &want) {
				t.Fatalf("%s inst %d: replay %+v != generated %+v", name, i, got, want)
			}
		}
	}
}

// TestStreamConcurrentReaders drives many concurrent readers over one
// stream (run under -race in CI): each must observe the exact generated
// stream while the stream is being extended under their feet.
func TestStreamConcurrentReaders(t *testing.T) {
	m := MustByName("swim")
	s := newStream(m, DefaultCacheCap)
	const readers = 8
	const n = growChunk + 4096 // every reader crosses an extension boundary

	// Reference stream, generated independently.
	ref := make([]isa.Inst, n)
	g := NewGenerator(m)
	for i := range ref {
		g.Next(&ref[i])
	}

	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := s.NewReader()
			var in isa.Inst
			for i := 0; i < n; i++ {
				r.Next(&in)
				if !instEqual(&in, &ref[i]) {
					errs <- "mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
	if s.Len() != n || s.Len() > DefaultCacheCap {
		// The stream records in whole chunks, so it may be slightly
		// ahead of the furthest reader, but never beyond a chunk.
		if s.Len() < n || s.Len() > n+growChunk {
			t.Fatalf("recorded %d insts, want about %d", s.Len(), n)
		}
	}
}

// TestStreamForkPastCap pins the recording-cap behaviour: a reader that
// outruns the cap forks a private generator and keeps producing the exact
// stream, and the stream records nothing beyond its cap.
func TestStreamForkPastCap(t *testing.T) {
	m := MustByName("gcc")
	const cap = 1000
	s := newStream(m, cap)
	r := s.NewReader()
	g := NewGenerator(m)
	var got, want isa.Inst
	for i := 0; i < 3*cap; i++ {
		r.Next(&got)
		g.Next(&want)
		if !instEqual(&got, &want) {
			t.Fatalf("inst %d (cap %d): replay diverged after fork", i, cap)
		}
	}
	if s.Len() != cap {
		t.Fatalf("recorded %d insts, want exactly the cap %d", s.Len(), cap)
	}
	if s.Forks() != 1 {
		t.Fatalf("forks = %d, want 1", s.Forks())
	}
}

// TestCacheEviction pins the limit/eviction behaviour: the cache drops
// least-recently-used streams once the recorded total exceeds its
// capacity, never the stream it is handing out, and counts evictions.
func TestCacheEviction(t *testing.T) {
	// Capacity fits one chunk, so every second materialized stream
	// evicts the least recently used one.
	c := NewCache(growChunk)
	drain := func(name string, n int) *Stream {
		s := c.Stream(MustByName(name))
		r := s.NewReader()
		var in isa.Inst
		for i := 0; i < n; i++ {
			r.Next(&in)
		}
		return s
	}

	s1 := drain("gcc", 10) // materializes one chunk
	if st := c.Stats(); st.Streams != 1 || st.Misses != 1 {
		t.Fatalf("after first stream: %+v", st)
	}
	if again := c.Stream(MustByName("gcc")); again != s1 {
		t.Fatal("second lookup did not share the stream")
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("expected a hit: %+v", st)
	}

	drain("swim", 10) // second chunk: recorded total now exceeds the cap
	// The bound is enforced at lookup time: the next lookup sweeps the
	// over-capacity total and evicts the LRU stream (gcc).
	c.Stream(MustByName("swim"))
	st := c.Stats()
	if st.Streams != 1 || st.Evictions != 1 {
		t.Fatalf("after sweep: %+v", st)
	}
	if s := c.Stream(MustByName("gcc")); s == s1 {
		t.Fatal("evicted stream was handed out again")
	}

	// The evicted stream keeps serving its existing readers.
	r := s1.NewReader()
	g := NewGenerator(MustByName("gcc"))
	var got, want isa.Inst
	for i := 0; i < 10; i++ {
		r.Next(&got)
		g.Next(&want)
		if !instEqual(&got, &want) {
			t.Fatal("evicted stream corrupted")
		}
	}
}

// TestCacheDistinguishesModels: a user-built model reusing a registry
// name with different parameters must not share the registry stream.
func TestCacheDistinguishesModels(t *testing.T) {
	c := NewCache(0)
	m := MustByName("gcc")
	s1 := c.Stream(m)
	m2 := m
	m2.Seed ^= 1
	if s2 := c.Stream(m2); s2 == s1 {
		t.Fatal("models with different seeds shared a stream")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("want 2 misses, got %+v", st)
	}
}

// TestGeneratorClone pins Clone's contract from an arbitrary mid-stream
// position, including the shared immutable program.
func TestGeneratorClone(t *testing.T) {
	g := NewGenerator(MustByName("mcf"))
	var in isa.Inst
	for i := 0; i < 12345; i++ {
		g.Next(&in)
	}
	cl := g.Clone()
	var a, b isa.Inst
	for i := 0; i < 5000; i++ {
		g.Next(&a)
		cl.Next(&b)
		if !instEqual(&a, &b) {
			t.Fatalf("clone diverged at +%d", i)
		}
	}
}
