package trace

import "distiq/internal/isa"

// A Lockstep drives K replay cursors over one model's dynamic stream in a
// single trace pass. Within a Stream's recorded prefix each cursor decodes
// the shared immutable records directly (the prefix is materialized once,
// whoever reads it); past the recording cap — where independent
// StreamReaders would each fork a private generator and regenerate the
// tail K times — the Lockstep forks exactly one generator and buffers its
// output in a sliding window that every cursor consumes, so the tail too
// is generated once. Keeping the cursors close together (the batch kernel
// always steps the furthest-behind machine) bounds the window to a few chunks,
// which also keeps the hot records resident in L1/L2 while K machines
// fan out one instruction each per Next.
//
// Replay through a Lockstep is bit-exact with a fresh Generator and with
// independent StreamReaders: decode is the same, and the shared tail
// generator is the same deterministic clone a lone reader would fork.
//
// A Lockstep and its readers belong to one goroutine (the batch kernel
// interleaves K machines on one worker); only the underlying Stream is
// safe for concurrent use.
type Lockstep struct {
	s       *Stream
	readers []*LockstepReader

	// Past-cap state: one shared fork plus a sliding window of its
	// output. winBase is the absolute stream index of win[0].
	gen     *Generator
	win     []record
	winBase uint64

	generated uint64 // tail instructions generated (exactly once each)
	maxWin    int    // high-water window length, for tests and reports
	sinceTrim int    // appends since the last trim scan
}

// NewLockstep returns a Lockstep over s with k cursors, all positioned at
// the start of the stream.
func NewLockstep(s *Stream, k int) *Lockstep {
	l := &Lockstep{s: s}
	recs := *s.recs.Load()
	l.readers = make([]*LockstepReader, k)
	for i := range l.readers {
		l.readers[i] = &LockstepReader{l: l, recs: recs}
	}
	return l
}

// Reader returns cursor i of the group.
func (l *Lockstep) Reader(i int) *LockstepReader { return l.readers[i] }

// Generated returns how many tail instructions (past the stream's
// recording cap) have been generated. Each is generated exactly once,
// however many cursors consumed it — the single-pass guarantee.
func (l *Lockstep) Generated() uint64 { return l.generated }

// MaxWindow returns the high-water length of the past-cap sliding window.
func (l *Lockstep) MaxWindow() int { return l.maxWin }

// LockstepReader is one cursor of a Lockstep group. It implements the
// pipeline's Fetcher interface. Like a StreamReader it is not safe for
// concurrent use; unlike independent StreamReaders, all cursors of one
// Lockstep share a single goroutine.
type LockstepReader struct {
	l        *Lockstep
	recs     []record // committed-prefix snapshot
	pos      uint64   // next stream index to deliver
	released bool
}

// Next fills in with the next dynamic instruction, exactly as the model's
// Generator would.
func (r *LockstepReader) Next(in *isa.Inst) {
	if r.pos < uint64(len(r.recs)) {
		r.recs[r.pos].decode(r.pos, in)
		r.pos++
		return
	}
	r.l.next(r, in)
}

// Pos returns the cursor's stream position: how many instructions it has
// consumed.
func (r *LockstepReader) Pos() uint64 { return r.pos }

// Release marks the cursor finished. A released cursor no longer holds
// back the sliding window's trim point; the batch kernel releases each
// machine's cursor as the machine completes so an early finisher cannot
// pin the window open for the stragglers.
func (r *LockstepReader) Release() { r.released = true }

// next is the slow path: the cursor ran off its prefix snapshot. Refresh
// or extend the shared stream while under the recording cap; past it,
// fork the single shared tail generator and serve from the window.
func (l *Lockstep) next(r *LockstepReader, in *isa.Inst) {
	if l.gen == nil {
		recs, gen := l.s.extend(int(r.pos))
		if gen == nil {
			// The stream grew (here or on another reader's behalf):
			// resume the lock-free prefix fast path.
			r.recs = recs
			r.recs[r.pos].decode(r.pos, in)
			r.pos++
			return
		}
		// First cursor past the cap: the one fork the whole group shares.
		l.gen = gen
		l.winBase = uint64(len(recs))
	}
	if r.pos < l.winBase {
		// Another cursor forked the tail while this one was still inside
		// the recorded prefix; its snapshot just predates the last extend.
		r.recs = *l.s.recs.Load()
		r.recs[r.pos].decode(r.pos, in)
		r.pos++
		return
	}
	for l.winBase+uint64(len(l.win)) <= r.pos {
		l.gen.Next(in)
		l.win = append(l.win, encode(in))
		l.generated++
	}
	if len(l.win) > l.maxWin {
		l.maxWin = len(l.win)
	}
	l.win[r.pos-l.winBase].decode(r.pos, in)
	r.pos++
	l.sinceTrim++
	if l.sinceTrim >= growChunk {
		l.sinceTrim = 0
		l.trim()
	}
}

// trim drops the window prefix every live cursor has passed, sliding the
// buffer down in place so lockstep consumption holds the window — and the
// group's working set — at a few chunks regardless of stream length.
func (l *Lockstep) trim() {
	min := ^uint64(0)
	for _, r := range l.readers {
		if r.released {
			continue
		}
		if r.pos < min {
			min = r.pos
		}
	}
	if min > l.winBase+uint64(len(l.win)) {
		min = l.winBase + uint64(len(l.win)) // every cursor released
	}
	if min <= l.winBase {
		// Nothing to drop — including the pre-cap case, where a live
		// cursor is still inside the recorded prefix (pos < winBase) and
		// the subtraction below would wrap.
		return
	}
	cut := min - l.winBase
	n := copy(l.win, l.win[cut:])
	l.win = l.win[:n]
	l.winBase += cut
}
