// Package trace synthesizes dynamic instruction streams that stand in for
// the SPEC2000 benchmarks used by the paper (which require the Alpha
// binaries, ref inputs and a SimpleScalar front end).
//
// Each benchmark is modeled as a small set of loop nests. A loop body is
// built from parallel dependence chains: a chain optionally starts at a
// load, continues through a configurable number of dependent ALU
// operations, and optionally ends at a store. Chains from the same
// iteration are interleaved in program order (as a scheduling compiler
// would emit them) and successive iterations are independent unless the
// loop declares loop-carried chains. This construction reproduces the
// property the paper's study hinges on: integer codes have narrow data
// dependence graphs with short-latency operations, while floating-point
// codes have wide DDGs with long-latency operations, so the number of
// simultaneously live chains inside the instruction window differs by an
// order of magnitude between the two suites.
//
// Branch outcomes are generated per static site from a bias/entropy model
// and the loop back edge, so a real hybrid predictor sees realistic
// mispredict rates. Memory addresses come from per-site streams (strided
// array walks or uniform references inside a working set), so real caches
// see realistic miss rates.
package trace

import (
	"fmt"

	"distiq/internal/isa"
	"distiq/internal/rng"
)

// Suite identifies the benchmark suite a model belongs to.
type Suite uint8

const (
	// SuiteInt marks SPECINT2000 stand-ins.
	SuiteInt Suite = iota
	// SuiteFP marks SPECFP2000 stand-ins.
	SuiteFP
)

// String returns "SPECINT" or "SPECFP".
func (s Suite) String() string {
	if s == SuiteInt {
		return "SPECINT"
	}
	return "SPECFP"
}

// LoopSpec describes one loop nest of a benchmark model.
type LoopSpec struct {
	// IntChains and FPChains are the number of parallel dependence
	// chains of each domain created per iteration; FPChainLen and
	// IntChainLen are the number of ALU operations per chain.
	IntChains, FPChains     int
	IntChainLen, FPChainLen int

	// LoadHead is the probability a chain begins with a load feeding
	// its first operation; StoreTail the probability it ends at a store.
	LoadHead, StoreTail float64

	// CrossDep is the probability an operation takes its second operand
	// from a different chain of the same iteration.
	CrossDep float64

	// LoopCarried is the fraction of chains whose first operation reads
	// the previous iteration's result (serializing across iterations,
	// e.g. pointer chasing or reductions).
	LoopCarried float64

	// Operation class mixes within a chain.
	IntMulFrac, IntDivFrac float64 // among integer chain ops
	FPMulFrac, FPDivFrac   float64 // among FP chain ops

	// Interleave is the probability that emission switches to a
	// different chain after each instruction: integer codes are mostly
	// contiguous (short dependence distances), FP codes are aggressively
	// interleaved (modulo scheduling).
	Interleave float64

	// CondBranches is the number of data-dependent conditional branches
	// sprinkled through the body (besides the back edge); each guards a
	// small skippable segment. BranchEntropy in [0,0.5] sets how
	// unpredictable their outcomes are (0 = fully biased and
	// learnable, 0.5 = coin flip).
	CondBranches  int
	BranchEntropy float64

	// TripCount is the number of iterations executed per entry into the
	// loop before control moves to the next loop of the model.
	TripCount int

	// Memory behaviour: each static memory site walks its own array
	// with the given stride (StreamFrac of sites) or references a
	// uniformly random location in a working set of WorkingSetKB
	// (the rest of the sites).
	WorkingSetKB int
	StreamFrac   float64
	StrideBytes  int

	// Copies lays out this many identical copies of the body at
	// distinct addresses, increasing the instruction footprint (large
	// code benchmarks such as gcc).
	Copies int
}

// Model is a complete benchmark description.
type Model struct {
	Name  string
	Suite Suite
	Seed  uint64
	Loops []LoopSpec
}

// Validate checks model parameters for consistency.
func (m Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("trace: model has no name")
	}
	if len(m.Loops) == 0 {
		return fmt.Errorf("trace: model %s has no loops", m.Name)
	}
	for i, l := range m.Loops {
		if l.IntChains < 0 || l.FPChains < 0 || l.IntChains+l.FPChains == 0 {
			return fmt.Errorf("trace: %s loop %d has no chains", m.Name, i)
		}
		if l.IntChains > 0 && l.IntChainLen <= 0 {
			return fmt.Errorf("trace: %s loop %d int chain length", m.Name, i)
		}
		if l.FPChains > 0 && l.FPChainLen <= 0 {
			return fmt.Errorf("trace: %s loop %d fp chain length", m.Name, i)
		}
		if l.FPChains > isa.NumLogicalRegs-2 || l.IntChains > isa.NumLogicalRegs-4 {
			return fmt.Errorf("trace: %s loop %d has more chains than registers", m.Name, i)
		}
		if l.TripCount <= 0 {
			return fmt.Errorf("trace: %s loop %d trip count", m.Name, i)
		}
		if l.WorkingSetKB <= 0 && (l.LoadHead > 0 || l.StoreTail > 0) {
			return fmt.Errorf("trace: %s loop %d has memory ops but no working set", m.Name, i)
		}
	}
	return nil
}

// Reserved integer registers within the 32-register file.
const (
	regInduction = 30 // loop induction variable
	regBase      = 31 // array base / always-ready value
)

// staticInst is one instruction of the synthesized static program.
type staticInst struct {
	class          isa.Class
	src1, src2     int16
	src1FP, src2FP bool
	dest           int16
	destFP         bool

	memSite int // index into generator memory-site state, -1 if none
	brSite  int // index into generator branch-site state, -1 if none

	// takenTarget is the static index control moves to when a branch is
	// taken; backEdge marks the loop-closing branch.
	takenTarget int
	backEdge    bool
}

// brSite is the static description of a branch site.
type brSite struct {
	bias    float64 // probability of "taken" before entropy mixing
	entropy float64
	loop    int // owning loop, for trip-count bookkeeping (back edges)
}

// memSite is the static description of a memory reference site.
type memSite struct {
	stream  bool
	stride  uint64
	base    uint64
	wsMask  uint64 // working-set size mask (power-of-two bytes - 1)
	hotMask uint64 // hot-region mask for non-streaming sites
}

// program is a fully laid out static program.
type program struct {
	insts    []staticInst
	brSites  []brSite
	memSites []memSite
	// loopOf maps a static index to its loop number (for stats).
	loopOf []int
}

// buildProgram lays out all loops (and their copies) contiguously and
// returns the static program. Construction is deterministic in m.Seed.
func buildProgram(m Model) *program {
	r := rng.New(m.Seed ^ 0xabe11a)
	p := &program{}
	for li, loop := range m.Loops {
		copies := loop.Copies
		if copies <= 0 {
			copies = 1
		}
		for c := 0; c < copies; c++ {
			buildLoopBody(p, li, loop, r)
		}
	}
	return p
}

// chainPlan is one dependence chain being scheduled into a loop body.
type chainPlan struct {
	fp      bool
	reg     int16 // architectural register that carries the chain
	length  int   // remaining ALU ops
	started bool  // first op emitted (controls loop-carried vs fresh src)
	carried bool  // loop-carried chain
	head    bool  // starts with a load
	tail    bool  // ends with a store
}

// buildLoopBody appends one copy of the loop body to the program. Bodies
// consist of: induction update, interleaved chain operations (optionally
// guarded by skippable conditional segments) and the back-edge branch.
func buildLoopBody(p *program, loopIdx int, l LoopSpec, r *rng.Source) {
	start := len(p.insts)

	emit := func(si staticInst) int {
		p.insts = append(p.insts, si)
		p.loopOf = append(p.loopOf, loopIdx)
		return len(p.insts) - 1
	}
	newMemSite := func(streamBias float64) int {
		stream := r.Float64() < streamBias
		ws := uint64(l.WorkingSetKB) * 1024
		// Round the working set up to a power of two for cheap masking.
		mask := uint64(1)
		for mask < ws {
			mask <<= 1
		}
		stride := uint64(l.StrideBytes)
		if stride == 0 {
			stride = 8
		}
		// Arrays are spaced 16 MiB apart with a 65-line stagger so
		// concurrently walked streams spread across cache sets instead
		// of colliding in set 0 of every level.
		idx := uint64(len(p.memSites))
		// Non-streaming sites concentrate most references in a small
		// hot region (temporal locality of real pointer/table code).
		// The region is 2 KiB per site so that a loop body's dozen
		// sites together stay within the L1 capacity, as real hot
		// working sets do.
		hot := uint64(2 * 1024)
		if hot > mask {
			hot = mask
		}
		p.memSites = append(p.memSites, memSite{
			stream:  stream,
			stride:  stride,
			base:    0x1000_0000 + idx*(16<<20) + idx*65*64,
			wsMask:  mask - 1,
			hotMask: hot - 1,
		})
		return len(p.memSites) - 1
	}
	newBrSite := func(bias, entropy float64) int {
		p.brSites = append(p.brSites, brSite{bias: bias, entropy: entropy, loop: loopIdx})
		return len(p.brSites) - 1
	}

	// Plan the chains of one iteration.
	var chains []*chainPlan
	for i := 0; i < l.IntChains; i++ {
		chains = append(chains, &chainPlan{
			fp:      false,
			reg:     int16(i % (isa.NumLogicalRegs - 4)),
			length:  jitterLen(l.IntChainLen, r),
			carried: r.Float64() < l.LoopCarried,
			head:    r.Float64() < l.LoadHead,
			tail:    r.Float64() < l.StoreTail,
		})
	}
	for i := 0; i < l.FPChains; i++ {
		chains = append(chains, &chainPlan{
			fp:      true,
			reg:     int16(i % (isa.NumLogicalRegs - 2)),
			length:  jitterLen(l.FPChainLen, r),
			carried: r.Float64() < l.LoopCarried,
			head:    r.Float64() < l.LoadHead,
			tail:    r.Float64() < l.StoreTail,
		})
	}

	// Induction variable update: i = i + 1 (loop carried, integer).
	emit(staticInst{
		class: isa.IntALU,
		src1:  regInduction, dest: regInduction,
		src2: isa.NoReg, memSite: -1, brSite: -1, takenTarget: -1,
	})

	// emitChainStep emits the next instruction of a chain (head load,
	// body operation, or tail store) and reports whether the chain has
	// more to emit.
	emitChainStep := func(ci int) bool {
		ch := chains[ci]
		switch {
		case ch.head:
			// Head load. Loop-carried chains compute the address
			// from the previous iteration's value (pointer
			// chasing); others index off the induction variable.
			addr, addrFP := int16(regInduction), false
			if ch.carried && !ch.fp {
				addr = ch.reg
			}
			emit(staticInst{
				class: isa.Load,
				src1:  addr, src1FP: addrFP, src2: isa.NoReg,
				dest: ch.reg, destFP: ch.fp,
				memSite: newMemSite(l.StreamFrac), brSite: -1, takenTarget: -1,
			})
			ch.head = false
			ch.started = true
		case ch.length > 0:
			ch.length--
			class := chainOpClass(ch.fp, l, r)
			src1 := ch.reg
			started := ch.started
			ch.started = true
			var src2 int16 = isa.NoReg
			var src2FP bool
			if r.Float64() < l.CrossDep && len(chains) > 1 {
				other := chains[(ci+1+r.Intn(len(chains)-1))%len(chains)]
				src2 = other.reg
				src2FP = other.fp
			}
			// A chain that is neither started by a load nor
			// loop-carried begins from the always-ready integer
			// base register (an immediate in real code); a
			// started or loop-carried chain reads its own
			// carrying register.
			src1FP := ch.fp
			if !started && !ch.carried {
				src1 = regBase
				src1FP = false
			}
			emit(staticInst{
				class: class,
				src1:  src1, src1FP: src1FP,
				src2: src2, src2FP: src2FP,
				dest: ch.reg, destFP: ch.fp,
				memSite: -1, brSite: -1, takenTarget: -1,
			})
		case ch.tail:
			// Tail store to an induction-indexed array. (Storing
			// through the chain value itself — a pointer write —
			// would make the store address depend on the whole
			// chain and, under conservative memory disambiguation,
			// serialize every younger load behind it.)
			emit(staticInst{
				class: isa.Store,
				src1:  regInduction, src1FP: false,
				src2: ch.reg, src2FP: ch.fp, // data operand
				dest:    isa.NoReg,
				memSite: newMemSite(l.StreamFrac), brSite: -1, takenTarget: -1,
			})
			ch.tail = false
		}
		return ch.head || ch.length > 0 || ch.tail
	}

	// Emit the chain instructions. Integer codes emit chains mostly
	// contiguously (short dependence distances, as compilers schedule
	// them); FP codes interleave chains (modulo scheduling for latency
	// hiding). The Interleave parameter is the probability of switching
	// to a different unfinished chain after each instruction.
	live := make([]int, len(chains))
	for i := range live {
		live[i] = i
	}
	condLeft := l.CondBranches
	var pendingBranch = -1 // static index of a branch with unresolved target
	cur := 0
	lastReg, lastRegFP := int16(regInduction), false
	for len(live) > 0 {
		if cur >= len(live) {
			cur = 0
		}
		ci := live[cur]
		more := emitChainStep(ci)
		lastReg, lastRegFP = chains[ci].reg, chains[ci].fp
		if !more {
			live = append(live[:cur], live[cur+1:]...)
			// A chain boundary closes any open guarded segment: a
			// conditional branch guards at most one chain (a
			// loop-body "if" of a few instructions, not an
			// arbitrary span).
			if pendingBranch >= 0 {
				p.insts[pendingBranch].takenTarget = len(p.insts)
				pendingBranch = -1
			}
			// It is also where compilers place the conditional
			// branches that consume the finished chain's result.
			if condLeft > 0 && !lastRegFP && r.Float64() < 0.6 {
				condLeft--
				// Real conditional branches are strongly
				// biased; site entropy (the mispredictable
				// fraction) is applied at outcome time, not by
				// flattening the bias. Forward branches skip
				// their guarded chain only in the uncommon
				// case (most sites fall through).
				bias := 0.88 + 0.1*r.Float64()
				if r.Bool(0.65) {
					bias = 1 - bias
				}
				// Half the conditional branches test the chain
				// result (late-resolving, data-dependent); the
				// rest test loop-control values that are ready
				// almost immediately.
				src := lastReg
				if r.Bool(0.5) {
					src = regInduction
				}
				pendingBranch = emit(staticInst{
					class: isa.Branch,
					src1:  src, src2: isa.NoReg,
					dest:    isa.NoReg,
					memSite: -1, brSite: newBrSite(bias, l.BranchEntropy),
					takenTarget: -1, // resolved at the next boundary
				})
			}
			continue
		}
		if r.Float64() < l.Interleave && len(live) > 1 {
			cur = (cur + 1 + r.Intn(len(live)-1)) % len(live)
		}
	}
	if pendingBranch >= 0 {
		p.insts[pendingBranch].takenTarget = len(p.insts)
	}

	// Back edge: taken re-enters this body copy, not-taken falls through
	// to whatever is laid out next (the next loop/copy, or wraps).
	emit(staticInst{
		class: isa.Branch,
		src1:  regInduction, src2: isa.NoReg, dest: isa.NoReg,
		memSite: -1, brSite: newBrSite(1.0, 0),
		takenTarget: start, backEdge: true,
	})
}

// chainOpClass samples the class of one chain operation.
func chainOpClass(fp bool, l LoopSpec, r *rng.Source) isa.Class {
	x := r.Float64()
	if fp {
		switch {
		case x < l.FPDivFrac:
			return isa.FPDiv
		case x < l.FPDivFrac+l.FPMulFrac:
			return isa.FPMult
		default:
			return isa.FPAdd
		}
	}
	switch {
	case x < l.IntDivFrac:
		return isa.IntDiv
	case x < l.IntDivFrac+l.IntMulFrac:
		return isa.IntMult
	default:
		return isa.IntALU
	}
}

// jitterLen perturbs a mean chain length by ±25% deterministically.
func jitterLen(mean int, r *rng.Source) int {
	if mean <= 1 {
		return maxInt(mean, 1)
	}
	delta := mean / 4
	if delta == 0 {
		return mean
	}
	return mean - delta + r.Intn(2*delta+1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
