package trace

import (
	"math/rand"
	"testing"

	"distiq/internal/isa"
)

// TestLockstepMatchesGenerator is the lockstep cursor's bit-exactness
// gate: K cursors consuming one stream at different, randomly interleaved
// rates — crossing the recording cap into the shared-window tail — must
// each produce the exact instruction sequence of a private Generator.
func TestLockstepMatchesGenerator(t *testing.T) {
	model, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	const cap, perReader, k = 10_000, 30_000, 5
	s := newStream(model, cap)
	ls := NewLockstep(s, k)

	refs := make([]*Generator, k)
	taken := make([]int, k)
	for i := range refs {
		refs[i] = NewGenerator(model)
	}
	rng := rand.New(rand.NewSource(42))
	var got, want isa.Inst
	for done := 0; done < k; {
		i := rng.Intn(k)
		if taken[i] >= perReader {
			continue
		}
		n := 1 + rng.Intn(64)
		if rem := perReader - taken[i]; n > rem {
			n = rem
		}
		for j := 0; j < n; j++ {
			ls.Reader(i).Next(&got)
			refs[i].Next(&want)
			if got != want {
				t.Fatalf("reader %d inst %d: got %+v, want %+v", i, taken[i]+j, got, want)
			}
		}
		if taken[i] += n; taken[i] == perReader {
			ls.Reader(i).Release()
			done++
		}
	}

	// The single-pass guarantee: every tail instruction past the cap was
	// generated exactly once for the whole group, not once per cursor.
	if want := uint64(perReader - cap); ls.Generated() != want {
		t.Errorf("generated %d tail insts, want %d (single pass)", ls.Generated(), want)
	}
	if s.Forks() != 1 {
		t.Errorf("stream forked %d generators, want 1 shared fork", s.Forks())
	}
}

// TestLockstepWindowBounded checks that cursors consuming in lockstep
// hold the past-cap sliding window to a few chunks however long the tail
// runs, and that releasing a finished cursor unpins the trim point.
func TestLockstepWindowBounded(t *testing.T) {
	model, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const cap, total, k = 4096, 80_000, 4
	s := newStream(model, cap)
	ls := NewLockstep(s, k)

	var in isa.Inst
	// Round-robin in modest quanta, like the batch kernel: cursor drift
	// stays under one quantum times the fan-out.
	for pos := 0; pos < total; pos += 128 {
		for i := 0; i < k; i++ {
			// Cursor k-1 finishes at half distance and is released.
			if i == k-1 && pos >= total/2 {
				continue
			}
			for j := 0; j < 128; j++ {
				ls.Reader(i).Next(&in)
			}
			if i == k-1 && pos+128 >= total/2 {
				ls.Reader(i).Release()
			}
		}
	}
	if max := ls.MaxWindow(); max > 3*growChunk {
		t.Errorf("window high-water %d records, want <= %d under lockstep stepping", max, 3*growChunk)
	}
}

// TestEnsureRecorded pins the warmup-checkpoint primitive: one call bulk-
// materializes the requested prefix (clamped to the cap) and the records
// are the generator's, bit for bit.
func TestEnsureRecorded(t *testing.T) {
	model, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	s := newStream(model, 5000)
	s.EnsureRecorded(3000)
	if got := s.Len(); got != 3000 {
		t.Fatalf("recorded %d insts, want 3000", got)
	}
	// Clamped to the recording cap, not beyond.
	s.EnsureRecorded(9000)
	if got := s.Len(); got != 5000 {
		t.Fatalf("recorded %d insts, want cap 5000", got)
	}
	// Shorter requests are no-ops.
	s.EnsureRecorded(100)
	if got := s.Len(); got != 5000 {
		t.Fatalf("recorded %d insts after shrink request, want 5000", got)
	}

	ref := NewGenerator(model)
	r := s.NewReader()
	var got, want isa.Inst
	for i := 0; i < 5000; i++ {
		r.Next(&got)
		ref.Next(&want)
		if got != want {
			t.Fatalf("inst %d: got %+v, want %+v", i, got, want)
		}
	}
}
