package trace

import (
	"math/rand"
	"testing"

	"distiq/internal/isa"
)

// TestLockstepMatchesGenerator is the lockstep cursor's bit-exactness
// gate: K cursors consuming one stream at different, randomly interleaved
// rates — crossing the recording cap into the shared-window tail — must
// each produce the exact instruction sequence of a private Generator.
func TestLockstepMatchesGenerator(t *testing.T) {
	model, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	const cap, perReader, k = 10_000, 30_000, 5
	s := newStream(model, cap)
	ls := NewLockstep(s, k)

	refs := make([]*Generator, k)
	taken := make([]int, k)
	for i := range refs {
		refs[i] = NewGenerator(model)
	}
	rng := rand.New(rand.NewSource(42))
	var got, want isa.Inst
	for done := 0; done < k; {
		i := rng.Intn(k)
		if taken[i] >= perReader {
			continue
		}
		n := 1 + rng.Intn(64)
		if rem := perReader - taken[i]; n > rem {
			n = rem
		}
		for j := 0; j < n; j++ {
			ls.Reader(i).Next(&got)
			refs[i].Next(&want)
			if got != want {
				t.Fatalf("reader %d inst %d: got %+v, want %+v", i, taken[i]+j, got, want)
			}
		}
		if taken[i] += n; taken[i] == perReader {
			ls.Reader(i).Release()
			done++
		}
	}

	// The single-pass guarantee: every tail instruction past the cap was
	// generated exactly once for the whole group, not once per cursor.
	if want := uint64(perReader - cap); ls.Generated() != want {
		t.Errorf("generated %d tail insts, want %d (single pass)", ls.Generated(), want)
	}
	if s.Forks() != 1 {
		t.Errorf("stream forked %d generators, want 1 shared fork", s.Forks())
	}
}

// TestLockstepWindowBounded checks that cursors consuming in lockstep
// hold the past-cap sliding window to a few chunks however long the tail
// runs, and that releasing a finished cursor unpins the trim point.
func TestLockstepWindowBounded(t *testing.T) {
	model, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const cap, total, k = 4096, 80_000, 4
	s := newStream(model, cap)
	ls := NewLockstep(s, k)

	var in isa.Inst
	// Round-robin in modest quanta, like the batch kernel: cursor drift
	// stays under one quantum times the fan-out.
	for pos := 0; pos < total; pos += 128 {
		for i := 0; i < k; i++ {
			// Cursor k-1 finishes at half distance and is released.
			if i == k-1 && pos >= total/2 {
				continue
			}
			for j := 0; j < 128; j++ {
				ls.Reader(i).Next(&in)
			}
			if i == k-1 && pos+128 >= total/2 {
				ls.Reader(i).Release()
			}
		}
	}
	if max := ls.MaxWindow(); max > 3*growChunk {
		t.Errorf("window high-water %d records, want <= %d under lockstep stepping", max, 3*growChunk)
	}
}

// TestLockstepTrimWithCursorInPrefix is the regression test for a trim
// underflow: a cursor more than a trim interval past the recording cap
// while a sibling is still inside the recorded prefix (pos < winBase)
// must not panic — the window simply cannot trim until every live
// cursor has entered it. The stalled cursor must then replay the whole
// stream bit-exactly, prefix and window alike.
func TestLockstepTrimWithCursorInPrefix(t *testing.T) {
	model, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	const cap = 2048
	total := cap + 2*growChunk + 17 // at least two trim scans past the cap
	s := newStream(model, cap)
	ls := NewLockstep(s, 2)

	ref := NewGenerator(model)
	var got, want isa.Inst
	for i := 0; i < total; i++ {
		ls.Reader(0).Next(&got)
		ref.Next(&want)
		if got != want {
			t.Fatalf("leading cursor inst %d: got %+v, want %+v", i, got, want)
		}
	}
	ref2 := NewGenerator(model)
	for i := 0; i < total; i++ {
		ls.Reader(1).Next(&got)
		ref2.Next(&want)
		if got != want {
			t.Fatalf("trailing cursor inst %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestLockstepWindowBoundedUnequalRates pins the batch kernel's
// scheduling policy at the trace layer: driving the furthest-behind
// cursor first holds the past-cap window to roughly one turn plus one
// trim interval even when cursors consume at wildly different per-turn
// rates (a 16x IPC spread here) — the bound depends on the turn size,
// not on run length or rate imbalance.
func TestLockstepWindowBoundedUnequalRates(t *testing.T) {
	model, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const cap, total, quantum = 4096, 200_000, 512
	s := newStream(model, cap)
	rates := []int{quantum, quantum / 4, quantum / 16}
	ls := NewLockstep(s, len(rates))
	pos := make([]int, len(rates))

	var in isa.Inst
	for {
		sel := -1
		for i := range pos {
			if pos[i] >= total {
				continue
			}
			if sel < 0 || pos[i] < pos[sel] {
				sel = i
			}
		}
		if sel < 0 {
			break
		}
		n := rates[sel]
		if rem := total - pos[sel]; n > rem {
			n = rem
		}
		for j := 0; j < n; j++ {
			ls.Reader(sel).Next(&in)
		}
		if pos[sel] += n; pos[sel] >= total {
			ls.Reader(sel).Release()
		}
	}
	if max := ls.MaxWindow(); max > 2*growChunk {
		t.Errorf("window high-water %d records under furthest-behind stepping, want <= %d", max, 2*growChunk)
	}
}

// TestEnsureRecorded pins the warmup-checkpoint primitive: one call bulk-
// materializes the requested prefix (clamped to the cap) and the records
// are the generator's, bit for bit.
func TestEnsureRecorded(t *testing.T) {
	model, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	s := newStream(model, 5000)
	s.EnsureRecorded(3000)
	if got := s.Len(); got != 3000 {
		t.Fatalf("recorded %d insts, want 3000", got)
	}
	// Clamped to the recording cap, not beyond.
	s.EnsureRecorded(9000)
	if got := s.Len(); got != 5000 {
		t.Fatalf("recorded %d insts, want cap 5000", got)
	}
	// Shorter requests are no-ops.
	s.EnsureRecorded(100)
	if got := s.Len(); got != 5000 {
		t.Fatalf("recorded %d insts after shrink request, want 5000", got)
	}

	ref := NewGenerator(model)
	r := s.NewReader()
	var got, want isa.Inst
	for i := 0; i < 5000; i++ {
		r.Next(&got)
		ref.Next(&want)
		if got != want {
			t.Fatalf("inst %d: got %+v, want %+v", i, got, want)
		}
	}
}
