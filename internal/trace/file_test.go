package trace

import (
	"bytes"
	"io"
	"testing"

	"distiq/internal/isa"
)

func captureBuf(t *testing.T, bench string, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := Capture(&buf, MustByName(bench), n); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestTraceRoundTrip(t *testing.T) {
	const n = 5000
	buf := captureBuf(t, "equake", n)

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark() != "equake" {
		t.Fatalf("benchmark = %q", r.Benchmark())
	}
	g := NewGenerator(MustByName("equake"))
	var want, got isa.Inst
	for i := 0; i < n; i++ {
		g.Next(&want)
		if err := r.ReadInst(&got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if want != got {
			t.Fatalf("record %d mismatch:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

func TestTraceWrapAround(t *testing.T) {
	const n = 100
	buf := captureBuf(t, "gzip", n)
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	for i := 0; i < 3*n; i++ {
		if err := r.ReadInst(&in); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if in.Seq != uint64(i) {
			t.Fatalf("seq %d at read %d: wraps must renumber", in.Seq, i)
		}
	}
	if r.Wraps != 2 {
		t.Fatalf("wraps = %d, want 2", r.Wraps)
	}
	if r.Records() != 3*n {
		t.Fatalf("records = %d", r.Records())
	}
}

func TestTraceBadInputs(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("BAD!xxxx"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("DI"))); err == nil {
		t.Fatal("short header accepted")
	}
	// Wrong version.
	bad := append([]byte(traceMagic), 99, 0)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Valid header, no records: first read must error (empty trace).
	empty := append([]byte(traceMagic), traceVersion, 1, 'x')
	r, err := NewReader(bytes.NewReader(empty))
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	if err := r.ReadInst(&in); err == nil {
		t.Fatal("empty trace readable")
	}
}

func TestTraceTruncated(t *testing.T) {
	buf := captureBuf(t, "gzip", 50)
	// Chop mid-record: reads must eventually fail with a truncation
	// error, not loop or return garbage silently.
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var in isa.Inst
	var readErr error
	for i := 0; i < 200; i++ {
		if readErr = r.ReadInst(&in); readErr != nil {
			break
		}
	}
	if readErr == nil {
		t.Fatal("truncated trace read without error")
	}
}

func TestTraceCompactness(t *testing.T) {
	// A trace record should average well under 16 bytes.
	const n = 10000
	buf := captureBuf(t, "swim", n)
	perRecord := float64(buf.Len()) / n
	if perRecord > 16 {
		t.Fatalf("%.1f bytes/record, want < 16", perRecord)
	}
}

func TestReaderPanicsOnCorruptViaNext(t *testing.T) {
	buf := captureBuf(t, "gzip", 5)
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Next on corrupt trace did not panic")
		}
	}()
	var in isa.Inst
	for i := 0; i < 100; i++ {
		r.Next(&in)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	in := &isa.Inst{Class: isa.IntALU, Src1: isa.NoReg, Src2: isa.NoReg, Dest: 3, PC: 0x400000}
	for i := 0; i < 7; i++ {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 7 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var _ io.ReadSeeker = bytes.NewReader(buf.Bytes())
}
