package trace

import (
	"fmt"
	"sort"
)

// The 26 benchmark models below are synthetic stand-ins for the SPEC2000
// suite used by the paper (12 SPECINT + 14 SPECFP, ref inputs). Parameters
// encode each program's qualitative, publicly documented behaviour:
//
//   - DDG width and chain length (FP codes: wide graphs, long chains;
//     integer codes: narrow graphs, short chains),
//   - operation mix (multiply/divide-heavy FP codes vs ALU-heavy integer),
//   - branch density and predictability (crafty/vortex predictable,
//     gzip/twolf data-dependent),
//   - memory behaviour (mcf/art/ammp/swim cache-hostile; crafty/sixtrack
//     resident; streaming vs pointer-chasing access),
//   - loop-carried serialization (mcf pointer chasing, ammp neighbour
//     lists).
//
// Absolute IPCs will not match the paper's Alpha binaries; the suite-level
// contrasts that drive the paper's conclusions do.

func intModel(name string, seed uint64, loops ...LoopSpec) Model {
	return Model{Name: name, Suite: SuiteInt, Seed: seed, Loops: loops}
}

func fpModel(name string, seed uint64, loops ...LoopSpec) Model {
	return Model{Name: name, Suite: SuiteFP, Seed: seed, Loops: loops}
}

// models lists every benchmark; order matches the paper's figures.
var models = []Model{
	// ---------------- SPECINT2000 ----------------
	intModel("bzip2", 101,
		LoopSpec{IntChains: 4, IntChainLen: 3, LoadHead: 0.6, StoreTail: 0.35,
			Interleave: 0.25, CrossDep: 0.25, IntMulFrac: 0.03, CondBranches: 3, BranchEntropy: 0.06,
			TripCount: 120, WorkingSetKB: 2048, StreamFrac: 0.55, StrideBytes: 8},
		LoopSpec{IntChains: 3, IntChainLen: 4, LoadHead: 0.5, StoreTail: 0.5,
			Interleave: 0.25, CrossDep: 0.2, CondBranches: 2, BranchEntropy: 0.04,
			TripCount: 80, WorkingSetKB: 1024, StreamFrac: 0.7, StrideBytes: 8}),
	intModel("crafty", 102,
		LoopSpec{IntChains: 5, IntChainLen: 3, LoadHead: 0.55, StoreTail: 0.2,
			Interleave: 0.25, CrossDep: 0.3, IntMulFrac: 0.04, CondBranches: 4, BranchEntropy: 0.04,
			TripCount: 60, WorkingSetKB: 256, StreamFrac: 0.3, StrideBytes: 8},
		LoopSpec{IntChains: 4, IntChainLen: 2, LoadHead: 0.6, StoreTail: 0.25,
			Interleave: 0.25, CrossDep: 0.35, CondBranches: 3, BranchEntropy: 0.05,
			TripCount: 40, WorkingSetKB: 512, StreamFrac: 0.25, StrideBytes: 8}),
	// eon is C++ ray tracing with a significant FP component (the paper
	// calls this out in Figure 7).
	intModel("eon", 103,
		LoopSpec{IntChains: 3, IntChainLen: 3, FPChains: 2, FPChainLen: 3,
			LoadHead: 0.6, StoreTail: 0.3, Interleave: 0.25, CrossDep: 0.25, FPMulFrac: 0.4,
			CondBranches: 3, BranchEntropy: 0.05,
			TripCount: 70, WorkingSetKB: 512, StreamFrac: 0.4, StrideBytes: 8}),
	intModel("gap", 104,
		LoopSpec{IntChains: 4, IntChainLen: 4, LoadHead: 0.6, StoreTail: 0.35,
			Interleave: 0.25, CrossDep: 0.25, IntMulFrac: 0.12, IntDivFrac: 0.005,
			CondBranches: 3, BranchEntropy: 0.05,
			TripCount: 100, WorkingSetKB: 1024, StreamFrac: 0.45, StrideBytes: 8}),
	intModel("gcc", 105,
		LoopSpec{IntChains: 6, IntChainLen: 2, LoadHead: 0.65, StoreTail: 0.35,
			Interleave: 0.25, CrossDep: 0.3, CondBranches: 5, BranchEntropy: 0.05,
			TripCount: 30, WorkingSetKB: 512, StreamFrac: 0.3, StrideBytes: 8,
			Copies: 4},
		LoopSpec{IntChains: 5, IntChainLen: 2, LoadHead: 0.6, StoreTail: 0.4,
			Interleave: 0.25, CrossDep: 0.25, CondBranches: 4, BranchEntropy: 0.06,
			TripCount: 25, WorkingSetKB: 1024, StreamFrac: 0.25, StrideBytes: 8,
			Copies: 3}),
	intModel("gzip", 106,
		LoopSpec{IntChains: 3, IntChainLen: 4, LoadHead: 0.6, StoreTail: 0.4,
			Interleave: 0.25, CrossDep: 0.2, CondBranches: 3, BranchEntropy: 0.04,
			TripCount: 150, WorkingSetKB: 256, StreamFrac: 0.6, StrideBytes: 8}),
	// mcf: pointer chasing over a graph far larger than L2. Several
	// independent arc-traversal chains per iteration provide the real
	// program's memory-level parallelism, while the carried chain keeps
	// it latency-bound.
	intModel("mcf", 107,
		LoopSpec{IntChains: 4, IntChainLen: 3, LoadHead: 0.85, StoreTail: 0.25,
			Interleave: 0.25, CrossDep: 0.15, LoopCarried: 0.25, CondBranches: 2, BranchEntropy: 0.03,
			TripCount: 200, WorkingSetKB: 16384, StreamFrac: 0.05, StrideBytes: 8}),
	intModel("parser", 108,
		LoopSpec{IntChains: 4, IntChainLen: 3, LoadHead: 0.65, StoreTail: 0.3,
			Interleave: 0.25, CrossDep: 0.25, LoopCarried: 0.3, CondBranches: 3, BranchEntropy: 0.03,
			TripCount: 50, WorkingSetKB: 4096, StreamFrac: 0.2, StrideBytes: 8}),
	intModel("perlbmk", 109,
		LoopSpec{IntChains: 5, IntChainLen: 2, LoadHead: 0.6, StoreTail: 0.35,
			Interleave: 0.25, CrossDep: 0.3, CondBranches: 4, BranchEntropy: 0.05,
			TripCount: 35, WorkingSetKB: 512, StreamFrac: 0.3, StrideBytes: 8,
			Copies: 3}),
	intModel("twolf", 110,
		LoopSpec{IntChains: 4, IntChainLen: 3, LoadHead: 0.65, StoreTail: 0.3,
			Interleave: 0.25, CrossDep: 0.25, IntMulFrac: 0.06, CondBranches: 3, BranchEntropy: 0.06,
			TripCount: 60, WorkingSetKB: 2048, StreamFrac: 0.15, StrideBytes: 8}),
	intModel("vortex", 111,
		LoopSpec{IntChains: 5, IntChainLen: 3, LoadHead: 0.6, StoreTail: 0.4,
			Interleave: 0.25, CrossDep: 0.25, CondBranches: 3, BranchEntropy: 0.03,
			TripCount: 45, WorkingSetKB: 4096, StreamFrac: 0.35, StrideBytes: 8,
			Copies: 3}),
	intModel("vpr", 112,
		LoopSpec{IntChains: 4, IntChainLen: 3, LoadHead: 0.6, StoreTail: 0.3,
			Interleave: 0.25, CrossDep: 0.25, IntMulFrac: 0.05, CondBranches: 3, BranchEntropy: 0.06,
			TripCount: 80, WorkingSetKB: 1024, StreamFrac: 0.2, StrideBytes: 8}),

	// ---------------- SPECFP2000 ----------------
	// ammp: molecular dynamics with neighbour-list pointer chasing.
	fpModel("ammp", 201,
		LoopSpec{IntChains: 2, IntChainLen: 2, FPChains: 4, FPChainLen: 5,
			LoadHead: 0.8, StoreTail: 0.4, Interleave: 0.9, CrossDep: 0.25, LoopCarried: 0.3,
			FPMulFrac: 0.35, FPDivFrac: 0.02, CondBranches: 1, BranchEntropy: 0.04,
			TripCount: 150, WorkingSetKB: 16384, StreamFrac: 0.12, StrideBytes: 8}),
	fpModel("applu", 202,
		LoopSpec{IntChains: 1, IntChainLen: 2, FPChains: 6, FPChainLen: 6,
			LoadHead: 0.85, StoreTail: 0.45, Interleave: 0.9, CrossDep: 0.3,
			FPMulFrac: 0.4, FPDivFrac: 0.04, CondBranches: 0, BranchEntropy: 0.02,
			TripCount: 250, WorkingSetKB: 8192, StreamFrac: 0.9, StrideBytes: 8}),
	fpModel("apsi", 203,
		LoopSpec{IntChains: 2, IntChainLen: 2, FPChains: 5, FPChainLen: 5,
			LoadHead: 0.8, StoreTail: 0.4, Interleave: 0.9, CrossDep: 0.25,
			FPMulFrac: 0.35, FPDivFrac: 0.02, CondBranches: 1, BranchEntropy: 0.05,
			TripCount: 180, WorkingSetKB: 4096, StreamFrac: 0.7, StrideBytes: 8}),
	// art: neural-network simulation, notoriously cache-hostile.
	fpModel("art", 204,
		LoopSpec{IntChains: 1, IntChainLen: 2, FPChains: 4, FPChainLen: 5,
			LoadHead: 0.9, StoreTail: 0.35, Interleave: 0.9, CrossDep: 0.2,
			FPMulFrac: 0.45, CondBranches: 1, BranchEntropy: 0.04,
			TripCount: 400, WorkingSetKB: 4096, StreamFrac: 0.85, StrideBytes: 32}),
	fpModel("equake", 205,
		LoopSpec{IntChains: 2, IntChainLen: 2, FPChains: 4, FPChainLen: 5,
			LoadHead: 0.95, StoreTail: 0.4, Interleave: 0.9, CrossDep: 0.3,
			FPMulFrac: 0.4, CondBranches: 1, BranchEntropy: 0.06,
			TripCount: 200, WorkingSetKB: 8192, StreamFrac: 0.55, StrideBytes: 8}),
	fpModel("facerec", 206,
		LoopSpec{IntChains: 2, IntChainLen: 2, FPChains: 5, FPChainLen: 5,
			LoadHead: 0.8, StoreTail: 0.35, Interleave: 0.9, CrossDep: 0.25,
			FPMulFrac: 0.4, CondBranches: 1, BranchEntropy: 0.05,
			TripCount: 220, WorkingSetKB: 2048, StreamFrac: 0.8, StrideBytes: 8}),
	fpModel("fma3d", 207,
		LoopSpec{IntChains: 2, IntChainLen: 3, FPChains: 6, FPChainLen: 5,
			LoadHead: 0.8, StoreTail: 0.45, Interleave: 0.9, CrossDep: 0.3,
			FPMulFrac: 0.35, FPDivFrac: 0.01, CondBranches: 2, BranchEntropy: 0.03,
			TripCount: 160, WorkingSetKB: 8192, StreamFrac: 0.7, StrideBytes: 8}),
	fpModel("galgel", 208,
		LoopSpec{IntChains: 1, IntChainLen: 2, FPChains: 7, FPChainLen: 6,
			LoadHead: 0.75, StoreTail: 0.35, Interleave: 0.9, CrossDep: 0.35,
			FPMulFrac: 0.4, CondBranches: 0, BranchEntropy: 0.02,
			TripCount: 300, WorkingSetKB: 1024, StreamFrac: 0.8, StrideBytes: 8}),
	fpModel("lucas", 209,
		LoopSpec{IntChains: 1, IntChainLen: 2, FPChains: 6, FPChainLen: 7,
			LoadHead: 0.7, StoreTail: 0.3, Interleave: 0.9, CrossDep: 0.3,
			FPMulFrac: 0.45, FPDivFrac: 0.01, CondBranches: 0, BranchEntropy: 0.02,
			TripCount: 350, WorkingSetKB: 8192, StreamFrac: 0.9, StrideBytes: 16}),
	// mesa: software 3D rendering; mixed integer/FP.
	fpModel("mesa", 210,
		LoopSpec{IntChains: 3, IntChainLen: 3, FPChains: 4, FPChainLen: 5,
			LoadHead: 0.7, StoreTail: 0.45, Interleave: 0.9, CrossDep: 0.25,
			FPMulFrac: 0.4, CondBranches: 3, BranchEntropy: 0.04,
			TripCount: 120, WorkingSetKB: 1024, StreamFrac: 0.6, StrideBytes: 8}),
	fpModel("mgrid", 211,
		LoopSpec{IntChains: 1, IntChainLen: 2, FPChains: 8, FPChainLen: 6,
			LoadHead: 0.85, StoreTail: 0.35, Interleave: 0.9, CrossDep: 0.35,
			FPMulFrac: 0.3, CondBranches: 0, BranchEntropy: 0.01,
			TripCount: 400, WorkingSetKB: 8192, StreamFrac: 0.95, StrideBytes: 8}),
	fpModel("sixtrack", 212,
		LoopSpec{IntChains: 2, IntChainLen: 2, FPChains: 6, FPChainLen: 8,
			LoadHead: 0.6, StoreTail: 0.3, Interleave: 0.9, CrossDep: 0.3,
			FPMulFrac: 0.4, FPDivFrac: 0.03, CondBranches: 1, BranchEntropy: 0.04,
			TripCount: 260, WorkingSetKB: 512, StreamFrac: 0.7, StrideBytes: 8}),
	// swim: shallow-water stencil streaming far beyond L2.
	fpModel("swim", 213,
		LoopSpec{IntChains: 1, IntChainLen: 2, FPChains: 8, FPChainLen: 5,
			LoadHead: 0.9, StoreTail: 0.4, Interleave: 0.9, CrossDep: 0.35,
			FPMulFrac: 0.3, CondBranches: 0, BranchEntropy: 0.01,
			TripCount: 500, WorkingSetKB: 16384, StreamFrac: 0.97, StrideBytes: 8}),
	fpModel("wupwise", 214,
		LoopSpec{IntChains: 2, IntChainLen: 2, FPChains: 5, FPChainLen: 6,
			LoadHead: 0.75, StoreTail: 0.35, Interleave: 0.9, CrossDep: 0.3,
			FPMulFrac: 0.45, CondBranches: 1, BranchEntropy: 0.04,
			TripCount: 280, WorkingSetKB: 4096, StreamFrac: 0.8, StrideBytes: 8}),
}

// Benchmarks returns the names of all models in a suite, in figure order.
func Benchmarks(s Suite) []string {
	var names []string
	for _, m := range models {
		if m.Suite == s {
			names = append(names, m.Name)
		}
	}
	return names
}

// AllBenchmarks returns every model name, SPECINT first.
func AllBenchmarks() []string {
	return append(Benchmarks(SuiteInt), Benchmarks(SuiteFP)...)
}

// ByName returns the model for a benchmark name.
func ByName(name string) (Model, error) {
	for _, m := range models {
		if m.Name == name {
			return m, nil
		}
	}
	known := AllBenchmarks()
	sort.Strings(known)
	return Model{}, fmt.Errorf("trace: unknown benchmark %q (known: %v)", name, known)
}

// MustByName is ByName for static names; it panics on unknown benchmarks.
func MustByName(name string) Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}
