package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"distiq/internal/core"
)

// flakyStore wraps an FS store and fails writes for a chosen set of
// fingerprints — the injected mid-flush backend failure of the batcher
// crash-consistency test. It implements BatchWriter so the group-commit
// path (and its landed-entry accounting) is what gets exercised.
type flakyStore struct {
	inner *Store
	mu    sync.Mutex
	fail  map[string]bool
}

func newFlakyStore(dir string) *flakyStore {
	return &flakyStore{inner: NewStore(dir), fail: make(map[string]bool)}
}

func (f *flakyStore) failOn(fp string) {
	f.mu.Lock()
	f.fail[fp] = true
	f.mu.Unlock()
}

func (f *flakyStore) failing(fp string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fail[fp]
}

func (f *flakyStore) Get(fp string, job Job) (Result, bool) { return f.inner.Get(fp, job) }
func (f *flakyStore) Has(fp string) bool                    { return f.inner.Has(fp) }
func (f *flakyStore) Raw(fp string) ([]byte, error)         { return f.inner.Raw(fp) }
func (f *flakyStore) Close() error                          { return f.inner.Close() }

func (f *flakyStore) Put(fp string, job Job, r Result) error {
	data, err := entryBytes(job, r)
	if err != nil {
		return err
	}
	return f.PutRaw(fp, data)
}

func (f *flakyStore) PutRaw(fp string, data []byte) error {
	if f.failing(fp) {
		return fmt.Errorf("injected write failure for %s", fp)
	}
	return f.inner.PutRaw(fp, data)
}

func (f *flakyStore) PutBatch(entries []BatchEntry) error {
	var firstErr error
	committed := 0
	for _, e := range entries {
		if err := f.PutRaw(e.Fingerprint, e.Data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		committed++
	}
	if firstErr != nil {
		return fmt.Errorf("flaky batch: %d/%d committed: %w", committed, len(entries), firstErr)
	}
	return nil
}

// batchJobs returns n distinct content-addressable jobs.
func batchJobs(n int) []Job {
	benches := []string{"swim", "gzip", "gcc", "mesa", "art", "mcf", "lucas", "vpr"}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = quickJob(benches[i%len(benches)], core.Baseline64())
		jobs[i].Opt.Instructions += uint64(i/len(benches)) * 1000
	}
	return jobs
}

// TestBatcherReadYourWrites: queued entries must serve Get/Has/Raw
// before any flush happens, so single-flight dedup and warm-rerun checks
// see them immediately.
func TestBatcherReadYourWrites(t *testing.T) {
	b := NewBatcher(NewMemStore(), BatcherConfig{Interval: time.Hour, MaxEntries: 1 << 20})
	defer b.Close() //nolint:errcheck // teardown
	job := quickJob("swim", core.MBDistr())
	fp, _ := job.Fingerprint()
	res := confResult(job)
	if err := b.Put(fp, job, res); err != nil {
		t.Fatal(err)
	}
	if b.Base().Has(fp) {
		t.Fatal("entry reached the base store before any flush trigger")
	}
	if _, ok := b.Get(fp, job); !ok {
		t.Fatal("queued entry not readable through Get")
	}
	if !b.Has(fp) {
		t.Fatal("queued entry not visible through Has")
	}
	want, _ := entryBytes(job, res)
	if raw, err := b.Raw(fp); err != nil || string(raw) != string(want) {
		t.Fatalf("queued entry raw bytes wrong (err=%v)", err)
	}
	b.Flush()
	if !b.Base().Has(fp) {
		t.Fatal("Flush did not commit the queued entry")
	}
}

// TestBatcherFlushOnThresholds: reaching MaxEntries triggers a group
// commit without waiting out the interval.
func TestBatcherFlushOnThresholds(t *testing.T) {
	mem := NewMemStore()
	b := NewBatcher(mem, BatcherConfig{MaxEntries: 4, Interval: time.Hour})
	defer b.Close() //nolint:errcheck // teardown
	for i := 0; i < 4; i++ {
		if err := b.PutRaw(fmt.Sprintf("fp-%d", i), []byte("{}")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for mem.Len() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("threshold flush never happened: %d/4 committed", mem.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatcherCloseDrains: Close must commit everything still queued, and
// the backing state must be fully readable by a fresh handle afterwards.
func TestBatcherCloseDrains(t *testing.T) {
	dir := t.TempDir()
	b := NewBatcher(NewStore(dir), BatcherConfig{Interval: time.Hour, MaxEntries: 1 << 20})
	jobs := batchJobs(10)
	for _, j := range jobs {
		fp, _ := j.Fingerprint()
		if err := b.Put(fp, j, confResult(j)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := NewStore(dir)
	for _, j := range jobs {
		fp, _ := j.Fingerprint()
		if _, ok := reopened.Get(fp, j); !ok {
			t.Fatalf("entry %s missing after Close", fp)
		}
	}
	if err := b.PutRaw("late", []byte("{}")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

// TestBatcherCrashConsistency is the injected-failure gate: a backend
// that fails mid-flush must lose exactly the failed entries — no torn
// files, committed neighbors intact — Close must report the loss, and a
// warm rerun over the surviving store must recompute only the lost
// entries.
func TestBatcherCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	fl := newFlakyStore(dir)
	b := NewBatcher(fl, BatcherConfig{Interval: time.Hour, MaxEntries: 1 << 20})

	jobs := batchJobs(6)
	fps := make([]string, len(jobs))
	for i, j := range jobs {
		fps[i], _ = j.Fingerprint()
	}
	// Two of the six entries will fail to persist.
	fl.failOn(fps[1])
	fl.failOn(fps[4])

	// Cold run through an engine backed by the batcher: every job
	// simulates once and parks its result on the queue.
	var cold sync.Map
	e1 := New(Config{Workers: 4, Store: b, Simulate: countingSim(&cold, 0)})
	for _, j := range jobs {
		if _, err := e1.Result(j); err != nil {
			t.Fatal(err)
		}
	}
	if n := totalCalls(&cold); n != int64(len(jobs)) {
		t.Fatalf("cold run simulated %d, want %d", n, len(jobs))
	}

	b.Flush()
	if lost := b.Lost(); lost != 2 {
		t.Fatalf("Lost() = %d, want 2", lost)
	}
	err := b.Close()
	if err == nil {
		t.Fatal("Close after lost flushes returned nil")
	}
	if !strings.Contains(err.Error(), "2 results lost") {
		t.Fatalf("Close error does not report the loss: %v", err)
	}

	// No torn entries: every file the store holds decodes as a complete
	// current-version entry, and no temp files linger.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range files {
		if !strings.HasSuffix(de.Name(), ".json") {
			t.Fatalf("unexpected file in store: %s", de.Name())
		}
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var ent entry
		if err := json.Unmarshal(data, &ent); err != nil {
			t.Fatalf("torn entry %s: %v", de.Name(), err)
		}
		if ent.Version != storeVersion {
			t.Fatalf("entry %s has version %d", de.Name(), ent.Version)
		}
	}
	if len(files) != 4 {
		t.Fatalf("store holds %d entries, want 4", len(files))
	}

	// Warm rerun over the surviving store completes exactly the
	// remainder: the two lost entries simulate again, the four committed
	// ones are disk hits.
	var warm sync.Map
	e2 := New(Config{Workers: 4, Store: NewStore(dir), Simulate: countingSim(&warm, 0)})
	for _, j := range jobs {
		if _, err := e2.Result(j); err != nil {
			t.Fatal(err)
		}
	}
	if n := totalCalls(&warm); n != 2 {
		t.Fatalf("warm rerun simulated %d, want 2 (the lost entries)", n)
	}
	if st := e2.Stats(); st.DiskHits != 4 {
		t.Fatalf("warm rerun disk hits = %d, want 4 (stats %+v)", st.DiskHits, st)
	}
}

// TestBatcherConcurrentCloseRace hammers Put from many goroutines while
// Close races them — the -race gate for the queue's lifecycle. Whatever
// was accepted before Close must be durable; Puts losing the race must
// fail cleanly.
func TestBatcherConcurrentCloseRace(t *testing.T) {
	mem := NewMemStore()
	b := NewBatcher(mem, BatcherConfig{MaxEntries: 4, MaxPending: 8, Interval: time.Millisecond})
	var accepted sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fp := fmt.Sprintf("fp-%02d-%03d", g, i)
				if err := b.PutRaw(fp, []byte("{}")); err != nil {
					return // closed under us — expected
				}
				accepted.Store(fp, true)
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Close is idempotent.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	accepted.Range(func(k, _ any) bool {
		if !mem.Has(k.(string)) {
			t.Errorf("accepted entry %s not durable after Close", k)
			return false
		}
		return true
	})
}

// TestBatcherBackpressure: a queue bounded well below the write count
// must block producers rather than grow, and still land every entry.
func TestBatcherBackpressure(t *testing.T) {
	mem := NewMemStore()
	b := NewBatcher(mem, BatcherConfig{MaxEntries: 2, MaxPending: 4, Interval: time.Hour})
	const writes = 64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < writes/4; i++ {
				if err := b.PutRaw(fmt.Sprintf("fp-%d-%d", g, i), []byte("{}")); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != writes {
		t.Fatalf("committed %d entries, want %d", mem.Len(), writes)
	}
}

// TestEngineWarmRerunThroughBatchedStore: the tentpole end-to-end
// property — an engine writing through batch:fs, closed, then a second
// engine over the same directory performs zero simulations.
func TestEngineWarmRerunThroughBatchedStore(t *testing.T) {
	dir := t.TempDir()
	jobs := batchJobs(5)

	var cold sync.Map
	b := NewBatcher(NewStore(dir), BatcherConfig{})
	e1 := New(Config{Workers: 4, Store: b, Simulate: countingSim(&cold, 0)})
	for _, j := range jobs {
		if _, err := e1.Result(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	var warm sync.Map
	b2 := NewBatcher(NewStore(dir), BatcherConfig{})
	e2 := New(Config{Workers: 4, Store: b2, Simulate: countingSim(&warm, 0)})
	for _, j := range jobs {
		if _, err := e2.Result(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}
	if n := totalCalls(&warm); n != 0 {
		t.Fatalf("warm rerun simulated %d jobs, want 0", n)
	}
	if st := e2.Stats(); st.DiskHits != int64(len(jobs)) {
		t.Fatalf("warm rerun disk hits = %d, want %d", st.DiskHits, len(jobs))
	}
}

// blockingStore parks PutRaw/PutBatch until released, so a test can
// hold a group commit in flight while it races more Puts against it.
type blockingStore struct {
	inner   *MemStore
	started chan struct{} // signaled once per commit that begins
	release chan struct{} // closed to let commits proceed
}

func newBlockingStore() *blockingStore {
	return &blockingStore{
		inner:   NewMemStore(),
		started: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
}

func (s *blockingStore) Get(fp string, job Job) (Result, bool) { return s.inner.Get(fp, job) }
func (s *blockingStore) Has(fp string) bool                    { return s.inner.Has(fp) }
func (s *blockingStore) Raw(fp string) ([]byte, error)         { return s.inner.Raw(fp) }
func (s *blockingStore) Close() error                          { return s.inner.Close() }
func (s *blockingStore) Put(fp string, job Job, r Result) error {
	data, err := entryBytes(job, r)
	if err != nil {
		return err
	}
	return s.PutRaw(fp, data)
}

func (s *blockingStore) PutRaw(fp string, data []byte) error {
	s.started <- struct{}{}
	<-s.release
	return s.inner.PutRaw(fp, data)
}

// TestBatcherDedupesQueuedFingerprint: re-Putting a fingerprint that is
// still queued coalesces in place — one queue slot, one group commit,
// the freshest bytes — instead of appending a duplicate that would
// group-commit the same fingerprint twice.
func TestBatcherDedupesQueuedFingerprint(t *testing.T) {
	b := NewBatcher(NewMemStore(), BatcherConfig{Interval: time.Hour, MaxEntries: 1 << 20})
	defer b.Close() //nolint:errcheck // teardown
	job := quickJob("swim", core.MBDistr())
	fp, _ := job.Fingerprint()
	res := confResult(job)

	// First Put parks stale bytes; the re-Put must replace them in the
	// queue, not enqueue a second entry.
	stale, err := staleEntryBytes(job, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PutRaw(fp, stale); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(fp, job, res); err != nil {
		t.Fatal(err)
	}
	if n := b.enqueued.Load(); n != 1 {
		t.Fatalf("enqueued %d entries for one fingerprint, want 1", n)
	}
	if n := b.deduped.Load(); n != 1 {
		t.Fatalf("counted %d deduped writes, want 1", n)
	}
	// Read-your-writes must already serve the fresher bytes.
	if _, ok := b.Get(fp, job); !ok {
		t.Fatal("queued entry does not serve the replacing bytes")
	}

	b.Flush()
	if n := b.flushed.Load(); n != 1 {
		t.Fatalf("flushed %d entries, want 1 (duplicate group-committed?)", n)
	}
	if _, ok := b.Base().Get(fp, job); !ok {
		t.Fatal("base store holds the stale bytes, want the replacement")
	}
	// Counter agreement at quiescence: everything enqueued is accounted
	// flushed or lost.
	if e, f, l := b.enqueued.Load(), b.flushed.Load(), b.lost.Load(); e != f+l {
		t.Fatalf("counters disagree: enqueued %d != flushed %d + lost %d", e, f, l)
	}
}

// TestBatcherDedupesInflightFingerprint: a re-Put of identical bytes
// while the entry's group commit is in flight is dropped (the running
// commit already writes exactly those bytes), so the fingerprint never
// commits twice and the counters still agree.
func TestBatcherDedupesInflightFingerprint(t *testing.T) {
	base := newBlockingStore()
	b := NewBatcher(base, BatcherConfig{Interval: time.Hour, MaxEntries: 1 << 20})
	job := quickJob("gzip", core.MBDistr())
	fp, _ := job.Fingerprint()
	res := confResult(job)

	if err := b.Put(fp, job, res); err != nil {
		t.Fatal(err)
	}
	flushDone := make(chan struct{})
	go func() {
		b.Flush()
		close(flushDone)
	}()
	<-base.started // the group commit is now in flight

	// Same fingerprint, same bytes, mid-commit: must coalesce.
	if err := b.Put(fp, job, res); err != nil {
		t.Fatal(err)
	}
	if n := b.deduped.Load(); n != 1 {
		t.Fatalf("counted %d deduped writes, want 1", n)
	}

	close(base.release)
	<-flushDone
	b.Flush()
	if n := b.enqueued.Load(); n != 1 {
		t.Fatalf("enqueued %d entries, want 1", n)
	}
	if n := b.flushed.Load(); n != 1 {
		t.Fatalf("flushed %d entries, want 1", n)
	}
	if _, ok := b.Base().Get(fp, job); !ok {
		t.Fatal("entry missing from base store after flush")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
