package engine

import (
	"fmt"
	"sync"
)

// MemStore is the in-memory ResultStore: a goroutine-safe map from
// fingerprint to canonical entry bytes. It exists as the fastest tier of
// a tiered store, as a hermetic backend for tests, and as the reference
// implementation of the ResultStore contract (it stores the same
// canonical bytes the FS store writes, so manifests verify against it
// byte-for-byte). A MemStore is process-local: "cross-process" reuse
// means sharing one MemStore value between engines.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Get loads and validates the entry for fp; any mismatch is a miss.
func (s *MemStore) Get(fp string, job Job) (Result, bool) {
	s.mu.RLock()
	data, ok := s.blobs[fp]
	s.mu.RUnlock()
	if !ok {
		return Result{}, false
	}
	return decodeEntry(data, job)
}

// Put stores the canonical entry bytes for (job, r) under fp.
func (s *MemStore) Put(fp string, job Job, r Result) error {
	data, err := entryBytes(job, r)
	if err != nil {
		return fmt.Errorf("engine: encode result: %w", err)
	}
	return s.PutRaw(fp, data)
}

// PutRaw stores pre-encoded entry bytes under fp.
func (s *MemStore) PutRaw(fp string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.blobs[fp] = cp
	s.mu.Unlock()
	return nil
}

// Has reports whether an entry exists for fp.
func (s *MemStore) Has(fp string) bool {
	s.mu.RLock()
	_, ok := s.blobs[fp]
	s.mu.RUnlock()
	return ok
}

// Raw returns the exact stored entry bytes for fp.
func (s *MemStore) Raw(fp string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.blobs[fp]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: memstore: no entry for %s", fp)
	}
	return append([]byte(nil), data...), nil
}

// Len reports the number of stored entries.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// Close is a no-op.
func (s *MemStore) Close() error { return nil }

// compile-time interface checks.
var (
	_ ResultStore = (*MemStore)(nil)
	_ RawPutter   = (*MemStore)(nil)
)
