package engine

import (
	"fmt"
	"hash/fnv"
)

// ShardIndex maps a distiq-v2 job fingerprint onto one of n shards:
// FNV-1a over the fingerprint hex, modulo n. The fingerprint is already
// a uniform SHA-256 digest, so the cheap second hash only folds it to
// machine width; the mapping is deterministic across processes and
// platforms for a fixed n, which is what lets independent fleet clients
// (and a worker asked twice) agree on point placement without
// coordination.
func ShardIndex(fp string, n int) int {
	h := fnv.New64a()
	h.Write([]byte(fp)) //nolint:errcheck // hash writes cannot fail
	return int(h.Sum64() % uint64(n))
}

// PartitionJobs shards jobs across n workers by fingerprint, returning
// for each worker the indexes (into jobs) it owns. Every job must be
// content-addressable — a Custom-scheme job has no fingerprint and
// cannot be placed, which is reported before any work is scheduled.
func PartitionJobs(jobs []Job, n int) ([][]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: partition across %d workers", n)
	}
	parts := make([][]int, n)
	for i, j := range jobs {
		fp, ok := j.Fingerprint()
		if !ok {
			return nil, fmt.Errorf("engine: job %d (%s under %s) has no fingerprint and cannot be sharded", i, j.Bench, j.Config.Name)
		}
		w := ShardIndex(fp, n)
		parts[w] = append(parts[w], i)
	}
	return parts, nil
}
