package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Store is the filesystem ResultStore: one JSON file per result under a
// flat directory, named by the job's content-address fingerprint, so any
// process computing the same job produces (and finds) the same file.
//
// Writes go through a temp file and an atomic rename, so concurrent
// engines sharing a directory never observe torn entries; unreadable or
// stale-format files are treated as misses and overwritten.
type Store struct {
	dir string
}

// tmpStaleAfter is how old an orphaned temp file must be before the
// startup sweep removes it. A temp file is normally renamed away within
// milliseconds of creation; one this old was abandoned by a crashed
// writer. The margin keeps the sweep safe for concurrent processes
// sharing a directory: a live writer's temp file is never this old.
const tmpStaleAfter = time.Hour

// NewStore returns a store rooted at dir. The directory is created on
// first Put. If the directory already exists, stale temp files orphaned
// by crashed writers are swept away (best-effort) so a crash can never
// leak disk space indefinitely.
func NewStore(dir string) *Store {
	s := &Store{dir: dir}
	s.sweepStaleTemps()
	return s
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// sweepStaleTemps removes temp files older than tmpStaleAfter. Put's
// CreateTemp pattern is "." + fp + ".tmp*"; a crash between CreateTemp
// and Rename orphans such a file. Recent temps are left alone — they may
// belong to a live writer in another process.
func (s *Store) sweepStaleTemps() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tmpStaleAfter)
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp") {
			continue
		}
		fi, err := de.Info()
		if err != nil || fi.ModTime().After(cutoff) {
			continue
		}
		os.Remove(filepath.Join(s.dir, name))
	}
}

// entry is the on-disk format: a version tag plus the job identity for
// auditability (the filename alone is an opaque hash) and validation.
type entry struct {
	Version      int    `json:"version"`
	Benchmark    string `json:"benchmark"`
	Config       string `json:"config"`
	Machine      string `json:"machine"`
	Warmup       uint64 `json:"warmup"`
	Instructions uint64 `json:"instructions"`
	Result       Result `json:"result"`
}

func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp+".json")
}

// Get loads the result addressed by fp, validating that the entry's
// version and recorded identity match the requesting job. Any mismatch or
// read/decode failure is a cache miss.
func (s *Store) Get(fp string, job Job) (Result, bool) {
	data, err := os.ReadFile(s.path(fp))
	if err != nil {
		return Result{}, false
	}
	return decodeEntry(data, job)
}

// Has reports whether an entry file exists for fp.
func (s *Store) Has(fp string) bool {
	_, err := os.Stat(s.path(fp))
	return err == nil
}

// Raw returns the exact stored entry bytes for fp.
func (s *Store) Raw(fp string) ([]byte, error) {
	return os.ReadFile(s.path(fp))
}

// Close is a no-op: every Put is already durable on return.
func (s *Store) Close() error { return nil }

// entryBytes renders the canonical on-disk encoding of a job's result —
// the exact bytes Put writes. Manifest leaf hashing shares it, so a
// manifest built in memory verifies against the raw store files.
func entryBytes(job Job, r Result) ([]byte, error) {
	ent := entry{
		Version:      storeVersion,
		Benchmark:    job.Bench,
		Config:       job.Config.Name,
		Machine:      job.machineCanon(),
		Warmup:       job.Opt.Warmup,
		Instructions: job.Opt.Instructions,
		Result:       r,
	}
	return json.MarshalIndent(ent, "", " ")
}

// Put persists a result under fp atomically (temp file + rename).
func (s *Store) Put(fp string, job Job, r Result) error {
	data, err := entryBytes(job, r)
	if err != nil {
		return fmt.Errorf("engine: encode result: %w", err)
	}
	return s.PutRaw(fp, data)
}

// PutRaw persists pre-encoded entry bytes under fp atomically.
func (s *Store) PutRaw(fp string, data []byte) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("engine: create store: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "."+fp+".tmp*")
	if err != nil {
		return fmt.Errorf("engine: store temp: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("engine: store write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("engine: store close: %w", err)
	}
	if err := os.Rename(name, s.path(fp)); err != nil {
		os.Remove(name)
		return fmt.Errorf("engine: store rename: %w", err)
	}
	return nil
}

// PutBatch group-commits a set of entries: every entry is written and
// atomically renamed into place, then the directory is synced once, so a
// flush of N results costs one directory fsync instead of N. Entries are
// committed independently — a failure on one does not roll back the
// others — and the error reports how many landed.
func (s *Store) PutBatch(entries []BatchEntry) error {
	var firstErr error
	committed := 0
	for _, be := range entries {
		if err := s.PutRaw(be.Fingerprint, be.Data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		committed++
	}
	// One directory sync amortized over the whole group makes the batch's
	// renames durable together (best-effort: not every platform supports
	// directory fsync).
	if d, err := os.Open(s.dir); err == nil {
		d.Sync() //nolint:errcheck // advisory durability, not correctness
		d.Close()
	}
	if firstErr != nil {
		return fmt.Errorf("engine: store batch: %d/%d entries committed: %w",
			committed, len(entries), firstErr)
	}
	return nil
}

// compile-time interface checks.
var (
	_ ResultStore = (*Store)(nil)
	_ RawPutter   = (*Store)(nil)
	_ BatchWriter = (*Store)(nil)
)
