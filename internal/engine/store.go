package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store is the persistent result cache: one JSON file per result under a
// flat directory, named by the job's content-address fingerprint, so any
// process computing the same job produces (and finds) the same file.
//
// Writes go through a temp file and an atomic rename, so concurrent
// engines sharing a directory never observe torn entries; unreadable or
// stale-format files are treated as misses and overwritten.
type Store struct {
	dir string
}

// NewStore returns a store rooted at dir. The directory is created on
// first Put.
func NewStore(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entry is the on-disk format: a version tag plus the job identity for
// auditability (the filename alone is an opaque hash) and validation.
type entry struct {
	Version      int    `json:"version"`
	Benchmark    string `json:"benchmark"`
	Config       string `json:"config"`
	Machine      string `json:"machine"`
	Warmup       uint64 `json:"warmup"`
	Instructions uint64 `json:"instructions"`
	Result       Result `json:"result"`
}

func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp+".json")
}

// Get loads the result addressed by fp, validating that the entry's
// version and recorded identity match the requesting job. Any mismatch or
// read/decode failure is a cache miss.
func (s *Store) Get(fp string, job Job) (Result, bool) {
	data, err := os.ReadFile(s.path(fp))
	if err != nil {
		return Result{}, false
	}
	var ent entry
	if err := json.Unmarshal(data, &ent); err != nil {
		return Result{}, false
	}
	if ent.Version != storeVersion ||
		ent.Benchmark != job.Bench || ent.Config != job.Config.Name ||
		ent.Machine != job.machineCanon() ||
		ent.Warmup != job.Opt.Warmup || ent.Instructions != job.Opt.Instructions {
		return Result{}, false
	}
	return ent.Result, true
}

// entryBytes renders the canonical on-disk encoding of a job's result —
// the exact bytes Put writes. Manifest leaf hashing shares it, so a
// manifest built in memory verifies against the raw store files.
func entryBytes(job Job, r Result) ([]byte, error) {
	ent := entry{
		Version:      storeVersion,
		Benchmark:    job.Bench,
		Config:       job.Config.Name,
		Machine:      job.machineCanon(),
		Warmup:       job.Opt.Warmup,
		Instructions: job.Opt.Instructions,
		Result:       r,
	}
	return json.MarshalIndent(ent, "", " ")
}

// Put persists a result under fp atomically (temp file + rename).
func (s *Store) Put(fp string, job Job, r Result) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("engine: create store: %w", err)
	}
	data, err := entryBytes(job, r)
	if err != nil {
		return fmt.Errorf("engine: encode result: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "."+fp+".tmp*")
	if err != nil {
		return fmt.Errorf("engine: store temp: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("engine: store write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("engine: store close: %w", err)
	}
	if err := os.Rename(name, s.path(fp)); err != nil {
		os.Remove(name)
		return fmt.Errorf("engine: store rename: %w", err)
	}
	return nil
}
