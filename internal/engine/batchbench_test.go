package engine

import (
	"testing"

	"distiq/internal/core"
)

// benchSweepJobs is one benchmark's point set of the iqbench sweep grid.
func benchSweepJobs() []Job {
	opt := Options{Warmup: 20_000, Instructions: 100_000}
	var jobs []Job
	for _, cfg := range []core.Config{core.Baseline64(), core.IFDistr(), core.MBDistr()} {
		for _, rob := range []int{0, 128, 64} {
			j := Job{Bench: "gcc", Config: cfg, Opt: opt}
			if rob != 0 {
				j.Machine = &Machine{ROBSize: rob}
			}
			jobs = append(jobs, j)
		}
	}
	return jobs
}

func BenchmarkSweepLockstep(b *testing.B) {
	jobs := benchSweepJobs()
	WarmTraces([]string{"gcc"}, jobs[0].Opt.Warmup+jobs[0].Opt.Instructions+4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, errs, _ := lockstepGroup(jobs); errs[0] != nil {
			b.Fatal(errs[0])
		}
	}
}

func BenchmarkSweepSolo(b *testing.B) {
	jobs := benchSweepJobs()
	WarmTraces([]string{"gcc"}, jobs[0].Opt.Warmup+jobs[0].Opt.Instructions+4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			if _, err := Simulate(j); err != nil {
				b.Fatal(err)
			}
		}
	}
}
