package engine

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distiq/internal/core"
)

func quickJob(bench string, cfg core.Config) Job {
	return Job{Bench: bench, Config: cfg, Opt: Options{Warmup: 1000, Instructions: 4000}}
}

// countingSim returns a stub simulate function that counts invocations per
// key and produces a distinguishable deterministic result.
func countingSim(calls *sync.Map, delay time.Duration) func(Job) (Result, error) {
	return func(j Job) (Result, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		c, _ := calls.LoadOrStore(j.Key(), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		var r Result
		r.Benchmark = j.Bench
		r.Config = j.Config.Name
		r.Insts = j.Opt.Instructions
		r.Cycles = j.Opt.Instructions / 2
		r.IQEnergy = float64(len(j.Bench) * 1000)
		return r, nil
	}
}

func totalCalls(calls *sync.Map) int64 {
	var n int64
	calls.Range(func(_, v any) bool { n += v.(*atomic.Int64).Load(); return true })
	return n
}

func TestSingleFlightDedup(t *testing.T) {
	var calls sync.Map
	e := New(Config{Workers: 8, Simulate: countingSim(&calls, time.Millisecond)})
	job := quickJob("swim", core.Baseline64())

	const goroutines = 50
	var wg sync.WaitGroup
	results := make([]Result, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Result(job)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("result %d differs: %+v vs %+v", i, results[i], results[0])
		}
	}
	if n := totalCalls(&calls); n != 1 {
		t.Fatalf("simulated %d times, want 1", n)
	}
	st := e.Stats()
	if st.Requested != goroutines || st.Simulated != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Shared+st.MemoryHits != goroutines-1 {
		t.Fatalf("dedup accounting wrong: %+v", st)
	}
}

func TestBatchOrderAndDedup(t *testing.T) {
	var calls sync.Map
	e := New(Config{Workers: 4, Simulate: countingSim(&calls, 0)})
	benches := []string{"swim", "gzip", "mcf", "swim", "gzip", "swim"}
	jobs := make([]Job, len(benches))
	for i, b := range benches {
		jobs[i] = quickJob(b, core.MBDistr())
	}
	results, err := e.ResultAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Benchmark != benches[i] {
			t.Fatalf("result %d is %s, want %s", i, r.Benchmark, benches[i])
		}
	}
	if n := totalCalls(&calls); n != 3 {
		t.Fatalf("simulated %d unique jobs, want 3", n)
	}
}

func TestWorkerPoolBound(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	sim := func(j Job) (Result, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		var r Result
		r.Benchmark = j.Bench
		return r, nil
	}
	e := New(Config{Workers: workers, Simulate: sim})
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = quickJob(fmt.Sprintf("bench%d", i), core.Baseline64())
	}
	if _, err := e.ResultAll(jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds pool of %d", p, workers)
	}
}

func TestErrorsSharedNotCached(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	sim := func(j Job) (Result, error) {
		calls.Add(1)
		return Result{}, boom
	}
	e := New(Config{Workers: 2, Simulate: sim})
	job := quickJob("swim", core.Baseline64())
	if _, err := e.Result(job); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Errors are not cached: a later request retries.
	if _, err := e.Result(job); !errors.Is(err, boom) {
		t.Fatalf("retry err = %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("simulate called %d times, want 2 (errors must not be cached)", calls.Load())
	}
}

func TestProgressReporting(t *testing.T) {
	var calls sync.Map
	var events []Progress
	e := New(Config{
		Workers:  4,
		Simulate: countingSim(&calls, 0),
		Progress: func(p Progress) { events = append(events, p) },
	})
	jobs := []Job{
		quickJob("swim", core.Baseline64()),
		quickJob("gzip", core.Baseline64()),
		quickJob("swim", core.Baseline64()),
	}
	if _, err := e.ResultAll(jobs); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("%d progress events, want %d", len(events), len(jobs))
	}
	last := events[len(events)-1]
	if last.Done != len(jobs) || last.Total != len(jobs) {
		t.Fatalf("final progress %d/%d, want %d/%d", last.Done, last.Total, len(jobs), len(jobs))
	}
}

func TestRealSimulationThroughEngine(t *testing.T) {
	e := New(Config{Workers: 2})
	r, err := e.Result(quickJob("gzip", core.MBDistr()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "gzip" || r.Config != "MB_distr" {
		t.Fatalf("identity wrong: %+v", r.Run)
	}
	if r.IPC() <= 0.1 || r.IPC() > 8 || r.IQEnergy <= 0 {
		t.Fatalf("implausible result: IPC %v, energy %v", r.IPC(), r.IQEnergy)
	}
	// Memoized second request is bit-identical.
	r2, err := e.Result(quickJob("gzip", core.MBDistr()))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles != r.Cycles || r2.IQEnergy != r.IQEnergy {
		t.Fatal("memoized result differs")
	}
	if st := e.Stats(); st.Simulated != 1 || st.MemoryHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	if w := New(Config{}).Workers(); w < 1 {
		t.Fatalf("workers = %d", w)
	}
	if w := New(Config{Workers: 7}).Workers(); w != 7 {
		t.Fatalf("workers = %d, want 7", w)
	}
}

// TestResultAllProgressBatchScoped: batch progress is scoped to the
// submitted batch — Total fixed at the batch size, Done monotonically
// reaching it — and reports per-job sources, independent of the
// engine-wide callback (which still observes every job).
func TestResultAllProgressBatchScoped(t *testing.T) {
	var calls sync.Map
	var global atomic.Int64
	e := New(Config{
		Workers:  4,
		Simulate: countingSim(&calls, 0),
		Progress: func(Progress) { global.Add(1) },
	})
	jobs := []Job{
		quickJob("swim", core.Baseline64()),
		quickJob("gzip", core.Baseline64()),
		quickJob("swim", core.Baseline64()), // duplicate: memory or shared
	}

	var mu sync.Mutex
	var events []Progress
	if _, err := e.ResultAllProgress(jobs, func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	if len(events) != len(jobs) {
		t.Fatalf("batch progress fired %d times, want %d", len(events), len(jobs))
	}
	bySource := map[Source]int{}
	for i, p := range events {
		if p.Total != len(jobs) {
			t.Fatalf("event %d Total = %d, want %d", i, p.Total, len(jobs))
		}
		if p.Done != i+1 {
			t.Fatalf("event %d Done = %d, want %d (monotonic)", i, p.Done, i+1)
		}
		bySource[p.Source]++
	}
	if bySource[SourceSimulated] != 2 {
		t.Fatalf("sources = %v, want 2 simulated", bySource)
	}
	if bySource[SourceMemory]+bySource[SourceShared] != 1 {
		t.Fatalf("sources = %v, want 1 memory/shared for the duplicate", bySource)
	}
	if global.Load() != int64(len(jobs)) {
		t.Fatalf("engine-wide progress fired %d times, want %d", global.Load(), len(jobs))
	}

	// A second batch over warm jobs is all memory hits, again batch-scoped.
	var warm []Progress
	if _, err := e.ResultAllProgress(jobs[:2], func(p Progress) { warm = append(warm, p) }); err != nil {
		t.Fatal(err)
	}
	if len(warm) != 2 || warm[1].Done != 2 || warm[1].Total != 2 {
		t.Fatalf("warm batch events = %+v", warm)
	}
	for _, p := range warm {
		if p.Source != SourceMemory {
			t.Fatalf("warm batch source = %s", p.Source)
		}
	}
	if n := totalCalls(&calls); n != 2 {
		t.Fatalf("simulator ran %d times, want 2", n)
	}
}
