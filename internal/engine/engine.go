package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config configures an Engine.
type Config struct {
	// Workers bounds concurrent simulations; 0 (or negative) selects
	// GOMAXPROCS. Workers == 1 executes jobs strictly serially.
	Workers int
	// CacheDir, when non-empty, backs the in-memory cache with a
	// persistent on-disk store at that path (created if missing), so
	// results are reused across processes.
	CacheDir string
	// Simulate overrides the simulation function (tests inject stubs);
	// nil selects Simulate.
	Simulate func(Job) (Result, error)
	// Progress, when non-nil, is invoked once per resolved job.
	// Invocations are serialized by the engine.
	Progress func(Progress)
}

// Stats counts how the engine resolved the jobs requested so far.
type Stats struct {
	// Requested is the number of Result calls (batch entries included).
	Requested int64
	// Simulated jobs ran the simulator.
	Simulated int64
	// MemoryHits were served from the in-memory cache.
	MemoryHits int64
	// DiskHits were loaded from the persistent store.
	DiskHits int64
	// Shared requests waited on an identical in-flight job instead of
	// re-simulating (single-flight deduplication).
	Shared int64
	// DiskErrors counts failed best-effort store writes.
	DiskErrors int64
}

// call is one in-flight computation shared by all requesters of a key.
type call struct {
	done chan struct{}
	res  Result
	err  error
}

// Engine runs experiment jobs across a bounded worker pool with
// single-flight deduplication, an in-memory result cache and an optional
// persistent store. All methods are safe for concurrent use.
type Engine struct {
	sim      func(Job) (Result, error)
	progress func(Progress)
	store    *Store
	sem      chan struct{}

	mu       sync.Mutex
	memory   map[string]Result
	inflight map[string]*call

	progMu          sync.Mutex
	total, resolved atomic.Int64

	requested, simulated, memHits, diskHits, shared, diskErrors atomic.Int64
}

// New returns an Engine. The persistent store directory is created lazily
// on first use; an unusable CacheDir surfaces as DiskErrors, never as job
// failures.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sim := cfg.Simulate
	if sim == nil {
		sim = Simulate
	}
	e := &Engine{
		sim:      sim,
		progress: cfg.Progress,
		sem:      make(chan struct{}, workers),
		memory:   make(map[string]Result),
		inflight: make(map[string]*call),
	}
	if cfg.CacheDir != "" {
		e.store = NewStore(cfg.CacheDir)
	}
	return e
}

// Workers returns the worker-pool bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// Stats returns a snapshot of the engine's resolution counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requested:  e.requested.Load(),
		Simulated:  e.simulated.Load(),
		MemoryHits: e.memHits.Load(),
		DiskHits:   e.diskHits.Load(),
		Shared:     e.shared.Load(),
		DiskErrors: e.diskErrors.Load(),
	}
}

// Result resolves one job, blocking until it is available: from the
// in-memory cache, from an identical in-flight computation, from the
// persistent store, or by simulating on a worker slot. Errors are shared
// with concurrent requesters of the same job but never cached, so a later
// request retries.
func (e *Engine) Result(job Job) (Result, error) {
	r, err, _ := e.resolve(job)
	return r, err
}

// resolve is Result plus the resolution source, so batch callers can
// account per-batch how each of their jobs was satisfied.
func (e *Engine) resolve(job Job) (Result, error, Source) {
	e.requested.Add(1)
	e.total.Add(1)
	key := job.Key()

	e.mu.Lock()
	if r, ok := e.memory[key]; ok {
		e.mu.Unlock()
		e.memHits.Add(1)
		e.finish(job, SourceMemory)
		return r, nil, SourceMemory
	}
	if c, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		<-c.done
		e.shared.Add(1)
		e.finish(job, SourceShared)
		return c.res, c.err, SourceShared
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	e.sem <- struct{}{}
	res, err, src := e.compute(job)
	<-e.sem

	if err != nil {
		err = fmt.Errorf("engine: %s under %s: %w", job.Bench, job.Config.Name, err)
	}
	c.res, c.err = res, err
	e.mu.Lock()
	if err == nil {
		e.memory[key] = res
	}
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)
	e.finish(job, src)
	return res, err, src
}

// compute resolves a job the expensive way: persistent store, then the
// simulator (persisting the fresh result best-effort).
func (e *Engine) compute(job Job) (Result, error, Source) {
	fp, addressable := "", false
	if e.store != nil {
		fp, addressable = job.Fingerprint()
	}
	if addressable {
		if r, ok := e.store.Get(fp, job); ok {
			e.diskHits.Add(1)
			return r, nil, SourceDisk
		}
	}
	r, err := e.sim(job)
	if err != nil {
		return Result{}, err, SourceSimulated
	}
	e.simulated.Add(1)
	if addressable {
		if perr := e.store.Put(fp, job, r); perr != nil {
			e.diskErrors.Add(1)
		}
	}
	return r, nil, SourceSimulated
}

// finish accounts a resolved job and reports progress. The increment and
// the callback happen under one lock so Done is monotonic across events.
func (e *Engine) finish(job Job, src Source) {
	if e.progress == nil {
		e.resolved.Add(1)
		return
	}
	e.progMu.Lock()
	defer e.progMu.Unlock()
	e.progress(Progress{
		Done:   int(e.resolved.Add(1)),
		Total:  int(e.total.Load()),
		Job:    job,
		Source: src,
	})
}

// ResultAll resolves a batch of jobs concurrently (bounded by the worker
// pool) and returns their results in input order. Duplicate jobs in the
// batch are simulated once. On failure the first error in input order is
// returned alongside the partial results.
func (e *Engine) ResultAll(jobs []Job) ([]Result, error) {
	return e.ResultAllProgress(jobs, nil)
}

// ResultAllProgress resolves a batch like ResultAll while additionally
// invoking progress once per resolved job with Done/Total scoped to this
// batch (Total is fixed at len(jobs); Done reaches Total exactly when the
// batch completes). Batch progress is independent of — and in addition
// to — the engine-wide Config.Progress callback, so each submitter of a
// shared engine can track its own batch. Invocations are serialized per
// batch.
func (e *Engine) ResultAllProgress(jobs []Job, progress func(Progress)) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	var batchMu sync.Mutex
	done := 0
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			var src Source
			results[i], errs[i], src = e.resolve(j)
			if progress != nil {
				batchMu.Lock()
				done++
				progress(Progress{Done: done, Total: len(jobs), Job: j, Source: src})
				batchMu.Unlock()
			}
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
