package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distiq/internal/obs"
)

// Config configures an Engine.
type Config struct {
	// Workers bounds concurrent simulations; 0 (or negative) selects
	// GOMAXPROCS. Workers == 1 executes jobs strictly serially.
	Workers int
	// CacheDir, when non-empty, backs the in-memory cache with a
	// persistent on-disk store at that path (created if missing), so
	// results are reused across processes. It is the convenience form of
	// Store for the common filesystem backend.
	CacheDir string
	// Store, when non-nil, is the persistent result backend — any
	// ResultStore (filesystem, memory, HTTP blob, a read-through tier, a
	// write-behind Batcher over any of them). It takes precedence over
	// CacheDir. The store is borrowed, not owned: the caller closes it
	// once the engine is done (for a Batcher that flushes the final
	// group).
	Store ResultStore
	// Simulate overrides the simulation function (tests inject stubs);
	// nil selects Simulate.
	Simulate func(Job) (Result, error)
	// Progress, when non-nil, is invoked once per resolved job.
	// Invocations are serialized by the engine.
	Progress func(Progress)
	// Obs, when non-nil, registers the engine's metrics on the registry:
	// resolution counters mirroring Stats, queue depth, worker occupancy
	// and a simulate-latency histogram.
	Obs *obs.Registry
	// NoBatch disables the lockstep batch kernel: co-batchable jobs
	// inside one batch call (same benchmark, warmup and measured
	// instruction count, distinct configurations) then resolve
	// independently instead of stepping side by side off a single trace
	// pass. Batching changes replay cost only — results, store bytes,
	// fingerprints and manifests are bit-identical either way — and is
	// also disabled implicitly when Simulate is overridden (a stub
	// cannot lockstep).
	NoBatch bool
}

// Stats counts how the engine resolved the jobs requested so far. A
// snapshot returned by Engine.Stats is internally consistent: every
// resolved request is counted under exactly one of Simulated, MemoryHits,
// DiskHits, Shared or Canceled, so once the engine is idle
//
//	Requested == Simulated + MemoryHits + DiskHits + Shared + Canceled
//
// holds (minus any requests that failed in the simulator itself, which
// count only under Requested).
type Stats struct {
	// Requested is the number of Result calls (batch entries included).
	Requested int64
	// Simulated jobs ran the simulator.
	Simulated int64
	// MemoryHits were served from the in-memory cache.
	MemoryHits int64
	// DiskHits were loaded from the persistent store.
	DiskHits int64
	// Shared requests waited on an identical in-flight job instead of
	// re-simulating (single-flight deduplication).
	Shared int64
	// Batched is the subset of Simulated that ran in a lockstep batch
	// group (two or more machines stepped off a single trace pass). It
	// is informational — batched jobs are counted under Simulated like
	// any other — so the resolution identity above is unchanged.
	Batched int64
	// Canceled requests were abandoned by context cancellation before a
	// result was available (the job itself may still finish if another
	// requester owns it).
	Canceled int64
	// DiskErrors counts failed best-effort store writes.
	DiskErrors int64
}

// call is one in-flight computation shared by all requesters of a key.
type call struct {
	done chan struct{}
	res  Result
	err  error
	// abandoned marks a call whose owner was cancelled before computing:
	// its context error belongs to the owner, so surviving waiters retry
	// resolution instead of inheriting it.
	abandoned bool
}

// Engine runs experiment jobs across a bounded worker pool with
// single-flight deduplication, an in-memory result cache and an optional
// persistent store. All methods are safe for concurrent use.
//
// Every job-resolving method takes a context: cancellation stops
// scheduling (jobs that have not claimed a worker slot resolve promptly
// to the context's error) while jobs already simulating run to completion
// and persist to the store, so a cancelled sweep leaves the on-disk state
// consistent and a warm rerun completes only the remainder.
type Engine struct {
	sim      func(Job) (Result, error)
	progress func(Progress)
	store    ResultStore
	sem      chan struct{}
	// batch enables the lockstep kernel for co-batchable jobs inside one
	// batch call: set when the engine runs the real simulator and
	// Config.NoBatch is unset.
	batch bool

	mu       sync.Mutex
	memory   map[string]Result
	inflight map[string]*call

	progMu   sync.Mutex
	resolved atomic.Int64
	total    atomic.Int64

	// queued and running feed the observability gauges: jobs waiting for
	// a worker slot and slots currently occupied. Maintained
	// unconditionally (two atomic adds per job) so wiring a registry
	// later needs no engine restart.
	queued  atomic.Int64
	running atomic.Int64
	// simDur, when non-nil, records the wall time of each simulator run
	// (a lockstep group counts as one run).
	simDur *obs.Histogram
	// batchGroups and batchWarmupSkips feed the batch metrics: lockstep
	// groups run, and batches whose warmup trace prefix a recorded
	// checkpoint pre-materialized.
	batchGroups      atomic.Int64
	batchWarmupSkips atomic.Int64

	// statsMu guards stats so Stats() snapshots are consistent even while
	// a cancellation is racing resolution (no half-counted request).
	statsMu sync.Mutex
	stats   Stats
}

// New returns an Engine. The persistent store directory is created lazily
// on first use; an unusable CacheDir surfaces as DiskErrors, never as job
// failures.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sim := cfg.Simulate
	if sim == nil {
		sim = Simulate
	}
	e := &Engine{
		sim:      sim,
		progress: cfg.Progress,
		sem:      make(chan struct{}, workers),
		memory:   make(map[string]Result),
		inflight: make(map[string]*call),
		batch:    !cfg.NoBatch && cfg.Simulate == nil,
	}
	if cfg.Store != nil {
		e.store = cfg.Store
	} else if cfg.CacheDir != "" {
		e.store = NewStore(cfg.CacheDir)
	}
	if cfg.Obs != nil {
		e.instrument(cfg.Obs)
	}
	return e
}

// Workers returns the worker-pool bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// Stats returns a consistent snapshot of the engine's resolution
// counters: all fields are read under one lock, so the identity
// documented on Stats holds at any moment, including mid-cancellation.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// bump applies one counter mutation under the stats lock.
func (e *Engine) bump(f func(*Stats)) {
	e.statsMu.Lock()
	f(&e.stats)
	e.statsMu.Unlock()
}

// Result resolves one job, blocking until it is available: from the
// in-memory cache, from an identical in-flight computation, from the
// persistent store, or by simulating on a worker slot. Errors are shared
// with concurrent requesters of the same job but never cached, so a later
// request retries.
func (e *Engine) Result(job Job) (Result, error) {
	return e.ResultCtx(context.Background(), job)
}

// ResultCtx is Result honoring ctx: a request cancelled before its job
// claims a worker slot (or while waiting on another requester's in-flight
// computation) returns ctx.Err() promptly; a job already simulating runs
// to completion and its result is cached and persisted as usual.
func (e *Engine) ResultCtx(ctx context.Context, job Job) (Result, error) {
	r, err, _ := e.resolve(ctx, job)
	return r, err
}

// cancel accounts one request abandoned by context cancellation.
func (e *Engine) cancel(job Job, err error) (Result, error, Source) {
	e.bump(func(s *Stats) { s.Canceled++ })
	e.finish(job, SourceCanceled)
	return Result{}, err, SourceCanceled
}

// resolve is ResultCtx plus the resolution source, so batch callers can
// account per-batch how each of their jobs was satisfied.
func (e *Engine) resolve(ctx context.Context, job Job) (Result, error, Source) {
	e.bump(func(s *Stats) { s.Requested++ })
	e.total.Add(1)
	key := job.Key()

retry:
	if err := ctx.Err(); err != nil {
		return e.cancel(job, err)
	}
	e.mu.Lock()
	if r, ok := e.memory[key]; ok {
		e.mu.Unlock()
		e.bump(func(s *Stats) { s.MemoryHits++ })
		e.finish(job, SourceMemory)
		return r, nil, SourceMemory
	}
	if c, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			return e.cancel(job, ctx.Err())
		}
		if c.abandoned {
			// The owner was cancelled before computing; its context
			// error is not this requester's. Retry resolution (errors
			// are never cached, so the job is simply unowned again).
			goto retry
		}
		e.bump(func(s *Stats) { s.Shared++ })
		e.finish(job, SourceShared)
		return c.res, c.err, SourceShared
	}
	c := &call{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	// Claim a worker slot, abandoning the job if ctx is cancelled first
	// (cancellation stops scheduling; the slot is never taken). A job
	// whose slot is already claimed runs to completion below, so the
	// persistent store stays consistent under cancellation.
	e.queued.Add(1)
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.queued.Add(-1)
		return e.abandon(job, key, c, ctx.Err())
	}
	e.queued.Add(-1)
	if ctx.Err() != nil {
		// The slot and the cancellation raced; prefer the cancellation
		// so a cancelled sweep never starts new simulations.
		<-e.sem
		return e.abandon(job, key, c, ctx.Err())
	}
	e.running.Add(1)
	res, err, src := e.compute(job)
	e.running.Add(-1)
	<-e.sem

	if err != nil {
		err = fmt.Errorf("engine: %s under %s: %w", job.Bench, job.Config.Name, err)
	}
	c.res, c.err = res, err
	e.mu.Lock()
	if err == nil {
		e.memory[key] = res
	}
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)
	e.finish(job, src)
	return res, err, src
}

// abandon unwinds an owned in-flight registration whose owner was
// cancelled before computing. The call is marked abandoned, so waiters
// sharing it retry resolution under their own contexts instead of
// inheriting the owner's cancellation.
func (e *Engine) abandon(job Job, key string, c *call, err error) (Result, error, Source) {
	c.err = err
	c.abandoned = true
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)
	return e.cancel(job, err)
}

// compute resolves a job the expensive way: persistent store, then the
// simulator (persisting the fresh result best-effort).
func (e *Engine) compute(job Job) (Result, error, Source) {
	fp, addressable := "", false
	if e.store != nil {
		fp, addressable = job.Fingerprint()
	}
	if addressable {
		if r, ok := e.store.Get(fp, job); ok {
			e.bump(func(s *Stats) { s.DiskHits++ })
			return r, nil, SourceDisk
		}
	}
	start := time.Time{}
	if e.simDur != nil {
		start = time.Now()
	}
	r, err := e.sim(job)
	if e.simDur != nil {
		e.simDur.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		return Result{}, err, SourceSimulated
	}
	e.bump(func(s *Stats) { s.Simulated++ })
	if addressable {
		if perr := e.store.Put(fp, job, r); perr != nil {
			e.bump(func(s *Stats) { s.DiskErrors++ })
		}
	}
	return r, nil, SourceSimulated
}

// finish accounts a resolved job and reports progress. The increment and
// the callback happen under one lock so Done is monotonic across events.
func (e *Engine) finish(job Job, src Source) {
	if e.progress == nil {
		e.resolved.Add(1)
		return
	}
	e.progMu.Lock()
	defer e.progMu.Unlock()
	e.progress(Progress{
		Done:   int(e.resolved.Add(1)),
		Total:  int(e.total.Load()),
		Job:    job,
		Source: src,
	})
}

// ResultAll resolves a batch of jobs concurrently (bounded by the worker
// pool) and returns their results in input order. Duplicate jobs in the
// batch are simulated once. On failure the first error in input order is
// returned alongside the partial results.
func (e *Engine) ResultAll(jobs []Job) ([]Result, error) {
	return e.ResultAllCtx(context.Background(), jobs, nil)
}

// ResultAllProgress resolves a batch like ResultAll while additionally
// invoking progress once per resolved job with Done/Total scoped to this
// batch (Total is fixed at len(jobs); Done reaches Total exactly when the
// batch completes). Batch progress is independent of — and in addition
// to — the engine-wide Config.Progress callback, so each submitter of a
// shared engine can track its own batch. Invocations are serialized per
// batch.
func (e *Engine) ResultAllProgress(jobs []Job, progress func(Progress)) ([]Result, error) {
	return e.ResultAllCtx(context.Background(), jobs, progress)
}

// ResultAllCtx is ResultAllProgress honoring ctx: once ctx is cancelled,
// jobs that have not claimed a worker slot resolve promptly to ctx.Err()
// while in-flight jobs finish (and persist), and the first error in input
// order — a context error, under cancellation — is returned alongside
// the partial results.
func (e *Engine) ResultAllCtx(ctx context.Context, jobs []Job, progress func(Progress)) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	done := 0
	e.ResultStream(ctx, jobs, func(i int, r Result, err error, src Source) {
		results[i], errs[i] = r, err
		if progress != nil {
			done++
			progress(Progress{Done: done, Total: len(jobs), Job: jobs[i], Source: src})
		}
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ResultStream resolves a batch of jobs concurrently (bounded by the
// worker pool), delivering each result through emit as it resolves — in
// completion order, not input order; i is the job's input index. Emit
// invocations are serialized, so callers may update shared state without
// locking. ResultStream returns once every job has been emitted.
//
// Unless batching is disabled, co-batchable jobs of the call — same
// benchmark, warmup and measured instruction count, distinct
// configurations — are simulated by the lockstep batch kernel: K
// machines stepped side by side off a single trace pass on one worker
// slot. Results, store writes, fingerprints and manifests are
// bit-identical to independent resolution; only Stats.Batched and the
// batch metrics record the difference.
//
// Cancellation semantics match ResultAllCtx: after ctx is cancelled,
// unscheduled jobs emit promptly with ctx.Err() and SourceCanceled while
// in-flight jobs finish and persist, so the store stays consistent and a
// warm rerun completes only the remainder.
func (e *Engine) ResultStream(ctx context.Context, jobs []Job, emit func(i int, r Result, err error, src Source)) {
	var wg sync.WaitGroup
	var emitMu sync.Mutex
	semit := func(i int, r Result, err error, src Source) {
		if emit != nil {
			emitMu.Lock()
			emit(i, r, err, src)
			emitMu.Unlock()
		}
	}
	single := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err, src := e.resolve(ctx, jobs[i])
			semit(i, r, err, src)
		}()
	}
	if !e.batch {
		for i := range jobs {
			single(i)
		}
		wg.Wait()
		return
	}
	groups, singles, dups := batchPlan(jobs)
	for _, i := range singles {
		single(i)
	}
	// Within-call duplicates resolve through the normal path: they find
	// their twin in flight (or already cached) and account as Shared or
	// a cache hit, exactly as concurrent identical submissions do today.
	for i := range dups {
		single(i)
	}
	for _, g := range groups {
		wg.Add(1)
		go func(g []int) {
			defer wg.Done()
			e.resolveBatch(ctx, jobs, g, semit)
		}(g)
	}
	wg.Wait()
}

// BatchGroups returns how many lockstep batch groups the engine has run —
// the number of shared trace passes that replaced per-job ones.
func (e *Engine) BatchGroups() int64 { return e.batchGroups.Load() }

// BatchWarmupSkips returns how many lockstep groups found a recorded
// warmup checkpoint and bulk-materialized their warmup trace prefix
// instead of re-reading it incrementally.
func (e *Engine) BatchWarmupSkips() int64 { return e.batchWarmupSkips.Load() }
