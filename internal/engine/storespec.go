package engine

import (
	"fmt"
	"strings"
	"time"

	"distiq/internal/blobstore"
)

// Store specs are the one-line backend selection syntax shared by every
// front end's -store flag and by distiqd:
//
//	fs:DIR                 filesystem store rooted at DIR
//	mem                    in-memory store (process-local)
//	http://HOST[/PREFIX]   HTTP blob store (minimal S3-like GET/PUT/HEAD)
//	https://HOST[/PREFIX]  same, over TLS
//	tier:SPEC,SPEC,...     read-through tiers, fastest first
//	batch:SPEC             write-behind group-commit batching over SPEC
//
// An http(s) backend accepts one optional query parameter,
// ?timeout=DURATION, bounding each blob exchange end to end (default
// blobstore.DefaultTimeout; 0 disables the bound). batch: may only be
// the outermost wrapper and tier: does not nest; the legacy -cache-dir
// DIR flag is an alias for fs:DIR.

// ParseStoreSpec validates a store spec's syntax and returns the fs
// directories it names (so front ends can run their directory checks
// before anything opens). An empty spec is valid and names no store.
func ParseStoreSpec(spec string) (fsDirs []string, err error) {
	if spec == "" {
		return nil, nil
	}
	rest := strings.TrimPrefix(spec, "batch:")
	if rest == "" {
		return nil, fmt.Errorf("store spec %q: batch: needs a backend to wrap", spec)
	}
	for _, part := range splitTiers(rest) {
		dirs, err := parseLeaf(part)
		if err != nil {
			return nil, err
		}
		fsDirs = append(fsDirs, dirs...)
	}
	return fsDirs, nil
}

// splitTiers returns a tier: spec's comma-separated levels, or the spec
// itself when it is a single backend.
func splitTiers(spec string) []string {
	levels, ok := strings.CutPrefix(spec, "tier:")
	if !ok {
		return []string{spec}
	}
	return strings.Split(levels, ",")
}

// parseLeaf validates one non-composite backend spec.
func parseLeaf(spec string) (fsDirs []string, err error) {
	switch {
	case spec == "mem":
		return nil, nil
	case strings.HasPrefix(spec, "fs:"):
		dir := strings.TrimPrefix(spec, "fs:")
		if dir == "" {
			return nil, fmt.Errorf("store spec %q: fs: needs a directory", spec)
		}
		return []string{dir}, nil
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		base, _, err := splitHTTPSpec(spec)
		if err != nil {
			return nil, err
		}
		if strings.TrimSuffix(base[strings.Index(base, "://")+3:], "/") == "" {
			return nil, fmt.Errorf("store spec %q: URL needs a host", spec)
		}
		return nil, nil
	case strings.HasPrefix(spec, "tier:"):
		return nil, fmt.Errorf("store spec %q: tier: does not nest", spec)
	case strings.HasPrefix(spec, "batch:"):
		return nil, fmt.Errorf("store spec %q: batch: must be the outermost wrapper", spec)
	}
	return nil, fmt.Errorf("unknown store spec %q (want fs:DIR, mem, http(s)://URL, tier:..., batch:...)", spec)
}

// OpenStore builds the ResultStore a spec names. An empty spec returns
// nil (no persistent store). The caller owns the returned store and must
// Close it — for a batch: spec that is what flushes the final group.
func OpenStore(spec string) (ResultStore, error) {
	if spec == "" {
		return nil, nil
	}
	if _, err := ParseStoreSpec(spec); err != nil {
		return nil, err
	}
	rest, batched := strings.CutPrefix(spec, "batch:")
	parts := splitTiers(rest)
	levels := make([]ResultStore, len(parts))
	for i, part := range parts {
		levels[i] = openLeaf(part)
	}
	store := levels[0]
	if len(levels) > 1 {
		store = NewTiered(levels...)
	}
	if batched {
		store = NewBatcher(store, BatcherConfig{})
	}
	return store, nil
}

// openLeaf builds one already-validated non-composite backend.
func openLeaf(spec string) ResultStore {
	switch {
	case spec == "mem":
		return NewMemStore()
	case strings.HasPrefix(spec, "fs:"):
		return NewStore(strings.TrimPrefix(spec, "fs:"))
	}
	base, timeout, _ := splitHTTPSpec(spec) // validated by ParseStoreSpec
	return NewHTTPStore(base, blobstore.NewHTTPClient(timeout))
}

// splitHTTPSpec splits an http(s) backend spec into its base URL and
// per-request timeout. The only recognized query parameter is
// ?timeout=DURATION (Go duration syntax; 0 disables the bound); absent,
// the timeout is blobstore.DefaultTimeout.
func splitHTTPSpec(spec string) (base string, timeout time.Duration, err error) {
	base, query, found := strings.Cut(spec, "?")
	if !found {
		return base, blobstore.DefaultTimeout, nil
	}
	val, ok := strings.CutPrefix(query, "timeout=")
	if !ok || val == "" || strings.ContainsAny(val, "&=") {
		return "", 0, fmt.Errorf("store spec %q: the only URL parameter is ?timeout=DURATION", spec)
	}
	d, perr := time.ParseDuration(val)
	if perr != nil || d < 0 {
		return "", 0, fmt.Errorf("store spec %q: bad timeout %q (want a non-negative Go duration, e.g. 30s)", spec, val)
	}
	return base, d, nil
}
