package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distiq/internal/core"
)

// cancelJobs builds n distinct, store-addressable jobs.
func cancelJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Bench:  fmt.Sprintf("bench%03d", i),
			Config: core.Baseline64(),
			Opt:    Options{Warmup: 1, Instructions: 100},
		}
	}
	return jobs
}

// slowStub returns a stub simulator that takes roughly d per job and
// counts its invocations.
func slowStub(d time.Duration, calls *atomic.Int64) func(Job) (Result, error) {
	return func(j Job) (Result, error) {
		calls.Add(1)
		time.Sleep(d)
		var r Result
		r.Benchmark = j.Bench
		r.Config = j.Config.Name
		r.Insts = j.Opt.Instructions
		r.Cycles = 42
		return r, nil
	}
}

// TestResultCtxCanceledBeforeStart: a request arriving with an already
// cancelled context never simulates and returns the context error.
func TestResultCtxCanceledBeforeStart(t *testing.T) {
	var calls atomic.Int64
	e := New(Config{Workers: 1, Simulate: slowStub(0, &calls)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ResultCtx(ctx, cancelJobs(1)[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("simulator ran %d times for a pre-cancelled request", calls.Load())
	}
	st := e.Stats()
	if st.Requested != 1 || st.Canceled != 1 {
		t.Fatalf("stats = %+v, want Requested=1 Canceled=1", st)
	}
}

// TestCancelMidSweepConsistentStats is the regression test for stats
// snapshots taken mid-cancel: a 100-point sweep is cancelled at a random
// moment while another goroutine continuously snapshots Stats and checks
// the documented identity. Run under -race in CI (the cancellation gate).
func TestCancelMidSweepConsistentStats(t *testing.T) {
	var calls atomic.Int64
	e := New(Config{Workers: 4, Simulate: slowStub(200*time.Microsecond, &calls)})
	jobs := cancelJobs(100)

	ctx, cancel := context.WithCancel(context.Background())
	stop := make(chan struct{})
	var snapshots atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.Stats()
			snapshots.Add(1)
			resolved := st.Simulated + st.MemoryHits + st.DiskHits + st.Shared + st.Canceled
			if resolved > st.Requested {
				t.Errorf("inconsistent snapshot: resolved %d > requested %d (%+v)",
					resolved, st.Requested, st)
				return
			}
			for _, c := range []int64{st.Requested, st.Simulated, st.MemoryHits,
				st.DiskHits, st.Shared, st.Canceled, st.DiskErrors} {
				if c < 0 {
					t.Errorf("negative counter in snapshot %+v", st)
					return
				}
			}
		}
	}()

	// Cancel at a random moment while the sweep is in flight.
	go func() {
		time.Sleep(time.Duration(rand.Intn(4000)) * time.Microsecond)
		cancel()
	}()

	var emitted, canceled atomic.Int64
	e.ResultStream(ctx, jobs, func(i int, r Result, err error, src Source) {
		emitted.Add(1)
		if src == SourceCanceled {
			canceled.Add(1)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("job %d: canceled source with err = %v", i, err)
			}
		}
	})
	close(stop)
	wg.Wait()

	if emitted.Load() != int64(len(jobs)) {
		t.Fatalf("emitted %d of %d jobs", emitted.Load(), len(jobs))
	}
	st := e.Stats()
	resolved := st.Simulated + st.MemoryHits + st.DiskHits + st.Shared + st.Canceled
	if resolved != st.Requested || st.Requested != int64(len(jobs)) {
		t.Fatalf("final stats inconsistent: %+v (resolved %d)", st, resolved)
	}
	if st.Simulated != calls.Load() {
		t.Fatalf("Simulated = %d, stub ran %d times", st.Simulated, calls.Load())
	}
	if snapshots.Load() == 0 {
		t.Fatal("watcher took no snapshots")
	}
	t.Logf("cancelled sweep: %d simulated, %d canceled, %d snapshots",
		st.Simulated, st.Canceled, snapshots.Load())
}

// TestCancelKeepsStoreConsistentWarmRerunCompletesRemainder is the
// acceptance scenario: cancelling a sweep mid-flight leaves the on-disk
// store uncorrupted, and a warm rerun simulates only the points the
// cancelled run never finished — zero re-simulations for completed ones.
func TestCancelKeepsStoreConsistentWarmRerunCompletesRemainder(t *testing.T) {
	dir := t.TempDir()
	jobs := cancelJobs(60)

	var firstCalls atomic.Int64
	first := New(Config{Workers: 4, CacheDir: dir, Simulate: slowStub(300*time.Microsecond, &firstCalls)})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := first.ResultAllCtx(ctx, jobs, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep err = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancelled sweep took %v; cancellation must return promptly", waited)
	}
	st1 := first.Stats()
	if st1.Canceled == 0 {
		t.Skip("cancellation landed after the sweep finished; nothing to verify")
	}
	if st1.DiskErrors != 0 {
		t.Fatalf("first run reported %d disk errors", st1.DiskErrors)
	}

	// Warm rerun through a fresh engine sharing only the on-disk store:
	// every point the first run completed must be a disk hit.
	var secondCalls atomic.Int64
	second := New(Config{Workers: 4, CacheDir: dir, Simulate: slowStub(0, &secondCalls)})
	results, err := second.ResultAll(jobs)
	if err != nil {
		t.Fatalf("warm rerun failed: %v", err)
	}
	for i, r := range results {
		if r.Benchmark != jobs[i].Bench {
			t.Fatalf("result %d is for %q, want %q", i, r.Benchmark, jobs[i].Bench)
		}
	}
	st2 := second.Stats()
	if got, want := st2.Simulated, int64(len(jobs))-st1.Simulated; got != want {
		t.Fatalf("warm rerun simulated %d, want %d (first run completed %d of %d)",
			got, want, st1.Simulated, len(jobs))
	}
	if st2.DiskHits != st1.Simulated {
		t.Fatalf("warm rerun disk hits = %d, want %d", st2.DiskHits, st1.Simulated)
	}
}

// TestWaiterSurvivesOwnersCancellation: when the owner of an in-flight
// call is cancelled before computing, a waiter with a live context must
// retry and obtain a real result — never inherit the owner's
// context.Canceled (two sweeps sharing one engine must not poison each
// other).
func TestWaiterSurvivesOwnersCancellation(t *testing.T) {
	gate := make(chan struct{})
	blockerIn := make(chan struct{})
	var calls atomic.Int64
	e := New(Config{Workers: 1, Simulate: func(j Job) (Result, error) {
		if j.Bench == "blocker" {
			close(blockerIn)
			<-gate
		}
		calls.Add(1)
		var r Result
		r.Benchmark = j.Bench
		return r, nil
	}})

	// Occupy the only worker slot so the owner below queues on the
	// semaphore, where cancellation abandons (not computes) its call.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		if _, err := e.Result(Job{Bench: "blocker", Config: core.Baseline64(),
			Opt: Options{Warmup: 1, Instructions: 1}}); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()

	<-blockerIn // the blocker holds the only slot from here on

	job := cancelJobs(1)[0]
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerDone := make(chan error, 1)
	go func() {
		_, err := e.ResultCtx(ownerCtx, job)
		ownerDone <- err
	}()
	// Let the owner register in-flight and block on the semaphore, then
	// attach a waiter with a live context.
	time.Sleep(5 * time.Millisecond)
	waiterDone := make(chan error, 1)
	var waiterRes Result
	go func() {
		r, err := e.Result(job)
		waiterRes = r
		waiterDone <- err
	}()
	time.Sleep(5 * time.Millisecond)

	cancelOwner()
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	close(gate) // free the worker slot for the waiter's retry
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter inherited the owner's cancellation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never completed after the owner's cancellation")
	}
	if waiterRes.Benchmark != job.Bench {
		t.Fatalf("waiter result = %+v, want a real result for %s", waiterRes, job.Bench)
	}
	<-blockerDone
}

// TestCancelWaiterAbandonsInflight: a requester waiting on another
// requester's in-flight job honors its own context without disturbing the
// computation it was waiting on.
func TestCancelWaiterAbandonsInflight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	e := New(Config{Workers: 2, Simulate: func(j Job) (Result, error) {
		close(started)
		<-release
		return Result{}, nil
	}})
	job := cancelJobs(1)[0]

	ownerDone := make(chan error, 1)
	go func() {
		_, err := e.Result(job)
		ownerDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := e.ResultCtx(ctx, job)
		waiterDone <- err
	}()
	// Give the waiter a moment to join the in-flight call, then cancel it.
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}

	close(release)
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner err = %v", err)
	}
	st := e.Stats()
	if st.Simulated != 1 || st.Canceled != 1 {
		t.Fatalf("stats = %+v, want Simulated=1 Canceled=1", st)
	}
}
