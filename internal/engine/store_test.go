package engine

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distiq/internal/core"
	"distiq/internal/power"
)

func TestFingerprintStableAndDistinct(t *testing.T) {
	a := quickJob("swim", core.Baseline64())
	fp1, ok := a.Fingerprint()
	if !ok || len(fp1) != 64 {
		t.Fatalf("fingerprint = %q, %v", fp1, ok)
	}
	fp2, _ := quickJob("swim", core.Baseline64()).Fingerprint()
	if fp1 != fp2 {
		t.Fatal("fingerprint not stable for identical jobs")
	}
	distinct := []Job{
		quickJob("gzip", core.Baseline64()),
		quickJob("swim", core.MBDistr()),
		{Bench: "swim", Config: core.Baseline64(), Opt: Options{Warmup: 1000, Instructions: 5000}},
	}
	for i, j := range distinct {
		if fp, _ := j.Fingerprint(); fp == fp1 {
			t.Fatalf("job %d collides with baseline fingerprint", i)
		}
	}
	// Same name, different structure must differ too (iqsim renames).
	renamed := core.MixBUFFCfg(8, 8, 8, 16, 4)
	renamed.Name = "IQ_64_64"
	if fp, _ := quickJob("swim", renamed).Fingerprint(); fp == fp1 {
		t.Fatal("structural difference not captured by fingerprint")
	}
}

func TestFingerprintRefusesCustomSchemes(t *testing.T) {
	cfg := core.Baseline64()
	cfg.FP.Custom = func(core.DomainConfig, core.Options) (core.Scheme, error) { return nil, nil }
	if _, ok := quickJob("swim", cfg).Fingerprint(); ok {
		t.Fatal("custom scheme config must not be content-addressable")
	}
	// But it still has a usable in-process key.
	if quickJob("swim", cfg).Key() == "" {
		t.Fatal("custom job key empty")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(t.TempDir())
	job := quickJob("swim", core.IFDistr())
	fp, _ := job.Fingerprint()

	var r Result
	r.Benchmark = "swim"
	r.Config = "IF_distr"
	r.Insts = 4000
	r.Cycles = 1717
	r.IQEnergy = 123456.789012345
	r.Stats.Committed = 4000
	r.Stats.Cycles = 1717
	r.Stats.ByClass[0] = 42
	r.IntBreakdown = power.Breakdown{"fifo": 1.25, "select": 2.5}
	r.FPBreakdown = power.Breakdown{"fifo": 3.0625}
	r.Breakdown = power.Breakdown{"fifo": 4.3125, "select": 2.5}

	if err := s.Put(fp, job, r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp, job)
	if !ok {
		t.Fatal("stored result not found")
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, r)
	}
}

func TestStoreRejectsMismatchAndGarbage(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	job := quickJob("swim", core.Baseline64())
	fp, _ := job.Fingerprint()
	var r Result
	r.Benchmark = "swim"
	if err := s.Put(fp, job, r); err != nil {
		t.Fatal(err)
	}
	// A job with different identity must miss even under the same file.
	other := quickJob("gzip", core.Baseline64())
	if _, ok := s.Get(fp, other); ok {
		t.Fatal("mismatched identity served from store")
	}
	// Corrupt entries are misses, not errors.
	if err := os.WriteFile(s.path(fp), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fp, job); ok {
		t.Fatal("corrupt entry served")
	}
	// Missing files are misses.
	if _, ok := s.Get("0000", job); ok {
		t.Fatal("missing entry served")
	}
}

func TestEngineDiskStoreCrossProcessReuse(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{
		quickJob("swim", core.Baseline64()),
		quickJob("gzip", core.MBDistr()),
	}

	var callsA sync.Map
	a := New(Config{Workers: 2, CacheDir: dir, Simulate: countingSim(&callsA, 0)})
	wantRes, err := a.ResultAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := totalCalls(&callsA); n != 2 {
		t.Fatalf("first engine simulated %d, want 2", n)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 2 {
		t.Fatalf("store files = %v, %v", files, err)
	}

	// A second engine (a new process, in effect) must serve both jobs
	// from disk and simulate nothing.
	var refuse atomic.Int64
	b := New(Config{Workers: 2, CacheDir: dir, Simulate: func(Job) (Result, error) {
		refuse.Add(1)
		return Result{}, nil
	}})
	got, err := b.ResultAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if refuse.Load() != 0 {
		t.Fatalf("second engine simulated %d jobs, want 0", refuse.Load())
	}
	if !reflect.DeepEqual(got, wantRes) {
		t.Fatal("disk-served results differ from originals")
	}
	st := b.Stats()
	if st.DiskHits != 2 || st.Simulated != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineCustomConfigSkipsStore(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Baseline64()
	cfg.Name = "custom"
	cfg.FP.Custom = func(d core.DomainConfig, o core.Options) (core.Scheme, error) {
		d.Custom = nil
		return core.New(d, o)
	}
	var calls sync.Map
	e := New(Config{Workers: 1, CacheDir: dir, Simulate: countingSim(&calls, 0)})
	if _, err := e.Result(quickJob("swim", cfg)); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(files) != 0 {
		t.Fatalf("custom-scheme result persisted: %v", files)
	}
	// In-memory memoization still applies.
	if _, err := e.Result(quickJob("swim", cfg)); err != nil {
		t.Fatal(err)
	}
	if n := totalCalls(&calls); n != 1 {
		t.Fatalf("simulated %d, want 1", n)
	}
}

// TestStoreSweepsStaleTemps is the temp-file leak regression: a crash
// between CreateTemp and Rename used to orphan ".FP.tmp*" files forever.
// Opening a store must sweep temps older than the staleness cutoff while
// leaving fresh ones (a live writer in another process) alone.
func TestStoreSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".deadbeef.tmp123")
	fresh := filepath.Join(dir, ".cafebabe.tmp456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpStaleAfter)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	// A real entry must never be swept, whatever its age.
	s := NewStore(dir)
	job := quickJob("swim", core.Baseline64())
	fp, _ := job.Fingerprint()
	if err := s.Put(fp, job, Result{}); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(s.path(fp), old, old); err != nil {
		t.Fatal(err)
	}

	NewStore(dir) // the sweep under test

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived the sweep (err=%v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp was swept: %v", err)
	}
	if _, err := os.Stat(s.path(fp)); err != nil {
		t.Fatalf("real entry was swept: %v", err)
	}
}
