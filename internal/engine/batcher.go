package engine

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distiq/internal/obs"
)

// BatchEntry is one pre-encoded store entry in a group commit.
type BatchEntry struct {
	Fingerprint string
	Data        []byte
}

// BatchWriter is optionally implemented by backends that can commit a
// group of entries more cheaply than entry-at-a-time Puts (the FS store
// amortizes one directory fsync across the group). Entries must be
// committed independently: a failure on one entry must not tear or roll
// back the others.
type BatchWriter interface {
	PutBatch(entries []BatchEntry) error
}

// BatcherConfig tunes a write-behind Batcher. Zero values select the
// defaults.
type BatcherConfig struct {
	// MaxEntries flushes a group once this many entries are queued
	// (default 64). Each group commit is at most this large.
	MaxEntries int
	// MaxBytes flushes once the queued entries reach this many encoded
	// bytes (default 1 MiB).
	MaxBytes int
	// Interval bounds how long a queued entry waits before a flush even
	// under low write rates (default 200ms).
	Interval time.Duration
	// MaxPending bounds the queue; a Put over the bound blocks until the
	// flusher drains (backpressure, never unbounded memory; default
	// 4096).
	MaxPending int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 64
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1 << 20
	}
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4096
	}
	return c
}

// Batcher is a write-behind ResultStore wrapper that group-commits
// results: Put encodes the entry, parks it on a bounded queue and
// returns immediately; a background flusher commits queued entries in
// groups — when the group size or byte thresholds are reached, when the
// flush interval elapses, or on Close — amortizing fsyncs and HTTP
// round-trips across the group.
//
// Reads are read-your-writes: Get, Has and Raw consult the pending
// queue before the base store, so single-flight deduplication and
// warm-rerun zero-simulation semantics are unchanged by batching, and a
// manifest built while writes are still queued verifies against the
// store once they land (the queued bytes are the exact canonical entry
// bytes). Entries whose flush fails are dropped and counted; Close
// drains the queue and reports any loss.
type Batcher struct {
	base ResultStore
	cfg  BatcherConfig

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when queue space frees or inflight hits 0
	pending map[string][]byte
	// queue holds the entries awaiting a group commit; queued indexes
	// them by fingerprint so a re-Put of a queued fingerprint coalesces
	// in place instead of appending a duplicate that would group-commit
	// the same fingerprint twice. Entries leave queued the moment their
	// group is taken in flight; pending keeps serving reads until the
	// commit lands.
	queue    []*BatchEntry
	queued   map[string]*BatchEntry
	queuedB  int
	inflight int
	closed   bool
	lastErr  error

	kick chan struct{}
	quit chan struct{}
	done chan struct{}

	enqueued atomic.Int64
	flushed  atomic.Int64
	flushes  atomic.Int64
	lost     atomic.Int64
	deduped  atomic.Int64
}

// NewBatcher wraps base with write-behind group commits. base must be
// able to store raw canonical entry bytes (every engine backend can).
func NewBatcher(base ResultStore, cfg BatcherConfig) *Batcher {
	if _, ok := base.(RawPutter); !ok {
		if _, ok := base.(BatchWriter); !ok {
			panic(fmt.Sprintf("engine: NewBatcher: %T stores no raw entries", base))
		}
	}
	b := &Batcher{
		base:    base,
		cfg:     cfg.withDefaults(),
		pending: make(map[string][]byte),
		queued:  make(map[string]*BatchEntry),
		kick:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	go b.run()
	return b
}

// Base returns the wrapped store.
func (b *Batcher) Base() ResultStore { return b.base }

// Get serves fp from the pending queue first (read-your-writes), then
// the base store.
func (b *Batcher) Get(fp string, job Job) (Result, bool) {
	b.mu.Lock()
	data, ok := b.pending[fp]
	b.mu.Unlock()
	if ok {
		return decodeEntry(data, job)
	}
	return b.base.Get(fp, job)
}

// Has reports whether fp is queued or stored.
func (b *Batcher) Has(fp string) bool {
	b.mu.Lock()
	_, ok := b.pending[fp]
	b.mu.Unlock()
	return ok || b.base.Has(fp)
}

// Raw returns the queued or stored entry bytes for fp.
func (b *Batcher) Raw(fp string) ([]byte, error) {
	b.mu.Lock()
	data, ok := b.pending[fp]
	b.mu.Unlock()
	if ok {
		return append([]byte(nil), data...), nil
	}
	return b.base.Raw(fp)
}

// Put encodes the entry eagerly (so encoding failures surface to the
// caller) and parks it for the next group commit. Put blocks only when
// the queue is at MaxPending — backpressure, never unbounded memory —
// and fails once the batcher is closed.
func (b *Batcher) Put(fp string, job Job, r Result) error {
	data, err := entryBytes(job, r)
	if err != nil {
		return fmt.Errorf("engine: encode result: %w", err)
	}
	return b.PutRaw(fp, data)
}

// PutRaw parks pre-encoded entry bytes for the next group commit.
// Duplicate fingerprints coalesce: a re-Put while the fingerprint is
// still queued updates the queued entry in place, and a re-Put of
// identical bytes while the entry is in flight is dropped (the commit
// under way already writes exactly these bytes) — either way one Put's
// worth of work reaches the base store, never two group commits of the
// same fingerprint.
func (b *Batcher) PutRaw(fp string, data []byte) error {
	cp := append([]byte(nil), data...)
	b.mu.Lock()
	for {
		if b.closed {
			b.mu.Unlock()
			return fmt.Errorf("engine: batcher: closed")
		}
		if e, ok := b.queued[fp]; ok {
			if !bytes.Equal(e.Data, cp) {
				b.queuedB += len(cp) - len(e.Data)
				e.Data = cp
				b.pending[fp] = cp
			}
			b.mu.Unlock()
			b.deduped.Add(1)
			return nil
		}
		if prev, ok := b.pending[fp]; ok && bytes.Equal(prev, cp) {
			// In flight with the same bytes: the running commit is this
			// write.
			b.mu.Unlock()
			b.deduped.Add(1)
			return nil
		}
		if len(b.queue) < b.cfg.MaxPending {
			break
		}
		b.kickLocked()
		b.cond.Wait()
	}
	e := &BatchEntry{Fingerprint: fp, Data: cp}
	b.pending[fp] = cp
	b.queue = append(b.queue, e)
	b.queued[fp] = e
	b.queuedB += len(cp)
	full := len(b.queue) >= b.cfg.MaxEntries || b.queuedB >= b.cfg.MaxBytes
	if full {
		b.kickLocked()
	}
	b.mu.Unlock()
	b.enqueued.Add(1)
	return nil
}

// kickLocked wakes the flusher without blocking; the caller holds b.mu.
func (b *Batcher) kickLocked() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// run is the background flusher: it commits on kicks (thresholds), on
// the interval tick, and once more on Close.
func (b *Batcher) run() {
	defer close(b.done)
	ticker := time.NewTicker(b.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.quit:
			b.flushAll()
			return
		case <-b.kick:
		case <-ticker.C:
		}
		b.flushAll()
	}
}

// flushAll drains the queue in groups of at most MaxEntries, each group
// committed as one batch.
func (b *Batcher) flushAll() {
	for b.flushGroup() {
	}
}

// flushGroup takes one group off the queue and commits it; it reports
// whether the queue may hold more. Queue space frees the moment the
// group is taken (so blocked Puts resume during the commit), while the
// pending read-view keeps serving the group's entries until they are
// durable in the base store.
func (b *Batcher) flushGroup() bool {
	b.mu.Lock()
	if len(b.queue) == 0 {
		b.mu.Unlock()
		return false
	}
	n := len(b.queue)
	if n > b.cfg.MaxEntries {
		n = b.cfg.MaxEntries
	}
	// Snapshot the group by value under the lock: once an entry leaves
	// the queued index a concurrent re-Put appends a fresh entry instead
	// of mutating this one, so the commit below reads stable bytes.
	group := make([]BatchEntry, n)
	for i, e := range b.queue[:n] {
		group[i] = *e
		delete(b.queued, e.Fingerprint)
		b.queuedB -= len(e.Data)
	}
	b.queue = append([]*BatchEntry(nil), b.queue[n:]...)
	more := len(b.queue) > 0
	b.inflight += n
	b.cond.Broadcast()
	b.mu.Unlock()

	committed, err := b.commit(group)
	b.flushes.Add(1)
	b.flushed.Add(int64(committed))
	if lost := len(group) - committed; lost > 0 {
		b.lost.Add(int64(lost))
	}

	b.mu.Lock()
	if err != nil {
		b.lastErr = err
	}
	// Drop the group from the read-view regardless of outcome: committed
	// entries are now served by the base store, and lost entries must
	// read as misses so a rerun recomputes them. A fingerprint that was
	// re-queued with new bytes while this group was in flight keeps its
	// fresher pending view — the newer entry still awaits its own commit.
	for _, e := range group {
		if _, requeued := b.queued[e.Fingerprint]; !requeued {
			delete(b.pending, e.Fingerprint)
		}
	}
	b.inflight -= len(group)
	b.cond.Broadcast()
	b.mu.Unlock()
	return more
}

// commit writes one group to the base store and reports how many entries
// actually landed. A BatchWriter base gets the whole group at once (one
// amortized fsync); otherwise entries are written one by one over the
// base's RawPutter (an HTTP base still amortizes, via one keep-alive
// connection).
func (b *Batcher) commit(group []BatchEntry) (int, error) {
	if bw, ok := b.base.(BatchWriter); ok {
		err := bw.PutBatch(group)
		if err == nil {
			return len(group), nil
		}
		// Count what actually landed; PutBatch commits independently.
		committed := 0
		for _, e := range group {
			if b.base.Has(e.Fingerprint) {
				committed++
			}
		}
		return committed, err
	}
	rp := b.base.(RawPutter)
	committed := 0
	var firstErr error
	for _, e := range group {
		if err := rp.PutRaw(e.Fingerprint, e.Data); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		committed++
	}
	return committed, firstErr
}

// Flush blocks until every entry queued before the call is committed to
// the base store (or counted lost).
func (b *Batcher) Flush() {
	b.mu.Lock()
	for len(b.queue) > 0 || b.inflight > 0 {
		if len(b.queue) > 0 {
			// Commit from this goroutine instead of waiting out the
			// flusher's tick.
			b.mu.Unlock()
			b.flushAll()
			b.mu.Lock()
			continue
		}
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Lost reports how many entries have been dropped by failed flushes.
func (b *Batcher) Lost() int64 { return b.lost.Load() }

// Close drains the queue, stops the flusher and closes the base store.
// If any entry was lost to a failed flush — now or earlier — Close
// reports it, so a caller that cares about durability finds out before
// trusting a warm rerun.
func (b *Batcher) Close() error {
	b.mu.Lock()
	alreadyClosed := b.closed
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	if !alreadyClosed {
		close(b.quit)
	}
	<-b.done
	b.Flush()

	var err error
	if lost := b.lost.Load(); lost > 0 {
		b.mu.Lock()
		lastErr := b.lastErr
		b.mu.Unlock()
		err = fmt.Errorf("engine: batcher: %d results lost to failed flushes (last: %v)", lost, lastErr)
	}
	if cerr := b.base.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Instrument registers the batcher's counters on reg, plus the base
// store's own instruments if it has any (a batched tier exposes both
// families).
func (b *Batcher) Instrument(reg *obs.Registry) {
	count := func(a *atomic.Int64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	reg.CounterFunc("distiq_store_batch_queued_total",
		"Result writes accepted onto the write-behind queue.", count(&b.enqueued))
	reg.CounterFunc("distiq_store_batch_flushed_total",
		"Queued results committed to the base store.", count(&b.flushed))
	reg.CounterFunc("distiq_store_batch_flushes_total",
		"Group commits performed.", count(&b.flushes))
	reg.CounterFunc("distiq_store_batch_lost_total",
		"Queued results dropped by failed flushes.", count(&b.lost))
	reg.CounterFunc("distiq_store_batch_deduped_total",
		"Duplicate-fingerprint writes coalesced instead of queued.", count(&b.deduped))
	reg.GaugeFunc("distiq_store_batch_pending",
		"Results queued but not yet committed.",
		func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(len(b.queue) + b.inflight)
		})
	if in, ok := b.base.(storeInstrumenter); ok {
		in.Instrument(reg)
	}
}

// compile-time interface checks.
var (
	_ ResultStore = (*Batcher)(nil)
	_ RawPutter   = (*Batcher)(nil)
)
