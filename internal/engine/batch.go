package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"distiq/internal/pipeline"
	"distiq/internal/trace"
)

// Lockstep batch simulation. Every job of a sweep that shares a
// (benchmark, warmup, measured-instructions) group replays the same
// dynamic trace region — the stream is a pure function of the benchmark —
// so instead of K workers each making their own pass over the cached
// records, the batch kernel builds K pipeline machines and steps them —
// always advancing the one whose trace cursor is furthest behind — off a
// single trace pass: one logical Next() per instruction, fanned out to
// each machine's fetch stage through a trace.Lockstep cursor group. Results are bit-identical to per-job
// Simulate (same records, same per-machine step sequence, same result
// assembly), which the equivalence suite and the golden-figure gates pin;
// only the trace-replay cost changes, from O(points) to O(benchmarks).

// batchQuantum is how many cycles a machine advances per scheduling
// turn. The kernel always runs the machine whose trace cursor is
// furthest behind, so a cursor can overtake the group's frontier by at
// most one turn's fetch — FetchWidth x batchQuantum instructions, a
// couple of megabytes of sliding window when the group is past the
// recording cap. Crucially the bound is independent of run length and
// of how unequal the group's IPCs are: a fast machine that leaps ahead
// simply is not scheduled again until the stragglers catch up (plain
// round-robin, by contrast, grants equal cycles, and drift would grow
// as the IPC gap times elapsed cycles). Within that ceiling, bigger
// turns are better: each machine's working set (cache models,
// predictors, queues) stays resident for the whole turn instead of
// being evicted by its siblings' every few hundred instructions, which
// is what makes batched sweep throughput match the per-job path inside
// the trace cache instead of trailing it.
const batchQuantum = 8192

// warmupMarks remembers, per (model, warmup) group, how much trace the
// group's warmup region consumed: the maximum cursor position observed
// at a machine's warmup boundary. Later batches of the same group
// bulk-materialize that prefix in one pass (Stream.EnsureRecorded)
// instead of re-reading it through incremental chunked extensions.
// Purely a prefetch hint — a stale or evicted mark costs nothing but
// the incremental path. The key carries the model's full structural
// identity (trace.ModelKey), not just its name: user-constructed models
// may reuse a name with different parameters, and a mark from a
// same-named different model would pre-materialize a wrong-sized
// prefix. Process-global on purpose — every engine draws streams from
// the same sharedTraces, so the marks describe the same streams.
var warmupMarks sync.Map // trace.ModelKey + "|w<warmup>" -> uint64

// warmupMarkKey renders a group's checkpoint key.
func warmupMarkKey(m trace.Model, warmup uint64) string {
	return fmt.Sprintf("%s|w%d", trace.ModelKey(m), warmup)
}

// batchRunInfo reports what one lockstep run did, for the engine's
// batch metrics.
type batchRunInfo struct {
	// warmupMarkUsed says a recorded warmup checkpoint pre-materialized
	// the group's warmup prefix.
	warmupMarkUsed bool
	// generated counts tail instructions generated past the stream's
	// recording cap — once for the whole group.
	generated uint64
	// maxWindow is the high-water length of the past-cap sliding window.
	maxWindow int
}

// batchPlan partitions a set of jobs for batch execution: groups holds
// index sets of co-batchable jobs (same BatchKey, two or more distinct
// Keys; one index per distinct Key, in input order), singles the indices
// that resolve on their own, and dups maps each within-group duplicate
// index to the group member index whose result it shares.
func batchPlan(jobs []Job) (groups [][]int, singles []int, dups map[int]int) {
	dups = make(map[int]int)
	byBatch := make(map[string]int) // BatchKey -> index into candidate list
	firstOf := make(map[string]int) // BatchKey|Key -> first index
	var candidates [][]int          // per BatchKey, distinct-key member indices
	for i, j := range jobs {
		bk := j.BatchKey()
		jk := bk + "\x00" + j.Key()
		if first, ok := firstOf[jk]; ok {
			dups[i] = first
			continue
		}
		firstOf[jk] = i
		gi, ok := byBatch[bk]
		if !ok {
			gi = len(candidates)
			byBatch[bk] = gi
			candidates = append(candidates, nil)
		}
		candidates[gi] = append(candidates[gi], i)
	}
	for _, c := range candidates {
		if len(c) >= 2 {
			groups = append(groups, c)
		} else {
			singles = append(singles, c...)
		}
	}
	return groups, singles, dups
}

// SimulateBatch runs a set of jobs, driving the members of each
// co-batchable group — same benchmark, warmup and measured instruction
// count, distinct configurations — in lockstep off a single trace pass,
// and the rest through Simulate. Results are returned in input order and
// are bit-identical to per-job Simulate calls; duplicate jobs within a
// group are simulated once. On failure the first error in input order is
// returned alongside the partial results (a failed job does not poison
// its group siblings).
func SimulateBatch(jobs []Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	groups, singles, dups := batchPlan(jobs)
	for _, g := range groups {
		batch := make([]Job, len(g))
		for k, i := range g {
			batch[k] = jobs[i]
		}
		rs, es, _ := lockstepGroup(batch)
		for k, i := range g {
			results[i], errs[i] = rs[k], es[k]
		}
	}
	for _, i := range singles {
		results[i], errs[i] = Simulate(jobs[i])
	}
	for i, first := range dups {
		results[i], errs[i] = results[first], errs[first]
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// lockstepGroup is the batch kernel: it simulates K jobs of one co-batch
// group side by side. Each machine follows exactly the step sequence a
// solo Simulate would give it — step until warmup instructions commit,
// reset measurement, step until the measured count commits — only the
// interleaving across machines (which cannot affect any machine's
// outcome; they share no mutable state) and the trace supply differ.
// Per-job errors are reported per slot so one invalid configuration does
// not fail its siblings.
func lockstepGroup(jobs []Job) ([]Result, []error, batchRunInfo) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	var info batchRunInfo

	// BatchKey carries the replication seed, so the whole group shares
	// one (possibly seed-perturbed) model and one trace pass.
	model, err := jobs[0].model()
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return results, errs, info
	}
	warmup, measured := jobs[0].Opt.Warmup, jobs[0].Opt.Instructions
	stream := sharedTraces.Stream(model)
	if mark, ok := warmupMarks.Load(warmupMarkKey(model, warmup)); ok {
		stream.EnsureRecorded(int(mark.(uint64)))
		info.warmupMarkUsed = true
	}

	type machine struct {
		p      *pipeline.Pipeline
		cursor *trace.LockstepReader
		warm   bool
		done   bool
		// idle guards against a wedged scheme, mirroring Run's check.
		idle          int
		lastCommitted uint64
	}
	ls := trace.NewLockstep(stream, len(jobs))
	ms := make([]*machine, len(jobs))
	live := 0
	for i, j := range jobs {
		cursor := ls.Reader(i)
		p, err := pipeline.New(j.PipelineConfig(), cursor)
		if err != nil {
			errs[i] = err
			cursor.Release()
			continue
		}
		ms[i] = &machine{p: p, cursor: cursor}
		live++
	}

	total := live
	warmDone, markPos := 0, uint64(0)
	for live > 0 {
		// Run the live machine whose trace cursor is furthest behind for
		// one quantum; see batchQuantum for why this bounds cursor drift
		// (and so the lockstep window) regardless of the group's IPC
		// spread.
		i := -1
		for j, c := range ms {
			if c == nil || c.done {
				continue
			}
			if i < 0 || c.cursor.Pos() < ms[i].cursor.Pos() {
				i = j
			}
		}
		m := ms[i]
		for q := 0; q < batchQuantum && !m.done; q++ {
			if !m.warm {
				if m.p.Committed() >= warmup {
					// This machine's warmup boundary: the same reset
					// Warmup performs, at the same commit count.
					m.p.BeginMeasurement()
					m.warm = true
					m.lastCommitted, m.idle = 0, 0
					if pos := m.cursor.Pos(); pos > markPos {
						markPos = pos
					}
					if warmDone++; warmDone == total {
						warmupMarks.LoadOrStore(warmupMarkKey(model, warmup), markPos)
					}
					continue
				}
			} else if m.p.Committed() >= measured {
				m.done = true
				m.cursor.Release()
				live--
				break
			}
			m.p.Step()
			if c := m.p.Committed(); c == m.lastCommitted {
				if m.idle++; m.idle > 200000 {
					panic(fmt.Sprintf("engine: batched machine %s/%s made no progress for %d cycles",
						jobs[i].Bench, jobs[i].Config.Name, m.idle))
				}
			} else {
				m.lastCommitted, m.idle = c, 0
			}
		}
	}

	for i, m := range ms {
		if m == nil {
			continue
		}
		results[i] = assemble(jobs[i], m.p)
	}
	info.generated = ls.Generated()
	info.maxWindow = ls.MaxWindow()
	return results, errs, info
}

// member is one engine-owned job of an in-flight batch group.
type member struct {
	idx int // index into the submitted job slice
	key string
	c   *call
}

// resolveBatch resolves one co-batchable group inside a batch call. The
// group's jobs are claimed single-flight style under one lock pass; jobs
// already cached or owned elsewhere fall back to the normal per-job path
// (preserving their usual accounting), the store is consulted per job,
// and whatever remains is simulated by the lockstep kernel on a single
// worker slot. Store writes, fingerprints and result bytes are identical
// to the per-job path; the only new accounting is Stats.Batched and the
// batch metrics.
func (e *Engine) resolveBatch(ctx context.Context, jobs []Job, idxs []int, emit func(int, Result, error, Source)) {
	var wg sync.WaitGroup
	defer wg.Wait()
	fallback := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err, src := e.resolve(ctx, jobs[i])
			emit(i, r, err, src)
		}()
	}

	// Claim ownership of every free member in one lock pass; anything
	// cached, in flight elsewhere, or otherwise unclaimable resolves
	// through the normal path with its normal accounting.
	var members []member
	var fb []int
	e.mu.Lock()
	for _, i := range idxs {
		key := jobs[i].Key()
		if _, ok := e.memory[key]; ok {
			fb = append(fb, i)
			continue
		}
		if _, ok := e.inflight[key]; ok {
			fb = append(fb, i)
			continue
		}
		c := &call{done: make(chan struct{})}
		e.inflight[key] = c
		members = append(members, member{idx: i, key: key, c: c})
	}
	e.mu.Unlock()
	for _, i := range fb {
		fallback(i)
	}
	if len(members) == 0 {
		return
	}
	e.bump(func(s *Stats) { s.Requested += int64(len(members)) })
	e.total.Add(int64(len(members)))

	abandonAll := func(err error) {
		e.mu.Lock()
		for _, m := range members {
			m.c.err = err
			m.c.abandoned = true
			delete(e.inflight, m.key)
		}
		e.mu.Unlock()
		for _, m := range members {
			close(m.c.done)
			e.bump(func(s *Stats) { s.Canceled++ })
			e.finish(jobs[m.idx], SourceCanceled)
			emit(m.idx, Result{}, err, SourceCanceled)
		}
	}
	if err := ctx.Err(); err != nil {
		abandonAll(err)
		return
	}

	// Store pre-check, mirroring compute(): disk hits leave the batch.
	if e.store != nil {
		kept := members[:0]
		for _, m := range members {
			if fp, ok := jobs[m.idx].Fingerprint(); ok {
				if r, hit := e.store.Get(fp, jobs[m.idx]); hit {
					e.completeMember(jobs[m.idx], m, r, nil, SourceDisk, emit)
					continue
				}
			}
			kept = append(kept, m)
		}
		members = kept
		if len(members) == 0 {
			return
		}
	}

	// One worker slot runs the whole lockstep group; cancellation before
	// the slot is claimed abandons the group (waiters retry), while a
	// claimed group runs to completion and persists, like any in-flight
	// job.
	e.queued.Add(int64(len(members)))
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.queued.Add(-int64(len(members)))
		abandonAll(ctx.Err())
		return
	}
	e.queued.Add(-int64(len(members)))
	if err := ctx.Err(); err != nil {
		<-e.sem
		abandonAll(err)
		return
	}
	e.running.Add(1)
	batch := make([]Job, len(members))
	for i, m := range members {
		batch[i] = jobs[m.idx]
	}
	start := time.Time{}
	if e.simDur != nil {
		start = time.Now()
	}
	var results []Result
	var errs []error
	batched := len(batch) >= 2
	if batched {
		var info batchRunInfo
		results, errs, info = lockstepGroup(batch)
		e.batchGroups.Add(1)
		if info.warmupMarkUsed {
			e.batchWarmupSkips.Add(1)
		}
	} else {
		// A group whittled to one member by cache and store hits is a
		// plain simulation.
		r, err := e.sim(batch[0])
		results, errs = []Result{r}, []error{err}
	}
	if e.simDur != nil {
		e.simDur.Observe(time.Since(start).Seconds())
	}
	e.running.Add(-1)
	<-e.sem

	for i, m := range members {
		e.completeSimulated(jobs[m.idx], m, results[i], errs[i], batched, emit)
	}
}

// completeMember finishes one batch member resolved without simulating
// (a disk hit), with exactly the accounting the per-job path gives it.
func (e *Engine) completeMember(job Job, m member, r Result, err error, src Source, emit func(int, Result, error, Source)) {
	m.c.res, m.c.err = r, err
	e.mu.Lock()
	if err == nil {
		e.memory[m.key] = r
	}
	delete(e.inflight, m.key)
	e.mu.Unlock()
	close(m.c.done)
	if src == SourceDisk {
		e.bump(func(s *Stats) { s.DiskHits++ })
	}
	e.finish(job, src)
	emit(m.idx, r, err, src)
}

// completeSimulated finishes one batch member the kernel (or the single
// leftover simulation) produced: cache, persist, account and emit, in
// the same order and under the same rules as resolve.
func (e *Engine) completeSimulated(job Job, m member, r Result, err error, batched bool, emit func(int, Result, error, Source)) {
	if err != nil {
		err = fmt.Errorf("engine: %s under %s: %w", job.Bench, job.Config.Name, err)
	}
	m.c.res, m.c.err = r, err
	e.mu.Lock()
	if err == nil {
		e.memory[m.key] = r
	}
	delete(e.inflight, m.key)
	e.mu.Unlock()
	close(m.c.done)
	if err == nil {
		e.bump(func(s *Stats) {
			s.Simulated++
			if batched {
				s.Batched++
			}
		})
		if fp, ok := job.Fingerprint(); ok && e.store != nil {
			if perr := e.store.Put(fp, job, r); perr != nil {
				e.bump(func(s *Stats) { s.DiskErrors++ })
			}
		}
	}
	e.finish(job, SourceSimulated)
	emit(m.idx, r, err, SourceSimulated)
}
