package engine

import (
	"fmt"

	"distiq/internal/isa"
	"distiq/internal/pipeline"
)

// Machine overrides full-machine parameters beyond the issue-queue
// organization, so experiment grids can sweep the processor itself (ROB
// size, widths, functional units, memory latencies, the perfect
// memory-disambiguation ablation) through the cached engine. The zero
// value of every field keeps the paper's Table 1 default; a nil *Machine
// on a Job means the unmodified Table 1 machine.
//
// Job identity hashes the *applied* configuration, so an override that
// restates a default (e.g. ROBSize: 256) is identical — in memory and on
// disk — to no override at all.
type Machine struct {
	// Front-end and back-end widths (instructions per cycle).
	FetchWidth    int `json:"fetch_width,omitempty"`
	DispatchWidth int `json:"dispatch_width,omitempty"`
	IssueWidthInt int `json:"issue_width_int,omitempty"`
	IssueWidthFP  int `json:"issue_width_fp,omitempty"`
	CommitWidth   int `json:"commit_width,omitempty"`

	// Window sizes. ROBSize must be a power of two (pipeline invariant).
	FetchQueue int `json:"fetch_queue,omitempty"`
	ROBSize    int `json:"rob_size,omitempty"`

	// Functional-unit provisioning.
	IntALUs  int `json:"int_alus,omitempty"`
	IntMuls  int `json:"int_muls,omitempty"`
	FPAdders int `json:"fp_adders,omitempty"`
	FPMuls   int `json:"fp_muls,omitempty"`

	// Memory-system latencies, in cycles. MemLatency is the
	// first-chunk main-memory latency.
	L1DLatency int `json:"l1d_latency,omitempty"`
	L2Latency  int `json:"l2_latency,omitempty"`
	MemLatency int `json:"mem_latency,omitempty"`

	// PerfectDisambiguation lets loads bypass the conservative
	// all-prior-store-addresses-known rule (Section 5 ablation).
	PerfectDisambiguation bool `json:"perfect_disambiguation,omitempty"`
}

// Apply returns c with every non-zero override substituted.
func (m *Machine) Apply(c pipeline.Config) pipeline.Config {
	if m == nil {
		return c
	}
	set := func(dst *int, v int) {
		if v != 0 {
			*dst = v
		}
	}
	set(&c.FetchWidth, m.FetchWidth)
	set(&c.DispatchWidth, m.DispatchWidth)
	set(&c.IssueWidthInt, m.IssueWidthInt)
	set(&c.IssueWidthFP, m.IssueWidthFP)
	set(&c.CommitWidth, m.CommitWidth)
	set(&c.FetchQueue, m.FetchQueue)
	set(&c.ROBSize, m.ROBSize)
	set(&c.FUCounts[isa.IntALUUnit], m.IntALUs)
	set(&c.FUCounts[isa.IntMulUnit], m.IntMuls)
	set(&c.FUCounts[isa.FPAddUnit], m.FPAdders)
	set(&c.FUCounts[isa.FPMulUnit], m.FPMuls)
	set(&c.Hier.L1D.Latency, m.L1DLatency)
	set(&c.Hier.L2.Latency, m.L2Latency)
	set(&c.Hier.Mem.FirstChunk, m.MemLatency)
	if m.PerfectDisambiguation {
		c.PerfectDisambiguation = true
	}
	return c
}

// PipelineConfig returns the full processor configuration the job
// simulates: the Table 1 machine around the job's issue-queue
// organization, with the job's machine overrides applied.
func (j Job) PipelineConfig() pipeline.Config {
	return j.Machine.Apply(pipeline.DefaultConfig(j.Config))
}

// machCanon renders the structural identity of the full machine (beyond
// the issue-queue organization, which the job canon covers separately).
// Every result-affecting pipeline parameter a Machine can reach appears
// here, so two jobs share a fingerprint exactly when they simulate the
// same processor.
func machCanon(c pipeline.Config) string {
	return fmt.Sprintf(
		"f%d,d%d,ii%d,if%d,c%d,fq%d,rob%d,dd%d,rp%d|lat:%v|l1i:%d/%d/%d/%d,l1d:%d/%d/%d/%d,l2:%d/%d/%d/%d,mem:%d/%d/%d,p%d|fu:%v|pdis:%t",
		c.FetchWidth, c.DispatchWidth, c.IssueWidthInt, c.IssueWidthFP,
		c.CommitWidth, c.FetchQueue, c.ROBSize, c.DecodeDepth, c.RedirectPenalty,
		c.Latencies,
		c.Hier.L1I.SizeKB, c.Hier.L1I.Assoc, c.Hier.L1I.LineSize, c.Hier.L1I.Latency,
		c.Hier.L1D.SizeKB, c.Hier.L1D.Assoc, c.Hier.L1D.LineSize, c.Hier.L1D.Latency,
		c.Hier.L2.SizeKB, c.Hier.L2.Assoc, c.Hier.L2.LineSize, c.Hier.L2.Latency,
		c.Hier.Mem.FirstChunk, c.Hier.Mem.InterChunk, c.Hier.Mem.ChunkBytes,
		c.Hier.DPorts,
		c.FUCounts,
		c.PerfectDisambiguation)
}
