// Package engine executes simulation experiments concurrently: it shards
// independent (benchmark × configuration × options) jobs across a bounded
// worker pool, deduplicates identical in-flight jobs single-flight style,
// memoizes results in a goroutine-safe in-memory cache and, optionally,
// persists them to an on-disk store content-addressed by a hash of the
// job, so results are reused across processes.
//
// Simulations are deterministic per job (the workload generators use
// per-instance seeded PRNGs and the pipeline holds no global state), so a
// result computed by any worker, in any order, in any process, is
// bit-identical to a serial run. Consumers may therefore fan out freely
// and still assemble byte-identical tables.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"distiq/internal/core"
	"distiq/internal/isa"
	"distiq/internal/metrics"
	"distiq/internal/pipeline"
	"distiq/internal/power"
	"distiq/internal/trace"
)

// Options controls simulation length. The paper simulates 100M
// instructions per benchmark after skipping initialization; the synthetic
// workloads reach steady state much sooner, so the defaults are far
// smaller while remaining stable to ~1%.
type Options struct {
	// Warmup instructions run before statistics collection starts
	// (caches and predictors stay warm, counters reset).
	Warmup uint64
	// Instructions measured per run.
	Instructions uint64
}

// Result is the outcome of one benchmark × configuration simulation.
type Result struct {
	metrics.Run
	Stats pipeline.Stats
	// IntBreakdown and FPBreakdown are the labeled issue-logic energy
	// breakdowns per domain; Breakdown is their sum.
	IntBreakdown, FPBreakdown, Breakdown power.Breakdown
}

// Job identifies one unit of experiment work.
type Job struct {
	Bench  string
	Config core.Config
	Opt    Options
	// Machine optionally overrides full-machine parameters (ROB size,
	// widths, functional units, memory latencies, perfect
	// disambiguation); nil is the paper's Table 1 machine.
	Machine *Machine
	// Seed is the replication axis: a non-zero value perturbs the
	// benchmark model's RNG seed so the job replays a statistically
	// independent instruction stream of the same workload. Zero is the
	// canonical stream, and leaves the job's identity — canonical string,
	// fingerprint, batch group — exactly as it was before the axis
	// existed, so warm distiq-v2 stores stay valid.
	Seed uint64
}

// seedMix spreads a replication seed across the model seed's bits. It is
// odd, so distinct replication seeds map to distinct perturbations
// (multiplication by an odd constant is a bijection mod 2^64) and no
// non-zero seed collapses onto the canonical stream.
const seedMix = 0x9e3779b97f4a7c15

// model resolves the job's benchmark model with the replication seed
// applied — the one derivation both the solo simulate path and the
// lockstep batch kernel use. Seed zero returns the canonical model
// unchanged; trace.ModelKey includes the model seed, so perturbed
// models get distinct shared-trace streams and warmup marks for free.
func (j Job) model() (trace.Model, error) {
	m, err := trace.ByName(j.Bench)
	if err != nil {
		return m, err
	}
	if j.Seed != 0 {
		m.Seed ^= j.Seed * seedMix
	}
	return m, nil
}

// storeVersion is folded into job fingerprints and written into every
// store entry; bump it whenever the simulator or the entry layout changes
// in a result-affecting way, which atomically invalidates old caches.
// v2 added the machine-configuration segment to job identity.
const storeVersion = 2

// domCanon renders the structural identity of one domain's configuration.
func domCanon(d core.DomainConfig) string {
	return fmt.Sprintf("%s,%d,%d,%d,%t,%t",
		d.Kind, d.Queues, d.Entries, d.Chains,
		d.KeepMapOnMispredict, d.FlatSelectPriority)
}

// canonical renders the job's full structural identity, or reports false
// when the configuration embeds a Custom scheme factory, whose behaviour
// a string cannot capture. The machine segment is rendered from the
// *applied* pipeline configuration, so overrides that restate Table 1
// defaults hash identically to no override.
func (j Job) canonical() (string, bool) {
	if j.Config.Int.Custom != nil || j.Config.FP.Custom != nil {
		return "", false
	}
	c := fmt.Sprintf("distiq-v%d|%s|%s|w%d|n%d|int:%s|fp:%s|distr:%t|mach:%s",
		storeVersion, j.Bench, j.Config.Name,
		j.Opt.Warmup, j.Opt.Instructions,
		domCanon(j.Config.Int), domCanon(j.Config.FP),
		j.Config.DistributedFU, j.machineCanon())
	// The seed segment appears only when set: every pre-existing
	// (seed-zero) fingerprint — and with it every warm store entry and
	// golden manifest root — is untouched by the axis.
	if j.Seed != 0 {
		c += fmt.Sprintf("|seed:%d", j.Seed)
	}
	return c, true
}

// machineCanon renders the job's full-machine identity segment.
func (j Job) machineCanon() string {
	return machCanon(j.PipelineConfig())
}

// Key returns the in-process memoization key. Jobs with Custom schemes
// fall back to name-based identity (the caller must name distinct custom
// configurations distinctly, as sim.Session always required).
func (j Job) Key() string {
	if c, ok := j.canonical(); ok {
		return c
	}
	k := fmt.Sprintf("custom|%s|%s|w%d|n%d|mach:%s",
		j.Bench, j.Config.Name, j.Opt.Warmup, j.Opt.Instructions,
		j.machineCanon())
	if j.Seed != 0 {
		k += fmt.Sprintf("|seed:%d", j.Seed)
	}
	return k
}

// BatchKey identifies a job's lockstep co-batch group: jobs agree exactly
// when they replay the same dynamic trace region — same benchmark, same
// warmup and same measured instruction count. Configurations and machine
// overrides deliberately do not enter the key: varying them is what a
// batch is for, and each distinct Key() in a group gets its own machine.
// Jobs with equal BatchKeys but different warmup or instruction counts
// cannot exist (the counts are the key), so co-batched machines always
// share phase boundaries. The replication seed enters the key — jobs
// under different seeds replay different instruction streams and must
// never share a trace pass — with the zero seed rendered as the historic
// suffix-free form.
func (j Job) BatchKey() string {
	k := fmt.Sprintf("%s|w%d|n%d", j.Bench, j.Opt.Warmup, j.Opt.Instructions)
	if j.Seed != 0 {
		k += fmt.Sprintf("|s%d", j.Seed)
	}
	return k
}

// Fingerprint returns the content address used by the persistent store: a
// hex SHA-256 of the job's canonical identity. It reports false for jobs
// that cannot be safely persisted (Custom scheme configurations).
func (j Job) Fingerprint() (string, bool) {
	c, ok := j.canonical()
	if !ok {
		return "", false
	}
	sum := sha256.Sum256([]byte(c))
	return hex.EncodeToString(sum[:]), true
}

// sharedTraces caches each benchmark's generated dynamic instruction
// stream so the jobs of a grid replay one shared immutable trace instead
// of regenerating it per job. Replay is bit-exact (the stream is a pure
// function of the model), so results, figure bytes and distiq-v2
// fingerprints are unchanged by caching; SimulateUncached bypasses it.
var sharedTraces = trace.NewCache(trace.DefaultCacheCap)

// TraceCacheStats reports the shared trace cache's counters (residency,
// hits, evictions), for observability surfaces such as cmd/iqbench.
func TraceCacheStats() trace.CacheStats { return sharedTraces.Stats() }

// WarmTraces materializes the shared trace cache for the named benchmarks
// up to n instructions each, so subsequent timed runs pay no one-time
// generation cost (cmd/iqbench uses it to put its serial and parallel
// cold cases on equal footing). Warming is bounded by the shared cache's
// capacity: past it, readers fall back to private generation as usual.
func WarmTraces(benches []string, n uint64) error {
	for _, b := range benches {
		model, err := trace.ByName(b)
		if err != nil {
			return err
		}
		r := sharedTraces.Reader(model)
		var in isa.Inst
		for i := uint64(0); i < n; i++ {
			r.Next(&in)
		}
	}
	return nil
}

// Simulate runs one job to completion on the calling goroutine: it drives
// the pipeline over the benchmark's synthetic model under the job's
// configuration and assembles the performance and energy result. The
// benchmark's dynamic trace is replayed from the shared trace cache.
func Simulate(j Job) (Result, error) {
	return simulate(j, true)
}

// SimulateUncached is Simulate with the shared trace cache bypassed: the
// benchmark's stream is regenerated for this run. Results are identical
// to Simulate's; it exists for memory-constrained callers and for tests
// pinning that identity.
func SimulateUncached(j Job) (Result, error) {
	return simulate(j, false)
}

func simulate(j Job, cached bool) (Result, error) {
	model, err := j.model()
	if err != nil {
		return Result{}, err
	}
	var gen pipeline.Fetcher
	if cached {
		gen = sharedTraces.Reader(model)
	} else {
		gen = trace.NewGenerator(model)
	}
	p, err := pipeline.New(j.PipelineConfig(), gen)
	if err != nil {
		return Result{}, err
	}
	p.Warmup(j.Opt.Warmup)
	p.Run(j.Opt.Instructions)
	return assemble(j, p), nil
}

// assemble builds a job's Result from its finished pipeline — the single
// path Simulate and the lockstep batch kernel share, so a batched job's
// Result is constructed exactly as a solo one's.
func assemble(j Job, p *pipeline.Pipeline) Result {
	st := p.Stats()
	res := Result{Stats: st}
	res.Benchmark = j.Bench
	res.Config = j.Config.Name
	res.Insts = st.Committed
	res.Cycles = st.Cycles

	intScheme := p.Scheme(isa.IntDomain)
	fpScheme := p.Scheme(isa.FPDomain)
	res.IntBreakdown = power.NewCalc(intScheme.Geometry()).Energy(intScheme.Events())
	res.FPBreakdown = power.NewCalc(fpScheme.Geometry()).Energy(fpScheme.Events())
	res.Breakdown = power.Breakdown{}
	res.Breakdown.Add(res.IntBreakdown)
	res.Breakdown.Add(res.FPBreakdown)
	res.IQEnergy = res.Breakdown.Total()
	return res
}
