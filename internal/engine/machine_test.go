package engine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"distiq/internal/core"
	"distiq/internal/isa"
	"distiq/internal/pipeline"
)

// TestMachineApply checks that overrides land on the right pipeline
// fields and zero fields keep Table 1 values.
func TestMachineApply(t *testing.T) {
	base := pipeline.DefaultConfig(core.Baseline64())
	m := &Machine{
		ROBSize: 128, FetchWidth: 4, IssueWidthInt: 4,
		IntALUs: 2, FPMuls: 2, L2Latency: 20, MemLatency: 200,
		PerfectDisambiguation: true,
	}
	c := m.Apply(base)
	if c.ROBSize != 128 || c.FetchWidth != 4 || c.DispatchWidth != 8 {
		t.Fatalf("rob/fetch wrong: %+v", c)
	}
	if c.IssueWidthInt != 4 || c.IssueWidthFP != 8 {
		t.Fatalf("issue widths wrong: %+v", c)
	}
	if c.FUCounts[isa.IntALUUnit] != 2 || c.FUCounts[isa.FPMulUnit] != 2 ||
		c.FUCounts[isa.IntMulUnit] != 4 {
		t.Fatalf("fu counts wrong: %v", c.FUCounts)
	}
	if c.Hier.L2.Latency != 20 || c.Hier.Mem.FirstChunk != 200 || c.Hier.L1D.Latency != 2 {
		t.Fatalf("memory latencies wrong: %+v", c.Hier)
	}
	if !c.PerfectDisambiguation {
		t.Fatal("perfect disambiguation not applied")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// nil machine is the identity (Config holds a func field, so
	// compare via the canonical rendering).
	var none *Machine
	if machCanon(none.Apply(base)) != machCanon(base) {
		t.Fatal("nil Apply changed the config")
	}
}

// TestMachineFingerprintFields verifies every supported override moves
// the job fingerprint (no silently-ignored axis).
func TestMachineFingerprintFields(t *testing.T) {
	base := quickJob("swim", core.Baseline64())
	fpBase, ok := base.Fingerprint()
	if !ok {
		t.Fatal("base job not addressable")
	}
	muts := map[string]Machine{
		"fetch":  {FetchWidth: 4},
		"disp":   {DispatchWidth: 4},
		"iwint":  {IssueWidthInt: 4},
		"iwfp":   {IssueWidthFP: 4},
		"commit": {CommitWidth: 4},
		"fq":     {FetchQueue: 32},
		"rob":    {ROBSize: 128},
		"alu":    {IntALUs: 4},
		"imul":   {IntMuls: 2},
		"fadd":   {FPAdders: 2},
		"fmul":   {FPMuls: 2},
		"l1d":    {L1DLatency: 4},
		"l2":     {L2Latency: 20},
		"mem":    {MemLatency: 200},
		"pdis":   {PerfectDisambiguation: true},
	}
	seen := map[string]string{fpBase: "default"}
	for name, m := range muts {
		j := base
		mm := m
		j.Machine = &mm
		fp, ok := j.Fingerprint()
		if !ok {
			t.Fatalf("%s: not addressable", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("override %s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

// TestMachineDefaultNormalizes checks that an override restating Table 1
// defaults is identical to no override, in memory key and fingerprint.
func TestMachineDefaultNormalizes(t *testing.T) {
	plain := quickJob("swim", core.MBDistr())
	restated := plain
	restated.Machine = &Machine{ROBSize: 256, FetchWidth: 8, CommitWidth: 8, MemLatency: 100}
	fp1, _ := plain.Fingerprint()
	fp2, _ := restated.Fingerprint()
	if fp1 != fp2 {
		t.Fatalf("restated defaults changed the fingerprint: %s vs %s", fp1, fp2)
	}
	if plain.Key() != restated.Key() {
		t.Fatal("restated defaults changed the memo key")
	}
}

// TestFingerprintGolden pins the content-address format: these hashes
// only move when the job identity scheme (or store version) changes,
// which must be a deliberate, reviewed event — it invalidates every
// on-disk cache.
func TestFingerprintGolden(t *testing.T) {
	j1 := Job{Bench: "swim", Config: core.Baseline64(),
		Opt: Options{Warmup: 5000, Instructions: 20000}}
	j2 := j1
	j2.Machine = &Machine{ROBSize: 128, PerfectDisambiguation: true}
	const (
		want1 = "a372fba595124079099e1536c87bce413f7fc04bf128771bf93cedf2c306aaf7"
		want2 = "d3774551742ffdde9fe7df27688e30baff16062fcf3fadc20aeecd395020fcd5"
	)
	if fp, _ := j1.Fingerprint(); fp != want1 {
		t.Errorf("baseline job fingerprint = %s, want %s", fp, want1)
	}
	if fp, _ := j2.Fingerprint(); fp != want2 {
		t.Errorf("machine-override job fingerprint = %s, want %s", fp, want2)
	}
}

// TestStoreV1EntryReadsAsMiss verifies the distiq-v2 format bump: a
// stale version-1 entry sitting at a job's content address is a cache
// miss (and is later overwritten), never a hit.
func TestStoreV1EntryReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(dir)
	job := quickJob("swim", core.Baseline64())
	fp, ok := job.Fingerprint()
	if !ok {
		t.Fatal("job not addressable")
	}
	// A v1-era entry: same benchmark/config/options, old version tag,
	// no machine segment.
	stale := map[string]any{
		"version":      1,
		"benchmark":    job.Bench,
		"config":       job.Config.Name,
		"warmup":       job.Opt.Warmup,
		"instructions": job.Opt.Instructions,
		"result":       Result{},
	}
	data, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fp+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit := st.Get(fp, job); hit {
		t.Fatal("stale v1 entry served as a hit")
	}
	// And a fresh Put supersedes it.
	var r Result
	r.Benchmark = job.Bench
	if err := st.Put(fp, job, r); err != nil {
		t.Fatal(err)
	}
	got, hit := st.Get(fp, job)
	if !hit || got.Benchmark != job.Bench {
		t.Fatal("fresh v2 entry not readable after overwrite")
	}
}

// normalizeForTest independently maps a Machine override to the full
// machine it denotes, duplicating the Table 1 defaults on purpose: if
// Apply and this table disagree, either the defaults moved (update both
// deliberately) or Apply has a bug.
func normalizeForTest(m Machine) [15]int {
	def := func(v, d int) int {
		if v != 0 {
			return v
		}
		return d
	}
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	return [15]int{
		def(m.FetchWidth, 8),
		def(m.DispatchWidth, 8),
		def(m.IssueWidthInt, 8), def(m.IssueWidthFP, 8),
		def(m.CommitWidth, 8), def(m.FetchQueue, 64), def(m.ROBSize, 256),
		def(m.IntALUs, 8), def(m.IntMuls, 4), def(m.FPAdders, 4), def(m.FPMuls, 4),
		def(m.L1DLatency, 2), def(m.L2Latency, 10), def(m.MemLatency, 100),
		b2i(m.PerfectDisambiguation),
	}
}

// FuzzMachineFingerprint checks the injectivity contract of job
// identity under machine overrides: two overrides denote the same
// machine (after default-normalization) exactly when their fingerprints
// match, and fingerprints are stable across computations.
func FuzzMachineFingerprint(f *testing.F) {
	f.Add(128, 0, 2, 0, false, 256, 8, 0, 20, true)
	f.Add(0, 0, 0, 0, false, 0, 0, 0, 0, false)
	f.Add(64, 4, 4, 1, true, 64, 4, 4, 1, true)
	f.Fuzz(func(t *testing.T, rob1, fw1, alu1, l2a int, p1 bool,
		rob2, fw2, alu2, l2b int, p2 bool) {
		clampPow2 := func(v int) int {
			switch {
			case v <= 0:
				return 0
			case v < 96:
				return 64
			case v < 192:
				return 128
			default:
				return 256
			}
		}
		clamp := func(v, hi int) int {
			if v <= 0 {
				return 0
			}
			return v%hi + 1
		}
		m1 := Machine{ROBSize: clampPow2(rob1), FetchWidth: clamp(fw1, 8),
			IntALUs: clamp(alu1, 8), L2Latency: clamp(l2a, 30), PerfectDisambiguation: p1}
		m2 := Machine{ROBSize: clampPow2(rob2), FetchWidth: clamp(fw2, 8),
			IntALUs: clamp(alu2, 8), L2Latency: clamp(l2b, 30), PerfectDisambiguation: p2}
		j1 := quickJob("swim", core.MBDistr())
		j1.Machine = &m1
		j2 := quickJob("swim", core.MBDistr())
		j2.Machine = &m2
		fp1a, ok1 := j1.Fingerprint()
		fp1b, _ := j1.Fingerprint()
		fp2, ok2 := j2.Fingerprint()
		if !ok1 || !ok2 {
			t.Fatal("machine jobs must be addressable")
		}
		if fp1a != fp1b {
			t.Fatalf("fingerprint unstable: %s vs %s", fp1a, fp1b)
		}
		n1, n2 := normalizeForTest(m1), normalizeForTest(m2)
		if (n1 == n2) != (fp1a == fp2) {
			t.Fatalf("injectivity violated: machines %+v vs %+v, normalized %v vs %v, fingerprints %s vs %s",
				m1, m2, n1, n2, fp1a, fp2)
		}
	})
}
