package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distiq/internal/core"
)

// stubResult produces a deterministic, distinguishable result for leaf
// hashing without running a simulation.
func stubResult(i int) Result {
	var r Result
	r.Benchmark = "swim"
	r.Insts = uint64(1000 + i)
	r.Cycles = uint64(2000 + i)
	return r
}

func manifestJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = quickJob("swim", core.Baseline64())
		jobs[i].Opt.Instructions += uint64(i) // distinct fingerprints
	}
	return jobs
}

func manifestResults(n int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = stubResult(i)
	}
	return out
}

func TestMerkleRootConstruction(t *testing.T) {
	leaf := func(b byte) []byte {
		h := sha256.Sum256([]byte{b})
		return h[:]
	}
	inner := func(l, r []byte) []byte {
		h := sha256.New()
		h.Write([]byte{0x01})
		h.Write(l)
		h.Write(r)
		return h.Sum(nil)
	}
	empty := sha256.Sum256(nil)
	if got := merkleRoot(nil); got != hex.EncodeToString(empty[:]) {
		t.Errorf("empty root = %s, want hash of empty string", got)
	}
	l0, l1, l2 := leaf(0), leaf(1), leaf(2)
	if got := merkleRoot([][]byte{l0}); got != hex.EncodeToString(l0) {
		t.Errorf("single-leaf root = %s, want the leaf itself", got)
	}
	if got, want := merkleRoot([][]byte{l0, l1}), hex.EncodeToString(inner(l0, l1)); got != want {
		t.Errorf("two-leaf root = %s, want %s", got, want)
	}
	// Odd leaf promoted unchanged: root(l0,l1,l2) = inner(inner(l0,l1), l2).
	if got, want := merkleRoot([][]byte{l0, l1, l2}), hex.EncodeToString(inner(inner(l0, l1), l2)); got != want {
		t.Errorf("three-leaf root = %s, want odd-promotion %s", got, want)
	}
}

func TestBuildManifestDeterministicAndChecks(t *testing.T) {
	jobs, results := manifestJobs(4), manifestResults(4)
	m, err := BuildManifest("sweep-1", jobs, results)
	if err != nil {
		t.Fatalf("BuildManifest: %v", err)
	}
	if err := m.Check(); err != nil {
		t.Errorf("fresh manifest fails Check: %v", err)
	}
	if m.Version != ManifestVersion || m.Algo != ManifestAlgo || m.Points != 4 || len(m.Leaves) != 4 {
		t.Errorf("manifest header wrong: %+v", m)
	}
	for i, leaf := range m.Leaves {
		fp, _ := jobs[i].Fingerprint()
		if leaf.Index != i || leaf.Fingerprint != fp || leaf.Benchmark != "swim" {
			t.Errorf("leaf %d wrong: %+v", i, leaf)
		}
	}
	again, err := BuildManifest("sweep-1", jobs, results)
	if err != nil {
		t.Fatalf("BuildManifest (again): %v", err)
	}
	if again.Root != m.Root {
		t.Errorf("same inputs produced different roots: %s vs %s", m.Root, again.Root)
	}
	// Any result change moves the root.
	mutated := manifestResults(4)
	mutated[2].Cycles++
	other, err := BuildManifest("sweep-1", jobs, mutated)
	if err != nil {
		t.Fatalf("BuildManifest (mutated): %v", err)
	}
	if other.Root == m.Root {
		t.Error("mutated result did not change the root")
	}
}

func TestBuildManifestRejectsBadInput(t *testing.T) {
	jobs := manifestJobs(2)
	if _, err := BuildManifest("x", jobs, manifestResults(3)); err == nil {
		t.Error("length mismatch accepted")
	}
	custom := core.Baseline64()
	custom.Int.Custom = func(core.DomainConfig, core.Options) (core.Scheme, error) { return nil, nil }
	jobs[1].Config = custom
	if _, err := BuildManifest("x", jobs, manifestResults(2)); err == nil {
		t.Error("custom-scheme job accepted into manifest")
	}
}

func TestManifestCheckRejectsTampering(t *testing.T) {
	jobs, results := manifestJobs(3), manifestResults(3)
	fresh := func() *Manifest {
		m, err := BuildManifest("s", jobs, results)
		if err != nil {
			t.Fatalf("BuildManifest: %v", err)
		}
		return m
	}
	cases := map[string]func(*Manifest){
		"version":       func(m *Manifest) { m.Version = "distiq-manifest-v0" },
		"algo":          func(m *Manifest) { m.Algo = "md5" },
		"points":        func(m *Manifest) { m.Points = 2 },
		"leaf order":    func(m *Manifest) { m.Leaves[0], m.Leaves[1] = m.Leaves[1], m.Leaves[0] },
		"leaf hash":     func(m *Manifest) { m.Leaves[1].Hash = m.Leaves[0].Hash },
		"root":          func(m *Manifest) { m.Root = strings.Repeat("0", 64) },
		"malformed":     func(m *Manifest) { m.Leaves[2].Hash = "zz" },
		"fingerprint":   func(m *Manifest) { m.Leaves[0].Fingerprint = "abc" },
		"dropped leaf":  func(m *Manifest) { m.Leaves = m.Leaves[:2]; m.Points = 2 },
		"appended leaf": func(m *Manifest) { m.Leaves = append(m.Leaves, m.Leaves[2]); m.Points = 4 },
	}
	for name, tamper := range cases {
		m := fresh()
		tamper(m)
		if err := m.Check(); err == nil {
			t.Errorf("%s tampering passed Check", name)
		}
	}
}

func TestManifestVerifyStoreAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(dir)
	jobs, results := manifestJobs(4), manifestResults(4)
	for i, job := range jobs {
		fp, ok := job.Fingerprint()
		if !ok {
			t.Fatalf("job %d not fingerprintable", i)
		}
		if err := st.Put(fp, job, results[i]); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	m, err := BuildManifest("sweep", jobs, results)
	if err != nil {
		t.Fatalf("BuildManifest: %v", err)
	}
	if err := m.VerifyStore(dir); err != nil {
		t.Fatalf("VerifyStore against warm store: %v", err)
	}

	// JSON round trip through LoadManifest.
	path := filepath.Join(t.TempDir(), "manifest.json")
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if loaded.Root != m.Root || len(loaded.Leaves) != len(m.Leaves) {
		t.Error("loaded manifest differs from original")
	}
	if err := loaded.VerifyStore(dir); err != nil {
		t.Errorf("loaded manifest fails VerifyStore: %v", err)
	}

	// Flip one byte of one stored file: verification must fail and name
	// the culprit point.
	victim := filepath.Join(dir, m.Leaves[2].Fingerprint+".json")
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatalf("read victim: %v", err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatalf("tamper: %v", err)
	}
	err = m.VerifyStore(dir)
	if err == nil {
		t.Fatal("VerifyStore passed against a tampered store")
	}
	if !strings.Contains(err.Error(), "point 2") {
		t.Errorf("tamper error does not name the point: %v", err)
	}

	// A missing file also fails.
	if err := os.Remove(victim); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := m.VerifyStore(dir); err == nil {
		t.Error("VerifyStore passed with a missing store entry")
	}
}

func TestLeafHashMatchesStoredBytes(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(dir)
	job, res := quickJob("swim", core.Baseline64()), stubResult(0)
	fp, _ := job.Fingerprint()
	if err := st.Put(fp, job, res); err != nil {
		t.Fatalf("Put: %v", err)
	}
	want, err := LeafHash(job, res)
	if err != nil {
		t.Fatalf("LeafHash: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, fp+".json"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := hashLeafBytes(raw); got != want {
		t.Errorf("stored file hashes to %s, in-memory leaf is %s", got, want)
	}
}
