package engine

import (
	"bytes"
	"testing"

	"distiq/internal/core"
	"distiq/internal/obs"
)

// TestTieredRepairsCorruptFastLevel: a fast-level entry whose bytes no
// longer validate (torn write, stale version, flipped byte) must not be
// re-read and re-rejected forever — the first Get served from a deeper
// level overwrites the corrupt copy byte-exactly and counts the repair,
// and the next Get hits the repaired fast level directly.
func TestTieredRepairsCorruptFastLevel(t *testing.T) {
	fast := NewMemStore()
	deep := NewStore(t.TempDir())
	tier := NewTiered(fast, deep)

	job := quickJob("swim", core.MBDistr())
	fp, _ := job.Fingerprint()
	res := confResult(job)
	if err := tier.Put(fp, job, res); err != nil {
		t.Fatal(err)
	}
	want, err := deep.Raw(fp)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the fast level only.
	if err := fast.PutRaw(fp, []byte(`{"torn":`)); err != nil {
		t.Fatal(err)
	}

	got, ok := tier.Get(fp, job)
	if !ok {
		t.Fatal("tier missed despite a valid deep-level entry")
	}
	if got.IQEnergy != res.IQEnergy || got.Insts != res.Insts {
		t.Fatalf("tier served %+v, want %+v", got, res)
	}
	if raw, err := fast.Raw(fp); err != nil || !bytes.Equal(raw, want) {
		t.Fatalf("fast level not repaired byte-exactly (err=%v)", err)
	}
	if n := tier.repairs[0].Load(); n != 1 {
		t.Fatalf("tier counted %d repairs at level 0, want 1", n)
	}
	if n := tier.hits[1].Load(); n != 1 {
		t.Fatalf("tier counted %d hits at level 1, want 1", n)
	}

	// Repaired: the next Get stops at the fast level.
	if _, ok := tier.Get(fp, job); !ok {
		t.Fatal("tier missed after repair")
	}
	if n := tier.hits[0].Load(); n != 1 {
		t.Fatalf("repaired fast level served %d hits, want 1", n)
	}
	if n := tier.repairs[0].Load(); n != 1 {
		t.Fatalf("repair recounted: %d, want still 1", n)
	}

	// The repair counter is on /metrics.
	reg := obs.NewRegistry()
	tier.Instrument(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("distiq_store_tier_repairs_total")) {
		t.Fatalf("exposition lacks distiq_store_tier_repairs_total:\n%s", buf.String())
	}
}

// TestTieredBackfillWithoutCorruptionIsNotARepair: an ordinary
// backfill into a fast level that simply missed (no bytes at all) must
// not count as a repair.
func TestTieredBackfillWithoutCorruptionIsNotARepair(t *testing.T) {
	fast := NewMemStore()
	deep := NewStore(t.TempDir())
	tier := NewTiered(fast, deep)

	job := quickJob("gzip", core.MBDistr())
	fp, _ := job.Fingerprint()
	if err := deep.Put(fp, job, confResult(job)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tier.Get(fp, job); !ok {
		t.Fatal("tier missed despite a valid deep-level entry")
	}
	if !fast.Has(fp) {
		t.Fatal("fast level not backfilled")
	}
	if n := tier.repairs[0].Load(); n != 0 {
		t.Fatalf("plain backfill counted as %d repairs, want 0", n)
	}
}
