package engine

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestParseStoreSpecTimeouts pins the ?timeout= syntax on http(s)
// backends: a Go duration, the only recognized parameter, valid inside
// tiers and under batch:.
func TestParseStoreSpecTimeouts(t *testing.T) {
	for _, spec := range []string{
		"http://host/prefix?timeout=10s",
		"https://host?timeout=0",
		"tier:mem,http://host?timeout=1m30s",
		"batch:http://host?timeout=250ms",
	} {
		if _, err := ParseStoreSpec(spec); err != nil {
			t.Errorf("ParseStoreSpec(%q) = %v, want ok", spec, err)
		}
	}
	for _, spec := range []string{
		"http://host?timeout=nonsense",
		"http://host?timeout=-1s",
		"http://host?timeout=",
		"http://host?ttl=10s",
		"http://host?timeout=10s&extra=1",
		"http://?timeout=10s",
	} {
		if _, err := ParseStoreSpec(spec); err == nil {
			t.Errorf("ParseStoreSpec(%q) succeeded, want error", spec)
		}
	}
}

// TestOpenStoreHTTPTimeoutBounds: a blob server that hangs longer than
// the spec's ?timeout= turns into a bounded store miss instead of a
// stalled sweep — the failure mode the default timeout exists to
// prevent.
func TestOpenStoreHTTPTimeoutBounds(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer ts.Close()
	defer close(stall) // LIFO: release the handler before ts.Close waits on it

	st, err := OpenStore(ts.URL + "?timeout=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close() //nolint:errcheck // teardown
	hs, ok := st.(*HTTPStore)
	if !ok {
		t.Fatalf("OpenStore built %T, want *HTTPStore", st)
	}
	if got := hs.Base(); strings.Contains(got, "?") {
		t.Fatalf("timeout parameter leaked into the base URL %q", got)
	}

	start := time.Now()
	if hs.Has("deadbeef") {
		t.Fatal("hung server reported a blob present")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("probe against a hung server took %v, want the 50ms bound to cut it", elapsed)
	}
}
