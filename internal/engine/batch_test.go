package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"distiq/internal/core"
	"distiq/internal/trace"
)

// batchOpt is small enough to keep the equivalence suite fast while
// exercising warmup boundaries and a few thousand measured commits.
var batchOpt = Options{Warmup: 1000, Instructions: 4000}

func batchJob(bench string, cfg core.Config, m *Machine) Job {
	return Job{Bench: bench, Config: cfg, Opt: batchOpt, Machine: m}
}

// batchConfigs is the pool the property test samples machines from:
// every scheme family plus machine overrides, so lockstep equivalence is
// checked across genuinely different microarchitectures sharing one
// trace.
func batchConfigs() []Job {
	return []Job{
		batchJob("", core.Baseline64(), nil),
		batchJob("", core.Unbounded(), nil),
		batchJob("", core.IFDistr(), nil),
		batchJob("", core.MBDistr(), nil),
		batchJob("", core.LatFIFOCfg(8, 8, 8, 16), nil),
		batchJob("", core.Baseline64(), &Machine{ROBSize: 64}),
		batchJob("", core.MBDistr(), &Machine{PerfectDisambiguation: true}),
		batchJob("", core.IFDistr(), &Machine{FetchWidth: 4, IssueWidthInt: 4}),
	}
}

// TestSimulateBatchMatchesSimulate is the equivalence property suite:
// random K-config groups run through the lockstep kernel must be
// bit-identical to per-job Simulate — the Result structs, the distiq-v2
// store entry bytes, and the sweep Merkle root.
func TestSimulateBatchMatchesSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(7))
	pool := batchConfigs()
	for _, bench := range []string{"swim", "gcc"} {
		k := 2 + rng.Intn(3)
		var jobs []Job
		for _, pi := range rng.Perm(len(pool))[:k] {
			j := pool[pi]
			j.Bench = bench
			jobs = append(jobs, j)
		}
		batch, err := SimulateBatch(jobs)
		if err != nil {
			t.Fatalf("%s: SimulateBatch: %v", bench, err)
		}
		solo := make([]Result, len(jobs))
		for i, j := range jobs {
			if solo[i], err = Simulate(j); err != nil {
				t.Fatalf("%s: Simulate(%s): %v", bench, j.Config.Name, err)
			}
			if !reflect.DeepEqual(batch[i], solo[i]) {
				t.Errorf("%s under %s: batched Result differs from solo:\nbatch: %+v\nsolo:  %+v",
					bench, j.Config.Name, batch[i], solo[i])
			}
			bb, err1 := entryBytes(j, batch[i])
			sb, err2 := entryBytes(j, solo[i])
			if err1 != nil || err2 != nil {
				t.Fatalf("entryBytes: %v / %v", err1, err2)
			}
			if !bytes.Equal(bb, sb) {
				t.Errorf("%s under %s: store entry bytes differ with batching", bench, j.Config.Name)
			}
		}
		mb, err1 := BuildManifest("equiv", jobs, batch)
		ms, err2 := BuildManifest("equiv", jobs, solo)
		if err1 != nil || err2 != nil {
			t.Fatalf("BuildManifest: %v / %v", err1, err2)
		}
		if mb.Root != ms.Root {
			t.Errorf("%s: Merkle root differs with batching: %s vs %s", bench, mb.Root, ms.Root)
		}
	}
}

// TestSimulateBatchInputOrder checks the public kernel's contract over a
// mixed submission: several groups, a singleton and an exact duplicate,
// interleaved — results land at their input indices and the duplicate
// shares its twin's result.
func TestSimulateBatchInputOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	jobs := []Job{
		batchJob("swim", core.Baseline64(), nil),
		batchJob("gcc", core.IFDistr(), nil),
		batchJob("swim", core.MBDistr(), nil),
		{Bench: "mcf", Config: core.Baseline64(), Opt: Options{Warmup: 500, Instructions: 2000}},
		batchJob("swim", core.Baseline64(), nil), // duplicate of jobs[0]
		batchJob("gcc", core.MBDistr(), nil),
	}
	got, err := SimulateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		want, err := Simulate(j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("job %d (%s under %s): batched result differs from solo", i, j.Bench, j.Config.Name)
		}
	}
	if !reflect.DeepEqual(got[4], got[0]) {
		t.Error("duplicate job did not share its twin's result")
	}
}

// TestSimulateBatchBadJobDoesNotPoisonGroup: an invalid configuration in
// a group errors that job only; its siblings simulate normally.
func TestSimulateBatchBadJobDoesNotPoisonGroup(t *testing.T) {
	bad := batchJob("swim", core.Baseline64(), &Machine{ROBSize: 3}) // not a power of two
	good := batchJob("swim", core.MBDistr(), nil)
	got, err := SimulateBatch([]Job{bad, good})
	if err == nil {
		t.Fatal("want an error for the invalid ROB size")
	}
	want, err2 := Simulate(good)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !reflect.DeepEqual(got[1], want) {
		t.Error("sibling of the failed job differs from solo")
	}
}

// TestBatchPlanEdges pins the grouping key's edges: jobs differing only
// in warmup or instruction count must never share a group; jobs
// differing only in machine override share a group but never a machine
// slot (they are distinct members, not duplicates); identical jobs
// deduplicate.
func TestBatchPlanEdges(t *testing.T) {
	base := batchJob("swim", core.Baseline64(), nil)
	warm := base
	warm.Opt.Warmup++
	insts := base
	insts.Opt.Instructions++
	mach := base
	mach.Machine = &Machine{ROBSize: 128}
	other := batchJob("swim", core.MBDistr(), nil)

	groups, singles, dups := batchPlan([]Job{base, warm, insts, other, mach, base})
	if len(groups) != 1 {
		t.Fatalf("groups = %v, want exactly one (base+other+mach)", groups)
	}
	if !reflect.DeepEqual(groups[0], []int{0, 3, 4}) {
		t.Errorf("group members = %v, want [0 3 4]", groups[0])
	}
	if !reflect.DeepEqual(singles, []int{1, 2}) {
		t.Errorf("singles = %v, want [1 2] (warmup and insts variants never co-batch)", singles)
	}
	if len(dups) != 1 || dups[5] != 0 {
		t.Errorf("dups = %v, want {5:0}", dups)
	}
}

// TestEngineBatchesCoBatchableJobs: the scheduler routes a co-batchable
// grid through the lockstep kernel — Batched counts every group member,
// one batch group runs, and the results (and a warm rerun) are exactly
// the per-job path's.
func TestEngineBatchesCoBatchableJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	jobs := []Job{
		batchJob("swim", core.Baseline64(), nil),
		batchJob("swim", core.IFDistr(), nil),
		batchJob("swim", core.MBDistr(), nil),
	}
	e := New(Config{Workers: 2})
	got, err := e.ResultAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Simulated != 3 || st.Batched != 3 {
		t.Errorf("stats = %+v, want Simulated=3 Batched=3", st)
	}
	if e.BatchGroups() != 1 {
		t.Errorf("BatchGroups = %d, want 1", e.BatchGroups())
	}
	plain := New(Config{NoBatch: true})
	want, err := plain.ResultAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if pst := plain.Stats(); pst.Batched != 0 {
		t.Errorf("NoBatch engine batched %d jobs", pst.Batched)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("batched engine results differ from NoBatch engine results")
	}
	// Warm rerun: all memory hits, no new batches.
	if _, err := e.ResultAll(jobs); err != nil {
		t.Fatal(err)
	}
	st2 := e.Stats()
	if st2.MemoryHits != 3 || st2.Simulated != 3 {
		t.Errorf("warm rerun stats = %+v, want MemoryHits=3 Simulated=3", st2)
	}
}

// TestEngineBatchRespectsStore: a job already persisted leaves its batch
// as a disk hit; the remaining members still lockstep, and fresh results
// persist for the next process.
func TestEngineBatchRespectsStore(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	jobs := []Job{
		batchJob("gcc", core.Baseline64(), nil),
		batchJob("gcc", core.IFDistr(), nil),
		batchJob("gcc", core.MBDistr(), nil),
	}
	seed := New(Config{Workers: 1, CacheDir: dir, NoBatch: true})
	if _, err := seed.Result(jobs[0]); err != nil {
		t.Fatal(err)
	}

	e := New(Config{Workers: 1, CacheDir: dir})
	got, err := e.ResultAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.DiskHits != 1 || st.Simulated != 2 || st.Batched != 2 {
		t.Errorf("stats = %+v, want DiskHits=1 Simulated=2 Batched=2", st)
	}
	// Everything is on disk now: a third engine resolves all three warm.
	warm := New(Config{Workers: 1, CacheDir: dir})
	again, err := warm.ResultAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if wst := warm.Stats(); wst.DiskHits != 3 || wst.Simulated != 0 {
		t.Errorf("warm engine stats = %+v, want DiskHits=3", wst)
	}
	if !reflect.DeepEqual(got, again) {
		t.Error("store round-trip changed batched results")
	}
}

// TestBatchWarmupCheckpoint: the first batch of a (benchmark, warmup)
// group records how much trace its warmup consumed; a later batch of the
// same group finds the checkpoint and bulk-materializes the prefix.
func TestBatchWarmupCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := Options{Warmup: 1500, Instructions: 3000}
	mk := func(cfg core.Config, m *Machine) Job {
		return Job{Bench: "mcf", Config: cfg, Opt: opt, Machine: m}
	}
	model, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	warmupMarks.Delete(warmupMarkKey(model, opt.Warmup))

	e := New(Config{Workers: 1})
	first := []Job{mk(core.Baseline64(), nil), mk(core.IFDistr(), nil)}
	if _, err := e.ResultAll(first); err != nil {
		t.Fatal(err)
	}
	mark, ok := warmupMarks.Load(warmupMarkKey(model, opt.Warmup))
	if !ok {
		t.Fatal("no warmup checkpoint recorded after the first batch")
	}
	if pos := mark.(uint64); pos < opt.Warmup {
		t.Errorf("checkpoint %d insts < warmup commit target %d", pos, opt.Warmup)
	}
	if e.BatchWarmupSkips() != 0 {
		t.Errorf("first batch claims a warmup skip: %d", e.BatchWarmupSkips())
	}
	// A different configuration pair, same (benchmark, warmup) group.
	second := []Job{mk(core.MBDistr(), nil), mk(core.Baseline64(), &Machine{ROBSize: 64})}
	if _, err := e.ResultAll(second); err != nil {
		t.Fatal(err)
	}
	if e.BatchWarmupSkips() != 1 {
		t.Errorf("BatchWarmupSkips = %d, want 1", e.BatchWarmupSkips())
	}
}

// TestWarmupMarkKeyUsesModelIdentity: the checkpoint key carries the
// model's full structural identity, so a user-constructed model reusing
// a built-in name with different parameters can never pick up (or
// plant) another model's mark, and different warmups never collide.
func TestWarmupMarkKeyUsesModelIdentity(t *testing.T) {
	a, err := trace.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Seed++ // same name, different stream
	if warmupMarkKey(a, 1000) == warmupMarkKey(b, 1000) {
		t.Error("same-named models with different parameters share a warmup mark key")
	}
	if warmupMarkKey(a, 1000) == warmupMarkKey(a, 1001) {
		t.Error("different warmups share a warmup mark key")
	}
}

// TestBatchConcurrentSweepsRace: concurrent sweeps sharing one engine
// with batching enabled — single-flight dedup stays exact (each distinct
// job simulates once across all sweeps), every sweep sees identical
// results, and the resolution identity (enqueued == completed) holds
// once idle. Run under -race in CI.
func TestBatchConcurrentSweepsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := Options{Warmup: 300, Instructions: 1200}
	var jobs []Job
	for _, bench := range []string{"swim", "gcc"} {
		for _, cfg := range []core.Config{core.Baseline64(), core.IFDistr(), core.MBDistr()} {
			jobs = append(jobs, Job{Bench: bench, Config: cfg, Opt: opt})
		}
	}
	e := New(Config{Workers: 4})

	const sweeps = 6
	results := make([][]Result, sweeps)
	errs := make([]error, sweeps)
	var wg sync.WaitGroup
	for s := 0; s < sweeps; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s], errs[s] = e.ResultAll(jobs)
		}(s)
	}
	wg.Wait()
	for s := 0; s < sweeps; s++ {
		if errs[s] != nil {
			t.Fatalf("sweep %d: %v", s, errs[s])
		}
		if !reflect.DeepEqual(results[s], results[0]) {
			t.Errorf("sweep %d results differ", s)
		}
	}
	st := e.Stats()
	if st.Simulated != int64(len(jobs)) {
		t.Errorf("Simulated = %d, want %d (single-flight dedup across sweeps)", st.Simulated, len(jobs))
	}
	if want := int64(sweeps * len(jobs)); st.Requested != want {
		t.Errorf("Requested = %d, want %d", st.Requested, want)
	}
	if sum := st.Simulated + st.MemoryHits + st.DiskHits + st.Shared + st.Canceled; sum != st.Requested {
		t.Errorf("resolution identity broken: %d resolved of %d requested (%+v)", sum, st.Requested, st)
	}
}

// TestBatchCancelMidSweep: cancelling a batched sweep mid-flight leaves
// the store consistent — claimed lockstep groups finish and persist,
// unclaimed ones cancel — and a warm rerun on the same store completes
// exactly the remainder with zero duplicate simulations.
func TestBatchCancelMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	opt := Options{Warmup: 300, Instructions: 1200}
	var jobs []Job
	for _, bench := range []string{"swim", "gcc", "mcf", "galgel"} {
		for _, cfg := range []core.Config{core.Baseline64(), core.IFDistr(), core.MBDistr()} {
			jobs = append(jobs, Job{Bench: bench, Config: cfg, Opt: opt})
		}
	}

	e := New(Config{Workers: 1, CacheDir: dir})
	ctx, cancel := context.WithCancel(context.Background())
	_, err := e.ResultAllCtx(ctx, jobs, func(p Progress) {
		// Cancel as soon as the first group lands: later groups have not
		// claimed the single worker slot yet.
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := e.Stats()
	if st.Canceled == 0 {
		t.Fatalf("nothing cancelled: %+v", st)
	}
	if sum := st.Simulated + st.MemoryHits + st.DiskHits + st.Shared + st.Canceled; sum != st.Requested {
		t.Errorf("mid-cancel resolution identity broken: %+v", st)
	}

	// Warm rerun on a fresh engine over the same store: persisted groups
	// read back as disk hits, the remainder simulates once each.
	rerun := New(Config{Workers: 1, CacheDir: dir})
	if _, err := rerun.ResultAll(jobs); err != nil {
		t.Fatal(err)
	}
	rst := rerun.Stats()
	if rst.DiskHits != st.Simulated {
		t.Errorf("rerun DiskHits = %d, want %d (everything the cancelled run persisted)", rst.DiskHits, st.Simulated)
	}
	if rst.Simulated+rst.DiskHits != int64(len(jobs)) {
		t.Errorf("rerun did not complete exactly the remainder: %+v over %d jobs", rst, len(jobs))
	}
}

// TestBatchProgressAccounting: batch-resolved jobs report progress like
// any other — Done reaches Total exactly, one event per job, and batched
// jobs surface as SourceSimulated so downstream accounting (streams,
// manifests, consoles) is unchanged.
func TestBatchProgressAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	jobs := []Job{
		batchJob("swim", core.Baseline64(), nil),
		batchJob("swim", core.IFDistr(), nil),
		batchJob("gcc", core.Baseline64(), nil),
	}
	e := New(Config{Workers: 2})
	var events []Progress
	if _, err := e.ResultAllProgress(jobs, func(p Progress) { events = append(events, p) }); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("%d progress events, want %d", len(events), len(jobs))
	}
	for i, p := range events {
		if p.Done != i+1 || p.Total != len(jobs) {
			t.Errorf("event %d: Done/Total = %d/%d", i, p.Done, p.Total)
		}
		if p.Source != SourceSimulated {
			t.Errorf("event %d: source %s, want %s", i, p.Source, SourceSimulated)
		}
	}
}

// FuzzBatchGroupKey checks the grouping key's safety contract, seeded
// from the fingerprint fixtures: two jobs co-batch (share a lockstep
// group) only when benchmark, warmup and instruction count all agree,
// and jobs differing only in machine override are never conflated into
// one machine slot — they keep distinct identities inside the group.
func FuzzBatchGroupKey(f *testing.F) {
	// Seeds from TestFingerprintGolden's pinned jobs plus edge mutations.
	f.Add(uint64(5000), uint64(20000), 0, false, uint64(5000), uint64(20000), 128, true, true)
	f.Add(uint64(5000), uint64(20000), 128, true, uint64(5000), uint64(20000), 128, true, true)
	f.Add(uint64(1000), uint64(4000), 0, false, uint64(1001), uint64(4000), 0, false, true)
	f.Add(uint64(1000), uint64(4000), 0, false, uint64(1000), uint64(4001), 0, false, false)
	f.Fuzz(func(t *testing.T, w1, n1 uint64, rob1 int, p1 bool,
		w2, n2 uint64, rob2 int, p2 bool, sameBench bool) {
		clampPow2 := func(v int) int {
			switch {
			case v <= 0:
				return 0
			case v < 96:
				return 64
			case v < 192:
				return 128
			default:
				return 256
			}
		}
		mk := func(bench string, w, n uint64, rob int, pdis bool) Job {
			j := Job{Bench: bench, Config: core.Baseline64(),
				Opt: Options{Warmup: w % 1_000_000, Instructions: n%1_000_000 + 1}}
			if rob = clampPow2(rob); rob != 0 || pdis {
				j.Machine = &Machine{ROBSize: rob, PerfectDisambiguation: pdis}
			}
			return j
		}
		b2 := "swim"
		if !sameBench {
			b2 = "gcc"
		}
		j1 := mk("swim", w1, n1, rob1, p1)
		j2 := mk(b2, w2, n2, rob2, p2)

		sameRegion := sameBench && j1.Opt == j2.Opt
		if (j1.BatchKey() == j2.BatchKey()) != sameRegion {
			t.Fatalf("BatchKey equality %v, want %v (jobs %+v / %+v)",
				j1.BatchKey() == j2.BatchKey(), sameRegion, j1, j2)
		}

		groups, singles, dups := batchPlan([]Job{j1, j2})
		sameMachine := func(a, b *Machine) bool {
			na, nb := Machine{}, Machine{}
			if a != nil {
				na = *a
			}
			if b != nil {
				nb = *b
			}
			return normalizeForTest(na) == normalizeForTest(nb)
		}
		switch {
		case sameRegion && sameMachine(j1.Machine, j2.Machine):
			// Identical jobs: deduplicated, never two machines.
			if len(dups) != 1 || len(groups) != 0 || len(singles) != 1 {
				t.Fatalf("identical jobs not deduped: groups=%v singles=%v dups=%v", groups, singles, dups)
			}
		case sameRegion:
			// Same trace region, different machines: one group of two
			// distinct members — co-batched, never conflated.
			if len(groups) != 1 || len(groups[0]) != 2 || len(dups) != 0 {
				t.Fatalf("distinct machines mis-planned: groups=%v singles=%v dups=%v", groups, singles, dups)
			}
			if j1.Key() == j2.Key() {
				t.Fatalf("distinct machines share a Key: %s", j1.Key())
			}
		default:
			// Different warmup, instruction count or benchmark: never
			// co-batched.
			if len(groups) != 0 || len(singles) != 2 {
				t.Fatalf("non-co-batchable jobs grouped: groups=%v singles=%v dups=%v", groups, singles, dups)
			}
		}
	})
}

// TestBatchKeyDistinctFromJobKey guards against the grouping key leaking
// configuration identity (which would stop co-batching) or the job key
// dropping it (which would conflate results): fmt must keep them
// separate dimensions.
func TestBatchKeyDistinctFromJobKey(t *testing.T) {
	a := batchJob("swim", core.Baseline64(), nil)
	b := batchJob("swim", core.MBDistr(), nil)
	if a.BatchKey() != b.BatchKey() {
		t.Errorf("config leaked into BatchKey: %q vs %q", a.BatchKey(), b.BatchKey())
	}
	if a.Key() == b.Key() {
		t.Error("distinct configs share a Key")
	}
	if got, want := a.BatchKey(), fmt.Sprintf("swim|w%d|n%d", batchOpt.Warmup, batchOpt.Instructions); got != want {
		t.Errorf("BatchKey = %q, want %q", got, want)
	}
}
