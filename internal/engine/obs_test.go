package engine

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distiq/internal/obs"
)

// scrape renders reg and returns the value of the sample line matching
// prefix exactly up to the value field.
func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := obs.CheckExposition([]byte(b.String())); err != nil {
		t.Fatalf("engine exposition invalid: %v", err)
	}
	return b.String()
}

func sampleValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition:\n%s", series, exposition)
	return 0
}

// TestEngineMetricsMatchStats pins the acceptance criterion that the
// engine's /metrics counters are definitionally identical to /v1/stats:
// both read the same Stats snapshot.
func TestEngineMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	var calls atomic.Int64
	e := New(Config{
		Workers:  2,
		CacheDir: t.TempDir(),
		Simulate: slowStub(0, &calls),
		Obs:      reg,
	})
	jobs := cancelJobs(6)
	jobs = append(jobs, jobs[0]) // duplicate: memory or shared hit
	if _, err := e.ResultAll(jobs); err != nil {
		t.Fatalf("ResultAll: %v", err)
	}
	if _, err := e.Result(jobs[1]); err != nil { // guaranteed memory hit
		t.Fatalf("Result: %v", err)
	}

	st := e.Stats()
	got := scrape(t, reg)
	for series, want := range map[string]int64{
		"distiq_engine_requests_total":                  st.Requested,
		`distiq_engine_jobs_total{source="simulated"}`:  st.Simulated,
		`distiq_engine_jobs_total{source="memory"}`:     st.MemoryHits,
		`distiq_engine_jobs_total{source="disk"}`:       st.DiskHits,
		`distiq_engine_jobs_total{source="shared"}`:     st.Shared,
		`distiq_engine_jobs_total{source="canceled"}`:   st.Canceled,
		"distiq_engine_disk_errors_total":               st.DiskErrors,
		"distiq_engine_queue_depth":                     0,
		"distiq_engine_workers_busy":                    0,
		"distiq_engine_workers":                         2,
		"distiq_engine_simulate_duration_seconds_count": st.Simulated,
	} {
		if v := sampleValue(t, got, series); v != float64(want) {
			t.Errorf("%s = %g, want %d", series, v, want)
		}
	}
	if st.MemoryHits == 0 {
		t.Error("test exercised no memory hit; coverage hole")
	}
}

// TestEngineGaugesTrackOccupancy observes the queue-depth and
// workers-busy gauges while the pool is saturated.
func TestEngineGaugesTrackOccupancy(t *testing.T) {
	reg := obs.NewRegistry()
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	e := New(Config{Workers: 2, Obs: reg, Simulate: func(j Job) (Result, error) {
		entered <- struct{}{}
		<-release
		var r Result
		r.Benchmark = j.Bench
		return r, nil
	}})
	jobs := cancelJobs(5)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := e.ResultAll(jobs); err != nil {
			t.Errorf("ResultAll: %v", err)
		}
	}()
	<-entered
	<-entered // both slots occupied, three jobs queued
	waitFor := func(series string, want float64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if v := sampleValue(t, scrape(t, reg), series); v == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %g:\n%s", series, want, scrape(t, reg))
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("distiq_engine_workers_busy", 2)
	waitFor("distiq_engine_queue_depth", 3)
	close(release)
	<-done
	waitFor("distiq_engine_workers_busy", 0)
	waitFor("distiq_engine_queue_depth", 0)
}

// TestResultAllProgressMonotonicOnSuccess pins batch-scoped progress:
// Done increases by exactly one per event, Total is fixed at the batch
// size, and the final event has Done == Total.
func TestResultAllProgressMonotonicOnSuccess(t *testing.T) {
	var calls atomic.Int64
	e := New(Config{Workers: 4, Simulate: slowStub(100*time.Microsecond, &calls)})
	jobs := cancelJobs(20)
	jobs = append(jobs, jobs[0], jobs[1]) // duplicates resolve via cache/share

	var events []Progress
	results, err := e.ResultAllProgress(jobs, func(p Progress) {
		events = append(events, p)
	})
	if err != nil {
		t.Fatalf("ResultAllProgress: %v", err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	if len(events) != len(jobs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(jobs))
	}
	for i, p := range events {
		if p.Done != i+1 {
			t.Fatalf("event %d: Done = %d, want %d (monotonic +1)", i, p.Done, i+1)
		}
		if p.Total != len(jobs) {
			t.Fatalf("event %d: Total = %d, want %d", i, p.Total, len(jobs))
		}
	}
	if last := events[len(events)-1]; last.Done != last.Total {
		t.Fatalf("final event %+v, want Done == Total", last)
	}
}

// TestResultAllProgressUnderCancellation pins the mid-cancel contract:
// every job still produces exactly one progress event (canceled points
// included), Done stays monotonic and reaches Total, and the batch error
// is the context error. Run under -race in CI.
func TestResultAllProgressUnderCancellation(t *testing.T) {
	var calls atomic.Int64
	e := New(Config{Workers: 2, Simulate: slowStub(300*time.Microsecond, &calls)})
	jobs := cancelJobs(40)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	var events []Progress
	_, err := e.ResultAllCtx(ctx, jobs, func(p Progress) {
		events = append(events, p)
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("got %d progress events, want %d (every job emits, canceled included)", len(events), len(jobs))
	}
	var canceled int
	for i, p := range events {
		if p.Done != i+1 {
			t.Fatalf("event %d: Done = %d, want %d", i, p.Done, i+1)
		}
		if p.Total != len(jobs) {
			t.Fatalf("event %d: Total = %d, want %d", i, p.Total, len(jobs))
		}
		if p.Source == SourceCanceled {
			canceled++
		}
	}
	if err != nil && canceled == 0 {
		t.Error("cancelled batch reported no canceled progress events")
	}
	if events[len(events)-1].Done != len(jobs) {
		t.Fatal("final progress event did not reach Done == Total")
	}
	t.Logf("cancelled batch: %d canceled of %d (%s)", canceled, len(jobs),
		map[bool]string{true: "cancelled", false: "completed"}[err != nil])
}

// TestBatchProgressIndependentOfEngineProgress: batch-scoped events are
// in addition to the engine-wide callback, each with its own Done/Total.
func TestBatchProgressIndependentOfEngineProgress(t *testing.T) {
	var calls atomic.Int64
	var engineEvents atomic.Int64
	e := New(Config{
		Workers:  2,
		Simulate: slowStub(0, &calls),
		Progress: func(Progress) { engineEvents.Add(1) },
	})
	jobs := cancelJobs(8)
	var batchEvents int
	if _, err := e.ResultAllProgress(jobs, func(p Progress) {
		batchEvents++
		if p.Total != len(jobs) {
			t.Errorf("batch event Total = %d, want %d", p.Total, len(jobs))
		}
	}); err != nil {
		t.Fatalf("ResultAllProgress: %v", err)
	}
	if batchEvents != len(jobs) {
		t.Errorf("batch events = %d, want %d", batchEvents, len(jobs))
	}
	if engineEvents.Load() != int64(len(jobs)) {
		t.Errorf("engine-wide events = %d, want %d", engineEvents.Load(), len(jobs))
	}
}
