package engine

import (
	"strings"
	"testing"

	"distiq/internal/core"
)

// TestSeedZeroIdentityUnchanged pins that the replication axis is
// invisible at seed zero: the canonical string has no seed segment, so
// every pre-axis fingerprint (and warm store entry) stays valid.
func TestSeedZeroIdentityUnchanged(t *testing.T) {
	j := Job{Bench: "swim", Config: core.MBDistr(), Opt: Options{Warmup: 100, Instructions: 1000}}
	c0, ok := j.canonical()
	if !ok {
		t.Fatal("canonical not ok")
	}
	if strings.Contains(c0, "seed:") {
		t.Fatalf("seed-zero canonical carries a seed segment: %s", c0)
	}
	j.Seed = 7
	c7, ok := j.canonical()
	if !ok {
		t.Fatal("canonical not ok")
	}
	if !strings.HasSuffix(c7, "|seed:7") {
		t.Fatalf("seeded canonical missing seed segment: %s", c7)
	}
	if !strings.HasPrefix(c7, c0) {
		t.Fatalf("seed segment must append, not rewrite: %q vs %q", c0, c7)
	}
	if j.BatchKey() == (Job{Bench: "swim", Opt: j.Opt}).BatchKey() {
		t.Fatal("seeded BatchKey equals seed-zero BatchKey")
	}
}

// TestSeedDistinctFingerprints verifies distinct replication seeds get
// distinct fingerprints (distinct store entries) and never co-batch.
func TestSeedDistinctFingerprints(t *testing.T) {
	opt := Options{Warmup: 100, Instructions: 1000}
	seen := map[string]uint64{}
	for _, seed := range []uint64{0, 1, 2, 7, 1 << 40} {
		j := Job{Bench: "swim", Config: core.Baseline64(), Opt: opt, Seed: seed}
		fp, ok := j.Fingerprint()
		if !ok {
			t.Fatalf("seed %d: no fingerprint", seed)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("seeds %d and %d share fingerprint %s", prev, seed, fp)
		}
		seen[fp] = seed
	}

	jobs := []Job{
		{Bench: "swim", Config: core.Baseline64(), Opt: opt, Seed: 1},
		{Bench: "swim", Config: core.MBDistr(), Opt: opt, Seed: 2},
	}
	groups, singles, _ := batchPlan(jobs)
	if len(groups) != 0 || len(singles) != 2 {
		t.Fatalf("different seeds co-batched: groups=%v singles=%v", groups, singles)
	}
	jobs[1].Seed = 1
	groups, singles, _ = batchPlan(jobs)
	if len(groups) != 1 || len(singles) != 0 {
		t.Fatalf("same-seed distinct configs should co-batch: groups=%v singles=%v", groups, singles)
	}
}

// TestSeedPerturbsResults checks a non-zero seed actually changes the
// replayed instruction stream: the measured run differs from canonical,
// and the same seed reproduces itself exactly.
func TestSeedPerturbsResults(t *testing.T) {
	opt := Options{Warmup: 1_000, Instructions: 10_000}
	base := Job{Bench: "swim", Config: core.Baseline64(), Opt: opt}
	r0, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	seeded := base
	seeded.Seed = 3
	r3, err := Simulate(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Cycles == r3.Cycles && r0.IQEnergy == r3.IQEnergy {
		t.Fatal("seed 3 reproduced the canonical stream exactly; the perturbation is not reaching the model")
	}
	again, err := Simulate(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles != r3.Cycles || again.IQEnergy != r3.IQEnergy {
		t.Fatal("same seed did not reproduce the same result")
	}
}

// TestSeedBatchMatchesSolo pins the lockstep kernel's seeded path: a
// co-batched group of seeded jobs produces bit-identical results to solo
// Simulate calls of the same jobs.
func TestSeedBatchMatchesSolo(t *testing.T) {
	opt := Options{Warmup: 500, Instructions: 5_000}
	jobs := []Job{
		{Bench: "gzip", Config: core.Baseline64(), Opt: opt, Seed: 11},
		{Bench: "gzip", Config: core.MBDistr(), Opt: opt, Seed: 11},
	}
	batched, err := SimulateBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		solo, err := Simulate(j)
		if err != nil {
			t.Fatal(err)
		}
		if batched[i].Cycles != solo.Cycles || batched[i].IQEnergy != solo.IQEnergy {
			t.Fatalf("job %d: batched result differs from solo", i)
		}
	}
}
