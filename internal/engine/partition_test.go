package engine

import (
	"testing"

	"distiq/internal/core"
)

// TestShardIndexDeterministic: the fingerprint → shard map is a pure
// function — same fingerprint, same shard, every call — and lands in
// range for any fleet size.
func TestShardIndexDeterministic(t *testing.T) {
	jobs := batchJobs(16)
	for _, j := range jobs {
		fp, ok := j.Fingerprint()
		if !ok {
			t.Fatal("test job not content-addressable")
		}
		for _, n := range []int{1, 2, 3, 7} {
			w := ShardIndex(fp, n)
			if w < 0 || w >= n {
				t.Fatalf("ShardIndex(%s, %d) = %d, out of range", fp, n, w)
			}
			if again := ShardIndex(fp, n); again != w {
				t.Fatalf("ShardIndex not deterministic: %d then %d", w, again)
			}
		}
	}
}

// TestPartitionJobsCoversEveryPointOnce: the per-worker partitions are
// a disjoint cover of the job list, and every index sits on the worker
// its fingerprint maps to.
func TestPartitionJobsCoversEveryPointOnce(t *testing.T) {
	jobs := batchJobs(16)
	parts, err := PartitionJobs(jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(jobs))
	for w, part := range parts {
		for _, i := range part {
			if seen[i] {
				t.Fatalf("job %d assigned twice", i)
			}
			seen[i] = true
			fp, _ := jobs[i].Fingerprint()
			if want := ShardIndex(fp, 3); want != w {
				t.Fatalf("job %d on worker %d, fingerprint maps to %d", i, w, want)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("job %d assigned to no worker", i)
		}
	}
}

// TestPartitionJobsRejectsUnaddressable: a Custom-scheme job has no
// fingerprint, and partitioning reports it before any work is placed.
func TestPartitionJobsRejectsUnaddressable(t *testing.T) {
	cfg := core.MBDistr()
	cfg.FP.Custom = func(core.DomainConfig, core.Options) (core.Scheme, error) { return nil, nil }
	custom := quickJob("swim", cfg)
	if _, err := PartitionJobs([]Job{custom}, 2); err == nil {
		t.Fatal("partitioning a custom-scheme job succeeded")
	}
	if _, err := PartitionJobs(batchJobs(2), 0); err == nil {
		t.Fatal("partitioning across zero workers succeeded")
	}
}
