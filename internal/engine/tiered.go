package engine

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"distiq/internal/obs"
)

// Tiered is the read-through tier combinator: levels ordered fastest to
// most authoritative (canonically memory → disk → remote). Get consults
// each level in order and, on a hit, backfills the entry byte-exactly
// into every faster level, so hot entries migrate toward memory; Put
// writes through to every level. The distiq-v2 fingerprint is the common
// key, so any ResultStore can serve at any level.
type Tiered struct {
	levels []ResultStore

	// hits[i] counts Gets satisfied at level i; repairs[i] counts
	// corrupt entries at level i overwritten byte-exactly from a deeper
	// level's valid copy; misses counts Gets no level satisfied.
	// Exposed on /metrics via Instrument.
	hits    []atomic.Int64
	repairs []atomic.Int64
	misses  atomic.Int64
}

// NewTiered combines levels (fastest first) into one store. At least one
// level is required.
func NewTiered(levels ...ResultStore) *Tiered {
	if len(levels) == 0 {
		panic("engine: NewTiered needs at least one level")
	}
	return &Tiered{
		levels:  levels,
		hits:    make([]atomic.Int64, len(levels)),
		repairs: make([]atomic.Int64, len(levels)),
	}
}

// Levels returns the tier's levels, fastest first.
func (t *Tiered) Levels() []ResultStore { return t.levels }

// Get reads through the tiers: the first level holding a valid entry for
// the job serves it, and the entry's exact bytes are backfilled into
// every faster level (best-effort) so the next Get stops sooner. A
// faster level whose bytes were readable but failed validation is not
// just skipped — the backfill overwrites the corrupt entry with the
// deeper level's valid copy, and the repair is counted, so corruption
// heals on first touch instead of being re-read and re-rejected on
// every Get.
func (t *Tiered) Get(fp string, job Job) (Result, bool) {
	var corrupt uint64 // levels whose bytes read but failed to validate
	for i, lvl := range t.levels {
		raw, err := lvl.Raw(fp)
		if err != nil {
			continue
		}
		r, ok := decodeEntry(raw, job)
		if !ok {
			if i < 64 {
				corrupt |= 1 << uint(i)
			}
			continue
		}
		t.hits[i].Add(1)
		for j := 0; j < i; j++ {
			rp, ok := t.levels[j].(RawPutter)
			if !ok {
				continue
			}
			if err := rp.PutRaw(fp, raw); err == nil && corrupt&(1<<uint(j)) != 0 {
				t.repairs[j].Add(1)
			}
			// Backfill (and so repair) is advisory: a level that cannot
			// accept the write stays degraded, never fails the Get.
		}
		return r, true
	}
	t.misses.Add(1)
	return Result{}, false
}

// Put writes through to every level. The first failure is reported (all
// levels are still attempted, so one degraded tier does not stop the
// others from persisting).
func (t *Tiered) Put(fp string, job Job, r Result) error {
	data, err := entryBytes(job, r)
	if err != nil {
		return fmt.Errorf("engine: encode result: %w", err)
	}
	return t.PutRaw(fp, data)
}

// PutRaw writes pre-encoded entry bytes through to every level.
func (t *Tiered) PutRaw(fp string, data []byte) error {
	var firstErr error
	for _, lvl := range t.levels {
		var err error
		if rp, ok := lvl.(RawPutter); ok {
			err = rp.PutRaw(fp, data)
		} else {
			err = fmt.Errorf("engine: tier level %T cannot store raw entries", lvl)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Has reports whether any level holds an entry for fp.
func (t *Tiered) Has(fp string) bool {
	for _, lvl := range t.levels {
		if lvl.Has(fp) {
			return true
		}
	}
	return false
}

// Raw returns the entry bytes from the first level holding fp.
func (t *Tiered) Raw(fp string) ([]byte, error) {
	var firstErr error
	for _, lvl := range t.levels {
		data, err := lvl.Raw(fp)
		if err == nil {
			return data, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// Close closes every level; the first failure is reported.
func (t *Tiered) Close() error {
	var firstErr error
	for _, lvl := range t.levels {
		if err := lvl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Instrument registers the tier's hit/miss/repair counters on reg: one
// distiq_store_tier_hits_total and distiq_store_tier_repairs_total
// series per level (labeled by tier index and backend kind) plus
// distiq_store_tier_misses_total.
func (t *Tiered) Instrument(reg *obs.Registry) {
	for i := range t.levels {
		i := i
		labels := []obs.Label{obs.L("tier", strconv.Itoa(i)), obs.L("kind", storeKind(t.levels[i]))}
		reg.CounterFunc("distiq_store_tier_hits_total",
			"Store reads satisfied at this tier level (0 = fastest).",
			func() float64 { return float64(t.hits[i].Load()) }, labels...)
		reg.CounterFunc("distiq_store_tier_repairs_total",
			"Corrupt entries at this tier level overwritten from a deeper level's valid copy.",
			func() float64 { return float64(t.repairs[i].Load()) }, labels...)
	}
	reg.CounterFunc("distiq_store_tier_misses_total",
		"Store reads no tier level satisfied.",
		func() float64 { return float64(t.misses.Load()) })
}

// storeKind names a backend for metric labels and log lines.
func storeKind(s ResultStore) string {
	switch s.(type) {
	case *Store:
		return "fs"
	case *MemStore:
		return "mem"
	case *HTTPStore:
		return "http"
	case *Tiered:
		return "tier"
	case *Batcher:
		return "batch"
	}
	return "custom"
}

// compile-time interface checks.
var (
	_ ResultStore = (*Tiered)(nil)
	_ RawPutter   = (*Tiered)(nil)
)
