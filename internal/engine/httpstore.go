package engine

import (
	"fmt"
	"net/http"

	"distiq/internal/blobstore"
)

// HTTPStore is the remote ResultStore: entries live as blobs named
// <fingerprint>.json on a blobstore service (the minimal S3-like GET/
// PUT/HEAD protocol of internal/blobstore). Blob names match the FS
// store's file names, so a bucket is a drop-in replacement for a shared
// cache directory. Transport failures follow the store contract: a
// failed read is a miss (the engine re-simulates), a failed write is a
// DiskError (best-effort persistence, never a job failure).
type HTTPStore struct {
	c *blobstore.Client
}

// NewHTTPStore returns a store speaking to the blob service at base
// (e.g. "http://cache.internal:9000/distiq"). A nil hc selects a client
// with bounded per-request timeouts (blobstore.DefaultTimeout), so a
// hung blob server degrades into store misses instead of stalling a
// sweep forever; pass an explicit client to tune or remove the bound
// (the -store spec's ?timeout= parameter does this from the CLI).
func NewHTTPStore(base string, hc *http.Client) *HTTPStore {
	return &HTTPStore{c: blobstore.NewClient(base, hc)}
}

// Base returns the remote service's base URL.
func (s *HTTPStore) Base() string { return s.c.Base() }

func key(fp string) string { return fp + ".json" }

// Get fetches and validates the entry for fp; absence, transport
// failure, or an identity mismatch is a miss.
func (s *HTTPStore) Get(fp string, job Job) (Result, bool) {
	data, ok, err := s.c.Get(key(fp))
	if err != nil || !ok {
		return Result{}, false
	}
	return decodeEntry(data, job)
}

// Put stores the canonical entry bytes for (job, r) under fp.
func (s *HTTPStore) Put(fp string, job Job, r Result) error {
	data, err := entryBytes(job, r)
	if err != nil {
		return fmt.Errorf("engine: encode result: %w", err)
	}
	return s.PutRaw(fp, data)
}

// PutRaw stores pre-encoded entry bytes under fp.
func (s *HTTPStore) PutRaw(fp string, data []byte) error {
	return s.c.Put(key(fp), data)
}

// Has probes the remote service for fp; transport failures read as
// absent.
func (s *HTTPStore) Has(fp string) bool {
	ok, err := s.c.Head(key(fp))
	return err == nil && ok
}

// Raw returns the exact stored entry bytes for fp.
func (s *HTTPStore) Raw(fp string) ([]byte, error) {
	data, ok, err := s.c.Get(key(fp))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("engine: httpstore: no entry for %s", fp)
	}
	return data, nil
}

// Close is a no-op: every Put is already committed on return.
func (s *HTTPStore) Close() error { return nil }

// compile-time interface checks.
var (
	_ ResultStore = (*HTTPStore)(nil)
	_ RawPutter   = (*HTTPStore)(nil)
)
