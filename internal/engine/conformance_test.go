package engine

// The cross-backend conformance suite: every ResultStore implementation
// must satisfy the same observable contract (documented on the
// interface), so the engine's warm-rerun, single-flight and manifest
// semantics hold whichever backend is selected. Each invariant runs
// against every backend — filesystem, in-memory, HTTP blob, the tier
// combinator and the write-behind batcher — over fresh backing state.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"distiq/internal/blobstore"
	"distiq/internal/core"
)

// confFactory builds a fresh store over fresh backing state plus a
// reopen function returning a second handle over the SAME backing state
// — the cross-process view. reopen flushes buffered writes first, so
// everything Put before it must be visible through the new handle.
type confFactory func(t *testing.T) (store ResultStore, reopen func() ResultStore)

// confFactories enumerates every backend under conformance. Keep this in
// sync with the backends OpenStore can build — a new backend lands here
// or its contract is unproven.
func confFactories() map[string]confFactory {
	return map[string]confFactory{
		"fs": func(t *testing.T) (ResultStore, func() ResultStore) {
			dir := t.TempDir()
			return NewStore(dir), func() ResultStore { return NewStore(dir) }
		},
		"mem": func(t *testing.T) (ResultStore, func() ResultStore) {
			// A MemStore is process-local: "reopening" the same backing
			// state means sharing the value, as engines sharing one store
			// handle do.
			s := NewMemStore()
			return s, func() ResultStore { return s }
		},
		"http": func(t *testing.T) (ResultStore, func() ResultStore) {
			srv := httptest.NewServer(blobstore.NewServer())
			t.Cleanup(srv.Close)
			return NewHTTPStore(srv.URL, srv.Client()),
				func() ResultStore { return NewHTTPStore(srv.URL, srv.Client()) }
		},
		"tiered": func(t *testing.T) (ResultStore, func() ResultStore) {
			// The canonical memory → disk → remote stack; reopen rebuilds
			// the tier with a cold memory level over the same disk and
			// remote state.
			dir := t.TempDir()
			srv := httptest.NewServer(blobstore.NewServer())
			t.Cleanup(srv.Close)
			mk := func() ResultStore {
				return NewTiered(NewMemStore(), NewStore(dir), NewHTTPStore(srv.URL, srv.Client()))
			}
			return mk(), mk
		},
		"batched": func(t *testing.T) (ResultStore, func() ResultStore) {
			dir := t.TempDir()
			b := NewBatcher(NewStore(dir), BatcherConfig{})
			t.Cleanup(func() { b.Close() }) //nolint:errcheck // test teardown
			return b, func() ResultStore { b.Flush(); return NewStore(dir) }
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range confFactories() {
		t.Run(name, func(t *testing.T) { testStoreConformance(t, mk) })
	}
}

// confResult is a distinguishable deterministic result for job.
func confResult(job Job) Result {
	var r Result
	r.Benchmark = job.Bench
	r.Config = job.Config.Name
	r.Insts = job.Opt.Instructions
	r.Cycles = job.Opt.Instructions / 2
	r.IQEnergy = 4242
	return r
}

// staleEntryBytes renders an otherwise-valid entry carrying a previous
// format version, as a store left behind by an older build would hold.
func staleEntryBytes(job Job, r Result) ([]byte, error) {
	ent := entry{
		Version:      storeVersion - 1,
		Benchmark:    job.Bench,
		Config:       job.Config.Name,
		Machine:      job.machineCanon(),
		Warmup:       job.Opt.Warmup,
		Instructions: job.Opt.Instructions,
		Result:       r,
	}
	return json.MarshalIndent(ent, "", " ")
}

// testStoreConformance pins the ResultStore contract against one
// backend. mk is called per invariant, so each starts from empty state.
func testStoreConformance(t *testing.T, mk confFactory) {
	job := quickJob("swim", core.MBDistr())
	fp, ok := job.Fingerprint()
	if !ok {
		t.Fatal("conformance job not content-addressable")
	}
	res := confResult(job)
	want, err := entryBytes(job, res)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("AbsentIsMiss", func(t *testing.T) {
		st, _ := mk(t)
		if _, ok := st.Get(fp, job); ok {
			t.Fatal("Get hit on an empty store")
		}
		if st.Has(fp) {
			t.Fatal("Has true on an empty store")
		}
		if _, err := st.Raw(fp); err == nil {
			t.Fatal("Raw succeeded on an empty store")
		}
	})

	t.Run("PutGetRoundTrip", func(t *testing.T) {
		st, _ := mk(t)
		if err := st.Put(fp, job, res); err != nil {
			t.Fatal(err)
		}
		got, ok := st.Get(fp, job)
		if !ok {
			t.Fatal("Put-then-Get missed")
		}
		if !reflect.DeepEqual(got, res) {
			t.Fatalf("round trip altered the result: %+v vs %+v", got, res)
		}
		if !st.Has(fp) {
			t.Fatal("Has false after Put")
		}
		raw, err := st.Raw(fp)
		if err != nil {
			t.Fatal(err)
		}
		// Byte identity is what manifest verification hashes: every
		// backend must hold the exact canonical entry encoding.
		if !bytes.Equal(raw, want) {
			t.Fatalf("Raw bytes differ from the canonical entry encoding:\n got %q\nwant %q", raw, want)
		}
	})

	t.Run("IdentityMismatchIsMiss", func(t *testing.T) {
		st, _ := mk(t)
		if err := st.Put(fp, job, res); err != nil {
			t.Fatal(err)
		}
		other := quickJob("gzip", core.Baseline64())
		if _, ok := st.Get(fp, other); ok {
			t.Fatal("entry stored for one job served to another")
		}
	})

	t.Run("StaleVersionIsMiss", func(t *testing.T) {
		st, _ := mk(t)
		stale, err := staleEntryBytes(job, res)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.(RawPutter).PutRaw(fp, stale); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Get(fp, job); ok {
			t.Fatal("stale-version entry served as a hit")
		}
		// Has reports raw existence without validating — the stale entry
		// is present, just never served.
		if !st.Has(fp) {
			t.Fatal("Has false for a present (if stale) entry")
		}
	})

	t.Run("TornWriteIsMiss", func(t *testing.T) {
		st, _ := mk(t)
		if err := st.(RawPutter).PutRaw(fp, want[:len(want)/2]); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Get(fp, job); ok {
			t.Fatal("torn entry served as a hit")
		}
	})

	t.Run("ConcurrentPutIdempotent", func(t *testing.T) {
		st, _ := mk(t)
		const writers = 16
		errs := make([]error, writers)
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = st.Put(fp, job, res)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("concurrent Put %d: %v", i, err)
			}
		}
		got, ok := st.Get(fp, job)
		if !ok || !reflect.DeepEqual(got, res) {
			t.Fatalf("entry invalid after concurrent Puts: ok=%v %+v", ok, got)
		}
		raw, err := st.Raw(fp)
		if err != nil || !bytes.Equal(raw, want) {
			t.Fatalf("raw bytes damaged by concurrent Puts (err=%v)", err)
		}
	})

	t.Run("CrossProcessReuse", func(t *testing.T) {
		st, reopen := mk(t)
		if err := st.Put(fp, job, res); err != nil {
			t.Fatal(err)
		}
		st2 := reopen()
		got, ok := st2.Get(fp, job)
		if !ok {
			t.Fatal("second handle over the same backing state missed")
		}
		if !reflect.DeepEqual(got, res) {
			t.Fatalf("second handle altered the result: %+v vs %+v", got, res)
		}
		raw, err := st2.Raw(fp)
		if err != nil || !bytes.Equal(raw, want) {
			t.Fatalf("second handle's raw bytes differ (err=%v)", err)
		}
	})
}
