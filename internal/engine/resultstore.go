package engine

import "encoding/json"

// ResultStore is the persistent result cache behind the engine: a
// content-addressed map from a job's distiq-v2 fingerprint (Job.Fingerprint)
// to the canonical JSON entry for its result. The engine consults it before
// simulating and persists fresh results through it, so any backend that
// honors the contract below is interchangeable — the same warm-rerun,
// single-flight and manifest semantics hold over a local directory, an
// in-process map, a remote blob service or any tier of them.
//
// Contract (pinned for every implementation by the shared conformance
// suite in conformance_test.go):
//
//   - Get validates the stored entry against the requesting job: a missing
//     entry, a stale format version, an identity mismatch, or a torn or
//     otherwise undecodable entry is a miss (false), never an error.
//   - Put persists the exact canonical entry bytes (entryBytes) so that a
//     Merkle manifest built in memory verifies byte-for-byte against the
//     stored entries. Put is idempotent: concurrent Puts of the same
//     fingerprint are safe and leave one valid entry.
//   - Has reports entry existence without validating its contents.
//   - Raw returns the exact stored entry bytes — the enumeration hook
//     manifest verification hashes (Manifest.VerifyIn); it reports an
//     error for absent entries.
//   - Close flushes buffered state and releases resources; a store must
//     be fully readable by other handles over the same backing state
//     after Close returns.
//
// All methods must be safe for concurrent use.
type ResultStore interface {
	Get(fp string, job Job) (Result, bool)
	Put(fp string, job Job, r Result) error
	Has(fp string) bool
	Raw(fp string) ([]byte, error)
	Close() error
}

// RawPutter is optionally implemented by backends that can store
// pre-encoded canonical entry bytes directly. Tier backfill uses it to
// copy entries byte-exactly between levels, and the conformance suite
// uses it to plant stale-version and torn entries.
type RawPutter interface {
	PutRaw(fp string, data []byte) error
}

// decodeEntry decodes canonical entry bytes and validates them against
// the requesting job's identity: version, benchmark, configuration name,
// applied machine and run lengths must all match. Any decode failure or
// mismatch is a miss — the shared read-side semantics of every backend.
func decodeEntry(data []byte, job Job) (Result, bool) {
	var ent entry
	if err := json.Unmarshal(data, &ent); err != nil {
		return Result{}, false
	}
	if ent.Version != storeVersion ||
		ent.Benchmark != job.Bench || ent.Config != job.Config.Name ||
		ent.Machine != job.machineCanon() ||
		ent.Warmup != job.Opt.Warmup || ent.Instructions != job.Opt.Instructions {
		return Result{}, false
	}
	return ent.Result, true
}
