package engine

import (
	"fmt"
	"io"
	"sync"
)

// Source says how a job was resolved.
type Source string

const (
	// SourceSimulated jobs ran the simulator.
	SourceSimulated Source = "simulated"
	// SourceMemory jobs hit the in-memory cache.
	SourceMemory Source = "memory"
	// SourceDisk jobs were loaded from the persistent store.
	SourceDisk Source = "disk"
	// SourceShared jobs waited on an identical in-flight job.
	SourceShared Source = "shared"
	// SourceCanceled requests were abandoned by context cancellation
	// before a result was available.
	SourceCanceled Source = "canceled"
)

// Progress describes one resolved job. Done counts jobs resolved so far
// and Total jobs requested so far; Total grows as batches are submitted,
// and Done == Total whenever the engine is idle.
type Progress struct {
	Done, Total int
	Job         Job
	Source      Source
}

// ConsoleReporter renders engine progress as a single self-overwriting
// status line, suitable for a terminal's stderr. Its Report method is the
// Config.Progress callback; call Finish once at the end to terminate the
// status line before printing anything else.
type ConsoleReporter struct {
	mu    sync.Mutex
	w     io.Writer
	wrote bool
}

// NewConsoleReporter returns a reporter writing to w.
func NewConsoleReporter(w io.Writer) *ConsoleReporter {
	return &ConsoleReporter{w: w}
}

// Report writes the updated status line.
func (c *ConsoleReporter) Report(p Progress) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wrote = true
	fmt.Fprintf(c.w, "\r[%d/%d] %s under %s (%s)\x1b[K",
		p.Done, p.Total, p.Job.Bench, p.Job.Config.Name, p.Source)
}

// Finish terminates the status line, if one was written.
func (c *ConsoleReporter) Finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.wrote {
		fmt.Fprintln(c.w)
		c.wrote = false
	}
}
