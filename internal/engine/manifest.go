package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// Sweep manifests are the integrity artifact of a completed sweep: a
// deterministic Merkle tree over the grid points' content-addressed
// result entries. The leaf for point i is the SHA-256 of the exact
// canonical bytes the persistent store writes for that job (see
// entryBytes), domain-separated RFC 6962 style — leaf = H(0x00 || data),
// inner = H(0x01 || left || right), with an odd trailing node promoted
// unchanged to the next level. Leaves are taken in grid order, so two
// runs of the same grid — any machine, any parallelism — produce the
// same root, and any tampered, truncated or substituted stored result
// changes it.

const (
	// ManifestVersion tags the manifest JSON layout.
	ManifestVersion = "distiq-manifest-v1"
	// ManifestAlgo names the hash construction used for leaves and
	// inner nodes.
	ManifestAlgo = "sha256-rfc6962"
)

// ManifestLeaf is one grid point's entry in a sweep manifest.
type ManifestLeaf struct {
	// Index is the point's position in grid order.
	Index int `json:"index"`
	// Benchmark and Config identify the point for human readers; the
	// fingerprint alone is an opaque hash.
	Benchmark string `json:"benchmark"`
	Config    string `json:"config"`
	// Fingerprint is the job's store content address (the stored file
	// is <fingerprint>.json).
	Fingerprint string `json:"fingerprint"`
	// Hash is the hex leaf hash: SHA-256 over 0x00 followed by the
	// canonical store-entry bytes.
	Hash string `json:"hash"`
}

// Manifest is the tamper-evident summary of one completed sweep.
type Manifest struct {
	Version string `json:"version"`
	// Name labels the sweep (a sweep ID or spec name); informational.
	Name   string         `json:"name,omitempty"`
	Points int            `json:"points"`
	Algo   string         `json:"algo"`
	Root   string         `json:"root"`
	Leaves []ManifestLeaf `json:"leaves"`
}

// LeafHash returns the hex manifest leaf hash for one job's result. It
// reports an error for jobs that have no canonical encoding (Custom
// scheme configurations cannot be content-addressed).
func LeafHash(job Job, r Result) (string, error) {
	if _, ok := job.Fingerprint(); !ok {
		return "", fmt.Errorf("engine: job %s/%s has no content address (custom scheme)", job.Bench, job.Config.Name)
	}
	data, err := entryBytes(job, r)
	if err != nil {
		return "", fmt.Errorf("engine: encode manifest leaf: %w", err)
	}
	return hashLeafBytes(data), nil
}

// hashLeafBytes hashes raw canonical entry bytes into a hex leaf hash.
func hashLeafBytes(data []byte) string {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// merkleRoot folds leaf-level hashes into the hex root. An empty tree
// has the conventional root SHA-256 of the empty string; an odd node at
// any level is promoted unchanged.
func merkleRoot(level [][]byte) string {
	if len(level) == 0 {
		sum := sha256.Sum256(nil)
		return hex.EncodeToString(sum[:])
	}
	for len(level) > 1 {
		next := make([][]byte, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			h := sha256.New()
			h.Write([]byte{0x01})
			h.Write(level[i])
			h.Write(level[i+1])
			next = append(next, h.Sum(nil))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return hex.EncodeToString(level[0])
}

// BuildManifest assembles the manifest for a completed sweep: jobs and
// results are the grid's points in grid order. Every job must be
// content-addressable (no Custom schemes).
func BuildManifest(name string, jobs []Job, results []Result) (*Manifest, error) {
	if len(jobs) != len(results) {
		return nil, fmt.Errorf("engine: manifest: %d jobs but %d results", len(jobs), len(results))
	}
	m := &Manifest{
		Version: ManifestVersion,
		Name:    name,
		Points:  len(jobs),
		Algo:    ManifestAlgo,
		Leaves:  make([]ManifestLeaf, len(jobs)),
	}
	hashes := make([][]byte, len(jobs))
	for i, job := range jobs {
		fp, ok := job.Fingerprint()
		if !ok {
			return nil, fmt.Errorf("engine: manifest point %d: job %s/%s has no content address (custom scheme)", i, job.Bench, job.Config.Name)
		}
		leaf, err := LeafHash(job, results[i])
		if err != nil {
			return nil, fmt.Errorf("engine: manifest point %d: %w", i, err)
		}
		m.Leaves[i] = ManifestLeaf{
			Index:       i,
			Benchmark:   job.Bench,
			Config:      job.Config.Name,
			Fingerprint: fp,
			Hash:        leaf,
		}
		raw, err := hex.DecodeString(leaf)
		if err != nil {
			return nil, fmt.Errorf("engine: manifest point %d: %w", i, err)
		}
		hashes[i] = raw
	}
	m.Root = merkleRoot(hashes)
	return m, nil
}

// Check validates the manifest's internal consistency: version and
// algorithm tags, leaf indices and point count, hash syntax, and that
// the leaves fold to the recorded root. It does not touch any store —
// see VerifyStore for that.
func (m *Manifest) Check() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("engine: manifest version %q, want %q", m.Version, ManifestVersion)
	}
	if m.Algo != ManifestAlgo {
		return fmt.Errorf("engine: manifest algorithm %q, want %q", m.Algo, ManifestAlgo)
	}
	if m.Points != len(m.Leaves) {
		return fmt.Errorf("engine: manifest declares %d points but has %d leaves", m.Points, len(m.Leaves))
	}
	hashes := make([][]byte, len(m.Leaves))
	for i, leaf := range m.Leaves {
		if leaf.Index != i {
			return fmt.Errorf("engine: manifest leaf %d has index %d (leaves must be in grid order)", i, leaf.Index)
		}
		raw, err := hex.DecodeString(leaf.Hash)
		if err != nil || len(raw) != sha256.Size {
			return fmt.Errorf("engine: manifest leaf %d: malformed hash %q", i, leaf.Hash)
		}
		if len(leaf.Fingerprint) != 2*sha256.Size {
			return fmt.Errorf("engine: manifest leaf %d: malformed fingerprint %q", i, leaf.Fingerprint)
		}
		hashes[i] = raw
	}
	if root := merkleRoot(hashes); root != m.Root {
		return fmt.Errorf("engine: manifest root %s does not match leaves (computed %s)", m.Root, root)
	}
	return nil
}

// VerifyStore checks the manifest offline against a distiq-v2 store
// directory: every leaf's stored file must hash back to its recorded
// leaf hash (over the raw file bytes — any single flipped byte fails),
// and the leaves must fold to the recorded root. The first discrepancy
// is reported with its grid index and fingerprint.
func (m *Manifest) VerifyStore(dir string) error {
	return m.VerifyIn(NewStore(dir))
}

// VerifyIn is VerifyStore generalized over any result-store backend: the
// enumeration hook (ResultStore.Raw) returns each leaf's exact stored
// entry bytes, which must hash back to the recorded leaf hash. A
// manifest therefore verifies identically against a cache directory, an
// in-memory store, a remote blob service or any tier of them.
func (m *Manifest) VerifyIn(store ResultStore) error {
	if err := m.Check(); err != nil {
		return err
	}
	for _, leaf := range m.Leaves {
		data, err := store.Raw(leaf.Fingerprint)
		if err != nil {
			return fmt.Errorf("engine: manifest point %d (%s/%s): %w", leaf.Index, leaf.Benchmark, leaf.Config, err)
		}
		if got := hashLeafBytes(data); got != leaf.Hash {
			return fmt.Errorf("engine: manifest point %d (%s/%s): store entry %s does not match manifest: hash %s, want %s",
				leaf.Index, leaf.Benchmark, leaf.Config, leaf.Fingerprint+".json", got, leaf.Hash)
		}
	}
	return nil
}

// LoadManifest reads and validates a manifest JSON file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("engine: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("engine: parse manifest %s: %w", path, err)
	}
	if err := m.Check(); err != nil {
		return nil, err
	}
	return &m, nil
}
