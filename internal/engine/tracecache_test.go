package engine

import (
	"reflect"
	"testing"

	"distiq/internal/core"
)

// TestSimulateCachedMatchesUncached pins that replaying a job's benchmark
// from the shared trace cache produces a result identical to regenerating
// the stream — every stat, metric and energy component — for a mix of
// schemes and suites.
func TestSimulateCachedMatchesUncached(t *testing.T) {
	opt := Options{Warmup: 2_000, Instructions: 10_000}
	for _, bench := range []string{"gcc", "swim"} {
		for _, cfg := range []core.Config{core.Baseline64(), core.MBDistr()} {
			j := Job{Bench: bench, Config: cfg, Opt: opt}
			cached, err := Simulate(j)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := SimulateUncached(j)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cached, fresh) {
				t.Errorf("%s/%s: cached result differs from uncached:\n cached: %+v\n  fresh: %+v",
					bench, cfg.Name, cached, fresh)
			}
		}
	}
	if st := TraceCacheStats(); st.Streams == 0 {
		t.Error("shared trace cache recorded nothing")
	}
}
