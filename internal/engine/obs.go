package engine

import (
	"distiq/internal/obs"
)

// instrument registers the engine's observability surface on reg. The
// resolution counters are function-backed reads of Stats(), so a scrape
// of /metrics and a read of /v1/stats can never disagree; the queue and
// occupancy gauges read the live atomics the hot path already maintains.
func (e *Engine) instrument(reg *obs.Registry) {
	stat := func(pick func(Stats) int64) func() float64 {
		return func() float64 { return float64(pick(e.Stats())) }
	}
	reg.CounterFunc("distiq_engine_requests_total",
		"Jobs requested from the engine, batch entries included.",
		stat(func(s Stats) int64 { return s.Requested }))
	for _, c := range []struct {
		source Source
		pick   func(Stats) int64
	}{
		{SourceSimulated, func(s Stats) int64 { return s.Simulated }},
		{SourceMemory, func(s Stats) int64 { return s.MemoryHits }},
		{SourceDisk, func(s Stats) int64 { return s.DiskHits }},
		{SourceShared, func(s Stats) int64 { return s.Shared }},
		{SourceCanceled, func(s Stats) int64 { return s.Canceled }},
	} {
		reg.CounterFunc("distiq_engine_jobs_total",
			"Resolved jobs by resolution source.",
			stat(c.pick), obs.L("source", string(c.source)))
	}
	reg.CounterFunc("distiq_engine_disk_errors_total",
		"Failed best-effort persistent-store writes.",
		stat(func(s Stats) int64 { return s.DiskErrors }))
	reg.CounterFunc("distiq_engine_batch_jobs_total",
		"Jobs simulated inside a lockstep batch group (subset of simulated jobs).",
		stat(func(s Stats) int64 { return s.Batched }))
	reg.CounterFunc("distiq_engine_batch_groups_total",
		"Lockstep batch groups run — shared trace passes that replaced per-job ones.",
		func() float64 { return float64(e.batchGroups.Load()) })
	reg.CounterFunc("distiq_engine_batch_warmup_skips_total",
		"Lockstep groups whose warmup trace prefix a recorded checkpoint pre-materialized.",
		func() float64 { return float64(e.batchWarmupSkips.Load()) })
	reg.GaugeFunc("distiq_engine_queue_depth",
		"Jobs waiting for a worker slot.",
		func() float64 { return float64(e.queued.Load()) })
	reg.GaugeFunc("distiq_engine_workers_busy",
		"Worker slots currently occupied.",
		func() float64 { return float64(e.running.Load()) })
	reg.GaugeFunc("distiq_engine_workers",
		"Worker-pool bound.",
		func() float64 { return float64(e.Workers()) })
	e.simDur = reg.Histogram("distiq_engine_simulate_duration_seconds",
		"Wall time of one simulator run.",
		obs.ExpBuckets(0.001, 4, 10))
	if in, ok := e.store.(storeInstrumenter); ok {
		in.Instrument(reg)
	}
}

// storeInstrumenter is implemented by store wrappers that carry their
// own metrics (Batcher, Tiered); the engine registers them alongside its
// own instruments so /metrics reflects the whole store stack.
type storeInstrumenter interface {
	Instrument(*obs.Registry)
}
