// Package fu models the functional units of Table 1 and the paper's
// distributed binding of units to issue queues.
//
// The pool provisions 8 integer ALUs, 4 integer multiply/divide units, 4 FP
// adders and 4 FP multiply/divide units. In the conventional configuration
// any instruction may use any unit of the right kind (through a large
// crossbar, whose energy the power model charges). In the distributed
// configuration (IF_distr, MB_distr) each integer queue owns one integer
// ALU, each pair of integer queues shares one multiply/divide unit and each
// pair of FP queues shares one FP adder and one FP multiply/divide unit, so
// an instruction may only execute on the unit(s) wired to its queue.
//
// ALUs, adders and multipliers are fully pipelined (one new operation per
// cycle per unit); dividers block the unit for the full operation latency,
// as in SimpleScalar.
package fu

import "distiq/internal/isa"

// Pool is the set of functional units of one core.
type Pool struct {
	counts      [isa.NumFUKinds]int
	distributed bool

	// usedAt[k][u] is the last cycle unit u of kind k accepted an
	// operation (pipelined issue-slot conflict detection); busyUntil
	// holds non-pipelined reservations (dividers).
	usedAt    [isa.NumFUKinds][]int64
	busyUntil [isa.NumFUKinds][]int64

	// Issues counts accepted operations per kind.
	Issues [isa.NumFUKinds]uint64
	// Rejects counts operations denied a unit.
	Rejects [isa.NumFUKinds]uint64
}

// Counts is the per-kind unit provisioning.
type Counts [isa.NumFUKinds]int

// DefaultCounts returns the Table 1 functional units: 8 integer ALUs,
// 4 integer mult/div, 4 FP adders, 4 FP mult/div.
func DefaultCounts() Counts {
	return Counts{
		isa.IntALUUnit: 8,
		isa.IntMulUnit: 4,
		isa.FPAddUnit:  4,
		isa.FPMulUnit:  4,
	}
}

// New returns a pool; distributed selects the per-queue binding.
func New(counts Counts, distributed bool) *Pool {
	p := &Pool{distributed: distributed}
	for k := range counts {
		if counts[k] <= 0 {
			panic("fu: non-positive unit count")
		}
		p.counts[k] = counts[k]
		p.usedAt[k] = make([]int64, counts[k])
		p.busyUntil[k] = make([]int64, counts[k])
		for u := range p.usedAt[k] {
			p.usedAt[k][u] = -1
			p.busyUntil[k][u] = -1
		}
	}
	return p
}

// Distributed reports whether the pool uses per-queue bindings.
func (p *Pool) Distributed() bool { return p.distributed }

// unitFor returns the unit index bound to a queue under the paper's
// distribution: one integer ALU per integer queue; one shared unit per
// queue pair for every other kind.
func (p *Pool) unitFor(kind isa.FUKind, queue int) int {
	if kind == isa.IntALUUnit {
		return queue % p.counts[kind]
	}
	return (queue / 2) % p.counts[kind]
}

// Acquire reserves a unit of the given kind at cycle for an operation that
// occupies the unit for occupy cycles (1 for pipelined operations, the full
// latency for divides). queue selects the bound unit in distributed mode
// and is ignored otherwise. It reports whether a unit was available.
func (p *Pool) Acquire(kind isa.FUKind, queue int, cycle int64, occupy int) bool {
	if occupy < 1 {
		occupy = 1
	}
	lo, hi := 0, p.counts[kind]
	if p.distributed {
		u := p.unitFor(kind, queue)
		lo, hi = u, u+1
	}
	for u := lo; u < hi; u++ {
		if p.usedAt[kind][u] == cycle || p.busyUntil[kind][u] >= cycle {
			continue
		}
		p.usedAt[kind][u] = cycle
		if occupy > 1 {
			p.busyUntil[kind][u] = cycle + int64(occupy) - 1
		}
		p.Issues[kind]++
		return true
	}
	p.Rejects[kind]++
	return false
}

// Occupancy returns the occupy-cycles argument for a class: dividers are
// not pipelined, everything else is.
func Occupancy(class isa.Class, lat int) int {
	if class == isa.IntDiv || class == isa.FPDiv {
		return lat
	}
	return 1
}
