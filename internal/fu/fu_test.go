package fu

import (
	"testing"

	"distiq/internal/isa"
)

func TestDefaultCounts(t *testing.T) {
	c := DefaultCounts()
	if c[isa.IntALUUnit] != 8 || c[isa.IntMulUnit] != 4 ||
		c[isa.FPAddUnit] != 4 || c[isa.FPMulUnit] != 4 {
		t.Fatalf("default counts %v do not match Table 1", c)
	}
}

func TestGlobalPoolWidth(t *testing.T) {
	p := New(DefaultCounts(), false)
	// 8 integer ALUs: exactly 8 acquisitions per cycle succeed.
	got := 0
	for i := 0; i < 10; i++ {
		if p.Acquire(isa.IntALUUnit, 0, 1, 1) {
			got++
		}
	}
	if got != 8 {
		t.Fatalf("acquired %d IntALU slots, want 8", got)
	}
	// Next cycle all are free again (pipelined).
	if !p.Acquire(isa.IntALUUnit, 0, 2, 1) {
		t.Fatal("pipelined unit not free next cycle")
	}
	if p.Rejects[isa.IntALUUnit] != 2 {
		t.Fatalf("Rejects = %d, want 2", p.Rejects[isa.IntALUUnit])
	}
}

func TestNonPipelinedDivider(t *testing.T) {
	p := New(Counts{1, 1, 1, 1}, false)
	if !p.Acquire(isa.IntMulUnit, 0, 10, 20) {
		t.Fatal("first divide rejected")
	}
	for c := int64(11); c < 30; c++ {
		if p.Acquire(isa.IntMulUnit, 0, c, 1) {
			t.Fatalf("unit free at cycle %d during divide", c)
		}
	}
	if !p.Acquire(isa.IntMulUnit, 0, 30, 1) {
		t.Fatal("unit not free after divide completes")
	}
}

func TestDistributedBinding(t *testing.T) {
	p := New(DefaultCounts(), true)
	// Queue 3's integer ALU is unit 3; queue 3 and queue 11 share it
	// when there are only 8 units (wraparound).
	if !p.Acquire(isa.IntALUUnit, 3, 1, 1) {
		t.Fatal("queue 3 could not use its ALU")
	}
	if p.Acquire(isa.IntALUUnit, 3, 1, 1) {
		t.Fatal("queue 3 acquired its ALU twice in one cycle")
	}
	// A different queue's ALU is independent.
	if !p.Acquire(isa.IntALUUnit, 4, 1, 1) {
		t.Fatal("queue 4 blocked by queue 3's ALU")
	}
}

func TestDistributedPairSharing(t *testing.T) {
	p := New(DefaultCounts(), true)
	// FP queues 0 and 1 share FP adder 0.
	if !p.Acquire(isa.FPAddUnit, 0, 5, 1) {
		t.Fatal("queue 0 FP add failed")
	}
	if p.Acquire(isa.FPAddUnit, 1, 5, 1) {
		t.Fatal("queue 1 acquired the shared adder in the same cycle")
	}
	// Queue 2 uses adder 1.
	if !p.Acquire(isa.FPAddUnit, 2, 5, 1) {
		t.Fatal("queue 2 FP add failed")
	}
	if !p.Acquire(isa.FPAddUnit, 1, 6, 1) {
		t.Fatal("shared adder not free next cycle")
	}
}

func TestOccupancy(t *testing.T) {
	lat := isa.DefaultLatencies()
	if Occupancy(isa.IntDiv, lat[isa.IntDiv]) != 20 {
		t.Fatal("IntDiv occupancy")
	}
	if Occupancy(isa.FPDiv, lat[isa.FPDiv]) != 12 {
		t.Fatal("FPDiv occupancy")
	}
	if Occupancy(isa.FPMult, lat[isa.FPMult]) != 1 {
		t.Fatal("FPMult should be pipelined")
	}
	if Occupancy(isa.IntALU, lat[isa.IntALU]) != 1 {
		t.Fatal("IntALU should be pipelined")
	}
}

func TestIssueCounters(t *testing.T) {
	p := New(DefaultCounts(), false)
	p.Acquire(isa.FPMulUnit, 0, 1, 1)
	p.Acquire(isa.FPMulUnit, 0, 1, 1)
	if p.Issues[isa.FPMulUnit] != 2 {
		t.Fatalf("Issues = %d, want 2", p.Issues[isa.FPMulUnit])
	}
}

func TestPanicsOnZeroCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero unit count did not panic")
		}
	}()
	New(Counts{0, 1, 1, 1}, false)
}

func TestOccupyClamped(t *testing.T) {
	p := New(Counts{1, 1, 1, 1}, false)
	if !p.Acquire(isa.IntALUUnit, 0, 1, 0) {
		t.Fatal("occupy 0 rejected")
	}
	if !p.Acquire(isa.IntALUUnit, 0, 2, 1) {
		t.Fatal("unit busy after occupy-0 operation")
	}
}
