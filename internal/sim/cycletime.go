package sim

import (
	"fmt"

	"distiq/internal/core"
	"distiq/internal/metrics"
	"distiq/internal/trace"
)

// CycleTimeStudy quantifies the paper's closing argument: the reduced
// complexity of the distributed issue queues "may enable a reduction of
// the cycle time, which may significantly improve their energy-delay and
// energy-delay² metrics with respect to the baseline". The paper leaves
// this unevaluated ("out of the scope of this paper"); this extension
// sweeps hypothetical clock advantages and reports, per suite, the
// whole-processor ED² of IF_distr and MB_distr normalized to IQ_64_64,
// plus the break-even clock each scheme needs.
func CycleTimeStudy(s *Session) (Table, error) {
	t := Table{
		Title:   "Extension: ED^2 vs. hypothetical cycle-time advantage of the distributed schemes",
		Note:    "normalized to IQ_64_64 at nominal clock; rows = relative cycle time of IF_distr/MB_distr",
		RowName: "rel. cycle",
		Columns: []string{"IF(INT)", "MB(INT)", "IF(FP)", "MB(FP)"},
	}
	base := core.Baseline64()
	schemes := []core.Config{core.IFDistr(), core.MBDistr()}
	suites := []trace.Suite{trace.SuiteInt, trace.SuiteFP}

	// The whole study reads the same base/IF/MB runs; resolve them as
	// one batch through the engine's worker pool up front.
	if err := s.Prefetch(trace.AllBenchmarks(), base, schemes[0], schemes[1]); err != nil {
		return Table{}, err
	}

	for _, rel := range []float64{1.00, 0.95, 0.90, 0.85, 0.80} {
		row := make([]float64, 0, 4)
		for _, suite := range suites {
			for _, cfg := range schemes {
				v, err := s.meanED2AtCycle(suite, base, cfg, rel)
				if err != nil {
					return Table{}, err
				}
				row = append(row, v)
			}
		}
		// Column order: IF(INT), MB(INT), IF(FP), MB(FP).
		t.AddRow(fmt.Sprintf("%.2f", rel), row...)
	}

	// Break-even rows: the clock advantage needed for ED² parity.
	beRow := make([]float64, 0, 4)
	for _, suite := range suites {
		for _, cfg := range schemes {
			v, err := s.meanBreakEven(suite, base, cfg)
			if err != nil {
				return Table{}, err
			}
			beRow = append(beRow, v)
		}
	}
	t.AddRow("break-even", beRow...)
	return t, nil
}

func (s *Session) meanED2AtCycle(suite trace.Suite, base, cfg core.Config, rel float64) (float64, error) {
	names := trace.Benchmarks(suite)
	sum := 0.0
	for _, b := range names {
		br, err := s.Result(b, base)
		if err != nil {
			return 0, err
		}
		r, err := s.Result(b, cfg)
		if err != nil {
			return 0, err
		}
		sum += metrics.EnergyDelay2AtCycleTime(br.Run, r.Run, rel) /
			metrics.EnergyDelay2(br.Run, br.Run)
	}
	return sum / float64(len(names)), nil
}

func (s *Session) meanBreakEven(suite trace.Suite, base, cfg core.Config) (float64, error) {
	names := trace.Benchmarks(suite)
	sum := 0.0
	for _, b := range names {
		br, err := s.Result(b, base)
		if err != nil {
			return 0, err
		}
		r, err := s.Result(b, cfg)
		if err != nil {
			return 0, err
		}
		sum += metrics.BreakEvenCycleTimeED2(br.Run, r.Run)
	}
	return sum / float64(len(names)), nil
}
