// Package sim runs the paper's experiments: it drives the pipeline over
// the synthetic SPEC2000 models under named issue-queue configurations,
// assembles performance and energy results, and regenerates every table
// and figure of the evaluation section.
//
// Execution is delegated to the Client layer (distiq/internal/client)
// over the concurrent experiment engine: a Session shards independent
// benchmark × configuration jobs across a bounded worker pool,
// deduplicates identical in-flight jobs, and can persist results to an
// on-disk store shared across processes. Simulations are deterministic
// per job, so tables are byte-identical whatever the parallelism. Bind a
// context with Session.WithContext to make a whole figure run
// cancellable (iqfig wires Ctrl-C through this).
package sim

import (
	"context"

	"distiq/internal/client"
	"distiq/internal/core"
	"distiq/internal/engine"
	"distiq/internal/metrics"
	"distiq/internal/trace"
)

// Options controls simulation length. It is the engine's job sizing,
// re-exported under its historical name.
type Options = engine.Options

// DefaultOptions returns lengths suitable for regenerating all figures in
// a few minutes.
func DefaultOptions() Options {
	return Options{Warmup: 20_000, Instructions: 100_000}
}

// QuickOptions returns lengths for tests and smoke runs.
func QuickOptions() Options {
	return Options{Warmup: 5_000, Instructions: 20_000}
}

// Result is the outcome of one benchmark × configuration simulation.
type Result = engine.Result

// Run simulates one benchmark under one configuration on the calling
// goroutine, bypassing every cache.
func Run(bench string, cfg core.Config, opt Options) (Result, error) {
	return engine.Simulate(engine.Job{Bench: bench, Config: cfg, Opt: opt})
}

// SessionConfig configures a Session beyond its defaults.
//
// Deprecated: new code should construct a Client directly
// (distiq.NewLocalClient with WithParallel/WithCacheDir/WithProgress);
// SessionConfig remains as a thin shim over the same options.
type SessionConfig struct {
	// Opt sizes every simulation of the session.
	Opt Options
	// Parallel bounds concurrent simulations; 0 selects GOMAXPROCS,
	// 1 runs strictly serially.
	Parallel int
	// CacheDir, when non-empty, persists results to (and reuses them
	// from) an on-disk store shared across processes.
	CacheDir string
	// Progress, when non-nil, receives one callback per resolved job.
	Progress func(engine.Progress)
}

// Session memoizes runs so figures sharing configurations (every figure
// reuses the baselines) do not repeat work. It is a thin harness over
// the Client layer: every job flows through an in-process client, whose
// engine fans batches across the worker pool. All methods are safe for
// concurrent use.
type Session struct {
	Opt Options
	cl  *client.Local
	ctx context.Context // base context of every engine call; nil = Background
}

// NewSession returns a Session with the given options, a GOMAXPROCS-wide
// worker pool and in-memory caching only.
func NewSession(opt Options) *Session {
	return NewSessionWith(SessionConfig{Opt: opt})
}

// NewSessionWith returns a Session with explicit engine configuration.
//
// Deprecated: construct a Client (distiq.NewLocalClient) for new code;
// this shim builds exactly that client under the hood.
func NewSessionWith(cfg SessionConfig) *Session {
	return NewSessionClient(cfg.Opt, client.NewLocal(
		client.WithParallel(cfg.Parallel),
		client.WithCacheDir(cfg.CacheDir),
		client.WithProgress(cfg.Progress),
	))
}

// NewSessionClient returns a Session running every job through an
// existing Local client (sharing its caches and worker pool).
func NewSessionClient(opt Options, cl *client.Local) *Session {
	return &Session{Opt: opt, cl: cl}
}

// WithContext returns a Session view whose engine calls are bound to ctx
// (sharing the receiver's client and caches): cancelling ctx stops
// scheduling new simulations mid-figure while in-flight jobs finish and
// persist. The receiver is unchanged.
func (s *Session) WithContext(ctx context.Context) *Session {
	return &Session{Opt: s.Opt, cl: s.cl, ctx: ctx}
}

// context returns the session's base context.
func (s *Session) context() context.Context {
	if s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// Client returns the Local client the session runs on.
func (s *Session) Client() *client.Local { return s.cl }

// EngineStats reports how the session resolved its jobs so far
// (simulated, memory hits, disk hits, deduplicated, cancelled).
func (s *Session) EngineStats() engine.Stats { return s.cl.Stats() }

func (s *Session) job(bench string, cfg core.Config) engine.Job {
	return engine.Job{Bench: bench, Config: cfg, Opt: s.Opt}
}

// Result returns the memoized run for bench × cfg, simulating on first use.
func (s *Session) Result(bench string, cfg core.Config) (Result, error) {
	return s.cl.Run(s.context(), s.job(bench, cfg))
}

// Prefetch resolves every bench × cfg combination through the engine's
// worker pool, so subsequent Result calls for those jobs are cache hits.
// The figure builders batch their whole job set this way before
// assembling tables serially.
func (s *Session) Prefetch(benches []string, cfgs ...core.Config) error {
	jobs := make([]engine.Job, 0, len(benches)*len(cfgs))
	for _, b := range benches {
		for _, cfg := range cfgs {
			jobs = append(jobs, s.job(b, cfg))
		}
	}
	_, err := s.cl.RunAll(s.context(), jobs)
	return err
}

// SuiteRuns returns the metrics.Run values of a whole suite under cfg, in
// figure order.
func (s *Session) SuiteRuns(suite trace.Suite, cfg core.Config) ([]metrics.Run, error) {
	benches := trace.Benchmarks(suite)
	if err := s.Prefetch(benches, cfg); err != nil {
		return nil, err
	}
	runs := make([]metrics.Run, 0, len(benches))
	for _, b := range benches {
		r, err := s.Result(b, cfg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r.Run)
	}
	return runs, nil
}
