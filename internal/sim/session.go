// Package sim runs the paper's experiments: it drives the pipeline over
// the synthetic SPEC2000 models under named issue-queue configurations,
// assembles performance and energy results, and regenerates every table
// and figure of the evaluation section.
package sim

import (
	"fmt"

	"distiq/internal/core"
	"distiq/internal/isa"
	"distiq/internal/metrics"
	"distiq/internal/pipeline"
	"distiq/internal/power"
	"distiq/internal/trace"
)

// Options controls simulation length. The paper simulates 100M
// instructions per benchmark after skipping initialization; the synthetic
// workloads reach steady state much sooner, so the defaults are far
// smaller while remaining stable to ~1%.
type Options struct {
	// Warmup instructions run before statistics collection starts
	// (caches and predictors stay warm, counters reset).
	Warmup uint64
	// Instructions measured per run.
	Instructions uint64
}

// DefaultOptions returns lengths suitable for regenerating all figures in
// a few minutes.
func DefaultOptions() Options {
	return Options{Warmup: 20_000, Instructions: 100_000}
}

// QuickOptions returns lengths for tests and smoke runs.
func QuickOptions() Options {
	return Options{Warmup: 5_000, Instructions: 20_000}
}

// Result is the outcome of one benchmark × configuration simulation.
type Result struct {
	metrics.Run
	Stats pipeline.Stats
	// IntBreakdown and FPBreakdown are the labeled issue-logic energy
	// breakdowns per domain; Breakdown is their sum.
	IntBreakdown, FPBreakdown, Breakdown power.Breakdown
}

// Run simulates one benchmark under one configuration.
func Run(bench string, cfg core.Config, opt Options) (Result, error) {
	model, err := trace.ByName(bench)
	if err != nil {
		return Result{}, err
	}
	gen := trace.NewGenerator(model)
	p, err := pipeline.New(pipeline.DefaultConfig(cfg), gen)
	if err != nil {
		return Result{}, err
	}
	p.Warmup(opt.Warmup)
	p.Run(opt.Instructions)

	st := p.Stats()
	res := Result{Stats: st}
	res.Benchmark = bench
	res.Config = cfg.Name
	res.Insts = st.Committed
	res.Cycles = st.Cycles

	intScheme := p.Scheme(isa.IntDomain)
	fpScheme := p.Scheme(isa.FPDomain)
	res.IntBreakdown = power.NewCalc(intScheme.Geometry()).Energy(intScheme.Events())
	res.FPBreakdown = power.NewCalc(fpScheme.Geometry()).Energy(fpScheme.Events())
	res.Breakdown = power.Breakdown{}
	res.Breakdown.Add(res.IntBreakdown)
	res.Breakdown.Add(res.FPBreakdown)
	res.IQEnergy = res.Breakdown.Total()
	return res, nil
}

// Session memoizes runs so figures sharing configurations (every figure
// reuses the baselines) do not repeat work.
type Session struct {
	Opt   Options
	cache map[string]Result
}

// NewSession returns a Session with the given options.
func NewSession(opt Options) *Session {
	return &Session{Opt: opt, cache: make(map[string]Result)}
}

// Result returns the memoized run for bench × cfg, simulating on first use.
func (s *Session) Result(bench string, cfg core.Config) (Result, error) {
	key := bench + "|" + cfg.Name
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	r, err := Run(bench, cfg, s.Opt)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %s under %s: %w", bench, cfg.Name, err)
	}
	s.cache[key] = r
	return r, nil
}

// SuiteRuns returns the metrics.Run values of a whole suite under cfg, in
// figure order.
func (s *Session) SuiteRuns(suite trace.Suite, cfg core.Config) ([]metrics.Run, error) {
	var runs []metrics.Run
	for _, b := range trace.Benchmarks(suite) {
		r, err := s.Result(b, cfg)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r.Run)
	}
	return runs, nil
}
