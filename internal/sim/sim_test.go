package sim

import (
	"strings"
	"testing"

	"distiq/internal/core"
	"distiq/internal/trace"
)

func quickSession() *Session {
	return NewSession(Options{Warmup: 2000, Instructions: 10000})
}

func TestRunProducesSaneResult(t *testing.T) {
	r, err := Run("gzip", core.MBDistr(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "gzip" || r.Config != "MB_distr" {
		t.Fatalf("identity wrong: %+v", r.Run)
	}
	if r.IPC() <= 0.1 || r.IPC() > 8 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.IQEnergy <= 0 {
		t.Fatal("no issue-queue energy recorded")
	}
	if len(r.Breakdown) == 0 || len(r.IntBreakdown) == 0 {
		t.Fatal("empty breakdowns")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run("nonesuch", core.Baseline64(), QuickOptions()); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestSessionMemoizes(t *testing.T) {
	s := quickSession()
	a, err := s.Result("swim", core.Baseline64())
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Result("swim", core.Baseline64())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IQEnergy != b.IQEnergy {
		t.Fatal("memoized result differs")
	}
	st := s.EngineStats()
	if st.Simulated != 1 || st.MemoryHits != 1 {
		t.Fatalf("engine stats = %+v, want 1 simulated + 1 memory hit", st)
	}
}

func TestSuiteRunsOrdered(t *testing.T) {
	s := quickSession()
	runs, err := s.SuiteRuns(trace.SuiteInt, core.Unbounded())
	if err != nil {
		t.Fatal(err)
	}
	names := trace.Benchmarks(trace.SuiteInt)
	if len(runs) != len(names) {
		t.Fatalf("got %d runs, want %d", len(runs), len(names))
	}
	for i, r := range runs {
		if r.Benchmark != names[i] {
			t.Fatalf("run %d is %s, want %s", i, r.Benchmark, names[i])
		}
	}
}

func TestFigureBadNumber(t *testing.T) {
	s := quickSession()
	for _, n := range []int{0, 1, 5, 16} {
		if _, err := Figure(n, s); err == nil {
			t.Errorf("figure %d did not error", n)
		}
	}
}

func TestFigureNumbersComplete(t *testing.T) {
	ns := FigureNumbers()
	if len(ns) != 13 {
		t.Fatalf("expected 13 reproducible figures, got %d", len(ns))
	}
}

func TestBreakdownFigureComponents(t *testing.T) {
	s := quickSession()
	// Restrict to a cheap pseudo-suite by running the real figure on the
	// quick session (26 benchmarks x small runs is still fast).
	tab, err := Figure(11, s)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, row := range tab.Rows {
		labels[row.Label] = true
	}
	for _, want := range []string{"fifo", "buff", "Qrename", "regs_ready", "select", "chains"} {
		if !labels[want] {
			t.Errorf("MB_distr breakdown missing %q (have %v)", want, labels)
		}
	}
	// Percentages per column sum to ~100.
	for col := 0; col < 2; col++ {
		sum := 0.0
		for _, row := range tab.Rows {
			sum += row.Values[col]
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("column %d sums to %v, want 100", col, sum)
		}
	}
}

func TestIPCFigureShape(t *testing.T) {
	s := quickSession()
	tab, err := Figure(8, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 3 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	names := trace.Benchmarks(trace.SuiteFP)
	if len(tab.Rows) != len(names)+1 {
		t.Fatalf("rows = %d, want %d benchmarks + HARMEAN", len(tab.Rows), len(names))
	}
	if tab.Rows[len(tab.Rows)-1].Label != "HARMEAN" {
		t.Fatal("last row must be HARMEAN")
	}
	// MB_distr must beat IF_distr on the FP harmonic mean.
	hm := tab.Rows[len(tab.Rows)-1].Values
	if hm[2] <= hm[1] {
		t.Fatalf("MB_distr HM (%v) not above IF_distr (%v)", hm[2], hm[1])
	}
}

func TestEfficiencyFigureNormalization(t *testing.T) {
	s := quickSession()
	tab, err := Figure(13, s)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is the baseline itself: normalized energy exactly 1.
	if tab.Rows[0].Label != "IQ_64_64" {
		t.Fatalf("first row %s", tab.Rows[0].Label)
	}
	for _, v := range tab.Rows[0].Values {
		if v < 0.999 || v > 1.001 {
			t.Fatalf("baseline normalized energy = %v, want 1", v)
		}
	}
	// Distributed schemes must consume far less issue-queue energy.
	for i := 1; i < len(tab.Rows); i++ {
		for _, v := range tab.Rows[i].Values {
			if v >= 0.8 {
				t.Errorf("%s normalized energy %v not well below baseline",
					tab.Rows[i].Label, v)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Note: "n", RowName: "r", Columns: []string{"a", "b"}}
	tab.AddRow("x", 1.5, 2.25)
	out := tab.String()
	for _, want := range []string{"T", "n", "a", "b", "x", "1.500", "2.250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	s := Table1()
	for _, want := range []string{"256 entries", "160 INT + 160 FP", "2K gshare",
		"8 integer + 8 FP", "512K", "100 cycles"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestBarsRendering(t *testing.T) {
	tab := Table{Title: "T", RowName: "r", Columns: []string{"a", "b"}}
	tab.AddRow("x", 10, 5)
	tab.AddRow("y", 0, 2.5)
	out := tab.Bars(20)
	if !strings.Contains(out, "####################") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "##########") {
		t.Fatalf("half bar missing:\n%s", out)
	}
	// Zero draws no bar, small nonzero draws at least one mark.
	lines := strings.Split(out, "\n")
	foundZero := false
	for _, l := range lines {
		if strings.Contains(l, "| 0.000") {
			foundZero = true
		}
	}
	if !foundZero {
		t.Fatalf("zero value rendered a bar:\n%s", out)
	}
	if tab.Bars(0) == "" {
		t.Fatal("default width broken")
	}
}

func TestBarsEmptyTable(t *testing.T) {
	tab := Table{Title: "empty"}
	if out := tab.Bars(10); !strings.Contains(out, "empty") {
		t.Fatal("empty table render")
	}
}

func TestCycleTimeStudy(t *testing.T) {
	s := quickSession()
	tab, err := CycleTimeStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 5 cycle points + break-even
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// ED² must fall monotonically as the clock speeds up.
	for col := 0; col < 4; col++ {
		for i := 1; i < 5; i++ {
			if tab.Rows[i].Values[col] >= tab.Rows[i-1].Values[col] {
				t.Fatalf("column %d not monotone at row %d", col, i)
			}
		}
	}
	be := tab.Rows[5]
	if be.Label != "break-even" {
		t.Fatal("missing break-even row")
	}
	for _, v := range be.Values {
		if v <= 0.5 || v >= 1.2 {
			t.Fatalf("break-even %v implausible", v)
		}
	}
}

func TestCSVExport(t *testing.T) {
	tab := Table{RowName: "bench", Columns: []string{"a,b", "c"}}
	tab.AddRow("x", 1.25, 2)
	tab.AddRow(`q"uote`, 3, 4)
	out := tab.CSV()
	want := "bench,\"a,b\",c\nx,1.25,2\n\"q\"\"uote\",3,4\n"
	if out != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", out, want)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	// Two independent runs of the same benchmark × configuration must be
	// bit-identical: cycles, energy, every breakdown component.
	a, err := Run("fma3d", core.MBDistr(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fma3d", core.MBDistr(), QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Insts != b.Insts || a.IQEnergy != b.IQEnergy {
		t.Fatalf("nondeterministic runs: %+v vs %+v", a.Run, b.Run)
	}
	for k, v := range a.Breakdown {
		if b.Breakdown[k] != v {
			t.Fatalf("component %s differs: %v vs %v", k, v, b.Breakdown[k])
		}
	}
}

func TestLossSweepFigureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewSession(Options{Warmup: 1000, Instructions: 5000})
	tab, err := Figure(4, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 6 {
		t.Fatalf("columns = %v, want the 6-point sweep", tab.Columns)
	}
	names := trace.Benchmarks(trace.SuiteFP)
	if len(tab.Rows) != len(names)+1 {
		t.Fatalf("rows = %d, want %d + HMEAN", len(tab.Rows), len(names))
	}
	if tab.Rows[len(tab.Rows)-1].Label != "HMEAN" {
		t.Fatal("missing HMEAN row")
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 6 {
			t.Fatalf("row %s has %d values", r.Label, len(r.Values))
		}
		for _, v := range r.Values {
			if v < -20 || v > 100 {
				t.Fatalf("row %s: loss %v%% out of range", r.Label, v)
			}
		}
	}
}
