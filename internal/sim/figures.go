package sim

import (
	"fmt"

	"distiq/internal/core"
	"distiq/internal/metrics"
	"distiq/internal/trace"
)

// fifoSweep is the paper's queue sweep: {8,10,12} queues × {8,16} entries.
var fifoSweep = [][2]int{{8, 8}, {8, 16}, {10, 8}, {10, 16}, {12, 8}, {12, 16}}

// evaluatedConfigs are the three schemes of the evaluation section.
func evaluatedConfigs() []core.Config {
	return []core.Config{core.Baseline64(), core.IFDistr(), core.MBDistr()}
}

// Figure regenerates figure n of the paper (2-4, 6-15). Figure 5 is the
// selection-mechanism example, reproduced by the unit test
// TestSelectPaperExample in internal/core rather than by simulation;
// Figure 1 is the conventional CAM entry diagram.
func Figure(n int, s *Session) (Table, error) {
	switch n {
	case 2:
		return s.lossSweep("Figure 2: IPC loss of IssueFIFO vs unbounded baseline (SPECINT)",
			trace.SuiteInt, func(a, b int) core.Config { return core.IssueFIFOCfg(a, b, 16, 16) })
	case 3:
		return s.lossSweep("Figure 3: IPC loss of IssueFIFO vs unbounded baseline (SPECFP)",
			trace.SuiteFP, func(c, d int) core.Config { return core.IssueFIFOCfg(16, 16, c, d) })
	case 4:
		return s.lossSweep("Figure 4: IPC loss of LatFIFO vs unbounded baseline (SPECFP)",
			trace.SuiteFP, func(c, d int) core.Config { return core.LatFIFOCfg(16, 16, c, d) })
	case 6:
		return s.lossSweep("Figure 6: IPC loss of MixBUFF vs unbounded baseline (SPECFP)",
			trace.SuiteFP, func(c, d int) core.Config { return core.MixBUFFCfg(16, 16, c, d, 0) })
	case 7:
		return s.ipcFigure("Figure 7: IPC for the integer benchmarks", trace.SuiteInt)
	case 8:
		return s.ipcFigure("Figure 8: IPC for the FP benchmarks", trace.SuiteFP)
	case 9:
		return s.breakdownFigure("Figure 9: energy breakdown for IQ_64_64", core.Baseline64())
	case 10:
		return s.breakdownFigure("Figure 10: energy breakdown for IF_distr", core.IFDistr())
	case 11:
		return s.breakdownFigure("Figure 11: energy breakdown for MB_distr", core.MBDistr())
	case 12:
		return s.efficiencyFigure("Figure 12: normalized issue-queue power", metricPower)
	case 13:
		return s.efficiencyFigure("Figure 13: normalized issue-queue energy", metricEnergy)
	case 14:
		return s.efficiencyFigure("Figure 14: normalized processor energy-delay", metricED)
	case 15:
		return s.efficiencyFigure("Figure 15: normalized processor energy-delay^2", metricED2)
	}
	return Table{}, fmt.Errorf("sim: no figure %d (valid: 2-4, 6-15)", n)
}

// FigureNumbers lists the figures Figure can regenerate.
func FigureNumbers() []int { return []int{2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15} }

// lossSweep builds the section 3 sweep figures: per-benchmark IPC loss (%)
// against the unbounded baseline, one column per queue configuration, plus
// a harmonic-mean row.
func (s *Session) lossSweep(title string, suite trace.Suite, mk func(q, e int) core.Config) (Table, error) {
	t := Table{Title: title, RowName: "benchmark",
		Note: "% IPC loss w.r.t. unbounded conventional issue queue"}
	configs := make([]core.Config, 0, len(fifoSweep))
	for _, qe := range fifoSweep {
		cfg := mk(qe[0], qe[1])
		configs = append(configs, cfg)
		t.Columns = append(t.Columns, fmt.Sprintf("%dx%d", qe[0], qe[1]))
	}
	base := core.Unbounded()
	// Resolve the whole benchmark × configuration grid through the
	// engine's worker pool; the loops below then assemble the table from
	// cache hits, in deterministic order.
	if err := s.Prefetch(trace.Benchmarks(suite), append([]core.Config{base}, configs...)...); err != nil {
		return Table{}, err
	}
	for _, b := range trace.Benchmarks(suite) {
		baseRun, err := s.Result(b, base)
		if err != nil {
			return Table{}, err
		}
		row := make([]float64, 0, len(configs))
		for _, cfg := range configs {
			r, err := s.Result(b, cfg)
			if err != nil {
				return Table{}, err
			}
			row = append(row, 100*metrics.IPCLoss(baseRun.Run, r.Run))
		}
		t.AddRow(b, row...)
	}
	// Harmonic-mean loss row.
	baseRuns, err := s.SuiteRuns(suite, base)
	if err != nil {
		return Table{}, err
	}
	hmBase := metrics.HarmonicMeanIPC(baseRuns)
	hmRow := make([]float64, 0, len(configs))
	for _, cfg := range configs {
		runs, err := s.SuiteRuns(suite, cfg)
		if err != nil {
			return Table{}, err
		}
		hmRow = append(hmRow, 100*(1-metrics.HarmonicMeanIPC(runs)/hmBase))
	}
	t.AddRow("HMEAN", hmRow...)
	return t, nil
}

// ipcFigure builds Figures 7/8: absolute IPC per benchmark for the three
// evaluated schemes, plus the harmonic mean.
func (s *Session) ipcFigure(title string, suite trace.Suite) (Table, error) {
	t := Table{Title: title, RowName: "benchmark", Note: "IPC"}
	configs := evaluatedConfigs()
	for _, cfg := range configs {
		t.Columns = append(t.Columns, cfg.Name)
	}
	if err := s.Prefetch(trace.Benchmarks(suite), configs...); err != nil {
		return Table{}, err
	}
	for _, b := range trace.Benchmarks(suite) {
		row := make([]float64, 0, len(configs))
		for _, cfg := range configs {
			r, err := s.Result(b, cfg)
			if err != nil {
				return Table{}, err
			}
			row = append(row, r.IPC())
		}
		t.AddRow(b, row...)
	}
	hm := make([]float64, 0, len(configs))
	for _, cfg := range configs {
		runs, err := s.SuiteRuns(suite, cfg)
		if err != nil {
			return Table{}, err
		}
		hm = append(hm, metrics.HarmonicMeanIPC(runs))
	}
	t.AddRow("HARMEAN", hm...)
	return t, nil
}

// breakdownOrder fixes the component order of Figures 9-11 (the paper's
// legend order, bottom to top).
var breakdownOrder = []string{
	"wakeup", "buff", "fifo", "Qrename", "regs_ready", "select", "chains", "reg",
	"MuxIntALU", "MuxIntMUL", "MuxFPALU", "MuxFPMUL",
}

// breakdownFigure builds Figures 9-11: the percentage contribution of each
// issue-logic component to total issue-logic energy, aggregated per suite.
func (s *Session) breakdownFigure(title string, cfg core.Config) (Table, error) {
	t := Table{Title: title, RowName: "component",
		Note:    "% of issue-logic energy, per suite",
		Columns: []string{"SPECINT", "SPECFP"}}
	if err := s.Prefetch(trace.AllBenchmarks(), cfg); err != nil {
		return Table{}, err
	}
	totals := map[string][2]float64{}
	var sums [2]float64
	for si, suite := range []trace.Suite{trace.SuiteInt, trace.SuiteFP} {
		for _, b := range trace.Benchmarks(suite) {
			r, err := s.Result(b, cfg)
			if err != nil {
				return Table{}, err
			}
			for comp, v := range r.Breakdown {
				e := totals[comp]
				e[si] += v
				totals[comp] = e
				sums[si] += v
			}
		}
	}
	for _, comp := range breakdownOrder {
		e, ok := totals[comp]
		if !ok {
			continue
		}
		var row [2]float64
		for si := range row {
			if sums[si] > 0 {
				row[si] = 100 * e[si] / sums[si]
			}
		}
		t.AddRow(comp, row[0], row[1])
	}
	return t, nil
}

// efficiency metrics selectable for Figures 12-15.
type effMetric int

const (
	metricPower effMetric = iota
	metricEnergy
	metricED
	metricED2
)

// efficiencyFigure builds Figures 12-15: per-suite means of per-benchmark
// metric values normalized to the IQ_64_64 baseline.
func (s *Session) efficiencyFigure(title string, m effMetric) (Table, error) {
	t := Table{Title: title, RowName: "config",
		Note:    "normalized to IQ_64_64 (per-benchmark, suite mean)",
		Columns: []string{"SPECINT", "SPECFP"}}
	base := core.Baseline64()
	if err := s.Prefetch(trace.AllBenchmarks(),
		append([]core.Config{base}, evaluatedConfigs()...)...); err != nil {
		return Table{}, err
	}
	for _, cfg := range evaluatedConfigs() {
		var row [2]float64
		for si, suite := range []trace.Suite{trace.SuiteInt, trace.SuiteFP} {
			names := trace.Benchmarks(suite)
			sum := 0.0
			for _, b := range names {
				br, err := s.Result(b, base)
				if err != nil {
					return Table{}, err
				}
				r, err := s.Result(b, cfg)
				if err != nil {
					return Table{}, err
				}
				switch m {
				case metricPower:
					sum += metrics.Normalized(br.IQPower(), r.IQPower())
				case metricEnergy:
					sum += metrics.Normalized(br.IQEnergy, r.IQEnergy)
				case metricED:
					sum += metrics.Normalized(metrics.EnergyDelay(br.Run, br.Run),
						metrics.EnergyDelay(br.Run, r.Run))
				case metricED2:
					sum += metrics.Normalized(metrics.EnergyDelay2(br.Run, br.Run),
						metrics.EnergyDelay2(br.Run, r.Run))
				}
			}
			row[si] = sum / float64(len(names))
		}
		t.AddRow(cfg.Name, row[0], row[1])
	}
	return t, nil
}

// Table1 renders the processor configuration of the paper's Table 1 as
// implemented by this simulator.
func Table1() string {
	return `Table 1. Processor configuration
  Fetch, decode and commit width   8 instructions
  Issue width                      8 integer + 8 FP instructions
  Branch predictor                 hybrid: 2K gshare + 2K bimodal + 1K selector
  BTB                              2048 entries, 4-way set associative
  L1 Icache                        64K, 2-way, 32 byte/line, 1 cycle
  L1 Dcache                        32K, 4-way, 32 byte/line, 2 cycles, 4 R/W ports
  L2 unified cache                 512K, 4-way, 64 byte/line, 10 cycles
  Main memory                      64-byte bandwidth, 100 cycles first chunk, 2 inter-chunk
  Fetch queue                      64 entries
  Reorder buffer                   256 entries
  Registers                        160 INT + 160 FP
  INT functional units             8 ALU (1 cycle), 4 mult/div (3-cycle mult, 20-cycle div)
  FP functional units              4 ALU (2 cycles), 4 mult/div (4-cycle mult, 12-cycle div)
  Technology                       0.10 um (energy model constants)
`
}
