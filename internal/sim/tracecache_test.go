package sim

import (
	"testing"

	"distiq/internal/client"
	"distiq/internal/engine"
)

// TestFigureBytesIdenticalWithTraceCacheOff regenerates figure tables
// with the shared trace cache bypassed (every job regenerates its
// benchmark stream) and asserts the rendered bytes match the cached
// engine's exactly. Together with the golden-figure gate this pins the
// tentpole guarantee: trace caching changes performance only, never
// output.
func TestFigureBytesIdenticalWithTraceCacheOff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := QuickOptions()
	cached := NewSession(opt)
	uncached := NewSessionClient(opt, client.NewLocalOn(engine.New(engine.Config{
		Simulate: engine.SimulateUncached,
	})))
	for _, fig := range []int{2, 8, 9} {
		a, err := Figure(fig, cached)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure(fig, uncached)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("figure %d differs with trace cache off:\n--- cached ---\n%s--- uncached ---\n%s",
				fig, a.String(), b.String())
		}
	}
}
