package sim

import (
	"fmt"
	"strings"
)

// Bars renders the table as horizontal ASCII bar groups, one group per
// row, one bar per column — a terminal rendition of the paper's grouped
// bar figures. width is the character length of the longest bar.
func (t Table) Bars(width int) string {
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}

	labelW := len(t.RowName)
	for _, c := range t.Columns {
		if len(c) > labelW {
			labelW = len(c)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s\n", r.Label)
		for ci, v := range r.Values {
			col := ""
			if ci < len(t.Columns) {
				col = t.Columns[ci]
			}
			n := int(v / maxVal * float64(width))
			if n < 0 {
				n = 0
			}
			if v > 0 && n == 0 {
				n = 1 // nonzero values stay visible
			}
			fmt.Fprintf(&b, "  %-*s |%s %.3f\n", labelW, col, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}
