package sim

import (
	"testing"

	"distiq/internal/client"
	"distiq/internal/engine"
)

// TestFigureBytesIdenticalWithBatchingOff is the lockstep batch kernel's
// golden gate: figure tables rendered through the default engine (whose
// sweeps co-batch onto shared trace passes) must match, byte for byte,
// the same figures with batching disabled — and the batched side must
// actually have batched, so the gate cannot pass vacuously.
func TestFigureBytesIdenticalWithBatchingOff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := QuickOptions()
	eng := engine.New(engine.Config{})
	batched := NewSessionClient(opt, client.NewLocalOn(eng))
	unbatched := NewSessionClient(opt, client.NewLocalOn(engine.New(engine.Config{
		NoBatch: true,
	})))
	for _, fig := range []int{2, 8, 9} {
		a, err := Figure(fig, batched)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Figure(fig, unbatched)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("figure %d differs with batching off:\n--- batched ---\n%s--- unbatched ---\n%s",
				fig, a.String(), b.String())
		}
	}
	if eng.BatchGroups() == 0 {
		t.Error("default engine ran no lockstep groups over the figure sweeps; the byte gate proved nothing")
	}
	if st := eng.Stats(); st.Batched == 0 || st.Batched > st.Simulated {
		t.Errorf("batched accounting inconsistent: %+v", st)
	}
}
