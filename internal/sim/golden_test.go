package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/fig*.txt from the current simulator")

// TestGoldenFigures regenerates every figure the paper harness can
// produce (under QuickOptions, one shared session) and diffs the
// rendered tables byte-for-byte against the committed goldens, so
// engine/job refactors provably change no paper output. Run with
// -update-golden to rewrite the fixtures after a deliberate
// result-affecting change.
func TestGoldenFigures(t *testing.T) {
	s := NewSession(QuickOptions())
	for _, n := range FigureNumbers() {
		tab, err := Figure(n, s)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		got := tab.String()
		path := filepath.Join("testdata", "golden", fmt.Sprintf("fig%d.txt", n))
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("figure %d: missing golden (run go test -run TestGoldenFigures -update-golden): %v", n, err)
		}
		if got != string(want) {
			t.Errorf("figure %d drifted from %s:\n--- golden ---\n%s--- current ---\n%s",
				n, path, want, got)
		}
	}
}
