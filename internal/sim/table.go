package sim

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one row per benchmark or
// configuration, one column per series, matching a figure of the paper.
type Table struct {
	Title   string
	Note    string
	RowName string // header of the row-label column
	Columns []string
	Rows    []TableRow
}

// TableRow is one labeled row of values.
type TableRow struct {
	Label  string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, TableRow{Label: label, Values: values})
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	width := len(t.RowName)
	for _, r := range t.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, t.RowName)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %12.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row,
// for spreadsheet import or regression tracking.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.RowName))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%.6g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table, with
// the title and note as a preceding heading and caption.
func (t Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "_%s_\n\n", t.Note)
	}
	b.WriteString("| " + t.RowName)
	for _, c := range t.Columns {
		b.WriteString(" | " + c)
	}
	b.WriteString(" |\n|")
	b.WriteString(strings.Repeat(" --- |", len(t.Columns)+1))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString("| " + r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " | %.3f", v)
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

// JSON renders the table as an indented JSON document: title, note and
// one object per row keyed by column name.
func (t Table) JSON() ([]byte, error) {
	type doc struct {
		Title string           `json:"title,omitempty"`
		Note  string           `json:"note,omitempty"`
		Rows  []map[string]any `json:"rows"`
	}
	d := doc{Title: t.Title, Note: t.Note}
	for _, r := range t.Rows {
		row := make(map[string]any, len(t.Columns)+1)
		row[t.RowName] = r.Label
		for i, c := range t.Columns {
			if i < len(r.Values) {
				row[c] = r.Values[i]
			}
		}
		d.Rows = append(d.Rows, row)
	}
	return json.MarshalIndent(d, "", "  ")
}

// csvEscape quotes fields containing separators or quotes.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
