package sim

import (
	"testing"

	"distiq/internal/core"
	"distiq/internal/metrics"
	"distiq/internal/trace"
)

// TestPaperClaims verifies the qualitative results of the paper's
// evaluation end to end: the orderings and directions that EXPERIMENTS.md
// tracks. Runs are short but long enough for the orderings to be stable;
// the assertions use margins so model retuning does not cause flakiness
// unless a claim actually breaks.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewSession(Options{Warmup: 8_000, Instructions: 40_000})

	hm := func(suite trace.Suite, cfg core.Config) float64 {
		runs, err := s.SuiteRuns(suite, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.HarmonicMeanIPC(runs)
	}

	baseInt := hm(trace.SuiteInt, core.Unbounded())
	baseFP := hm(trace.SuiteFP, core.Unbounded())

	t.Run("FIFOsFitIntegerNotFP", func(t *testing.T) {
		// Figures 2 vs 3: the same FIFO organization loses much more
		// on FP codes than on integer codes.
		intLoss := 1 - hm(trace.SuiteInt, core.IssueFIFOCfg(16, 16, 16, 16))/baseInt
		fpLoss := 1 - hm(trace.SuiteFP, core.IssueFIFOCfg(16, 16, 8, 16))/baseFP
		if fpLoss < intLoss+0.05 {
			t.Errorf("FP FIFO loss %.1f%% not well above INT %.1f%%", 100*fpLoss, 100*intLoss)
		}
	})

	t.Run("SchemeOrderingFP", func(t *testing.T) {
		// Figures 3/4/6 at 8x16: IssueFIFO worst, LatFIFO middle,
		// MixBUFF best, baseline best of all.
		iFIFO := hm(trace.SuiteFP, core.IssueFIFOCfg(16, 16, 8, 16))
		lat := hm(trace.SuiteFP, core.LatFIFOCfg(16, 16, 8, 16))
		mix := hm(trace.SuiteFP, core.MixBUFFCfg(16, 16, 8, 16, 0))
		if !(iFIFO < lat && lat < mix && mix < baseFP) {
			t.Errorf("ordering broken: IssueFIFO %.3f, LatFIFO %.3f, MixBUFF %.3f, base %.3f",
				iFIFO, lat, mix, baseFP)
		}
	})

	t.Run("MixBUFFEntriesBeatQueues", func(t *testing.T) {
		// Section 3.2: growing buffers helps MixBUFF more than adding
		// buffers.
		e8 := hm(trace.SuiteFP, core.MixBUFFCfg(16, 16, 8, 8, 0))
		e16 := hm(trace.SuiteFP, core.MixBUFFCfg(16, 16, 8, 16, 0))
		q12 := hm(trace.SuiteFP, core.MixBUFFCfg(16, 16, 12, 8, 0))
		entriesGain := e16 - e8
		queuesGain := q12 - e8
		if entriesGain < queuesGain {
			t.Errorf("entries gain %.3f not above queues gain %.3f", entriesGain, queuesGain)
		}
	})

	t.Run("DistrSchemesEqualOnInt", func(t *testing.T) {
		// Figure 7: IF_distr and MB_distr perform identically on
		// integer codes (their integer sides are the same hardware)...
		names := trace.Benchmarks(trace.SuiteInt)
		for _, b := range names {
			if b == "eon" {
				continue // ...except eon, which has FP content.
			}
			rIF, err := s.Result(b, core.IFDistr())
			if err != nil {
				t.Fatal(err)
			}
			rMB, err := s.Result(b, core.MBDistr())
			if err != nil {
				t.Fatal(err)
			}
			if rIF.Cycles != rMB.Cycles {
				t.Errorf("%s: IF_distr %d cycles != MB_distr %d", b, rIF.Cycles, rMB.Cycles)
			}
		}
	})

	t.Run("MBDistrBeatsIFDistrFP", func(t *testing.T) {
		// Figure 8's headline.
		ifHM := hm(trace.SuiteFP, core.IFDistr())
		mbHM := hm(trace.SuiteFP, core.MBDistr())
		if mbHM <= ifHM*1.02 {
			t.Errorf("MB_distr HM %.3f not clearly above IF_distr %.3f", mbHM, ifHM)
		}
	})

	t.Run("WakeupDominatesBaselineEnergy", func(t *testing.T) {
		// Figure 9: wakeup is the largest baseline component for FP.
		var wakeup, total float64
		for _, b := range trace.Benchmarks(trace.SuiteFP) {
			r, err := s.Result(b, core.Baseline64())
			if err != nil {
				t.Fatal(err)
			}
			wakeup += r.Breakdown["wakeup"]
			total += r.Breakdown.Total()
		}
		if frac := wakeup / total; frac < 0.40 {
			t.Errorf("wakeup fraction %.2f below expectation", frac)
		}
	})

	t.Run("DistrSchemesSaveEnergy", func(t *testing.T) {
		// Figure 13: both distributed schemes far below baseline; and
		// MB_distr spends somewhat more than IF_distr on FP.
		var eBase, eIF, eMB float64
		for _, b := range trace.Benchmarks(trace.SuiteFP) {
			rb, err := s.Result(b, core.Baseline64())
			if err != nil {
				t.Fatal(err)
			}
			ri, err := s.Result(b, core.IFDistr())
			if err != nil {
				t.Fatal(err)
			}
			rm, err := s.Result(b, core.MBDistr())
			if err != nil {
				t.Fatal(err)
			}
			eBase += rb.IQEnergy
			eIF += ri.IQEnergy
			eMB += rm.IQEnergy
		}
		if eIF > 0.6*eBase || eMB > 0.75*eBase {
			t.Errorf("distributed schemes not saving energy: IF %.2f, MB %.2f of baseline",
				eIF/eBase, eMB/eBase)
		}
		if eMB <= eIF {
			t.Errorf("MB_distr energy %.0f not above IF_distr %.0f (paper: slightly more)",
				eMB, eIF)
		}
	})

	t.Run("MBDistrBeatsIFDistrEfficiency", func(t *testing.T) {
		// Figures 14/15: MB_distr wins ED and ED² over IF_distr on FP.
		var edIF, edMB, ed2IF, ed2MB float64
		for _, b := range trace.Benchmarks(trace.SuiteFP) {
			rb, err := s.Result(b, core.Baseline64())
			if err != nil {
				t.Fatal(err)
			}
			ri, err := s.Result(b, core.IFDistr())
			if err != nil {
				t.Fatal(err)
			}
			rm, err := s.Result(b, core.MBDistr())
			if err != nil {
				t.Fatal(err)
			}
			edIF += metrics.EnergyDelay(rb.Run, ri.Run) / metrics.EnergyDelay(rb.Run, rb.Run)
			edMB += metrics.EnergyDelay(rb.Run, rm.Run) / metrics.EnergyDelay(rb.Run, rb.Run)
			ed2IF += metrics.EnergyDelay2(rb.Run, ri.Run) / metrics.EnergyDelay2(rb.Run, rb.Run)
			ed2MB += metrics.EnergyDelay2(rb.Run, rm.Run) / metrics.EnergyDelay2(rb.Run, rb.Run)
		}
		if edMB >= edIF {
			t.Errorf("MB_distr ED %.3f not below IF_distr %.3f", edMB, edIF)
		}
		if ed2MB >= ed2IF {
			t.Errorf("MB_distr ED2 %.3f not below IF_distr %.3f", ed2MB, ed2IF)
		}
	})
}

// TestHeadlineCorridors pins the headline harmonic-mean numbers recorded
// in EXPERIMENTS.md inside generous corridors, so silent regressions in
// the models, schemes or pipeline are caught without making the suite
// brittle to small retunings.
func TestHeadlineCorridors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewSession(Options{Warmup: 8_000, Instructions: 40_000})
	hmLoss := func(suite trace.Suite, cfg core.Config) float64 {
		base, err := s.SuiteRuns(suite, core.Unbounded())
		if err != nil {
			t.Fatal(err)
		}
		runs, err := s.SuiteRuns(suite, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return 100 * (1 - metrics.HarmonicMeanIPC(runs)/metrics.HarmonicMeanIPC(base))
	}
	corridors := []struct {
		name   string
		suite  trace.Suite
		cfg    core.Config
		lo, hi float64
	}{
		// EXPERIMENTS.md values with ±~60% slack.
		{"IssueFIFO int 8x8", trace.SuiteInt, core.IssueFIFOCfg(8, 8, 16, 16), 5, 25},
		{"IssueFIFO fp 8x16", trace.SuiteFP, core.IssueFIFOCfg(16, 16, 8, 16), 9, 30},
		{"LatFIFO fp 8x16", trace.SuiteFP, core.LatFIFOCfg(16, 16, 8, 16), 5, 22},
		{"MixBUFF fp 8x16", trace.SuiteFP, core.MixBUFFCfg(16, 16, 8, 16, 0), 3, 18},
		{"IF_distr fp", trace.SuiteFP, core.IFDistr(), 9, 32},
		{"MB_distr fp", trace.SuiteFP, core.MBDistr(), 4, 20},
		{"IQ_64_64 fp", trace.SuiteFP, core.Baseline64(), -2, 6},
	}
	for _, c := range corridors {
		got := hmLoss(c.suite, c.cfg)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: HM loss %.1f%% outside corridor [%.0f, %.0f]",
				c.name, got, c.lo, c.hi)
		}
	}
}
