package blobstore

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client())
}

func TestPutGetHeadRoundTrip(t *testing.T) {
	srv, c := newPair(t)
	data := []byte(`{"hello":"blob"}`)

	if ok, err := c.Head("k1"); err != nil || ok {
		t.Fatalf("Head on empty server = %v, %v", ok, err)
	}
	if _, ok, err := c.Get("k1"); err != nil || ok {
		t.Fatalf("Get on empty server = %v, %v", ok, err)
	}
	if err := c.Put("k1", data); err != nil {
		t.Fatal(err)
	}
	if srv.Len() != 1 {
		t.Fatalf("server holds %d blobs, want 1", srv.Len())
	}
	got, ok, err := c.Get("k1")
	if err != nil || !ok {
		t.Fatalf("Get after Put = %v, %v", ok, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip altered the blob: %q", got)
	}
	if ok, err := c.Head("k1"); err != nil || !ok {
		t.Fatalf("Head after Put = %v, %v", ok, err)
	}
	// Overwrite is last-writer-wins.
	if err := c.Put("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = c.Get("k1")
	if string(got) != "v2" {
		t.Fatalf("overwrite not visible: %q", got)
	}
}

func TestServerRejectsBadKeysAndMethods(t *testing.T) {
	_, c := newPair(t)
	base := c.Base()

	for _, path := range []string{"/", "/a/b"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s status = %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(base+"/k", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestServerRejectsOversizedBlob(t *testing.T) {
	_, c := newPair(t)
	if err := c.Put("big", make([]byte, maxBlobBytes+1)); err == nil {
		t.Fatal("oversized Put succeeded")
	}
	if ok, _ := c.Head("big"); ok {
		t.Fatal("oversized blob was stored")
	}
}

func TestClientErrorTaxonomy(t *testing.T) {
	// A server that always fails distinguishes transport-level errors
	// from absent-key misses.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClient(ts.URL+"/", ts.Client()) // trailing slash is tolerated

	if _, ok, err := c.Get("k"); err == nil || ok {
		t.Fatalf("Get against 500 = %v, %v; want error", ok, err)
	}
	if _, err := c.Head("k"); err == nil {
		t.Fatal("Head against 500 returned nil error")
	}
	if err := c.Put("k", []byte("x")); err == nil {
		t.Fatal("Put against 500 returned nil error")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, c := newPair(t)
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("k-%d-%d", g, i)
				if err := c.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := c.Get(key)
				if err != nil || !ok || string(got) != key {
					t.Errorf("readback %s: %q %v %v", key, got, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if srv.Len() != writers*perWriter {
		t.Fatalf("server holds %d blobs, want %d", srv.Len(), writers*perWriter)
	}
}
