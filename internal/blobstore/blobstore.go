// Package blobstore is a minimal S3-like blob protocol over HTTP: a blob
// is a byte string addressed by an opaque key, and the whole protocol is
//
//	PUT  /{key}  store the request body under key (201)
//	GET  /{key}  fetch the blob (200, or 404 if absent)
//	HEAD /{key}  existence probe (200/404, no body)
//
// The package carries both halves: Client, the engine's HTTP result-store
// transport, and Server, an in-process implementation of the protocol so
// the HTTP backend is fully exercisable under httptest with zero external
// dependencies. Any real object store exposing per-key GET/PUT/HEAD —
// S3, MinIO, a bucket behind a path prefix — satisfies the same client.
package blobstore

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxBlobBytes bounds one blob accepted by the Server; canonical result
// entries are a few kilobytes, so a megabyte is generous.
const maxBlobBytes = 1 << 20

// Server is a goroutine-safe in-memory blob service implementing
// http.Handler. It exists so CI and tests can run the full HTTP store
// path in-process: httptest.NewServer(blobstore.NewServer()).
type Server struct {
	mu    sync.RWMutex
	blobs map[string][]byte
}

// NewServer returns an empty blob server.
func NewServer() *Server {
	return &Server{blobs: make(map[string][]byte)}
}

// Len reports the number of stored blobs.
func (s *Server) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// ServeHTTP implements the GET/PUT/HEAD protocol.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/")
	if key == "" || strings.Contains(key, "/") {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
		if err != nil {
			http.Error(w, "blob too large", http.StatusRequestEntityTooLarge)
			return
		}
		s.mu.Lock()
		s.blobs[key] = data
		s.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet, http.MethodHead:
		s.mu.RLock()
		data, ok := s.blobs[key]
		s.mu.RUnlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		if r.Method == http.MethodGet {
			w.Write(data) //nolint:errcheck // client disconnects are its problem
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// DefaultTimeout bounds one blob exchange end to end when NewClient is
// given no http.Client. Canonical entries are a few kilobytes, so half a
// minute is generous for any healthy service; without this bound a hung
// blob server would stall a sweep forever (http.DefaultClient has no
// timeout at all).
const DefaultTimeout = 30 * time.Second

// NewHTTPClient returns an http.Client with bounded connection setup
// (dial, TLS handshake, response headers) on a keep-alive transport —
// one connection is reused across a group of Puts, the property the
// write-behind batcher's flushes amortize. timeout > 0 additionally
// bounds each whole exchange; timeout <= 0 leaves the total exchange
// unbounded, the right shape for long-lived streaming responses (the
// distiqd NDJSON stream sends headers immediately but bodies for as
// long as the sweep runs).
func NewHTTPClient(timeout time.Duration) *http.Client {
	if timeout < 0 {
		timeout = 0
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			Proxy: http.ProxyFromEnvironment,
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   10 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConnsPerHost:   16,
		},
	}
}

// Client speaks the blob protocol against a base URL. The zero http
// client is never used: nil hc selects NewHTTPClient(DefaultTimeout),
// so a hung or unreachable blob server turns into a bounded transport
// error (a store miss / disk error) instead of a stalled sweep.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the blob service at base (scheme://host
// or scheme://host/prefix; a trailing slash is tolerated).
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = NewHTTPClient(DefaultTimeout)
	}
	return &Client{base: strings.TrimSuffix(base, "/"), hc: hc}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

func (c *Client) url(key string) string { return c.base + "/" + key }

// Get fetches the blob under key; ok is false when the key is absent.
func (c *Client) Get(key string) (data []byte, ok bool, err error) {
	resp, err := c.hc.Get(c.url(key))
	if err != nil {
		return nil, false, fmt.Errorf("blobstore: GET %s: %w", key, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, fmt.Errorf("blobstore: GET %s: %w", key, err)
		}
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("blobstore: GET %s: status %d", key, resp.StatusCode)
}

// Put stores data under key.
func (c *Client) Put(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.url(key), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("blobstore: PUT %s: %w", key, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("blobstore: PUT %s: %w", key, err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("blobstore: PUT %s: status %d", key, resp.StatusCode)
	}
	return nil
}

// Head reports whether a blob exists under key.
func (c *Client) Head(key string) (bool, error) {
	resp, err := c.hc.Head(c.url(key))
	if err != nil {
		return false, fmt.Errorf("blobstore: HEAD %s: %w", key, err)
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("blobstore: HEAD %s: status %d", key, resp.StatusCode)
}
