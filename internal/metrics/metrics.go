// Package metrics computes the paper's evaluation metrics: IPC and
// harmonic means, IPC loss relative to a baseline, normalized power and
// energy of the issue queue, and whole-processor energy-delay and
// energy-delay² products under the paper's assumption that the issue queue
// contributes 23% of total chip power in the baseline configuration
// (Wilcox & Manne's Alpha analysis, the paper's reference [23]).
package metrics

import "fmt"

// IQShareOfChipPower is the paper's assumption for the baseline issue
// queue's contribution to total chip power.
const IQShareOfChipPower = 0.23

// Run is the outcome of simulating one benchmark under one configuration.
type Run struct {
	Benchmark string
	Config    string
	Insts     uint64
	Cycles    uint64
	// IQEnergy is the issue-logic energy in picojoules (both domains).
	IQEnergy float64
}

// IPC returns instructions per cycle.
func (r Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// IQPower returns the issue-logic power in pJ/cycle.
func (r Run) IQPower() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.IQEnergy / float64(r.Cycles)
}

// HarmonicMeanIPC returns the harmonic mean of the runs' IPCs, the mean
// the paper reports (HARMEAN bars in Figures 7 and 8).
func HarmonicMeanIPC(runs []Run) float64 {
	if len(runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range runs {
		ipc := r.IPC()
		if ipc <= 0 {
			return 0
		}
		sum += 1 / ipc
	}
	return float64(len(runs)) / sum
}

// IPCLoss returns the fractional IPC loss of cfg relative to base for the
// same benchmark (positive = slower).
func IPCLoss(base, cfg Run) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return 1 - cfg.IPC()/b
}

// ChipEnergy estimates whole-processor energy for a run: the simulated
// issue-queue energy plus a rest-of-chip component. The rest of the chip
// is modeled as a constant power draw calibrated from the baseline run of
// the same benchmark so that the baseline issue queue accounts for
// IQShareOfChipPower of total power, exactly the paper's procedure.
func ChipEnergy(baseline, r Run) float64 {
	restPower := baseline.IQPower() * (1 - IQShareOfChipPower) / IQShareOfChipPower
	return r.IQEnergy + restPower*float64(r.Cycles)
}

// EnergyDelay returns the whole-processor energy-delay product, with chip
// energy calibrated against the baseline run (see ChipEnergy).
func EnergyDelay(baseline, r Run) float64 {
	return ChipEnergy(baseline, r) * float64(r.Cycles)
}

// EnergyDelay2 returns the whole-processor energy-delay² product.
func EnergyDelay2(baseline, r Run) float64 {
	return EnergyDelay(baseline, r) * float64(r.Cycles)
}

// Normalized divides metric values by the baseline's value; the paper
// normalizes every power-efficiency figure to IQ_64_64.
func Normalized(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return value / base
}

// SuiteAggregate summarizes one configuration over a suite: mean of
// per-benchmark normalized metrics (the paper's per-suite bars).
type SuiteAggregate struct {
	Config string
	// HMeanIPC is the harmonic mean IPC.
	HMeanIPC float64
	// Loss is the harmonic-mean IPC loss versus the reference config.
	Loss float64
	// Power, Energy, ED, ED2 are normalized to the baseline config
	// (arithmetic mean of per-benchmark normalized values).
	Power, Energy, ED, ED2 float64
}

// Aggregate builds a SuiteAggregate for cfgRuns given the per-benchmark
// reference runs (for IPC loss) and baseline runs (for normalization).
// The three slices must be parallel: index i refers to the same benchmark.
func Aggregate(config string, reference, baseline, cfgRuns []Run) (SuiteAggregate, error) {
	if len(reference) != len(cfgRuns) || len(baseline) != len(cfgRuns) {
		return SuiteAggregate{}, fmt.Errorf("metrics: mismatched run sets (%d/%d/%d)",
			len(reference), len(baseline), len(cfgRuns))
	}
	agg := SuiteAggregate{Config: config}
	agg.HMeanIPC = HarmonicMeanIPC(cfgRuns)
	refHM := HarmonicMeanIPC(reference)
	if refHM > 0 {
		agg.Loss = 1 - agg.HMeanIPC/refHM
	}
	n := float64(len(cfgRuns))
	for i, r := range cfgRuns {
		if reference[i].Benchmark != r.Benchmark || baseline[i].Benchmark != r.Benchmark {
			return SuiteAggregate{}, fmt.Errorf("metrics: benchmark mismatch at %d (%s/%s/%s)",
				i, reference[i].Benchmark, baseline[i].Benchmark, r.Benchmark)
		}
		b := baseline[i]
		agg.Power += Normalized(b.IQPower(), r.IQPower()) / n
		agg.Energy += Normalized(b.IQEnergy, r.IQEnergy) / n
		agg.ED += Normalized(EnergyDelay(b, b), EnergyDelay(b, r)) / n
		agg.ED2 += Normalized(EnergyDelay2(b, b), EnergyDelay2(b, r)) / n
	}
	return agg, nil
}

// EnergyDelayAtCycleTime evaluates ED with the run's clock period scaled
// by relCycle (<1 = faster clock). The paper's conclusion argues the
// reduced issue-queue complexity of the distributed schemes may enable a
// shorter cycle time but leaves it unquantified; this function supports
// that what-if analysis. Dynamic energy per event is held constant (same
// capacitances and supply), so only the delay term scales.
func EnergyDelayAtCycleTime(baseline, r Run, relCycle float64) float64 {
	return ChipEnergy(baseline, r) * float64(r.Cycles) * relCycle
}

// EnergyDelay2AtCycleTime is the ED² counterpart (delay² scales by
// relCycle²).
func EnergyDelay2AtCycleTime(baseline, r Run, relCycle float64) float64 {
	return EnergyDelayAtCycleTime(baseline, r, relCycle) * float64(r.Cycles) * relCycle
}

// BreakEvenCycleTimeED2 returns the relative cycle time at which the
// run's whole-processor ED² equals the baseline's: the clock advantage
// the simplified issue logic must deliver to break even. Values above 1
// mean the run already wins at equal clocks.
func BreakEvenCycleTimeED2(baseline, r Run) float64 {
	eb := ChipEnergy(baseline, baseline) * float64(baseline.Cycles) * float64(baseline.Cycles)
	er := ChipEnergy(baseline, r) * float64(r.Cycles) * float64(r.Cycles)
	if er == 0 {
		return 0
	}
	// er * t² = eb  =>  t = sqrt(eb/er)
	return sqrtf(eb / er)
}

// sqrtf avoids importing math for one call site.
func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
