package metrics

import (
	"math"
	"testing"
)

func run(bench string, insts, cycles uint64, energy float64) Run {
	return Run{Benchmark: bench, Insts: insts, Cycles: cycles, IQEnergy: energy}
}

func TestIPCAndPower(t *testing.T) {
	r := run("x", 200, 100, 500)
	if r.IPC() != 2.0 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.IQPower() != 5.0 {
		t.Fatalf("IQPower = %v", r.IQPower())
	}
	var z Run
	if z.IPC() != 0 || z.IQPower() != 0 {
		t.Fatal("zero-cycle run should have zero rates")
	}
}

func TestHarmonicMean(t *testing.T) {
	runs := []Run{run("a", 100, 100, 0), run("b", 300, 100, 0)} // IPC 1 and 3
	hm := HarmonicMeanIPC(runs)
	want := 2.0 / (1.0/1 + 1.0/3)
	if math.Abs(hm-want) > 1e-12 {
		t.Fatalf("HM = %v, want %v", hm, want)
	}
	if HarmonicMeanIPC(nil) != 0 {
		t.Fatal("HM of empty set should be 0")
	}
	if HarmonicMeanIPC([]Run{run("a", 0, 100, 0)}) != 0 {
		t.Fatal("HM with a zero-IPC member should be 0")
	}
}

func TestIPCLoss(t *testing.T) {
	base := run("a", 200, 100, 0) // IPC 2
	cfg := run("a", 150, 100, 0)  // IPC 1.5
	if got := IPCLoss(base, cfg); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("loss = %v, want 0.25", got)
	}
}

func TestChipEnergyCalibration(t *testing.T) {
	// In the baseline run itself, the issue queue must account for
	// exactly 23% of chip energy.
	b := run("a", 1000, 500, 2300)
	chip := ChipEnergy(b, b)
	if math.Abs(b.IQEnergy/chip-IQShareOfChipPower) > 1e-9 {
		t.Fatalf("baseline IQ share = %v, want %v", b.IQEnergy/chip, IQShareOfChipPower)
	}
	// A config with half the IQ energy and the same cycles saves only
	// 23%-scaled energy.
	r := run("a", 1000, 500, 1150)
	ratio := ChipEnergy(b, r) / chip
	want := 0.23*0.5 + 0.77
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("chip ratio = %v, want %v", ratio, want)
	}
}

func TestEDPenalizesSlowdown(t *testing.T) {
	b := run("a", 1000, 500, 2300)
	// Config: 40% the IQ energy but 20% more cycles.
	r := run("a", 1000, 600, 0.4*2300)
	ed := Normalized(EnergyDelay(b, b), EnergyDelay(b, r))
	ed2 := Normalized(EnergyDelay2(b, b), EnergyDelay2(b, r))
	if ed2 <= ed {
		t.Fatalf("ED² (%v) must penalize delay more than ED (%v)", ed2, ed)
	}
	if ed <= 0.6 {
		t.Fatalf("ED %v implausibly low given 20%% slowdown", ed)
	}
}

func TestAggregate(t *testing.T) {
	ref := []Run{run("a", 200, 100, 0), run("b", 400, 100, 0)}
	base := []Run{run("a", 190, 100, 1000), run("b", 380, 100, 1000)}
	cfg := []Run{run("a", 180, 100, 250), run("b", 360, 100, 250)}
	agg, err := Aggregate("X", ref, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Config != "X" {
		t.Fatal("config name lost")
	}
	wantHM := HarmonicMeanIPC(cfg)
	if agg.HMeanIPC != wantHM {
		t.Fatalf("HM = %v, want %v", agg.HMeanIPC, wantHM)
	}
	// Same cycles, 1/4 energy: normalized power and energy = 0.25.
	if math.Abs(agg.Power-0.25) > 1e-9 || math.Abs(agg.Energy-0.25) > 1e-9 {
		t.Fatalf("power/energy = %v/%v, want 0.25", agg.Power, agg.Energy)
	}
	// Loss: HM ipc 2.4 vs ref 2.666...
	if agg.Loss <= 0 || agg.Loss > 0.2 {
		t.Fatalf("loss = %v", agg.Loss)
	}
	// ED (same cycles): chip energy ratio = 0.23*0.25+0.77.
	wantED := 0.23*0.25 + 0.77
	if math.Abs(agg.ED-wantED) > 1e-9 {
		t.Fatalf("ED = %v, want %v", agg.ED, wantED)
	}
	if math.Abs(agg.ED2-wantED) > 1e-9 {
		t.Fatalf("ED2 = %v, want %v (same cycles)", agg.ED2, wantED)
	}
}

func TestAggregateErrors(t *testing.T) {
	a := []Run{run("a", 1, 1, 1)}
	b := []Run{run("b", 1, 1, 1)}
	if _, err := Aggregate("X", a, a, nil); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if _, err := Aggregate("X", a, b, a); err == nil {
		t.Fatal("benchmark mismatch not detected")
	}
}

func TestNormalizedZeroBase(t *testing.T) {
	if Normalized(0, 5) != 0 {
		t.Fatal("zero base should yield 0")
	}
}

func TestCycleTimeScaling(t *testing.T) {
	b := run("a", 1000, 500, 2300)
	r := run("a", 1000, 550, 1150)
	ed1 := EnergyDelayAtCycleTime(b, r, 1.0)
	if math.Abs(ed1-EnergyDelay(b, r)) > 1e-9 {
		t.Fatal("relCycle=1 must match EnergyDelay")
	}
	ed90 := EnergyDelayAtCycleTime(b, r, 0.9)
	if math.Abs(ed90-0.9*ed1) > 1e-9 {
		t.Fatal("ED must scale linearly with cycle time")
	}
	ed2 := EnergyDelay2AtCycleTime(b, r, 0.9)
	if math.Abs(ed2-0.81*EnergyDelay2(b, r)) > 1e-6*ed2 {
		t.Fatal("ED² must scale quadratically with cycle time")
	}
}

func TestBreakEvenCycleTime(t *testing.T) {
	b := run("a", 1000, 500, 2300)
	// Same energy profile, 10% more cycles: needs a faster clock.
	slower := run("a", 1000, 550, 2300*1.1/1.0)
	be := BreakEvenCycleTimeED2(b, slower)
	if be >= 1.0 {
		t.Fatalf("slower run break-even %v, want < 1", be)
	}
	// At the break-even clock, ED² matches the baseline.
	got := EnergyDelay2AtCycleTime(b, slower, be)
	want := EnergyDelay2(b, b)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("break-even inconsistent: %v vs %v", got, want)
	}
	// A strictly better run breaks even above 1.
	better := run("a", 1000, 450, 1000)
	if BreakEvenCycleTimeED2(b, better) <= 1.0 {
		t.Fatal("better run should break even above 1")
	}
}

func TestSqrtf(t *testing.T) {
	for _, x := range []float64{0.25, 1, 2, 100, 1e6} {
		got := sqrtf(x)
		if math.Abs(got-math.Sqrt(x)) > 1e-9*math.Sqrt(x) {
			t.Fatalf("sqrtf(%v) = %v", x, got)
		}
	}
	if sqrtf(-1) != 0 || sqrtf(0) != 0 {
		t.Fatal("non-positive handling")
	}
}
