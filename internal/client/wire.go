package client

import "distiq/internal/engine"

// StreamEvent is one NDJSON line of the distiqd per-point results stream
// (GET /v1/sweeps/{id}/stream). The server (internal/serve) encodes this
// exact type and Remote decodes it, so the wire format has one
// definition.
//
// Three shapes appear on the wire, in grid order:
//
//	{"index":0,"benchmark":"swim","source":"simulated","result":{...}}  per point
//	{"index":7,"error":"..."}                                           terminal failure
//	{"done":true,"points":12}                                           terminal success
//
// The result object is the engine's Result JSON — the same encoding the
// persistent store uses — so a decoded stream reconstructs results
// exactly and documents emitted from them are byte-identical to the
// server's own emitters.
type StreamEvent struct {
	// Index is the point's position in the grid (present on per-point
	// and error events; 0 on the done event, which carries no point).
	Index int `json:"index"`
	// Benchmark names the point's workload (informational; the client
	// already knows the grid).
	Benchmark string `json:"benchmark,omitempty"`
	// Source says how the server resolved the point.
	Source engine.Source `json:"source,omitempty"`
	// Result is the point's outcome; nil on terminal events.
	Result *engine.Result `json:"result,omitempty"`
	// Error terminates a failed stream (set on the first failed point in
	// grid order).
	Error string `json:"error,omitempty"`
	// Done terminates a successful stream; Points echoes the grid size.
	Done   bool `json:"done,omitempty"`
	Points int  `json:"points,omitempty"`
	// Manifest is the sweep's tamper-evident Merkle manifest, carried on
	// the done event only, so a streaming consumer can verify (or
	// archive) the sweep without a second request.
	Manifest *engine.Manifest `json:"manifest,omitempty"`
}
