// Package client is the unified, context-aware entry point to the
// experiment system: one Client interface over every execution substrate
// — the in-process concurrent engine (Local), a remote distiqd service
// (Remote), and a sharded fleet of distiqd workers (Fleet) — so
// harnesses, CLIs and library users pick a substrate by constructor,
// not by API shape.
//
// A Client resolves single jobs (Run) and whole scenario grids (Sweep).
// Sweep returns a Stream delivering per-point results in deterministic
// grid order as they resolve, whatever the parallelism or substrate, so
// a consumer can render progress live and still assemble byte-identical
// CSV/JSON/markdown documents via Stream.ResultSet — the same emitters
// every other front end uses.
//
// Both implementations honor context cancellation: a cancelled sweep
// stops scheduling new points promptly (in-flight simulations finish and
// persist, so the distiq-v2 store stays consistent and a warm rerun
// completes only the remainder) and the stream's error unwraps to
// context.Canceled.
package client

import (
	"context"
	"fmt"

	"distiq/internal/engine"
	"distiq/internal/scenario"
)

// Job identifies one unit of experiment work: a benchmark under an
// issue-queue configuration, sized by options, optionally on an
// overridden machine. It is the engine's job type, re-exported as the
// Client layer's point currency.
type Job = engine.Job

// Client is the one experiment interface over every execution substrate.
// Implementations: Local (in-process engine), Remote (distiqd over
// HTTP) and Fleet (N distiqd workers behind a client-side shard map).
// All are safe for concurrent use.
type Client interface {
	// Run resolves one job, blocking until its result is available or
	// ctx is cancelled.
	Run(ctx context.Context, job Job) (engine.Result, error)
	// Sweep starts resolving every point of a scenario grid and returns
	// a stream of per-point results in deterministic grid order. Sweep
	// itself does not block; consume the stream with Next/Update or
	// drain it with ResultSet.
	Sweep(ctx context.Context, grid *scenario.Grid) *Stream
}

// Update is one resolved grid point delivered by a Stream.
type Update struct {
	// Index is the point's position in the grid (updates arrive in
	// strictly increasing index order).
	Index int
	// Point is the grid cell the result belongs to.
	Point scenario.Point
	// Result is the simulation outcome.
	Result engine.Result
	// Source says how the point was resolved (simulated, memory, disk,
	// shared).
	Source engine.Source
}

// Counts aggregates how a stream's delivered points were resolved; on a
// warm store a rerun shows Simulated == 0. Local and Remote sweeps of
// the same grid against the same store report identical counts.
type Counts struct {
	Simulated  int64 `json:"simulated"`
	MemoryHits int64 `json:"memory_hits"`
	DiskHits   int64 `json:"disk_hits"`
	Shared     int64 `json:"shared"`
}

// Total returns the number of counted points.
func (c Counts) Total() int64 {
	return c.Simulated + c.MemoryHits + c.DiskHits + c.Shared
}

// Add tallies one resolved source — the one place the Source-to-counter
// mapping lives. Terminal sources (canceled) are not point resolutions
// and count nowhere.
func (c *Counts) Add(src engine.Source) {
	switch src {
	case engine.SourceSimulated:
		c.Simulated++
	case engine.SourceMemory:
		c.MemoryHits++
	case engine.SourceDisk:
		c.DiskHits++
	case engine.SourceShared:
		c.Shared++
	}
}

// Stats renders the counts as batch-scoped engine counters (Requested is
// the points counted; DiskErrors and Canceled are unobservable from a
// stream and stay zero).
func (c Counts) Stats() engine.Stats {
	return engine.Stats{
		Requested:  c.Total(),
		Simulated:  c.Simulated,
		MemoryHits: c.MemoryHits,
		DiskHits:   c.DiskHits,
		Shared:     c.Shared,
	}
}

// item is one stream element: an update or the terminal error.
type item struct {
	u   Update
	err error
}

// Stream delivers a sweep's results in deterministic grid order. It is
// a single-consumer iterator:
//
//	st := cl.Sweep(ctx, grid)
//	for st.Next() {
//		u := st.Update()
//		// ... render u.Point / u.Result
//	}
//	if err := st.Err(); err != nil { ... }
//
// or, to collect everything through the shared emitters:
//
//	res, err := st.ResultSet()
//
// The producer never blocks on a slow consumer (delivery is buffered to
// the grid size), so abandoning a stream loses nothing and blocks
// nobody — but the sweep itself keeps resolving in the background until
// it finishes or ctx is cancelled; cancel ctx to stop the work.
type Stream struct {
	grid     *scenario.Grid
	ch       chan item
	cur      Update
	err      error
	counts   Counts
	consumed int
	// manifest is set by the producer before the stream closes (the
	// channel close is the happens-before edge), so consumers read it
	// only after Next returns false.
	manifest *engine.Manifest
}

// newStream returns a stream for a grid with room for every point.
func newStream(grid *scenario.Grid) *Stream {
	return &Stream{grid: grid, ch: make(chan item, grid.Size()+1)}
}

// send delivers one in-order update (producer side; never blocks).
func (s *Stream) send(u Update) { s.ch <- item{u: u} }

// fail terminates the stream with err (producer side).
func (s *Stream) fail(err error) { s.ch <- item{err: err} }

// setManifest records the sweep's manifest (producer side; must happen
// before finish).
func (s *Stream) setManifest(m *engine.Manifest) { s.manifest = m }

// finish closes the stream after the last send or fail (producer side).
func (s *Stream) finish() { close(s.ch) }

// Next advances to the next in-order result, blocking until it is
// available. It returns false when the stream is exhausted or failed;
// check Err to distinguish.
func (s *Stream) Next() bool {
	it, ok := <-s.ch
	if !ok {
		return false
	}
	if it.err != nil {
		s.err = it.err
		return false
	}
	s.cur = it.u
	s.consumed++
	s.counts.Add(it.u.Source)
	return true
}

// Update returns the result Next advanced to.
func (s *Stream) Update() Update { return s.cur }

// Err returns the error that terminated the stream, or nil after a
// complete sweep. A cancelled sweep's error unwraps to context.Canceled.
func (s *Stream) Err() error { return s.err }

// Grid returns the grid the stream resolves.
func (s *Stream) Grid() *scenario.Grid { return s.grid }

// Counts reports how the points delivered so far were resolved.
func (s *Stream) Counts() Counts { return s.counts }

// Manifest returns the sweep's tamper-evident Merkle manifest. It is
// available only after the stream has been fully and successfully
// consumed (Next returned false with a nil Err, or ResultSet returned);
// earlier — or after a failed or cancelled sweep — it returns nil. Local
// and Remote sweeps of the same grid return identical manifests.
func (s *Stream) Manifest() *engine.Manifest { return s.manifest }

// ResultSet drains the stream and assembles the scenario result set,
// whose CSV/JSON/markdown emitters are shared by every front end — so
// Local and Remote sweeps of the same grid emit byte-identical
// documents. Its Stats field carries the batch-scoped resolution
// counters observed by the stream (Simulated == 0 on a warm rerun),
// matching the deprecated Grid.Run contract. It must be called instead
// of (not after) Next.
func (s *Stream) ResultSet() (*scenario.ResultSet, error) {
	if s.consumed > 0 {
		return nil, fmt.Errorf("client: ResultSet called on a partially consumed stream (%d updates already read)", s.consumed)
	}
	results := make([]engine.Result, 0, s.grid.Size())
	for s.Next() {
		results = append(results, s.cur.Result)
	}
	if s.err != nil {
		return nil, s.err
	}
	return &scenario.ResultSet{Grid: s.grid, Results: results, Stats: s.counts.Stats()}, nil
}

// pointErr wraps a point failure with its grid coordinates, preserving
// the cause for errors.Is (context.Canceled in particular).
func pointErr(g *scenario.Grid, i int, err error) error {
	p := g.Points[i]
	return fmt.Errorf("client: sweep point %d (%s under %s): %w", i, p.Bench, p.Config.Name, err)
}
