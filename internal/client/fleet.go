package client

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distiq/internal/blobstore"
	"distiq/internal/cliutil"
	"distiq/internal/engine"
	"distiq/internal/obs"
	"distiq/internal/scenario"
)

// Fleet defaults; WithFleetRetry and WithFleetStreams override them.
const (
	defaultFleetAttempts = 3
	defaultFleetBackoff  = 250 * time.Millisecond
	defaultFleetStreams  = 4
)

// Fleet is the Client over N distiqd workers: a client-side shard map.
// A sweep's grid points are partitioned across the workers by distiq-v2
// job fingerprint (engine.ShardIndex — deterministic, so every fleet
// client pointed at the same worker list sends the same point to the
// same worker and its warm cache), each point runs as a single-point
// sub-sweep over the worker's streaming NDJSON endpoint, and results
// merge back into deterministic grid order — the stream a Fleet sweep
// delivers is byte-for-byte the stream a Local or Remote sweep of the
// same grid delivers, Merkle manifest included.
//
// Failures are survived, not propagated, for as long as any worker
// lives: a point that fails against a healthy worker (per its /healthz)
// is retried there with exponential backoff under a bounded attempt
// budget, while a worker that fails its health probe is declared dead
// and its unfinished points are requeued onto the survivors by the same
// fingerprint-stable map. The sweep fails only on caller cancellation,
// an input the service rejects, an exhausted attempt budget, or the
// death of every worker.
type Fleet struct {
	workers  []*Remote
	attempts int
	backoff  time.Duration
	streams  int

	points   []atomic.Int64 // delivered per worker
	requeues atomic.Int64
	retries  atomic.Int64
	losses   atomic.Int64
}

// NewFleet returns a Fleet over the distiqd workers at baseURLs (at
// least one). Recognized options: WithHTTPClient (shared by every
// worker connection), WithFleetRetry, WithFleetStreams.
func NewFleet(baseURLs []string, opts ...Option) *Fleet {
	if len(baseURLs) == 0 {
		panic("client: NewFleet needs at least one worker URL")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	hc := cfg.httpClient
	if hc == nil {
		hc = blobstore.NewHTTPClient(0)
	}
	f := &Fleet{
		workers:  make([]*Remote, len(baseURLs)),
		attempts: cfg.fleetAttempts,
		backoff:  cfg.fleetBackoff,
		streams:  cfg.fleetStreams,
		points:   make([]atomic.Int64, len(baseURLs)),
	}
	if f.attempts < 1 {
		f.attempts = defaultFleetAttempts
	}
	if f.backoff <= 0 {
		f.backoff = defaultFleetBackoff
	}
	if f.streams < 1 {
		f.streams = defaultFleetStreams
	}
	for i, base := range baseURLs {
		f.workers[i] = NewRemote(base, WithHTTPClient(hc))
	}
	return f
}

// Workers returns the fleet's worker base URLs, in shard-map order.
func (f *Fleet) Workers() []string {
	bases := make([]string, len(f.workers))
	for i, w := range f.workers {
		bases[i] = w.Base()
	}
	return bases
}

// Run resolves one job on the worker its fingerprint maps to, with the
// same retry/requeue policy as a sweep point.
func (f *Fleet) Run(ctx context.Context, job Job) (engine.Result, error) {
	spec, err := SpecForJob(job)
	if err != nil {
		return engine.Result{}, err
	}
	grid, err := spec.Expand()
	if err != nil {
		return engine.Result{}, err
	}
	st := f.Sweep(ctx, grid)
	if !st.Next() {
		if st.Err() != nil {
			return engine.Result{}, st.Err()
		}
		return engine.Result{}, errors.New("client: fleet stream delivered no result")
	}
	res := st.Update().Result
	for st.Next() {
	}
	return res, st.Err()
}

// Sweep shards the grid across the fleet and streams per-point results
// in deterministic grid order: out-of-order completions are buffered and
// released strictly in sequence, whatever worker produced them. Every
// point must be expressible as a single-point scenario spec (SpecForJob)
// — grids expanded from specs always are — and that is checked up front,
// before any network traffic. Cancelling ctx aborts the in-flight
// sub-sweeps promptly; the stream's error unwraps to context.Canceled.
func (f *Fleet) Sweep(ctx context.Context, grid *scenario.Grid) *Stream {
	st := newStream(grid)
	go func() {
		defer st.finish()
		f.sweep(ctx, grid, st)
	}()
	return st
}

// fleetRun is the shared state of one sharded sweep: per-worker point
// queues, liveness, the per-point attempt ledger, and the merge buffer
// that restores grid order. All of it is guarded by mu; cond is
// broadcast whenever queues gain points, a worker dies, the sweep fails,
// or the last point lands.
type fleetRun struct {
	f     *Fleet
	grid  *scenario.Grid
	jobs  []engine.Job
	fps   []string         // fingerprint per point (drives requeue placement)
	grids []*scenario.Grid // pre-expanded single-point grid per point

	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]int // pending point indexes per worker
	dead    []bool
	aliveN  int
	tries   []int // attempts consumed per point
	results []engine.Result
	sources []engine.Source
	done    []bool
	next    int // first grid index not yet released to the stream
	left    int // points not yet delivered
	err     error

	st *Stream
}

// sweep partitions, runs and merges one grid; it reports the terminal
// error (if any) onto st and returns when every goroutine has drained.
func (f *Fleet) sweep(ctx context.Context, grid *scenario.Grid, st *Stream) {
	n := grid.Size()
	jobs := grid.Jobs()
	r := &fleetRun{
		f:       f,
		grid:    grid,
		jobs:    jobs,
		fps:     make([]string, n),
		grids:   make([]*scenario.Grid, n),
		queues:  make([][]int, len(f.workers)),
		dead:    make([]bool, len(f.workers)),
		aliveN:  len(f.workers),
		tries:   make([]int, n),
		results: make([]engine.Result, n),
		sources: make([]engine.Source, n),
		done:    make([]bool, n),
		left:    n,
		st:      st,
	}
	r.cond = sync.NewCond(&r.mu)

	// Address and render every point before any network I/O, so a grid
	// the fleet cannot shard (or a point no spec can express) fails
	// instantly and deterministically.
	for i, j := range jobs {
		fp, ok := j.Fingerprint()
		if !ok {
			st.fail(pointErr(grid, i, errors.New("custom schemes cannot run on a fleet")))
			return
		}
		spec, err := SpecForJob(j)
		if err != nil {
			st.fail(pointErr(grid, i, err))
			return
		}
		pg, err := spec.Expand()
		if err != nil {
			st.fail(pointErr(grid, i, err))
			return
		}
		r.fps[i] = fp
		r.grids[i] = pg
	}
	parts, err := engine.PartitionJobs(jobs, len(f.workers))
	if err != nil {
		st.fail(err)
		return
	}
	for w, part := range parts {
		r.queues[w] = part
	}

	// A cancelled caller must wake goroutines parked on the cond.
	stopWatch := context.AfterFunc(ctx, func() {
		r.setErr(fmt.Errorf("client: fleet sweep: %w", context.Cause(ctx)))
	})
	defer stopWatch()

	var wg sync.WaitGroup
	for w := range f.workers {
		for s := 0; s < f.streams; s++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				f.serveWorker(ctx, r, w)
			}(w)
		}
	}
	wg.Wait()

	r.mu.Lock()
	err = r.err
	r.mu.Unlock()
	if err != nil {
		st.fail(err)
		return
	}
	// Same manifest path as Local: built from the merged results, so the
	// Merkle root is identical whatever sharding produced them.
	if m, err := engine.BuildManifest(grid.Spec.Name, jobs, r.results); err == nil {
		st.setManifest(m)
	}
}

// serveWorker is one stream slot against worker w: it pulls point
// indexes off w's queue until the sweep completes, fails, or w dies.
func (f *Fleet) serveWorker(ctx context.Context, r *fleetRun, w int) {
	for {
		r.mu.Lock()
		for r.err == nil && r.left > 0 && !r.dead[w] && len(r.queues[w]) == 0 {
			r.cond.Wait()
		}
		if r.err != nil || r.left == 0 || r.dead[w] {
			r.mu.Unlock()
			return
		}
		idx := r.queues[w][0]
		r.queues[w] = r.queues[w][1:]
		r.tries[idx]++
		attempt := r.tries[idx]
		r.mu.Unlock()

		res, src, err := f.runPoint(ctx, f.workers[w], r.grids[idx])
		if err == nil {
			r.deliver(w, idx, res, src)
			continue
		}
		f.handleFailure(ctx, r, w, idx, attempt, err)
	}
}

// runPoint runs one single-point sub-sweep against worker w and returns
// its result and resolution source.
func (f *Fleet) runPoint(ctx context.Context, w *Remote, grid *scenario.Grid) (engine.Result, engine.Source, error) {
	st := w.Sweep(ctx, grid)
	if !st.Next() {
		err := st.Err()
		if err == nil {
			err = errors.New("stream delivered no result")
		}
		return engine.Result{}, "", err
	}
	u := st.Update()
	for st.Next() {
	}
	if err := st.Err(); err != nil {
		return engine.Result{}, "", err
	}
	return u.Result, u.Source, nil
}

// deliver records one resolved point and releases the in-order prefix
// to the stream.
func (r *fleetRun) deliver(w, idx int, res engine.Result, src engine.Source) {
	r.f.points[w].Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || r.done[idx] {
		return
	}
	r.results[idx], r.sources[idx], r.done[idx] = res, src, true
	r.left--
	for r.next < len(r.done) && r.done[r.next] {
		r.st.send(Update{Index: r.next, Point: r.grid.Points[r.next], Result: r.results[r.next], Source: r.sources[r.next]})
		r.next++
	}
	if r.left == 0 {
		r.cond.Broadcast()
	}
}

// setErr records the sweep's terminal error (first one wins) and wakes
// every parked goroutine.
func (r *fleetRun) setErr(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// handleFailure sorts one failed point attempt into the taxonomy:
// caller cancellation and service-rejected input fail the sweep; a
// healthy worker earns a backed-off retry in place; a worker that fails
// its health probe is declared dead and its points move to survivors.
func (f *Fleet) handleFailure(ctx context.Context, r *fleetRun, w, idx, attempt int, err error) {
	switch {
	case ctx.Err() != nil:
		r.setErr(pointErr(r.grid, idx, context.Cause(ctx)))
		return
	case errors.Is(err, context.Canceled):
		r.setErr(pointErr(r.grid, idx, err))
		return
	case cliutil.IsBadInput(err):
		// The service validated the point and rejected it; no worker
		// will answer differently.
		r.setErr(pointErr(r.grid, idx, err))
		return
	}
	if attempt >= f.attempts {
		r.setErr(pointErr(r.grid, idx, fmt.Errorf("failed after %d attempts on %s: %w", attempt, f.workers[w].Base(), err)))
		return
	}
	if f.workers[w].Healthy(ctx) {
		f.retries.Add(1)
		if !sleepCtx(ctx, f.backoff<<uint(attempt-1)) {
			r.setErr(pointErr(r.grid, idx, context.Cause(ctx)))
			return
		}
		r.requeue(w, idx)
		return
	}
	r.loseWorker(w, idx, err)
}

// requeue puts a transiently failed point back on its worker's queue.
func (r *fleetRun) requeue(w, idx int) {
	r.mu.Lock()
	if r.err == nil && !r.dead[w] {
		r.queues[w] = append(r.queues[w], idx)
	} else if r.err == nil {
		// The worker died while this point backed off; place it like the
		// rest of the dead worker's queue.
		r.mu.Unlock()
		r.loseWorker(w, idx, errors.New("worker died during backoff"))
		return
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

// loseWorker declares worker w dead and requeues the failed point plus
// w's whole pending queue onto the survivors, fingerprint-stably. With
// no survivor left the sweep fails.
func (r *fleetRun) loseWorker(w, idx int, cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	moved := []int{idx}
	if !r.dead[w] {
		r.dead[w] = true
		r.aliveN--
		r.f.losses.Add(1)
		moved = append(moved, r.queues[w]...)
		r.queues[w] = nil
	}
	if r.aliveN == 0 {
		r.err = fmt.Errorf("client: fleet: every worker lost (last %s: %w)", r.f.workers[w].Base(), cause)
		r.cond.Broadcast()
		return
	}
	alive := make([]int, 0, r.aliveN)
	for i := range r.f.workers {
		if !r.dead[i] {
			alive = append(alive, i)
		}
	}
	for _, p := range moved {
		if r.done[p] {
			continue
		}
		t := alive[engine.ShardIndex(r.fps[p], len(alive))]
		r.queues[t] = append(r.queues[t], p)
		r.f.requeues.Add(1)
	}
	r.cond.Broadcast()
}

// sleepCtx sleeps for d unless ctx ends first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// FleetStats is a snapshot of a Fleet's lifetime counters.
type FleetStats struct {
	// Points counts delivered results per worker, in constructor order.
	Points []int64
	// Requeues counts points moved off a dead worker onto survivors.
	Requeues int64
	// Retries counts backed-off retries against healthy workers.
	Retries int64
	// WorkerLosses counts workers declared dead (per sweep — a worker
	// may recover and serve, and die in, a later sweep).
	WorkerLosses int64
}

// Stats returns a snapshot of the fleet's counters.
func (f *Fleet) Stats() FleetStats {
	s := FleetStats{
		Points:       make([]int64, len(f.points)),
		Requeues:     f.requeues.Load(),
		Retries:      f.retries.Load(),
		WorkerLosses: f.losses.Load(),
	}
	for i := range f.points {
		s.Points[i] = f.points[i].Load()
	}
	return s
}

// Instrument registers the fleet's counters on reg:
// distiq_fleet_points_total per worker, plus the requeue, retry and
// worker-loss totals and the configured fleet size.
func (f *Fleet) Instrument(reg *obs.Registry) {
	for i := range f.workers {
		i := i
		reg.CounterFunc("distiq_fleet_points_total",
			"Grid points resolved, per fleet worker.",
			func() float64 { return float64(f.points[i].Load()) },
			obs.L("worker", strconv.Itoa(i)))
	}
	reg.CounterFunc("distiq_fleet_requeues_total",
		"Points requeued from a dead worker onto survivors.",
		func() float64 { return float64(f.requeues.Load()) })
	reg.CounterFunc("distiq_fleet_retries_total",
		"Backed-off point retries against healthy workers.",
		func() float64 { return float64(f.retries.Load()) })
	reg.CounterFunc("distiq_fleet_worker_losses_total",
		"Workers declared dead by the health probe.",
		func() float64 { return float64(f.losses.Load()) })
	reg.GaugeFunc("distiq_fleet_workers",
		"Workers configured in the fleet shard map.",
		func() float64 { return float64(len(f.workers)) })
}

// compile-time interface check.
var _ Client = (*Fleet)(nil)
