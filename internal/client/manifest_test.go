package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"distiq/internal/client"
	"distiq/internal/serve"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/manifest.json from the current simulator")

// TestManifestParityLocalRemote: a Local sweep and a Remote sweep of the
// same grid produce byte-identical Merkle manifests — the manifest
// identifies the experiment, not the substrate that ran it.
func TestManifestParityLocalRemote(t *testing.T) {
	local := client.NewLocal(client.WithParallel(4))
	lst := local.Sweep(context.Background(), testGrid(t))
	if _, err := lst.ResultSet(); err != nil {
		t.Fatal(err)
	}
	lm := lst.Manifest()
	if lm == nil {
		t.Fatal("local sweep has no manifest")
	}
	if err := lm.Check(); err != nil {
		t.Fatalf("local manifest does not verify: %v", err)
	}

	ts := httptest.NewServer(serve.New(serve.Config{Parallel: 4}))
	defer ts.Close()
	rst := client.NewRemote(ts.URL).Sweep(context.Background(), testGrid(t))
	if _, err := rst.ResultSet(); err != nil {
		t.Fatal(err)
	}
	rm := rst.Manifest()
	if rm == nil {
		t.Fatal("remote sweep has no manifest")
	}

	lj, err := json.Marshal(lm)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(rm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lj, rj) {
		t.Fatalf("manifests differ between substrates:\n--- local ---\n%s\n--- remote ---\n%s", lj, rj)
	}
}

// TestGoldenManifest pins the manifest JSON shape and the exact Merkle
// root of the canonical 4-point grid. A diff here means either the
// simulator's results changed (bump the store version!) or the manifest
// layout changed (a breaking format change for saved manifests) — both
// must be deliberate; rewrite with -update-golden.
func TestGoldenManifest(t *testing.T) {
	st := client.NewLocal(client.WithParallel(2)).Sweep(context.Background(), testGrid(t))
	if _, err := st.ResultSet(); err != nil {
		t.Fatal(err)
	}
	m := st.Manifest()
	if m == nil {
		t.Fatal("sweep has no manifest")
	}
	got, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden", "manifest.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/client -run TestGoldenManifest -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("manifest drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
