package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"distiq/internal/blobstore"
	"distiq/internal/client"
	"distiq/internal/engine"
	"distiq/internal/serve"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/manifest.json from the current simulator")

// TestManifestParityLocalRemote: a Local sweep and a Remote sweep of the
// same grid produce byte-identical Merkle manifests — the manifest
// identifies the experiment, not the substrate that ran it.
func TestManifestParityLocalRemote(t *testing.T) {
	local := client.NewLocal(client.WithParallel(4))
	lst := local.Sweep(context.Background(), testGrid(t))
	if _, err := lst.ResultSet(); err != nil {
		t.Fatal(err)
	}
	lm := lst.Manifest()
	if lm == nil {
		t.Fatal("local sweep has no manifest")
	}
	if err := lm.Check(); err != nil {
		t.Fatalf("local manifest does not verify: %v", err)
	}

	ts := httptest.NewServer(serve.New(serve.Config{Parallel: 4}))
	defer ts.Close()
	rst := client.NewRemote(ts.URL).Sweep(context.Background(), testGrid(t))
	if _, err := rst.ResultSet(); err != nil {
		t.Fatal(err)
	}
	rm := rst.Manifest()
	if rm == nil {
		t.Fatal("remote sweep has no manifest")
	}

	lj, err := json.Marshal(lm)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(rm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lj, rj) {
		t.Fatalf("manifests differ between substrates:\n--- local ---\n%s\n--- remote ---\n%s", lj, rj)
	}
}

// TestGoldenManifest pins the manifest JSON shape and the exact Merkle
// root of the canonical 4-point grid. A diff here means either the
// simulator's results changed (bump the store version!) or the manifest
// layout changed (a breaking format change for saved manifests) — both
// must be deliberate; rewrite with -update-golden.
func TestGoldenManifest(t *testing.T) {
	st := client.NewLocal(client.WithParallel(2)).Sweep(context.Background(), testGrid(t))
	if _, err := st.ResultSet(); err != nil {
		t.Fatal(err)
	}
	m := st.Manifest()
	if m == nil {
		t.Fatal("sweep has no manifest")
	}
	got, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden", "manifest.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/client -run TestGoldenManifest -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("manifest drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenManifestAllBackends extends the golden gate across every
// result-store backend: a cold sweep persisted through each backend must
// produce the byte-identical pinned manifest (same Merkle root whatever
// holds the entries), the manifest must verify against the backend's
// stored bytes, and a warm rerun over the same backing state must
// perform zero simulations while emitting identical result bytes.
func TestGoldenManifestAllBackends(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "manifest.json"))
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/client -run TestGoldenManifest -update-golden): %v", err)
	}

	// Each backend yields a cold store over fresh backing state and a
	// warm handle over the SAME backing state (flushing buffered writes
	// first), mirroring the engine conformance factories.
	backends := map[string]func(t *testing.T) (cold engine.ResultStore, warm func() engine.ResultStore){
		"fs": func(t *testing.T) (engine.ResultStore, func() engine.ResultStore) {
			dir := t.TempDir()
			return engine.NewStore(dir), func() engine.ResultStore { return engine.NewStore(dir) }
		},
		"mem": func(t *testing.T) (engine.ResultStore, func() engine.ResultStore) {
			s := engine.NewMemStore()
			return s, func() engine.ResultStore { return s }
		},
		"http": func(t *testing.T) (engine.ResultStore, func() engine.ResultStore) {
			ts := httptest.NewServer(blobstore.NewServer())
			t.Cleanup(ts.Close)
			return engine.NewHTTPStore(ts.URL, ts.Client()),
				func() engine.ResultStore { return engine.NewHTTPStore(ts.URL, ts.Client()) }
		},
		"tiered": func(t *testing.T) (engine.ResultStore, func() engine.ResultStore) {
			dir := t.TempDir()
			ts := httptest.NewServer(blobstore.NewServer())
			t.Cleanup(ts.Close)
			mk := func() engine.ResultStore {
				return engine.NewTiered(engine.NewMemStore(), engine.NewStore(dir),
					engine.NewHTTPStore(ts.URL, ts.Client()))
			}
			return mk(), mk
		},
		"batched": func(t *testing.T) (engine.ResultStore, func() engine.ResultStore) {
			dir := t.TempDir()
			b := engine.NewBatcher(engine.NewStore(dir), engine.BatcherConfig{})
			t.Cleanup(func() { b.Close() }) //nolint:errcheck // teardown
			return b, func() engine.ResultStore { b.Flush(); return engine.NewStore(dir) }
		},
	}

	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			cold, warm := mk(t)
			cl := client.NewLocal(client.WithParallel(2), client.WithStore(cold))
			st := cl.Sweep(context.Background(), testGrid(t))
			coldRes, err := st.ResultSet()
			if err != nil {
				t.Fatal(err)
			}
			m := st.Manifest()
			if m == nil {
				t.Fatal("sweep has no manifest")
			}
			got, err := json.MarshalIndent(m, "", " ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			if !bytes.Equal(got, want) {
				t.Fatalf("manifest through %s backend drifted from golden:\n--- got ---\n%s", name, got)
			}
			// The manifest must verify against the bytes this backend
			// actually holds (for the batcher, its read-your-writes view).
			if err := m.VerifyIn(cold); err != nil {
				t.Fatalf("manifest does not verify in the %s store: %v", name, err)
			}

			// Warm rerun over the same backing state: zero simulations,
			// identical result bytes.
			wst := warm()
			wcl := client.NewLocal(client.WithParallel(2), client.WithStore(wst))
			ws := wcl.Sweep(context.Background(), testGrid(t))
			warmRes, err := ws.ResultSet()
			if err != nil {
				t.Fatal(err)
			}
			if stats := wcl.Stats(); stats.Simulated != 0 {
				t.Fatalf("warm rerun through %s simulated %d points, want 0 (stats %+v)", name, stats.Simulated, stats)
			}
			if coldRes.CSV() != warmRes.CSV() {
				t.Fatalf("warm rerun through %s emitted different bytes", name)
			}
			wm := ws.Manifest()
			if wm == nil {
				t.Fatal("warm sweep has no manifest")
			}
			if wj, _ := json.MarshalIndent(wm, "", " "); !bytes.Equal(append(wj, '\n'), want) {
				t.Fatalf("warm manifest through %s drifted from golden", name)
			}
		})
	}
}
