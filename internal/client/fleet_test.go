package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distiq/internal/blobstore"
	"distiq/internal/client"
	"distiq/internal/engine"
	"distiq/internal/serve"
)

// startWorkers spins up n in-process distiqd workers and returns their
// base URLs plus the test servers (for kill orchestration).
func startWorkers(t *testing.T, n int, cfg serve.Config) ([]string, []*httptest.Server) {
	t.Helper()
	bases := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(serve.New(cfg))
		t.Cleanup(ts.Close)
		bases[i] = ts.URL
		servers[i] = ts
	}
	return bases, servers
}

// localDocs renders the canonical grid through a Local client — the
// byte-level reference every fleet sweep must reproduce.
func localDocs(t *testing.T) (map[string]string, []byte) {
	t.Helper()
	st := client.NewLocal(client.WithParallel(4)).Sweep(context.Background(), testGrid(t))
	rs, err := st.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	m := st.Manifest()
	if m == nil {
		t.Fatal("local sweep has no manifest")
	}
	mj, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return emitAll(t, rs), mj
}

// TestFleetParityWithLocal: the canonical 4-point grid sharded across 3
// httptest workers emits byte-identical CSV/JSON/markdown and an
// identical Merkle manifest to a Local sweep — sharding is invisible in
// the output. A second consume-by-Next sweep checks strict grid order.
func TestFleetParityWithLocal(t *testing.T) {
	wantDocs, wantManifest := localDocs(t)
	bases, _ := startWorkers(t, 3, serve.Config{Parallel: 2})
	fleet := client.NewFleet(bases)

	st := fleet.Sweep(context.Background(), testGrid(t))
	rs, err := st.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	gotDocs := emitAll(t, rs)
	for format, want := range wantDocs {
		if gotDocs[format] != want {
			t.Fatalf("fleet %s output differs from local:\n--- fleet ---\n%s--- local ---\n%s", format, gotDocs[format], want)
		}
	}
	m := st.Manifest()
	if m == nil {
		t.Fatal("fleet sweep has no manifest")
	}
	mj, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mj, wantManifest) {
		t.Fatalf("fleet manifest differs from local:\n--- fleet ---\n%s\n--- local ---\n%s", mj, wantManifest)
	}
	if c := st.Counts(); c.Total() != 4 {
		t.Fatalf("fleet stream counted %d points, want 4 (%+v)", c.Total(), c)
	}

	// Every point was delivered by the worker its fingerprint maps to.
	parts, err := engine.PartitionJobs(testGrid(t).Jobs(), 3)
	if err != nil {
		t.Fatal(err)
	}
	stats := fleet.Stats()
	var total int64
	for w, delivered := range stats.Points {
		if delivered != int64(len(parts[w])) {
			t.Fatalf("worker %d delivered %d points, want its partition of %d", w, delivered, len(parts[w]))
		}
		total += delivered
	}
	if total != 4 || stats.WorkerLosses != 0 || stats.Requeues != 0 {
		t.Fatalf("unexpected fleet stats %+v", stats)
	}

	// Warm second sweep, consumed point by point: strictly increasing
	// grid order whatever worker answered.
	st = fleet.Sweep(context.Background(), testGrid(t))
	n := 0
	for st.Next() {
		if u := st.Update(); u.Index != n {
			t.Fatalf("update %d has index %d", n, u.Index)
		}
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("warm fleet stream delivered %d of 4 points", n)
	}
}

// killableWorker is a distiqd whose front door can be slammed shut: once
// killed, every request (including /healthz) answers 503 and in-flight
// connections are severed — indistinguishable from a crashed worker.
type killableWorker struct {
	ts   *httptest.Server
	dead atomic.Bool
}

func newKillableWorker(t *testing.T, cfg serve.Config) *killableWorker {
	t.Helper()
	w := &killableWorker{}
	inner := serve.New(cfg)
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if w.dead.Load() {
			http.Error(rw, "worker down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	t.Cleanup(w.ts.Close)
	return w
}

// kill makes the worker unreachable: new requests 503, in-flight
// streams are cut mid-body.
func (w *killableWorker) kill() {
	w.dead.Store(true)
	w.ts.CloseClientConnections()
}

// TestFleetWorkerLossRequeuesPoints: a worker killed mid-sweep (its
// simulations blocked, its connections severed, its health probe dark)
// loses its whole partition to the survivors, and the sweep still
// completes with output identical to local — with zero simulations
// beyond the requeued points.
func TestFleetWorkerLossRequeuesPoints(t *testing.T) {
	wantDocs, _ := localDocs(t)
	grid := testGrid(t)
	parts, err := engine.PartitionJobs(grid.Jobs(), 3)
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for w, part := range parts {
		if len(part) > 0 {
			victim = w
			break
		}
	}
	if victim < 0 {
		t.Fatal("no worker owns any point")
	}

	// The victim's simulator parks every job until released, so none of
	// its points can complete before the kill; the survivors simulate
	// for real.
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	blockingSim := func(j engine.Job) (engine.Result, error) {
		started <- struct{}{}
		<-release
		return engine.Simulate(j)
	}
	t.Cleanup(func() { close(release) })

	bases := make([]string, 3)
	var killable *killableWorker
	for w := 0; w < 3; w++ {
		if w == victim {
			killable = newKillableWorker(t, serve.Config{Parallel: 2, Simulate: blockingSim})
			bases[w] = killable.ts.URL
			continue
		}
		ts := httptest.NewServer(serve.New(serve.Config{Parallel: 2}))
		t.Cleanup(ts.Close)
		bases[w] = ts.URL
	}

	fleet := client.NewFleet(bases, client.WithFleetRetry(3, 10*time.Millisecond))
	go func() {
		<-started // the victim is simulating: its partition is in flight
		killable.kill()
	}()

	st := fleet.Sweep(context.Background(), grid)
	rs, err := st.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	gotDocs := emitAll(t, rs)
	for format, want := range wantDocs {
		if gotDocs[format] != want {
			t.Fatalf("post-loss fleet %s output differs from local", format)
		}
	}
	if st.Manifest() == nil {
		t.Fatal("post-loss fleet sweep has no manifest")
	}

	stats := fleet.Stats()
	if stats.WorkerLosses != 1 {
		t.Fatalf("fleet lost %d workers, want 1 (%+v)", stats.WorkerLosses, stats)
	}
	if stats.Requeues != int64(len(parts[victim])) {
		t.Fatalf("fleet requeued %d points, want the victim's partition of %d (%+v)",
			stats.Requeues, len(parts[victim]), stats)
	}
	if stats.Points[victim] != 0 {
		t.Fatalf("dead worker delivered %d points, want 0", stats.Points[victim])
	}

	// Zero duplicate simulations beyond the requeued points: the
	// survivors simulated exactly the whole grid between them.
	var survivorSims int64
	for w, base := range bases {
		if w == victim {
			continue
		}
		survivorSims += workerSimulated(t, base)
	}
	if survivorSims != int64(grid.Size()) {
		t.Fatalf("survivors simulated %d points, want exactly %d", survivorSims, grid.Size())
	}
}

// workerSimulated reads a worker's engine-wide simulated counter from
// /v1/stats.
func workerSimulated(t *testing.T, base string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Simulated int64 `json:"simulated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Simulated
}

// TestFleetColdWarmSharedBlobStore: workers rendezvous on one shared
// HTTP blob store — a cold fleet sweep simulates every point once, and
// a second fleet of entirely fresh workers over the same blob store
// re-emits identical bytes with zero simulations.
func TestFleetColdWarmSharedBlobStore(t *testing.T) {
	blob := httptest.NewServer(blobstore.NewServer())
	defer blob.Close()

	mkFleet := func() *client.Fleet {
		bases := make([]string, 3)
		for w := range bases {
			ts := httptest.NewServer(serve.New(serve.Config{
				Parallel: 2,
				Store:    engine.NewHTTPStore(blob.URL, blob.Client()),
			}))
			t.Cleanup(ts.Close)
			bases[w] = ts.URL
		}
		return client.NewFleet(bases)
	}

	cold := mkFleet().Sweep(context.Background(), testGrid(t))
	coldRes, err := cold.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	if c := cold.Counts(); c.Simulated != 4 {
		t.Fatalf("cold fleet sweep simulated %d points, want 4 (%+v)", c.Simulated, c)
	}

	warm := mkFleet().Sweep(context.Background(), testGrid(t))
	warmRes, err := warm.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	if c := warm.Counts(); c.Simulated != 0 {
		t.Fatalf("warm fleet sweep simulated %d points, want 0 (%+v)", c.Simulated, c)
	}
	var coldCSV, warmCSV strings.Builder
	if err := coldRes.Emit(&coldCSV, "csv"); err != nil {
		t.Fatal(err)
	}
	if err := warmRes.Emit(&warmCSV, "csv"); err != nil {
		t.Fatal(err)
	}
	if coldCSV.String() != warmCSV.String() {
		t.Fatal("warm fleet sweep emitted different bytes than cold")
	}
}

// TestFleetRetriesTransientFailure: a stream request that fails against
// a worker whose health probe still answers is retried in place — no
// worker loss, no requeue, and the sweep completes.
func TestFleetRetriesTransientFailure(t *testing.T) {
	inner := serve.New(serve.Config{Parallel: 2})
	var failOnce atomic.Bool
	failOnce.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/stream") && failOnce.CompareAndSwap(true, false) {
			http.Error(rw, "transient hiccup", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	defer ts.Close()

	fleet := client.NewFleet([]string{ts.URL}, client.WithFleetRetry(3, time.Millisecond))
	st := fleet.Sweep(context.Background(), testGrid(t))
	if _, err := st.ResultSet(); err != nil {
		t.Fatal(err)
	}
	stats := fleet.Stats()
	if stats.Retries < 1 {
		t.Fatalf("fleet recorded %d retries, want at least 1", stats.Retries)
	}
	if stats.WorkerLosses != 0 || stats.Requeues != 0 {
		t.Fatalf("transient failure escalated to worker loss: %+v", stats)
	}
}

// TestFleetAllWorkersLost: with every worker dark the sweep fails
// instead of hanging.
func TestFleetAllWorkersLost(t *testing.T) {
	w := newKillableWorker(t, serve.Config{Parallel: 2})
	w.kill()
	fleet := client.NewFleet([]string{w.ts.URL}, client.WithFleetRetry(2, time.Millisecond))
	st := fleet.Sweep(context.Background(), testGrid(t))
	_, err := st.ResultSet()
	if err == nil {
		t.Fatal("sweep over a dead fleet succeeded")
	}
}

// TestFleetSweepCancel: cancelling the caller's context mid-sweep
// terminates the stream with an error unwrapping to context.Canceled —
// the same contract Local and Remote honor.
func TestFleetSweepCancel(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	blockingSim := func(j engine.Job) (engine.Result, error) {
		started <- struct{}{}
		<-release
		return engine.Simulate(j)
	}
	t.Cleanup(func() { close(release) })

	bases, _ := startWorkers(t, 3, serve.Config{Parallel: 2, Simulate: blockingSim})
	fleet := client.NewFleet(bases)
	ctx, cancel := context.WithCancel(context.Background())
	st := fleet.Sweep(ctx, testGrid(t))
	<-started
	cancel()
	if _, err := st.ResultSet(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fleet sweep returned %v, want context.Canceled in the chain", err)
	}
}
