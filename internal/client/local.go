package client

import (
	"context"

	"distiq/internal/engine"
	"distiq/internal/scenario"
)

// Local is the in-process Client: it resolves jobs on the concurrent
// experiment engine — bounded worker pool, single-flight deduplication,
// in-memory cache and (with WithCacheDir) the persistent distiq-v2
// store. All methods are safe for concurrent use; one Local client may
// serve many goroutines and amortizes one warm cache across them.
type Local struct {
	eng *engine.Engine
}

// NewLocal returns a Local client. Recognized options: WithParallel,
// WithCacheDir, WithStore, WithProgress.
func NewLocal(opts ...Option) *Local {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return &Local{eng: engine.New(engine.Config{
		Workers:  cfg.parallel,
		CacheDir: cfg.cacheDir,
		Store:    cfg.store,
		Progress: cfg.progress,
	})}
}

// NewLocalOn returns a Local client sharing an existing engine (and its
// caches) — the embedding path for services that own the engine.
func NewLocalOn(e *engine.Engine) *Local { return &Local{eng: e} }

// Engine returns the underlying engine, for callers that need its
// batch primitives or counters directly.
func (c *Local) Engine() *engine.Engine { return c.eng }

// Stats returns a consistent snapshot of the engine's resolution
// counters.
func (c *Local) Stats() engine.Stats { return c.eng.Stats() }

// Run resolves one job, honoring ctx per the engine's contract: a
// request cancelled before its job claims a worker slot returns
// ctx.Err() promptly; a job already simulating finishes and is cached.
func (c *Local) Run(ctx context.Context, job Job) (engine.Result, error) {
	return c.eng.ResultCtx(ctx, job)
}

// RunAll resolves a batch of jobs concurrently and returns their results
// in input order (first error in input order on failure).
func (c *Local) RunAll(ctx context.Context, jobs []Job) ([]engine.Result, error) {
	return c.eng.ResultAllCtx(ctx, jobs, nil)
}

// Sweep shards the grid across the engine's worker pool and streams
// per-point results in deterministic grid order: out-of-order
// completions are buffered and released strictly in sequence, so the
// stream's order — and any document assembled from it — is independent
// of parallelism. On the first failed point (in grid order) the stream
// terminates with that point's error and the sweep's remaining points
// are cancelled (in-flight ones finish and persist); under caller
// cancellation that error unwraps to context.Canceled. Abandoning a
// stream without cancelling ctx lets the sweep run to completion in the
// background (delivery is buffered, so nothing blocks or is lost —
// cancel ctx to stop the work itself).
func (c *Local) Sweep(ctx context.Context, grid *scenario.Grid) *Stream {
	st := newStream(grid)
	// A child context lets a mid-sweep failure stop the doomed
	// remainder of the grid without touching the caller's ctx.
	ctx, cancelRest := context.WithCancel(ctx)
	go func() {
		defer cancelRest()
		n := grid.Size()
		type slot struct {
			r   engine.Result
			err error
			src engine.Source
		}
		slots := make([]slot, n)
		done := make([]bool, n)
		next := 0
		failed := false
		// Emits are serialized by the engine, so the reorder state needs
		// no locking; delivery to the stream's buffered channel never
		// blocks the worker that produced the result.
		grid.RunStream(ctx, c.eng, func(i int, r engine.Result, err error, src engine.Source) {
			if failed {
				return
			}
			slots[i] = slot{r, err, src}
			done[i] = true
			for next < n && done[next] {
				s := slots[next]
				if s.err != nil {
					failed = true
					cancelRest()
					st.fail(pointErr(grid, next, s.err))
					return
				}
				st.send(Update{Index: next, Point: grid.Points[next], Result: s.r, Source: s.src})
				next++
			}
		})
		if !failed && next == n {
			results := make([]engine.Result, n)
			for i := range results {
				results[i] = slots[i].r
			}
			// Grids expanded from specs are always content-addressable;
			// a grid that is not (hand-built with Custom schemes) simply
			// has no manifest.
			if m, err := engine.BuildManifest(grid.Spec.Name, grid.Jobs(), results); err == nil {
				st.setManifest(m)
			}
		}
		st.finish()
	}()
	return st
}

// compile-time interface check.
var _ Client = (*Local)(nil)
