package client

import (
	"net/http"
	"time"

	"distiq/internal/engine"
)

// Option configures a Client constructor. Options are shared across
// implementations; each constructor reads the ones that apply to it
// (NewLocal ignores WithHTTPClient, NewRemote ignores the engine knobs).
type Option func(*config)

// config collects every constructor knob.
type config struct {
	parallel      int
	cacheDir      string
	store         engine.ResultStore
	progress      func(engine.Progress)
	httpClient    *http.Client
	fleetAttempts int
	fleetBackoff  time.Duration
	fleetStreams  int
}

// WithParallel bounds concurrent simulations of a Local client
// (0 = GOMAXPROCS, 1 = strictly serial).
func WithParallel(n int) Option {
	return func(c *config) { c.parallel = n }
}

// WithCacheDir backs a Local client's engine with the persistent
// distiq-v2 content-addressed store at dir (created lazily), shared
// across processes — including a distiqd pointed at the same directory.
func WithCacheDir(dir string) Option {
	return func(c *config) { c.cacheDir = dir }
}

// WithStore backs a Local client's engine with an explicit result-store
// backend — any engine.ResultStore: filesystem, in-memory, HTTP blob, a
// read-through tier, or a write-behind Batcher over any of them
// (engine.OpenStore builds one from a -store spec string). It takes
// precedence over WithCacheDir. The store is borrowed: the caller closes
// it when done — for a Batcher that is what flushes the final group.
func WithStore(st engine.ResultStore) Option {
	return func(c *config) { c.store = st }
}

// WithProgress installs an engine-wide progress callback on a Local
// client, invoked once per resolved job (serialized).
func WithProgress(fn func(engine.Progress)) Option {
	return func(c *config) { c.progress = fn }
}

// WithHTTPClient overrides the http.Client a Remote or Fleet client
// speaks through. The default bounds connection setup but leaves the
// whole exchange unbounded (sweep streams outlive any fixed timeout);
// use this for transports, TLS configs or test doubles.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *config) { c.httpClient = hc }
}

// WithFleetRetry tunes a Fleet client's per-point failure policy:
// attempts bounds how many times one grid point is tried before the
// sweep fails (counting the first try; minimum 1), and backoff is the
// base delay before a retry against a still-healthy worker, doubling
// per attempt. Zero values keep the defaults (3 attempts, 250ms).
func WithFleetRetry(attempts int, backoff time.Duration) Option {
	return func(c *config) {
		c.fleetAttempts = attempts
		c.fleetBackoff = backoff
	}
}

// WithFleetStreams bounds how many point sub-sweeps a Fleet client keeps
// in flight per worker (default 4). Each stream occupies one of the
// worker's admission slots, so keep this well under the service's
// -max-queued.
func WithFleetStreams(n int) Option {
	return func(c *config) { c.fleetStreams = n }
}
