package client

import (
	"net/http"

	"distiq/internal/engine"
)

// Option configures a Client constructor. Options are shared across
// implementations; each constructor reads the ones that apply to it
// (NewLocal ignores WithHTTPClient, NewRemote ignores the engine knobs).
type Option func(*config)

// config collects every constructor knob.
type config struct {
	parallel   int
	cacheDir   string
	store      engine.ResultStore
	progress   func(engine.Progress)
	httpClient *http.Client
}

// WithParallel bounds concurrent simulations of a Local client
// (0 = GOMAXPROCS, 1 = strictly serial).
func WithParallel(n int) Option {
	return func(c *config) { c.parallel = n }
}

// WithCacheDir backs a Local client's engine with the persistent
// distiq-v2 content-addressed store at dir (created lazily), shared
// across processes — including a distiqd pointed at the same directory.
func WithCacheDir(dir string) Option {
	return func(c *config) { c.cacheDir = dir }
}

// WithStore backs a Local client's engine with an explicit result-store
// backend — any engine.ResultStore: filesystem, in-memory, HTTP blob, a
// read-through tier, or a write-behind Batcher over any of them
// (engine.OpenStore builds one from a -store spec string). It takes
// precedence over WithCacheDir. The store is borrowed: the caller closes
// it when done — for a Batcher that is what flushes the final group.
func WithStore(st engine.ResultStore) Option {
	return func(c *config) { c.store = st }
}

// WithProgress installs an engine-wide progress callback on a Local
// client, invoked once per resolved job (serialized).
func WithProgress(fn func(engine.Progress)) Option {
	return func(c *config) { c.progress = fn }
}

// WithHTTPClient overrides the http.Client a Remote client speaks
// through (default http.DefaultClient); use it for timeouts, transports
// or test doubles.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *config) { c.httpClient = hc }
}
