package client

import (
	"net/http"

	"distiq/internal/engine"
)

// Option configures a Client constructor. Options are shared across
// implementations; each constructor reads the ones that apply to it
// (NewLocal ignores WithHTTPClient, NewRemote ignores the engine knobs).
type Option func(*config)

// config collects every constructor knob.
type config struct {
	parallel   int
	cacheDir   string
	progress   func(engine.Progress)
	httpClient *http.Client
}

// WithParallel bounds concurrent simulations of a Local client
// (0 = GOMAXPROCS, 1 = strictly serial).
func WithParallel(n int) Option {
	return func(c *config) { c.parallel = n }
}

// WithCacheDir backs a Local client's engine with the persistent
// distiq-v2 content-addressed store at dir (created lazily), shared
// across processes — including a distiqd pointed at the same directory.
func WithCacheDir(dir string) Option {
	return func(c *config) { c.cacheDir = dir }
}

// WithProgress installs an engine-wide progress callback on a Local
// client, invoked once per resolved job (serialized).
func WithProgress(fn func(engine.Progress)) Option {
	return func(c *config) { c.progress = fn }
}

// WithHTTPClient overrides the http.Client a Remote client speaks
// through (default http.DefaultClient); use it for timeouts, transports
// or test doubles.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *config) { c.httpClient = hc }
}
