package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distiq/internal/client"
	"distiq/internal/core"
	"distiq/internal/engine"
	"distiq/internal/scenario"
	"distiq/internal/serve"
)

// testGrid expands the canonical tiny 3-axis grid (4 points over swim)
// shared with the serve and iqsweep end-to-end suites.
func testGrid(t *testing.T) *scenario.Grid {
	t.Helper()
	spec := scenario.New("e2e").
		WithBenchmarks("swim").
		WithNamed("MB_distr").
		WithROB(128, 256).
		WithPerfectDisambiguation(false, true).
		WithLengths(1000, 2000)
	grid, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if grid.Size() != 4 {
		t.Fatalf("test grid has %d points, want 4", grid.Size())
	}
	return grid
}

// emitAll renders a result set in every format.
func emitAll(t *testing.T, rs *scenario.ResultSet) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, format := range []string{"csv", "json", "md"} {
		var b strings.Builder
		if err := rs.Emit(&b, format); err != nil {
			t.Fatal(err)
		}
		out[format] = b.String()
	}
	return out
}

// TestLocalSweepStreamsInGridOrder: updates arrive with strictly
// increasing indexes whatever the parallelism, and match the grid's
// points.
func TestLocalSweepStreamsInGridOrder(t *testing.T) {
	grid := testGrid(t)
	cl := client.NewLocal(client.WithParallel(8))
	st := cl.Sweep(context.Background(), grid)
	n := 0
	for st.Next() {
		u := st.Update()
		if u.Index != n {
			t.Fatalf("update %d has index %d", n, u.Index)
		}
		if u.Point.Bench != grid.Points[n].Bench {
			t.Fatalf("update %d is for %q, want %q", n, u.Point.Bench, grid.Points[n].Bench)
		}
		if u.Result.Insts == 0 {
			t.Fatalf("update %d has an empty result", n)
		}
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if n != grid.Size() {
		t.Fatalf("stream delivered %d of %d points", n, grid.Size())
	}
	if c := st.Counts(); c.Total() != int64(grid.Size()) {
		t.Fatalf("counts = %+v, want total %d", c, grid.Size())
	}
}

// TestLocalResultSetMatchesDeprecatedGridRun: the Client layer's
// collected documents are byte-identical to the legacy Grid.Run path —
// the old constructors are shims over the same engine, not a fork.
func TestLocalResultSetMatchesDeprecatedGridRun(t *testing.T) {
	grid := testGrid(t)
	st := client.NewLocal(client.WithParallel(4)).Sweep(context.Background(), grid)
	rs, err := st.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := grid.Run(scenario.RunConfig{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, want := emitAll(t, rs), emitAll(t, legacy)
	for format := range want {
		if got[format] != want[format] {
			t.Errorf("%s drifted between Client and Grid.Run:\n--- client ---\n%s--- legacy ---\n%s",
				format, got[format], want[format])
		}
	}
}

// TestResultSetAfterNextErrors: mixing the two consumption modes is
// rejected instead of silently dropping the consumed prefix.
func TestResultSetAfterNextErrors(t *testing.T) {
	grid := testGrid(t)
	st := client.NewLocal(client.WithParallel(4)).Sweep(context.Background(), grid)
	if !st.Next() {
		t.Fatal(st.Err())
	}
	if _, err := st.ResultSet(); err == nil {
		t.Fatal("ResultSet after Next did not error")
	}
	for st.Next() {
	}
}

// waitIdle blocks until the engine has accounted every requested job, so
// background in-flight work from an abandoned sweep cannot race the next
// assertion.
func waitIdle(t *testing.T, cl *client.Local, requested int64) engine.Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := cl.Stats()
		if st.Requested == requested &&
			st.Simulated+st.MemoryHits+st.DiskHits+st.Shared+st.Canceled == st.Requested {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never quiesced: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLocalSweepCancelledMidFlight is the acceptance scenario at the
// Client layer: cancelling a sweep returns promptly with an error
// unwrapping to context.Canceled, the store stays consistent, and a warm
// rerun through a fresh client finishes only the remaining points — zero
// re-simulations for completed ones.
func TestLocalSweepCancelledMidFlight(t *testing.T) {
	dir := t.TempDir()
	spec := scenario.New("cancel").
		WithBenchmarks("swim", "applu", "lucas").
		WithNamed("MB_distr", "IQ_64_64").
		WithROB(128, 256).
		WithLengths(500, 1500)
	grid, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	n := grid.Size() // 12 points

	first := client.NewLocal(client.WithParallel(2), client.WithCacheDir(dir))
	ctx, cancel := context.WithCancel(context.Background())
	st := first.Sweep(ctx, grid)
	if !st.Next() {
		t.Fatalf("no first update: %v", st.Err())
	}
	cancel()
	start := time.Now()
	for st.Next() {
	}
	if waited := time.Since(start); waited > 30*time.Second {
		t.Fatalf("cancelled sweep drained in %v; want prompt return", waited)
	}
	err = st.Err()
	if err == nil {
		t.Skip("sweep finished before the cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stream err = %v, want context.Canceled in the chain", err)
	}
	st1 := waitIdle(t, first, int64(n))
	if st1.Canceled == 0 {
		t.Fatalf("stream failed (%v) but the engine cancelled nothing: %+v", err, st1)
	}

	second := client.NewLocal(client.WithParallel(2), client.WithCacheDir(dir))
	rs, err := second.Sweep(context.Background(), grid).ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != n {
		t.Fatalf("warm rerun returned %d of %d results", len(rs.Results), n)
	}
	st2 := second.Stats()
	if got, want := st2.Simulated, int64(n)-st1.Simulated; got != want {
		t.Fatalf("warm rerun simulated %d, want %d (first run completed %d of %d)",
			got, want, st1.Simulated, n)
	}
	if st2.DiskHits != st1.Simulated {
		t.Fatalf("warm rerun disk hits = %d, want %d", st2.DiskHits, st1.Simulated)
	}
}

// TestLocalSweepFailureCancelsRemainder: once the first grid-order
// failure terminates the stream, the sweep's unscheduled points are
// cancelled instead of burning workers on a doomed grid. Worker-slot
// order is scheduler-chosen, so a single attempt can legitimately see
// the failing point scheduled last (nothing left to cancel); the
// mechanism is asserted across attempts — with point 0 failing
// instantly and successes slow, one attempt failing to cancel anything
// has probability ~1/4, twenty in a row is effectively impossible.
func TestLocalSweepFailureCancelsRemainder(t *testing.T) {
	for attempt := 0; attempt < 20; attempt++ {
		grid := testGrid(t) // 4 points over swim, ROB {128,256} × pdis
		var calls int64
		eng := engine.New(engine.Config{Workers: 1, Simulate: func(j engine.Job) (engine.Result, error) {
			atomic.AddInt64(&calls, 1)
			// Point 0 exactly: ROB 128, disambiguation off.
			if j.Machine != nil && j.Machine.ROBSize == 128 && !j.Machine.PerfectDisambiguation {
				return engine.Result{}, errors.New("injected point failure")
			}
			time.Sleep(10 * time.Millisecond)
			return engine.Result{}, nil
		}})
		cl := client.NewLocalOn(eng)
		st := cl.Sweep(context.Background(), grid)
		for st.Next() {
		}
		if err := st.Err(); err == nil || !strings.Contains(err.Error(), "injected point failure") {
			t.Fatalf("stream err = %v, want the injected failure", err)
		}
		// Quiesce: every point either reached the simulator (succeeded
		// or failed there) or was cancelled. waitIdle's identity does
		// not apply — failed simulations count only under Requested.
		deadline := time.Now().Add(30 * time.Second)
		var stats engine.Stats
		for {
			stats = cl.Stats()
			if atomic.LoadInt64(&calls)+stats.Canceled == int64(grid.Size()) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("sweep never quiesced: %+v after %d simulator calls",
					stats, atomic.LoadInt64(&calls))
			}
			time.Sleep(2 * time.Millisecond)
		}
		if stats.Canceled > 0 {
			return // the failure stopped at least one unscheduled point
		}
	}
	t.Fatal("in 20 attempts, a mid-sweep failure never cancelled any remaining point")
}

// TestLocalVsRemoteParity is the Local-vs-Remote parity suite: the same
// grid through a LocalClient and a RemoteClient (against an httptest
// distiqd sharing the store) yields byte-identical CSV/JSON/markdown,
// and warm reruns report identical resolution counts on both substrates.
func TestLocalVsRemoteParity(t *testing.T) {
	dir := t.TempDir()
	grid := testGrid(t)

	// Cold local sweep populates the store.
	cold := client.NewLocal(client.WithParallel(2), client.WithCacheDir(dir))
	coldStream := cold.Sweep(context.Background(), grid)
	coldRS, err := coldStream.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	coldDocs := emitAll(t, coldRS)
	if c := coldStream.Counts(); c.Simulated != 4 {
		t.Fatalf("cold sweep counts = %+v, want 4 simulated", c)
	}

	// Remote sweep through a distiqd sharing the store: warm, so every
	// point is a disk hit — and the documents must match byte-for-byte.
	srv := serve.New(serve.Config{Parallel: 2, CacheDir: dir})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	remote := client.NewRemote(ts.URL)
	remoteStream := remote.Sweep(context.Background(), testGrid(t))
	remoteRS, err := remoteStream.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	remoteDocs := emitAll(t, remoteRS)

	// Warm local rerun through a fresh client on the same store.
	warm := client.NewLocal(client.WithParallel(2), client.WithCacheDir(dir))
	warmStream := warm.Sweep(context.Background(), testGrid(t))
	warmRS, err := warmStream.ResultSet()
	if err != nil {
		t.Fatal(err)
	}
	warmDocs := emitAll(t, warmRS)

	for format := range coldDocs {
		if remoteDocs[format] != coldDocs[format] {
			t.Errorf("%s differs between LocalClient and RemoteClient:\n--- local ---\n%s--- remote ---\n%s",
				format, coldDocs[format], remoteDocs[format])
		}
		if warmDocs[format] != coldDocs[format] {
			t.Errorf("%s differs between cold and warm local sweeps", format)
		}
	}

	rc, wc := remoteStream.Counts(), warmStream.Counts()
	if rc != wc {
		t.Errorf("warm resolution counts differ: remote %+v, local %+v", rc, wc)
	}
	if rc.Simulated != 0 || wc.Simulated != 0 {
		t.Errorf("warm reruns simulated: remote %+v, local %+v", rc, wc)
	}
	if rc.Total() != int64(grid.Size()) {
		t.Errorf("remote counts cover %d of %d points", rc.Total(), grid.Size())
	}
}

// TestRemoteRunMatchesLocal: a single job through Remote.Run equals the
// local result, via the SpecForJob reverse mapping.
func TestRemoteRunMatchesLocal(t *testing.T) {
	srv := serve.New(serve.Config{Parallel: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	job := client.Job{
		Bench:   "swim",
		Config:  core.MBDistr(),
		Opt:     engine.Options{Warmup: 500, Instructions: 1500},
		Machine: &engine.Machine{ROBSize: 128},
	}
	want, err := client.NewLocal(client.WithParallel(1)).Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.NewRemote(ts.URL).Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if got.Insts != want.Insts || got.Cycles != want.Cycles || got.IQEnergy != want.IQEnergy {
		t.Fatalf("remote result %+v differs from local %+v", got.Run, want.Run)
	}
}

// TestSpecForJobRejectsInexpressibleJobs: custom schemes and machine
// overrides no spec axis reaches are refused loudly, never silently
// approximated.
func TestSpecForJobRejectsInexpressibleJobs(t *testing.T) {
	parametric := client.Job{
		Bench:  "gcc",
		Config: core.MixBUFFCfg(8, 8, 10, 16, 4),
		Opt:    engine.Options{Warmup: 100, Instructions: 200},
	}
	if _, err := client.SpecForJob(parametric); err != nil {
		t.Fatalf("parametric job should be expressible: %v", err)
	}

	custom := parametric
	custom.Config.FP.Custom = func(core.DomainConfig, core.Options) (core.Scheme, error) { return nil, nil }
	if _, err := client.SpecForJob(custom); err == nil {
		t.Fatal("custom scheme job was accepted")
	}

	odd := parametric
	odd.Machine = &engine.Machine{DispatchWidth: 2} // no axis sets dispatch alone
	if _, err := client.SpecForJob(odd); err == nil {
		t.Fatal("dispatch-only machine override was accepted")
	}
}

// TestRemoteSweepCancellation: cancelling the context mid-stream fails
// the stream with context.Canceled while the service finishes the sweep
// on its side.
func TestRemoteSweepCancellation(t *testing.T) {
	release := make(chan struct{})
	srv := serve.New(serve.Config{
		// Every point gets a worker at once, so the free (ROB 128) half
		// cannot starve behind a gated job holding the only slot.
		Parallel: 4,
		Simulate: func(j engine.Job) (engine.Result, error) {
			// The grid's first two points (ROB 128) resolve freely so the
			// stream opens; the ROB-256 half blocks until the test ends,
			// pinning the sweep mid-flight when the context is cancelled.
			if j.Machine != nil && j.Machine.ROBSize == 256 {
				<-release
			}
			var r engine.Result
			r.Benchmark = j.Bench
			r.Insts = j.Opt.Instructions
			return r, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer close(release)

	grid := testGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	st := client.NewRemote(ts.URL).Sweep(ctx, grid)
	if !st.Next() {
		t.Fatalf("no first update: %v", st.Err())
	}
	cancel()
	done := make(chan struct{})
	go func() {
		for st.Next() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled remote stream did not terminate")
	}
	if err := st.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("stream err = %v, want context.Canceled in the chain", err)
	}
}
