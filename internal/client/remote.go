package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"distiq/internal/blobstore"
	"distiq/internal/cliutil"
	"distiq/internal/core"
	"distiq/internal/engine"
	"distiq/internal/scenario"
)

// maxStreamLine bounds one NDJSON stream line; result documents are a
// few kilobytes, so four megabytes is generous.
const maxStreamLine = 4 << 20

// Remote is the Client over a distiqd service: sweeps are submitted as
// scenario specs to POST /v1/sweeps and results consumed from the
// streaming NDJSON endpoint GET /v1/sweeps/{id}/stream, so many remote
// clients amortize the service's one warm engine. The stream arrives in
// grid order straight off the wire; results decode to the exact
// engine.Result the server computed, so documents assembled from a
// Remote sweep are byte-identical to a Local sweep of the same grid.
type Remote struct {
	base string
	hc   *http.Client
}

// NewRemote returns a Remote client for the distiqd at baseURL (e.g.
// "http://localhost:8090"). Recognized options: WithHTTPClient. The
// default client bounds connection setup (dial, TLS, response headers)
// but not the whole exchange — a sweep stream stays open for as long as
// the sweep runs, so an overall timeout would sever healthy long sweeps,
// while an unreachable worker still fails fast at connect time.
func NewRemote(baseURL string, opts ...Option) *Remote {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	hc := cfg.httpClient
	if hc == nil {
		hc = blobstore.NewHTTPClient(0)
	}
	return &Remote{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Base returns the service base URL.
func (c *Remote) Base() string { return c.base }

// Healthy probes the service's /healthz readiness endpoint, bounding
// the probe to two seconds. Anything but a prompt 200 — refused
// connection, timeout, a draining 503 — reads as unhealthy; the fleet
// client uses this to distinguish a dead worker (requeue its points
// elsewhere) from a transient stream failure (retry in place).
func (c *Remote) Healthy(ctx context.Context) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Run resolves one job by submitting it as a single-point sweep. The job
// must be expressible as a scenario spec (named or parametric scheme, no
// Custom factories) — SpecForJob documents the mapping.
func (c *Remote) Run(ctx context.Context, job Job) (engine.Result, error) {
	spec, err := SpecForJob(job)
	if err != nil {
		return engine.Result{}, err
	}
	grid, err := spec.Expand()
	if err != nil {
		return engine.Result{}, err
	}
	st := c.Sweep(ctx, grid)
	if !st.Next() {
		if st.Err() != nil {
			return engine.Result{}, st.Err()
		}
		return engine.Result{}, errors.New("client: remote stream delivered no result")
	}
	res := st.Update().Result
	for st.Next() {
	}
	return res, st.Err()
}

// Sweep submits the grid's spec and streams per-point results from the
// service in grid order. Cancelling ctx aborts the HTTP stream promptly
// (the stream error unwraps to context.Canceled); the service finishes
// the sweep server-side and persists into its store, so resubmitting the
// same grid later costs no re-simulation of completed points.
func (c *Remote) Sweep(ctx context.Context, grid *scenario.Grid) *Stream {
	st := newStream(grid)
	go func() {
		defer st.finish()
		if err := c.stream(ctx, grid, st); err != nil {
			st.fail(err)
		}
	}()
	return st
}

// stream drives one submit + NDJSON consumption cycle, pushing in-order
// updates onto st.
func (c *Remote) stream(ctx context.Context, grid *scenario.Grid, st *Stream) error {
	id, err := c.submit(ctx, grid.Spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/sweeps/"+id+"/stream", nil)
	if err != nil {
		return fmt.Errorf("client: stream sweep %s: %w", id, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: stream sweep %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return c.errorFrom("stream sweep "+id, resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxStreamLine)
	next := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: sweep %s: malformed stream event: %w", id, err)
		}
		switch {
		case ev.Error != "":
			return fmt.Errorf("client: sweep %s failed at point %d: %s", id, ev.Index, ev.Error)
		case ev.Done:
			if next != grid.Size() {
				return fmt.Errorf("client: sweep %s stream ended after %d of %d points", id, next, grid.Size())
			}
			st.setManifest(ev.Manifest)
			return nil
		default:
			if ev.Result == nil || ev.Index != next || next >= grid.Size() {
				return fmt.Errorf("client: sweep %s: out-of-order stream event (index %d, expected %d)", id, ev.Index, next)
			}
			st.send(Update{Index: next, Point: grid.Points[next], Result: *ev.Result, Source: ev.Source})
			next++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: stream sweep %s: %w", id, err)
	}
	return fmt.Errorf("client: sweep %s stream truncated after %d of %d points", id, next, grid.Size())
}

// submit posts the spec and returns the admitted sweep id.
func (c *Remote) submit(ctx context.Context, spec *scenario.Spec) (string, error) {
	data, err := spec.JSON()
	if err != nil {
		return "", fmt.Errorf("client: encode spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/sweeps", bytes.NewReader(data))
	if err != nil {
		return "", fmt.Errorf("client: submit sweep: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: submit sweep: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", c.errorFrom("submit sweep", resp)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil || accepted.ID == "" {
		return "", fmt.Errorf("client: submit sweep: malformed acceptance body (%v)", err)
	}
	return accepted.ID, nil
}

// errorFrom renders the service's uniform {"code","error"} body as an
// error. Spec rejections (HTTP 400) carry the shared bad-input marker,
// so CLI front ends surface them as exit 2, matching local validation.
func (c *Remote) errorFrom(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var ae struct {
		Code string `json:"code"`
		Msg  string `json:"error"`
	}
	var err error
	if json.Unmarshal(body, &ae) == nil && ae.Msg != "" {
		err = fmt.Errorf("client: %s: %s (%s, HTTP %d)", op, ae.Msg, ae.Code, resp.StatusCode)
	} else {
		err = fmt.Errorf("client: %s: HTTP %d", op, resp.StatusCode)
	}
	if resp.StatusCode == http.StatusBadRequest {
		err = cliutil.BadInput(err)
	}
	return err
}

// schemeKindName maps a parametric scheme kind to its spec spelling.
func schemeKindName(k core.Kind) string {
	switch k {
	case core.KindIssueFIFO:
		return "IssueFIFO"
	case core.KindLatFIFO:
		return "LatFIFO"
	case core.KindMixBUFF:
		return "MixBUFF"
	}
	return ""
}

// SpecForJob renders one engine job as an equivalent single-point
// scenario spec — the form a Remote client can submit. Named
// configurations map to a named scheme axis, parametric ones to their
// scheme kind plus queue shape; machine overrides map to single-value
// machine axes. The candidate spec is verified by expansion: it is
// returned only if its one point's structural identity (Job.Key) matches
// the input exactly, so a remote run simulates precisely the requested
// job or fails loudly. Jobs with Custom scheme factories are never
// expressible.
func SpecForJob(j Job) (*scenario.Spec, error) {
	if j.Config.Int.Custom != nil || j.Config.FP.Custom != nil {
		return nil, fmt.Errorf("client: %s under %s: custom schemes cannot run remotely", j.Bench, j.Config.Name)
	}
	axes := []scenario.SchemeAxis{{Scheme: j.Config.Name}}
	if kind := schemeKindName(j.Config.FP.Kind); kind != "" {
		ax := scenario.SchemeAxis{
			Scheme:  kind,
			IntQ:    fmt.Sprintf("%dx%d", j.Config.Int.Queues, j.Config.Int.Entries),
			Queues:  []int{j.Config.FP.Queues},
			Entries: []int{j.Config.FP.Entries},
			Distr:   j.Config.DistributedFU,
		}
		if kind == "MixBUFF" {
			ax.Chains = []int{j.Config.FP.Chains}
		}
		axes = append(axes, ax)
	}
	for _, ax := range axes {
		spec := scenario.New("").
			WithBenchmarks(j.Bench).
			WithScheme(ax).
			WithLengths(j.Opt.Warmup, j.Opt.Instructions)
		if j.Seed != 0 {
			spec.WithSeeds(j.Seed)
		}
		applyMachineAxes(spec, j.Machine)
		grid, err := spec.Expand()
		if err != nil || grid.Size() != 1 {
			continue
		}
		if grid.Points[0].Job(spec.Opt()).Key() == j.Key() {
			return spec, nil
		}
	}
	return nil, fmt.Errorf("client: %s under %s is not expressible as a scenario spec", j.Bench, j.Config.Name)
}

// applyMachineAxes maps a machine override's non-zero fields onto
// single-value spec axes. Fields no axis can express (e.g. a dispatch
// width differing from fetch) survive to the Key comparison in
// SpecForJob, which then rejects the spec.
func applyMachineAxes(spec *scenario.Spec, m *engine.Machine) {
	if m == nil {
		return
	}
	if m.ROBSize != 0 {
		spec.WithROB(m.ROBSize)
	}
	if m.FetchWidth != 0 {
		spec.WithFetchWidth(m.FetchWidth)
	}
	if m.IssueWidthInt != 0 {
		spec.WithIssueWidth(m.IssueWidthInt)
	}
	if m.CommitWidth != 0 {
		spec.WithCommitWidth(m.CommitWidth)
	}
	if m.IntALUs != 0 {
		spec.WithIntALUs(m.IntALUs)
	}
	if m.IntMuls != 0 {
		spec.WithIntMuls(m.IntMuls)
	}
	if m.FPAdders != 0 {
		spec.WithFPAdders(m.FPAdders)
	}
	if m.FPMuls != 0 {
		spec.WithFPMuls(m.FPMuls)
	}
	if m.L1DLatency != 0 {
		spec.WithL1DLatency(m.L1DLatency)
	}
	if m.L2Latency != 0 {
		spec.WithL2Latency(m.L2Latency)
	}
	if m.MemLatency != 0 {
		spec.WithMemLatency(m.MemLatency)
	}
	if m.PerfectDisambiguation {
		spec.WithPerfectDisambiguation(true)
	}
}

// compile-time interface check.
var _ Client = (*Remote)(nil)
