// Package pipeline implements the cycle-level out-of-order core that hosts
// the issue-queue schemes: an 8-wide fetch/decode/rename/dispatch front
// end, pluggable issue logic per domain, Table 1 functional units, a
// conservative load/store queue, and an 8-wide in-order commit from a
// 256-entry reorder buffer.
//
// The simulator is trace-driven. Wrong-path execution is approximated the
// standard way: the front end stops fetching past a mispredicted branch
// and resumes, after a redirect penalty, once the branch executes. Because
// no wrong-path instruction ever enters the window, rename state needs no
// checkpoints; the performance cost of the misprediction (drained window,
// refill latency) is fully modeled.
package pipeline

import (
	"fmt"

	"distiq/internal/cache"
	"distiq/internal/core"
	"distiq/internal/fu"
	"distiq/internal/isa"
)

// Config collects every processor parameter. DefaultConfig returns the
// paper's Table 1 machine.
type Config struct {
	FetchWidth    int
	DispatchWidth int
	IssueWidthInt int
	IssueWidthFP  int
	CommitWidth   int

	FetchQueue int
	ROBSize    int

	// DecodeDepth is the number of cycles between fetch and the
	// earliest possible dispatch (decode + rename stages);
	// RedirectPenalty is the extra front-end delay after a mispredicted
	// branch resolves.
	DecodeDepth     int
	RedirectPenalty int

	Latencies isa.Latencies
	Hier      cache.HierarchyConfig
	FUCounts  fu.Counts

	// IQ selects the issue-logic organization under study.
	IQ core.Config

	// PerfectDisambiguation is an ablation switch: loads ignore the
	// conservative AllStoreAddr rule (they still receive forwarded data
	// correctly) as if an oracle memory-dependence predictor were
	// present. The paper's schemes and estimator assume the
	// conservative rule; this quantifies what it costs.
	PerfectDisambiguation bool
}

// DefaultConfig returns the Table 1 configuration around the given
// issue-logic organization: 8-wide fetch/decode/commit, 8+8 issue, 64-entry
// fetch queue, 256-entry ROB, 160+160 physical registers (in rename),
// hybrid branch predictor and the three-level memory system.
func DefaultConfig(iq core.Config) Config {
	return Config{
		FetchWidth:      8,
		DispatchWidth:   8,
		IssueWidthInt:   8,
		IssueWidthFP:    8,
		CommitWidth:     8,
		FetchQueue:      64,
		ROBSize:         256,
		DecodeDepth:     3,
		RedirectPenalty: 1,
		Latencies:       isa.DefaultLatencies(),
		Hier:            cache.DefaultHierarchyConfig(),
		FUCounts:        fu.DefaultCounts(),
		IQ:              iq,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.DispatchWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("pipeline: non-positive width")
	}
	if c.IssueWidthInt <= 0 || c.IssueWidthFP <= 0 {
		return fmt.Errorf("pipeline: non-positive issue width")
	}
	if c.FetchQueue <= 0 {
		return fmt.Errorf("pipeline: fetch queue size")
	}
	if c.ROBSize <= 0 || c.ROBSize&(c.ROBSize-1) != 0 {
		return fmt.Errorf("pipeline: ROB size must be a power of two")
	}
	if c.DecodeDepth < 1 {
		return fmt.Errorf("pipeline: decode depth must be at least 1")
	}
	return c.IQ.Validate()
}

// Stats aggregates the performance counters of one run.
type Stats struct {
	Cycles    uint64
	Committed uint64
	ByClass   [isa.NumClasses]uint64

	Branches    uint64
	Mispredicts uint64
	Misfetches  uint64 // BTB misses on predicted-taken branches

	// Dispatch stall cycles by cause (counted once per stalled cycle).
	StallScheme uint64 // issue queue / chain structurally full
	StallROB    uint64
	StallRegs   uint64

	ICacheMissCycles uint64 // cycles fetch waited on the L1I

	IssuedInt, IssuedFP uint64
	LoadForwards        uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per branch.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}
