package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"distiq/internal/core"
	"distiq/internal/isa"
	"distiq/internal/trace"
)

// orderTracer records per-instruction event cycles and validates pipeline
// invariants: stage order per instruction, in-order commit, and
// conservation (everything committed passed through every stage).
type orderTracer struct {
	t             *testing.T
	fetched       map[uint64]int64
	disp          map[uint64]int64
	issued        map[uint64]int64
	wb            map[uint64]int64
	lastCommitSeq int64
	commits       int
}

func newOrderTracer(t *testing.T) *orderTracer {
	return &orderTracer{
		t:       t,
		fetched: map[uint64]int64{}, disp: map[uint64]int64{},
		issued: map[uint64]int64{}, wb: map[uint64]int64{},
		lastCommitSeq: -1,
	}
}

func (o *orderTracer) OnFetch(c int64, in *isa.Inst)    { o.fetched[in.Seq] = c }
func (o *orderTracer) OnDispatch(c int64, in *isa.Inst) { o.disp[in.Seq] = c }
func (o *orderTracer) OnIssue(c int64, in *isa.Inst)    { o.issued[in.Seq] = c }
func (o *orderTracer) OnWriteback(c int64, in *isa.Inst) {
	o.wb[in.Seq] = c
}

func (o *orderTracer) OnCommit(c int64, in *isa.Inst) {
	seq := in.Seq
	if int64(seq) <= o.lastCommitSeq {
		o.t.Errorf("commit out of order: seq %d after %d", seq, o.lastCommitSeq)
	}
	o.lastCommitSeq = int64(seq)
	o.commits++

	f, okF := o.fetched[seq]
	d, okD := o.disp[seq]
	i, okI := o.issued[seq]
	w, okW := o.wb[seq]
	if !okF || !okD || !okI || !okW {
		o.t.Errorf("seq %d committed without full stage history (F %v D %v I %v W %v)",
			seq, okF, okD, okI, okW)
		return
	}
	if !(f <= d && d < i && i < w && w <= c) {
		o.t.Errorf("seq %d stage cycles out of order: F%d D%d I%d W%d C%d", seq, f, d, i, w, c)
	}
	// Bound memory growth in long runs.
	delete(o.fetched, seq)
	delete(o.disp, seq)
	delete(o.issued, seq)
	delete(o.wb, seq)
}

func TestPipelineStageInvariants(t *testing.T) {
	// Every scheme must preserve the fundamental pipeline invariants
	// under a real workload.
	for _, cfg := range []core.Config{
		core.Unbounded(), core.Baseline64(), core.AdaptiveBaseline64(),
		core.IssueFIFOCfg(8, 8, 8, 16), core.LatFIFOCfg(8, 8, 8, 16),
		core.MBDistr(), core.IFDistr(),
	} {
		gen := trace.NewGenerator(trace.MustByName("equake"))
		p, err := New(DefaultConfig(cfg), gen)
		if err != nil {
			t.Fatal(err)
		}
		tr := newOrderTracer(t)
		p.SetTracer(tr)
		p.Run(20_000)
		if tr.commits < 20_000 {
			t.Errorf("%s: only %d commits traced", cfg.Name, tr.commits)
		}
		if t.Failed() {
			t.Fatalf("invariant violations under %s", cfg.Name)
		}
	}
}

func TestTextTracerOutput(t *testing.T) {
	var buf bytes.Buffer
	gen := trace.NewGenerator(trace.MustByName("gzip"))
	p, err := New(DefaultConfig(core.MBDistr()), gen)
	if err != nil {
		t.Fatal(err)
	}
	// The first fetch misses the cold L1I (111 cycles), so the window
	// must start late enough to see events.
	p.SetTracer(&TextTracer{W: &buf, From: 0, To: 400})
	p.Run(500)
	out := buf.String()
	for _, stage := range []string{" F ", " D ", " I ", " C "} {
		if !strings.Contains(out, stage) {
			t.Errorf("trace missing stage %q", stage)
		}
	}
	if strings.Contains(out, "cycle=400 ") || strings.Contains(out, "cycle=401 ") {
		t.Error("tracer emitted events outside its window")
	}
	if !strings.Contains(out, "pc=0x") {
		t.Error("trace lines missing PCs")
	}
}

func TestTextTracerWindow(t *testing.T) {
	tr := &TextTracer{From: 10, To: 20}
	if tr.in(9) || tr.in(20) {
		t.Error("window bounds wrong")
	}
	if !tr.in(10) || !tr.in(19) {
		t.Error("window interior wrong")
	}
	open := &TextTracer{From: 5}
	if !open.in(1 << 40) {
		t.Error("zero To must mean unbounded")
	}
}
