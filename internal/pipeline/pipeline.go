package pipeline

import (
	"fmt"

	"distiq/internal/bpred"
	"distiq/internal/cache"
	"distiq/internal/core"
	"distiq/internal/fu"
	"distiq/internal/isa"
	"distiq/internal/lsq"
	"distiq/internal/rename"
	"distiq/internal/rob"
)

// Fetcher supplies the dynamic instruction stream. trace.Generator
// implements it; tests supply hand-built streams.
type Fetcher interface {
	Next(in *isa.Inst)
}

// eventRing must exceed the longest possible completion distance (load
// missing everywhere: 1 + 2 + 10 + 102 cycles, plus slack).
const eventRing = 1024

// Pipeline is one simulated core.
type Pipeline struct {
	cfg Config
	gen Fetcher

	cycle int64

	pred *bpred.Hybrid
	btb  *bpred.BTB
	hier *cache.Hierarchy
	regs [isa.NumDomains]*rename.RegFile
	rob  *rob.ROB
	ldst *lsq.LSQ
	fus  *fu.Pool

	schemes   [isa.NumDomains]core.Scheme
	estimator *core.Estimator

	// Fetch state.
	fetchQ         []*isa.Inst
	fetchStall     int64     // fetch resumes at this cycle
	pendingBranch  *isa.Inst // unresolved mispredicted branch gating fetch
	pendingFetch   *isa.Inst // instruction waiting on an L1I miss
	pendingFetchAt int64     // cycle the missed instruction arrives
	lastFetchLine  uint64    // last instruction-cache line touched
	haveFetchLine  bool

	// Completion events, a ring of per-cycle lists. Each list is an
	// intrusive FIFO threaded through isa.Inst.NextEvent, so scheduling
	// and draining completions never allocates.
	events [eventRing]eventList

	// Per-cycle issue budgets.
	dPortsUsed int
	widthUsed  [isa.NumDomains]int

	// Instruction recycling pool.
	freeInsts []*isa.Inst

	tracer Tracer

	stats Stats
}

// New builds a pipeline around cfg, reading instructions from gen.
func New(cfg Config, gen Fetcher) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:    cfg,
		gen:    gen,
		pred:   bpred.NewDefaultHybrid(),
		btb:    bpred.NewDefaultBTB(),
		hier:   cache.NewHierarchy(cfg.Hier),
		rob:    rob.New(cfg.ROBSize),
		ldst:   lsq.New(cfg.ROBSize),
		fus:    fu.New(cfg.FUCounts, cfg.IQ.DistributedFU),
		fetchQ: make([]*isa.Inst, 0, cfg.FetchQueue),
		// At most ROB + fetch queue + 1 (pending I-miss) instructions
		// are ever in flight; sizing the recycling pool up front keeps
		// the steady-state cycle loop allocation-free.
		freeInsts: make([]*isa.Inst, 0, cfg.ROBSize+cfg.FetchQueue+1),
	}
	p.regs[isa.IntDomain] = rename.NewDefault(isa.IntDomain)
	p.regs[isa.FPDomain] = rename.NewDefault(isa.FPDomain)

	needEst := cfg.IQ.Int.Kind == core.KindLatFIFO || cfg.IQ.FP.Kind == core.KindLatFIFO ||
		cfg.IQ.Int.Kind == core.KindPreSched || cfg.IQ.FP.Kind == core.KindPreSched
	if needEst {
		p.estimator = core.NewEstimator(cfg.Latencies, cfg.Hier.L1D.Latency)
	}
	mkOpts := func(d isa.Domain) core.Options {
		return core.Options{
			Domain:      d,
			Latencies:   cfg.Latencies,
			MemHitLat:   cfg.Hier.L1D.Latency,
			Distributed: cfg.IQ.DistributedFU,
			FUCounts:    [isa.NumFUKinds]int(cfg.FUCounts),
			Estimator:   p.estimator,
		}
	}
	var err error
	if p.schemes[isa.IntDomain], err = core.New(cfg.IQ.Int, mkOpts(isa.IntDomain)); err != nil {
		return nil, err
	}
	if p.schemes[isa.FPDomain], err = core.New(cfg.IQ.FP, mkOpts(isa.FPDomain)); err != nil {
		return nil, err
	}
	return p, nil
}

// Cycle implements core.Env.
func (p *Pipeline) Cycle() int64 { return p.cycle }

// OperandReady implements core.Env.
func (p *Pipeline) OperandReady(fp bool, preg int16) bool {
	return p.regs[regDomain(fp)].Ready(preg, p.cycle)
}

// Older implements core.Env.
func (p *Pipeline) Older(a, b uint32) bool { return p.rob.Older(a, b) }

func regDomain(fp bool) isa.Domain {
	if fp {
		return isa.FPDomain
	}
	return isa.IntDomain
}

// TryIssue implements core.Env: the full issue check and reservation.
func (p *Pipeline) TryIssue(in *isa.Inst) bool {
	d := in.Domain()
	if p.widthUsed[d] >= p.issueWidth(d) {
		return false
	}
	if !core.OperandsReady(p, in) {
		return false
	}
	var fwdStore *isa.Inst
	if in.Class == isa.Load {
		if p.dPortsUsed >= p.hier.DPorts {
			return false
		}
		if !p.cfg.PerfectDisambiguation && !p.ldst.LoadMayIssue(in.Seq, p.cycle) {
			return false
		}
		// A load matching an older store whose data has not been
		// produced yet (the store issued on its address alone) must
		// wait until the data's arrival time is known.
		if st, ok := p.ldst.Forward(in.Seq, in.Addr); ok {
			if p.regs[regDomain(st.Src2FP)].ReadyAt(st.PSrc2) >= rename.FarFuture {
				return false
			}
			fwdStore = st
		}
	}
	lat := p.cfg.Latencies[in.Class]
	if !p.fus.Acquire(in.Class.FU(), in.QueueID, p.cycle, fu.Occupancy(in.Class, lat)) {
		return false
	}

	completeAt := p.cycle + int64(lat)
	if in.Class == isa.Load {
		p.dPortsUsed++
		if fwdStore != nil {
			// Store-to-load forwarding: value arrives at hit
			// latency, but never before the store's data.
			p.stats.LoadForwards++
			in.MemLatency = p.hier.L1D.Latency()
			completeAt += int64(in.MemLatency)
			if dr := p.regs[regDomain(fwdStore.Src2FP)].ReadyAt(fwdStore.PSrc2); dr > completeAt {
				completeAt = dr
			}
		} else {
			in.MemLatency = p.hier.DataAccess(in.Addr, false)
			completeAt += int64(in.MemLatency)
		}
	}

	in.Issued = true
	in.IssueCycle = p.cycle
	if p.tracer != nil {
		p.tracer.OnIssue(p.cycle, in)
	}
	if in.PDest != isa.NoReg {
		p.regs[regDomain(in.DestFP)].SetReadyAt(in.PDest, completeAt)
	}
	if in.Class == isa.Store {
		addrReady := p.cycle + isa.AddressLatency
		in.StoreAddrReadyCycle = addrReady
		p.ldst.StoreIssued(in, addrReady)
	}
	p.schedule(in, completeAt)
	p.widthUsed[d]++
	if d == isa.IntDomain {
		p.stats.IssuedInt++
	} else {
		p.stats.IssuedFP++
	}
	p.schemes[d].Events().MuxIssues[in.Class.FU()]++
	return true
}

func (p *Pipeline) issueWidth(d isa.Domain) int {
	if d == isa.FPDomain {
		return p.cfg.IssueWidthFP
	}
	return p.cfg.IssueWidthInt
}

// eventList is one ring slot's intrusive FIFO of completing instructions
// (linked through isa.Inst.NextEvent, in schedule order).
type eventList struct {
	head, tail *isa.Inst
}

func (l *eventList) push(in *isa.Inst) {
	in.NextEvent = nil
	if l.tail == nil {
		l.head = in
	} else {
		l.tail.NextEvent = in
	}
	l.tail = in
}

func (p *Pipeline) schedule(in *isa.Inst, at int64) {
	if at <= p.cycle {
		at = p.cycle + 1
	}
	if at-p.cycle >= eventRing {
		panic(fmt.Sprintf("pipeline: completion distance %d exceeds event ring", at-p.cycle))
	}
	p.events[at%eventRing].push(in)
	in.CompleteCycle = at
}

// Step advances the simulation one cycle. Stages run in reverse pipeline
// order so same-cycle structural reuse (an issued entry freeing a slot for
// dispatch) resolves consistently.
func (p *Pipeline) Step() {
	p.cycle++
	p.dPortsUsed = 0
	p.widthUsed = [isa.NumDomains]int{}

	p.writeback()
	p.commit()
	p.issue()
	p.dispatch()
	p.fetch()

	p.stats.Cycles++
}

// writeback processes completion events scheduled for this cycle.
func (p *Pipeline) writeback() {
	slot := p.cycle % eventRing
	for in := p.events[slot].head; in != nil; {
		next := in.NextEvent
		in.NextEvent = nil
		in.Completed = true
		if p.tracer != nil {
			p.tracer.OnWriteback(p.cycle, in)
		}
		if in.HasDest() {
			// Result-tag broadcast reaches both domains' queues
			// (FP chains consume integer results through loads,
			// and stores consume FP data).
			p.schemes[isa.IntDomain].OnComplete(p, in.DestFP)
			p.schemes[isa.FPDomain].OnComplete(p, in.DestFP)
		}
		if in.Mispredicted && in == p.pendingBranch {
			p.pendingBranch = nil
			p.fetchStall = p.cycle + int64(p.cfg.RedirectPenalty)
			p.haveFetchLine = false
			p.schemes[isa.IntDomain].OnMispredictResolved()
			p.schemes[isa.FPDomain].OnMispredictResolved()
		}
		in = next
	}
	p.events[slot] = eventList{}
}

// commit retires completed instructions in order.
func (p *Pipeline) commit() {
	for n := 0; n < p.cfg.CommitWidth; n++ {
		head := p.rob.Head()
		if head == nil || !head.Completed {
			return
		}
		p.rob.Pop()
		head.CommitCycle = p.cycle
		if p.tracer != nil {
			p.tracer.OnCommit(p.cycle, head)
		}
		if head.Class == isa.Store {
			p.hier.DataAccess(head.Addr, true)
			p.ldst.CommitStore(head)
		}
		if head.HasDest() {
			p.regs[regDomain(head.DestFP)].Free(head.POld)
		}
		p.stats.Committed++
		p.stats.ByClass[head.Class]++
		p.recycle(head)
	}
}

// issue runs both domains' selection logic.
func (p *Pipeline) issue() {
	p.schemes[isa.IntDomain].Issue(p, p.cfg.IssueWidthInt)
	p.schemes[isa.FPDomain].Issue(p, p.cfg.IssueWidthFP)
}

// dispatch renames and places up to DispatchWidth instructions, stalling
// in order at the first structural hazard.
func (p *Pipeline) dispatch() {
	for n := 0; n < p.cfg.DispatchWidth; n++ {
		if len(p.fetchQ) == 0 {
			return
		}
		in := p.fetchQ[0]
		if in.FetchCycle+int64(p.cfg.DecodeDepth) > p.cycle {
			return
		}
		if p.rob.Full() {
			p.stats.StallROB++
			return
		}
		destRF := p.regs[regDomain(in.DestFP)]
		if in.HasDest() && !destRF.CanAllocate() {
			p.stats.StallRegs++
			return
		}

		// Rename.
		if in.Src1 != isa.NoReg {
			in.PSrc1 = p.regs[regDomain(in.Src1FP)].Lookup(in.Src1)
		}
		if in.Src2 != isa.NoReg {
			in.PSrc2 = p.regs[regDomain(in.Src2FP)].Lookup(in.Src2)
		}
		if in.HasDest() {
			in.PDest, in.POld = destRF.Allocate(in.Dest)
		}
		if p.estimator != nil {
			p.estimator.OnDispatch(in, p.cycle)
		}

		if !p.schemes[in.Domain()].Dispatch(p, in) {
			if in.HasDest() {
				destRF.Undo(in.Dest, in.PDest, in.POld)
				in.PDest, in.POld = isa.NoReg, isa.NoReg
			}
			p.stats.StallScheme++
			return
		}

		if !p.rob.Alloc(in) {
			panic("pipeline: ROB alloc failed after Full check")
		}
		if in.Class == isa.Store {
			p.ldst.AddStore(in)
		}
		in.DispatchCycle = p.cycle
		if p.tracer != nil {
			p.tracer.OnDispatch(p.cycle, in)
		}
		copy(p.fetchQ, p.fetchQ[1:])
		p.fetchQ[len(p.fetchQ)-1] = nil
		p.fetchQ = p.fetchQ[:len(p.fetchQ)-1]
	}
}

// fetch pulls up to FetchWidth instructions from the trace, consulting the
// instruction cache, branch predictor and BTB, and stopping at taken
// branches, I-cache misses and unresolved mispredictions.
func (p *Pipeline) fetch() {
	// An instruction stalled on an L1I miss enters the queue when its
	// line arrives.
	if p.pendingFetch != nil {
		if p.cycle < p.pendingFetchAt {
			p.stats.ICacheMissCycles++
			return
		}
		if len(p.fetchQ) >= p.cfg.FetchQueue {
			return
		}
		in := p.pendingFetch
		p.pendingFetch = nil
		in.FetchCycle = p.cycle
		if !p.enqueueFetched(in) {
			return
		}
	}
	if p.pendingBranch != nil || p.cycle < p.fetchStall {
		return
	}

	for n := 0; n < p.cfg.FetchWidth && len(p.fetchQ) < p.cfg.FetchQueue; n++ {
		in := p.allocInst()
		p.gen.Next(in)
		in.FetchCycle = p.cycle

		line := in.PC &^ uint64(p.cfg.Hier.L1I.LineSize-1)
		if !p.haveFetchLine || line != p.lastFetchLine {
			lat := p.hier.InstFetch(in.PC)
			p.lastFetchLine, p.haveFetchLine = line, true
			if lat > p.hier.L1I.Latency() {
				// Miss: this instruction arrives with the line.
				p.pendingFetch = in
				p.pendingFetchAt = p.cycle + int64(lat)
				return
			}
		}
		if !p.enqueueFetched(in) {
			return
		}
	}
}

// enqueueFetched appends a fetched instruction and applies branch-handling
// side effects. It returns false when fetch must stop this cycle (taken
// branch, misfetch or misprediction).
func (p *Pipeline) enqueueFetched(in *isa.Inst) bool {
	p.fetchQ = append(p.fetchQ, in)
	if p.tracer != nil {
		p.tracer.OnFetch(p.cycle, in)
	}
	if in.Class != isa.Branch {
		return true
	}
	p.stats.Branches++
	correct := p.pred.PredictAndTrain(in.PC, in.Taken)
	btbHit := true
	if in.Taken {
		_, btbHit = p.btb.Lookup(in.PC)
		p.btb.Insert(in.PC, in.Target)
	}
	switch {
	case !correct:
		// Direction misprediction: fetch resumes after the branch
		// executes (writeback handles the redirect).
		in.Mispredicted = true
		p.pendingBranch = in
		p.stats.Mispredicts++
	case in.Taken && !btbHit:
		// Correct direction but unknown target: redirect after
		// decode computes the target.
		p.stats.Misfetches++
		p.fetchStall = p.cycle + int64(p.cfg.DecodeDepth)
		p.haveFetchLine = false
	case in.Taken:
		// Taken branch ends the fetch group.
		p.haveFetchLine = false
	default:
		return true
	}
	return false
}

func (p *Pipeline) allocInst() *isa.Inst {
	if n := len(p.freeInsts); n > 0 {
		in := p.freeInsts[n-1]
		p.freeInsts = p.freeInsts[:n-1]
		return in
	}
	return &isa.Inst{}
}

func (p *Pipeline) recycle(in *isa.Inst) {
	p.freeInsts = append(p.freeInsts, in)
}

// Run advances the pipeline until n more instructions have committed. It
// panics if the machine stops making progress (a scheme deadlock), which
// is a simulator bug worth failing loudly on.
func (p *Pipeline) Run(n uint64) {
	target := p.stats.Committed + n
	lastCommitted := p.stats.Committed
	idle := 0
	for p.stats.Committed < target {
		p.Step()
		if p.stats.Committed == lastCommitted {
			idle++
			if idle > 200000 {
				panic(fmt.Sprintf("pipeline: no commit for %d cycles at cycle %d (%s/%s, rob=%d, iq=%d/%d)",
					idle, p.cycle,
					p.schemes[0].Name(), p.schemes[1].Name(),
					p.rob.Len(),
					p.schemes[0].Occupancy(), p.schemes[1].Occupancy()))
			}
		} else {
			idle = 0
			lastCommitted = p.stats.Committed
		}
	}
}

// Warmup runs n committed instructions and then clears the statistics and
// energy counters, keeping all microarchitectural state (caches,
// predictors, occupancies) warm — the paper's skip-initialization
// methodology.
func (p *Pipeline) Warmup(n uint64) {
	p.Run(n)
	p.BeginMeasurement()
}

// BeginMeasurement clears the statistics and energy counters while
// keeping all microarchitectural state warm — the reset Warmup performs
// after its run. Callers that drive the pipeline cycle by cycle (the
// lockstep batch kernel steps many machines side by side) invoke it at
// each machine's own warmup boundary.
func (p *Pipeline) BeginMeasurement() {
	p.stats = Stats{}
	p.schemes[isa.IntDomain].Events().Reset()
	p.schemes[isa.FPDomain].Events().Reset()
}

// Committed returns the number of instructions committed since the last
// measurement reset — the loop condition external steppers share with
// Run.
func (p *Pipeline) Committed() uint64 { return p.stats.Committed }

// Stats returns a copy of the counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// Scheme returns the issue scheme of a domain (for reporting).
func (p *Pipeline) Scheme(d isa.Domain) core.Scheme { return p.schemes[d] }

// Hierarchy exposes the memory system (for reporting).
func (p *Pipeline) Hierarchy() *cache.Hierarchy { return p.hier }

// Predictor exposes the branch predictor (for reporting).
func (p *Pipeline) Predictor() *bpred.Hybrid { return p.pred }

// CurrentCycle returns the simulation time.
func (p *Pipeline) CurrentCycle() int64 { return p.cycle }
