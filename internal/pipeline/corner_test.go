package pipeline

import (
	"testing"

	"distiq/internal/core"
	"distiq/internal/isa"
)

// farFetcher emits instructions whose PCs stride across cache lines far
// apart, defeating the L1I; used to exercise instruction-fetch stalls.
type farFetcher struct {
	seq uint64
}

func (f *farFetcher) Next(in *isa.Inst) {
	*in = isa.Inst{
		Seq: f.seq, PC: 0x400000 + f.seq*1024*1024, // new line and set each time
		Class: isa.IntALU, Src1: isa.NoReg, Src2: isa.NoReg, Dest: 1,
	}
	in.ResetMicro()
	f.seq++
}

func TestICacheMissStallsCounted(t *testing.T) {
	p, err := New(DefaultConfig(core.Unbounded()), &farFetcher{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(100)
	st := p.Stats()
	if st.ICacheMissCycles == 0 {
		t.Fatal("no instruction-cache stall cycles recorded")
	}
	// Every instruction misses to memory: IPC must be tiny.
	if st.IPC() > 0.05 {
		t.Fatalf("IPC %.3f too high for a 100%% I-miss stream", st.IPC())
	}
}

func TestBTBMisfetchCounted(t *testing.T) {
	// Taken branches bouncing among many targets: first encounter of
	// each site misses the BTB even when the direction is predictable.
	var seq uint64
	fetch := fetcherFunc(func(in *isa.Inst) {
		*in = isa.Inst{
			Seq: seq, PC: 0x400000 + (seq%4096)*16,
			Class: isa.Branch, Src1: isa.NoReg, Src2: isa.NoReg, Dest: isa.NoReg,
			Taken: true, Target: 0x400000 + ((seq+1)%4096)*16,
		}
		in.ResetMicro()
		seq++
	})
	p, err := New(DefaultConfig(core.Unbounded()), fetch)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(3000)
	if p.Stats().Misfetches == 0 {
		t.Fatal("no BTB misfetches recorded")
	}
}

// fetcherFunc adapts a function to the Fetcher interface.
type fetcherFunc func(*isa.Inst)

func (f fetcherFunc) Next(in *isa.Inst) { f(in) }

func TestRegisterExhaustionStalls(t *testing.T) {
	// Every instruction writes an FP register and depends on a blocked
	// producer; with 160 physical FP registers and a 256-entry ROB, the
	// free list empties before the ROB fills.
	var seq uint64
	fetch := fetcherFunc(func(in *isa.Inst) {
		*in = isa.Inst{
			Seq: seq, PC: 0x400000 + (seq%64)*4,
			Class: isa.FPDiv, Src1: 1, Src1FP: true, Src2: isa.NoReg,
			Dest: int16(seq % 30), DestFP: true,
		}
		in.ResetMicro()
		seq++
	})
	p, err := New(DefaultConfig(core.Unbounded()), fetch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		p.Step()
	}
	if p.Stats().StallRegs == 0 {
		t.Fatal("no rename stalls with serial FPDiv pressure")
	}
}

func TestDividerNotPipelined(t *testing.T) {
	// Independent FP divides (latency 12, 4 units, non-pipelined): the
	// sustained rate is bounded by 4/12 per cycle.
	script := []isa.Inst{{Class: isa.FPDiv, Src1: isa.NoReg, Src2: isa.NoReg,
		Dest: 1, DestFP: true}}
	p := newPipe(t, core.Unbounded(), script)
	p.Warmup(200)
	p.Run(1200)
	ipc := p.Stats().IPC()
	limit := 4.0 / 12.0
	if ipc > limit*1.05 {
		t.Fatalf("FPDiv IPC %.3f exceeds non-pipelined bound %.3f", ipc, limit)
	}
	if ipc < limit*0.85 {
		t.Fatalf("FPDiv IPC %.3f far below achievable %.3f", ipc, limit)
	}
}

func TestMultiplierIsPipelined(t *testing.T) {
	// Independent FP multiplies (latency 4, 4 pipelined units): the
	// sustained rate approaches 4/cycle (one per unit per cycle).
	script := []isa.Inst{{Class: isa.FPMult, Src1: isa.NoReg, Src2: isa.NoReg,
		Dest: 1, DestFP: true}}
	p := newPipe(t, core.Unbounded(), script)
	p.Warmup(500)
	p.Run(4000)
	if ipc := p.Stats().IPC(); ipc < 3.5 {
		t.Fatalf("FPMult IPC %.2f, want near 4 (pipelined units)", ipc)
	}
}

func TestDCachePortLimit(t *testing.T) {
	// Independent loads hitting L1: bounded by the 4 R/W ports even
	// though 8 integer ALUs could compute addresses.
	script := []isa.Inst{{Class: isa.Load, Src1: isa.NoReg, Src2: isa.NoReg,
		Dest: 1, Addr: 0x1000}}
	p := newPipe(t, core.Unbounded(), script)
	p.Warmup(500)
	p.Run(4000)
	ipc := p.Stats().IPC()
	if ipc > 4.1 {
		t.Fatalf("load IPC %.2f exceeds the 4-port bound", ipc)
	}
	if ipc < 3.5 {
		t.Fatalf("load IPC %.2f far below the 4-port bound", ipc)
	}
}

func TestROBFullStallCounted(t *testing.T) {
	// A serial FPDiv chain fills the ROB behind the long-latency head;
	// the filler operations are destless so the physical register file
	// cannot become the binding limit first.
	filler := isa.Inst{Class: isa.IntALU, Src1: isa.NoReg, Src2: isa.NoReg, Dest: isa.NoReg}
	script := []isa.Inst{
		{Class: isa.FPDiv, Src1: 1, Src1FP: true, Src2: isa.NoReg, Dest: 1, DestFP: true},
		filler, filler, filler, filler, filler, filler, filler,
	}
	p := newPipe(t, core.Unbounded(), script)
	for i := 0; i < 2000; i++ {
		p.Step()
	}
	if p.Stats().StallROB == 0 {
		t.Fatal("no ROB-full stalls under serial long-latency pressure")
	}
}

func TestEventRingGuard(t *testing.T) {
	// schedule must reject completion distances beyond the ring.
	p := newPipe(t, core.Unbounded(), []isa.Inst{alu(isa.NoReg, isa.NoReg, 1)})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized completion distance not rejected")
		}
	}()
	p.schedule(&isa.Inst{}, p.cycle+eventRing+1)
}

func TestPerfectDisambiguationHelps(t *testing.T) {
	// Each group: a pointer load that misses to memory, a store through
	// the loaded pointer, then independent cache-hitting loads. Under
	// the conservative AllStoreAddr rule every younger load (including
	// the next group's pointer load) waits for the store's address —
	// fully serializing at memory latency. The oracle overlaps them.
	mkStream := func() Fetcher {
		var seq uint64
		return fetcherFunc(func(in *isa.Inst) {
			switch seq % 6 {
			case 0: // pointer load, unique cold line every time
				*in = isa.Inst{Class: isa.Load, Src1: isa.NoReg, Src2: isa.NoReg,
					Dest: 2, Addr: 0x4000_0000 + seq*4096}
			case 1: // store through the pointer
				*in = isa.Inst{Class: isa.Store, Src1: 2, Src2: 3,
					Dest: isa.NoReg, Addr: 0x9000}
			default: // independent hitting loads
				*in = isa.Inst{Class: isa.Load, Src1: isa.NoReg, Src2: isa.NoReg,
					Dest: 4, Addr: 0x1000}
			}
			in.Seq = seq
			in.PC = 0x400000 + (seq%6)*4
			in.ResetMicro()
			seq++
		})
	}

	cons := DefaultConfig(core.Unbounded())
	p1, err := New(cons, mkStream())
	if err != nil {
		t.Fatal(err)
	}
	p1.Run(6000)

	oracle := DefaultConfig(core.Unbounded())
	oracle.PerfectDisambiguation = true
	p2, err := New(oracle, mkStream())
	if err != nil {
		t.Fatal(err)
	}
	p2.Run(6000)

	if p2.Stats().IPC() <= p1.Stats().IPC()*1.5 {
		t.Fatalf("oracle IPC %.3f not clearly above conservative %.3f",
			p2.Stats().IPC(), p1.Stats().IPC())
	}
}
