package pipeline

import (
	"testing"

	"distiq/internal/core"
	"distiq/internal/trace"
)

// BenchmarkStepSteadyState measures the per-committed-instruction cost of
// the cycle loop after warmup, per issue-queue organization. The figure to
// watch is allocs/op: the steady-state hot path must stay allocation-free
// (TestStepSteadyStateAllocFree enforces it; cmd/iqbench records it in
// BENCH_*.json).
func BenchmarkStepSteadyState(b *testing.B) {
	for _, cfg := range []core.Config{core.Baseline64(), core.IFDistr(), core.MBDistr()} {
		b.Run(cfg.Name, func(b *testing.B) {
			gen := trace.NewGenerator(trace.MustByName("swim"))
			p, err := New(DefaultConfig(cfg), gen)
			if err != nil {
				b.Fatal(err)
			}
			p.Warmup(20_000)
			b.ReportAllocs()
			b.ResetTimer()
			p.Run(uint64(b.N))
		})
	}
}

// TestStepSteadyStateAllocFree pins the tentpole invariant: once warm, the
// cycle loop performs zero heap allocations per committed instruction for
// every organization of the evaluation (CAM baseline, distributed FIFOs,
// distributed MixBUFF, and the LatFIFO estimator path).
func TestStepSteadyStateAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, cfg := range []core.Config{
		core.Baseline64(), core.IFDistr(), core.MBDistr(),
		core.LatFIFOCfg(8, 8, 8, 16),
	} {
		for _, bench := range []string{"swim", "gcc"} {
			gen := trace.NewGenerator(trace.MustByName(bench))
			p, err := New(DefaultConfig(cfg), gen)
			if err != nil {
				t.Fatal(err)
			}
			p.Warmup(20_000)
			const insts = 20_000
			avg := testing.AllocsPerRun(1, func() { p.Run(insts) })
			// Tolerate stray runtime allocations (< one per 2000
			// instructions) but fail on any per-instruction or
			// per-cycle allocation.
			if avg > insts/2000 {
				t.Errorf("%s/%s: %.0f allocs per %d instructions, want ~0",
					cfg.Name, bench, avg, insts)
			}
		}
	}
}
