package pipeline

import (
	"fmt"
	"io"

	"distiq/internal/isa"
)

// Tracer observes per-instruction pipeline events. Implementations must be
// cheap; the pipeline invokes them inline. A nil tracer costs one branch
// per event.
type Tracer interface {
	// OnFetch fires when an instruction enters the fetch queue.
	OnFetch(cycle int64, in *isa.Inst)
	// OnDispatch fires when it is renamed and placed in the issue logic.
	OnDispatch(cycle int64, in *isa.Inst)
	// OnIssue fires when it begins execution.
	OnIssue(cycle int64, in *isa.Inst)
	// OnWriteback fires when its result becomes architecturally complete.
	OnWriteback(cycle int64, in *isa.Inst)
	// OnCommit fires when it retires.
	OnCommit(cycle int64, in *isa.Inst)
}

// SetTracer installs (or, with nil, removes) a tracer.
func (p *Pipeline) SetTracer(t Tracer) { p.tracer = t }

// TextTracer writes one line per pipeline event, pipeview-style:
//
//	cycle=104 C seq=17 pc=0x400044 IntALU q0
//
// Events outside [From, To) are suppressed (zero To means no upper bound).
type TextTracer struct {
	W        io.Writer
	From, To int64
}

func (t *TextTracer) in(cycle int64) bool {
	return cycle >= t.From && (t.To == 0 || cycle < t.To)
}

func (t *TextTracer) line(cycle int64, stage string, in *isa.Inst) {
	if !t.in(cycle) {
		return
	}
	fmt.Fprintf(t.W, "cycle=%d %s seq=%d pc=%#x %s q%d\n",
		cycle, stage, in.Seq, in.PC, in.Class, in.QueueID)
}

// OnFetch implements Tracer.
func (t *TextTracer) OnFetch(cycle int64, in *isa.Inst) { t.line(cycle, "F", in) }

// OnDispatch implements Tracer.
func (t *TextTracer) OnDispatch(cycle int64, in *isa.Inst) { t.line(cycle, "D", in) }

// OnIssue implements Tracer.
func (t *TextTracer) OnIssue(cycle int64, in *isa.Inst) { t.line(cycle, "I", in) }

// OnWriteback implements Tracer.
func (t *TextTracer) OnWriteback(cycle int64, in *isa.Inst) { t.line(cycle, "W", in) }

// OnCommit implements Tracer.
func (t *TextTracer) OnCommit(cycle int64, in *isa.Inst) { t.line(cycle, "C", in) }
