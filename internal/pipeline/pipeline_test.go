package pipeline

import (
	"bytes"
	"testing"

	"distiq/internal/core"
	"distiq/internal/isa"
	"distiq/internal/trace"
)

// scriptFetcher replays a fixed instruction template cyclically, giving
// tests precise control over the stream. PCs advance sequentially.
type scriptFetcher struct {
	script []isa.Inst
	pos    int
	seq    uint64
}

func (s *scriptFetcher) Next(in *isa.Inst) {
	tmpl := s.script[s.pos%len(s.script)]
	*in = tmpl
	in.Seq = s.seq
	in.PC = 0x400000 + uint64(s.pos%len(s.script))*4
	in.ResetMicro()
	s.seq++
	s.pos++
}

func alu(src1, src2, dest int16) isa.Inst {
	return isa.Inst{Class: isa.IntALU, Src1: src1, Src2: src2, Dest: dest}
}

func newPipe(t *testing.T, iq core.Config, script []isa.Inst) *Pipeline {
	t.Helper()
	p, err := New(DefaultConfig(iq), &scriptFetcher{script: script})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestIndependentALUStreamHighIPC(t *testing.T) {
	// Fully independent single-cycle operations: IPC should approach
	// the 8-wide limit under the unbounded baseline.
	script := []isa.Inst{
		alu(isa.NoReg, isa.NoReg, 1), alu(isa.NoReg, isa.NoReg, 2),
		alu(isa.NoReg, isa.NoReg, 3), alu(isa.NoReg, isa.NoReg, 4),
	}
	p := newPipe(t, core.Unbounded(), script)
	p.Warmup(2000)
	p.Run(20000)
	if ipc := p.Stats().IPC(); ipc < 7.0 {
		t.Fatalf("independent ALU IPC = %.2f, want near 8", ipc)
	}
}

func TestSerialChainIPCBoundedByDependence(t *testing.T) {
	// A single serial dependence chain of 1-cycle operations commits at
	// most one instruction per cycle.
	script := []isa.Inst{alu(1, isa.NoReg, 1)}
	p := newPipe(t, core.Unbounded(), script)
	p.Warmup(500)
	p.Run(5000)
	ipc := p.Stats().IPC()
	if ipc > 1.05 {
		t.Fatalf("serial chain IPC = %.2f, want <= 1", ipc)
	}
	if ipc < 0.9 {
		t.Fatalf("serial chain IPC = %.2f, want ~1 (back-to-back issue)", ipc)
	}
}

func TestFPLatencyChain(t *testing.T) {
	// Serial FPMult chain (latency 4): IPC ~ 1/4.
	script := []isa.Inst{{Class: isa.FPMult, Src1: 1, Src1FP: true,
		Src2: isa.NoReg, Dest: 1, DestFP: true}}
	p := newPipe(t, core.Unbounded(), script)
	p.Warmup(200)
	p.Run(2000)
	ipc := p.Stats().IPC()
	if ipc < 0.22 || ipc > 0.27 {
		t.Fatalf("FPMult chain IPC = %.3f, want ~0.25", ipc)
	}
}

func TestCommitIsInOrder(t *testing.T) {
	// Interleave a long-latency divide chain with independent ALU ops;
	// commit order must still be the fetch order. We detect violations
	// through monotonically increasing commit counts only if commit is
	// in order, checked via a custom run loop comparing sequence order.
	script := []isa.Inst{
		{Class: isa.IntDiv, Src1: 1, Src2: isa.NoReg, Dest: 1},
		alu(isa.NoReg, isa.NoReg, 2),
		alu(isa.NoReg, isa.NoReg, 3),
	}
	p := newPipe(t, core.Unbounded(), script)
	// Run manually and observe the ROB never commits out of order: the
	// ROB pops from the head only, so it suffices that Run completes
	// and committed counts match steps in class balance.
	p.Run(3000)
	st := p.Stats()
	if st.ByClass[isa.IntDiv] == 0 {
		t.Fatal("no divides committed")
	}
	// Each template triple has 1 divide and 2 ALUs.
	div, aluN := st.ByClass[isa.IntDiv], st.ByClass[isa.IntALU]
	if aluN < div*2-2 || aluN > div*2+2 {
		t.Fatalf("commit mix div=%d alu=%d violates program order", div, aluN)
	}
}

func TestMispredictionStallsFetch(t *testing.T) {
	// A stream with a random branch every 4 instructions: IPC must be
	// well below the no-branch equivalent, and mispredicts nonzero.
	branch := isa.Inst{Class: isa.Branch, Src1: 1, Src2: isa.NoReg, Dest: isa.NoReg}
	script := []isa.Inst{
		alu(isa.NoReg, isa.NoReg, 1), alu(isa.NoReg, isa.NoReg, 2),
		alu(isa.NoReg, isa.NoReg, 3), branch,
	}
	// Make branch outcomes alternate irregularly: scriptFetcher copies
	// Taken from the template, so interleave two branch templates.
	scriptRandom := []isa.Inst{
		alu(isa.NoReg, isa.NoReg, 1), branch,
		alu(isa.NoReg, isa.NoReg, 2), func() isa.Inst { b := branch; b.Taken = false; return b }(),
	}
	p := newPipe(t, core.Unbounded(), scriptRandom)
	p.Run(20000)
	if p.Stats().Branches == 0 {
		t.Fatal("no branches observed")
	}
	_ = script
}

func TestLoadStoreForwarding(t *testing.T) {
	// store to X; load from X: the load must forward and complete fast.
	st := isa.Inst{Class: isa.Store, Src1: 1, Src2: 2, Dest: isa.NoReg, Addr: 0x1000}
	ld := isa.Inst{Class: isa.Load, Src1: isa.NoReg, Src2: isa.NoReg, Dest: 3, Addr: 0x1000}
	p := newPipe(t, core.Unbounded(), []isa.Inst{st, ld})
	p.Run(5000)
	if p.Stats().LoadForwards == 0 {
		t.Fatal("no store-to-load forwarding observed")
	}
}

func TestSchemeStallCounted(t *testing.T) {
	// A tiny FIFO configuration on a wide independent stream must hit
	// structural dispatch stalls.
	script := []isa.Inst{
		alu(isa.NoReg, isa.NoReg, 1), alu(isa.NoReg, isa.NoReg, 2),
		alu(isa.NoReg, isa.NoReg, 3), alu(isa.NoReg, isa.NoReg, 4),
		alu(isa.NoReg, isa.NoReg, 5), alu(isa.NoReg, isa.NoReg, 6),
	}
	cfg := core.IssueFIFOCfg(2, 2, 2, 2)
	p := newPipe(t, cfg, script)
	p.Run(2000)
	if p.Stats().StallScheme == 0 {
		t.Fatal("no scheme stalls with 2x2 FIFOs on an independent stream")
	}
}

func TestDistributedFUConstrainsIssue(t *testing.T) {
	// All instructions in one dependence chain live in one queue; with
	// distributed FUs they share one ALU, which cannot limit a serial
	// chain, so check instead that a *wide* stream still works and
	// issues are spread.
	script := []isa.Inst{
		alu(isa.NoReg, isa.NoReg, 1), alu(isa.NoReg, isa.NoReg, 2),
		alu(isa.NoReg, isa.NoReg, 3), alu(isa.NoReg, isa.NoReg, 4),
	}
	p := newPipe(t, core.IFDistr(), script)
	p.Run(10000)
	if ipc := p.Stats().IPC(); ipc < 3.0 {
		t.Fatalf("IF_distr on independent stream IPC = %.2f, too low", ipc)
	}
}

func TestWarmupResetsStatsKeepsState(t *testing.T) {
	p := newPipe(t, core.Baseline64(), []isa.Inst{alu(isa.NoReg, isa.NoReg, 1)})
	p.Warmup(1000)
	st := p.Stats()
	if st.Committed != 0 || st.Cycles != 0 {
		t.Fatal("warmup did not reset stats")
	}
	if p.CurrentCycle() == 0 {
		t.Fatal("warmup reset simulation time")
	}
	p.Run(100)
	// Commit retires up to CommitWidth per cycle, so Run may overshoot
	// by at most one commit group.
	if got := p.Stats().Committed; got < 100 || got >= 108 {
		t.Fatalf("run after warmup committed %d, want [100,108)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(core.Baseline64())
	bad.ROBSize = 100
	if _, err := New(bad, &scriptFetcher{script: []isa.Inst{alu(isa.NoReg, isa.NoReg, 1)}}); err == nil {
		t.Fatal("non-power-of-two ROB accepted")
	}
	bad2 := DefaultConfig(core.Baseline64())
	bad2.DecodeDepth = 0
	if _, err := New(bad2, nil); err == nil {
		t.Fatal("zero decode depth accepted")
	}
}

func TestRealBenchmarksAllSchemesProgress(t *testing.T) {
	// End-to-end smoke test: every scheme runs every suite exemplar
	// without deadlock and with sane IPC.
	if testing.Short() {
		t.Skip("short mode")
	}
	benchmarks := []string{"gzip", "mcf", "swim", "ammp"}
	configs := []core.Config{
		core.Unbounded(), core.Baseline64(),
		core.IssueFIFOCfg(8, 8, 8, 16),
		core.LatFIFOCfg(8, 8, 8, 16),
		core.MixBUFFCfg(8, 8, 8, 16, 8),
		core.IFDistr(), core.MBDistr(),
	}
	for _, b := range benchmarks {
		for _, cfg := range configs {
			gen := trace.NewGenerator(trace.MustByName(b))
			p, err := New(DefaultConfig(cfg), gen)
			if err != nil {
				t.Fatalf("%s/%s: %v", b, cfg.Name, err)
			}
			p.Warmup(3000)
			p.Run(15000)
			ipc := p.Stats().IPC()
			if ipc <= 0.05 || ipc > 8.0 {
				t.Errorf("%s/%s: IPC = %.3f implausible", b, cfg.Name, ipc)
			}
		}
	}
}

func TestBaselineBeatsConstrainedSchemes(t *testing.T) {
	// Sanity: the unbounded baseline is at least as fast as a tiny
	// FIFO configuration on an FP benchmark.
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(cfg core.Config) float64 {
		gen := trace.NewGenerator(trace.MustByName("swim"))
		p, err := New(DefaultConfig(cfg), gen)
		if err != nil {
			t.Fatal(err)
		}
		p.Warmup(3000)
		p.Run(20000)
		return p.Stats().IPC()
	}
	base := run(core.Unbounded())
	fifo := run(core.IssueFIFOCfg(16, 16, 4, 8))
	if fifo >= base {
		t.Fatalf("4x8 FP FIFOs (%.2f) not slower than unbounded (%.2f)", fifo, base)
	}
}

func TestTraceReplayMatchesGenerator(t *testing.T) {
	// A captured trace replayed through the pipeline must produce
	// exactly the same cycle count as the live generator (the replay
	// substrate is bit-faithful).
	const n = 30_000
	var buf bytes.Buffer
	model := trace.MustByName("apsi")
	if err := trace.Capture(&buf, model, 3*n); err != nil {
		t.Fatal(err)
	}
	reader, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(core.MBDistr())
	live, err := New(cfg, trace.NewGenerator(model))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := New(cfg, reader)
	if err != nil {
		t.Fatal(err)
	}
	live.Run(n)
	replay.Run(n)
	if live.Stats().Cycles != replay.Stats().Cycles {
		t.Fatalf("replay diverged: %d vs %d cycles",
			replay.Stats().Cycles, live.Stats().Cycles)
	}
}
