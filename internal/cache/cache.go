// Package cache implements the memory hierarchy of the Table 1
// configuration: a 64KB 2-way L1 instruction cache (32-byte lines, 1
// cycle), a 32KB 4-way L1 data cache (32-byte lines, 2 cycles, 4 R/W
// ports), a unified 512KB 4-way L2 (64-byte lines, 10 cycles) and a main
// memory delivering the first chunk in 100 cycles and subsequent 8-byte
// chunks every 2 cycles over a 64-byte-wide bus.
//
// Caches are set-associative with true-LRU replacement and are
// write-allocate. Timing is returned as a whole-access latency; the
// simulator does not model bandwidth contention below the L1 data-cache
// port limit, matching the abstraction level of the paper's SimpleScalar
// baseline.
package cache

import "fmt"

// Cache is one level of set-associative cache.
type Cache struct {
	name     string
	sets     int
	assoc    int
	lineBits uint
	latency  int

	tags  []uint64 // sets*assoc; 0 = invalid (tag stored with +1 bias)
	lru   []uint8
	dirty []bool

	// Accesses, Misses and Writebacks are statistics counters.
	Accesses, Misses, Writebacks uint64
}

// Config describes one cache level.
type Config struct {
	Name     string
	SizeKB   int // total capacity in KiB
	Assoc    int
	LineSize int // bytes, power of two
	Latency  int // cycles for a hit
}

// New builds a cache from its configuration. It panics on a geometry that
// cannot be realized (non-power-of-two sets or line size).
func New(cfg Config) *Cache {
	if cfg.SizeKB <= 0 || cfg.Assoc <= 0 || cfg.LineSize <= 0 {
		panic("cache: non-positive geometry")
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cache: line size must be a power of two")
	}
	lines := cfg.SizeKB * 1024 / cfg.LineSize
	if lines%cfg.Assoc != 0 {
		panic("cache: lines not divisible by associativity")
	}
	sets := lines / cfg.Assoc
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", cfg.Name, sets))
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	c := &Cache{
		name:     cfg.Name,
		sets:     sets,
		assoc:    cfg.Assoc,
		lineBits: lineBits,
		latency:  cfg.Latency,
		tags:     make([]uint64, lines),
		lru:      make([]uint8, lines),
		dirty:    make([]bool, lines),
	}
	for i := range c.lru {
		c.lru[i] = uint8(i % cfg.Assoc)
	}
	return c
}

// Name returns the configured name of the cache.
func (c *Cache) Name() string { return c.name }

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() int { return c.latency }

func (c *Cache) set(addr uint64) int {
	return int((addr >> c.lineBits) & uint64(c.sets-1))
}

func (c *Cache) tag(addr uint64) uint64 {
	return (addr >> c.lineBits) + 1 // +1 so 0 means invalid
}

// Lookup probes the cache without modifying anything. It reports whether
// the line holding addr is present.
func (c *Cache) Lookup(addr uint64) bool {
	base := c.set(addr) * c.assoc
	t := c.tag(addr)
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == t {
			return true
		}
	}
	return false
}

// Access performs a read or write of addr, updating LRU state and
// allocating the line on a miss. It returns whether the access hit and,
// on a miss, whether a dirty line was evicted (requiring a writeback).
func (c *Cache) Access(addr uint64, write bool) (hit, writeback bool) {
	c.Accesses++
	base := c.set(addr) * c.assoc
	t := c.tag(addr)
	victim := 0
	for w := 0; w < c.assoc; w++ {
		if c.tags[base+w] == t {
			c.touch(base, w)
			if write {
				c.dirty[base+w] = true
			}
			return true, false
		}
		if c.lru[base+w] > c.lru[base+victim] {
			victim = w
		}
	}
	c.Misses++
	writeback = c.dirty[base+victim] && c.tags[base+victim] != 0
	if writeback {
		c.Writebacks++
	}
	c.tags[base+victim] = t
	c.dirty[base+victim] = write
	c.touch(base, victim)
	return false, writeback
}

func (c *Cache) touch(base, w int) {
	old := c.lru[base+w]
	for i := 0; i < c.assoc; i++ {
		if c.lru[base+i] < old {
			c.lru[base+i]++
		}
	}
	c.lru[base+w] = 0
}

// MissRate returns Misses/Accesses (0 when never accessed).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
