package cache

import (
	"testing"
	"testing/quick"

	"distiq/internal/rng"
)

func small() *Cache {
	return New(Config{Name: "t", SizeKB: 1, Assoc: 2, LineSize: 32, Latency: 2})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if hit, _ := c.Access(0x101f, false); !hit {
		t.Fatal("same-line access missed")
	}
	// Next line.
	if hit, _ := c.Access(0x1020, false); hit {
		t.Fatal("next-line access hit")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := small() // 1KB/32B = 32 lines, 2-way => 16 sets; set stride 512B
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU, b is LRU
	c.Access(d, false) // evicts b
	if hit, _ := c.Access(a, false); !hit {
		t.Fatal("MRU line evicted")
	}
	if hit, _ := c.Access(b, false); hit {
		t.Fatal("LRU line survived")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := small()
	c.Access(0x0000, true) // dirty
	c.Access(0x0200, false)
	// Touch 0x0200 so 0x0000 is LRU... wait, 0x0000 was first so it is LRU.
	_, wb := c.Access(0x0400, false) // evicts dirty 0x0000
	if !wb {
		t.Fatal("evicting a dirty line did not report writeback")
	}
	if c.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Writebacks)
	}
	// Clean eviction must not report writeback.
	_, wb = c.Access(0x0600, false)
	if wb {
		t.Fatal("clean eviction reported writeback")
	}
}

func TestLookupDoesNotAllocate(t *testing.T) {
	c := small()
	if c.Lookup(0x1000) {
		t.Fatal("lookup hit on empty cache")
	}
	if c.Lookup(0x1000) {
		t.Fatal("lookup allocated the line")
	}
	c.Access(0x1000, false)
	if !c.Lookup(0x1000) {
		t.Fatal("lookup missed present line")
	}
	if c.Accesses != 1 {
		t.Fatalf("Lookup changed access count: %d", c.Accesses)
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	if c.MissRate() != 0 {
		t.Fatal("miss rate of untouched cache != 0")
	}
	c.Access(0x0, false)
	c.Access(0x0, false)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set equal to the cache size, accessed repeatedly,
	// must only miss on the first pass.
	c := New(Config{Name: "t", SizeKB: 4, Assoc: 4, LineSize: 32, Latency: 1})
	lines := 4 * 1024 / 32
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*32), false)
		}
	}
	if c.Misses != uint64(lines) {
		t.Fatalf("misses = %d, want %d (cold only)", c.Misses, lines)
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	for _, cfg := range []Config{
		{SizeKB: 0, Assoc: 2, LineSize: 32},
		{SizeKB: 1, Assoc: 0, LineSize: 32},
		{SizeKB: 1, Assoc: 2, LineSize: 33},
		{SizeKB: 1, Assoc: 7, LineSize: 32},
		{SizeKB: 3, Assoc: 2, LineSize: 32}, // 96 lines / 2 = 48 sets, not 2^n
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPropertyPresenceAfterAccess(t *testing.T) {
	// Property: immediately after Access(addr), Lookup(addr) is true.
	c := New(Config{Name: "q", SizeKB: 2, Assoc: 2, LineSize: 64, Latency: 1})
	if err := quick.Check(func(addr uint64, write bool) bool {
		c.Access(addr, write)
		return c.Lookup(addr)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySetIsolation(t *testing.T) {
	// Accessing addresses in one set never evicts lines in another set.
	c := small()            // 16 sets, stride 512
	c.Access(0x0020, false) // set 1
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		// Random addresses in set 0 only.
		c.Access(uint64(r.Intn(1<<20))&^uint64(0x1ff), false)
	}
	if !c.Lookup(0x0020) {
		t.Fatal("traffic in set 0 evicted a line in set 1")
	}
}

func TestMemoryFillLatency(t *testing.T) {
	m := DefaultMemory()
	if got := m.FillLatency(64); got != 100 {
		t.Fatalf("64B fill = %d, want 100", got)
	}
	if got := m.FillLatency(128); got != 102 {
		t.Fatalf("128B fill = %d, want 102", got)
	}
	if got := m.FillLatency(32); got != 100 {
		t.Fatalf("32B fill = %d, want 100", got)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold load: L1D(2) + L2(10) + mem(100) = 112.
	if lat := h.DataAccess(0x10000, false); lat != 112 {
		t.Fatalf("cold load latency = %d, want 112", lat)
	}
	// Now in L1D: 2.
	if lat := h.DataAccess(0x10000, false); lat != 2 {
		t.Fatalf("L1D hit latency = %d, want 2", lat)
	}
	// Evicting nothing; a different address in the same L2 line but a
	// different L1 line: L1D miss, L2 hit = 2 + 10.
	if lat := h.DataAccess(0x10020, false); lat != 12 {
		t.Fatalf("L2 hit latency = %d, want 12", lat)
	}
	// Instruction fetch cold: L1I(1) + L2(10) + mem(100) = 111.
	if lat := h.InstFetch(0x90000); lat != 111 {
		t.Fatalf("cold ifetch = %d, want 111", lat)
	}
	if lat := h.InstFetch(0x90000); lat != 1 {
		t.Fatalf("warm ifetch = %d, want 1", lat)
	}
}

func TestHierarchyDefaultGeometry(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if cfg.L1D.SizeKB != 32 || cfg.L1D.Assoc != 4 || cfg.L1D.Latency != 2 {
		t.Error("L1D geometry does not match Table 1")
	}
	if cfg.L1I.SizeKB != 64 || cfg.L1I.Assoc != 2 || cfg.L1I.Latency != 1 {
		t.Error("L1I geometry does not match Table 1")
	}
	if cfg.L2.SizeKB != 512 || cfg.L2.Assoc != 4 || cfg.L2.Latency != 10 {
		t.Error("L2 geometry does not match Table 1")
	}
	if cfg.DPorts != 4 {
		t.Error("DPorts != 4")
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(Config{Name: "b", SizeKB: 32, Assoc: 4, LineSize: 32, Latency: 2})
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)], i%4 == 0)
	}
}
