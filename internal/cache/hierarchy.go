package cache

// MemoryConfig models main memory timing: the first chunk of a line fill
// arrives after FirstChunk cycles and each further ChunkBytes-wide transfer
// takes InterChunk cycles.
type MemoryConfig struct {
	FirstChunk int // cycles to first chunk (Table 1: 100)
	InterChunk int // cycles between chunks (Table 1: 2)
	ChunkBytes int // bus width in bytes (Table 1: 64)
}

// DefaultMemory returns the Table 1 main-memory timing.
func DefaultMemory() MemoryConfig {
	return MemoryConfig{FirstChunk: 100, InterChunk: 2, ChunkBytes: 64}
}

// FillLatency returns the time to fill a line of lineSize bytes.
func (m MemoryConfig) FillLatency(lineSize int) int {
	if lineSize <= m.ChunkBytes {
		return m.FirstChunk
	}
	chunks := (lineSize + m.ChunkBytes - 1) / m.ChunkBytes
	return m.FirstChunk + (chunks-1)*m.InterChunk
}

// Hierarchy ties the instruction cache, data cache, unified L2 and main
// memory together and answers whole-access latencies.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	Mem          MemoryConfig

	l2Line int

	// DPorts is the number of L1D read/write ports per cycle (Table 1: 4).
	DPorts int
}

// HierarchyConfig collects every memory-system parameter.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	Mem          MemoryConfig
	DPorts       int
}

// DefaultHierarchyConfig returns the Table 1 memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:    Config{Name: "L1I", SizeKB: 64, Assoc: 2, LineSize: 32, Latency: 1},
		L1D:    Config{Name: "L1D", SizeKB: 32, Assoc: 4, LineSize: 32, Latency: 2},
		L2:     Config{Name: "L2", SizeKB: 512, Assoc: 4, LineSize: 64, Latency: 10},
		Mem:    DefaultMemory(),
		DPorts: 4,
	}
}

// NewHierarchy builds the hierarchy from its configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I:    New(cfg.L1I),
		L1D:    New(cfg.L1D),
		L2:     New(cfg.L2),
		Mem:    cfg.Mem,
		l2Line: cfg.L2.LineSize,
		DPorts: cfg.DPorts,
	}
}

// InstFetch returns the latency of fetching the instruction block at addr.
func (h *Hierarchy) InstFetch(addr uint64) int {
	hit, _ := h.L1I.Access(addr, false)
	lat := h.L1I.Latency()
	if hit {
		return lat
	}
	return lat + h.l2Access(addr, false)
}

// DataAccess returns the latency of a load (write=false) or the
// address-to-completion latency of a store (write=true) at addr.
func (h *Hierarchy) DataAccess(addr uint64, write bool) int {
	hit, wb := h.L1D.Access(addr, write)
	lat := h.L1D.Latency()
	if hit {
		return lat
	}
	if wb {
		// Dirty eviction: the writeback goes to L2; model its
		// occupancy as one extra L2 access worth of latency folded
		// into the miss (no bandwidth model below ports).
		h.L2.Access(addr, true)
	}
	return lat + h.l2Access(addr, write)
}

func (h *Hierarchy) l2Access(addr uint64, write bool) int {
	hit, _ := h.L2.Access(addr, write)
	lat := h.L2.Latency()
	if hit {
		return lat
	}
	return lat + h.Mem.FillLatency(h.l2Line)
}
