package lsq

import (
	"testing"

	"distiq/internal/isa"
)

func store(seq uint64, addr uint64) *isa.Inst {
	return &isa.Inst{Seq: seq, Class: isa.Store, Addr: addr, Src2: 5}
}

func TestLoadBlockedByUnknownStoreAddress(t *testing.T) {
	q := New(32)
	s := store(5, 0x100)
	q.AddStore(s)
	if q.LoadMayIssue(10, 100) {
		t.Fatal("load issued past store with unknown address")
	}
	if q.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", q.Conflicts)
	}
	q.StoreIssued(s, 50)
	if q.LoadMayIssue(10, 49) {
		t.Fatal("load issued before store address known")
	}
	if !q.LoadMayIssue(10, 50) {
		t.Fatal("load blocked after store address known")
	}
}

func TestOlderLoadsUnaffected(t *testing.T) {
	q := New(32)
	q.AddStore(store(20, 0x100))
	if !q.LoadMayIssue(10, 0) {
		t.Fatal("load older than store was blocked")
	}
}

func TestForwardMatchesWordGranularity(t *testing.T) {
	q := New(32)
	s := store(5, 0x104)
	q.AddStore(s)
	q.StoreIssued(s, 3)
	if _, ok := q.Forward(10, 0x100); !ok {
		t.Fatal("same 8-byte word did not forward")
	}
	got, ok := q.Forward(10, 0x107)
	if !ok || got != s {
		t.Fatalf("Forward = (%v,%v), want the store", got, ok)
	}
	if _, ok := q.Forward(10, 0x108); ok {
		t.Fatal("different word forwarded")
	}
	if _, ok := q.Forward(3, 0x104); ok {
		t.Fatal("older load forwarded from younger store")
	}
}

func TestForwardPicksYoungestOlderStore(t *testing.T) {
	q := New(32)
	s1, s2 := store(1, 0x100), store(2, 0x100)
	q.AddStore(s1)
	q.AddStore(s2)
	got, ok := q.Forward(5, 0x100)
	if !ok || got != s2 {
		t.Fatalf("Forward = (%v,%v), want youngest store", got, ok)
	}
}

func TestForwardWorksBeforeStoreIssue(t *testing.T) {
	// The paper's split-store model: a store's address may be unknown,
	// but Forward is only legal after LoadMayIssue, i.e. all older
	// store addresses known. Forward itself matches by the trace
	// address regardless of issue state (the caller gates on data
	// readiness).
	q := New(32)
	s := store(1, 0x200)
	q.AddStore(s)
	if _, ok := q.Forward(5, 0x200); !ok {
		t.Fatal("forward did not match in-flight store")
	}
}

func TestCommitOrder(t *testing.T) {
	q := New(32)
	s1, s2 := store(1, 0x10), store(2, 0x20)
	q.AddStore(s1)
	q.AddStore(s2)
	q.CommitStore(s1)
	if q.Len() != 1 {
		t.Fatalf("Len = %d after one commit", q.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order commit did not panic")
		}
	}()
	q.CommitStore(s1) // wrong: head is s2
}

func TestStoreIssuedUnknownPanics(t *testing.T) {
	q := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("StoreIssued for unknown store did not panic")
		}
	}()
	q.StoreIssued(store(9, 0), 1)
}

func TestManyStoresWindowSlides(t *testing.T) {
	q := New(8)
	pending := make([]*isa.Inst, 0, 8)
	for i := uint64(0); i < 1000; i++ {
		s := store(i, uint64(i)*8)
		q.AddStore(s)
		q.StoreIssued(s, int64(i))
		pending = append(pending, s)
		if len(pending) > 4 {
			q.CommitStore(pending[0])
			pending = pending[1:]
		}
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	if !q.LoadMayIssue(2000, 1000) {
		t.Fatal("load blocked although all addresses known")
	}
}
