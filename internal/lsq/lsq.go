// Package lsq implements the load/store queue semantics the paper's
// issue-time estimator models: a load may not access memory until the
// addresses of all older stores are known (the AllStoreAddr rule), and a
// load whose address matches an older in-flight store receives the value by
// forwarding at cache-hit latency.
//
// Stores are split exactly as the paper describes: the address computation
// issues as soon as the address operand is ready (the data operand may
// still be pending), and the memory write happens at commit. In-order
// retirement guarantees the data is available by then. A load that matches
// a store whose data is not yet produced must wait for the data.
//
// The queue is conservative (no memory-dependence speculation), matching
// both the paper's estimator and its SimpleScalar-era baseline.
package lsq

import "distiq/internal/isa"

// storeEntry tracks one in-flight store.
type storeEntry struct {
	inst      *isa.Inst
	issued    bool
	addrReady int64 // cycle the address becomes known (issue + AddressLatency)
}

// LSQ is the load/store queue. Stores enter at dispatch and leave at
// commit; loads are checked against it at issue time.
//
// The queue lives in a fixed backing array with a head index: commits
// advance head instead of re-slicing the front (which would strand
// capacity and force append to reallocate as the window slides), and
// dispatch compacts the live entries back to the front only when the
// array is exhausted. After warmup the queue therefore performs no
// allocations.
type LSQ struct {
	stores []storeEntry // live entries are stores[head:], ordered by Seq
	head   int

	// Forwards and Conflicts count store-to-load forwarding events and
	// loads delayed by unknown store addresses.
	Forwards, Conflicts uint64
}

// New returns an empty LSQ with capacity hint cap.
func New(capacity int) *LSQ {
	return &LSQ{stores: make([]storeEntry, 0, capacity)}
}

// live returns the in-flight entries, oldest first.
func (q *LSQ) live() []storeEntry { return q.stores[q.head:] }

// Len returns the number of in-flight stores.
func (q *LSQ) Len() int { return len(q.stores) - q.head }

// AddStore registers a store at dispatch time.
func (q *LSQ) AddStore(in *isa.Inst) {
	if len(q.stores) == cap(q.stores) && q.head > 0 {
		// Compact committed slots away instead of growing.
		n := copy(q.stores, q.stores[q.head:])
		q.stores = q.stores[:n]
		q.head = 0
	}
	q.stores = append(q.stores, storeEntry{inst: in})
}

// StoreIssued records that a store's address computation issued: the
// address becomes known at addrReady (issue + AddressLatency).
func (q *LSQ) StoreIssued(in *isa.Inst, addrReady int64) {
	live := q.live()
	for i := range live {
		if live[i].inst.Seq == in.Seq {
			live[i].issued = true
			live[i].addrReady = addrReady
			return
		}
	}
	panic("lsq: StoreIssued for unknown store")
}

// CommitStore removes the oldest store (must be called in commit order).
func (q *LSQ) CommitStore(in *isa.Inst) {
	if q.Len() == 0 || q.stores[q.head].inst.Seq != in.Seq {
		panic("lsq: commit out of order")
	}
	q.stores[q.head] = storeEntry{} // drop the *isa.Inst reference
	q.head++
	if q.head == len(q.stores) {
		q.stores = q.stores[:0]
		q.head = 0
	}
}

// LoadMayIssue reports whether a load with sequence number seq can access
// memory at the given cycle: every older store must have a known address
// by then. When it returns false the Conflicts counter is incremented.
func (q *LSQ) LoadMayIssue(seq uint64, cycle int64) bool {
	live := q.live()
	for i := range live {
		s := &live[i]
		if s.inst.Seq >= seq {
			break
		}
		if !s.issued || s.addrReady > cycle {
			q.Conflicts++
			return false
		}
	}
	return true
}

// Forward checks whether a load at seq reading addr hits an older
// in-flight store to the same 8-byte word, returning the youngest such
// store. The caller decides whether the store's data is available (the
// store may have issued its address before its data was produced). Call
// only after LoadMayIssue returned true.
func (q *LSQ) Forward(seq uint64, addr uint64) (*isa.Inst, bool) {
	live := q.live()
	for i := len(live) - 1; i >= 0; i-- {
		s := &live[i]
		if s.inst.Seq >= seq {
			continue
		}
		if s.inst.Addr>>3 == addr>>3 {
			q.Forwards++
			return s.inst, true
		}
	}
	return nil, false
}
