// Package lsq implements the load/store queue semantics the paper's
// issue-time estimator models: a load may not access memory until the
// addresses of all older stores are known (the AllStoreAddr rule), and a
// load whose address matches an older in-flight store receives the value by
// forwarding at cache-hit latency.
//
// Stores are split exactly as the paper describes: the address computation
// issues as soon as the address operand is ready (the data operand may
// still be pending), and the memory write happens at commit. In-order
// retirement guarantees the data is available by then. A load that matches
// a store whose data is not yet produced must wait for the data.
//
// The queue is conservative (no memory-dependence speculation), matching
// both the paper's estimator and its SimpleScalar-era baseline.
package lsq

import "distiq/internal/isa"

// storeEntry tracks one in-flight store.
type storeEntry struct {
	inst      *isa.Inst
	issued    bool
	addrReady int64 // cycle the address becomes known (issue + AddressLatency)
}

// LSQ is the load/store queue. Stores enter at dispatch and leave at
// commit; loads are checked against it at issue time.
type LSQ struct {
	stores []storeEntry // ordered by Seq (dispatch order)

	// Forwards and Conflicts count store-to-load forwarding events and
	// loads delayed by unknown store addresses.
	Forwards, Conflicts uint64
}

// New returns an empty LSQ with capacity hint cap.
func New(capacity int) *LSQ {
	return &LSQ{stores: make([]storeEntry, 0, capacity)}
}

// Len returns the number of in-flight stores.
func (q *LSQ) Len() int { return len(q.stores) }

// AddStore registers a store at dispatch time.
func (q *LSQ) AddStore(in *isa.Inst) {
	q.stores = append(q.stores, storeEntry{inst: in})
}

// StoreIssued records that a store's address computation issued: the
// address becomes known at addrReady (issue + AddressLatency).
func (q *LSQ) StoreIssued(in *isa.Inst, addrReady int64) {
	for i := range q.stores {
		if q.stores[i].inst.Seq == in.Seq {
			q.stores[i].issued = true
			q.stores[i].addrReady = addrReady
			return
		}
	}
	panic("lsq: StoreIssued for unknown store")
}

// CommitStore removes the oldest store (must be called in commit order).
func (q *LSQ) CommitStore(in *isa.Inst) {
	if len(q.stores) == 0 || q.stores[0].inst.Seq != in.Seq {
		panic("lsq: commit out of order")
	}
	q.stores = q.stores[1:]
	if len(q.stores) == 0 {
		// Reset the backing array so the slice does not grow without
		// bound as the window slides.
		q.stores = q.stores[:0:cap(q.stores)]
	}
}

// LoadMayIssue reports whether a load with sequence number seq can access
// memory at the given cycle: every older store must have a known address
// by then. When it returns false the Conflicts counter is incremented.
func (q *LSQ) LoadMayIssue(seq uint64, cycle int64) bool {
	for i := range q.stores {
		s := &q.stores[i]
		if s.inst.Seq >= seq {
			break
		}
		if !s.issued || s.addrReady > cycle {
			q.Conflicts++
			return false
		}
	}
	return true
}

// Forward checks whether a load at seq reading addr hits an older
// in-flight store to the same 8-byte word, returning the youngest such
// store. The caller decides whether the store's data is available (the
// store may have issued its address before its data was produced). Call
// only after LoadMayIssue returned true.
func (q *LSQ) Forward(seq uint64, addr uint64) (*isa.Inst, bool) {
	for i := len(q.stores) - 1; i >= 0; i-- {
		s := &q.stores[i]
		if s.inst.Seq >= seq {
			continue
		}
		if s.inst.Addr>>3 == addr>>3 {
			q.Forwards++
			return s.inst, true
		}
	}
	return nil, false
}
