// Golden per-scheme energy fixtures: for each issue-queue organization
// the paper evaluates, simulate one benchmark under QuickOptions and pin
// the raw event counts and the labeled energy breakdown of both domains
// byte-for-byte. The existing power tests check *relationships* (wakeup
// dominance, FIFO vs CAM ratios); these fixtures make the absolute
// numbers impossible to drift silently — any change to the event
// counting, the energy constants or the array model fails the diff and
// must be deliberate (-update-golden, same convention as
// internal/sim/testdata/golden).
package power_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"distiq/internal/core"
	"distiq/internal/isa"
	"distiq/internal/pipeline"
	"distiq/internal/power"
	"distiq/internal/sim"
	"distiq/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/*.txt from the current simulator")

// goldenBenchmark fixes the workload: swim exercises both domains (FP
// arithmetic plus integer address and loop work).
const goldenBenchmark = "swim"

// renderEvents lists every counter explicitly, so adding a field to
// power.Events forces this fixture format (and the goldens) to be
// revisited.
func renderEvents(ev *power.Events) string {
	var b strings.Builder
	f := func(name string, v uint64) { fmt.Fprintf(&b, "  %-18s %d\n", name, v) }
	f("WakeupBroadcasts", ev.WakeupBroadcasts)
	f("WakeupCAMCells", ev.WakeupCAMCells)
	f("IQWrites", ev.IQWrites)
	f("IQReads", ev.IQReads)
	f("SelectOps", ev.SelectOps)
	f("SelectEntries", ev.SelectEntries)
	f("QRenameReads", ev.QRenameReads)
	f("QRenameWrites", ev.QRenameWrites)
	f("RegsReadyReads", ev.RegsReadyReads)
	f("FIFOReads", ev.FIFOReads)
	f("FIFOWrites", ev.FIFOWrites)
	f("BuffReads", ev.BuffReads)
	f("BuffWrites", ev.BuffWrites)
	f("ChainReads", ev.ChainReads)
	f("ChainWrites", ev.ChainWrites)
	f("SelRegWrites", ev.SelRegWrites)
	f("MuxIntALU", ev.MuxIssues[isa.IntALUUnit])
	f("MuxIntMUL", ev.MuxIssues[isa.IntMulUnit])
	f("MuxFPALU", ev.MuxIssues[isa.FPAddUnit])
	f("MuxFPMUL", ev.MuxIssues[isa.FPMulUnit])
	return b.String()
}

// renderBreakdown lists the labeled energies in sorted key order with a
// fixed precision, plus the total.
func renderBreakdown(bd power.Breakdown) string {
	keys := make([]string, 0, len(bd))
	for k := range bd {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-18s %.4f\n", k, bd[k])
	}
	fmt.Fprintf(&b, "  %-18s %.4f\n", "total", bd.Total())
	return b.String()
}

func TestGoldenSchemeEnergy(t *testing.T) {
	model, err := trace.ByName(goldenBenchmark)
	if err != nil {
		t.Fatal(err)
	}
	opt := sim.QuickOptions()

	for _, cfg := range []core.Config{
		core.Unbounded(),
		core.Baseline64(),
		core.LatFIFOCfg(8, 8, 8, 16),
		core.IFDistr(),
		core.MBDistr(),
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			p, err := pipeline.New(pipeline.DefaultConfig(cfg), trace.NewGenerator(model))
			if err != nil {
				t.Fatal(err)
			}
			p.Warmup(opt.Warmup)
			p.Run(opt.Instructions)

			var b strings.Builder
			fmt.Fprintf(&b, "config %s\nbenchmark %s\noptions warmup=%d instructions=%d\n",
				cfg.Name, goldenBenchmark, opt.Warmup, opt.Instructions)
			for _, dom := range []isa.Domain{isa.IntDomain, isa.FPDomain} {
				name := "int"
				if dom == isa.FPDomain {
					name = "fp"
				}
				sch := p.Scheme(dom)
				ev := sch.Events()
				bd := power.NewCalc(sch.Geometry()).Energy(ev)
				fmt.Fprintf(&b, "[%s events]\n%s[%s energy pJ]\n%s",
					name, renderEvents(ev), name, renderBreakdown(bd))
			}
			got := b.String()

			path := filepath.Join("testdata", "golden", cfg.Name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test ./internal/power -run TestGoldenSchemeEnergy -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("energy fixture drifted from %s:\n--- golden ---\n%s--- current ---\n%s",
					path, want, got)
			}
		})
	}
}
