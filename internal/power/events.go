// Package power models the dynamic energy of the issue logic. It follows
// the paper's methodology (Wattch + CACTI 3.0 at 0.10 µm): the simulator
// counts microarchitectural events, and an analytic array model converts
// each event into energy based on the geometry of the structure involved.
// Leakage is excluded, as in the original study.
//
// Events are counted by the issue-queue schemes and the pipeline; the Calc
// type owns the per-event energies derived from a scheme's Geometry and
// produces the labeled breakdowns of Figures 9-11.
package power

import "distiq/internal/isa"

// Events counts the energy-relevant activity of one issue-scheme instance
// (one domain) during a simulation.
type Events struct {
	// CAM baseline activity.
	WakeupBroadcasts uint64 // result-tag broadcasts into the queue
	WakeupCAMCells   uint64 // unready operand comparators exercised
	IQWrites         uint64 // payload RAM writes at dispatch
	IQReads          uint64 // payload RAM reads at issue

	// Selection activity (CAM baseline and MixBUFF).
	SelectOps     uint64 // selection operations performed
	SelectEntries uint64 // total entries examined across selections

	// Distributed-scheme activity.
	QRenameReads, QRenameWrites uint64 // queue-map table
	RegsReadyReads              uint64 // ready-bit table lookups
	FIFOReads, FIFOWrites       uint64 // FIFO queue pop/push
	BuffReads, BuffWrites       uint64 // MixBUFF buffer read/write
	ChainReads, ChainWrites     uint64 // chain latency table whole-table ops
	SelRegWrites                uint64 // last-selected-instruction register

	// MuxIssues counts instructions driven to each functional-unit kind
	// through the issue crossbar.
	MuxIssues [isa.NumFUKinds]uint64
}

// Add accumulates o into e.
func (e *Events) Add(o *Events) {
	e.WakeupBroadcasts += o.WakeupBroadcasts
	e.WakeupCAMCells += o.WakeupCAMCells
	e.IQWrites += o.IQWrites
	e.IQReads += o.IQReads
	e.SelectOps += o.SelectOps
	e.SelectEntries += o.SelectEntries
	e.QRenameReads += o.QRenameReads
	e.QRenameWrites += o.QRenameWrites
	e.RegsReadyReads += o.RegsReadyReads
	e.FIFOReads += o.FIFOReads
	e.FIFOWrites += o.FIFOWrites
	e.BuffReads += o.BuffReads
	e.BuffWrites += o.BuffWrites
	e.ChainReads += o.ChainReads
	e.ChainWrites += o.ChainWrites
	e.SelRegWrites += o.SelRegWrites
	for k := range e.MuxIssues {
		e.MuxIssues[k] += o.MuxIssues[k]
	}
}

// Reset zeroes all counters (used at the warmup boundary).
func (e *Events) Reset() { *e = Events{} }
