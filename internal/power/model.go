package power

import (
	"fmt"
	"sort"
	"strings"

	"distiq/internal/isa"
)

// Style identifies the storage organization of an issue scheme.
type Style uint8

const (
	// StyleCAM is the conventional CAM/RAM issue queue.
	StyleCAM Style = iota
	// StyleFIFO is a bank of FIFO queues (IssueFIFO / LatFIFO).
	StyleFIFO
	// StyleBuff is the MixBUFF random-access buffer organization.
	StyleBuff
)

// Geometry describes one issue-scheme instance for the energy model.
type Geometry struct {
	Style   Style
	Queues  int // number of queues (1 for the CAM baseline queue)
	Entries int // entries per queue
	Chains  int // chains per queue (MixBUFF)

	// TagBits is the operand tag width (physical register number);
	// PayloadBits the RAM payload per entry.
	TagBits, PayloadBits int

	// Banks is the sub-banking factor of the CAM baseline (the paper
	// assumes 8 banks of 8 entries per 64-entry queue).
	Banks int

	// SecondLevel is the entry count of a two-level scheme's wakeup-free
	// buffer (PreSched); 0 for single-level organizations.
	SecondLevel int

	// FUFanout is, per functional-unit kind, the number of units an
	// instruction leaving this scheme can be routed to (0 when this
	// scheme never issues to that kind). With distributed functional
	// units the fanout is 1 (or one shared unit per queue pair).
	FUFanout [isa.NumFUKinds]int
}

// Per-event energy constants at 0.10 µm, in picojoules. They are
// calibrated so the baseline breakdown reproduces Figure 9 (wakeup
// dominant, buffer and selection visible, integer-ALU crossbar
// significant); all schemes share the same constants, so relative
// comparisons are meaningful even where absolute values are approximate.
const (
	eCellRead   = 0.0009 // per bit-cell on an activated bitline (read)
	eCellWrite  = 0.0011 // per bit-cell (write)
	eWordline   = 0.045  // per bit of wordline/sense overhead
	eDecode     = 0.012  // per entry of decoder overhead
	eRAMBase    = 0.4    // fixed per access
	eCAMCell    = 0.095  // per comparator cell (tag bit) searched
	eTagDrive   = 0.019  // per entry-bit of tag-line wire driven
	eSelectCell = 0.065  // per entry examined by a selection tree
	eSelectBase = 0.35   // per selection operation
	eMuxPerSrc  = 0.022  // per (entry x unit) of crossbar routing per issue
	eLatch      = 0.18   // per small register write
	eBitTable   = 0.0025 // per entry of a 1-bit table access
	eBitBase    = 0.11   // fixed per 1-bit table access
)

// ramRead returns the energy of reading one entry of an n-entry, b-bit RAM.
func ramRead(n, b int) float64 {
	return eCellRead*float64(n)*float64(b)/8 + eWordline*float64(b) +
		eDecode*float64(n) + eRAMBase
}

// ramWrite returns the energy of writing one entry.
func ramWrite(n, b int) float64 {
	return eCellWrite*float64(n)*float64(b)/8 + eWordline*float64(b) +
		eDecode*float64(n) + eRAMBase
}

// fifoAccess returns the energy of pushing/popping a FIFO: no decoder is
// needed (head/tail pointers), so only the accessed entry's cells switch.
func fifoAccess(b int) float64 {
	return eCellWrite*float64(b) + eWordline*float64(b)/2 + eRAMBase/2
}

// Breakdown maps a component label to energy in picojoules. Labels match
// the paper's Figures 9-11: wakeup, buff, select, fifo, Qrename,
// regs_ready, chains, reg, MuxIntALU, MuxIntMUL, MuxFPALU, MuxFPMUL.
type Breakdown map[string]float64

// Total returns the summed energy of all components. Components are
// summed in sorted key order so the result is bit-identical across runs
// (Go map iteration order is randomized, and floating-point addition is
// not associative).
func (b Breakdown) Total() float64 {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := 0.0
	for _, k := range keys {
		t += b[k]
	}
	return t
}

// Add accumulates o into b.
func (b Breakdown) Add(o Breakdown) {
	for k, v := range o {
		b[k] += v
	}
}

// Scale multiplies every component by f and returns b.
func (b Breakdown) Scale(f float64) Breakdown {
	for k := range b {
		b[k] *= f
	}
	return b
}

// String renders the breakdown sorted by decreasing energy.
func (b Breakdown) String() string {
	type kv struct {
		k string
		v float64
	}
	var items []kv
	for k, v := range b {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v > items[j].v })
	total := b.Total()
	var sb strings.Builder
	for _, it := range items {
		pct := 0.0
		if total > 0 {
			pct = 100 * it.v / total
		}
		fmt.Fprintf(&sb, "  %-10s %14.1f pJ  %5.1f%%\n", it.k, it.v, pct)
	}
	fmt.Fprintf(&sb, "  %-10s %14.1f pJ\n", "total", total)
	return sb.String()
}

// muxLabels names the crossbar components per functional-unit kind,
// matching the paper's figures.
var muxLabels = [isa.NumFUKinds]string{
	isa.IntALUUnit: "MuxIntALU",
	isa.IntMulUnit: "MuxIntMUL",
	isa.FPAddUnit:  "MuxFPALU",
	isa.FPMulUnit:  "MuxFPMUL",
}

// Calc converts Events into energy for one scheme instance.
type Calc struct {
	geom Geometry
}

// NewCalc returns a calculator for the geometry.
func NewCalc(g Geometry) *Calc {
	if g.Queues <= 0 || g.Entries <= 0 {
		panic("power: geometry needs queues and entries")
	}
	if g.TagBits <= 0 {
		g.TagBits = 8
	}
	if g.PayloadBits <= 0 {
		g.PayloadBits = 80
	}
	return &Calc{geom: g}
}

// Geometry returns the calculator's geometry.
func (c *Calc) Geometry() Geometry { return c.geom }

// Energy converts the event counts into a labeled breakdown.
func (c *Calc) Energy(ev *Events) Breakdown {
	g := c.geom
	bd := Breakdown{}
	totalEntries := g.Queues * g.Entries

	switch g.Style {
	case StyleCAM:
		// Wakeup: each exercised comparator searches TagBits cells;
		// every broadcast drives the tag lines across the live bank
		// span. Sub-banking shortens the driven wire.
		span := totalEntries
		if g.Banks > 1 {
			span = totalEntries / g.Banks * ((g.Banks + 1) / 2)
		}
		bd["wakeup"] = float64(ev.WakeupCAMCells)*eCAMCell*float64(g.TagBits) +
			float64(ev.WakeupBroadcasts)*eTagDrive*float64(span)*float64(g.TagBits)
		bd["buff"] = float64(ev.IQWrites)*ramWrite(totalEntries, g.PayloadBits) +
			float64(ev.IQReads)*ramRead(totalEntries, g.PayloadBits)
		bd["select"] = float64(ev.SelectEntries)*eSelectCell +
			float64(ev.SelectOps)*eSelectBase
		// A two-level organization (PreSched) fronts the CAM with a
		// wakeup-free second-level buffer whose traffic arrives in the
		// FIFO counters; pure CAM schemes never touch them.
		if ev.FIFOReads+ev.FIFOWrites > 0 {
			l2 := g.SecondLevel
			if l2 <= 0 {
				l2 = totalEntries
			}
			bd["buff2"] = float64(ev.FIFOWrites)*ramWrite(l2, g.PayloadBits) +
				float64(ev.FIFOReads)*ramRead(l2, g.PayloadBits)
		}

	case StyleFIFO:
		bd["Qrename"] = float64(ev.QRenameReads)*ramRead(isa.NumLogicalRegs*2, qrenameBits(g)) +
			float64(ev.QRenameWrites)*ramWrite(isa.NumLogicalRegs*2, qrenameBits(g))
		bd["fifo"] = float64(ev.FIFOWrites+ev.FIFOReads) * fifoAccess(g.PayloadBits)
		bd["regs_ready"] = float64(ev.RegsReadyReads) *
			(eBitTable*float64(isa.NumPhysicalRegs) + eBitBase)

	case StyleBuff:
		bd["Qrename"] = float64(ev.QRenameReads)*ramRead(isa.NumLogicalRegs*2, qrenameBits(g)) +
			float64(ev.QRenameWrites)*ramWrite(isa.NumLogicalRegs*2, qrenameBits(g))
		// The buffer is a true RAM (random insert/remove), so it pays
		// decoder energy, unlike a FIFO.
		bd["buff"] = float64(ev.BuffWrites)*ramWrite(g.Entries, g.PayloadBits) +
			float64(ev.BuffReads)*ramRead(g.Entries, g.PayloadBits)
		bd["regs_ready"] = float64(ev.RegsReadyReads) *
			(eBitTable*float64(isa.NumPhysicalRegs) + eBitBase)
		bd["select"] = float64(ev.SelectEntries)*eSelectCell +
			float64(ev.SelectOps)*eSelectBase
		// Chain latency table: whole-table read+write each cycle the
		// queue is active; each entry holds a saturating counter wide
		// enough for the largest latency (5 bits) plus the 2-bit code
		// compression.
		chainBits := 7
		chains := g.Chains
		if chains <= 0 {
			chains = g.Entries
		}
		bd["chains"] = float64(ev.ChainReads+ev.ChainWrites) *
			(eCellRead*float64(chains)*float64(chainBits) + eRAMBase/2)
		bd["reg"] = float64(ev.SelRegWrites) * eLatch
	}

	// Issue crossbar: energy per issue scales with the number of entry
	// sources and reachable units the wires must span.
	for k := range ev.MuxIssues {
		if ev.MuxIssues[k] == 0 || g.FUFanout[k] == 0 {
			continue
		}
		perIssue := eMuxPerSrc * float64(g.Entries) * float64(g.FUFanout[k])
		bd[muxLabels[k]] = float64(ev.MuxIssues[k]) * perIssue
	}
	return bd
}

// qrenameBits is the width of a queue-map table entry: a queue identifier
// plus, for MixBUFF, a chain identifier and a short sequence tag.
func qrenameBits(g Geometry) int {
	bits := log2ceil(g.Queues) + 1
	if g.Style == StyleBuff {
		chains := g.Chains
		if chains <= 0 {
			chains = g.Entries
		}
		bits += log2ceil(chains) + 6
	} else {
		bits += 4
	}
	return bits
}

func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
