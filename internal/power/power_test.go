package power

import (
	"strings"
	"testing"

	"distiq/internal/isa"
)

func camGeom() Geometry {
	return Geometry{
		Style: StyleCAM, Queues: 1, Entries: 64, Banks: 8,
		TagBits: 8, PayloadBits: 80,
		FUFanout: [isa.NumFUKinds]int{8, 4, 0, 0},
	}
}

func fifoGeom() Geometry {
	return Geometry{
		Style: StyleFIFO, Queues: 8, Entries: 8,
		TagBits: 8, PayloadBits: 80,
		FUFanout: [isa.NumFUKinds]int{1, 1, 0, 0},
	}
}

func buffGeom() Geometry {
	return Geometry{
		Style: StyleBuff, Queues: 8, Entries: 16, Chains: 8,
		TagBits: 8, PayloadBits: 80,
		FUFanout: [isa.NumFUKinds]int{0, 0, 1, 1},
	}
}

func TestEventsAddAndReset(t *testing.T) {
	a := &Events{WakeupBroadcasts: 1, IQReads: 2, FIFOWrites: 3}
	a.MuxIssues[isa.FPAddUnit] = 7
	b := &Events{WakeupBroadcasts: 10, IQReads: 20, FIFOWrites: 30}
	b.MuxIssues[isa.FPAddUnit] = 70
	a.Add(b)
	if a.WakeupBroadcasts != 11 || a.IQReads != 22 || a.FIFOWrites != 33 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.MuxIssues[isa.FPAddUnit] != 77 {
		t.Fatal("MuxIssues not added")
	}
	a.Reset()
	if *a != (Events{}) {
		t.Fatal("Reset incomplete")
	}
}

func TestWakeupDominatesCAMBaseline(t *testing.T) {
	// With activity proportions typical of the simulations (a broadcast
	// per completing instruction, tens of unready operands per
	// broadcast), wakeup must dominate the baseline breakdown as in
	// Figure 9.
	c := NewCalc(camGeom())
	ev := &Events{
		WakeupBroadcasts: 1000,
		WakeupCAMCells:   40 * 1000,
		IQWrites:         1000,
		IQReads:          1000,
		SelectOps:        1000,
		SelectEntries:    30 * 1000,
	}
	ev.MuxIssues[isa.IntALUUnit] = 700
	ev.MuxIssues[isa.IntMulUnit] = 100
	bd := c.Energy(ev)
	if bd["wakeup"] <= bd["buff"] || bd["wakeup"] <= bd["select"] {
		t.Fatalf("wakeup not dominant: %v", bd)
	}
	frac := bd["wakeup"] / bd.Total()
	if frac < 0.4 || frac > 0.9 {
		t.Fatalf("wakeup fraction %.2f outside Figure 9 ballpark", frac)
	}
}

func TestDistributedFIFOFarCheaperThanCAM(t *testing.T) {
	// Per dispatched+issued instruction, the FIFO organization must be
	// several times cheaper than the CAM baseline (Figure 13 shows
	// roughly a 4-5x energy reduction).
	camCalc, fifoCalc := NewCalc(camGeom()), NewCalc(fifoGeom())
	n := uint64(1000)
	camEv := &Events{
		WakeupBroadcasts: n, WakeupCAMCells: 35 * n,
		IQWrites: n, IQReads: n,
		SelectOps: n, SelectEntries: 30 * n,
	}
	camEv.MuxIssues[isa.IntALUUnit] = n
	fifoEv := &Events{
		QRenameReads: 2 * n, QRenameWrites: n,
		FIFOReads: n, FIFOWrites: n,
		RegsReadyReads: 2 * n,
	}
	fifoEv.MuxIssues[isa.IntALUUnit] = n
	ec, ef := camCalc.Energy(camEv).Total(), fifoCalc.Energy(fifoEv).Total()
	if ef*2.5 > ec {
		t.Fatalf("FIFO energy %.0f not well below CAM %.0f", ef, ec)
	}
}

func TestMuxEnergyScalesWithFanout(t *testing.T) {
	g1 := camGeom()
	g2 := camGeom()
	g2.FUFanout[isa.IntALUUnit] = 1
	ev := &Events{}
	ev.MuxIssues[isa.IntALUUnit] = 100
	e1 := NewCalc(g1).Energy(ev)["MuxIntALU"]
	e2 := NewCalc(g2).Energy(ev)["MuxIntALU"]
	if e1 <= e2*7 {
		t.Fatalf("8-way fanout %.1f not ~8x 1-way %.1f", e1, e2)
	}
}

func TestBuffBreakdownHasPaperComponents(t *testing.T) {
	c := NewCalc(buffGeom())
	ev := &Events{
		QRenameReads: 10, QRenameWrites: 5,
		BuffReads: 7, BuffWrites: 9, RegsReadyReads: 14,
		SelectOps: 8, SelectEntries: 50,
		ChainReads: 8, ChainWrites: 8, SelRegWrites: 8,
	}
	ev.MuxIssues[isa.FPAddUnit] = 4
	bd := c.Energy(ev)
	for _, label := range []string{"Qrename", "buff", "regs_ready", "select", "chains", "reg", "MuxFPALU"} {
		if bd[label] <= 0 {
			t.Errorf("component %s missing from MixBUFF breakdown: %v", label, bd)
		}
	}
}

func TestZeroEventsZeroEnergy(t *testing.T) {
	for _, g := range []Geometry{camGeom(), fifoGeom(), buffGeom()} {
		if tot := NewCalc(g).Energy(&Events{}).Total(); tot != 0 {
			t.Errorf("zero events produced %.2f pJ for %+v", tot, g)
		}
	}
}

func TestBreakdownHelpers(t *testing.T) {
	a := Breakdown{"x": 1, "y": 2}
	b := Breakdown{"y": 3, "z": 4}
	a.Add(b)
	if a["x"] != 1 || a["y"] != 5 || a["z"] != 4 {
		t.Fatalf("Add wrong: %v", a)
	}
	if a.Total() != 10 {
		t.Fatalf("Total = %v", a.Total())
	}
	a.Scale(2)
	if a.Total() != 20 {
		t.Fatalf("Scale wrong: %v", a)
	}
	s := a.String()
	if !strings.Contains(s, "total") || !strings.Contains(s, "y") {
		t.Fatalf("String output missing content:\n%s", s)
	}
}

func TestBankingReducesWakeupDrive(t *testing.T) {
	ev := &Events{WakeupBroadcasts: 1000}
	unbanked := camGeom()
	unbanked.Banks = 1
	eb := NewCalc(camGeom()).Energy(ev)["wakeup"]
	eu := NewCalc(unbanked).Energy(ev)["wakeup"]
	if eb >= eu {
		t.Fatalf("banked drive %.1f not below unbanked %.1f", eb, eu)
	}
}

func TestCalcPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	NewCalc(Geometry{Style: StyleCAM})
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 64: 6}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRAMEnergyMonotonicInGeometry(t *testing.T) {
	// More entries or wider payloads must never cost less energy per
	// access; a FIFO access must undercut a same-size RAM access (no
	// decoder).
	for _, entries := range []int{8, 16, 64, 256} {
		for _, bits := range []int{20, 80, 200} {
			small := ramRead(entries, bits)
			if big := ramRead(entries*2, bits); big <= small {
				t.Fatalf("ramRead not monotone in entries (%d,%d)", entries, bits)
			}
			if wide := ramRead(entries, bits*2); wide <= small {
				t.Fatalf("ramRead not monotone in bits (%d,%d)", entries, bits)
			}
			if w := ramWrite(entries, bits); w <= 0 {
				t.Fatalf("ramWrite non-positive")
			}
			if f := fifoAccess(bits); f >= small {
				t.Fatalf("fifoAccess(%d) = %v not below ramRead(%d,%d) = %v",
					bits, f, entries, bits, small)
			}
		}
	}
}

func TestCAMEnergyPerEventScales(t *testing.T) {
	// Doubling the queue size must increase per-broadcast wakeup energy
	// (longer tag lines) while per-cell compare energy stays constant.
	ev := &Events{WakeupBroadcasts: 100, WakeupCAMCells: 1000}
	small := camGeom()
	big := camGeom()
	big.Entries = 128
	eSmall := NewCalc(small).Energy(ev)["wakeup"]
	eBig := NewCalc(big).Energy(ev)["wakeup"]
	if eBig <= eSmall {
		t.Fatalf("wakeup energy did not grow with queue size: %v vs %v", eSmall, eBig)
	}
}

func TestQrenameBitsGrowWithChains(t *testing.T) {
	fifo := fifoGeom()
	buff := buffGeom()
	if qrenameBits(buff) <= qrenameBits(fifo) {
		t.Fatal("MixBUFF map entries must be wider (chain id + sequence tag)")
	}
}
