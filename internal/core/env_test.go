package core

import (
	"distiq/internal/isa"
)

// fakeEnv is a controllable Env for scheme unit tests. Readiness is keyed
// by (fp, preg); TryIssue succeeds unless the instruction is vetoed, and
// records issue order.
type fakeEnv struct {
	cycle    int64
	notReady map[[2]int32]bool // {domIdx, preg} -> blocked
	veto     map[uint64]bool   // seq -> TryIssue returns false
	issued   []*isa.Inst
	budget   int // optional cap enforced inside TryIssue (<=0: unlimited)
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		notReady: map[[2]int32]bool{},
		veto:     map[uint64]bool{},
		budget:   -1,
	}
}

func (e *fakeEnv) Cycle() int64 { return e.cycle }

func (e *fakeEnv) key(fp bool, preg int16) [2]int32 {
	d := int32(0)
	if fp {
		d = 1
	}
	return [2]int32{d, int32(preg)}
}

func (e *fakeEnv) block(fp bool, preg int16)   { e.notReady[e.key(fp, preg)] = true }
func (e *fakeEnv) unblock(fp bool, preg int16) { delete(e.notReady, e.key(fp, preg)) }

func (e *fakeEnv) OperandReady(fp bool, preg int16) bool {
	return !e.notReady[e.key(fp, preg)]
}

func (e *fakeEnv) TryIssue(in *isa.Inst) bool {
	if e.veto[in.Seq] {
		return false
	}
	if e.budget == 0 {
		return false
	}
	if e.budget > 0 {
		e.budget--
	}
	e.issued = append(e.issued, in)
	in.Issued = true
	return true
}

func (e *fakeEnv) Older(a, b uint32) bool {
	if a == b {
		return false
	}
	return (b-a)&511 < 256
}

// mkInst builds a minimal instruction for scheme tests. Sources and dest
// use the same register number for logical and physical (tests do not
// rename).
func mkInst(seq uint64, class isa.Class, src1, src2, dest int16) *isa.Inst {
	in := &isa.Inst{
		Seq: seq, Class: class,
		Src1: src1, Src2: src2, Dest: dest,
	}
	fp := class.Domain() == isa.FPDomain
	in.Src1FP, in.Src2FP, in.DestFP = fp, fp, fp
	in.ResetMicro()
	in.PSrc1, in.PSrc2, in.PDest = src1, src2, dest
	in.AgeID = uint32(seq) & 511
	return in
}

func defaultOpts(d isa.Domain) Options {
	return Options{
		Domain:    d,
		Latencies: isa.DefaultLatencies(),
		MemHitLat: 2,
		FUCounts:  [isa.NumFUKinds]int{8, 4, 4, 4},
	}
}
