package core

import "fmt"

// Config names a complete issue-logic configuration: one scheme per
// domain plus the functional-unit wiring. Names follow the paper's
// convention Scheme_AxB_CxD (A integer queues of B entries, C FP queues of
// D entries).
type Config struct {
	Name          string
	Int, FP       DomainConfig
	DistributedFU bool
}

// Validate checks both domains.
func (c Config) Validate() error {
	if err := c.Int.Validate(); err != nil {
		return fmt.Errorf("%s int: %w", c.Name, err)
	}
	if err := c.FP.Validate(); err != nil {
		return fmt.Errorf("%s fp: %w", c.Name, err)
	}
	return nil
}

// Unbounded returns the section 3 reference: conventional issue queues as
// large as the reorder buffer, so dispatch never stalls for queue space.
func Unbounded() Config {
	return Config{
		Name: "IQ_unbounded",
		Int:  DomainConfig{Kind: KindCAM, Queues: 1, Entries: 256},
		FP:   DomainConfig{Kind: KindCAM, Queues: 1, Entries: 256},
	}
}

// Baseline64 returns IQ_64_64, the evaluation baseline: 64-entry integer
// and FP CAM queues, multi-banked, waking only unready operands.
func Baseline64() Config {
	return Config{
		Name: "IQ_64_64",
		Int:  DomainConfig{Kind: KindCAM, Queues: 1, Entries: 64},
		FP:   DomainConfig{Kind: KindCAM, Queues: 1, Entries: 64},
	}
}

// IssueFIFOCfg returns IssueFIFO_AxB_CxD.
func IssueFIFOCfg(a, b, c, d int) Config {
	return Config{
		Name: fmt.Sprintf("IssueFIFO_%dx%d_%dx%d", a, b, c, d),
		Int:  DomainConfig{Kind: KindIssueFIFO, Queues: a, Entries: b},
		FP:   DomainConfig{Kind: KindIssueFIFO, Queues: c, Entries: d},
	}
}

// LatFIFOCfg returns LatFIFO_AxB_CxD: integer queues remain IssueFIFO,
// FP queues are placed by estimated issue time.
func LatFIFOCfg(a, b, c, d int) Config {
	return Config{
		Name: fmt.Sprintf("LatFIFO_%dx%d_%dx%d", a, b, c, d),
		Int:  DomainConfig{Kind: KindIssueFIFO, Queues: a, Entries: b},
		FP:   DomainConfig{Kind: KindLatFIFO, Queues: c, Entries: d},
	}
}

// MixBUFFCfg returns MixBUFF_AxB_CxD with the given chains per FP queue
// (0 = unbounded, as in the section 3 sweep).
func MixBUFFCfg(a, b, c, d, chains int) Config {
	return Config{
		Name: fmt.Sprintf("MixBUFF_%dx%d_%dx%d", a, b, c, d),
		Int:  DomainConfig{Kind: KindIssueFIFO, Queues: a, Entries: b},
		FP:   DomainConfig{Kind: KindMixBUFF, Queues: c, Entries: d, Chains: chains},
	}
}

// IFDistr returns IF_distr: IssueFIFO_8x8_8x16 with distributed
// functional units.
func IFDistr() Config {
	c := IssueFIFOCfg(8, 8, 8, 16)
	c.Name = "IF_distr"
	c.DistributedFU = true
	return c
}

// MBDistr returns MB_distr: MixBUFF_8x8_8x16, 8 chains per FP queue,
// distributed functional units — the paper's proposed configuration.
func MBDistr() Config {
	c := MixBUFFCfg(8, 8, 8, 16, 8)
	c.Name = "MB_distr"
	c.DistributedFU = true
	return c
}

// AdaptiveBaseline64 returns IQ_64_64 with Folegnani-González dynamic
// resizing on both queues — an extension configuration for quantifying how
// much baseline energy adaptivity recovers without a distributed design.
func AdaptiveBaseline64() Config {
	return Config{
		Name: "IQ_64_64_adaptive",
		Int:  DomainConfig{Kind: KindAdaptiveCAM, Queues: 1, Entries: 64},
		FP:   DomainConfig{Kind: KindAdaptiveCAM, Queues: 1, Entries: 64},
	}
}

// PreSchedCfg returns PreSched_AxB_D+L1: IssueFIFO integer queues (A x B)
// and the Michaud-Seznec two-level FP organization — a D-entry wakeup-free
// preschedule buffer promoting into an l1-entry conventional CAM queue
// (l1 <= 0 selects the default of 16). The DomainConfig.Chains field
// carries the first-level size for this kind.
func PreSchedCfg(a, b, d, l1 int) Config {
	if l1 <= 0 {
		l1 = 16
	}
	return Config{
		Name: fmt.Sprintf("PreSched_%dx%d_%d+%d", a, b, d, l1),
		Int:  DomainConfig{Kind: KindIssueFIFO, Queues: a, Entries: b},
		FP:   DomainConfig{Kind: KindPreSched, Queues: 1, Entries: d, Chains: l1},
	}
}
