// Package core implements the issue-queue organizations studied in the
// paper: the conventional CAM/RAM baseline, Palacharla-style dependence
// FIFOs (IssueFIFO), latency-placed FIFOs (LatFIFO) and the paper's
// contribution, MixBUFF — multi-chain buffers selected by compressed
// latency codes concatenated with age identifiers — plus the distributed
// functional-unit wiring of IF_distr and MB_distr.
//
// A Scheme instance manages one dispatch domain (integer or floating
// point). It decides where dispatched instructions are placed and which
// instructions are offered for issue each cycle; the pipeline owns operand
// readiness, functional units and memory, which schemes reach through the
// Env interface. Schemes also count the microarchitectural events the
// power model converts into energy.
package core

import (
	"fmt"

	"distiq/internal/isa"
	"distiq/internal/power"
)

// Env is the pipeline interface available to issue schemes.
type Env interface {
	// Cycle returns the current simulation cycle.
	Cycle() int64
	// OperandReady reports whether a physical register's value is
	// usable this cycle through the bypass network.
	OperandReady(fp bool, preg int16) bool
	// TryIssue attempts to issue the instruction this cycle: it checks
	// operand readiness, memory ordering (loads), issue width and
	// functional-unit availability (honoring the distributed binding
	// through in.QueueID) and, on success, schedules execution and
	// returns true. The scheme must then remove the instruction from
	// its structures.
	TryIssue(in *isa.Inst) bool
	// Older reports whether age identifier a is older than b.
	Older(a, b uint32) bool
}

// Scheme is one domain's issue-queue organization.
type Scheme interface {
	// Name identifies the organization ("CAM", "IssueFIFO", ...).
	Name() string
	// Dispatch places in into the scheme's structures, returning false
	// (with no state change) when dispatch must stall.
	Dispatch(env Env, in *isa.Inst) bool
	// Issue is called once per cycle; the scheme offers instructions to
	// env.TryIssue in its selection order, stopping at the budget, and
	// returns how many issued.
	Issue(env Env, budget int) int
	// OnComplete notifies the scheme that a result was produced
	// (destFP gives the destination register file), for wakeup
	// accounting in CAM organizations.
	OnComplete(env Env, destFP bool)
	// OnMispredictResolved is called when a mispredicted branch
	// resolves; map-table-based schemes clear their tables.
	OnMispredictResolved()
	// Occupancy returns the number of instructions currently held.
	Occupancy() int
	// Capacity returns the total number of entries.
	Capacity() int
	// Events exposes the scheme's energy event counters.
	Events() *power.Events
	// Geometry describes the scheme to the power model.
	Geometry() power.Geometry
}

// Kind selects an issue-queue organization.
type Kind uint8

const (
	// KindCAM is the conventional out-of-order CAM/RAM queue.
	KindCAM Kind = iota
	// KindIssueFIFO is Palacharla's dependence-based FIFO organization.
	KindIssueFIFO
	// KindLatFIFO places instructions in FIFOs by estimated issue time.
	KindLatFIFO
	// KindMixBUFF is the paper's buffer-of-chains organization.
	KindMixBUFF
	// KindAdaptiveCAM is the CAM queue with Folegnani-González dynamic
	// resizing (the paper's reference [14]), provided as an extension
	// for baseline-energy ablations.
	KindAdaptiveCAM
	// KindPreSched is Michaud-Seznec data-flow prescheduling (the
	// paper's reference [18]): a large wakeup-free preschedule buffer
	// promoting into a small first-level CAM queue. Extension.
	KindPreSched
)

var kindNames = map[Kind]string{
	KindCAM: "CAM", KindIssueFIFO: "IssueFIFO",
	KindLatFIFO: "LatFIFO", KindMixBUFF: "MixBUFF",
	KindAdaptiveCAM: "AdaptiveCAM", KindPreSched: "PreSched",
}

// String returns the organization name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// DomainConfig configures one domain's scheme.
type DomainConfig struct {
	Kind    Kind
	Queues  int // number of queues (1 for CAM)
	Entries int // entries per queue
	// Chains bounds chains per queue for MixBUFF; 0 means unbounded
	// (limited only by the entry count, since every instruction
	// occupies an entry).
	Chains int
	// Custom, when non-nil, overrides Kind and builds a user-defined
	// scheme — the extension point for experimenting with new issue
	// logic organizations against the same pipeline and workloads.
	Custom func(DomainConfig, Options) (Scheme, error)

	// Ablation switches (all false in the paper's configurations):
	//
	// KeepMapOnMispredict disables clearing the register-to-queue map
	// table when a misprediction resolves. The paper found clearing
	// costs nothing and simplifies the hardware; this switch quantifies
	// that claim on this simulator.
	KeepMapOnMispredict bool
	// FlatSelectPriority removes MixBUFF's first-time-over-delayed
	// priority: ready chains compete by age alone, quantifying the
	// paper's selection heuristic.
	FlatSelectPriority bool
}

// Total returns the total entry count of the domain.
func (d DomainConfig) Total() int { return d.Queues * d.Entries }

// Validate checks the configuration.
func (d DomainConfig) Validate() error {
	if d.Queues <= 0 || d.Entries <= 0 {
		return fmt.Errorf("core: need positive queues/entries, got %dx%d", d.Queues, d.Entries)
	}
	if (d.Kind == KindCAM || d.Kind == KindAdaptiveCAM) && d.Queues != 1 && d.Custom == nil {
		return fmt.Errorf("core: CAM domain uses a single queue, got %d", d.Queues)
	}
	if d.Chains < 0 || d.Chains > d.Entries {
		return fmt.Errorf("core: chains %d outside [0,%d]", d.Chains, d.Entries)
	}
	return nil
}

// Options carries cross-cutting construction parameters.
type Options struct {
	Domain      isa.Domain
	Latencies   isa.Latencies
	MemHitLat   int // L1D hit latency, assumed for loads by estimators
	Distributed bool
	FUCounts    [isa.NumFUKinds]int
	// Estimator, when non-nil, is the shared dispatch-time issue-cycle
	// estimator (required by LatFIFO).
	Estimator *Estimator
}

// fanout computes the crossbar fanout per FU kind for the power model.
func (o Options) fanout() [isa.NumFUKinds]int {
	var f [isa.NumFUKinds]int
	kinds := []isa.FUKind{isa.IntALUUnit, isa.IntMulUnit}
	if o.Domain == isa.FPDomain {
		kinds = []isa.FUKind{isa.FPAddUnit, isa.FPMulUnit}
	}
	for _, k := range kinds {
		if o.Distributed {
			f[k] = 1
		} else {
			f[k] = o.FUCounts[k]
		}
	}
	return f
}

// New constructs a scheme for one domain.
func New(cfg DomainConfig, opt Options) (Scheme, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Custom != nil {
		return cfg.Custom(cfg, opt)
	}
	switch cfg.Kind {
	case KindCAM:
		return newCAM(cfg, opt), nil
	case KindAdaptiveCAM:
		return newAdaptiveCAM(cfg, opt), nil
	case KindPreSched:
		if opt.Estimator == nil {
			return nil, fmt.Errorf("core: PreSched requires an estimator")
		}
		return newPreSched(cfg, opt), nil
	case KindIssueFIFO:
		return newIssueFIFO(cfg, opt), nil
	case KindLatFIFO:
		if opt.Estimator == nil {
			return nil, fmt.Errorf("core: LatFIFO requires an estimator")
		}
		return newLatFIFO(cfg, opt), nil
	case KindMixBUFF:
		return newMixBUFF(cfg, opt), nil
	}
	return nil, fmt.Errorf("core: unknown scheme kind %v", cfg.Kind)
}

// OperandsReady reports whether in can begin execution this cycle: every
// register source must be usable, except a store's data operand (Src2) —
// the paper splits stores into address computation (issued as soon as the
// address register is ready) and the memory write (performed at commit,
// by which time in-order retirement guarantees the data).
func OperandsReady(env Env, in *isa.Inst) bool {
	if in.PSrc1 != isa.NoReg && !env.OperandReady(in.Src1FP, in.PSrc1) {
		return false
	}
	if in.Class == isa.Store {
		return true
	}
	if in.PSrc2 != isa.NoReg && !env.OperandReady(in.Src2FP, in.PSrc2) {
		return false
	}
	return true
}

// latencyOf returns the execution latency a scheme assumes for pacing
// purposes: fixed operation latencies, with the L1 hit latency added for
// loads (the paper's assumption).
func latencyOf(in *isa.Inst, lat isa.Latencies, memHit int) int {
	l := lat[in.Class]
	if in.Class == isa.Load {
		l += memHit
	}
	return l
}
