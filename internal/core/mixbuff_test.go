package core

import (
	"testing"

	"distiq/internal/isa"
)

func newTestMixBUFF(queues, entries, chains int) *mixBUFF {
	s, err := New(DomainConfig{Kind: KindMixBUFF, Queues: queues, Entries: entries, Chains: chains},
		defaultOpts(isa.FPDomain))
	if err != nil {
		panic(err)
	}
	return s.(*mixBUFF)
}

func fpInst(seq uint64, src1, src2, dest int16) *isa.Inst {
	return mkInst(seq, isa.FPAdd, src1, src2, dest)
}

func TestMixBUFFDependentJoinsChain(t *testing.T) {
	m := newTestMixBUFF(2, 8, 4)
	env := newFakeEnv()
	prod := fpInst(0, isa.NoReg, isa.NoReg, 7)
	cons := fpInst(1, 7, isa.NoReg, 8)
	m.Dispatch(env, prod)
	m.Dispatch(env, cons)
	if prod.QueueID != cons.QueueID || prod.ChainID != cons.ChainID {
		t.Fatalf("consumer (%d,%d) not in producer chain (%d,%d)",
			cons.QueueID, cons.ChainID, prod.QueueID, prod.ChainID)
	}
}

func TestMixBUFFChainMajorAllocation(t *testing.T) {
	// Independent instructions must allocate chain 0 of queue 0, chain 0
	// of queue 1, chain 1 of queue 0, chain 1 of queue 1, ... (paper's
	// balancing order).
	m := newTestMixBUFF(2, 8, 3)
	env := newFakeEnv()
	want := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2}}
	for i, w := range want {
		in := fpInst(uint64(i), isa.NoReg, isa.NoReg, int16(i))
		if !m.Dispatch(env, in) {
			t.Fatalf("dispatch %d stalled", i)
		}
		if in.QueueID != w[0] || in.ChainID != w[1] {
			t.Fatalf("inst %d placed (%d,%d), want (%d,%d)",
				i, in.QueueID, in.ChainID, w[0], w[1])
		}
	}
	// All chains busy: the next independent instruction stalls.
	if m.Dispatch(env, fpInst(99, isa.NoReg, isa.NoReg, 30)) {
		t.Fatal("dispatch succeeded with all chains busy")
	}
}

func TestMixBUFFMultipleChainsShareQueue(t *testing.T) {
	m := newTestMixBUFF(1, 8, 4)
	env := newFakeEnv()
	a := fpInst(0, isa.NoReg, isa.NoReg, 1)
	b := fpInst(1, isa.NoReg, isa.NoReg, 2)
	m.Dispatch(env, a)
	m.Dispatch(env, b)
	if a.QueueID != 0 || b.QueueID != 0 {
		t.Fatal("single queue not used")
	}
	if a.ChainID == b.ChainID {
		t.Fatal("independent chains merged")
	}
}

func TestMixBUFFOneIssuePerQueuePerCycle(t *testing.T) {
	m := newTestMixBUFF(1, 8, 4)
	env := newFakeEnv()
	m.Dispatch(env, fpInst(0, isa.NoReg, isa.NoReg, 1))
	m.Dispatch(env, fpInst(1, isa.NoReg, isa.NoReg, 2))
	env.cycle = 1
	if n := m.Issue(env, 8); n != 1 {
		t.Fatalf("queue issued %d in one cycle, want 1", n)
	}
	env.cycle = 2
	if n := m.Issue(env, 8); n != 1 {
		t.Fatalf("second cycle issued %d, want 1", n)
	}
}

func TestMixBUFFChainPacingByLatency(t *testing.T) {
	// Two dependent FPAdds (latency 2): the consumer must issue exactly
	// two cycles after the producer.
	m := newTestMixBUFF(1, 8, 4)
	env := newFakeEnv()
	prod := fpInst(0, isa.NoReg, isa.NoReg, 7)
	cons := fpInst(1, 7, isa.NoReg, 8)
	m.Dispatch(env, prod)
	m.Dispatch(env, cons)
	env.block(true, 8) // nothing beyond these two

	env.cycle = 1
	if n := m.Issue(env, 8); n != 1 || env.issued[0] != prod {
		t.Fatal("producer did not issue first")
	}
	// Result usable at cycle 3 (issue 1 + latency 2). The consumer's
	// operand becomes ready then; unblock the env model accordingly.
	env.block(true, 7)
	env.cycle = 2
	if n := m.Issue(env, 8); n != 0 {
		t.Fatal("consumer issued before chain countdown expired")
	}
	env.unblock(true, 7)
	env.cycle = 3
	if n := m.Issue(env, 8); n != 1 || env.issued[1] != cons {
		t.Fatal("consumer did not issue when chain became ready")
	}
}

func TestSelectPaperExample(t *testing.T) {
	// Reproduces Figure 5: one queue holding six instructions across
	// four chains. Chain latency counters: chain 0 finished (delayed
	// code 01), chains 1 and 2 finishing now (first-time code 00),
	// chain 3 four cycles away (code 11). Ages follow the figure:
	// i..i+5 = 5,6,7,8,9,10 with entries
	//   i   -> chain 0, i+1 -> chain 1, i+2 -> chain 0,
	//   i+3 -> chain 2, i+4 -> chain 2, i+5 -> chain 3.
	// Expected selection: i+1 (oldest among the chains with code 00).
	m := newTestMixBUFF(1, 8, 4)
	env := newFakeEnv()
	env.cycle = 100

	mkEntry := func(seq uint64, age uint32, chain int) *isa.Inst {
		in := fpInst(seq, isa.NoReg, isa.NoReg, isa.NoReg)
		in.AgeID = age
		in.QueueID, in.ChainID = 0, chain
		m.queues[0] = append(m.queues[0], in)
		m.chains[0][chain].busy = true
		m.chains[0][chain].pending++
		m.occ++
		return in
	}
	mkEntry(0, 5, 0)       // i
	i1 := mkEntry(1, 6, 1) // i+1
	mkEntry(2, 7, 0)       // i+2
	mkEntry(3, 8, 2)       // i+3
	mkEntry(4, 9, 2)       // i+4
	mkEntry(5, 10, 3)      // i+5
	m.lastTick = env.cycle // suppress tick; codes set manually below
	m.chains[0][0].countdown = 0
	m.chains[0][0].readySince = 90 // finished a while ago: delayed
	m.chains[0][1].countdown = 0
	m.chains[0][1].readySince = 100 // first time this cycle
	m.chains[0][2].countdown = 0
	m.chains[0][2].readySince = 100
	m.chains[0][3].countdown = 4 // not ready

	if n := m.Issue(env, 8); n != 1 {
		t.Fatalf("issued %d, want 1", n)
	}
	if env.issued[0] != i1 {
		t.Fatalf("selected seq %d, want i+1", env.issued[0].Seq)
	}
}

func TestMixBUFFFirstTimeBeatsDelayed(t *testing.T) {
	// A delayed instruction (chain long since ready) must lose to a
	// younger instruction whose chain became ready this cycle.
	m := newTestMixBUFF(1, 8, 4)
	env := newFakeEnv()
	env.cycle = 50
	old := fpInst(0, isa.NoReg, isa.NoReg, isa.NoReg)
	old.AgeID = 1
	old.QueueID, old.ChainID = 0, 0
	young := fpInst(1, isa.NoReg, isa.NoReg, isa.NoReg)
	young.AgeID = 2
	young.QueueID, young.ChainID = 0, 1
	m.queues[0] = append(m.queues[0], old, young)
	m.chains[0][0] = chainState{busy: true, pending: 1, countdown: 0, readySince: 10}
	m.chains[0][1] = chainState{busy: true, pending: 1, countdown: 0, readySince: 50}
	m.occ = 2
	m.lastTick = env.cycle

	m.Issue(env, 8)
	if len(env.issued) != 1 || env.issued[0] != young {
		t.Fatal("first-time-ready instruction did not have priority")
	}
}

func TestMixBUFFChainFreedAndGenerationGuards(t *testing.T) {
	m := newTestMixBUFF(1, 8, 2)
	env := newFakeEnv()
	prod := fpInst(0, isa.NoReg, isa.NoReg, 7)
	m.Dispatch(env, prod)
	env.cycle = 1
	m.Issue(env, 8) // issues prod; chain 0 now empty and freed
	if m.chains[0][0].busy {
		t.Fatal("chain not freed after last instruction issued")
	}
	// A new independent instruction reuses chain 0 (new generation).
	other := fpInst(1, isa.NoReg, isa.NoReg, 9)
	m.Dispatch(env, other)
	if other.ChainID != 0 {
		t.Fatalf("expected chain 0 reuse, got %d", other.ChainID)
	}
	// A consumer of the *old* chain's register must not append to the
	// recycled chain: the generation check forces a fresh chain.
	cons := fpInst(2, 7, isa.NoReg, 8)
	m.Dispatch(env, cons)
	if cons.ChainID == 0 {
		t.Fatal("stale mapping appended to recycled chain")
	}
}

func TestMixBUFFAppendToChainWithIssuedTail(t *testing.T) {
	// The chain's last instruction has issued but the chain is still
	// busy (another instruction pending): a consumer of the issued
	// instruction may still append; pacing comes from the countdown.
	m := newTestMixBUFF(1, 8, 2)
	env := newFakeEnv()
	a := fpInst(0, isa.NoReg, isa.NoReg, 1)
	b := fpInst(1, 1, isa.NoReg, 2) // chain: a -> b
	m.Dispatch(env, a)
	m.Dispatch(env, b)
	env.cycle = 1
	m.Issue(env, 8) // a issues; b pending; chain busy
	c := fpInst(2, 2, isa.NoReg, 3)
	m.Dispatch(env, c)
	if c.ChainID != b.ChainID || c.QueueID != b.QueueID {
		t.Fatal("consumer did not append to busy chain")
	}
}

func TestMixBUFFQueueFullForcesNewChainElsewhere(t *testing.T) {
	m := newTestMixBUFF(2, 2, 2)
	env := newFakeEnv()
	a := fpInst(0, isa.NoReg, isa.NoReg, 1)
	b := fpInst(1, 1, isa.NoReg, 2)
	m.Dispatch(env, a)
	m.Dispatch(env, b) // queue 0 full
	c := fpInst(2, 2, isa.NoReg, 3)
	if !m.Dispatch(env, c) {
		t.Fatal("dispatch stalled although queue 1 has room")
	}
	if c.QueueID != 1 {
		t.Fatalf("consumer placed in queue %d, want 1", c.QueueID)
	}
}

func TestMixBUFFUnboundedChainsDefault(t *testing.T) {
	m := newTestMixBUFF(2, 16, 0)
	if m.chainN != 16 {
		t.Fatalf("unbounded chains = %d, want entries (16)", m.chainN)
	}
}

func TestMixBUFFRejectedSelectionKeepsEntry(t *testing.T) {
	m := newTestMixBUFF(1, 8, 4)
	env := newFakeEnv()
	in := fpInst(0, 7, isa.NoReg, 8)
	m.Dispatch(env, in)
	env.block(true, 7) // operand never ready
	env.cycle = 1
	if n := m.Issue(env, 8); n != 0 {
		t.Fatal("issued with unready operand")
	}
	if m.Occupancy() != 1 {
		t.Fatal("rejected instruction lost")
	}
	env.unblock(true, 7)
	env.cycle = 2
	if n := m.Issue(env, 8); n != 1 {
		t.Fatal("instruction did not issue once ready")
	}
}

func TestMixBUFFMispredictClearsTable(t *testing.T) {
	m := newTestMixBUFF(2, 8, 4)
	env := newFakeEnv()
	prod := fpInst(0, isa.NoReg, isa.NoReg, 7)
	m.Dispatch(env, prod)
	m.OnMispredictResolved()
	cons := fpInst(1, 7, isa.NoReg, 8)
	m.Dispatch(env, cons)
	if cons.ChainID == prod.ChainID && cons.QueueID == prod.QueueID {
		t.Fatal("consumer used cleared chain mapping")
	}
}

func TestMixBUFFEnergyEvents(t *testing.T) {
	m := newTestMixBUFF(2, 8, 4)
	env := newFakeEnv()
	m.Dispatch(env, fpInst(0, 1, 2, 7))
	ev := m.Events()
	if ev.QRenameReads != 2 || ev.QRenameWrites != 1 || ev.BuffWrites != 1 {
		t.Fatalf("dispatch events: %+v", ev)
	}
	env.cycle = 1
	m.Issue(env, 8)
	if ev.SelectOps != 1 || ev.ChainReads != 1 || ev.ChainWrites != 1 {
		t.Fatalf("issue events: %+v", ev)
	}
	if ev.BuffReads != 1 || ev.SelRegWrites != 1 {
		t.Fatalf("issue events: %+v", ev)
	}
}

func TestConfigNamesAndValidation(t *testing.T) {
	cases := map[string]Config{
		"IQ_64_64":            Baseline64(),
		"IQ_unbounded":        Unbounded(),
		"IssueFIFO_8x8_16x16": IssueFIFOCfg(8, 8, 16, 16),
		"LatFIFO_16x16_10x8":  LatFIFOCfg(16, 16, 10, 8),
		"MixBUFF_16x16_12x16": MixBUFFCfg(16, 16, 12, 16, 0),
		"IF_distr":            IFDistr(),
		"MB_distr":            MBDistr(),
	}
	for want, cfg := range cases {
		if cfg.Name != want {
			t.Errorf("name = %q, want %q", cfg.Name, want)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", want, err)
		}
	}
	if !MBDistr().DistributedFU || !IFDistr().DistributedFU {
		t.Error("distr configs must distribute FUs")
	}
	if MBDistr().FP.Chains != 8 {
		t.Error("MB_distr must use 8 chains per queue")
	}
	bad := Config{Name: "bad", Int: DomainConfig{Kind: KindCAM, Queues: 2, Entries: 4},
		FP: DomainConfig{Kind: KindCAM, Queues: 1, Entries: 4}}
	if bad.Validate() == nil {
		t.Error("multi-queue CAM validated")
	}
}

func TestNewSchemeErrors(t *testing.T) {
	if _, err := New(DomainConfig{Kind: KindLatFIFO, Queues: 2, Entries: 2},
		defaultOpts(isa.FPDomain)); err == nil {
		t.Error("LatFIFO without estimator did not error")
	}
	if _, err := New(DomainConfig{Kind: Kind(99), Queues: 1, Entries: 2},
		defaultOpts(isa.FPDomain)); err == nil {
		t.Error("unknown kind did not error")
	}
	if _, err := New(DomainConfig{Kind: KindCAM, Queues: 1, Entries: 0},
		defaultOpts(isa.FPDomain)); err == nil {
		t.Error("zero entries did not error")
	}
}
