package core

import (
	"distiq/internal/isa"
	"distiq/internal/power"
)

// Latency codes broadcast to the queue entries, one 2-bit value per chain
// (Figure 5). Lower values win selection; the age identifier breaks ties,
// so the concatenation code‖age selects the oldest instruction of the
// highest-priority chain with a plain minimum circuit.
//
// The paper defines the codes relative to its select-then-issue-next-cycle
// timing: 00 = the chain's last issued instruction finishes next cycle
// (first-time-ready consumers issue just in time), 01 = it already
// finished (a delayed consumer), 11 = two or more cycles remain. Our
// pipeline uses the standard atomic wakeup+select abstraction (issue takes
// effect in the selection cycle), so the same priorities are expressed as:
// codeFirstTime when the chain's result became usable exactly this cycle,
// codeDelayed when it became usable earlier, codeNotReady otherwise. The
// priority order — first-time ready over delayed over not-ready — is
// identical to the paper's.
const (
	codeFirstTime = 0 // paper's 00
	codeDelayed   = 1 // paper's 01
	codeNotReady  = 3 // paper's 11
)

// chainState is one chain of one queue: a saturating down-counter tracking
// when the last issued instruction of the chain completes, plus allocation
// bookkeeping.
type chainState struct {
	busy       bool
	gen        uint32 // generation, invalidates stale map entries
	lastSeq    uint64 // youngest instruction dispatched into the chain
	pending    int    // instructions of this chain still in the queue
	countdown  int    // cycles until the last issued instruction's result
	readySince int64  // cycle the countdown reached zero
}

// mixChainMapEntry records, per register, the queue/chain whose last
// instruction produces it.
type mixChainMapEntry struct {
	queue, chain int
	seq          uint64
	gen          uint32
	valid        bool
}

// mixBUFF is the paper's proposed organization: each queue is a small RAM
// buffer holding several dependence chains; a per-queue chain latency
// table paces issue without wakeup, and the selection logic picks one
// instruction per queue per cycle by minimum code‖age.
type mixBUFF struct {
	opt    Options
	cfg    DomainConfig
	chainN int // chains per queue

	queues [][]*isa.Inst
	chains [][]chainState
	table  map[regKey]mixChainMapEntry
	ev     power.Events
	occ    int

	lastTick   int64 // guards the once-per-cycle countdown update
	candidates []*isa.Inst
}

func newMixBUFF(cfg DomainConfig, opt Options) *mixBUFF {
	chainN := cfg.Chains
	if chainN <= 0 {
		// "Unbounded" chains: an instruction always occupies an entry,
		// so entry count bounds the chains a queue can ever need.
		chainN = cfg.Entries
	}
	m := &mixBUFF{
		opt:        opt,
		cfg:        cfg,
		chainN:     chainN,
		queues:     make([][]*isa.Inst, cfg.Queues),
		chains:     make([][]chainState, cfg.Queues),
		table:      make(map[regKey]mixChainMapEntry),
		lastTick:   -1,
		candidates: make([]*isa.Inst, 0, cfg.Queues),
	}
	for i := range m.queues {
		m.queues[i] = make([]*isa.Inst, 0, cfg.Entries)
		m.chains[i] = make([]chainState, chainN)
	}
	return m
}

func (m *mixBUFF) Name() string          { return "MixBUFF" }
func (m *mixBUFF) Occupancy() int        { return m.occ }
func (m *mixBUFF) Capacity() int         { return m.cfg.Total() }
func (m *mixBUFF) Events() *power.Events { return &m.ev }

func (m *mixBUFF) Geometry() power.Geometry {
	return power.Geometry{
		Style:       power.StyleBuff,
		Queues:      m.cfg.Queues,
		Entries:     m.cfg.Entries,
		Chains:      m.chainN,
		TagBits:     8,
		PayloadBits: 80,
		FUFanout:    m.opt.fanout(),
	}
}

// Dispatch implements the paper's placement: an instruction joins its
// predecessor's chain only if the predecessor is the last instruction of
// that chain and the queue has room; otherwise the lowest free chain
// identifier across queues is allocated (chain-major order, balancing busy
// chains per queue); otherwise dispatch stalls.
func (m *mixBUFF) Dispatch(env Env, in *isa.Inst) bool {
	m.ev.QRenameReads += uint64(in.NumSources())

	q, c := -1, -1
	if in.Src1 != isa.NoReg {
		q, c = m.appendTarget(regKey{in.Src1, in.Src1FP})
	}
	// Stores chain by their address operand only (see issueFIFO.Dispatch).
	if q < 0 && in.Src2 != isa.NoReg && in.Class != isa.Store {
		q, c = m.appendTarget(regKey{in.Src2, in.Src2FP})
	}
	if q < 0 {
		q, c = m.allocChain(env)
		if q < 0 {
			return false
		}
	}

	ch := &m.chains[q][c]
	ch.lastSeq = in.Seq
	ch.pending++
	in.QueueID, in.ChainID = q, c
	m.queues[q] = append(m.queues[q], in)
	m.occ++
	m.ev.BuffWrites++
	if in.HasDest() {
		m.table[regKey{in.Dest, in.DestFP}] = mixChainMapEntry{
			queue: q, chain: c, seq: in.Seq, gen: ch.gen, valid: true,
		}
		m.ev.QRenameWrites++
	}
	return true
}

// appendTarget resolves a source register to an appendable (queue, chain):
// the mapping must be current (generation matches), the producer must
// still be the chain's last instruction, and the queue must have room.
func (m *mixBUFF) appendTarget(k regKey) (int, int) {
	e, ok := m.table[k]
	if !ok || !e.valid {
		return -1, -1
	}
	ch := &m.chains[e.queue][e.chain]
	if !ch.busy || ch.gen != e.gen || ch.lastSeq != e.seq {
		return -1, -1
	}
	if len(m.queues[e.queue]) >= m.cfg.Entries {
		return -1, -1
	}
	return e.queue, e.chain
}

// allocChain returns the lowest free chain identifier in chain-major order
// (chain 0 of queue 0, chain 0 of queue 1, ..., chain 1 of queue 0, ...),
// the paper's busy-chain balancing rule.
func (m *mixBUFF) allocChain(env Env) (int, int) {
	for c := 0; c < m.chainN; c++ {
		for q := 0; q < m.cfg.Queues; q++ {
			if m.chains[q][c].busy || len(m.queues[q]) >= m.cfg.Entries {
				continue
			}
			ch := &m.chains[q][c]
			ch.busy = true
			ch.pending = 0
			ch.countdown = 0
			// A fresh chain's first instruction is "considered for
			// the first time" at the next selection opportunity.
			ch.readySince = env.Cycle() + 1
			return q, c
		}
	}
	return -1, -1
}

// tick advances every chain latency table once per cycle: all counters
// decrement saturating at zero (the counter of a chain that issued an
// instruction is reloaded at issue time instead).
func (m *mixBUFF) tick(env Env) {
	now := env.Cycle()
	if now == m.lastTick {
		return
	}
	m.lastTick = now
	for q := range m.chains {
		if len(m.queues[q]) == 0 {
			continue
		}
		// Whole-table read + write, as the paper describes.
		m.ev.ChainReads++
		m.ev.ChainWrites++
		for c := range m.chains[q] {
			ch := &m.chains[q][c]
			if !ch.busy || ch.countdown == 0 {
				continue
			}
			ch.countdown--
			if ch.countdown == 0 {
				ch.readySince = now
			}
		}
	}
}

// code returns the 2-bit compressed latency code of a chain. With the
// FlatSelectPriority ablation, every ready chain compresses to the same
// class and selection degenerates to age order.
func (m *mixBUFF) code(q, c int, now int64) int {
	ch := &m.chains[q][c]
	switch {
	case ch.countdown > 0:
		return codeNotReady
	case m.cfg.FlatSelectPriority:
		return codeDelayed
	case ch.readySince >= now:
		return codeFirstTime
	default:
		return codeDelayed
	}
}

// Issue selects at most one instruction per queue by minimum code‖age,
// verifies the selected instruction's operands in the ready-bit table and
// issues the survivors oldest-first up to the budget. A selected
// instruction that cannot issue keeps its entry; its chain transitions to
// the delayed code, implementing the paper's first-time priority.
func (m *mixBUFF) Issue(env Env, budget int) int {
	m.tick(env)
	now := env.Cycle()

	m.candidates = m.candidates[:0]
	for q := range m.queues {
		entries := m.queues[q]
		if len(entries) == 0 {
			continue
		}
		m.ev.SelectOps++
		m.ev.SelectEntries += uint64(len(entries))

		var best *isa.Inst
		bestCode := codeNotReady
		for _, in := range entries {
			code := m.code(q, in.ChainID, now)
			if code == codeNotReady {
				continue
			}
			if best == nil || code < bestCode ||
				(code == bestCode && env.Older(in.AgeID, best.AgeID)) {
				best, bestCode = in, code
			}
		}
		if best == nil {
			continue
		}
		m.ev.SelRegWrites++
		// The single selected instruction consults the ready-bit
		// table (the estimation may be wrong for cross-queue or
		// cache-miss dependences).
		m.ev.RegsReadyReads += uint64(best.NumSources())
		if OperandsReady(env, best) {
			m.candidates = append(m.candidates, best)
		}
	}

	ageSorted(env, m.candidates)
	issued := 0
	for _, in := range m.candidates {
		if issued >= budget {
			break
		}
		if !env.TryIssue(in) {
			continue
		}
		m.remove(in)
		m.ev.BuffReads++
		issued++
	}
	return issued
}

// remove deletes an issued instruction from its queue and updates its
// chain: the countdown is reloaded with the instruction's latency, and the
// chain is freed (generation bumped) once no instructions remain.
func (m *mixBUFF) remove(in *isa.Inst) {
	q := in.QueueID
	entries := m.queues[q]
	for i, e := range entries {
		if e == in {
			entries[i] = entries[len(entries)-1]
			entries[len(entries)-1] = nil
			m.queues[q] = entries[:len(entries)-1]
			break
		}
	}
	m.occ--

	ch := &m.chains[q][in.ChainID]
	ch.pending--
	ch.countdown = latencyOf(in, m.opt.Latencies, m.opt.MemHitLat)
	if ch.countdown == 0 {
		ch.readySince = 0 // immediately delayed-class; not expected with real latencies
	}
	if ch.pending == 0 && ch.lastSeq == in.Seq {
		ch.busy = false
		ch.gen++
	}
}

func (m *mixBUFF) OnComplete(Env, bool) {}

// OnMispredictResolved clears the register-to-chain map table (the paper
// clears the equivalent table on mispredictions; KeepMapOnMispredict
// retains it for the ablation study).
func (m *mixBUFF) OnMispredictResolved() {
	if m.cfg.KeepMapOnMispredict {
		return
	}
	for k := range m.table {
		delete(m.table, k)
	}
}
