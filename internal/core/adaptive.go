package core

import (
	"distiq/internal/isa"
	"distiq/internal/power"
)

// adaptiveCAM extends the conventional CAM queue with the dynamic resizing
// mechanism of Folegnani and González (ISCA 2001), which the paper builds
// its power-optimized baseline on: the queue is divided into portions and
// the effective size shrinks when the youngest portion contributes few
// issued instructions, saving wakeup and selection energy at negligible
// IPC cost.
//
// The implementation monitors, over a fixed cycle interval, how many
// instructions issued from the youngest active portion. At the end of the
// interval the effective limit shrinks by one portion if that contribution
// is below a threshold fraction of issue bandwidth, and grows by one
// portion whenever dispatch stalled against the limit. This reproduces the
// published behaviour at the fidelity the energy comparison needs: the
// effective queue tracks the ILP the program actually exploits.
type adaptiveCAM struct {
	cam *camQueue

	portion   int   // resize granularity in entries
	limit     int   // current effective capacity
	interval  int64 // decision period in cycles
	nextCheck int64

	youngIssued uint64 // issued from the youngest active portion
	limitStalls uint64 // dispatch rejections caused by the limit
	threshold   uint64 // youngIssued below this shrinks the queue

	// limitSum/ticks track the average effective size so the energy
	// model can account for gated-off banks (tag lines are only driven
	// across the enabled portion of the queue).
	limitSum, ticks uint64

	// Grows and Shrinks count resize decisions (for reports and tests).
	Grows, Shrinks uint64
}

func newAdaptiveCAM(cfg DomainConfig, opt Options) *adaptiveCAM {
	a := &adaptiveCAM{
		cam:      newCAM(cfg, opt),
		portion:  8,
		limit:    cfg.Total(),
		interval: 512,
	}
	// Shrink when the youngest portion contributes fewer than ~2% of
	// the interval's cycles worth of issues.
	a.threshold = uint64(a.interval / 50)
	return a
}

func (a *adaptiveCAM) Name() string          { return "AdaptiveCAM" }
func (a *adaptiveCAM) Occupancy() int        { return a.cam.Occupancy() }
func (a *adaptiveCAM) Capacity() int         { return a.cam.Capacity() }
func (a *adaptiveCAM) Events() *power.Events { return a.cam.Events() }

// Geometry reports the *average effective* queue size: disabled portions'
// banks are power-gated, so the wakeup tag drive and the payload RAM only
// span the enabled entries. Called at reporting time, after simulation.
func (a *adaptiveCAM) Geometry() power.Geometry {
	g := a.cam.Geometry()
	if a.ticks > 0 {
		avg := int(a.limitSum / a.ticks)
		if avg < a.portion {
			avg = a.portion
		}
		g.Entries = avg
		g.Banks = (avg + a.portion - 1) / a.portion
	}
	return g
}

// Limit returns the current effective queue size.
func (a *adaptiveCAM) Limit() int { return a.limit }

func (a *adaptiveCAM) Dispatch(env Env, in *isa.Inst) bool {
	if len(a.cam.entries) >= a.limit {
		a.limitStalls++
		return false
	}
	return a.cam.Dispatch(env, in)
}

func (a *adaptiveCAM) Issue(env Env, budget int) int {
	a.resize(env)
	a.limitSum += uint64(a.limit)
	a.ticks++
	// Youngest-portion accounting: entries are kept in dispatch order,
	// so the youngest portion of the *effective window* is the set of
	// entries at positions [limit-portion, limit). If occupancy never
	// reaches into that range, the portion contributes nothing and the
	// queue can shrink — the Folegnani-González criterion.
	var young map[*isa.Inst]bool
	if youngStart := a.limit - a.portion; youngStart < len(a.cam.entries) {
		young = make(map[*isa.Inst]bool, a.portion)
		for _, in := range a.cam.entries[youngStart:] {
			young[in] = true
		}
	}
	n := a.cam.Issue(env, budget)
	if young != nil {
		// Count issued instructions that were in the youngest portion.
		still := make(map[*isa.Inst]bool, len(a.cam.entries))
		for _, in := range a.cam.entries {
			still[in] = true
		}
		for in := range young {
			if !still[in] {
				a.youngIssued++
			}
		}
	}
	return n
}

// resize applies one grow/shrink decision per interval.
func (a *adaptiveCAM) resize(env Env) {
	now := env.Cycle()
	if now < a.nextCheck {
		return
	}
	a.nextCheck = now + a.interval
	switch {
	case a.limitStalls > 0 && a.limit < a.cam.Capacity():
		a.limit += a.portion
		a.Grows++
	case a.youngIssued < a.threshold && a.limit > a.portion:
		a.limit -= a.portion
		a.Shrinks++
	}
	a.youngIssued = 0
	a.limitStalls = 0
}

func (a *adaptiveCAM) OnComplete(env Env, destFP bool) { a.cam.OnComplete(env, destFP) }
func (a *adaptiveCAM) OnMispredictResolved()           {}
