package core

import (
	"sort"

	"distiq/internal/isa"
	"distiq/internal/power"
)

// preSched is the data-flow prescheduling organization of Michaud and
// Seznec (HPCA 2001), which the paper's related-work section singles out
// as the strongest prior approach ("shown to work better than dependence
// based ones but introduces some more complexity"). It is provided as an
// extension comparator.
//
// A large second-level buffer holds instructions ordered by their
// estimated issue cycle (computed at dispatch by the shared Estimator, the
// same hardware LatFIFO uses); it has no wakeup logic. Instructions are
// promoted into a small first-level conventional CAM queue when they are
// expected to become ready and a free entry exists, so the expensive
// wakeup/select hardware spans only a few entries.
type preSched struct {
	opt Options
	cfg DomainConfig

	level1 *camQueue   // small conventional issue queue
	level2 []*isa.Inst // preschedule buffer, sorted by EstIssue then age
	ev     power.Events

	// lookahead is how many cycles before its estimated issue time an
	// instruction becomes eligible for promotion (covers the promotion
	// pipeline stage).
	lookahead int64
	// promoteWidth bounds promotions per cycle (a register-file-style
	// port limit on the buffer).
	promoteWidth int

	// Promotions counts buffer-to-queue moves (reporting and tests).
	Promotions uint64
}

// newPreSched builds the two-level queue: cfg.Entries is the second-level
// buffer capacity and cfg.Chains (repurposed, documented in PreSchedCfg)
// the first-level CAM size (default 16, Michaud-Seznec's small queue).
func newPreSched(cfg DomainConfig, opt Options) *preSched {
	l1 := cfg.Chains
	if l1 <= 0 {
		l1 = 16
	}
	return &preSched{
		opt: opt,
		cfg: cfg,
		level1: newCAM(DomainConfig{
			Kind: KindCAM, Queues: 1, Entries: l1,
		}, opt),
		level2:       make([]*isa.Inst, 0, cfg.Total()),
		lookahead:    2,
		promoteWidth: 8,
	}
}

func (p *preSched) Name() string   { return "PreSched" }
func (p *preSched) Occupancy() int { return len(p.level2) + p.level1.Occupancy() }
func (p *preSched) Capacity() int  { return p.cfg.Total() + p.level1.Capacity() }

// Events drains the first-level CAM's counters into the scheme-wide view
// so callers see one consistent set.
func (p *preSched) Events() *power.Events {
	p.ev.Add(p.level1.Events())
	p.level1.Events().Reset()
	return &p.ev
}

func (p *preSched) Geometry() power.Geometry {
	g := p.level1.Geometry()
	g.SecondLevel = p.cfg.Total()
	g.FUFanout = p.opt.fanout()
	return g
}

// Dispatch inserts into the second-level buffer in estimated-issue order
// (stable in age for equal estimates), stalling when the buffer is full.
func (p *preSched) Dispatch(env Env, in *isa.Inst) bool {
	if len(p.level2) >= p.cfg.Total() {
		return false
	}
	in.QueueID = 0
	idx := sort.Search(len(p.level2), func(i int) bool {
		return p.level2[i].EstIssue > in.EstIssue
	})
	p.level2 = append(p.level2, nil)
	copy(p.level2[idx+1:], p.level2[idx:])
	p.level2[idx] = in
	p.ev.FIFOWrites++
	return true
}

// Issue promotes due instructions into the first level, then lets the
// small CAM queue select and issue conventionally.
func (p *preSched) Issue(env Env, budget int) int {
	now := env.Cycle()
	promoted := 0
	for len(p.level2) > 0 && promoted < p.promoteWidth &&
		p.level1.Occupancy() < p.level1.Capacity() &&
		p.level2[0].EstIssue <= now+p.lookahead {
		in := p.level2[0]
		copy(p.level2, p.level2[1:])
		p.level2[len(p.level2)-1] = nil
		p.level2 = p.level2[:len(p.level2)-1]
		p.ev.FIFOReads++
		if !p.level1.Dispatch(env, in) {
			panic("core: preSched promotion into full level 1")
		}
		promoted++
		p.Promotions++
	}
	return p.level1.Issue(env, budget)
}

func (p *preSched) OnComplete(env Env, destFP bool) {
	p.level1.OnComplete(env, destFP)
}

func (p *preSched) OnMispredictResolved() {}
