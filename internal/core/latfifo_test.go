package core

import (
	"testing"

	"distiq/internal/isa"
)

func newTestLatFIFO(queues, entries int) (*latFIFO, *Estimator) {
	opt := defaultOpts(isa.FPDomain)
	opt.Estimator = NewEstimator(opt.Latencies, opt.MemHitLat)
	s, err := New(DomainConfig{Kind: KindLatFIFO, Queues: queues, Entries: entries}, opt)
	if err != nil {
		panic(err)
	}
	return s.(*latFIFO), opt.Estimator
}

// dispatchAt estimates and dispatches an instruction at the given cycle.
func dispatchAt(t *testing.T, l *latFIFO, est *Estimator, env *fakeEnv,
	in *isa.Inst, cycle int64) {
	t.Helper()
	env.cycle = cycle
	est.OnDispatch(in, cycle)
	if !l.Dispatch(env, in) {
		t.Fatalf("dispatch of seq %d stalled", in.Seq)
	}
}

func TestLatFIFOPlacesAfterEarlierTail(t *testing.T) {
	// An instruction whose estimated issue time is later than a queue's
	// tail estimate by >= 1 cycle must join that queue rather than an
	// empty one when the tail issues latest among candidates.
	l, est := newTestLatFIFO(3, 8)
	env := newFakeEnv()

	// Two producers with different latencies seed two queues.
	early := mkInst(0, isa.FPAdd, isa.NoReg, isa.NoReg, 1) // est issue 1, ready 3
	late := mkInst(1, isa.FPMult, isa.NoReg, isa.NoReg, 2) // est issue 1, ready 5
	dispatchAt(t, l, est, env, early, 0)
	dispatchAt(t, l, est, env, late, 0)
	if early.QueueID == late.QueueID {
		t.Fatal("seed instructions share a queue")
	}

	// A consumer of the late producer (est issue 5): both tails (est 1)
	// qualify; the rule picks the queue whose tail is expected latest.
	// Both tails have est 1, so the choice is the first maximal one;
	// instead make the late queue's tail strictly later by appending a
	// consumer of 'early' (est 3) to early's queue first.
	mid := mkInst(2, isa.FPAdd, 1, isa.NoReg, 3) // est issue 3
	dispatchAt(t, l, est, env, mid, 0)
	if mid.QueueID != early.QueueID {
		t.Fatalf("mid went to queue %d, want %d (dependence is irrelevant; "+
			"tail est 1 <= 3-1 both, tie broken by latest tail)", mid.QueueID, early.QueueID)
	}

	cons := mkInst(3, isa.FPAdd, 2, isa.NoReg, 4) // est issue 5
	dispatchAt(t, l, est, env, cons, 0)
	// Candidate queues: early's queue tail est 3 (3 <= 4), late's queue
	// tail est 1 (1 <= 4), empty queue. Latest tail wins: early's queue.
	if cons.QueueID != early.QueueID {
		t.Fatalf("consumer in queue %d, want latest-tail queue %d",
			cons.QueueID, early.QueueID)
	}
}

func TestLatFIFOFallsBackToEmptyQueue(t *testing.T) {
	// When no queue's tail is expected at least one cycle earlier, the
	// instruction takes an empty queue.
	l, est := newTestLatFIFO(2, 8)
	env := newFakeEnv()
	a := mkInst(0, isa.FPMult, isa.NoReg, isa.NoReg, 1) // est 1
	dispatchAt(t, l, est, env, a, 0)
	b := mkInst(1, isa.FPAdd, isa.NoReg, isa.NoReg, 2) // est 1, not >= tail+1
	dispatchAt(t, l, est, env, b, 0)
	if b.QueueID == a.QueueID {
		t.Fatal("same-estimate instruction stacked behind an equal tail")
	}
}

func TestLatFIFOStallsWhenNoPlacement(t *testing.T) {
	l, est := newTestLatFIFO(2, 1)
	env := newFakeEnv()
	a := mkInst(0, isa.FPMult, isa.NoReg, isa.NoReg, 1)
	b := mkInst(1, isa.FPMult, isa.NoReg, isa.NoReg, 2)
	dispatchAt(t, l, est, env, a, 0)
	dispatchAt(t, l, est, env, b, 0)
	c := mkInst(2, isa.FPAdd, 1, isa.NoReg, 3)
	est.OnDispatch(c, 0)
	if l.Dispatch(env, c) {
		t.Fatal("dispatch succeeded with all queues full")
	}
	if l.Occupancy() != 2 {
		t.Fatal("failed dispatch mutated occupancy")
	}
}

func TestLatFIFOIssuesHeadsInOrder(t *testing.T) {
	l, est := newTestLatFIFO(2, 8)
	env := newFakeEnv()
	a := mkInst(0, isa.FPAdd, isa.NoReg, isa.NoReg, 1)
	b := mkInst(1, isa.FPAdd, isa.NoReg, isa.NoReg, 2)
	dispatchAt(t, l, est, env, a, 0)
	dispatchAt(t, l, est, env, b, 0)
	env.cycle = 1
	if n := l.Issue(env, 1); n != 1 {
		t.Fatalf("issued %d, want 1 (budget)", n)
	}
	if env.issued[0] != a {
		t.Fatal("younger head issued before older")
	}
	if l.Occupancy() != 1 {
		t.Fatal("pop bookkeeping wrong")
	}
}

func TestLatFIFOGeometryIsFIFO(t *testing.T) {
	l, _ := newTestLatFIFO(4, 8)
	g := l.Geometry()
	if g.Queues != 4 || g.Entries != 8 {
		t.Fatalf("geometry %+v", g)
	}
	if l.Name() != "LatFIFO" {
		t.Fatal("name")
	}
}
