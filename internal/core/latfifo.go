package core

import (
	"distiq/internal/isa"
	"distiq/internal/power"
)

// latFIFO places instructions into FIFO queues by their estimated issue
// time instead of their dependences: an instruction goes to a non-full
// queue whose tail is expected to issue at least one cycle earlier,
// preferring the queue whose tail issues latest (leaving the most room for
// younger instructions); failing that, an empty queue; failing that,
// dispatch stalls. Heads are issued exactly as in IssueFIFO. The paper
// uses this organization for FP queues only (integer queues remain
// IssueFIFO).
type latFIFO struct {
	opt    Options
	cfg    DomainConfig
	queues [][]*isa.Inst
	ev     power.Events
	occ    int

	heads []*isa.Inst
}

func newLatFIFO(cfg DomainConfig, opt Options) *latFIFO {
	l := &latFIFO{
		opt:    opt,
		cfg:    cfg,
		queues: make([][]*isa.Inst, cfg.Queues),
		heads:  make([]*isa.Inst, 0, cfg.Queues),
	}
	for i := range l.queues {
		l.queues[i] = make([]*isa.Inst, 0, cfg.Entries)
	}
	return l
}

func (l *latFIFO) Name() string          { return "LatFIFO" }
func (l *latFIFO) Occupancy() int        { return l.occ }
func (l *latFIFO) Capacity() int         { return l.cfg.Total() }
func (l *latFIFO) Events() *power.Events { return &l.ev }

func (l *latFIFO) Geometry() power.Geometry {
	return power.Geometry{
		Style:       power.StyleFIFO,
		Queues:      l.cfg.Queues,
		Entries:     l.cfg.Entries,
		TagBits:     8,
		PayloadBits: 80,
		FUFanout:    l.opt.fanout(),
	}
}

// Dispatch places in by estimated issue time (in.EstIssue, filled by the
// shared Estimator at dispatch).
func (l *latFIFO) Dispatch(env Env, in *isa.Inst) bool {
	best, bestTail := -1, int64(-1)
	empty := -1
	for qi := range l.queues {
		q := l.queues[qi]
		if len(q) == 0 {
			if empty < 0 {
				empty = qi
			}
			continue
		}
		if len(q) >= l.cfg.Entries {
			continue
		}
		tailEst := q[len(q)-1].EstIssue
		if tailEst <= in.EstIssue-1 && tailEst > bestTail {
			best, bestTail = qi, tailEst
		}
	}
	if best < 0 {
		best = empty
	}
	if best < 0 {
		return false
	}
	in.QueueID = best
	l.queues[best] = append(l.queues[best], in)
	l.occ++
	l.ev.FIFOWrites++
	return true
}

// Issue mirrors issueFIFO: ready heads issue oldest-first.
func (l *latFIFO) Issue(env Env, budget int) int {
	l.heads = l.heads[:0]
	for qi := range l.queues {
		if len(l.queues[qi]) == 0 {
			continue
		}
		head := l.queues[qi][0]
		l.ev.RegsReadyReads += uint64(head.NumSources())
		if OperandsReady(env, head) {
			l.heads = append(l.heads, head)
		}
	}
	ageSorted(env, l.heads)

	issued := 0
	for _, in := range l.heads {
		if issued >= budget {
			break
		}
		if !env.TryIssue(in) {
			continue
		}
		qi := in.QueueID
		copy(l.queues[qi], l.queues[qi][1:])
		l.queues[qi][len(l.queues[qi])-1] = nil
		l.queues[qi] = l.queues[qi][:len(l.queues[qi])-1]
		l.occ--
		l.ev.FIFOReads++
		issued++
	}
	return issued
}

func (l *latFIFO) OnComplete(Env, bool) {}

func (l *latFIFO) OnMispredictResolved() {}
