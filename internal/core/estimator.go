package core

import "distiq/internal/isa"

// Estimator computes, at dispatch time, the cycle each instruction is
// expected to issue — the paper's LatFIFO placement input:
//
//	IssueCycle = MAX(current_cycle + 1, OpLeftCycle, OpRightCycle)
//	if load:  IssueCycle = MAX(IssueCycle, AllStoreAddr)
//	if store: AllStoreAddr = MAX(AllStoreAddr, IssueCycle + AddressLatency)
//	if dest:  DestCycle = IssueCycle + InstructionLatency
//
// where operand availability cycles come from the producers' estimated
// DestCycle, loads assume the L1 hit latency, and AllStoreAddr tracks when
// the addresses of all prior stores will be known. The estimate is indexed
// by physical register, which the hardware's logical-register table plus
// rename equals exactly.
//
// One estimator instance is shared by the whole dispatch stage (it must
// see every instruction, including integer-side loads that feed FP
// chains). The paper assumes the computation fits in one cycle and notes
// this may be optimistic; we reproduce that assumption.
type Estimator struct {
	lat       isa.Latencies
	memHit    int
	destCycle [2][]int64 // per domain, per physical register
	allStore  int64
}

// NewEstimator returns an estimator for the given latencies and L1D hit
// latency.
func NewEstimator(lat isa.Latencies, memHitLat int) *Estimator {
	e := &Estimator{lat: lat, memHit: memHitLat}
	e.destCycle[0] = make([]int64, isa.NumPhysicalRegs)
	e.destCycle[1] = make([]int64, isa.NumPhysicalRegs)
	return e
}

func domIdx(fp bool) int {
	if fp {
		return 1
	}
	return 0
}

func (e *Estimator) operand(fp bool, preg int16) int64 {
	if preg == isa.NoReg {
		return 0
	}
	return e.destCycle[domIdx(fp)][preg]
}

// OnDispatch computes and stores the estimate for in (which must already
// be renamed) and records it in in.EstIssue.
func (e *Estimator) OnDispatch(in *isa.Inst, cycle int64) {
	est := cycle + 1
	if t := e.operand(in.Src1FP, in.PSrc1); t > est {
		est = t
	}
	// A store's issue time is its *address* computation time; the data
	// operand (Src2) is only needed at commit.
	if in.Class != isa.Store {
		if t := e.operand(in.Src2FP, in.PSrc2); t > est {
			est = t
		}
	}
	switch in.Class {
	case isa.Load:
		if e.allStore > est {
			est = e.allStore
		}
	case isa.Store:
		if a := est + isa.AddressLatency; a > e.allStore {
			e.allStore = a
		}
	}
	in.EstIssue = est
	if in.PDest != isa.NoReg {
		e.destCycle[domIdx(in.DestFP)][in.PDest] = est + int64(latencyOf(in, e.lat, e.memHit))
	}
}
