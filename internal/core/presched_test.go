package core

import (
	"testing"

	"distiq/internal/isa"
)

func newTestPreSched(l2, l1 int) (*preSched, *Estimator) {
	opt := defaultOpts(isa.FPDomain)
	opt.Estimator = NewEstimator(opt.Latencies, opt.MemHitLat)
	s, err := New(DomainConfig{Kind: KindPreSched, Queues: 1, Entries: l2, Chains: l1}, opt)
	if err != nil {
		panic(err)
	}
	return s.(*preSched), opt.Estimator
}

func TestPreSchedRequiresEstimator(t *testing.T) {
	if _, err := New(DomainConfig{Kind: KindPreSched, Queues: 1, Entries: 64},
		defaultOpts(isa.FPDomain)); err == nil {
		t.Fatal("PreSched without estimator accepted")
	}
}

func TestPreSchedBufferOrdering(t *testing.T) {
	// Instructions with earlier estimated issue times must be promoted
	// first regardless of dispatch order.
	p, est := newTestPreSched(32, 4)
	env := newFakeEnv()
	// A long-latency chain: producer then consumer (est far out), then
	// an independent instruction (est now).
	prod := mkInst(0, isa.FPDiv, isa.NoReg, isa.NoReg, 1) // ready at +12
	cons := mkInst(1, isa.FPAdd, 1, isa.NoReg, 2)         // est ~13
	indep := mkInst(2, isa.FPAdd, isa.NoReg, isa.NoReg, 3)
	for _, in := range []*isa.Inst{prod, cons, indep} {
		est.OnDispatch(in, 0)
		if !p.Dispatch(env, in) {
			t.Fatalf("dispatch %d stalled", in.Seq)
		}
	}
	if p.level2[0].Seq == 1 {
		t.Fatal("far-future consumer sorted before due instructions")
	}
	env.cycle = 1
	p.Issue(env, 8)
	// prod and indep (est ~1) promoted and issued; cons stays in L2.
	if len(env.issued) != 2 {
		t.Fatalf("issued %d, want 2", len(env.issued))
	}
	for _, in := range env.issued {
		if in.Seq == 1 {
			t.Fatal("consumer issued before its estimated time")
		}
	}
	if p.Promotions != 2 {
		t.Fatalf("promotions = %d, want 2", p.Promotions)
	}
}

func TestPreSchedPromotionBoundedByL1(t *testing.T) {
	p, est := newTestPreSched(32, 2)
	env := newFakeEnv()
	env.block(true, 9) // all blocked on a never-ready operand
	for i := uint64(0); i < 6; i++ {
		in := mkInst(i, isa.FPAdd, 9, isa.NoReg, int16(10+i))
		est.OnDispatch(in, 0)
		p.Dispatch(env, in)
	}
	env.cycle = 1
	p.Issue(env, 8)
	if p.level1.Occupancy() != 2 {
		t.Fatalf("L1 holds %d, want its capacity 2", p.level1.Occupancy())
	}
	if len(p.level2) != 4 {
		t.Fatalf("L2 holds %d, want 4", len(p.level2))
	}
	// Unblock: the window drains two per cycle at most (L1 size).
	env.unblock(true, 9)
	total := 0
	for c := int64(2); c < 12 && total < 6; c++ {
		env.cycle = c
		total += p.Issue(env, 8)
	}
	if total != 6 {
		t.Fatalf("drained %d of 6", total)
	}
	if p.Occupancy() != 0 {
		t.Fatal("occupancy not zero after drain")
	}
}

func TestPreSchedDispatchStallsWhenBufferFull(t *testing.T) {
	p, est := newTestPreSched(4, 2)
	env := newFakeEnv()
	for i := uint64(0); i < 4; i++ {
		in := mkInst(i, isa.FPAdd, isa.NoReg, isa.NoReg, int16(i))
		est.OnDispatch(in, 0)
		if !p.Dispatch(env, in) {
			t.Fatalf("dispatch %d stalled early", i)
		}
	}
	in := mkInst(9, isa.FPAdd, isa.NoReg, isa.NoReg, 9)
	est.OnDispatch(in, 0)
	if p.Dispatch(env, in) {
		t.Fatal("dispatch into full buffer succeeded")
	}
}

func TestPreSchedGeometryTwoLevel(t *testing.T) {
	p, _ := newTestPreSched(112, 16)
	g := p.Geometry()
	if g.Entries != 16 {
		t.Fatalf("first level = %d entries, want 16", g.Entries)
	}
	if g.SecondLevel != 112 {
		t.Fatalf("second level = %d, want 112", g.SecondLevel)
	}
	if p.Capacity() != 128 {
		t.Fatalf("capacity = %d", p.Capacity())
	}
}

func TestPreSchedConfig(t *testing.T) {
	cfg := PreSchedCfg(16, 16, 112, 16)
	if cfg.Name != "PreSched_16x16_112+16" {
		t.Fatalf("name %q", cfg.Name)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if PreSchedCfg(8, 8, 64, 0).FP.Chains != 16 {
		t.Fatal("default first-level size")
	}
	if KindPreSched.String() != "PreSched" {
		t.Fatal("kind name")
	}
}

func TestPreSchedEventsIncludeBothLevels(t *testing.T) {
	p, est := newTestPreSched(32, 4)
	env := newFakeEnv()
	in := mkInst(0, isa.FPAdd, isa.NoReg, isa.NoReg, 1)
	est.OnDispatch(in, 0)
	p.Dispatch(env, in)
	env.cycle = 1
	p.Issue(env, 8)
	ev := p.Events()
	if ev.FIFOWrites != 1 || ev.FIFOReads != 1 {
		t.Fatalf("buffer traffic not counted: %+v", ev)
	}
	if ev.IQWrites != 1 || ev.IQReads != 1 {
		t.Fatalf("first-level CAM traffic not merged: %+v", ev)
	}
}
