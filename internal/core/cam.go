package core

import (
	"distiq/internal/isa"
	"distiq/internal/power"
)

// camQueue is the conventional out-of-order issue queue: a CAM array holds
// operand tags that are matched against every result broadcast (wakeup),
// and a selection tree picks the oldest ready instructions each cycle. Per
// the paper's baseline, the queue is multi-banked and spends wakeup energy
// only on unready operands (the Folegnani-González optimization), and the
// selection logic consumes nothing when the queue is empty.
type camQueue struct {
	opt     Options
	cfg     DomainConfig
	entries []*isa.Inst
	ev      power.Events
}

func newCAM(cfg DomainConfig, opt Options) *camQueue {
	return &camQueue{
		opt:     opt,
		cfg:     cfg,
		entries: make([]*isa.Inst, 0, cfg.Total()),
	}
}

func (q *camQueue) Name() string          { return "CAM" }
func (q *camQueue) Occupancy() int        { return len(q.entries) }
func (q *camQueue) Capacity() int         { return q.cfg.Total() }
func (q *camQueue) Events() *power.Events { return &q.ev }

func (q *camQueue) Geometry() power.Geometry {
	banks := 1
	if q.cfg.Total() >= 64 {
		banks = 8 // the paper's 8 banks x 8 entries
	}
	return power.Geometry{
		Style:       power.StyleCAM,
		Queues:      1,
		Entries:     q.cfg.Total(),
		TagBits:     8, // log2(160) rounded up
		PayloadBits: 80,
		Banks:       banks,
		FUFanout:    q.opt.fanout(),
	}
}

func (q *camQueue) Dispatch(env Env, in *isa.Inst) bool {
	if len(q.entries) >= cap(q.entries) {
		return false
	}
	in.QueueID = 0
	q.entries = append(q.entries, in)
	q.ev.IQWrites++
	return true
}

// Issue selects up to budget ready instructions, oldest first. Entries are
// kept in dispatch order, so a single in-order scan implements the
// oldest-first position-based selection policy of the baseline.
func (q *camQueue) Issue(env Env, budget int) int {
	if len(q.entries) == 0 {
		return 0 // empty queue: selection logic gated off
	}
	q.ev.SelectOps++
	q.ev.SelectEntries += uint64(len(q.entries))

	issued := 0
	kept := q.entries[:0]
	for i, in := range q.entries {
		if issued >= budget {
			kept = append(kept, q.entries[i:]...)
			break
		}
		if !OperandsReady(env, in) || !env.TryIssue(in) {
			kept = append(kept, in)
			continue
		}
		q.ev.IQReads++
		issued++
	}
	// Clear the tail so removed instructions are not retained.
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	return issued
}

// OnComplete models a result-tag broadcast: the tag lines are driven and
// every currently-unready operand of the matching register file compares.
func (q *camQueue) OnComplete(env Env, destFP bool) {
	if len(q.entries) == 0 {
		return
	}
	q.ev.WakeupBroadcasts++
	for _, in := range q.entries {
		if in.PSrc1 != isa.NoReg && in.Src1FP == destFP && !env.OperandReady(in.Src1FP, in.PSrc1) {
			q.ev.WakeupCAMCells++
		}
		if in.PSrc2 != isa.NoReg && in.Src2FP == destFP && !env.OperandReady(in.Src2FP, in.PSrc2) {
			q.ev.WakeupCAMCells++
		}
	}
}

func (q *camQueue) OnMispredictResolved() {}

// ageSorted is a helper shared by the multi-queue schemes: it sorts
// candidate instructions oldest first under the modular age encoding.
// The slices are tiny (one candidate per queue, so at most a few dozen
// entries), so an insertion sort beats sort.Slice — and, unlike
// sort.Slice, performs no allocation, keeping the per-cycle issue path
// allocation-free in steady state.
func ageSorted(env Env, ins []*isa.Inst) {
	for i := 1; i < len(ins); i++ {
		in := ins[i]
		j := i - 1
		for j >= 0 && env.Older(in.AgeID, ins[j].AgeID) {
			ins[j+1] = ins[j]
			j--
		}
		ins[j+1] = in
	}
}
