package core

import (
	"distiq/internal/isa"
	"distiq/internal/power"
)

// regKey indexes a queue-map table by (register, register file).
type regKey struct {
	reg int16
	fp  bool
}

// mapEntry records which queue's tail produces a register.
type mapEntry struct {
	queue int
	seq   uint64 // sequence number of the producing instruction
	valid bool
}

// issueFIFO is Palacharla's dependence-based FIFO organization. A small
// table maps each register to the queue whose tail instruction produces
// it; dispatched instructions are appended behind their producers, so each
// FIFO holds a dependence chain and only queue heads are considered for
// issue, eliminating the wakeup CAM.
type issueFIFO struct {
	opt    Options
	cfg    DomainConfig
	queues [][]*isa.Inst
	table  map[regKey]mapEntry
	ev     power.Events
	occ    int

	heads []*isa.Inst // scratch for age-ordering heads
}

func newIssueFIFO(cfg DomainConfig, opt Options) *issueFIFO {
	f := &issueFIFO{
		opt:    opt,
		cfg:    cfg,
		queues: make([][]*isa.Inst, cfg.Queues),
		table:  make(map[regKey]mapEntry),
		heads:  make([]*isa.Inst, 0, cfg.Queues),
	}
	for i := range f.queues {
		f.queues[i] = make([]*isa.Inst, 0, cfg.Entries)
	}
	return f
}

func (f *issueFIFO) Name() string          { return "IssueFIFO" }
func (f *issueFIFO) Occupancy() int        { return f.occ }
func (f *issueFIFO) Capacity() int         { return f.cfg.Total() }
func (f *issueFIFO) Events() *power.Events { return &f.ev }

func (f *issueFIFO) Geometry() power.Geometry {
	return power.Geometry{
		Style:       power.StyleFIFO,
		Queues:      f.cfg.Queues,
		Entries:     f.cfg.Entries,
		TagBits:     8,
		PayloadBits: 80,
		FUFanout:    f.opt.fanout(),
	}
}

// tailProduces reports whether the table entry still names the producing
// instruction at the tail of its queue (entries self-invalidate when the
// producer issues or is buried).
func (f *issueFIFO) tailProduces(m mapEntry) bool {
	if !m.valid {
		return false
	}
	q := f.queues[m.queue]
	return len(q) > 0 && q[len(q)-1].Seq == m.seq
}

// Dispatch implements the paper's reading of Palacharla's heuristics:
//
//  1. if a queue's tail produces the first operand, append there; if that
//     queue is full and this is the only register operand, stall;
//  2. else if a queue's tail produces the second operand, append there;
//     if full, stall;
//  3. otherwise use an empty queue; if none exists, stall.
func (f *issueFIFO) Dispatch(env Env, in *isa.Inst) bool {
	f.ev.QRenameReads += uint64(in.NumSources())

	// A store is placed by its address operand only: its issue-queue
	// entry is the address computation (the data is consumed at
	// commit), so chaining it behind the data producer would bury the
	// address and stall every younger load on the AllStoreAddr rule.
	chainSrc2 := in.Src2 != isa.NoReg && in.Class != isa.Store

	target := -1
	if in.Src1 != isa.NoReg {
		if m := f.table[regKey{in.Src1, in.Src1FP}]; f.tailProduces(m) {
			if len(f.queues[m.queue]) < f.cfg.Entries {
				target = m.queue
			} else if !chainSrc2 {
				return false // full, single-operand: stall
			}
		}
	}
	if target < 0 && chainSrc2 {
		if m := f.table[regKey{in.Src2, in.Src2FP}]; f.tailProduces(m) {
			if len(f.queues[m.queue]) < f.cfg.Entries {
				target = m.queue
			} else {
				return false // full second-operand queue: stall
			}
		}
	}
	if target < 0 {
		for qi := range f.queues {
			if len(f.queues[qi]) == 0 {
				target = qi
				break
			}
		}
		if target < 0 {
			return false // no empty FIFO: stall
		}
	}

	f.place(in, target)
	return true
}

func (f *issueFIFO) place(in *isa.Inst, qi int) {
	in.QueueID = qi
	f.queues[qi] = append(f.queues[qi], in)
	f.occ++
	f.ev.FIFOWrites++
	if in.HasDest() {
		f.table[regKey{in.Dest, in.DestFP}] = mapEntry{queue: qi, seq: in.Seq, valid: true}
		f.ev.QRenameWrites++
	}
}

// Issue checks every queue head against the ready-bit table and issues
// ready heads oldest-first up to the budget.
func (f *issueFIFO) Issue(env Env, budget int) int {
	f.heads = f.heads[:0]
	for qi := range f.queues {
		if len(f.queues[qi]) == 0 {
			continue
		}
		head := f.queues[qi][0]
		f.ev.RegsReadyReads += uint64(head.NumSources())
		if OperandsReady(env, head) {
			f.heads = append(f.heads, head)
		}
	}
	ageSorted(env, f.heads)

	issued := 0
	for _, in := range f.heads {
		if issued >= budget {
			break
		}
		if !env.TryIssue(in) {
			continue
		}
		qi := in.QueueID
		copy(f.queues[qi], f.queues[qi][1:])
		f.queues[qi][len(f.queues[qi])-1] = nil
		f.queues[qi] = f.queues[qi][:len(f.queues[qi])-1]
		f.occ--
		f.ev.FIFOReads++
		issued++
	}
	return issued
}

func (f *issueFIFO) OnComplete(Env, bool) {}

// OnMispredictResolved clears the queue-map table, the cheap recovery the
// paper found to cost no measurable performance (the KeepMapOnMispredict
// ablation retains it instead).
func (f *issueFIFO) OnMispredictResolved() {
	if f.cfg.KeepMapOnMispredict {
		return
	}
	for k := range f.table {
		delete(f.table, k)
	}
}

// DebugQueues returns, for each queue, the classes and wait states of its
// entries (head first). For diagnostics and tests only.
func (f *issueFIFO) DebugQueues(env Env) []string {
	out := make([]string, len(f.queues))
	for qi, q := range f.queues {
		s := ""
		for _, in := range q {
			r := "R"
			if !OperandsReady(env, in) {
				r = "w"
			}
			s += in.Class.String() + ":" + r + " "
		}
		out[qi] = s
	}
	return out
}
