package core

import (
	"testing"

	"distiq/internal/isa"
)

func est() *Estimator { return NewEstimator(isa.DefaultLatencies(), 2) }

func TestEstimatorIndependentInstruction(t *testing.T) {
	e := est()
	in := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 5)
	e.OnDispatch(in, 10)
	if in.EstIssue != 11 {
		t.Fatalf("EstIssue = %d, want cycle+1 = 11", in.EstIssue)
	}
}

func TestEstimatorChainsThroughDest(t *testing.T) {
	e := est()
	// FPMult (latency 4) producing reg 3, then a consumer.
	prod := mkInst(0, isa.FPMult, isa.NoReg, isa.NoReg, 3)
	e.OnDispatch(prod, 10) // est issue 11, dest ready 15
	cons := mkInst(1, isa.FPAdd, 3, isa.NoReg, 4)
	e.OnDispatch(cons, 10)
	if cons.EstIssue != 15 {
		t.Fatalf("consumer EstIssue = %d, want 15", cons.EstIssue)
	}
	// Second-level consumer through FPAdd (latency 2): 15+2 = 17.
	cons2 := mkInst(2, isa.FPAdd, 4, isa.NoReg, 5)
	e.OnDispatch(cons2, 10)
	if cons2.EstIssue != 17 {
		t.Fatalf("second consumer EstIssue = %d, want 17", cons2.EstIssue)
	}
}

func TestEstimatorMaxOfOperands(t *testing.T) {
	e := est()
	a := mkInst(0, isa.FPMult, isa.NoReg, isa.NoReg, 1) // ready 15
	b := mkInst(1, isa.FPAdd, isa.NoReg, isa.NoReg, 2)  // ready 13
	e.OnDispatch(a, 10)
	e.OnDispatch(b, 10)
	c := mkInst(2, isa.FPAdd, 1, 2, 3)
	e.OnDispatch(c, 10)
	if c.EstIssue != 15 {
		t.Fatalf("EstIssue = %d, want max(15,13)", c.EstIssue)
	}
}

func TestEstimatorLoadLatencyAssumesHit(t *testing.T) {
	e := est()
	ld := mkInst(0, isa.Load, isa.NoReg, isa.NoReg, 3)
	ld.DestFP = true
	e.OnDispatch(ld, 10) // issue 11, dest ready 11 + (1 addr + 2 hit) = 14
	cons := mkInst(1, isa.FPAdd, 3, isa.NoReg, 4)
	cons.Src1FP = true
	e.OnDispatch(cons, 10)
	if cons.EstIssue != 14 {
		t.Fatalf("load consumer EstIssue = %d, want 14", cons.EstIssue)
	}
}

func TestEstimatorAllStoreAddr(t *testing.T) {
	e := est()
	// A store whose address operand is ready: est issue 11, address
	// known at 12. A later load must not be estimated before 12.
	st := mkInst(0, isa.Store, 1, 2, isa.NoReg)
	e.OnDispatch(st, 10)
	ld := mkInst(1, isa.Load, isa.NoReg, isa.NoReg, 3)
	e.OnDispatch(ld, 10)
	if ld.EstIssue != 12 {
		t.Fatalf("load EstIssue = %d, want AllStoreAddr 12", ld.EstIssue)
	}
	// Stores do not constrain non-memory instructions.
	alu := mkInst(2, isa.IntALU, isa.NoReg, isa.NoReg, 4)
	e.OnDispatch(alu, 10)
	if alu.EstIssue != 11 {
		t.Fatalf("ALU EstIssue = %d, want 11", alu.EstIssue)
	}
}

func TestEstimatorStoreChainsAllStoreAddr(t *testing.T) {
	e := est()
	// Store whose address depends on a multiply: addr known late.
	mul := mkInst(0, isa.IntMult, isa.NoReg, isa.NoReg, 1) // ready 11+3=14
	e.OnDispatch(mul, 10)
	st := mkInst(1, isa.Store, 1, 2, isa.NoReg) // est issue 14, addr 15
	e.OnDispatch(st, 10)
	ld := mkInst(2, isa.Load, isa.NoReg, isa.NoReg, 3)
	e.OnDispatch(ld, 10)
	if ld.EstIssue != 15 {
		t.Fatalf("load EstIssue = %d, want 15", ld.EstIssue)
	}
}

func TestEstimatorDomainsSeparate(t *testing.T) {
	e := est()
	fpProd := mkInst(0, isa.FPMult, isa.NoReg, isa.NoReg, 3) // FP 3 ready 15
	e.OnDispatch(fpProd, 10)
	// Integer consumer of *integer* register 3 sees no dependence.
	cons := mkInst(1, isa.IntALU, 3, isa.NoReg, 4)
	e.OnDispatch(cons, 10)
	if cons.EstIssue != 11 {
		t.Fatalf("cross-domain leak: EstIssue = %d, want 11", cons.EstIssue)
	}
}
