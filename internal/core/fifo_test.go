package core

import (
	"testing"

	"distiq/internal/isa"
)

func newTestFIFO(queues, entries int) *issueFIFO {
	s, err := New(DomainConfig{Kind: KindIssueFIFO, Queues: queues, Entries: entries},
		defaultOpts(isa.IntDomain))
	if err != nil {
		panic(err)
	}
	return s.(*issueFIFO)
}

func TestFIFODependentFollowsProducer(t *testing.T) {
	f := newTestFIFO(4, 4)
	env := newFakeEnv()
	prod := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 7)
	cons := mkInst(1, isa.IntALU, 7, isa.NoReg, 8)
	f.Dispatch(env, prod)
	f.Dispatch(env, cons)
	if prod.QueueID != cons.QueueID {
		t.Fatalf("consumer queue %d != producer queue %d", cons.QueueID, prod.QueueID)
	}
	if len(f.queues[prod.QueueID]) != 2 {
		t.Fatal("chain not in one queue")
	}
}

func TestFIFOIndependentChainsSeparateQueues(t *testing.T) {
	f := newTestFIFO(4, 4)
	env := newFakeEnv()
	a := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 1)
	b := mkInst(1, isa.IntALU, isa.NoReg, isa.NoReg, 2)
	f.Dispatch(env, a)
	f.Dispatch(env, b)
	if a.QueueID == b.QueueID {
		t.Fatal("independent instructions share a queue")
	}
}

func TestFIFOSecondOperandPlacement(t *testing.T) {
	f := newTestFIFO(4, 4)
	env := newFakeEnv()
	prod := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 7)
	f.Dispatch(env, prod)
	// First operand (reg 9) has no producer; second (reg 7) does.
	cons := mkInst(1, isa.IntALU, 9, 7, 8)
	f.Dispatch(env, cons)
	if cons.QueueID != prod.QueueID {
		t.Fatal("second-operand placement failed")
	}
}

func TestFIFOTailOnlyAppending(t *testing.T) {
	// A producer buried under another instruction is no longer the
	// tail, so a later consumer must open a new queue.
	f := newTestFIFO(4, 4)
	env := newFakeEnv()
	prod := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 7)
	mid := mkInst(1, isa.IntALU, 7, isa.NoReg, 9) // buries prod
	cons := mkInst(2, isa.IntALU, 7, isa.NoReg, 10)
	f.Dispatch(env, prod)
	f.Dispatch(env, mid)
	f.Dispatch(env, cons)
	if cons.QueueID == prod.QueueID {
		t.Fatal("appended behind a non-tail producer")
	}
}

func TestFIFOStallWhenFullSingleOperand(t *testing.T) {
	f := newTestFIFO(1, 2)
	env := newFakeEnv()
	f.Dispatch(env, mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 7))
	f.Dispatch(env, mkInst(1, isa.IntALU, 7, isa.NoReg, 7))
	// Queue full; dependent single-operand instruction must stall.
	if f.Dispatch(env, mkInst(2, isa.IntALU, 7, isa.NoReg, 8)) {
		t.Fatal("dispatched into full producer queue")
	}
	if f.Occupancy() != 2 {
		t.Fatal("failed dispatch changed occupancy")
	}
}

func TestFIFOStallNoEmptyQueue(t *testing.T) {
	f := newTestFIFO(2, 2)
	env := newFakeEnv()
	f.Dispatch(env, mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 1))
	f.Dispatch(env, mkInst(1, isa.IntALU, isa.NoReg, isa.NoReg, 2))
	// Two queues occupied; an independent instruction needs an empty one.
	if f.Dispatch(env, mkInst(2, isa.IntALU, isa.NoReg, isa.NoReg, 3)) {
		t.Fatal("dispatched with no empty FIFO")
	}
}

func TestFIFOHeadsOnlyIssue(t *testing.T) {
	f := newTestFIFO(2, 4)
	env := newFakeEnv()
	prod := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 7)
	cons := mkInst(1, isa.IntALU, 7, isa.NoReg, 8)
	f.Dispatch(env, prod)
	f.Dispatch(env, cons)
	env.block(false, 7) // producer's dest not ready... block consumer only
	// Producer has no sources: issues. Consumer is not head afterwards
	// until the pop happens; both could issue in separate cycles.
	if n := f.Issue(env, 8); n != 1 {
		t.Fatalf("cycle 1 issued %d, want 1 (head only)", n)
	}
	if env.issued[0] != prod {
		t.Fatal("non-head issued first")
	}
	env.unblock(false, 7)
	if n := f.Issue(env, 8); n != 1 || env.issued[1] != cons {
		t.Fatal("consumer did not issue after becoming head")
	}
}

func TestFIFOIssueOldestHeadsFirst(t *testing.T) {
	f := newTestFIFO(4, 4)
	env := newFakeEnv()
	// Three independent chains; budget 2 must pick the two oldest heads.
	for i := uint64(0); i < 3; i++ {
		f.Dispatch(env, mkInst(i, isa.IntALU, isa.NoReg, isa.NoReg, int16(i)))
	}
	if n := f.Issue(env, 2); n != 2 {
		t.Fatalf("issued %d, want 2", n)
	}
	if env.issued[0].Seq != 0 || env.issued[1].Seq != 1 {
		t.Fatal("heads not issued oldest-first")
	}
}

func TestFIFOMispredictClearsTable(t *testing.T) {
	f := newTestFIFO(4, 4)
	env := newFakeEnv()
	prod := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 7)
	f.Dispatch(env, prod)
	f.OnMispredictResolved()
	cons := mkInst(1, isa.IntALU, 7, isa.NoReg, 8)
	f.Dispatch(env, cons)
	if cons.QueueID == prod.QueueID {
		t.Fatal("consumer used cleared mapping")
	}
}

func TestFIFOEnergyCounters(t *testing.T) {
	f := newTestFIFO(4, 4)
	env := newFakeEnv()
	f.Dispatch(env, mkInst(0, isa.IntALU, 3, 4, 7))
	ev := f.Events()
	if ev.QRenameReads != 2 || ev.QRenameWrites != 1 || ev.FIFOWrites != 1 {
		t.Fatalf("dispatch events wrong: %+v", ev)
	}
	f.Issue(env, 8)
	if ev.RegsReadyReads != 2 || ev.FIFOReads != 1 {
		t.Fatalf("issue events wrong: %+v", ev)
	}
}

func TestFIFOCrossDomainRegistersDistinct(t *testing.T) {
	// Integer register 7 and FP register 7 are different registers; a
	// consumer of FP 7 must not chain behind a producer of int 7.
	f := newTestFIFO(4, 4)
	env := newFakeEnv()
	prodInt := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 7) // writes int 7
	f.Dispatch(env, prodInt)
	consFP := mkInst(1, isa.IntALU, 7, isa.NoReg, 8)
	consFP.Src1FP = true // reads FP 7
	f.Dispatch(env, consFP)
	if consFP.QueueID == prodInt.QueueID {
		t.Fatal("FP register matched integer producer")
	}
}
