package core

import (
	"testing"

	"distiq/internal/isa"
)

func newTestAdaptive(entries int) *adaptiveCAM {
	s, err := New(DomainConfig{Kind: KindAdaptiveCAM, Queues: 1, Entries: entries},
		defaultOpts(isa.IntDomain))
	if err != nil {
		panic(err)
	}
	return s.(*adaptiveCAM)
}

func TestAdaptiveStartsFullSize(t *testing.T) {
	a := newTestAdaptive(64)
	if a.Limit() != 64 || a.Capacity() != 64 {
		t.Fatalf("limit/capacity = %d/%d", a.Limit(), a.Capacity())
	}
	if a.Name() != "AdaptiveCAM" {
		t.Fatal("name")
	}
}

func TestAdaptiveShrinksWhenIdle(t *testing.T) {
	// A workload that never uses the queue deeply: one ready
	// instruction at a time. The youngest portion contributes nothing,
	// so the limit must shrink toward the minimum portion.
	a := newTestAdaptive(64)
	env := newFakeEnv()
	seq := uint64(0)
	for cycle := int64(1); cycle < 20_000; cycle++ {
		env.cycle = cycle
		a.Dispatch(env, mkInst(seq, isa.IntALU, isa.NoReg, isa.NoReg, isa.NoReg))
		seq++
		a.Issue(env, 8)
	}
	if a.Limit() > 16 {
		t.Fatalf("limit = %d, expected shrink toward 8", a.Limit())
	}
	if a.Shrinks == 0 {
		t.Fatal("no shrink decisions recorded")
	}
}

func TestAdaptiveGrowsUnderPressure(t *testing.T) {
	// Force the limit low, then present a deep backlog of unready
	// instructions: dispatch stalls at the limit must trigger growth.
	a := newTestAdaptive(64)
	a.limit = 8
	env := newFakeEnv()
	env.block(false, 5) // nothing ever becomes ready
	seq := uint64(0)
	for cycle := int64(1); cycle < 5_000; cycle++ {
		env.cycle = cycle
		a.Dispatch(env, mkInst(seq, isa.IntALU, 5, isa.NoReg, isa.NoReg))
		seq++
		a.Issue(env, 8)
	}
	if a.Limit() <= 8 {
		t.Fatalf("limit = %d, expected growth under dispatch pressure", a.Limit())
	}
	if a.Grows == 0 {
		t.Fatal("no grow decisions recorded")
	}
}

func TestAdaptiveDispatchRespectsLimit(t *testing.T) {
	a := newTestAdaptive(64)
	a.limit = 8
	env := newFakeEnv()
	env.block(false, 5)
	for i := uint64(0); i < 8; i++ {
		if !a.Dispatch(env, mkInst(i, isa.IntALU, 5, isa.NoReg, isa.NoReg)) {
			t.Fatalf("dispatch %d rejected below limit", i)
		}
	}
	if a.Dispatch(env, mkInst(99, isa.IntALU, 5, isa.NoReg, isa.NoReg)) {
		t.Fatal("dispatch above the effective limit succeeded")
	}
	if a.limitStalls == 0 {
		t.Fatal("limit stall not recorded")
	}
}

func TestAdaptiveIssueOrderPreserved(t *testing.T) {
	a := newTestAdaptive(32)
	env := newFakeEnv()
	for i := uint64(0); i < 4; i++ {
		a.Dispatch(env, mkInst(i, isa.IntALU, isa.NoReg, isa.NoReg, isa.NoReg))
	}
	env.cycle = 1
	a.Issue(env, 2)
	if len(env.issued) != 2 || env.issued[0].Seq != 0 || env.issued[1].Seq != 1 {
		t.Fatalf("issue order wrong: %v", env.issued)
	}
}

func TestAdaptiveConfigValidates(t *testing.T) {
	if err := AdaptiveBaseline64().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DomainConfig{Kind: KindAdaptiveCAM, Queues: 2, Entries: 8}
	if bad.Validate() == nil {
		t.Fatal("multi-queue adaptive CAM validated")
	}
	if KindAdaptiveCAM.String() != "AdaptiveCAM" {
		t.Fatal("kind name")
	}
}
