package core

import (
	"testing"

	"distiq/internal/isa"
	"distiq/internal/rng"
)

// stressEnv is an Env whose operand readiness resolves a fixed number of
// cycles after the producer issues, emulating the pipeline's bypass
// behaviour without the pipeline.
type stressEnv struct {
	cycle   int64
	readyAt map[[2]int32]int64 // (dom,preg) -> cycle usable
	issued  []*isa.Inst
	budget  int
}

func newStressEnv() *stressEnv {
	return &stressEnv{readyAt: map[[2]int32]int64{}, budget: 1 << 30}
}

func key(fp bool, preg int16) [2]int32 {
	d := int32(0)
	if fp {
		d = 1
	}
	return [2]int32{d, int32(preg)}
}

func (e *stressEnv) Cycle() int64 { return e.cycle }

func (e *stressEnv) OperandReady(fp bool, preg int16) bool {
	at, ok := e.readyAt[key(fp, preg)]
	return !ok || at <= e.cycle // unknown registers are architecturally ready
}

func (e *stressEnv) TryIssue(in *isa.Inst) bool {
	if e.budget <= 0 {
		return false
	}
	if !OperandsReady(e, in) {
		return false
	}
	e.budget--
	lat := int64(isa.DefaultLatencies()[in.Class])
	if in.Class == isa.Load {
		lat += 2
	}
	if in.PDest != isa.NoReg {
		e.readyAt[key(in.DestFP, in.PDest)] = e.cycle + lat
	}
	in.Issued = true
	e.issued = append(e.issued, in)
	return true
}

func (e *stressEnv) Older(a, b uint32) bool {
	if a == b {
		return false
	}
	return (b-a)&511 < 256
}

// TestSchemeStress drives every organization with randomized dependent
// traffic and checks conservation and liveness: every dispatched
// instruction eventually issues exactly once, occupancy bookkeeping stays
// consistent, and the scheme never exceeds its capacity.
func TestSchemeStress(t *testing.T) {
	mk := func(kind Kind, chains int) func() Scheme {
		return func() Scheme {
			s, err := New(DomainConfig{Kind: kind, Queues: 4, Entries: 8, Chains: chains},
				defaultOpts(isa.FPDomain))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	camMk := func() Scheme {
		s, err := New(DomainConfig{Kind: KindCAM, Queues: 1, Entries: 32},
			defaultOpts(isa.FPDomain))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	adaptiveMk := func() Scheme {
		s, err := New(DomainConfig{Kind: KindAdaptiveCAM, Queues: 1, Entries: 32},
			defaultOpts(isa.FPDomain))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := map[string]func() Scheme{
		"CAM":         camMk,
		"AdaptiveCAM": adaptiveMk,
		"IssueFIFO":   mk(KindIssueFIFO, 0),
		"MixBUFF":     mk(KindMixBUFF, 4),
		"MixBUFF-unb": mk(KindMixBUFF, 0),
	}
	for name, build := range cases {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			stressOne(t, build())
		})
	}

	// PreSched needs the estimator wired.
	t.Run("PreSched", func(t *testing.T) {
		opt := defaultOpts(isa.FPDomain)
		opt.Estimator = NewEstimator(opt.Latencies, opt.MemHitLat)
		s, err := New(DomainConfig{Kind: KindPreSched, Queues: 1, Entries: 32, Chains: 8}, opt)
		if err != nil {
			t.Fatal(err)
		}
		stressLat(t, s, opt.Estimator)
	})

	// LatFIFO needs the estimator wired.
	t.Run("LatFIFO", func(t *testing.T) {
		opt := defaultOpts(isa.FPDomain)
		opt.Estimator = NewEstimator(opt.Latencies, opt.MemHitLat)
		s, err := New(DomainConfig{Kind: KindLatFIFO, Queues: 4, Entries: 8}, opt)
		if err != nil {
			t.Fatal(err)
		}
		stressLat(t, s, opt.Estimator)
	})
}

func stressOne(t *testing.T, s Scheme) {
	stress(t, s, nil)
}

func stressLat(t *testing.T, s Scheme, est *Estimator) {
	stress(t, s, est)
}

func stress(t *testing.T, s Scheme, est *Estimator) {
	t.Helper()
	env := newStressEnv()
	r := rng.New(uint64(len(s.Name())) * 977)

	const total = 6000
	dispatched := 0
	seq := uint64(0)
	inFlight := map[uint64]bool{}
	issuedSeqs := map[uint64]bool{}
	var lastDest int16 = isa.NoReg

	for env.cycle = 1; dispatched < total || len(inFlight) > 0; env.cycle++ {
		if env.cycle > 20*total {
			t.Fatalf("%s: livelock, %d in flight after %d cycles (occ %d)",
				s.Name(), len(inFlight), env.cycle, s.Occupancy())
		}
		// Issue phase.
		before := len(env.issued)
		s.Issue(env, 4)
		for _, in := range env.issued[before:] {
			if issuedSeqs[in.Seq] {
				t.Fatalf("%s: seq %d issued twice", s.Name(), in.Seq)
			}
			issuedSeqs[in.Seq] = true
			if !inFlight[in.Seq] {
				t.Fatalf("%s: issued seq %d that was never dispatched", s.Name(), in.Seq)
			}
			delete(inFlight, in.Seq)
		}
		// Dispatch phase: up to 4 per cycle, random dependence on the
		// previous destination half the time.
		for k := 0; k < 4 && dispatched < total; k++ {
			var src1 int16 = isa.NoReg
			if lastDest != isa.NoReg && r.Bool(0.5) {
				src1 = lastDest
			}
			dest := int16(r.Intn(32))
			in := mkInst(seq, isa.FPAdd, src1, isa.NoReg, dest)
			if est != nil {
				est.OnDispatch(in, env.cycle)
			}
			if !s.Dispatch(env, in) {
				if s.Occupancy() == 0 {
					t.Fatalf("%s: dispatch stalled on empty scheme", s.Name())
				}
				break
			}
			inFlight[in.Seq] = true
			seq++
			dispatched++
			lastDest = dest
			if s.Occupancy() > s.Capacity() {
				t.Fatalf("%s: occupancy %d exceeds capacity %d",
					s.Name(), s.Occupancy(), s.Capacity())
			}
		}
		// Occasional mispredict-resolution clears.
		if r.Bool(0.01) {
			s.OnMispredictResolved()
		}
		// Occasional result broadcasts for CAM accounting.
		if r.Bool(0.2) {
			s.OnComplete(env, true)
		}
	}
	if s.Occupancy() != 0 {
		t.Fatalf("%s: %d instructions stuck at end", s.Name(), s.Occupancy())
	}
	if len(issuedSeqs) != total {
		t.Fatalf("%s: issued %d of %d dispatched", s.Name(), len(issuedSeqs), total)
	}
}
