package core

import (
	"testing"

	"distiq/internal/isa"
)

func newTestCAM(entries int) *camQueue {
	s, err := New(DomainConfig{Kind: KindCAM, Queues: 1, Entries: entries},
		defaultOpts(isa.IntDomain))
	if err != nil {
		panic(err)
	}
	return s.(*camQueue)
}

func TestCAMOldestFirstIssue(t *testing.T) {
	q := newTestCAM(8)
	env := newFakeEnv()
	for i := uint64(0); i < 4; i++ {
		if !q.Dispatch(env, mkInst(i, isa.IntALU, isa.NoReg, isa.NoReg, int16(i))) {
			t.Fatalf("dispatch %d failed", i)
		}
	}
	n := q.Issue(env, 2)
	if n != 2 || len(env.issued) != 2 {
		t.Fatalf("issued %d, want 2", n)
	}
	if env.issued[0].Seq != 0 || env.issued[1].Seq != 1 {
		t.Fatalf("issue order %d,%d not oldest-first", env.issued[0].Seq, env.issued[1].Seq)
	}
	if q.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", q.Occupancy())
	}
}

func TestCAMSkipsUnready(t *testing.T) {
	q := newTestCAM(8)
	env := newFakeEnv()
	blocked := mkInst(0, isa.IntALU, 5, isa.NoReg, 6)
	readyIn := mkInst(1, isa.IntALU, isa.NoReg, isa.NoReg, 7)
	env.block(false, 5)
	q.Dispatch(env, blocked)
	q.Dispatch(env, readyIn)
	if n := q.Issue(env, 8); n != 1 {
		t.Fatalf("issued %d, want 1", n)
	}
	if env.issued[0].Seq != 1 {
		t.Fatal("issued the blocked instruction")
	}
	// Unblock: the older instruction issues next cycle.
	env.unblock(false, 5)
	env.issued = nil
	if n := q.Issue(env, 8); n != 1 || env.issued[0].Seq != 0 {
		t.Fatal("unblocked instruction did not issue")
	}
}

func TestCAMCapacityStalls(t *testing.T) {
	q := newTestCAM(2)
	env := newFakeEnv()
	q.Dispatch(env, mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 1))
	q.Dispatch(env, mkInst(1, isa.IntALU, isa.NoReg, isa.NoReg, 2))
	if q.Dispatch(env, mkInst(2, isa.IntALU, isa.NoReg, isa.NoReg, 3)) {
		t.Fatal("dispatch into full CAM queue succeeded")
	}
	if q.Capacity() != 2 {
		t.Fatalf("capacity = %d", q.Capacity())
	}
}

func TestCAMWakeupCountsUnreadyMatchingDomain(t *testing.T) {
	q := newTestCAM(8)
	env := newFakeEnv()
	// Entry with one unready int operand and one unready FP operand.
	in := mkInst(0, isa.IntALU, 3, 4, 5)
	in.Src2FP = true
	env.block(false, 3)
	env.block(true, 4)
	q.Dispatch(env, in)

	q.OnComplete(env, false) // int result: matches src1 only
	if q.ev.WakeupCAMCells != 1 {
		t.Fatalf("int broadcast cells = %d, want 1", q.ev.WakeupCAMCells)
	}
	q.OnComplete(env, true) // fp result: matches src2 only
	if q.ev.WakeupCAMCells != 2 {
		t.Fatalf("fp broadcast cells = %d, want 2", q.ev.WakeupCAMCells)
	}
	if q.ev.WakeupBroadcasts != 2 {
		t.Fatalf("broadcasts = %d, want 2", q.ev.WakeupBroadcasts)
	}
	// Ready operands cost nothing (Folegnani-González).
	env.unblock(false, 3)
	env.unblock(true, 4)
	q.OnComplete(env, false)
	if q.ev.WakeupCAMCells != 2 {
		t.Fatal("ready operands consumed wakeup energy")
	}
}

func TestCAMEmptyQueueSelectGated(t *testing.T) {
	q := newTestCAM(8)
	env := newFakeEnv()
	q.Issue(env, 8)
	if q.ev.SelectOps != 0 {
		t.Fatal("selection consumed energy on empty queue")
	}
	q.OnComplete(env, false)
	if q.ev.WakeupBroadcasts != 0 {
		t.Fatal("wakeup consumed energy on empty queue")
	}
}

func TestCAMBudgetRespected(t *testing.T) {
	q := newTestCAM(16)
	env := newFakeEnv()
	for i := uint64(0); i < 10; i++ {
		q.Dispatch(env, mkInst(i, isa.IntALU, isa.NoReg, isa.NoReg, isa.NoReg))
	}
	if n := q.Issue(env, 8); n != 8 {
		t.Fatalf("issued %d, want 8 (width)", n)
	}
	if q.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", q.Occupancy())
	}
}

func TestCAMGeometryBanked(t *testing.T) {
	g := newTestCAM(64).Geometry()
	if g.Banks != 8 {
		t.Fatalf("64-entry queue banks = %d, want 8", g.Banks)
	}
	if newTestCAM(16).Geometry().Banks != 1 {
		t.Fatal("small queue should be unbanked")
	}
}

func TestCAMTryIssueVetoKeepsEntry(t *testing.T) {
	q := newTestCAM(8)
	env := newFakeEnv()
	in := mkInst(0, isa.IntALU, isa.NoReg, isa.NoReg, 1)
	q.Dispatch(env, in)
	env.veto[0] = true
	if n := q.Issue(env, 8); n != 0 {
		t.Fatalf("issued %d with veto", n)
	}
	if q.Occupancy() != 1 {
		t.Fatal("vetoed instruction was removed")
	}
	delete(env.veto, 0)
	if n := q.Issue(env, 8); n != 1 {
		t.Fatal("instruction lost after veto")
	}
}
