// fpsweep retells section 3 of the paper on the FP suite: dependence-based
// FIFOs (IssueFIFO) lose badly on floating-point codes because their wide
// dependence graphs need more queues than is practical; placing by
// estimated issue time (LatFIFO) recovers part of the loss; mixing both
// criteria in multi-chain buffers (MixBUFF) recovers most of it.
//
// The program sweeps the paper's FP queue configurations ({8,10,12} queues
// x {8,16} entries) for all three organizations and prints the
// harmonic-mean IPC loss against the unbounded conventional queue —
// a condensed view of Figures 3, 4 and 6.
package main

import (
	"fmt"
	"log"

	"distiq"
	"distiq/internal/metrics"
)

func main() {
	s := distiq.NewSession(distiq.Options{Warmup: 10_000, Instructions: 60_000})

	sweep := [][2]int{{8, 8}, {8, 16}, {10, 8}, {10, 16}, {12, 8}, {12, 16}}
	schemes := []struct {
		name string
		mk   func(c, d int) distiq.Config
	}{
		{"IssueFIFO", func(c, d int) distiq.Config { return distiq.IssueFIFOCfg(16, 16, c, d) }},
		{"LatFIFO", func(c, d int) distiq.Config { return distiq.LatFIFOCfg(16, 16, c, d) }},
		{"MixBUFF", func(c, d int) distiq.Config { return distiq.MixBUFFCfg(16, 16, c, d, 0) }},
	}

	baseRuns, err := s.SuiteRuns(distiq.SuiteFP, distiq.Unbounded())
	if err != nil {
		log.Fatal(err)
	}
	hmBase := metrics.HarmonicMeanIPC(baseRuns)
	fmt.Printf("SPECFP harmonic-mean IPC loss vs unbounded baseline (HM %.2f)\n\n", hmBase)
	fmt.Printf("%-12s", "FP queues")
	for _, sch := range schemes {
		fmt.Printf(" %12s", sch.name)
	}
	fmt.Println()

	for _, qe := range sweep {
		fmt.Printf("%-12s", fmt.Sprintf("%dx%d", qe[0], qe[1]))
		for _, sch := range schemes {
			runs, err := s.SuiteRuns(distiq.SuiteFP, sch.mk(qe[0], qe[1]))
			if err != nil {
				log.Fatal(err)
			}
			loss := 100 * (1 - metrics.HarmonicMeanIPC(runs)/hmBase)
			fmt.Printf(" %11.1f%%", loss)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper): IssueFIFO worst, LatFIFO intermediate, MixBUFF")
	fmt.Println("close to the unbounded baseline; buffer entries matter more than queues")
	fmt.Println("for MixBUFF.")
}
