// powerbreakdown reproduces the energy story of the paper's section 4:
// where the issue-logic energy goes for each organization (Figures 9-11)
// and the resulting power-efficiency metrics (Figures 12-15).
package main

import (
	"fmt"
	"log"

	"distiq"
)

func main() {
	s := distiq.NewSession(distiq.Options{Warmup: 10_000, Instructions: 60_000})

	for _, fn := range []int{9, 10, 11} {
		tab, err := distiq.Figure(fn, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tab)
		fmt.Println()
	}

	fmt.Println("Power-efficiency, normalized to IQ_64_64:")
	for _, fn := range []int{12, 13, 14, 15} {
		tab, err := distiq.Figure(fn, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tab)
		fmt.Println()
	}
	fmt.Println("Expected shape (paper): wakeup dominates the baseline; the")
	fmt.Println("distributed schemes spend a fraction of its power and energy;")
	fmt.Println("MB_distr wins energy-delay for FP and matches the baseline's ED².")
}
