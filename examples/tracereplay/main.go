// tracereplay demonstrates the binary trace substrate: capture a workload
// to a file once, then replay it through different issue-queue
// configurations. Replay is bit-faithful — the same trace produces the
// same cycle count as the live generator — so captured traces make
// configuration comparisons exactly reproducible, the role SimpleScalar's
// EIO traces play in the paper's methodology.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"distiq"
	"distiq/internal/trace"
)

func main() {
	const bench = "equake"
	const instructions = 120_000

	path := filepath.Join(os.TempDir(), bench+".diqt")
	model, err := distiq.WorkloadByName(bench)
	if err != nil {
		log.Fatal(err)
	}

	// Capture once.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Capture(f, model, instructions); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("captured %d instructions of %s to %s (%.1f KiB, %.1f bytes/instr)\n\n",
		instructions, bench, path, float64(info.Size())/1024,
		float64(info.Size())/instructions)

	// Replay under every evaluated configuration.
	fmt.Printf("%-14s %8s %10s\n", "configuration", "IPC", "cycles")
	for _, cfg := range []distiq.Config{
		distiq.Baseline64(), distiq.IFDistr(), distiq.MBDistr(),
	} {
		rf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		reader, err := trace.NewReader(rf)
		if err != nil {
			log.Fatal(err)
		}
		p, err := distiq.NewPipeline(distiq.DefaultProcessor(cfg), reader)
		if err != nil {
			log.Fatal(err)
		}
		p.Warmup(20_000)
		p.Run(80_000)
		st := p.Stats()
		fmt.Printf("%-14s %8.3f %10d\n", cfg.Name, st.IPC(), st.Cycles)
		rf.Close()
	}
	os.Remove(path)
}
