// ablation reproduces the paper's headline comparison as a study
// instead of a hand-rolled sweep: a baseline conventional 64-entry CAM
// issue queue against the distributed MixBUFF scheme, a halved window,
// and an oracle memory-dependence predictor. The study layer expands
// each variant into a single-configuration scenario, resolves every
// point through the content-addressed engine, and emits a deterministic
// variant x metric table with IPC and energy deltas against the
// baseline — byte-identical across reruns and across Local, Remote and
// Fleet clients.
package main

import (
	"context"
	"fmt"
	"log"

	"distiq"
)

func main() {
	oracle := true
	spec := distiq.NewStudy("scheme-ablation").
		Ablation().
		WithBenchmarks("swim", "applu").
		WithVariants(
			distiq.StudyVariant{Name: "mb-distr", Scheme: "MB_distr"},
			distiq.StudyVariant{Name: "small-rob", ROB: 128},
			distiq.StudyVariant{Name: "oracle-disambig", PerfectDisambiguation: &oracle},
		)
	planned, err := spec.PlannedPoints()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("study %q: %d planned points\n\n", spec.Name, planned)

	cl := distiq.NewLocalClient(distiq.WithParallel(0)) // 0 = GOMAXPROCS
	res, err := distiq.RunStudy(context.Background(), cl, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Markdown())
	fmt.Printf("\nresolved: %d simulated, %d memory hits, %d deduplicated\n",
		res.Counts.Simulated, res.Counts.MemoryHits, res.Counts.Shared)

	// The same study on the client's warm caches: zero new simulations,
	// and the emitted table is byte-identical.
	again, err := distiq.RunStudy(context.Background(), cl, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm rerun: %d simulated, table identical: %v\n",
		again.Counts.Simulated, again.CSV() == res.CSV())
}
