// remotesweep drives a live distiqd service through the RemoteClient —
// the same Client interface as the in-process engine, pointed at HTTP.
//
// The example hosts the service itself (distiq.NewServer is the same
// handler cmd/distiqd serves) on a loopback listener, then runs a
// scenario sweep against it twice:
//
//  1. cold — the service simulates every point; results stream back as
//     NDJSON in deterministic grid order while the sweep runs;
//  2. warm — the same grid resubmitted resolves entirely from the
//     service's caches (0 simulated), and the collected document is
//     byte-identical to the first pass.
//
// Against a real deployment, replace the embedded server with the
// daemon's address:
//
//	cl := distiq.NewRemoteClient("http://localhost:8090")
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"distiq"
)

func main() {
	// Host the experiment service in-process on a loopback port.
	srv := distiq.NewServer(distiq.ServerConfig{Parallel: 0}) // 0 = GOMAXPROCS
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln) //nolint:errcheck // closed on exit
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("distiqd serving on %s\n\n", base)

	spec := distiq.NewScenario("remote-rob-ablation").
		WithBenchmarks("swim", "lucas").
		WithNamed("MB_distr", "IQ_64_64").
		WithROB(128, 256).
		WithLengths(10_000, 60_000)
	grid, err := spec.Expand()
	if err != nil {
		log.Fatal(err)
	}

	// The client is the interface, the substrate is a constructor: this
	// program would run unchanged with distiq.NewLocalClient().
	var cl distiq.Client = distiq.NewRemoteClient(base)
	ctx := context.Background()

	fmt.Printf("cold sweep: %d points streaming from the service\n", grid.Size())
	stream := cl.Sweep(ctx, grid)
	for stream.Next() {
		u := stream.Update()
		fmt.Printf("  [%2d/%d] %-8s rob=%s  IPC %.3f  (%s)\n",
			u.Index+1, grid.Size(), u.Point.Bench, u.Point.Values[4], u.Result.IPC(), u.Source)
	}
	if err := stream.Err(); err != nil {
		log.Fatal(err)
	}
	cold := stream.Counts()

	// Resubmit: the service's engine is warm, so nothing simulates.
	warmStream := cl.Sweep(ctx, grid)
	res, err := warmStream.ResultSet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Markdown())
	warm := warmStream.Counts()
	fmt.Printf("\ncold: %d simulated; warm rerun: %d simulated, %d served from the service's caches\n",
		cold.Simulated, warm.Simulated, warm.Total()-warm.Simulated)
}
