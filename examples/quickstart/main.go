// Quickstart: simulate one benchmark under the paper's proposed MB_distr
// issue logic and the conventional IQ_64_64 baseline, and compare
// performance and issue-logic energy — the paper's headline trade-off.
package main

import (
	"fmt"
	"log"

	"distiq"
)

func main() {
	opt := distiq.Options{Warmup: 20_000, Instructions: 100_000}

	baseline, err := distiq.Run("swim", distiq.Baseline64(), opt)
	if err != nil {
		log.Fatal(err)
	}
	proposed, err := distiq.Run("swim", distiq.MBDistr(), opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("swim (SPECFP stand-in), 100k instructions")
	fmt.Printf("%-22s %10s %14s %16s\n", "configuration", "IPC", "IQ energy", "pJ/instruction")
	for _, r := range []distiq.Result{baseline, proposed} {
		fmt.Printf("%-22s %10.3f %11.1f nJ %16.2f\n",
			r.Config, r.IPC(), r.IQEnergy/1000, r.IQEnergy/float64(r.Insts))
	}
	fmt.Printf("\nMB_distr keeps %.1f%% of the baseline IPC while using %.1f%% of its issue-logic energy.\n",
		100*proposed.IPC()/baseline.IPC(), 100*proposed.IQEnergy/baseline.IQEnergy)
}
