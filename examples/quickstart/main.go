// Quickstart: simulate one benchmark under the paper's proposed MB_distr
// issue logic and the conventional IQ_64_64 baseline, and compare
// performance and issue-logic energy — the paper's headline trade-off.
//
// Jobs run through the Client API: one context-aware interface whose
// local implementation shards work across the concurrent engine (and
// whose remote implementation speaks to a distiqd service — see
// examples/remotesweep).
package main

import (
	"context"
	"fmt"
	"log"

	"distiq"
)

func main() {
	ctx := context.Background()
	cl := distiq.NewLocalClient() // GOMAXPROCS workers, in-memory caching
	opt := distiq.Options{Warmup: 20_000, Instructions: 100_000}

	baseline, err := cl.Run(ctx, distiq.Job{Bench: "swim", Config: distiq.Baseline64(), Opt: opt})
	if err != nil {
		log.Fatal(err)
	}
	proposed, err := cl.Run(ctx, distiq.Job{Bench: "swim", Config: distiq.MBDistr(), Opt: opt})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("swim (SPECFP stand-in), 100k instructions")
	fmt.Printf("%-22s %10s %14s %16s\n", "configuration", "IPC", "IQ energy", "pJ/instruction")
	for _, r := range []distiq.Result{baseline, proposed} {
		fmt.Printf("%-22s %10.3f %11.1f nJ %16.2f\n",
			r.Config, r.IPC(), r.IQEnergy/1000, r.IQEnergy/float64(r.Insts))
	}
	fmt.Printf("\nMB_distr keeps %.1f%% of the baseline IPC while using %.1f%% of its issue-logic energy.\n",
		100*proposed.IPC()/baseline.IPC(), 100*proposed.IQEnergy/baseline.IQEnergy)
}
