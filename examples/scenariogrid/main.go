// scenariogrid goes beyond the paper's fixed Table 1 machine: it asks
// whether MixBUFF's advantage over the conventional 64-entry CAM queue
// survives a smaller window and an oracle memory-dependence predictor —
// the Section 5 sensitivity questions — using a declarative scenario
// grid instead of hand-written loops.
//
// The grid crosses {MB_distr, IQ_64_64} x ROB {128, 256} x perfect
// disambiguation {off, on} over two FP benchmarks, shards it across the
// engine's worker pool, and prints a markdown table. Rerunning with a
// populated cache directory performs zero new simulations.
package main

import (
	"fmt"
	"log"

	"distiq"
)

func main() {
	spec := distiq.NewScenario("window-and-disambiguation").
		WithBenchmarks("swim", "applu").
		WithNamed("MB_distr", "IQ_64_64").
		WithROB(128, 256).
		WithPerfectDisambiguation(false, true).
		WithLengths(10_000, 60_000)

	grid, err := spec.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d points over axes %v\n\n", grid.Size(), grid.Axes)

	res, err := grid.Run(distiq.ScenarioRunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Markdown())
	fmt.Printf("\nengine: %d simulated, %d deduplicated\n",
		res.Stats.Simulated, res.Stats.Shared)
}
