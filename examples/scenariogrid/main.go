// scenariogrid goes beyond the paper's fixed Table 1 machine: it asks
// whether MixBUFF's advantage over the conventional 64-entry CAM queue
// survives a smaller window and an oracle memory-dependence predictor —
// the Section 5 sensitivity questions — using a declarative scenario
// grid instead of hand-written loops.
//
// The grid crosses {MB_distr, IQ_64_64} x ROB {128, 256} x perfect
// disambiguation {off, on} over two FP benchmarks and runs through the
// Client API: results stream back point by point in deterministic grid
// order while the sweep shards across the worker pool, then the stream's
// counts say how each point was resolved. Rerunning with a populated
// cache directory performs zero new simulations; Ctrl-C would cancel the
// context and stop the sweep cleanly.
package main

import (
	"context"
	"fmt"
	"log"

	"distiq"
)

func main() {
	spec := distiq.NewScenario("window-and-disambiguation").
		WithBenchmarks("swim", "applu").
		WithNamed("MB_distr", "IQ_64_64").
		WithROB(128, 256).
		WithPerfectDisambiguation(false, true).
		WithLengths(10_000, 60_000)

	grid, err := spec.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d points over axes %v\n\n", grid.Size(), grid.Axes)

	cl := distiq.NewLocalClient(distiq.WithParallel(0)) // 0 = GOMAXPROCS
	stream := cl.Sweep(context.Background(), grid)
	for stream.Next() {
		u := stream.Update()
		fmt.Printf("  [%2d/%d] %-8s %v  IPC %.3f  (%s)\n",
			u.Index+1, grid.Size(), u.Point.Bench, u.Point.Values, u.Result.IPC(), u.Source)
	}
	if err := stream.Err(); err != nil {
		log.Fatal(err)
	}

	// The same grid again on the client's warm caches: every point is a
	// memory hit, and the collected table is byte-identical.
	res, err := cl.Sweep(context.Background(), grid).ResultSet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Markdown())
	c := stream.Counts()
	fmt.Printf("\nfirst pass: %d simulated, %d deduplicated; engine total: %+v\n",
		c.Simulated, c.Shared, cl.Stats().Simulated)
}
