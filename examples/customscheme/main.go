// customscheme demonstrates the library's extension point: a user-defined
// issue-queue organization plugged into the same pipeline and workloads as
// the paper's schemes.
//
// The custom organization below ("RoundRobinFIFO") uses the same FIFO
// hardware as IssueFIFO but ignores dependences when placing instructions,
// assigning queues round-robin. Comparing it against real IssueFIFO
// quantifies how much of Palacharla's design is the *dependence-based
// placement* rather than the FIFOs themselves — an ablation the paper's
// related-work discussion implies but never plots.
package main

import (
	"fmt"
	"log"

	"distiq"
	"distiq/internal/isa"
	"distiq/internal/power"
)

// rrFIFO is a bank of FIFO queues with round-robin placement. Only heads
// may issue, as in IssueFIFO.
type rrFIFO struct {
	queues  [][]*isa.Inst
	entries int
	next    int
	occ     int
	ev      power.Events
	heads   []*isa.Inst
}

func newRRFIFO(cfg distiq.DomainConfig, opt distiq.SchemeOptions) (distiq.Scheme, error) {
	f := &rrFIFO{entries: cfg.Entries, queues: make([][]*isa.Inst, cfg.Queues)}
	for i := range f.queues {
		f.queues[i] = make([]*isa.Inst, 0, cfg.Entries)
	}
	return f, nil
}

func (f *rrFIFO) Name() string                { return "RoundRobinFIFO" }
func (f *rrFIFO) Occupancy() int              { return f.occ }
func (f *rrFIFO) Capacity() int               { return len(f.queues) * f.entries }
func (f *rrFIFO) Events() *power.Events       { return &f.ev }
func (f *rrFIFO) OnComplete(distiq.Env, bool) {}
func (f *rrFIFO) OnMispredictResolved()       {}

func (f *rrFIFO) Geometry() power.Geometry {
	return power.Geometry{
		Style: power.StyleFIFO, Queues: len(f.queues), Entries: f.entries,
		TagBits: 8, PayloadBits: 80,
	}
}

func (f *rrFIFO) Dispatch(env distiq.Env, in *isa.Inst) bool {
	for tries := 0; tries < len(f.queues); tries++ {
		qi := (f.next + tries) % len(f.queues)
		if len(f.queues[qi]) < f.entries {
			in.QueueID = qi
			f.queues[qi] = append(f.queues[qi], in)
			f.next = (qi + 1) % len(f.queues)
			f.occ++
			f.ev.FIFOWrites++
			return true
		}
	}
	return false
}

func (f *rrFIFO) Issue(env distiq.Env, budget int) int {
	f.heads = f.heads[:0]
	for qi := range f.queues {
		if len(f.queues[qi]) > 0 {
			f.heads = append(f.heads, f.queues[qi][0])
		}
	}
	issued := 0
	for _, in := range f.heads {
		if issued >= budget {
			break
		}
		if !env.TryIssue(in) {
			continue
		}
		qi := in.QueueID
		copy(f.queues[qi], f.queues[qi][1:])
		f.queues[qi] = f.queues[qi][:len(f.queues[qi])-1]
		f.occ--
		f.ev.FIFOReads++
		issued++
	}
	return issued
}

func main() {
	opt := distiq.Options{Warmup: 10_000, Instructions: 60_000}

	custom := distiq.Config{
		Name: "RoundRobinFIFO_8x8_8x16",
		Int:  distiq.DomainConfig{Queues: 8, Entries: 8, Custom: newRRFIFO},
		FP:   distiq.DomainConfig{Queues: 8, Entries: 16, Custom: newRRFIFO},
	}
	configs := []distiq.Config{
		distiq.Unbounded(),
		distiq.IssueFIFOCfg(8, 8, 8, 16),
		custom,
	}

	benchmarks := []string{"gzip", "vortex", "swim", "lucas"}
	fmt.Printf("%-10s", "benchmark")
	for _, c := range configs {
		fmt.Printf(" %26s", c.Name)
	}
	fmt.Println()
	for _, b := range benchmarks {
		fmt.Printf("%-10s", b)
		for _, cfg := range configs {
			res, err := distiq.Run(b, cfg, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %21.3f IPC", res.IPC())
		}
		fmt.Println()
	}
	fmt.Println("\nRound-robin placement breaks the only-heads-issue invariant that")
	fmt.Println("dependence-based placement exploits: dependent instructions land")
	fmt.Println("behind unrelated ones and stall whole queues. The gap versus")
	fmt.Println("IssueFIFO is the value of Palacharla's placement heuristic.")
}
