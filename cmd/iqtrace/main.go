// Command iqtrace inspects the synthetic workload models: instruction mix,
// branch behaviour and dependence-graph width. It documents why the
// integer and FP suites exercise the issue-queue organizations so
// differently.
//
// Usage:
//
//	iqtrace                          # summary of all 26 benchmarks
//	iqtrace -bench swim              # detailed report for one benchmark
//	iqtrace -bench swim -dump t.diqt # capture a binary trace file
//	iqtrace -replay t.diqt           # summarize a captured trace file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"distiq"
	"distiq/internal/isa"
	"distiq/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark to inspect in detail (default: summarize all)")
		n      = flag.Int("n", 100_000, "instructions to sample")
		dump   = flag.String("dump", "", "capture the benchmark to a binary trace file")
		replay = flag.String("replay", "", "summarize a previously captured trace file")
	)
	flag.Parse()

	if err := run(os.Stdout, *bench, *n, *dump, *replay); err != nil {
		fmt.Fprintln(os.Stderr, "iqtrace:", err)
		os.Exit(1)
	}
}

// run dispatches the command's modes: replay a captured file, capture a
// benchmark, report one benchmark in detail, or summarize all of them.
func run(w io.Writer, bench string, n int, dump, replay string) error {
	if n <= 0 {
		return fmt.Errorf("-n %d: must be positive", n)
	}
	switch {
	case replay != "":
		return summarizeFile(w, replay, n)
	case dump != "":
		return captureFile(w, bench, dump, n)
	case bench != "":
		return detailBenchmark(w, bench, n)
	default:
		return summarizeAll(w, n)
	}
}

// captureFile writes a benchmark's instruction stream to a binary trace
// file.
func captureFile(w io.Writer, bench, path string, n int) error {
	if bench == "" {
		return fmt.Errorf("-dump requires -bench")
	}
	model, err := trace.ByName(bench)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Capture(f, model, n); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "captured %d instructions of %s to %s\n", n, bench, path)
	return nil
}

// detailBenchmark prints one benchmark's full workload statistics.
func detailBenchmark(w io.Writer, bench string, n int) error {
	model, err := trace.ByName(bench)
	if err != nil {
		return err
	}
	g := trace.NewGenerator(model)
	st := trace.CollectStats(g, n)
	fmt.Fprintf(w, "%s (%s, %d static instructions)\n", model.Name, model.Suite, g.StaticSize())
	fmt.Fprint(w, st)
	return nil
}

// summarizeAll prints the one-line-per-benchmark characterization table.
func summarizeAll(w io.Writer, n int) error {
	fmt.Fprintf(w, "%-10s %-8s %7s %7s %7s %7s %9s\n",
		"benchmark", "suite", "branch%", "mem%", "fp%", "taken%", "fp-width")
	for _, name := range distiq.AllBenchmarks() {
		model := trace.MustByName(name)
		g := trace.NewGenerator(model)
		st := trace.CollectStats(g, n)
		memFrac := float64(st.ByClass[isa.Load]+st.ByClass[isa.Store]) / float64(st.Total)
		fmt.Fprintf(w, "%-10s %-8s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %9.1f\n",
			name, model.Suite,
			100*st.BranchFrac(), 100*memFrac, 100*st.FPFrac(),
			100*st.TakenRate(), st.WindowChainWidth)
	}
	return nil
}

// summarizeFile prints the class mix of a captured trace file.
func summarizeFile(w io.Writer, path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trace of %s\n", r.Benchmark())
	var counts [isa.NumClasses]uint64
	var in isa.Inst
	for i := 0; i < n; i++ {
		if err := r.ReadInst(&in); err != nil {
			return err
		}
		counts[in.Class]++
		if r.Wraps > 0 {
			break // one full pass is enough for a summary
		}
	}
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s %6.2f%%\n", c, 100*float64(counts[c])/float64(total))
	}
	fmt.Fprintf(w, "  records: %d\n", total)
	return nil
}
