// Command iqtrace inspects the synthetic workload models: instruction mix,
// branch behaviour and dependence-graph width. It documents why the
// integer and FP suites exercise the issue-queue organizations so
// differently.
//
// Usage:
//
//	iqtrace                          # summary of all 26 benchmarks
//	iqtrace -bench swim              # detailed report for one benchmark
//	iqtrace -bench swim -dump t.diqt # capture a binary trace file
//	iqtrace -replay t.diqt           # summarize a captured trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"distiq"
	"distiq/internal/isa"
	"distiq/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark to inspect in detail (default: summarize all)")
		n      = flag.Int("n", 100_000, "instructions to sample")
		dump   = flag.String("dump", "", "capture the benchmark to a binary trace file")
		replay = flag.String("replay", "", "summarize a previously captured trace file")
	)
	flag.Parse()

	if *replay != "" {
		if err := summarizeFile(*replay, *n); err != nil {
			fmt.Fprintln(os.Stderr, "iqtrace:", err)
			os.Exit(1)
		}
		return
	}
	if *dump != "" {
		if *bench == "" {
			fmt.Fprintln(os.Stderr, "iqtrace: -dump requires -bench")
			os.Exit(1)
		}
		model, err := trace.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iqtrace:", err)
			os.Exit(1)
		}
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iqtrace:", err)
			os.Exit(1)
		}
		if err := trace.Capture(f, model, *n); err != nil {
			fmt.Fprintln(os.Stderr, "iqtrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "iqtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("captured %d instructions of %s to %s\n", *n, *bench, *dump)
		return
	}

	if *bench != "" {
		model, err := trace.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iqtrace:", err)
			os.Exit(1)
		}
		g := trace.NewGenerator(model)
		st := trace.CollectStats(g, *n)
		fmt.Printf("%s (%s, %d static instructions)\n", model.Name, model.Suite, g.StaticSize())
		fmt.Print(st)
		return
	}

	fmt.Printf("%-10s %-8s %7s %7s %7s %7s %9s\n",
		"benchmark", "suite", "branch%", "mem%", "fp%", "taken%", "fp-width")
	for _, name := range distiq.AllBenchmarks() {
		model := trace.MustByName(name)
		g := trace.NewGenerator(model)
		st := trace.CollectStats(g, *n)
		memFrac := float64(st.ByClass[isa.Load]+st.ByClass[isa.Store]) / float64(st.Total)
		fmt.Printf("%-10s %-8s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %9.1f\n",
			name, model.Suite,
			100*st.BranchFrac(), 100*memFrac, 100*st.FPFrac(),
			100*st.TakenRate(), st.WindowChainWidth)
	}
}

// summarizeFile prints the class mix of a captured trace file.
func summarizeFile(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	fmt.Printf("trace of %s\n", r.Benchmark())
	var counts [isa.NumClasses]uint64
	var in isa.Inst
	for i := 0; i < n; i++ {
		if err := r.ReadInst(&in); err != nil {
			return err
		}
		counts[in.Class]++
		if r.Wraps > 0 {
			break // one full pass is enough for a summary
		}
	}
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Printf("  %-8s %6.2f%%\n", c, 100*float64(counts[c])/float64(total))
	}
	fmt.Printf("  records: %d\n", total)
	return nil
}
