package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"distiq"
)

func TestRunSummarizeAll(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", 2000, "", ""); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "benchmark") || !strings.Contains(s, "suite") {
		t.Fatalf("missing header: %q", strings.SplitN(s, "\n", 2)[0])
	}
	for _, b := range distiq.AllBenchmarks() {
		if !strings.Contains(s, b) {
			t.Fatalf("summary missing benchmark %s", b)
		}
	}
}

func TestRunDetail(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "swim", 2000, "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "swim (") {
		t.Fatalf("detail output = %q", out.String())
	}
	if err := run(&out, "nonesuch", 2000, "", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunCaptureAndReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "swim.diqt")

	var out bytes.Buffer
	if err := run(&out, "swim", 3000, path, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "captured 3000 instructions of swim") {
		t.Fatalf("capture output = %q", out.String())
	}

	out.Reset()
	if err := run(&out, "", 3000, "", path); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "trace of swim") {
		t.Fatalf("replay header missing: %q", s)
	}
	if !strings.Contains(s, "records:") {
		t.Fatalf("replay totals missing: %q", s)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", 0, "", ""); err == nil {
		t.Fatal("-n 0 accepted")
	}
	if err := run(&out, "", 100, "x.diqt", ""); err == nil {
		t.Fatal("-dump without -bench accepted")
	}
	if err := run(&out, "", 100, "", "/no/such/file.diqt"); err == nil {
		t.Fatal("missing replay file accepted")
	}
}
