// Command iqfig regenerates the figures of the paper's evaluation section.
//
// Usage:
//
//	iqfig -fig 8                      # one figure
//	iqfig -all                       # every figure (2-4, 6-15) plus Table 1
//	iqfig -all -n 500000             # longer runs for tighter numbers
//	iqfig -all -parallel 8           # 8 concurrent simulations
//	iqfig -all -cache-dir ~/.distiq  # reuse results across invocations
//
// Simulations fan out across the engine's worker pool (GOMAXPROCS-wide by
// default; -parallel 1 forces serial execution) and are deterministic per
// job, so tables are byte-identical at any parallelism. With -cache-dir,
// results persist on disk and a rerun performs zero new simulations.
// Progress and an engine summary go to stderr; tables go to stdout.
//
// The session is bound to a signal context: Ctrl-C stops scheduling new
// simulations (in-flight ones finish and persist to -cache-dir) and the
// command exits 130, so an interrupted -all run resumes where it left
// off on the next invocation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distiq"
	"distiq/internal/cliutil"
)

// fail reports err and exits with the taxonomy code (130 for Ctrl-C,
// 2 for bad input, 1 otherwise).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "iqfig:", err)
	os.Exit(cliutil.ExitCode(err))
}

func main() {
	var (
		figN      = flag.Int("fig", 0, "figure number to regenerate (2-4, 6-15)")
		all       = flag.Bool("all", false, "regenerate every figure")
		n         = flag.Uint64("n", 100_000, "instructions measured per run")
		bars      = flag.Bool("bars", false, "render figures as ASCII bar charts")
		cycle     = flag.Bool("cycletime", false, "run the cycle-time what-if extension study")
		csv       = flag.Bool("csv", false, "emit tables as CSV")
		md        = flag.Bool("md", false, "emit tables as markdown")
		warmup    = flag.Uint64("warmup", 20_000, "warmup instructions per run")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir  = flag.String("cache-dir", "", "persistent result store directory (alias for -store fs:DIR), reused across runs")
		storeSpec = flag.String("store", "", "result-store backend: fs:DIR, mem, http(s)://URL, tier:SPEC,..., batch:SPEC")
		quiet     = flag.Bool("quiet", false, "suppress the progress reporter on stderr")
	)
	flag.Parse()

	if !*cycle && !*all && *figN == 0 {
		fmt.Fprintln(os.Stderr, "iqfig: pass -fig N, -all or -cycletime")
		flag.Usage()
		os.Exit(2)
	}
	if err := cliutil.ValidateParallel(*parallel); err != nil {
		fmt.Fprintln(os.Stderr, "iqfig:", err)
		os.Exit(2)
	}
	effStore, err := cliutil.ResolveStoreFlags(*storeSpec, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqfig:", err)
		os.Exit(2)
	}

	// The figure harness rides the Client layer: build the local client
	// with functional options and bind the session to a signal context,
	// so Ctrl-C cancels mid-figure.
	opts := []distiq.ClientOption{distiq.WithParallel(*parallel)}
	if effStore != "" {
		store, err := distiq.OpenStore(effStore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iqfig:", err)
			os.Exit(2)
		}
		// Close flushes any write-behind batches on the normal exit path;
		// a failed flush (lost results) is reported but does not fail the
		// run — the figures already printed.
		defer func() {
			if cerr := store.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "iqfig:", cerr)
			}
		}()
		opts = append(opts, distiq.WithStore(store))
	}
	var reporter *distiq.ConsoleReporter
	if !*quiet {
		reporter = distiq.NewConsoleReporter(os.Stderr)
		opts = append(opts, distiq.WithProgress(reporter.Report))
	}
	ctx, stop := cliutil.SignalContext()
	defer stop()
	s := distiq.NewSessionClient(
		distiq.Options{Warmup: *warmup, Instructions: *n},
		distiq.NewLocalClient(opts...),
	).WithContext(ctx)
	finish := func() {
		if reporter != nil {
			reporter.Finish()
		}
	}

	if *cycle {
		tab, err := distiq.CycleTimeStudy(s)
		finish()
		if err != nil {
			fail(err)
		}
		fmt.Print(tab)
		summarize(s)
		return
	}

	figures := []int{*figN}
	if *all {
		figures = distiq.FigureNumbers()
		fmt.Print(distiq.Table1())
		fmt.Println()
	}
	for _, fn := range figures {
		start := time.Now()
		tab, err := distiq.Figure(fn, s)
		finish()
		if err != nil {
			fail(err)
		}
		switch {
		case *csv:
			fmt.Print(tab.CSV())
		case *md:
			fmt.Print(tab.Markdown())
		case *bars:
			fmt.Print(tab.Bars(48))
		default:
			fmt.Print(tab)
		}
		fmt.Printf("(generated in %.1fs)\n\n", time.Since(start).Seconds())
	}
	summarize(s)
}

// summarize reports how the engine resolved the session's jobs.
func summarize(s *distiq.Session) {
	st := s.EngineStats()
	fmt.Fprintf(os.Stderr, "iqfig: %d simulated, %d memory hits, %d disk hits, %d deduplicated\n",
		st.Simulated, st.MemoryHits, st.DiskHits, st.Shared)
}
