// Command iqfig regenerates the figures of the paper's evaluation section.
//
// Usage:
//
//	iqfig -fig 8            # one figure
//	iqfig -all              # every figure (2-4, 6-15) plus Table 1
//	iqfig -all -n 500000    # longer runs for tighter numbers
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distiq"
)

func main() {
	var (
		figN   = flag.Int("fig", 0, "figure number to regenerate (2-4, 6-15)")
		all    = flag.Bool("all", false, "regenerate every figure")
		n      = flag.Uint64("n", 100_000, "instructions measured per run")
		bars   = flag.Bool("bars", false, "render figures as ASCII bar charts")
		cycle  = flag.Bool("cycletime", false, "run the cycle-time what-if extension study")
		csv    = flag.Bool("csv", false, "emit tables as CSV")
		warmup = flag.Uint64("warmup", 20_000, "warmup instructions per run")
	)
	flag.Parse()

	if *cycle {
		s := distiq.NewSession(distiq.Options{Warmup: *warmup, Instructions: *n})
		tab, err := distiq.CycleTimeStudy(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iqfig:", err)
			os.Exit(1)
		}
		fmt.Print(tab)
		return
	}
	if !*all && *figN == 0 {
		fmt.Fprintln(os.Stderr, "iqfig: pass -fig N or -all")
		flag.Usage()
		os.Exit(2)
	}

	s := distiq.NewSession(distiq.Options{Warmup: *warmup, Instructions: *n})
	figures := []int{*figN}
	if *all {
		figures = distiq.FigureNumbers()
		fmt.Print(distiq.Table1())
		fmt.Println()
	}
	for _, fn := range figures {
		start := time.Now()
		tab, err := distiq.Figure(fn, s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iqfig:", err)
			os.Exit(1)
		}
		switch {
		case *csv:
			fmt.Print(tab.CSV())
		case *bars:
			fmt.Print(tab.Bars(48))
		default:
			fmt.Print(tab)
		}
		fmt.Printf("(generated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}
