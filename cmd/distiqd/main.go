// Command distiqd serves the experiment engine over HTTP: a long-lived
// process owning one worker pool, one in-memory result cache and
// (optionally) one persistent distiq-v2 content-addressed store, so many
// clients — and concurrent iq* CLI runs pointed at the same -cache-dir —
// amortize each simulation exactly once.
//
// Sweeps are submitted as the strict-JSON scenario specs of
// `iqsweep -spec` and served back through the same emitters, so the HTTP
// bodies are byte-identical to the CLI's output for the same spec:
//
//	distiqd -addr :8090 -parallel 8 -cache-dir /tmp/distiq-cache &
//
//	curl -s -X POST localhost:8090/v1/sweeps -d '{
//	  "name": "rob-ablation",
//	  "benchmarks": ["swim"],
//	  "schemes": [{"scheme": "MB_distr"}],
//	  "rob": [128, 256]
//	}'
//	# -> 202 {"id": "sw-000001", "state": "queued", "points": 2, ...}
//
//	curl -s localhost:8090/v1/sweeps/sw-000001/status   # progress + per-sweep counts
//	curl -s localhost:8090/v1/sweeps/sw-000001/stream   # NDJSON per-point results, live, grid order
//	curl -s localhost:8090/v1/sweeps/sw-000001          # CSV (202 while running)
//	curl -s 'localhost:8090/v1/sweeps/sw-000001?format=md'
//	curl -s localhost:8090/v1/machine                   # Table 1 introspection
//	curl -s localhost:8090/v1/benchmarks
//	curl -s localhost:8090/v1/stats                     # engine-wide counters
//
// Malformed or invalid specs answer 400 before anything simulates;
// submissions while -max-queued sweeps are already unfinished answer
// 429. On SIGINT/SIGTERM the listener closes and every in-flight sweep
// drains before exit.
//
// Observability: GET /metrics serves the Prometheus exposition,
// /healthz is the readiness probe (503 once draining), /livez the
// liveness probe, and /v1/version the build identity. Every request is
// logged structurally (-log-format text|json, -log-level
// debug|info|warn|error) with an X-Request-Id that is honored from the
// caller or generated and echoed back.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"distiq/internal/cliutil"
	"distiq/internal/engine"
	"distiq/internal/serve"
)

func main() {
	srv, logger, addr, err := setup(os.Args[1:], os.Stderr)
	switch {
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case err != nil:
		fmt.Fprintf(os.Stderr, "distiqd: %v\n", err)
		os.Exit(cliutil.ExitCode(err))
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv}
	// The same signal context the iq* CLIs use: SIGINT/SIGTERM starts a
	// graceful shutdown (listener closes, in-flight sweeps drain), and a
	// second signal kills the process outright.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx) //nolint:errcheck // drain below bounds the wait
	}()

	// The one startup line mirrors GET /v1/version, so logs and the API
	// agree on which build answered.
	version, goVersion := serve.VersionInfo()
	logger.Info("listening",
		"addr", addr,
		"version", version,
		"go_version", goVersion,
		"start_time", time.Now().UTC().Format(time.RFC3339))
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "distiqd: %v\n", err)
		os.Exit(1)
	}
	// The listener is closed; let in-flight sweeps finish so their
	// results land in the persistent store.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "distiqd: %v\n", err)
		os.Exit(1)
	}
	// Drained: close the adopted store, flushing any write-behind batch.
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "distiqd: %v\n", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-format and
// -log-level flags. Invalid values are bad input (exit 2), matching the
// rest of the flag taxonomy.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, cliutil.BadInput(fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", level))
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, cliutil.BadInput(fmt.Errorf("invalid -log-format %q (want text or json)", format))
}

// setup parses argv, validates the engine knobs through the shared
// cliutil checks and assembles the service plus its logger. It is main
// minus the listener, so tests can exercise flag handling and drive the
// returned handler directly.
func setup(argv []string, stderr io.Writer) (*serve.Server, *slog.Logger, string, error) {
	fs := flag.NewFlagSet("distiqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8090", "listen address")
		parallel  = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir  = fs.String("cache-dir", "", "persistent result store directory (alias for -store fs:DIR), shared with the iq* CLIs")
		storeSpec = fs.String("store", "", "result-store backend: fs:DIR, mem, http(s)://URL, tier:SPEC,..., batch:SPEC")
		maxQueued = fs.Int("max-queued", serve.DefaultMaxQueued, "maximum admitted-but-unfinished sweeps before 429")
		logFormat = fs.String("log-format", "text", "structured log format: text or json")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		quiet     = fs.Bool("quiet", false, "suppress all logging on stderr")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, nil, "", err
		}
		// The FlagSet has already written the message and usage.
		return nil, nil, "", cliutil.BadInput(err)
	}
	if err := cliutil.ValidateParallel(*parallel); err != nil {
		return nil, nil, "", err
	}
	effStore, err := cliutil.ResolveStoreFlags(*storeSpec, *cacheDir)
	if err != nil {
		return nil, nil, "", err
	}
	if err := cliutil.ValidateMaxQueued(*maxQueued); err != nil {
		return nil, nil, "", err
	}
	logger, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		return nil, nil, "", err
	}
	cfg := serve.Config{
		Parallel:  *parallel,
		MaxQueued: *maxQueued,
	}
	if effStore != "" {
		// The service adopts the store: Server.Close (called after Drain)
		// closes it, which for a batch: spec flushes the final group.
		store, err := engine.OpenStore(effStore)
		if err != nil {
			return nil, nil, "", cliutil.BadInput(err)
		}
		cfg.Store = store
	}
	if !*quiet {
		cfg.Logger = logger
	} else {
		logger = slog.New(serve.DiscardHandler())
	}
	return serve.New(cfg), logger, *addr, nil
}
