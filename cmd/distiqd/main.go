// Command distiqd serves the experiment engine over HTTP: a long-lived
// process owning one worker pool, one in-memory result cache and
// (optionally) one persistent distiq-v2 content-addressed store, so many
// clients — and concurrent iq* CLI runs pointed at the same -cache-dir —
// amortize each simulation exactly once.
//
// Sweeps are submitted as the strict-JSON scenario specs of
// `iqsweep -spec` and served back through the same emitters, so the HTTP
// bodies are byte-identical to the CLI's output for the same spec:
//
//	distiqd -addr :8090 -parallel 8 -cache-dir /tmp/distiq-cache &
//
//	curl -s -X POST localhost:8090/v1/sweeps -d '{
//	  "name": "rob-ablation",
//	  "benchmarks": ["swim"],
//	  "schemes": [{"scheme": "MB_distr"}],
//	  "rob": [128, 256]
//	}'
//	# -> 202 {"id": "sw-000001", "state": "queued", "points": 2, ...}
//
//	curl -s localhost:8090/v1/sweeps/sw-000001/status   # progress + per-sweep counts
//	curl -s localhost:8090/v1/sweeps/sw-000001/stream   # NDJSON per-point results, live, grid order
//	curl -s localhost:8090/v1/sweeps/sw-000001          # CSV (202 while running)
//	curl -s 'localhost:8090/v1/sweeps/sw-000001?format=md'
//	curl -s localhost:8090/v1/machine                   # Table 1 introspection
//	curl -s localhost:8090/v1/benchmarks
//	curl -s localhost:8090/v1/stats                     # engine-wide counters
//
// Malformed or invalid specs answer 400 before anything simulates;
// submissions while -max-queued sweeps are already unfinished answer
// 429. On SIGINT/SIGTERM the listener closes and every in-flight sweep
// drains before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"distiq/internal/cliutil"
	"distiq/internal/serve"
)

func main() {
	srv, addr, err := setup(os.Args[1:], os.Stderr)
	switch {
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case err != nil:
		fmt.Fprintf(os.Stderr, "distiqd: %v\n", err)
		os.Exit(cliutil.ExitCode(err))
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv}
	// The same signal context the iq* CLIs use: SIGINT/SIGTERM starts a
	// graceful shutdown (listener closes, in-flight sweeps drain), and a
	// second signal kills the process outright.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("distiqd: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx) //nolint:errcheck // drain below bounds the wait
	}()

	log.Printf("distiqd: listening on %s", addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "distiqd: %v\n", err)
		os.Exit(1)
	}
	// The listener is closed; let in-flight sweeps finish so their
	// results land in the persistent store.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "distiqd: %v\n", err)
		os.Exit(1)
	}
}

// setup parses argv, validates the engine knobs through the shared
// cliutil checks and assembles the service. It is main minus the
// listener, so tests can exercise flag handling and drive the returned
// handler directly.
func setup(argv []string, stderr io.Writer) (*serve.Server, string, error) {
	fs := flag.NewFlagSet("distiqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8090", "listen address")
		parallel  = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir  = fs.String("cache-dir", "", "persistent result store directory, shared with the iq* CLIs")
		maxQueued = fs.Int("max-queued", serve.DefaultMaxQueued, "maximum admitted-but-unfinished sweeps before 429")
		quiet     = fs.Bool("quiet", false, "suppress the sweep lifecycle log on stderr")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, "", err
		}
		// The FlagSet has already written the message and usage.
		return nil, "", cliutil.BadInput(err)
	}
	if err := cliutil.ValidateEngineFlags(*parallel, *cacheDir); err != nil {
		return nil, "", err
	}
	if err := cliutil.ValidateMaxQueued(*maxQueued); err != nil {
		return nil, "", err
	}
	cfg := serve.Config{
		Parallel:  *parallel,
		CacheDir:  *cacheDir,
		MaxQueued: *maxQueued,
	}
	if !*quiet {
		cfg.Log = log.New(stderr, "distiqd: ", log.LstdFlags)
	}
	return serve.New(cfg), *addr, nil
}
