package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distiq/internal/cliutil"
	"distiq/internal/serve"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing server logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSetupRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-parallel", "-1"},
		{"-max-queued", "0"},
		{"-max-queued", "-5"},
		{"-cache-dir", "/nonexistent-parent-dir/sub/cache"},
	}
	for _, argv := range cases {
		var errw bytes.Buffer
		if _, _, _, err := setup(argv, &errw); err == nil {
			t.Errorf("%v accepted", argv)
		} else if cliutil.ExitCode(err) != 2 {
			t.Errorf("%v: exit code %d, want 2 (%v)", argv, cliutil.ExitCode(err), err)
		}
	}
	var errw bytes.Buffer
	if _, _, _, err := setup([]string{"-h"}, &errw); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h: %v", err)
	}
}

// TestSetupServesSweeps drives a sweep end-to-end through the server the
// command actually assembles, so the flag wiring (addr, parallel, quiet)
// is covered, not just the serve package.
func TestSetupServesSweeps(t *testing.T) {
	var errw bytes.Buffer
	srv, _, addr, err := setup([]string{"-addr", ":0", "-parallel", "2", "-quiet"}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":0" {
		t.Fatalf("addr = %q", addr)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := `{"benchmarks": ["swim"], "schemes": [{"scheme": "MB_distr"}],
		"warmup": 500, "instructions": 1000}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" && st.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/status")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.State != "done" || st.Done != 1 {
		t.Fatalf("sweep = %+v", st)
	}
	if errw.Len() != 0 {
		t.Fatalf("-quiet still logged: %s", errw.String())
	}

	// Without -quiet the lifecycle log lands on stderr. The buffer needs
	// a lock: sweep goroutines log concurrently with the test's polling.
	loud := &syncBuffer{}
	srv2, _, _, err := setup(nil, loud)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if _, err := http.Post(ts2.URL+"/v1/sweeps", "application/json", strings.NewReader(spec)); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(loud.String(), "accepted") {
		if time.Now().After(deadline) {
			t.Fatalf("no lifecycle log; stderr: %q", loud.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
