// Command iqbench measures the simulator's performance baseline and
// writes it as BENCH_<date>.json, so every PR leaves a comparable record
// of the per-job hot path and the engine's scaling behaviour.
//
// Two layers are measured over a fixed matrix:
//
//   - pipeline: the cycle-loop kernel per (scheme × benchmark) —
//     nanoseconds, instructions/sec, and heap allocations per committed
//     instruction, measured steady-state (after warmup, traces
//     pre-materialized in a trace cache, GC quiesced). Allocations per
//     instruction must stay at zero; this file is where regressions
//     surface.
//   - engine: the experiment engine over the same job grid, serial and
//     parallel, cold and warm-cache, with the engine's resolution
//     counters (simulated / memory hits / deduplicated).
//   - client: the Client layer (the public streaming API) over the same
//     grid versus direct engine.Simulate calls, so the per-sweep overhead
//     of the ordered stream is a recorded number; the warm case times the
//     pure Client + cache-lookup path with no simulation at all.
//   - sweep: a wider machine-variant grid with the lockstep batch kernel
//     on and off, recording sweep throughput and trace passes per run
//     (batched passes equal the benchmark count, not the point count).
//
// Usage:
//
//	iqbench                      # full run, writes BENCH_<date>.json
//	iqbench -quick -o bench.json # CI smoke: small counts, fixed path
//	iqbench -o -                 # JSON to stdout
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"distiq/internal/client"
	"distiq/internal/core"
	"distiq/internal/engine"
	"distiq/internal/isa"
	"distiq/internal/pipeline"
	"distiq/internal/scenario"
	"distiq/internal/sim"
	"distiq/internal/trace"
)

// Schema is the versioned identifier of the report layout. Bump it only
// when a field changes meaning; adding fields is compatible.
const Schema = "distiq-iqbench-v1"

// Report is the top-level BENCH_*.json document.
type Report struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"` // RFC3339, UTC
	GoVersion  string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`

	Warmup       uint64 `json:"warmup_insts"`
	Instructions uint64 `json:"measured_insts"`

	Pipeline []PipelineCase `json:"pipeline"`
	Engine   []EngineCase   `json:"engine"`
	// Client records the Client-layer cases (added in the distiqd Client
	// API redesign; a compatible extension of distiq-iqbench-v1 — absent
	// in older reports).
	Client []EngineCase `json:"client,omitempty"`
	// Sweep records the multi-point sweep cases with the lockstep batch
	// kernel on and off (added with lockstep batch replay; a compatible
	// extension of distiq-iqbench-v1 — absent in older reports).
	Sweep      []SweepCase      `json:"sweep,omitempty"`
	TraceCache trace.CacheStats `json:"trace_cache"`
}

// PipelineCase is one steady-state cycle-loop measurement.
type PipelineCase struct {
	Scheme        string  `json:"scheme"`
	Bench         string  `json:"bench"`
	Insts         uint64  `json:"insts"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	NSPerInst     float64 `json:"ns_per_inst"`
	InstsPerSec   float64 `json:"insts_per_sec"`
	AllocsPerInst float64 `json:"allocs_per_inst"`
	BytesPerInst  float64 `json:"bytes_per_inst"`
	IPC           float64 `json:"ipc"`
}

// EngineCase is one engine-level grid run.
type EngineCase struct {
	Name        string  `json:"name"`
	Parallel    int     `json:"parallel"`
	Warm        bool    `json:"warm"`
	Jobs        int     `json:"jobs"`
	Insts       uint64  `json:"insts"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	InstsPerSec float64 `json:"insts_per_sec"`
	Simulated   int64   `json:"simulated"`
	MemoryHits  int64   `json:"memory_hits"`
	Shared      int64   `json:"shared"`
}

// SweepCase is one multi-point sweep run: the benchmark × scheme ×
// machine-variant grid resolved through a fresh engine, with the
// lockstep batch kernel either on (co-batchable points share trace
// passes) or off (one pass per point). Passes counts the trace passes
// the run made — with batching it equals the benchmark count, without
// it the point count — and PointsPerPass is the grid size over that.
type SweepCase struct {
	Name             string  `json:"name"`
	Batched          bool    `json:"batched"`
	Parallel         int     `json:"parallel"`
	Points           int     `json:"points"`
	Insts            uint64  `json:"insts"`
	ElapsedNS        int64   `json:"elapsed_ns"`
	SweepInstsPerSec float64 `json:"sweep_insts_per_sec"`
	Passes           int64   `json:"passes"`
	PointsPerPass    float64 `json:"points_per_pass"`
}

// The fixed measurement matrix: the paper's three headline organizations
// over one integer and one floating-point model each of small and large
// working set, so both suites' behaviour is represented.
func schemes() []core.Config {
	return []core.Config{core.Baseline64(), core.IFDistr(), core.MBDistr()}
}

var benchmarks = []string{"gcc", "mcf", "swim", "galgel"}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iqbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "", `output path; "" = BENCH_<date>.json in the working directory, "-" = stdout`)
		quick    = fs.Bool("quick", false, "small instruction counts for CI smoke runs")
		warmup   = fs.Uint64("warmup", 0, "override warmup instructions per run")
		insts    = fs.Uint64("insts", 0, "override measured instructions per run")
		parallel = fs.Int("parallel", 0, "worker-pool size of the parallel engine cases (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "iqbench: unexpected arguments %v\n", fs.Args())
		return 2
	}

	opt := engine.Options{Warmup: 20_000, Instructions: 100_000}
	if *quick {
		opt = engine.Options{Warmup: 2_000, Instructions: 10_000}
	}
	// Apply overrides by flag presence, so an explicit -warmup 0
	// (measure cold-start behaviour) is honored.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "warmup":
			opt.Warmup = *warmup
		case "insts":
			opt.Instructions = *insts
		}
	})
	if opt.Instructions == 0 {
		fmt.Fprintln(stderr, "iqbench: -insts must be positive")
		return 2
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	now := time.Now().UTC()
	rep := Report{
		Schema:     Schema,
		Date:       now.Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,

		Warmup:       opt.Warmup,
		Instructions: opt.Instructions,
	}

	fmt.Fprintf(stderr, "iqbench: pipeline kernel (%d insts/run after %d warmup)\n",
		opt.Instructions, opt.Warmup)
	if err := measurePipeline(&rep, opt, stderr); err != nil {
		fmt.Fprintln(stderr, "iqbench:", err)
		return 1
	}

	fmt.Fprintf(stderr, "iqbench: engine grid (%d jobs; serial, parallel-%d cold and warm)\n",
		len(schemes())*len(benchmarks), workers)
	// Materialize the shared trace cache up front so the serial and
	// parallel cold cases pay the same (zero) one-time generation cost
	// and the comparison isolates engine scaling. The shared cache's
	// capacity is fixed; past it, jobs fall back to the production
	// fork-a-generator path, which the timing then includes.
	total := opt.Warmup + opt.Instructions + 4096
	if uint64(len(benchmarks))*total > trace.DefaultCacheCap {
		fmt.Fprintf(stderr, "iqbench: note: %d insts/benchmark exceeds the shared trace cache capacity; engine cases include trace generation\n", total)
	}
	if err := engine.WarmTraces(benchmarks, total); err != nil {
		fmt.Fprintln(stderr, "iqbench:", err)
		return 1
	}
	if err := measureEngine(&rep, opt, workers); err != nil {
		fmt.Fprintln(stderr, "iqbench:", err)
		return 1
	}
	fmt.Fprintln(stderr, "iqbench: client layer (direct simulate, client cold, client warm)")
	if err := measureClient(&rep, opt); err != nil {
		fmt.Fprintln(stderr, "iqbench:", err)
		return 1
	}
	fmt.Fprintln(stderr, "iqbench: sweep layer (lockstep batched vs unbatched)")
	if err := measureSweep(&rep, opt, workers, stderr); err != nil {
		fmt.Fprintln(stderr, "iqbench:", err)
		return 1
	}
	rep.TraceCache = engine.TraceCacheStats()

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "iqbench:", err)
		return 1
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, "iqbench:", err)
		return 1
	}
	if path != "-" {
		fmt.Fprintf(stderr, "iqbench: wrote %s\n", path)
	}
	return 0
}

// measurePipeline runs the cycle-loop kernel for every matrix cell and
// records steady-state speed and allocation rates. Traces come from a
// local trace cache pre-materialized past the measured range, so the
// numbers isolate the pipeline (replay adds no generator work and no
// allocations to the measured window).
func measurePipeline(rep *Report, opt engine.Options, progress io.Writer) error {
	total := opt.Warmup + opt.Instructions
	// Size the local cache to hold every benchmark's full measured range,
	// so no reader ever outruns a recording cap and forks a generator
	// into the timed window (which would fold generation cost and its
	// allocations into numbers documented as pipeline-only).
	traces := trace.NewCache(len(benchmarks) * (int(total) + 4096))
	for _, bench := range benchmarks {
		model, err := trace.ByName(bench)
		if err != nil {
			return err
		}
		// Materialize the stream past the measured range (readers may
		// fetch a few hundred instructions ahead of commit).
		pre := traces.Reader(model)
		var in isa.Inst
		for i := uint64(0); i < total+4096; i++ {
			pre.Next(&in)
		}

		for _, cfg := range schemes() {
			p, err := pipeline.New(pipeline.DefaultConfig(cfg), traces.Reader(model))
			if err != nil {
				return err
			}
			p.Warmup(opt.Warmup)

			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start := time.Now()
			p.Run(opt.Instructions)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)

			st := p.Stats()
			n := float64(st.Committed)
			rep.Pipeline = append(rep.Pipeline, PipelineCase{
				Scheme:        cfg.Name,
				Bench:         bench,
				Insts:         st.Committed,
				ElapsedNS:     elapsed.Nanoseconds(),
				NSPerInst:     float64(elapsed.Nanoseconds()) / n,
				InstsPerSec:   n / elapsed.Seconds(),
				AllocsPerInst: float64(m1.Mallocs-m0.Mallocs) / n,
				BytesPerInst:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
				IPC:           st.IPC(),
			})
			fmt.Fprintf(progress, "  %-10s %-8s %8.0f insts/sec  %.4f allocs/inst\n",
				cfg.Name, bench,
				rep.Pipeline[len(rep.Pipeline)-1].InstsPerSec,
				rep.Pipeline[len(rep.Pipeline)-1].AllocsPerInst)
		}
	}
	return nil
}

// measureEngine runs the full grid through fresh sessions: strictly
// serial, parallel cold, and a warm rerun on the parallel session (every
// job a memory hit).
func measureEngine(rep *Report, opt engine.Options, workers int) error {
	grid := func(s *sim.Session) (uint64, error) {
		if err := s.Prefetch(benchmarks, schemes()...); err != nil {
			return 0, err
		}
		var insts uint64
		for _, b := range benchmarks {
			for _, cfg := range schemes() {
				r, err := s.Result(b, cfg)
				if err != nil {
					return 0, err
				}
				insts += r.Insts
			}
		}
		return insts, nil
	}
	jobs := len(benchmarks) * len(schemes())

	record := func(name string, par int, warm bool, s *sim.Session) error {
		before := s.EngineStats() // session counters are cumulative
		start := time.Now()
		insts, err := grid(s)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		st := s.EngineStats()
		rep.Engine = append(rep.Engine, EngineCase{
			Name:        name,
			Parallel:    par,
			Warm:        warm,
			Jobs:        jobs,
			Insts:       insts,
			ElapsedNS:   elapsed.Nanoseconds(),
			InstsPerSec: float64(insts) / elapsed.Seconds(),
			Simulated:   st.Simulated - before.Simulated,
			MemoryHits:  st.MemoryHits - before.MemoryHits,
			Shared:      st.Shared - before.Shared,
		})
		return nil
	}

	serial := sim.NewSessionWith(sim.SessionConfig{Opt: opt, Parallel: 1})
	if err := record("serial-cold", 1, false, serial); err != nil {
		return err
	}
	par := sim.NewSessionWith(sim.SessionConfig{Opt: opt, Parallel: workers})
	if err := record(fmt.Sprintf("parallel%d-cold", workers), workers, false, par); err != nil {
		return err
	}
	// Warm rerun on the same session: the whole grid resolves from the
	// in-memory result cache; this times the lookup path.
	return record(fmt.Sprintf("parallel%d-warm", workers), workers, true, par)
}

// measureClient times the Client layer against direct engine.Simulate
// over the same grid, all strictly serial so the comparison isolates the
// layer itself (ordered streaming, scenario bookkeeping) rather than
// scheduling: "direct-simulate" is the floor, "client-serial-cold" adds
// the Client + engine path around the same simulations, and
// "client-serial-warm" reruns the sweep against the warm in-memory cache
// — the pure per-point overhead with simulation cost removed.
func measureClient(rep *Report, opt engine.Options) error {
	spec := scenario.New("iqbench").
		WithBenchmarks(benchmarks...).
		WithNamed("IQ_64_64", "IF_distr", "MB_distr").
		WithLengths(opt.Warmup, opt.Instructions)
	grid, err := spec.Expand()
	if err != nil {
		return err
	}
	jobs := grid.Size()

	// Floor: raw simulation calls, no engine, no client, no caches.
	var direct uint64
	start := time.Now()
	for _, j := range grid.Jobs() {
		r, err := engine.Simulate(j)
		if err != nil {
			return err
		}
		direct += r.Insts
	}
	elapsed := time.Since(start)
	rep.Client = append(rep.Client, EngineCase{
		Name: "direct-simulate", Parallel: 1, Jobs: jobs, Insts: direct,
		ElapsedNS: elapsed.Nanoseconds(), InstsPerSec: float64(direct) / elapsed.Seconds(),
		Simulated: int64(jobs),
	})

	cl := client.NewLocal(client.WithParallel(1))
	sweep := func(name string, warm bool) error {
		before := cl.Stats()
		var insts uint64
		start := time.Now()
		st := cl.Sweep(context.Background(), grid)
		for st.Next() {
			insts += st.Update().Result.Insts
		}
		elapsed := time.Since(start)
		if err := st.Err(); err != nil {
			return err
		}
		stats := cl.Stats()
		rep.Client = append(rep.Client, EngineCase{
			Name: name, Parallel: 1, Warm: warm, Jobs: jobs, Insts: insts,
			ElapsedNS: elapsed.Nanoseconds(), InstsPerSec: float64(insts) / elapsed.Seconds(),
			Simulated:  stats.Simulated - before.Simulated,
			MemoryHits: stats.MemoryHits - before.MemoryHits,
			Shared:     stats.Shared - before.Shared,
		})
		return nil
	}
	if err := sweep("client-serial-cold", false); err != nil {
		return err
	}
	return sweep("client-serial-warm", true)
}

// measureSweep times a wider grid — machine variants multiply the scheme
// matrix, so each benchmark carries several co-batchable points — through
// two fresh engines: the default one, whose lockstep kernel replays each
// benchmark's trace once for all its points, and a NoBatch one making one
// pass per point. Results are bit-identical (the equivalence suite and
// golden gates pin that); these cases record the replay-cost difference.
func measureSweep(rep *Report, opt engine.Options, workers int, progress io.Writer) error {
	var jobs []engine.Job
	for _, b := range benchmarks {
		for _, cfg := range schemes() {
			for _, rob := range []int{0, 128, 64} {
				j := engine.Job{Bench: b, Config: cfg, Opt: opt}
				if rob != 0 {
					j.Machine = &engine.Machine{ROBSize: rob}
				}
				jobs = append(jobs, j)
			}
		}
	}
	for _, mode := range []struct {
		name    string
		batched bool
	}{
		{"sweep-batched", true},
		{"sweep-unbatched", false},
	} {
		eng := engine.New(engine.Config{Workers: workers, NoBatch: !mode.batched})
		start := time.Now()
		results, err := eng.ResultAll(jobs)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		var insts uint64
		for _, r := range results {
			insts += r.Insts
		}
		st := eng.Stats()
		// Trace passes made: every lockstep group is one pass, every job
		// simulated outside a group its own.
		passes := eng.BatchGroups() + (st.Simulated - st.Batched)
		rep.Sweep = append(rep.Sweep, SweepCase{
			Name:             mode.name,
			Batched:          mode.batched,
			Parallel:         workers,
			Points:           len(jobs),
			Insts:            insts,
			ElapsedNS:        elapsed.Nanoseconds(),
			SweepInstsPerSec: float64(insts) / elapsed.Seconds(),
			Passes:           passes,
			PointsPerPass:    float64(len(jobs)) / float64(passes),
		})
		fmt.Fprintf(progress, "  %-16s %9.0f insts/sec  %d points / %d trace passes\n",
			mode.name, rep.Sweep[len(rep.Sweep)-1].SweepInstsPerSec, len(jobs), passes)
	}
	return nil
}
