package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickRunWritesReport runs the harness end to end in quick mode and
// validates the BENCH schema: every matrix cell present, rates positive,
// the warm engine case all memory hits, and the steady-state allocation
// rate at (effectively) zero — the tentpole acceptance number.
func TestQuickRunWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var errBuf bytes.Buffer
	if code := run([]string{"-quick", "-parallel", "2", "-o", path}, &bytes.Buffer{}, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errBuf.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}

	if rep.Schema != Schema {
		t.Errorf("schema %q, want %q", rep.Schema, Schema)
	}
	if !rep.Quick || rep.Date == "" || rep.GoVersion == "" {
		t.Errorf("metadata incomplete: %+v", rep)
	}
	if want := len(schemes()) * len(benchmarks); len(rep.Pipeline) != want {
		t.Fatalf("%d pipeline cases, want %d", len(rep.Pipeline), want)
	}
	for _, pc := range rep.Pipeline {
		if pc.InstsPerSec <= 0 || pc.NSPerInst <= 0 || pc.Insts == 0 {
			t.Errorf("%s/%s: non-positive rates: %+v", pc.Scheme, pc.Bench, pc)
		}
		// The steady-state loop is allocation-free; leave headroom for
		// stray runtime activity on loaded CI machines.
		if pc.AllocsPerInst > 0.01 {
			t.Errorf("%s/%s: %.4f allocs/inst, want ~0", pc.Scheme, pc.Bench, pc.AllocsPerInst)
		}
	}
	if len(rep.Engine) != 3 {
		t.Fatalf("%d engine cases, want 3: %+v", len(rep.Engine), rep.Engine)
	}
	jobs := len(schemes()) * len(benchmarks)
	for _, ec := range rep.Engine {
		if ec.Jobs != jobs || ec.InstsPerSec <= 0 {
			t.Errorf("%s: %+v", ec.Name, ec)
		}
	}
	cold, warm := rep.Engine[0], rep.Engine[2]
	if cold.Warm || cold.Simulated != int64(jobs) {
		t.Errorf("serial-cold should simulate all %d jobs: %+v", jobs, cold)
	}
	// A warm grid touches every job twice (prefetch + table assembly),
	// all from the in-memory cache.
	if !warm.Warm || warm.Simulated != 0 || warm.MemoryHits != int64(2*jobs) {
		t.Errorf("warm case should be all memory hits: %+v", warm)
	}
	if rep.TraceCache.Streams == 0 {
		t.Errorf("trace cache unused: %+v", rep.TraceCache)
	}

	// Client-layer cases: direct floor, cold sweep, warm sweep — the
	// recorded Client overhead numbers.
	if len(rep.Client) != 3 {
		t.Fatalf("%d client cases, want 3: %+v", len(rep.Client), rep.Client)
	}
	direct, ccold, cwarm := rep.Client[0], rep.Client[1], rep.Client[2]
	if direct.Name != "direct-simulate" || direct.Simulated != int64(jobs) || direct.InstsPerSec <= 0 {
		t.Errorf("direct case: %+v", direct)
	}
	if ccold.Warm || ccold.Simulated != int64(jobs) || ccold.InstsPerSec <= 0 {
		t.Errorf("client cold case should simulate all %d jobs: %+v", jobs, ccold)
	}
	if !cwarm.Warm || cwarm.Simulated != 0 || cwarm.MemoryHits != int64(jobs) {
		t.Errorf("client warm case should be all memory hits: %+v", cwarm)
	}

	// Sweep cases: the lockstep kernel turns a sweep's trace passes into
	// one per benchmark; unbatched stays one per point.
	if len(rep.Sweep) != 2 {
		t.Fatalf("%d sweep cases, want 2: %+v", len(rep.Sweep), rep.Sweep)
	}
	batched, unbatched := rep.Sweep[0], rep.Sweep[1]
	if !batched.Batched || unbatched.Batched {
		t.Fatalf("sweep case order/batched flags wrong: %+v", rep.Sweep)
	}
	if batched.Points != unbatched.Points || batched.Points == 0 {
		t.Errorf("sweep point counts disagree: %+v vs %+v", batched, unbatched)
	}
	if batched.Insts != unbatched.Insts {
		t.Errorf("batched sweep committed %d insts, unbatched %d — runs must be equivalent",
			batched.Insts, unbatched.Insts)
	}
	if batched.SweepInstsPerSec <= 0 || unbatched.SweepInstsPerSec <= 0 {
		t.Errorf("non-positive sweep rates: %+v", rep.Sweep)
	}
	if batched.Passes != int64(len(benchmarks)) {
		t.Errorf("batched sweep made %d trace passes, want %d (one per benchmark)",
			batched.Passes, len(benchmarks))
	}
	if unbatched.Passes != int64(unbatched.Points) {
		t.Errorf("unbatched sweep made %d trace passes, want %d (one per point)",
			unbatched.Passes, unbatched.Points)
	}
}

// TestBadFlagsExit2 pins the CLI contract: usage errors exit 2.
func TestBadFlagsExit2(t *testing.T) {
	var errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &bytes.Buffer{}, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, &bytes.Buffer{}, &errBuf); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
}
