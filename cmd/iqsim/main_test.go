package main

import "testing"

func TestResolveConfig(t *testing.T) {
	cases := []struct {
		name, intq, fpq string
		chains          int
		distr           bool
		want            string
		wantErr         bool
	}{
		{"IQ_64_64", "8x8", "8x16", 0, false, "IQ_64_64", false},
		{"baseline", "8x8", "8x16", 0, false, "IQ_64_64", false},
		{"unbounded", "8x8", "8x16", 0, false, "IQ_unbounded", false},
		{"MB_distr", "8x8", "8x16", 0, false, "MB_distr", false},
		{"IF_distr", "8x8", "8x16", 0, false, "IF_distr", false},
		{"IssueFIFO", "10x8", "12x16", 0, false, "IssueFIFO_10x8_12x16", false},
		{"LatFIFO", "8x8", "8x16", 0, false, "LatFIFO_8x8_8x16", false},
		{"MixBUFF", "8x8", "8x16", 8, true, "MixBUFF_8x8_8x16_distr", false},
		{"nonesuch", "8x8", "8x16", 0, false, "", true},
		{"MixBUFF", "8by8", "8x16", 0, false, "", true},
		{"MixBUFF", "8x8", "bad", 0, false, "", true},
	}
	for _, c := range cases {
		cfg, err := resolveConfig(c.name, c.intq, c.fpq, c.chains, c.distr)
		if c.wantErr {
			if err == nil {
				t.Errorf("%q: expected error", c.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.name, err)
			continue
		}
		if cfg.Name != c.want {
			t.Errorf("%q: name %q, want %q", c.name, cfg.Name, c.want)
		}
		if cfg.DistributedFU != (c.distr || c.name == "MB_distr" || c.name == "IF_distr") {
			t.Errorf("%q: DistributedFU wrong", c.name)
		}
	}
}
