// Command iqsim runs one benchmark under one issue-queue configuration and
// prints a full performance and energy report.
//
// Usage:
//
//	iqsim -bench swim -config MB_distr -n 200000
//	iqsim -bench gcc -config IssueFIFO -intq 8x8 -fpq 8x16
//	iqsim -bench swim -cache-dir /tmp/distiq-cache   # instant on rerun
//	iqsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distiq"
	"distiq/internal/cliutil"
	"distiq/internal/isa"
	"distiq/internal/pipeline"
	"distiq/internal/power"
	"distiq/internal/trace"
)

func main() {
	var (
		bench     = flag.String("bench", "swim", "benchmark name (see -list)")
		config    = flag.String("config", "MB_distr", "configuration: IQ_unbounded, IQ_64_64, IF_distr, MB_distr, IssueFIFO, LatFIFO, MixBUFF")
		intq      = flag.String("intq", "8x8", "integer queues AxB (IssueFIFO/LatFIFO/MixBUFF configs)")
		fpq       = flag.String("fpq", "8x16", "FP queues CxD")
		chains    = flag.Int("chains", 8, "chains per FP queue for MixBUFF (0 = unbounded)")
		distr     = flag.Bool("distr", false, "distribute functional units across queues")
		n         = flag.Uint64("n", 200_000, "instructions to measure")
		warmup    = flag.Uint64("warmup", 20_000, "warmup instructions")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		traceN    = flag.Int64("trace", 0, "print a pipeline trace for the first N cycles after warmup")
		showcfg   = flag.Bool("table1", false, "print the processor configuration and exit")
		parallel  = flag.Int("parallel", 1, "engine worker-pool size (one job needs no more)")
		cacheDir  = flag.String("cache-dir", "", "persistent result store directory (alias for -store fs:DIR); a rerun with the same job is served from the store (ignored with -trace)")
		storeSpec = flag.String("store", "", "result-store backend: fs:DIR, mem, http(s)://URL, tier:SPEC,..., batch:SPEC")
	)
	flag.Parse()

	if err := cliutil.ValidateParallel(*parallel); err != nil {
		fmt.Fprintln(os.Stderr, "iqsim:", err)
		os.Exit(2)
	}
	effStore, err := cliutil.ResolveStoreFlags(*storeSpec, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqsim:", err)
		os.Exit(2)
	}
	if *list {
		fmt.Println("SPECINT:", strings.Join(distiq.Benchmarks(distiq.SuiteInt), " "))
		fmt.Println("SPECFP: ", strings.Join(distiq.Benchmarks(distiq.SuiteFP), " "))
		return
	}
	if *showcfg {
		fmt.Print(distiq.Table1())
		return
	}

	cfg, err := resolveConfig(*config, *intq, *fpq, *chains, *distr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqsim:", err)
		os.Exit(1)
	}
	var res distiq.Result
	if *traceN > 0 {
		res, err = runTraced(*bench, cfg, *warmup, *n, *traceN)
	} else {
		// One job through the Client layer, bound to a signal context so
		// Ctrl-C interrupts a long run cleanly (exit 130).
		ctx, stop := cliutil.SignalContext()
		defer stop()
		opts := []distiq.ClientOption{distiq.WithParallel(*parallel)}
		var store distiq.ResultStore
		if effStore != "" {
			store, err = distiq.OpenStore(effStore)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iqsim:", err)
				os.Exit(2)
			}
			opts = append(opts, distiq.WithStore(store))
		}
		cl := distiq.NewLocalClient(opts...)
		res, err = cl.Run(ctx, distiq.Job{
			Bench:  *bench,
			Config: cfg,
			Opt:    distiq.Options{Warmup: *warmup, Instructions: *n},
		})
		if store != nil {
			if cerr := store.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if st := cl.Stats(); st.DiskHits > 0 {
			fmt.Fprintln(os.Stderr, "iqsim: result served from the persistent store")
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqsim:", err)
		os.Exit(cliutil.ExitCode(err))
	}

	st := res.Stats
	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("configuration    %s\n", res.Config)
	fmt.Printf("instructions     %d\n", st.Committed)
	fmt.Printf("cycles           %d\n", st.Cycles)
	fmt.Printf("IPC              %.3f\n", res.IPC())
	fmt.Printf("branches         %d (%.1f%% mispredicted, %d misfetches)\n",
		st.Branches, 100*st.MispredictRate(), st.Misfetches)
	fmt.Printf("issued           %d int, %d fp\n", st.IssuedInt, st.IssuedFP)
	fmt.Printf("dispatch stalls  %d scheme, %d rob, %d regs (cycles)\n",
		st.StallScheme, st.StallROB, st.StallRegs)
	fmt.Printf("load forwards    %d\n", st.LoadForwards)
	fmt.Printf("\nissue-logic energy: %.1f nJ (%.2f pJ/instr)\n",
		res.IQEnergy/1000, res.IQEnergy/float64(st.Committed))
	fmt.Println("breakdown:")
	fmt.Print(res.Breakdown)
}

// resolveConfig maps command-line naming to a core configuration.
func resolveConfig(name, intq, fpq string, chains int, distr bool) (distiq.Config, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(intq, "%dx%d", &a, &b); err != nil {
		return distiq.Config{}, fmt.Errorf("bad -intq %q: %v", intq, err)
	}
	if _, err := fmt.Sscanf(fpq, "%dx%d", &c, &d); err != nil {
		return distiq.Config{}, fmt.Errorf("bad -fpq %q: %v", fpq, err)
	}
	var cfg distiq.Config
	switch name {
	case "IQ_unbounded", "unbounded":
		cfg = distiq.Unbounded()
	case "IQ_64_64", "baseline":
		cfg = distiq.Baseline64()
	case "IF_distr":
		cfg = distiq.IFDistr()
	case "MB_distr":
		cfg = distiq.MBDistr()
	case "IssueFIFO":
		cfg = distiq.IssueFIFOCfg(a, b, c, d)
	case "LatFIFO":
		cfg = distiq.LatFIFOCfg(a, b, c, d)
	case "MixBUFF":
		cfg = distiq.MixBUFFCfg(a, b, c, d, chains)
	default:
		return distiq.Config{}, fmt.Errorf("unknown configuration %q", name)
	}
	if distr {
		cfg.DistributedFU = true
		cfg.Name += "_distr"
	}
	return cfg, cfg.Validate()
}

// runTraced runs the benchmark with a cycle-window pipeline trace printed
// to stdout (pipeview-style, one line per stage event).
func runTraced(bench string, cfg distiq.Config, warmup, n uint64, traceCycles int64) (distiq.Result, error) {
	model, err := distiq.WorkloadByName(bench)
	if err != nil {
		return distiq.Result{}, err
	}
	gen := trace.NewGenerator(model)
	p, err := distiq.NewPipeline(distiq.DefaultProcessor(cfg), gen)
	if err != nil {
		return distiq.Result{}, err
	}
	p.Warmup(warmup)
	p.SetTracer(&pipeline.TextTracer{
		W:    os.Stdout,
		From: p.CurrentCycle(),
		To:   p.CurrentCycle() + traceCycles,
	})
	p.Run(n)

	st := p.Stats()
	res := distiq.Result{Stats: st}
	res.Benchmark = bench
	res.Config = cfg.Name
	res.Insts = st.Committed
	res.Cycles = st.Cycles
	intS, fpS := p.Scheme(isa.IntDomain), p.Scheme(isa.FPDomain)
	res.IntBreakdown = power.NewCalc(intS.Geometry()).Energy(intS.Events())
	res.FPBreakdown = power.NewCalc(fpS.Geometry()).Energy(fpS.Events())
	res.Breakdown = power.Breakdown{}
	res.Breakdown.Add(res.IntBreakdown)
	res.Breakdown.Add(res.FPBreakdown)
	res.IQEnergy = res.Breakdown.Total()
	return res, nil
}
